(* Tests for the harness: table rendering, the coherence matrix, and the
   headline numbers of every experiment (the paper's qualitative claims,
   asserted). *)

module N = Naming.Name

let check = Alcotest.check
let b = Alcotest.bool
let f = Alcotest.float 1e-9

let test_table_render () =
  let out =
    Harness.Table.render
      ~aligns:[ Harness.Table.Left; Harness.Table.Right ]
      ~headers:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "header + rule + 2 rows + trailing" 5 (List.length lines);
  (* all non-empty lines share a width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  check b "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  (* ragged rows are padded, not crashed *)
  let ragged = Harness.Table.render ~headers:[ "a"; "b" ] [ [ "x" ] ] in
  check b "ragged ok" true (String.length ragged > 0)

let test_table_formats () =
  check Alcotest.string "fraction" "0.500" (Harness.Table.fraction 0.5);
  check Alcotest.string "pct" "87.5%" (Harness.Table.pct 0.875)

let test_matrix_trivial_world () =
  (* one shared context: everything coherent *)
  let st = Naming.Store.create () in
  let t = Schemes.Unix_scheme.build st in
  let a1 = Schemes.Unix_scheme.spawn t and a2 = Schemes.Unix_scheme.spawn t in
  let probes = Schemes.Unix_scheme.absolute_probes t ~max_depth:3 in
  let world =
    {
      Harness.Matrix.label = "test";
      store = st;
      rule = Schemes.Unix_scheme.rule t;
      activities = [ a1; a2 ];
      probes;
      embedded = [];
      equiv = None;
    }
  in
  let row = Harness.Matrix.measure world in
  check f "generated" 1.0 row.Harness.Matrix.generated;
  check f "received" 1.0 row.Harness.Matrix.received;
  check b "no embedded" true (row.Harness.Matrix.embedded_deg = None)

let test_experiments_registry () =
  check Alcotest.int "fourteen experiments (E1-E10, A1-A4)" 14
    (List.length Harness.Experiments.all);
  check b "find e3" true (Harness.Experiments.find "E3" <> None);
  check b "find missing" true (Harness.Experiments.find "e99" = None)

let test_all_experiments_run () =
  (* every experiment completes and prints something *)
  List.iter
    (fun e ->
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      e.Harness.Experiments.run ppf;
      Format.pp_print_flush ppf ();
      if Buffer.length buf < 40 then
        Alcotest.failf "experiment %s produced almost no output"
          e.Harness.Experiments.id)
    Harness.Experiments.all

(* -- headline assertions, one per experiment -------------------------- *)

let test_e1_claims () =
  let outcomes = Harness.Exp_sources.measure () in
  List.iter
    (fun o ->
      let expected =
        match o.Harness.Exp_sources.rule_label with
        | "R(sender)" | "R(object)" -> true
        | _ -> false
      in
      check b o.Harness.Exp_sources.rule_label expected
        o.Harness.Exp_sources.agrees_with_originator)
    outcomes

let test_e2_claims () =
  let points = Harness.Exp_rules.sweep () in
  List.iter
    (fun p ->
      let open Harness.Exp_rules in
      check f "R(sender) always 1" 1.0 p.received_sender;
      check f "R(object) always 1" 1.0 p.embedded_object;
      check (Alcotest.float 0.03) "R(receiver) tracks g" p.global_fraction
        p.received_receiver;
      check (Alcotest.float 0.03) "R(activity) tracks g" p.global_fraction
        p.embedded_activity)
    points

let test_e3_claims () =
  let r = Harness.Exp_newcastle.measure () in
  let open Harness.Exp_newcastle in
  check f "same machine" 1.0 r.same_machine;
  check f "cross machine" 0.0 r.cross_machine;
  check f "superroot names" 1.0 r.superroot_qualified;
  check f "mapping" 1.0 r.mapping_correct;
  check f "invoker params" 1.0 r.invoker_param_coherence;
  check f "invoker local" 0.0 r.invoker_local_access;
  check f "remote params" 0.0 r.remote_param_coherence;
  check f "remote local" 1.0 r.remote_local_access

let test_e4_claims () =
  let r = Harness.Exp_shared.measure () in
  let open Harness.Exp_shared in
  check f "shared" 1.0 r.shared_names_all_clients;
  check f "local within" 1.0 r.local_names_within_client;
  check f "local across" 0.0 r.local_names_across_clients;
  check f "replicated strict" 0.0 r.replicated_strict;
  check f "replicated weak" 1.0 r.replicated_weak;
  check f "remote shared params" 1.0 r.remote_exec_shared_params;
  check f "remote local params" 0.0 r.remote_exec_local_params

let test_e5_claims () =
  let r = Harness.Exp_crosslink.measure () in
  let open Harness.Exp_crosslink in
  check f "unmapped" 0.0 r.exchanged_unmapped;
  check f "mapped" 1.0 r.exchanged_mapped;
  check f "embedded baseline" 0.0 r.embedded_reader_rule;
  check f "embedded algol" 1.0 r.embedded_algol_rule

let test_e6_claims () =
  let r = Harness.Exp_embedded.measure () in
  let open Harness.Exp_embedded in
  check b "baseline below 1" true (r.baseline_reader_rule < 1.0);
  check b "shadowing" true r.shadowing_correct;
  List.iter
    (fun s ->
      check f (s.label ^ " resolved") 1.0 s.resolved;
      check f (s.label ^ " coherent") 1.0 s.coherent_across_readers;
      check f (s.label ^ " preserved") 1.0 s.meaning_preserved)
    r.scenarios

let test_e7_claims () =
  let r = Harness.Exp_pqid.measure () in
  let open Harness.Exp_pqid in
  (* same-machine partial pids survive every renumbering *)
  List.iter
    (fun p -> check f "same-machine immune" 1.0 p.partial_same_machine_valid)
    r.survival;
  (* partial dominates full at every step *)
  List.iter
    (fun p -> check b "partial >= full" true (p.partial_valid >= p.full_valid))
    r.survival;
  (* after enough ops the full baseline is (almost) dead *)
  let final = List.nth r.survival (List.length r.survival - 1) in
  check b "full collapses" true (final.full_valid < 0.2);
  check f "mapped transit" 1.0 r.transit.mapped_correct;
  check b "unmapped transit imperfect" true (r.transit.unmapped_correct < 1.0)

let test_e8_claims () =
  let rows = Harness.Exp_remote_exec.measure () in
  let get m =
    List.find (fun r -> r.Harness.Exp_remote_exec.mechanism = m) rows
  in
  let open Harness.Exp_remote_exec in
  let inv = get "newcastle, invoker root" in
  check f "invoker params" 1.0 inv.param_coherence;
  check f "invoker local" 0.0 inv.local_access;
  let rem = get "newcastle, remote root" in
  check f "remote params" 0.0 rem.param_coherence;
  check f "remote local" 1.0 rem.local_access;
  let pp = get "per-process namespace" in
  check f "per-process params" 1.0 pp.param_coherence;
  check f "per-process local" 1.0 pp.local_access

let test_e9_claims () =
  let r = Harness.Exp_federation.measure () in
  let open Harness.Exp_federation in
  check f "within org" 1.0 r.within_org;
  check f "across unmapped" 0.0 r.across_orgs_unmapped;
  check f "across mapped" 1.0 r.across_orgs_mapped;
  check f "foreign embedded baseline" 0.0 r.foreign_embedded_reader_rule;
  check f "foreign embedded algol" 1.0 r.foreign_embedded_algol_rule

let test_e10_claims () =
  let rows = Harness.Exp_matrix.measure () in
  let get label =
    List.find (fun r -> r.Harness.Matrix.world = label) rows
  in
  let open Harness.Matrix in
  check f "global context coherent" 1.0 (get "global context (Locus/V style)").generated;
  check f "unix shared root coherent" 1.0 (get "unix, shared root").generated;
  check b "chroot breaks" true ((get "unix, one process chrooted").generated < 1.0);
  check f "newcastle incoherent" 0.0 (get "newcastle connection").generated;
  let andrew = get "shared naming graph (Andrew)" in
  check b "andrew partial" true
    (andrew.generated > 0.0 && andrew.generated < 1.0);
  let dce = get "DCE (global + cell contexts)" in
  check b "dce partial" true (dce.generated > 0.0 && dce.generated < 1.0);
  check f "crosslink incoherent" 0.0
    (get "cross-linked autonomous systems").generated;
  check f "per-process arranged coherent" 1.0
    (get "per-process namespaces (arranged)").generated;
  let algol = get "newcastle + Algol embedded rule" in
  check f "algol generated still 0" 0.0 algol.generated;
  check b "algol embedded repaired" true (algol.embedded_deg = Some 1.0)

let test_a1_claims () =
  let points = Harness.Exp_composite.sweep () in
  List.iter
    (fun p ->
      let open Harness.Exp_composite in
      (* the composite never beats the plain rules it combines *)
      check f "sender-wins composite = R(sender)" p.sender
        p.composite_sender_wins;
      check f "receiver-wins composite = R(receiver)" p.receiver
        p.composite_receiver_wins)
    points

let test_a2_claims () =
  let r = Harness.Exp_recursive.measure () in
  let open Harness.Exp_recursive in
  check f "cross-system plain names" 0.0 r.cross_system_plain;
  check f "deep-qualified names" 1.0 r.superroot_all_machines;
  check f "mapping across systems" 1.0 r.mapping_across_systems;
  check b "dotdot depth" true r.nested_dotdot_depth_ok

let test_a3_claims () =
  let r = Harness.Exp_migration.measure () in
  let open Harness.Exp_migration in
  (* renumbering never breaks machine-local pids *)
  List.iter
    (fun p -> check f "renumber-only immune" 1.0 p.renumber_only)
    r.series;
  (* migration eventually does *)
  let final = List.nth r.series (List.length r.series - 1) in
  check b "migrations break local pids" true (final.with_migrations < 1.0);
  check b "fresh pids recover" true r.fresh_pids_always_work

let test_a4_claims () =
  let r = Harness.Exp_replicas.measure () in
  let open Harness.Exp_replicas in
  check b "consistent initially" true r.consistent_initially;
  check b "weak initially" true r.weak_coherent_initially;
  check b "drift breaks the invariant" false r.consistent_after_drift;
  check b "identity-level verdict blind to drift" true
    r.weak_verdict_after_drift;
  check b "sync restores" true r.consistent_after_sync;
  check b "content propagated" true r.drifted_content_propagated

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table formats" `Quick test_table_formats;
    Alcotest.test_case "matrix trivial world" `Quick test_matrix_trivial_world;
    Alcotest.test_case "experiments registry" `Quick test_experiments_registry;
    Alcotest.test_case "all experiments run" `Slow test_all_experiments_run;
    Alcotest.test_case "E1 claims" `Quick test_e1_claims;
    Alcotest.test_case "E2 claims" `Quick test_e2_claims;
    Alcotest.test_case "E3 claims" `Quick test_e3_claims;
    Alcotest.test_case "E4 claims" `Quick test_e4_claims;
    Alcotest.test_case "E5 claims" `Quick test_e5_claims;
    Alcotest.test_case "E6 claims" `Quick test_e6_claims;
    Alcotest.test_case "E7 claims" `Slow test_e7_claims;
    Alcotest.test_case "E8 claims" `Quick test_e8_claims;
    Alcotest.test_case "E9 claims" `Quick test_e9_claims;
    Alcotest.test_case "E10 claims" `Quick test_e10_claims;
    Alcotest.test_case "A1 claims" `Quick test_a1_claims;
    Alcotest.test_case "A2 claims" `Quick test_a2_claims;
    Alcotest.test_case "A3 claims" `Quick test_a3_claims;
    Alcotest.test_case "A4 claims" `Quick test_a4_claims;
  ]

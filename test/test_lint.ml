(* Tests for Naming.Lint — world well-formedness. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module L = Naming.Lint

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let test_clean_fs () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs Schemes.Unix_scheme.default_tree;
  check b "clean" true (L.is_clean st);
  check b "checked some" true ((L.check st).L.checked > 0)

let test_schemes_lint_clean () =
  (* every built-in scheme produces a well-formed world *)
  let clean name build =
    let st = S.create () in
    build st;
    if not (L.is_clean st) then
      Alcotest.failf "%s world is not lint-clean: %s" name
        (Format.asprintf "%a" (L.pp_report st) (L.check st))
  in
  clean "unix" (fun st ->
      let t = Schemes.Unix_scheme.build st in
      ignore (Schemes.Unix_scheme.spawn t));
  clean "newcastle" (fun st ->
      let t = Schemes.Newcastle.build ~machines:[ "u1"; "u2" ] st in
      ignore (Schemes.Newcastle.spawn_on t ~machine:"u1"));
  clean "newcastle joined" (fun st ->
      let ta = Schemes.Newcastle.build ~machines:[ "u1" ] st in
      let tb = Schemes.Newcastle.build ~machines:[ "v1" ] st in
      ignore (Schemes.Newcastle.join st [ ("a", ta); ("b", tb) ]));
  clean "andrew" (fun st ->
      let t = Schemes.Shared_graph.build ~clients:[ "c1"; "c2" ] st in
      ignore (Schemes.Shared_graph.spawn_on t ~client:"c1"));
  clean "dce" (fun st ->
      let t = Schemes.Dce.build ~cells:[ ("cA", [ "m1" ]) ] st in
      ignore (Schemes.Dce.spawn_on t ~machine:"m1"));
  clean "per-process" (fun st ->
      let t =
        Schemes.Per_process.build ~subsystems:[ ("p1", [ "x" ]) ] st
      in
      let parent = Schemes.Per_process.spawn ~attach:[ ("fs", "p1") ] t in
      ignore (Schemes.Per_process.remote_exec t ~parent ~subsystem:"p1"));
  clean "federation" (fun st ->
      let t =
        Schemes.Federation.build
          ~orgs:
            [ ("o1", Schemes.Federation.default_org_tree ~users:[ "u" ]
                 ~services:[ "s" ]) ]
          st
      in
      ignore (Schemes.Federation.spawn_in t ~org:"o1"))

let test_detects_broken_self () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  let d = Vfs.Fs.mkdir_path fs "/d" in
  S.bind st ~dir:d N.self_atom (Vfs.Fs.root fs);
  match (L.check st).L.violations with
  | [ L.Self_not_self bad ] -> check b "right dir" true (E.equal bad d)
  | v -> Alcotest.failf "expected one Self_not_self, got %d" (List.length v)

let test_detects_bad_parent () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  let d = Vfs.Fs.mkdir_path fs "/d" in
  let f = Vfs.Fs.add_file fs "/f" ~content:"" in
  S.bind st ~dir:d N.parent_atom f;
  check b "parent-not-directory reported" true
    (List.exists
       (function L.Parent_not_directory _ -> true | _ -> false)
       (L.check st).L.violations)

let test_detects_unlinked_parent () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  let d = Vfs.Fs.mkdir_path fs "/a/d" in
  let a = Vfs.Fs.lookup fs "/a" in
  (* detach d but keep its '..' pointing at a *)
  Vfs.Fs.unlink fs ~dir:a "d";
  ignore d;
  check b "unlinked parent reported" true
    (List.exists
       (function L.Parent_not_linked _ -> true | _ -> false)
       (L.check st).L.violations)

let test_detects_foreign_binding () =
  let st = S.create () in
  let d = S.create_context_object st in
  S.bind st ~dir:d (N.atom "ghost") (E.Object 999);
  match (L.check st).L.violations with
  | [ L.Binding_to_foreign (dir, _, e) ] ->
      check b "dir" true (E.equal dir d);
      check i "entity id" 999 (E.id e)
  | v -> Alcotest.failf "expected one violation, got %d" (List.length v)

let test_pp_report () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  ignore (Vfs.Fs.mkdir_path fs "/d");
  let text = Format.asprintf "%a" (L.pp_report st) (L.check st) in
  check b "mentions clean" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 5 <= String.length text
      && (String.equal (String.sub text i 5) "clean" || contains (i + 1))
    in
    contains 0)

(* property: docgen projects, with all subtree operations applied, stay
   lint-clean *)
let prop_operations_preserve_cleanliness =
  QCheck.Test.make ~name:"subtree ops preserve lint-cleanliness" ~count:25
    QCheck.small_nat (fun seed ->
      let st = S.create () in
      let fs = Vfs.Fs.create st in
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let project =
        Workload.Docgen.build fs ~at:"p" ~rng ~spec:Workload.Docgen.default_spec
      in
      let mnt = Vfs.Fs.mkdir_path fs "/mnt" in
      Vfs.Subtree.relocate fs ~src:(Vfs.Fs.root fs) ~name:"p" ~dst:mnt ();
      let clone = Vfs.Subtree.copy fs project in
      Vfs.Fs.link fs ~dir:mnt "copy" clone;
      S.bind st ~dir:clone N.parent_atom mnt;
      Vfs.Subtree.attach fs ~dir:(Vfs.Fs.root fs) ~name:"alias" project;
      L.is_clean st)

let suite =
  [
    Alcotest.test_case "clean fs" `Quick test_clean_fs;
    Alcotest.test_case "all schemes lint clean" `Quick
      test_schemes_lint_clean;
    Alcotest.test_case "detects broken self" `Quick test_detects_broken_self;
    Alcotest.test_case "detects bad parent" `Quick test_detects_bad_parent;
    Alcotest.test_case "detects unlinked parent" `Quick
      test_detects_unlinked_parent;
    Alcotest.test_case "detects foreign binding" `Quick
      test_detects_foreign_binding;
    Alcotest.test_case "pp report" `Quick test_pp_report;
    QCheck_alcotest.to_alcotest prop_operations_preserve_cleanliness;
  ]

(* A deliberately broken name-flow plan for analyzer tests.

   Written in the [check-script] file syntax (so the parser is on the
   path too) and built deterministically so the diagnostic codes — and
   the JSON golden output — are stable. With [fuel = 3]:

   - [send 0 1 /srv/data] after [chroot 1 /srv]: the receiver resolves
     the sender's absolute name inside the jail, where it denotes
     nothing                                                 -> NG101
   - [read 1 /srv/data/log log]: "log" denotes the file in its source
     scope [/srv/data] but nothing in the chrooted reader's
     context                                                 -> NG102
   - [bind 0 mnt /srv/data; unbind 0 mnt; use 0 mnt/log]: a use
     through an explicitly retired binding                   -> NG103
   - [fork 0; chdir 2 /tmp; use 2 srv]: the child and its fork parent
     resolve "srv" to different entities                     -> NG104
   - [chdir 0 /nope]: silently skipped, the op-skip report   -> NG105
   - [use 9 /srv]: a flow referencing a process that does
     not exist                                               -> NG105
   - [use 0 /srv/data/log]: 4 atoms against a budget of 3    -> NG106 *)

let text =
  {script|# A deliberately broken plan: trips every NG10x diagnostic.
mkdir /srv
mkdir /srv/data
add-file /srv/data/log "secret"
mkdir /tmp
spawn sender
spawn receiver
chroot 1 /srv
send 0 1 /srv/data
read 1 /srv/data/log log
bind 0 mnt /srv/data
unbind 0 mnt
use 0 mnt/log
fork 0
chdir 2 /tmp
use 2 srv
chdir 0 /nope
use 9 /srv
use 0 /srv/data/log
|script}

(* The fuel that leaves the 4-atom name undecided. *)
let fuel = 3

let config = { Analysis.Flow.default_config with Analysis.Flow.fuel }

let parsed =
  lazy
    (match Analysis.Flow.parse text with
    | Ok pl -> pl
    | Error msg -> invalid_arg ("Broken_script.parsed: " ^ msg))

let plan () = fst (Lazy.force parsed)
let lines () = snd (Lazy.force parsed)

let report () =
  Analysis.Flowpasses.report ~config ~label:"broken" (plan ())

(* Every code the fixture is expected to trip, in report order
   (severity descending, then code, then message). *)
let expected_codes =
  [
    "NG101"; "NG102"; "NG103"; "NG104"; "NG105"; "NG105"; "NG106";
  ]

(* The full pretty-JSON report, kept as a golden string: abstract node
   numbering is deterministic, so any drift in the shadow interpreter,
   the verdict renderer or the diagnostic text shows up here. *)
let expected_json = {golden|{
  "label": "broken",
  "activities": 3,
  "objects": 5,
  "context_objects": 4,
  "probes": 6,
  "passes": [
    "name-flow",
    "skips"
  ],
  "counts": {
    "error": 2,
    "warning": 4,
    "info": 1
  },
  "diagnostics": [
    {
      "code": "NG101",
      "severity": "error",
      "pass": "name-flow",
      "message": "send 0 1 /srv/data: proc 0:sender (sender) → n2:data via [/ → n0:/; n0:/.srv → n1:srv; n1:srv.data → n2:data]; proc 1:receiver (receiver) → ⊥ via [/ → n1:srv; n1:srv.srv → ⊥]",
      "entities": [],
      "step": 7,
      "name": "/srv/data"
    },
    {
      "code": "NG102",
      "severity": "error",
      "pass": "name-flow",
      "message": "read 1 /srv/data/log log: scope of /srv/data/log → n3:log via [log → n3:log]; proc 1:receiver (reader) → ⊥ via [. → n0:/; n0:/.log → ⊥]",
      "entities": [],
      "step": 8,
      "name": "log"
    },
    {
      "code": "NG103",
      "severity": "warning",
      "pass": "name-flow",
      "message": "use 0 mnt/log: proc 0:sender (use) resolves through \"mnt\", unbound at op 8",
      "entities": [],
      "step": 11,
      "name": "mnt/log"
    },
    {
      "code": "NG104",
      "severity": "warning",
      "pass": "name-flow",
      "message": "use 2 srv: resolves ⊥ but fork parent 0 resolves n1:srv",
      "entities": [],
      "step": 14,
      "name": "srv"
    },
    {
      "code": "NG105",
      "severity": "warning",
      "pass": "skips",
      "message": "op 11 (chdir 0 /nope) skipped: /nope is not a directory",
      "entities": [],
      "step": 15
    },
    {
      "code": "NG105",
      "severity": "warning",
      "pass": "name-flow",
      "message": "use 9 /srv: no process 9 (proc)",
      "entities": [],
      "step": 16,
      "name": "/srv"
    },
    {
      "code": "NG106",
      "severity": "info",
      "pass": "name-flow",
      "message": "use 0 /srv/data/log: not decided within the fuel budget",
      "entities": [],
      "step": 17,
      "name": "/srv/data/log"
    }
  ]
}|golden}

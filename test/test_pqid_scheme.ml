(* Tests for Schemes.Pqid_scheme — pids exchanged over the simulated
   network, with and without the R(sender) transit mapping. *)

module R = Netaddr.Registry
module Ps = Schemes.Pqid_scheme

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let topology = [ ("net1", [ ("m1", 2); ("m2", 1) ]); ("net2", [ ("m3", 1) ]) ]

let fixture () =
  let engine = Dsim.Engine.create () in
  let rng = Dsim.Rng.create 42L in
  let t = Ps.build ~topology ~engine ~rng () in
  (engine, t)

let test_build () =
  let _, t = fixture () in
  check i "processes" 4 (List.length (Ps.processes t));
  check i "registry agrees" 4 (List.length (R.all_processes (Ps.registry t)));
  check i "nodes = machines" 3 (List.length (Dsim.Network.nodes (Ps.network t)))

let test_actor_of_unknown () =
  let _, t = fixture () in
  (* a process handle from a LARGER world is unknown to [t] *)
  let engine2 = Dsim.Engine.create () in
  let t2 =
    Ps.build ~topology:[ ("n", [ ("m", 6) ]) ] ~engine:engine2
      ~rng:(Dsim.Rng.create 1L) ()
  in
  let foreign = List.nth (Ps.processes t2) 5 in
  match Ps.actor_of t foreign with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown process accepted"

let procs4 t =
  match Ps.processes t with
  | [ a; b; c; d ] -> (a, b, c, d)
  | _ -> Alcotest.fail "expected 4 processes"

let test_mapped_send_resolves () =
  let engine, t = fixture () in
  let p11, p12, p21, p31 = procs4 t in
  (* p11 (m1) tells p31 (other network) about p12 (p11's machine-mate):
     without mapping the pid (0,0,2) is meaningless at p31. *)
  Ps.send_pid t ~from:p11 ~to_:p31 ~target:p12 ~mapped:true;
  ignore (Dsim.Engine.run engine);
  (match Ps.deliveries t with
  | [ (receiver, msg) ] ->
      check b "receiver is p31" true (receiver = p31);
      check b "mapped pid correct" true (Ps.resolution_correct t (receiver, msg));
      check b "fully qualified across networks" true
        (Netaddr.Pqid.qualification msg.Ps.pid = Netaddr.Pqid.Fully_qualified)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  ignore (p21 : R.proc)

let test_unmapped_send_misresolves () =
  let engine, t = fixture () in
  let p11, p12, p21, _ = procs4 t in
  (* p11 tells p21 (same network, other machine) about p12 using the raw
     machine-local pid (0,0,2): at p21 it denotes nothing (m2 has one
     process) or the wrong process. *)
  Ps.send_pid t ~from:p11 ~to_:p21 ~target:p12 ~mapped:false;
  ignore (Dsim.Engine.run engine);
  (match Ps.deliveries t with
  | [ (receiver, msg) ] ->
      check b "unmapped pid misresolves" false
        (Ps.resolution_correct t (receiver, msg))
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l))

let test_unmapped_within_machine_is_fine () =
  let engine, t = fixture () in
  let p11, p12, _, _ = procs4 t in
  (* machine-mates share enough context that no mapping is needed for a
     machine-local pid (a SELF pid would still need it). *)
  Ps.send_pid t ~from:p11 ~to_:p12 ~target:p12 ~mapped:false;
  ignore (Dsim.Engine.run engine);
  match Ps.deliveries t with
  | [ (receiver, msg) ] ->
      check b "correct without mapping" true
        (Ps.resolution_correct t (receiver, msg))
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let test_connections () =
  let _, t = fixture () in
  let p11, p12, _, p31 = procs4 t in
  let c_part = Ps.connect t ~holder:p11 ~target:p12 ~qualification:`Partial in
  let c_full = Ps.connect t ~holder:p11 ~target:p12 ~qualification:`Full in
  check b "both valid initially" true
    (Ps.connection_valid t c_part && Ps.connection_valid t c_full);
  (* renumber the machine hosting p11/p12 *)
  let reg = Ps.registry t in
  R.renumber_machine reg (R.machine_of_proc reg p11) 55;
  check b "partial survives" true (Ps.connection_valid t c_part);
  check b "full breaks" false (Ps.connection_valid t c_full);
  ignore (p31 : R.proc)

let test_mapped_send_after_renumbering () =
  let engine, t = fixture () in
  let p11, p12, p21, _ = procs4 t in
  let reg = Ps.registry t in
  R.renumber_machine reg (R.machine_of_proc reg p21) 99;
  Ps.send_pid t ~from:p11 ~to_:p21 ~target:p12 ~mapped:true;
  ignore (Dsim.Engine.run engine);
  match Ps.deliveries t with
  | [ (receiver, msg) ] ->
      check b "mapping uses current addressing" true
        (Ps.resolution_correct t (receiver, msg))
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "actor_of unknown" `Quick test_actor_of_unknown;
    Alcotest.test_case "mapped send resolves" `Quick test_mapped_send_resolves;
    Alcotest.test_case "unmapped send misresolves" `Quick
      test_unmapped_send_misresolves;
    Alcotest.test_case "unmapped within machine ok" `Quick
      test_unmapped_within_machine_is_fine;
    Alcotest.test_case "connections under renumbering" `Quick
      test_connections;
    Alcotest.test_case "mapped send after renumbering" `Quick
      test_mapped_send_after_renumbering;
  ]

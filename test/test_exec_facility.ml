(* Tests for Schemes.Exec_facility — remote execution over RPC. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Ef = Schemes.Exec_facility

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let subsystems =
  [
    ("port1", [ "home/alice/input.txt"; "bin/tool" ]);
    ("port2", [ "tmp/scratch"; "bin/tool" ]);
  ]

let fixture ?net_config () =
  let engine = Dsim.Engine.create () in
  let rng = Dsim.Rng.create 42L in
  let store = S.create () in
  let t = Ef.build ~subsystems ~engine ~rng ?net_config store in
  (* give port1's input file content *)
  Vfs.Fs.write
    (Schemes.Per_process.subsystem_fs (Ef.world t) "port1")
    (Vfs.Fs.lookup (Schemes.Per_process.subsystem_fs (Ef.world t) "port1")
       "/home/alice/input.txt")
    "alice's data";
  (engine, t)

let test_remote_read_of_client_names () =
  let engine, t = fixture () in
  let client = Ef.new_client t ~on:"port1" ~attach:[ ("fs", "port1") ] in
  let got = ref None in
  Ef.exec_remote t ~client ~on:"port2"
    ~reads:[ N.of_string "/fs/home/alice/input.txt" ]
    ~on_result:(fun r -> got := Some r)
    ();
  ignore (Dsim.Engine.run engine);
  (match !got with
  | Some (Ok [ (_, Some content) ]) ->
      check Alcotest.string "client's file readable remotely" "alice's data"
        content
  | Some (Ok r) -> Alcotest.failf "unexpected result shape (%d)" (List.length r)
  | Some (Error (`Timeout | `Unavailable)) -> Alcotest.fail "timed out"
  | None -> Alcotest.fail "no reply");
  check i "one child" 1 (Ef.children_spawned t)

let test_remote_read_of_local_names () =
  let engine, t = fixture () in
  let client = Ef.new_client t ~on:"port1" ~attach:[ ("fs", "port1") ] in
  let got = ref None in
  (* the child can reach its execution site through /local *)
  Ef.exec_remote t ~client ~on:"port2"
    ~reads:[ N.of_string "/local/tmp/scratch"; N.of_string "/fs/bin/tool" ]
    ~on_result:(fun r -> got := Some r)
    ();
  ignore (Dsim.Engine.run engine);
  match !got with
  | Some (Ok [ (_, Some _); (_, Some _) ]) -> ()
  | Some (Ok r) ->
      Alcotest.failf "some read failed: %s"
        (String.concat ", "
           (List.map
              (fun (n, c) ->
                Printf.sprintf "%s=%s" (N.to_string n)
                  (match c with Some _ -> "ok" | None -> "MISS"))
              r))
  | Some (Error (`Timeout | `Unavailable)) -> Alcotest.fail "timed out"
  | None -> Alcotest.fail "no reply"

let test_unresolvable_reads_are_none () =
  let engine, t = fixture () in
  let client = Ef.new_client t ~on:"port1" ~attach:[] in
  let got = ref None in
  (* no attachments: the client's own names are not defined remotely *)
  Ef.exec_remote t ~client ~on:"port2"
    ~reads:[ N.of_string "/fs/bin/tool" ]
    ~on_result:(fun r -> got := Some r)
    ();
  ignore (Dsim.Engine.run engine);
  match !got with
  | Some (Ok [ (_, None) ]) -> ()
  | _ -> Alcotest.fail "expected a None read"

let test_timeout_when_partitioned () =
  let engine, t = fixture () in
  let client = Ef.new_client t ~on:"port1" ~attach:[ ("fs", "port1") ] in
  (* cut the client's subsystem off before calling: note the network is
     internal, so we use a total drop config instead *)
  ignore client;
  ignore engine;
  let engine2 = Dsim.Engine.create () in
  let store2 = S.create () in
  let t2 =
    Ef.build ~subsystems ~engine:engine2 ~rng:(Dsim.Rng.create 1L)
      ~net_config:
        { Dsim.Network.default_config with drop_probability = 1.0 }
      store2
  in
  let client2 = Ef.new_client t2 ~on:"port1" ~attach:[] in
  let got = ref None in
  Ef.exec_remote t2 ~client:client2 ~on:"port2" ~reads:[] ~timeout:3.0
    ~on_result:(fun r -> got := Some r)
    ();
  ignore (Dsim.Engine.run engine2);
  check b "timeout surfaced" true (!got = Some (Error `Timeout));
  check i "no child spawned" 0 (Ef.children_spawned t2)

let test_errors () =
  let _, t = fixture () in
  let client = Ef.new_client t ~on:"port1" ~attach:[] in
  (match Ef.new_client t ~on:"ghost" ~attach:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown subsystem accepted");
  (match
     Ef.exec_remote t ~client ~on:"ghost" ~reads:[] ~on_result:(fun _ -> ()) ()
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown target accepted");
  let stranger = S.create_activity (Schemes.Per_process.store (Ef.world t)) in
  match
    Ef.exec_remote t ~client:stranger ~on:"port2" ~reads:[]
      ~on_result:(fun _ -> ())
      ()
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-client accepted"

let test_many_clients_parallel () =
  let engine, t = fixture () in
  let replies = ref 0 in
  for k = 1 to 8 do
    let client =
      Ef.new_client ~label:(Printf.sprintf "c%d" k) t ~on:"port1"
        ~attach:[ ("fs", "port1") ]
    in
    Ef.exec_remote t ~client ~on:"port2"
      ~reads:[ N.of_string "/fs/home/alice/input.txt" ]
      ~on_result:(fun r -> if Result.is_ok r then incr replies)
      ()
  done;
  ignore (Dsim.Engine.run engine);
  check i "all served" 8 !replies;
  check i "one child each" 8 (Ef.children_spawned t)

let suite =
  [
    Alcotest.test_case "remote read of client names" `Quick
      test_remote_read_of_client_names;
    Alcotest.test_case "remote read of local names" `Quick
      test_remote_read_of_local_names;
    Alcotest.test_case "unresolvable reads are None" `Quick
      test_unresolvable_reads_are_none;
    Alcotest.test_case "timeout under total loss" `Quick
      test_timeout_when_partitioned;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "eight clients in parallel" `Quick
      test_many_clients_parallel;
  ]

(* Tests for Harness.Worldgen — the seeded generative world builder,
   its probe samplers, and the estimate-vs-exact agreement the b18
   bench series relies on. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Cd = Naming.Codec
module Coh = Naming.Coherence
module W = Harness.Worldgen

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let all_templates = [ `Unixlike; `Perprocess; `Federated ]

let occurrences (w : Harness.Sample.world) =
  List.map Naming.Occurrence.generated w.Harness.Sample.activities

let dump t ~size ~seed =
  Cd.to_string (W.build t ~size ~seed).Harness.Sample.store

let test_deterministic () =
  List.iter
    (fun t ->
      let name = W.template_name t in
      let d1 = dump t ~size:400 ~seed:11L in
      check b (name ^ ": same seed rebuilds identical bytes") true
        (String.equal d1 (dump t ~size:400 ~seed:11L));
      check b (name ^ ": different seed differs") false
        (String.equal d1 (dump t ~size:400 ~seed:12L)))
    all_templates

let test_exact_size () =
  List.iter
    (fun t ->
      let w = W.build t ~size:800 ~seed:3L in
      check i
        (W.template_name t ^ ": store holds exactly size entities")
        800
        (S.cardinal w.Harness.Sample.store))
    all_templates;
  match W.build `Unixlike ~size:32 ~seed:1L with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized build accepted"

let test_template_names () =
  List.iter
    (fun t ->
      match W.template_of_string (W.template_name t) with
      | Some t' -> check b "name roundtrips" true (t = t')
      | None -> Alcotest.failf "template %s unparseable" (W.template_name t))
    all_templates;
  check i "templates list is exhaustive" (List.length all_templates)
    (List.length W.templates);
  check b "unknown template rejected" true
    (W.template_of_string "solaris" = None)

(* A built world survives serialisation: dump it, decode the bare
   store, rebuild a measurable world from labels alone, and the exact
   coherence report is unchanged. *)
let test_of_store_roundtrip () =
  List.iter
    (fun t ->
      let name = W.template_name t in
      let w = W.build t ~size:300 ~seed:5L in
      match W.of_store (Cd.of_string (Cd.to_string w.Harness.Sample.store)) with
      | None -> Alcotest.failf "%s: of_store failed on own dump" name
      | Some w' ->
          check i
            (name ^ ": activities survive")
            (List.length w.Harness.Sample.activities)
            (List.length w'.Harness.Sample.activities);
          let report (wx : Harness.Sample.world) =
            Coh.measure_seq wx.Harness.Sample.store wx.Harness.Sample.rule
              (occurrences wx) (W.probes_seq wx)
          in
          check (Alcotest.float 1e-12)
            (name ^ ": degree survives the dump")
            (Coh.degree (report w))
            (Coh.degree (report w')))
    all_templates

let test_of_store_rejects () =
  check b "empty store" true (W.of_store (S.create ()) = None);
  let st = S.create () in
  ignore (S.create_activity ~label:"p0" st);
  check b "activity without its .ctx object" true (W.of_store st = None)

let test_sampler_draws () =
  let w = W.build `Unixlike ~size:500 ~seed:21L in
  let st = w.Harness.Sample.store and ctx = w.Harness.Sample.ctx in
  let rng = Dsim.Rng.create 42L in
  let valid = W.sampler ~valid_fraction:1.0 w in
  for _ = 1 to 100 do
    let n = valid.Coh.draw rng in
    check b "valid draw resolves" true
      (E.is_defined (Naming.Resolver.resolve st ctx n))
  done;
  let noise = W.sampler ~valid_fraction:0.0 w in
  for _ = 1 to 100 do
    let n = noise.Coh.draw rng in
    check b "noise draw does not resolve" true
      (E.is_undefined (Naming.Resolver.resolve st ctx n))
  done

let test_uniform_sampler () =
  (match W.uniform_sampler [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty population accepted");
  let probes = [| N.of_string "/a"; N.of_string "/b"; N.of_string "/c" |] in
  let s = W.uniform_sampler probes in
  let rng = Dsim.Rng.create 1L in
  for _ = 1 to 30 do
    let n = s.Coh.draw rng in
    check b "draw comes from the population" true
      (Array.exists (fun p -> N.compare p n = 0) probes)
  done

let test_probes_seq_resolvable () =
  let w = W.build `Perprocess ~size:300 ~seed:6L in
  let st = w.Harness.Sample.store and ctx = w.Harness.Sample.ctx in
  let n_probes =
    Seq.fold_left
      (fun acc n ->
        check b "enumerated probe resolves" true
          (E.is_defined (Naming.Resolver.resolve st ctx n));
        acc + 1)
      0 (W.probes_seq w)
  in
  check b "population is non-trivial" true (n_probes > 100)

(* The b18 acceptance property: on small worlds where the exact sweep
   is cheap, the estimator run with a uniform sampler over the
   enumerated probe population must (a) produce a confidence interval
   bracketing the exact degree, and (b) return byte-identical records
   across jobs 1 vs 4 and across all three engines. *)
let prop_estimate_brackets_exact =
  QCheck.Test.make
    ~name:"estimate CI brackets exact degree; parity across engines x jobs"
    ~count:6
    QCheck.(pair small_nat (int_bound 2))
    (fun (seed, ti) ->
      let t = List.nth all_templates ti in
      let w = W.build t ~size:300 ~seed:(Int64.of_int (seed + 1)) in
      let st = w.Harness.Sample.store in
      let rule = w.Harness.Sample.rule in
      let occs = occurrences w in
      let probes = Array.of_seq (W.probes_seq w) in
      let exact =
        Coh.degree (Coh.measure_seq st rule occs (Array.to_seq probes))
      in
      let sampler = W.uniform_sampler probes in
      let est ?engine ~jobs () =
        Coh.estimate ?engine ~jobs ~confidence:0.999 ~epsilon:0.02
          ~max_samples:60_000
          ~rng:(Dsim.Rng.create (Int64.of_int (seed + 100)))
          st rule occs sampler
      in
      let base = est ~jobs:1 () in
      let others =
        est ~jobs:4 ()
        :: List.concat_map
             (fun kind ->
               let engine = Naming.Engine.create kind st in
               [ est ~engine ~jobs:1 (); est ~engine ~jobs:4 () ])
             [ `Interpreted; `Cached; `Compiled ]
      in
      List.iter
        (fun e ->
          if e <> base then
            QCheck.Test.fail_reportf
              "%s seed=%d: estimate differs across engine/jobs"
              (W.template_name t) seed)
        others;
      if not (base.Coh.ci_low -. 1e-9 <= exact && exact <= base.Coh.ci_high +. 1e-9)
      then
        QCheck.Test.fail_reportf
          "%s seed=%d: exact %.4f outside ci=[%.4f, %.4f] (n=%d)"
          (W.template_name t) seed exact base.Coh.ci_low base.Coh.ci_high
          base.Coh.samples;
      true)

let suite =
  [
    Alcotest.test_case "deterministic rebuild" `Quick test_deterministic;
    Alcotest.test_case "exact size" `Quick test_exact_size;
    Alcotest.test_case "template names" `Quick test_template_names;
    Alcotest.test_case "of_store roundtrip via codec" `Quick
      test_of_store_roundtrip;
    Alcotest.test_case "of_store rejects bad stores" `Quick
      test_of_store_rejects;
    Alcotest.test_case "sampler draws" `Quick test_sampler_draws;
    Alcotest.test_case "uniform sampler" `Quick test_uniform_sampler;
    Alcotest.test_case "probes_seq resolves" `Quick
      test_probes_seq_resolvable;
    QCheck_alcotest.to_alcotest prop_estimate_brackets_exact;
  ]

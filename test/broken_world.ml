(* A deliberately broken naming world for analyzer tests.

   Built deterministically so the diagnostic codes — and the JSON golden
   output — are stable:

   - [/selfbad]           its "." binding denotes the root      -> NG001
   - [/pbad]              its ".." binding denotes a file       -> NG002
   - [/det] (unlinked)    ".." names root, root lost it         -> NG003, NG005
   - [/etc ghost]         binding to an unallocated entity      -> NG004
   - [lost] + [/usr archive -> lost]
                          cross-link into a subtree whose own
                          parent no longer links it             -> NG003, NG007
   - [orphan]/[stray]     a context object + file nothing
                          reaches at all                        -> NG005 (x2)
   - [/cyc_a/cyc_b loop -> /cyc_a]
                          a non-dot cycle (and a benign
                          cross-link, and aliases)              -> NG008, NG006, NG009
   - [/etc tools -> /usr/bin]
                          a benign cross-link (and aliases)     -> NG006, NG009
   - activity p1 chrooted to /usr
                          probes "/" and "/etc/passwd" are
                          provably incoherent                   -> NG010 (x2)
   - probe "/usr/bin/cc" with [fuel = 3]                        -> NG011 *)

module S = Naming.Store
module N = Naming.Name
module E = Naming.Entity

let probes =
  List.map Naming.Name.of_string [ "/"; "/etc/passwd"; "/usr/bin/cc" ]

(* The fuel that leaves the 4-atom probe undecided. *)
let fuel = 3

let build () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs [ "etc/passwd"; "usr/bin/" ];
  let root = Vfs.Fs.root fs in
  let etc = Vfs.Fs.lookup fs "/etc" in
  let passwd = Vfs.Fs.lookup fs "/etc/passwd" in
  let usr = Vfs.Fs.lookup fs "/usr" in
  let bin = Vfs.Fs.lookup fs "/usr/bin" in
  (* NG001: "." that is not itself *)
  let selfbad = Vfs.Fs.mkdir_path fs "/selfbad" in
  S.bind st ~dir:selfbad N.self_atom root;
  (* NG002: ".." to a non-directory *)
  let pbad = Vfs.Fs.mkdir_path fs "/pbad" in
  S.bind st ~dir:pbad N.parent_atom passwd;
  (* NG003 + NG005: a directory whose parent forgot it *)
  let det = Vfs.Fs.mkdir_path fs "/det" in
  Vfs.Fs.unlink fs ~dir:root "det";
  ignore det;
  (* NG004: binding to an entity the store never allocated *)
  S.bind st ~dir:etc (N.atom "ghost") (E.Object 9999);
  (* NG003 + NG007: a subtree only a cross-link keeps alive *)
  let oldp = S.create_context_object ~label:"oldp" st in
  let lost = S.create_context_object ~label:"lost" st in
  S.bind st ~dir:lost N.self_atom lost;
  S.bind st ~dir:lost N.parent_atom oldp;
  S.bind st ~dir:usr (N.atom "archive") lost;
  (* NG005: a fully unreachable subtree *)
  let orphan = S.create_context_object ~label:"orphan" st in
  let stray = S.create_object ~label:"stray" st in
  S.bind st ~dir:orphan (N.atom "stray") stray;
  (* NG008 (+ NG006, NG009): a non-dot cycle *)
  let cyc_a = Vfs.Fs.mkdir_path fs "/cyc_a" in
  let cyc_b = Vfs.Fs.mkdir_path fs "/cyc_a/cyc_b" in
  S.bind st ~dir:cyc_b (N.atom "loop") cyc_a;
  (* NG006 + NG009: a benign cross-link *)
  S.bind st ~dir:etc (N.atom "tools") bin;
  (* NG009: a plain alias *)
  S.bind st ~dir:etc (N.atom "pw2") passwd;
  (* Two activities, the second chrooted to /usr -> NG010 on "/" and
     "/etc/passwd". *)
  let env = Schemes.Process_env.create st in
  let p0 = Schemes.Process_env.spawn ~label:"p0" ~root env in
  let p1 = Schemes.Process_env.spawn ~label:"p1" ~root:usr env in
  Analysis.Subject.v ~probes ~rule:(Schemes.Process_env.rule env)
    ~activities:[ p0; p1 ] st

(* The full pretty-JSON report (fuel = 3, label "broken"), kept as a
   golden string: object numbering is deterministic, so any drift in
   renderers, pass order or diagnostic text shows up here. *)
let expected_json =
  {golden|{
  "label": "broken",
  "activities": 2,
  "objects": 16,
  "context_objects": 14,
  "probes": 3,
  "passes": [
    "structure",
    "reachability",
    "crosslinks",
    "cycles",
    "aliases",
    "coherence"
  ],
  "counts": {
    "error": 6,
    "warning": 6,
    "info": 7
  },
  "diagnostics": [
    {
      "code": "NG001",
      "severity": "error",
      "pass": "structure",
      "message": "selfbad(o5): '.' does not denote itself",
      "entities": [
        {
          "entity": "o5",
          "label": "selfbad"
        }
      ]
    },
    {
      "code": "NG002",
      "severity": "error",
      "pass": "structure",
      "message": "pbad(o6): '..' denotes non-directory passwd(o2)",
      "entities": [
        {
          "entity": "o6",
          "label": "pbad"
        },
        {
          "entity": "o2",
          "label": "passwd"
        }
      ]
    },
    {
      "code": "NG003",
      "severity": "error",
      "pass": "structure",
      "message": "det(o7): parent /(o0) does not link back",
      "entities": [
        {
          "entity": "o7",
          "label": "det"
        },
        {
          "entity": "o0",
          "label": "/"
        }
      ]
    },
    {
      "code": "NG003",
      "severity": "error",
      "pass": "structure",
      "message": "lost(o9): parent oldp(o8) does not link back",
      "entities": [
        {
          "entity": "o9",
          "label": "lost"
        },
        {
          "entity": "o8",
          "label": "oldp"
        }
      ]
    },
    {
      "code": "NG004",
      "severity": "error",
      "pass": "structure",
      "message": "etc(o1): binding ghost -> unknown entity o9999",
      "entities": [
        {
          "entity": "o1",
          "label": "etc"
        },
        {
          "entity": "o9999"
        }
      ]
    },
    {
      "code": "NG007",
      "severity": "error",
      "pass": "crosslinks",
      "message": "dangling cross-link usr(o3) -[archive]-> lost(o9): the target's own tree has lost it",
      "entities": [
        {
          "entity": "o3",
          "label": "usr"
        },
        {
          "entity": "o9",
          "label": "lost"
        }
      ]
    },
    {
      "code": "NG005",
      "severity": "warning",
      "pass": "reachability",
      "message": "det(o7) is unreachable from every activity root",
      "entities": [
        {
          "entity": "o7",
          "label": "det"
        }
      ]
    },
    {
      "code": "NG005",
      "severity": "warning",
      "pass": "reachability",
      "message": "orphan(o10) is unreachable from every activity root",
      "entities": [
        {
          "entity": "o10",
          "label": "orphan"
        }
      ]
    },
    {
      "code": "NG005",
      "severity": "warning",
      "pass": "reachability",
      "message": "stray(o11) is unreachable from every activity root",
      "entities": [
        {
          "entity": "o11",
          "label": "stray"
        }
      ]
    },
    {
      "code": "NG008",
      "severity": "warning",
      "pass": "cycles",
      "message": "non-dot cycle: cyc_a(o12) -> cyc_b(o13) -> cyc_a(o12)",
      "entities": [
        {
          "entity": "o12",
          "label": "cyc_a"
        },
        {
          "entity": "o13",
          "label": "cyc_b"
        }
      ]
    },
    {
      "code": "NG010",
      "severity": "warning",
      "pass": "coherence",
      "message": "probe / is provably incoherent: generated(by=a14) -> /(o0), generated(by=a16) -> usr(o3)",
      "entities": [
        {
          "entity": "o0",
          "label": "/"
        },
        {
          "entity": "o3",
          "label": "usr"
        }
      ],
      "name": "/",
      "trace": [
        {
          "at": "⊥",
          "atom": "/",
          "target": "o3(usr)"
        }
      ]
    },
    {
      "code": "NG010",
      "severity": "warning",
      "pass": "coherence",
      "message": "probe /etc/passwd is provably incoherent: generated(by=a14) -> passwd(o2), generated(by=a16) -> ⊥",
      "entities": [
        {
          "entity": "o2",
          "label": "passwd"
        }
      ],
      "name": "/etc/passwd",
      "trace": [
        {
          "at": "⊥",
          "atom": "/",
          "target": "o3(usr)"
        },
        {
          "at": "o3(usr)",
          "atom": "etc",
          "target": "⊥"
        }
      ]
    },
    {
      "code": "NG006",
      "severity": "info",
      "pass": "crosslinks",
      "message": "cross-link cyc_b(o13) -[loop]-> cyc_a(o12) (enters a tree from outside)",
      "entities": [
        {
          "entity": "o13",
          "label": "cyc_b"
        },
        {
          "entity": "o12",
          "label": "cyc_a"
        }
      ]
    },
    {
      "code": "NG006",
      "severity": "info",
      "pass": "crosslinks",
      "message": "cross-link etc(o1) -[tools]-> bin(o4) (enters a tree from outside)",
      "entities": [
        {
          "entity": "o1",
          "label": "etc"
        },
        {
          "entity": "o4",
          "label": "bin"
        }
      ]
    },
    {
      "code": "NG009",
      "severity": "info",
      "pass": "aliases",
      "message": "bin(o4) has 2 non-dot names from p0(a14)'s root: etc/tools, usr/bin",
      "entities": [
        {
          "entity": "o4",
          "label": "bin"
        },
        {
          "entity": "a14",
          "label": "p0"
        }
      ]
    },
    {
      "code": "NG009",
      "severity": "info",
      "pass": "aliases",
      "message": "cyc_a(o12) has 2 non-dot names from p0(a14)'s root: cyc_a, cyc_a/cyc_b/loop",
      "entities": [
        {
          "entity": "o12",
          "label": "cyc_a"
        },
        {
          "entity": "a14",
          "label": "p0"
        }
      ]
    },
    {
      "code": "NG009",
      "severity": "info",
      "pass": "aliases",
      "message": "cyc_b(o13) has 2 non-dot names from p0(a14)'s root: cyc_a/cyc_b, cyc_a/cyc_b/loop/cyc_b",
      "entities": [
        {
          "entity": "o13",
          "label": "cyc_b"
        },
        {
          "entity": "a14",
          "label": "p0"
        }
      ]
    },
    {
      "code": "NG009",
      "severity": "info",
      "pass": "aliases",
      "message": "passwd(o2) has 2 non-dot names from p0(a14)'s root: etc/passwd, etc/pw2",
      "entities": [
        {
          "entity": "o2",
          "label": "passwd"
        },
        {
          "entity": "a14",
          "label": "p0"
        }
      ]
    },
    {
      "code": "NG011",
      "severity": "info",
      "pass": "coherence",
      "message": "probe /usr/bin/cc undecided: name has 4 atoms, analysis budget is 3",
      "entities": [],
      "name": "/usr/bin/cc"
    }
  ]
}|golden}

(* Every code the fixture is expected to trip, in report order. *)
let expected_codes =
  [
    "NG001"; "NG002"; "NG003"; "NG003"; "NG004"; "NG007";
    "NG005"; "NG005"; "NG005"; "NG008"; "NG010"; "NG010";
    "NG006"; "NG006"; "NG009"; "NG009"; "NG009"; "NG009"; "NG011";
  ]

(* Tests for Vfs.Fs — the file-system substrate. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Fs = Vfs.Fs

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let make () =
  let st = S.create () in
  (st, Fs.create st)

let test_create_root () =
  let st, fs = make () in
  check b "root is dir" true (S.is_context_object st (Fs.root fs));
  check entity "lookup /" (Fs.root fs) (Fs.lookup fs "/");
  (* dots on the root *)
  check entity "root/." (Fs.root fs)
    (Fs.resolve_from fs ~dir:(Fs.root fs) (N.of_string "."));
  check entity "root/.. is root" (Fs.root fs)
    (Fs.resolve_from fs ~dir:(Fs.root fs) (N.of_string ".."))

let test_mkdir_and_lookup () =
  let st, fs = make () in
  let d = Fs.mkdir fs ~under:(Fs.root fs) "home" in
  check b "is dir" true (S.is_context_object st d);
  check entity "lookup" d (Fs.lookup fs "/home");
  (* idempotent *)
  check entity "mkdir again returns same" d (Fs.mkdir fs ~under:(Fs.root fs) "home")

let test_mkdir_path () =
  let _, fs = make () in
  let d = Fs.mkdir_path fs "/a/b/c" in
  check entity "deep" d (Fs.lookup fs "/a/b/c");
  check b "intermediate exists" true
    (E.is_defined (Fs.lookup fs "/a/b"));
  (* relative spelling goes from root too *)
  check entity "relative same" d (Fs.mkdir_path fs "a/b/c")

let test_add_file () =
  let _, fs = make () in
  let f = Fs.add_file fs "/etc/passwd" ~content:"root" in
  check b "kind file" true (Fs.kind fs f = `File);
  check b "content" true (Fs.read fs f = Some "root");
  let f2 = Fs.add_file fs "/etc/passwd" ~content:"v2" in
  check entity "same entity on overwrite" f f2;
  check b "overwritten" true (Fs.read fs f = Some "v2")

let test_add_file_conflicts () =
  let _, fs = make () in
  ignore (Fs.mkdir_path fs "/var/log");
  (match Fs.add_file fs "/var/log" ~content:"x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "file over directory accepted");
  (match Fs.add_file fs "/" ~content:"x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "file at root accepted")

let test_write_read () =
  let _, fs = make () in
  let f = Fs.add_file fs "/f" ~content:"a" in
  Fs.write fs f "b";
  check b "written" true (Fs.read fs f = Some "b");
  let d = Fs.mkdir_path fs "/d" in
  check b "read dir is none" true (Fs.read fs d = None);
  (match Fs.write fs d "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "write to dir accepted")

let test_populate () =
  let _, fs = make () in
  Fs.populate fs [ "bin/ls"; "tmp/"; "usr/lib/libc.a" ];
  check b "file" true (Fs.kind fs (Fs.lookup fs "/bin/ls") = `File);
  check b "dir spec" true (Fs.kind fs (Fs.lookup fs "/tmp") = `Dir);
  check b "nested" true (Fs.kind fs (Fs.lookup fs "/usr/lib/libc.a") = `File)

let test_resolve_from_and_dots () =
  let _, fs = make () in
  Fs.populate fs [ "a/b/f"; "a/g" ];
  let bdir = Fs.lookup fs "/a/b" in
  check entity "relative" (Fs.lookup fs "/a/b/f")
    (Fs.resolve_from fs ~dir:bdir (N.of_string "f"));
  check entity "dotdot" (Fs.lookup fs "/a/g")
    (Fs.resolve_from fs ~dir:bdir (N.of_string "../g"));
  check entity "dot" bdir (Fs.resolve_from fs ~dir:bdir (N.of_string "."));
  check entity "missing" E.undefined
    (Fs.resolve_from fs ~dir:bdir (N.of_string "zzz"))

let test_readdir_excludes_dots () =
  let _, fs = make () in
  Fs.populate fs [ "d/x"; "d/y" ];
  let d = Fs.lookup fs "/d" in
  let entries = List.map (fun (a, _) -> N.atom_to_string a) (Fs.readdir fs d) in
  check (Alcotest.list Alcotest.string) "entries" [ "x"; "y" ] entries

let test_parent_of () =
  let _, fs = make () in
  Fs.populate fs [ "a/b/" ];
  let a = Fs.lookup fs "/a" and ab = Fs.lookup fs "/a/b" in
  check b "parent" true (Fs.parent_of fs ab = Some a);
  check b "root parent is root" true
    (Fs.parent_of fs (Fs.root fs) = Some (Fs.root fs))

let test_link_unlink () =
  let _, fs = make () in
  let f = Fs.add_file fs "/a/orig" ~content:"x" in
  let d = Fs.mkdir_path fs "/b" in
  Fs.link fs ~dir:d "alias" f;
  check entity "hard link" f (Fs.lookup fs "/b/alias");
  Fs.unlink fs ~dir:d "alias";
  check entity "unlinked" E.undefined (Fs.lookup fs "/b/alias");
  check entity "original remains" f (Fs.lookup fs "/a/orig");
  (match Fs.link fs ~dir:f "x" d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "link inside a file accepted")

let test_dir_link_shared_subtree () =
  (* Linking a directory under two names gives a shared subtree — the
     Andrew /vice attachment. *)
  let _, fs = make () in
  Fs.populate fs [ "shared/data" ];
  let sh = Fs.lookup fs "/shared" in
  let d = Fs.mkdir_path fs "/mnt" in
  Fs.link fs ~dir:d "vice" sh;
  check entity "same entity via both names" (Fs.lookup fs "/shared/data")
    (Fs.lookup fs "/mnt/vice/data")

let test_paths_of () =
  let _, fs = make () in
  Fs.populate fs [ "a/f" ];
  let f = Fs.lookup fs "/a/f" in
  let d = Fs.mkdir_path fs "/b" in
  Fs.link fs ~dir:d "g" f;
  let paths = List.map N.to_string (Fs.paths_of fs ~target:f ~max_depth:4) in
  check b "original path" true (List.mem "a/f" paths);
  check b "link path" true (List.mem "b/g" paths)

let test_tree_size () =
  let _, fs = make () in
  Fs.populate fs [ "a/f"; "a/g"; "b/" ];
  (* root, a, f, g, b *)
  check i "size" 5 (Fs.tree_size fs)

let test_of_root () =
  let st, fs = make () in
  let d = Fs.mkdir_path fs "/sub" in
  let sub = Fs.of_root st d in
  ignore (Fs.add_file sub "inner/f" ~content:"x");
  check b "built under subroot" true
    (E.is_defined (Fs.lookup fs "/sub/inner/f"));
  let file = Fs.add_file fs "/plain" ~content:"" in
  (match Fs.of_root st file with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_root on a file accepted")

let test_rename () =
  let _, fs = make () in
  let f = Fs.add_file fs "/a/old" ~content:"x" in
  let a = Fs.lookup fs "/a" in
  Fs.rename fs ~dir:a "old" "new";
  check entity "renamed" f (Fs.lookup fs "/a/new");
  check entity "old gone" E.undefined (Fs.lookup fs "/a/old");
  (match Fs.rename fs ~dir:a "ghost" "x" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rename of unbound accepted");
  ignore (Fs.add_file fs "/a/taken" ~content:"");
  (match Fs.rename fs ~dir:a "new" "taken" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rename onto existing accepted")

let test_remove_tree () =
  let _, fs = make () in
  Fs.populate fs [ "d/x"; "d/y"; "keep" ];
  Fs.remove_tree fs ~dir:(Fs.root fs) "d";
  check entity "removed" E.undefined (Fs.lookup fs "/d/x");
  check b "sibling kept" true (E.is_defined (Fs.lookup fs "/keep"));
  (match Fs.remove_tree fs ~dir:(Fs.root fs) "d" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double remove accepted")

let test_walk () =
  let _, fs = make () in
  Fs.populate fs [ "a/b/f"; "a/g"; "h" ];
  let seen = ref [] in
  Fs.walk fs (Fs.root fs) (fun n _e -> seen := N.to_string n :: !seen);
  let seen = List.sort compare !seen in
  check (Alcotest.list Alcotest.string) "visits everything"
    [ "a"; "a/b"; "a/b/f"; "a/g"; "h" ] seen

let test_walk_links () =
  let _, fs = make () in
  Fs.populate fs [ "proj/src/"; "other/lib/thing" ]; 
  let proj = Fs.lookup fs "/proj" in
  let other = Fs.lookup fs "/other" in
  Fs.link fs ~dir:proj "ext" other;
  (* default: the foreign directory is reported but not entered *)
  let seen = ref [] in
  Fs.walk fs proj (fun n _e -> seen := N.to_string n :: !seen);
  check b "link reported" true (List.mem "ext" !seen);
  check b "not entered" false (List.mem "ext/lib" !seen);
  (* follow_links: entered, but each node still visited once *)
  let seen = ref [] in
  Fs.walk fs ~follow_links:true proj (fun n _e ->
      seen := N.to_string n :: !seen);
  check b "entered with follow_links" true (List.mem "ext/lib/thing" !seen)

let test_find_literal_and_star () =
  let _, fs = make () in
  Fs.populate fs [ "a/x.txt"; "a/y.txt"; "b/x.txt"; "a/sub/z.txt" ];
  let names pat =
    List.map (fun (n, _) -> N.to_string n) (Fs.find fs (Fs.root fs) ~pattern:pat)
  in
  check (Alcotest.list Alcotest.string) "literal" [ "a/x.txt" ] (names "a/x.txt");
  check (Alcotest.list Alcotest.string) "star dir" [ "a/x.txt"; "b/x.txt" ]
    (names "*/x.txt");
  check (Alcotest.list Alcotest.string) "star leaf"
    [ "a/sub"; "a/x.txt"; "a/y.txt" ]
    (List.sort compare (names "a/*"));
  check (Alcotest.list Alcotest.string) "no match" [] (names "zz/*")

let test_find_deep () =
  let _, fs = make () in
  Fs.populate fs [ "a/x"; "a/sub/y"; "b/" ];
  let names pat =
    List.sort compare
      (List.map (fun (n, _) -> N.to_string n)
         (Fs.find fs (Fs.root fs) ~pattern:pat))
  in
  check (Alcotest.list Alcotest.string) "everything"
    [ "a"; "a/sub"; "a/sub/y"; "a/x"; "b" ]
    (names "**");
  check (Alcotest.list Alcotest.string) "scoped deep"
    [ "a/sub"; "a/sub/y"; "a/x" ]
    (names "a/**")

let test_find_errors () =
  let _, fs = make () in
  (match Fs.find fs (Fs.root fs) ~pattern:"" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pattern accepted");
  (match Fs.find fs (Fs.root fs) ~pattern:"**/x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inner ** accepted")

let test_kind () =
  let st, fs = make () in
  let f = Fs.add_file fs "/f" ~content:"" in
  check b "file" true (Fs.kind fs f = `File);
  check b "dir" true (Fs.kind fs (Fs.root fs) = `Dir);
  check b "missing" true (Fs.kind fs E.undefined = `Missing);
  let a = S.create_activity st in
  check b "activity is other" true (Fs.kind fs a = `Other)

(* Model-based property: a random op sequence applied to Fs and to a
   naive path-map model yields the same observable file system. *)
module Model = struct
  type node = Dir | File of string

  (* path (list of atoms, root-relative) -> node; root implicit *)
  type t = (string list * node) list ref

  let create () : t = ref []

  let mem m path = List.mem_assoc path !m

  let ensure_dirs m path =
    let rec prefixes acc = function
      | [] -> []
      | a :: rest ->
          let here = acc @ [ a ] in
          here :: prefixes here rest
    in
    List.iter
      (fun p -> if not (mem m p) then m := (p, Dir) :: !m)
      (prefixes [] path)

  let mkdir_path m path = ensure_dirs m path

  let add_file m path content =
    (match List.rev path with
    | [] -> ()
    | _ :: rev_dirs -> ensure_dirs m (List.rev rev_dirs));
    m := (path, File content) :: List.remove_assoc path !m

  let unlink m path =
    (* removing a binding removes the whole subtree from view *)
    let prefix p q =
      let rec go p q =
        match (p, q) with
        | [], _ -> true
        | _, [] -> false
        | a :: ps, b :: qs -> String.equal a b && go ps qs
      in
      go p q
    in
    m := List.filter (fun (q, _) -> not (prefix path q)) !m

  let dirs m = List.filter_map (fun (p, n) -> if n = Dir then Some p else None) !m
  let files m =
    List.filter_map (fun (p, n) -> match n with File c -> Some (p, c) | Dir -> None) !m
end

let prop_fs_matches_model =
  QCheck.Test.make ~name:"Fs agrees with a naive path-map model" ~count:40
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let st = S.create () in
      let fs = Fs.create st in
      let model = Model.create () in
      let atoms = [| "a"; "b"; "c"; "d" |] in
      let random_path () =
        List.init
          (1 + Dsim.Rng.int rng 3)
          (fun _ -> Dsim.Rng.pick_array rng atoms)
      in
      let path_str p = "/" ^ String.concat "/" p in
      for _ = 1 to 40 do
        let p = random_path () in
        match Dsim.Rng.int rng 3 with
        | 0 ->
            (* mkdir -p unless the path crosses a file *)
            let crosses_file =
              List.exists
                (fun (q, n) ->
                  n <> Model.Dir
                  &&
                  let rec is_prefix q p =
                    match (q, p) with
                    | [], _ -> true
                    | _, [] -> false
                    | a :: qs, b :: ps -> String.equal a b && is_prefix qs ps
                  in
                  is_prefix q p)
                !model
            in
            if not crosses_file then begin
              ignore (Fs.mkdir_path fs (path_str p));
              Model.mkdir_path model p
            end
        | 1 ->
            (* add_file unless the path (or a prefix) is a dir/file clash *)
            let parent_ok =
              (not (Model.mem model p))
              || List.assoc_opt p !model <> Some Model.Dir
            in
            let crosses_file =
              List.exists
                (fun (q, n) ->
                  n <> Model.Dir
                  && q <> p
                  &&
                  let rec is_prefix q p =
                    match (q, p) with
                    | [], _ -> true
                    | _, [] -> false
                    | a :: qs, b :: ps -> String.equal a b && is_prefix qs ps
                  in
                  is_prefix q p)
                !model
            in
            if parent_ok && not crosses_file then begin
              let content = Printf.sprintf "c%d" (Dsim.Rng.int rng 100) in
              ignore (Fs.add_file fs (path_str p) ~content);
              Model.add_file model p content
            end
        | _ -> (
            (* unlink an existing top-level-ish binding *)
            match !model with
            | [] -> ()
            | entries ->
                let q, _ = Dsim.Rng.pick rng entries in
                (match List.rev q with
                | [] -> ()
                | last :: rev_parent ->
                    let parent_path = List.rev rev_parent in
                    let parent_entity =
                      if parent_path = [] then Fs.root fs
                      else Fs.lookup fs (path_str parent_path)
                    in
                    if S.is_context_object st parent_entity then begin
                      Fs.unlink fs ~dir:parent_entity last;
                      Model.unlink model q
                    end))
      done;
      (* compare: every model dir is a dir, every model file has the right
         content, and nothing else is visible at the model's paths *)
      List.for_all
        (fun p -> Fs.kind fs (Fs.lookup fs (path_str p)) = `Dir)
        (Model.dirs model)
      && List.for_all
           (fun (p, content) ->
             Fs.read fs (Fs.lookup fs (path_str p)) = Some content)
           (Model.files model))

let suite =
  [
    Alcotest.test_case "create root" `Quick test_create_root;
    Alcotest.test_case "mkdir and lookup" `Quick test_mkdir_and_lookup;
    Alcotest.test_case "mkdir_path" `Quick test_mkdir_path;
    Alcotest.test_case "add_file" `Quick test_add_file;
    Alcotest.test_case "add_file conflicts" `Quick test_add_file_conflicts;
    Alcotest.test_case "write/read" `Quick test_write_read;
    Alcotest.test_case "populate" `Quick test_populate;
    Alcotest.test_case "resolve_from and dots" `Quick test_resolve_from_and_dots;
    Alcotest.test_case "readdir excludes dots" `Quick test_readdir_excludes_dots;
    Alcotest.test_case "parent_of" `Quick test_parent_of;
    Alcotest.test_case "link/unlink" `Quick test_link_unlink;
    Alcotest.test_case "shared subtree via dir link" `Quick
      test_dir_link_shared_subtree;
    Alcotest.test_case "paths_of" `Quick test_paths_of;
    Alcotest.test_case "tree_size" `Quick test_tree_size;
    Alcotest.test_case "of_root" `Quick test_of_root;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "remove_tree" `Quick test_remove_tree;
    Alcotest.test_case "walk" `Quick test_walk;
    Alcotest.test_case "walk and links" `Quick test_walk_links;
    Alcotest.test_case "kind" `Quick test_kind;
    Alcotest.test_case "find: literal and star" `Quick
      test_find_literal_and_star;
    Alcotest.test_case "find: deep" `Quick test_find_deep;
    Alcotest.test_case "find: errors" `Quick test_find_errors;
    QCheck_alcotest.to_alcotest prop_fs_matches_model;
  ]

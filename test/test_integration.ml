(* Integration scenarios across libraries: schemes driven over the
   simulated network, with loss, duplication and reconfiguration. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

(* -- 1. name exchange over a lossy network ----------------------------- *)

let test_lossy_exchange () =
  let st = S.create () in
  let world = Schemes.Newcastle.build ~machines:[ "u1"; "u2" ] st in
  let p1 = Schemes.Newcastle.spawn_on world ~machine:"u1" in
  let p2 = Schemes.Newcastle.spawn_on world ~machine:"u2" in
  let engine = Dsim.Engine.create () in
  let net =
    Dsim.Network.create
      ~config:{ Dsim.Network.default_config with drop_probability = 0.3 }
      ~engine ~rng:(Dsim.Rng.create 11L) ()
  in
  let node = Dsim.Network.add_node net ~label:"wire" in
  let actors = Hashtbl.create 4 in
  let actor_of e =
    match Hashtbl.find_opt actors e with
    | Some a -> a
    | None ->
        let a = Dsim.Actor.create net ~node ~port:(Hashtbl.length actors + 1) in
        Hashtbl.replace actors e a;
        a
  in
  let probes = Schemes.Newcastle.absolute_probes world ~machine:"u1" ~max_depth:3 in
  let events =
    List.concat_map
      (fun name ->
        [
          { Workload.Exchange.sender = p1; receiver = p2; name };
          { Workload.Exchange.sender = p2; receiver = p1; name };
        ])
      probes
  in
  let delivered =
    Workload.Exchange.run_over_network ~engine ~network:net ~actor_of events
  in
  let stats = Dsim.Network.stats net in
  check i "sent all" (List.length events) stats.Dsim.Network.sent;
  check i "accounting adds up" stats.Dsim.Network.sent
    (stats.Dsim.Network.delivered + stats.Dsim.Network.dropped
   + stats.Dsim.Network.cut);
  check b "some loss" true (stats.Dsim.Network.dropped > 0);
  check b "some delivery" true (delivered <> []);
  (* Every delivered name is incoherent between the two machines — loss
     does not change what resolution says. *)
  let rule = Schemes.Newcastle.rule world in
  List.iter
    (fun (sender, receiver, name) ->
      match
        Coh.check st rule
          [ O.generated sender; O.received ~sender ~receiver ]
          name
      with
      | Coh.Incoherent _ -> ()
      | v ->
          Alcotest.failf "expected incoherence for %s: %a" (N.to_string name)
            Coh.pp_verdict v)
    delivered

(* -- 2. remote execution with parameters shipped as messages ----------- *)

let test_remote_exec_pipeline () =
  let st = S.create () in
  let tree = Schemes.Unix_scheme.default_tree in
  let world =
    Schemes.Per_process.build ~subsystems:[ ("port1", tree); ("port2", tree) ] st
  in
  let parent = Schemes.Per_process.spawn ~attach:[ ("fs", "port1") ] world in
  let child =
    Schemes.Per_process.remote_exec world ~parent ~subsystem:"port2"
  in
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create ~engine ~rng:(Dsim.Rng.create 5L) () in
  let n1 = Dsim.Network.add_node net ~label:"port1" in
  let n2 = Dsim.Network.add_node net ~label:"port2" in
  let parent_actor = Dsim.Actor.create net ~node:n1 ~port:1 in
  let child_actor = Dsim.Actor.create net ~node:n2 ~port:1 in
  (* The child resolves every parameter the moment it arrives. *)
  let resolved = ref [] in
  Dsim.Actor.on_receive child_actor (fun env ->
      let name = env.Dsim.Network.payload in
      resolved :=
        (name, Schemes.Process_env.resolve (Schemes.Per_process.env world)
           ~as_:child name)
        :: !resolved);
  let params =
    List.filter_map
      (fun n -> if N.length n <= 4 then Some n else None)
      (Schemes.Per_process.namespace_probes world parent ~max_depth:4)
  in
  List.iter (fun p -> Dsim.Actor.send parent_actor ~to_:child_actor p) params;
  ignore (Dsim.Engine.run engine);
  check i "all params arrived" (List.length params) (List.length !resolved);
  List.iter
    (fun (name, child_meaning) ->
      let parent_meaning =
        Schemes.Process_env.resolve (Schemes.Per_process.env world) ~as_:parent
          name
      in
      if not (E.is_defined child_meaning && E.equal parent_meaning child_meaning)
      then
        Alcotest.failf "parameter %s incoherent across remote exec"
          (N.to_string name))
    !resolved

(* -- 3. reconfiguration storm ------------------------------------------ *)

let test_reconfiguration_storm () =
  let reg = Netaddr.Registry.create () in
  let rng = Dsim.Rng.create 13L in
  let nets =
    List.init 3 (fun k ->
        Netaddr.Registry.add_network reg ~label:(Printf.sprintf "n%d" k))
  in
  List.iter
    (fun net ->
      for m = 0 to 2 do
        let mach =
          Netaddr.Registry.add_machine reg ~net ~label:(Printf.sprintf "m%d" m)
        in
        for p = 0 to 2 do
          ignore
            (Netaddr.Registry.add_process reg ~mach
               ~label:(Printf.sprintf "p%d" p))
        done
      done)
    nets;
  let procs = Netaddr.Registry.all_processes reg in
  (* same-machine connections, to check the paper's immunity claim under
     a long mixed storm (renumber AND move) *)
  let machine_pairs =
    List.concat_map
      (fun holder ->
        List.filter_map
          (fun target ->
            if
              holder <> target
              && Netaddr.Registry.machine_of_proc reg holder
                 = Netaddr.Registry.machine_of_proc reg target
            then
              Some
                ( holder,
                  target,
                  Netaddr.Registry.pid_of reg ~target ~relative_to:holder )
            else None)
          procs)
      procs
  in
  let ops =
    Workload.Reconfig.random_ops reg ~rng ~n:100
      ~kinds:[ `Renumber_machine; `Renumber_network; `Move_machine ] ()
  in
  check i "storm applied" 100 (List.length ops);
  (* invariant: current placements still resolve *)
  List.iter
    (fun holder ->
      List.iter
        (fun target ->
          match
            Netaddr.Registry.resolve reg ~from:holder
              (Netaddr.Registry.pid_of reg ~target ~relative_to:holder)
          with
          | Some p when p = target -> ()
          | _ -> Alcotest.fail "fresh pid does not resolve after storm")
        procs)
    procs;
  (* machine-local pids survive even moves of their machine: the whole
     machine moved, so (0,0,l) still denotes the same neighbour *)
  List.iter
    (fun (holder, target, pid) ->
      match Netaddr.Registry.resolve reg ~from:holder pid with
      | Some p when p = target -> ()
      | _ -> Alcotest.fail "machine-local pid broke during the storm")
    machine_pairs

(* -- 4. document workflow across machines ------------------------------ *)

let test_document_workflow () =
  let st = S.create () in
  let fs1 = Vfs.Fs.create ~root_label:"m1:/" st in
  let fs2 = Vfs.Fs.create ~root_label:"m2:/" st in
  Vfs.Fs.populate fs1 [ "home/alice/" ];
  Vfs.Fs.populate fs2 [ "import/" ];
  let rng = Dsim.Rng.create 21L in
  let project =
    Workload.Docgen.build fs1 ~at:"home/alice/tool" ~rng
      ~spec:Workload.Docgen.default_spec
  in
  (* ship the project to the other machine: relocate across file systems
     (same store — entities keep their identity) *)
  let alice = Vfs.Fs.lookup fs1 "home/alice" in
  let import = Vfs.Fs.lookup fs2 "import" in
  Vfs.Subtree.relocate fs1 ~src:alice ~name:"tool" ~dst:import ();
  check b "gone from m1" true
    (E.is_undefined (Vfs.Fs.lookup fs1 "home/alice/tool"));
  check b "arrived on m2" true (E.equal project (Vfs.Fs.lookup fs2 "/import/tool"));
  (* all embedded refs still resolve, to the same entities *)
  List.iter
    (fun (dir, file) ->
      List.iter
        (fun r ->
          if E.is_undefined (Schemes.Embedded.resolve_at st ~dir r) then
            Alcotest.failf "ref %s broke after cross-machine move"
              (N.to_string r))
        (Schemes.Embedded.refs_of st file))
    (Workload.Docgen.sources fs2 project)

(* -- 4b. name-server crash and recovery --------------------------------- *)

let test_server_crash_recovery () =
  let st = S.create () in
  let world = Schemes.Unix_scheme.build st in
  let server_proc = Schemes.Unix_scheme.spawn world in
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create ~engine ~rng:(Dsim.Rng.create 17L) () in
  let sn = Dsim.Network.add_node net ~label:"server" in
  let cn = Dsim.Network.add_node net ~label:"client" in
  let server =
    Dsim.Rpc.create net ~node:sn ~port:1
      ~handler:(fun name ->
        Some
          (E.to_string
             (Schemes.Unix_scheme.resolve world ~as_:server_proc
                (N.to_string name))))
      ()
  in
  let client = Dsim.Rpc.create net ~node:cn ~port:1 () in
  let outcomes = ref [] in
  let query () =
    Dsim.Rpc.call client ~to_:(Dsim.Rpc.address server) ~timeout:5.0
      (N.of_string "/bin/ls") ~on_reply:(fun r -> outcomes := r :: !outcomes)
  in
  (* healthy *)
  query ();
  ignore (Dsim.Engine.run engine);
  (* crash: queries time out *)
  Dsim.Network.set_node_up net sn false;
  query ();
  query ();
  ignore (Dsim.Engine.run engine);
  (* recovery: the same endpoint serves again *)
  Dsim.Network.set_node_up net sn true;
  query ();
  ignore (Dsim.Engine.run engine);
  match List.rev !outcomes with
  | [ Ok first; Error `Timeout; Error `Timeout; Ok last ] ->
      check b "same answer before and after the crash" true (first = last)
  | l -> Alcotest.failf "unexpected outcome sequence (%d)" (List.length l)

(* -- 5. determinism ----------------------------------------------------- *)

let test_determinism () =
  let r1 = Harness.Exp_pqid.measure ~seed:99L () in
  let r2 = Harness.Exp_pqid.measure ~seed:99L () in
  check b "identical results for identical seeds" true (r1 = r2);
  let r3 = Harness.Exp_pqid.measure ~seed:100L () in
  check b "different seed, different trajectory" true
    (r1.Harness.Exp_pqid.survival <> r3.Harness.Exp_pqid.survival
    || r1.Harness.Exp_pqid.transit <> r3.Harness.Exp_pqid.transit)

(* -- 6. store round-trips preserve experiment results ------------------- *)

let test_codec_preserves_coherence () =
  let st = S.create () in
  let world = Schemes.Shared_graph.build ~clients:[ "c1"; "c2" ] st in
  let p1 = Schemes.Shared_graph.spawn_on world ~client:"c1" in
  let p2 = Schemes.Shared_graph.spawn_on world ~client:"c2" in
  let probes = Schemes.Shared_graph.shared_probes world ~max_depth:4 in
  let rule = Schemes.Shared_graph.rule world in
  let occs = [ O.generated p1; O.generated p2 ] in
  let before = Coh.measure st rule occs probes in
  let st' = Naming.Codec.of_string (Naming.Codec.to_string st) in
  (* the rule's assignment references context objects by identity; ids are
     preserved by the codec, so the SAME rule works against the copy *)
  let after = Coh.measure st' rule occs probes in
  check b "coherence report identical" true (before = after)

let suite =
  [
    Alcotest.test_case "exchange over a lossy network" `Quick
      test_lossy_exchange;
    Alcotest.test_case "remote-exec parameter pipeline" `Quick
      test_remote_exec_pipeline;
    Alcotest.test_case "reconfiguration storm" `Slow
      test_reconfiguration_storm;
    Alcotest.test_case "document workflow across machines" `Quick
      test_document_workflow;
    Alcotest.test_case "server crash and recovery" `Quick
      test_server_crash_recovery;
    Alcotest.test_case "determinism under seeds" `Slow test_determinism;
    Alcotest.test_case "codec preserves coherence results" `Quick
      test_codec_preserves_coherence;
  ]

(* Tests for Schemes.Jade — per-user name spaces with union directories. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module J = Schemes.Jade

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

(* local has bin/{ls,custom}; campus has bin/{ls,cc} with different
   entities; archive has data/set1 *)
let fixture () =
  let st = S.create () in
  let t =
    J.build
      ~services:
        [
          ("local", [ "bin/ls"; "bin/custom" ]);
          ("campus", [ "bin/ls"; "bin/cc" ]);
          ("archive", [ "data/set1" ]);
        ]
      st
  in
  (st, t)

let test_union_search () =
  let _, t = fixture () in
  let u = J.new_user t ~mounts:[ ("sw", [ "local"; "campus" ]) ] in
  (* the mount unions the service ROOTS; components search in order *)
  check entity "local wins for ls"
    (Vfs.Fs.lookup (J.service_fs t "local") "/bin/ls")
    (J.resolve_str t ~as_:u "sw/bin/ls");
  check entity "falls through to campus for cc"
    (Vfs.Fs.lookup (J.service_fs t "campus") "/bin/cc")
    (J.resolve_str t ~as_:u "sw/bin/cc");
  check entity "local-only still found"
    (Vfs.Fs.lookup (J.service_fs t "local") "/bin/custom")
    (J.resolve_str t ~as_:u "sw/bin/custom");
  check entity "missing everywhere" E.undefined
    (J.resolve_str t ~as_:u "sw/bin/nothing")

let test_order_matters () =
  let _, t = fixture () in
  let u1 = J.new_user t ~mounts:[ ("sw", [ "local"; "campus" ]) ] in
  let u2 = J.new_user t ~mounts:[ ("sw", [ "campus"; "local" ]) ] in
  check b "different winners for ls" false
    (E.equal
       (J.resolve_str t ~as_:u1 "sw/bin/ls")
       (J.resolve_str t ~as_:u2 "sw/bin/ls"));
  (* personal name spaces: the same name legitimately differs per user —
     the flexibility Jade is cited for *)
  check b "which reports winners" true
    (J.which t ~as_:u1 (N.of_string "sw/bin/ls") = Some "local"
    && J.which t ~as_:u2 (N.of_string "sw/bin/ls") = Some "campus")

let test_mount_management () =
  let _, t = fixture () in
  let u = J.new_user t ~mounts:[] in
  check entity "nothing mounted" E.undefined (J.resolve_str t ~as_:u "d/data/set1");
  J.add_mount t u ~name:"d" ~services:[ "archive" ];
  check entity "mounted"
    (Vfs.Fs.lookup (J.service_fs t "archive") "/data/set1")
    (J.resolve_str t ~as_:u "d/data/set1");
  check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
    "mount table" [ ("d", [ "archive" ]) ] (J.mounts_of t u);
  J.remove_mount t u "d";
  check entity "unmounted" E.undefined (J.resolve_str t ~as_:u "d/data/set1")

let test_mount_head_only () =
  let _, t = fixture () in
  let u = J.new_user t ~mounts:[ ("sw", [ "campus" ]) ] in
  (* the bare mount name denotes the first backing root *)
  check entity "bare mount" (J.service_root t "campus")
    (J.resolve_str t ~as_:u "sw");
  check entity "unmounted head" E.undefined (J.resolve_str t ~as_:u "zzz")

let test_probes_resolve () =
  let _, t = fixture () in
  let u = J.new_user t
      ~mounts:[ ("sw", [ "local"; "campus" ]); ("d", [ "archive" ]) ]
  in
  let probes = J.probes t u ~max_depth:4 in
  check b "non-empty" true (probes <> []);
  List.iter
    (fun n ->
      if E.is_undefined (J.resolve t ~as_:u n) then
        Alcotest.failf "probe %s does not resolve" (N.to_string n))
    probes

let test_coherence_by_arrangement () =
  let _, t = fixture () in
  (* two users with identical mount tables agree on everything *)
  let mounts = [ ("sw", [ "local"; "campus" ]) ] in
  let u1 = J.new_user t ~mounts and u2 = J.new_user t ~mounts in
  List.iter
    (fun n ->
      if not (E.equal (J.resolve t ~as_:u1 n) (J.resolve t ~as_:u2 n)) then
        Alcotest.failf "disagreement on %s" (N.to_string n))
    (J.probes t u1 ~max_depth:4)

let test_errors () =
  let st, t = fixture () in
  (match J.build ~services:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no services accepted");
  (match J.new_user t ~mounts:[ ("x", [ "ghost-service" ]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown service accepted");
  let outsider = S.create_activity st in
  (match J.resolve_str t ~as_:outsider "sw/bin/ls" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-user accepted")

(* property: a union resolution, when defined, always equals the
   resolution in one of the backing services, respecting order: no
   earlier service also defines it. *)
let prop_union_respects_order =
  QCheck.Test.make ~name:"union picks the first defined backing" ~count:50
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let _, t = fixture () in
      let backing =
        Dsim.Rng.shuffle rng [ "local"; "campus"; "archive" ]
      in
      let u = J.new_user t ~mounts:[ ("m", backing) ] in
      List.for_all
        (fun n ->
          match N.tail n with
          | None -> true
          | Some rest ->
              let result = J.resolve t ~as_:u n in
              if E.is_undefined result then
                (* then NO backing defines it *)
                List.for_all
                  (fun s ->
                    E.is_undefined
                      (Naming.Resolver.resolve_in (J.store t)
                         (J.service_root t s) rest))
                  backing
              else
                let rec check_order = function
                  | [] -> false
                  | s :: later -> (
                      let r =
                        Naming.Resolver.resolve_in (J.store t)
                          (J.service_root t s) rest
                      in
                      if E.is_defined r then E.equal r result
                      else check_order later)
                in
                check_order backing)
        (J.probes t u ~max_depth:4))

let suite =
  [
    Alcotest.test_case "union search" `Quick test_union_search;
    Alcotest.test_case "order matters" `Quick test_order_matters;
    Alcotest.test_case "mount management" `Quick test_mount_management;
    Alcotest.test_case "bare mount head" `Quick test_mount_head_only;
    Alcotest.test_case "probes resolve" `Quick test_probes_resolve;
    Alcotest.test_case "coherence by arrangement" `Quick
      test_coherence_by_arrangement;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_union_respects_order;
  ]

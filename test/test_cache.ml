(* Tests for Naming.Cache — memoised resolution with invalidation. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Ca = Naming.Cache

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs Schemes.Unix_scheme.default_tree;
  (st, fs, Vfs.Fs.root fs)

let test_hit_miss () =
  let st, fs, root = fixture () in
  let cache = Ca.create st in
  let n = N.of_string "usr/bin/cc" in
  let e1 = Ca.resolve_in cache root n in
  check entity "correct" (Vfs.Fs.lookup fs "/usr/bin/cc") e1;
  let e2 = Ca.resolve_in cache root n in
  check entity "same on hit" e1 e2;
  let s = Ca.stats cache in
  check i "one miss" 1 s.Ca.misses;
  check i "one hit" 1 s.Ca.hits

let test_invalidation_on_mutation () =
  let st, fs, root = fixture () in
  let cache = Ca.create st in
  let n = N.of_string "bin/ls" in
  let before = Ca.resolve_in cache root n in
  check b "resolves" true (E.is_defined before);
  (* mutate: replace the binding *)
  let replacement = Vfs.Fs.add_file fs "/bin/ls2" ~content:"new" in
  let bin = Vfs.Fs.lookup fs "/bin" in
  Vfs.Fs.unlink fs ~dir:bin "ls";
  Vfs.Fs.link fs ~dir:bin "ls" replacement;
  let after = Ca.resolve_in cache root n in
  check entity "sees the new binding" replacement after;
  check b "invalidated at least once" true
    ((Ca.stats cache).Ca.invalidations >= 1)

let test_negative_caching () =
  let st, _, root = fixture () in
  let cache = Ca.create st in
  let n = N.of_string "no/such/thing" in
  check entity "miss is bottom" E.undefined (Ca.resolve_in cache root n);
  check entity "cached bottom" E.undefined (Ca.resolve_in cache root n);
  check i "hit on negative entry" 1 (Ca.stats cache).Ca.hits

let test_capacity_reset () =
  let st, _, root = fixture () in
  let cache = Ca.create ~capacity:4 st in
  (* more distinct keys than capacity: must stay correct *)
  List.iter
    (fun p ->
      ignore (Ca.resolve_in cache root (N.of_string p));
      ignore (Ca.resolve_in cache root (N.of_string p)))
    [ "bin"; "etc"; "usr"; "home"; "tmp"; "dev"; "bin/ls"; "etc/passwd" ];
  check entity "still correct after churn"
    (Naming.Resolver.resolve_in st root (N.of_string "bin/ls"))
    (Ca.resolve_in cache root (N.of_string "bin/ls"))

let test_create_errors () =
  let st, _, _ = fixture () in
  match Ca.create ~capacity:0 st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted"

(* The point of dependency tracking: a mutation outside a cached entry's
   resolution path must not disturb the entry. *)
let test_unrelated_mutation_keeps_entry () =
  let st, fs, root = fixture () in
  let cache = Ca.create st in
  let n = N.of_string "usr/bin/cc" in
  let before = Ca.resolve_in cache root n in
  check b "resolves" true (E.is_defined before);
  (* a bind in /tmp: not on the /usr/bin/cc path *)
  ignore (Vfs.Fs.add_file fs "/tmp/scratch" ~content:"x");
  let after = Ca.resolve_in cache root n in
  check entity "same result" before after;
  let s = Ca.stats cache in
  check i "served from cache" 1 s.Ca.hits;
  check i "not invalidated" 0 s.Ca.invalidations

(* ... while a mutation on the path still invalidates exactly that
   entry. *)
let test_on_path_mutation_invalidates () =
  let st, fs, root = fixture () in
  let cache = Ca.create st in
  let on_path = N.of_string "usr/bin/cc" in
  let off_path = N.of_string "etc/passwd" in
  ignore (Ca.resolve_in cache root on_path);
  ignore (Ca.resolve_in cache root off_path);
  ignore (Vfs.Fs.add_file fs "/usr/bin/new" ~content:"x");
  ignore (Ca.resolve_in cache root on_path);
  ignore (Ca.resolve_in cache root off_path);
  let s = Ca.stats cache in
  check i "only the touched path invalidated" 1 s.Ca.invalidations;
  check i "the untouched entry still hits" 1 s.Ca.hits

let test_single_entry_eviction () =
  let st, _, root = fixture () in
  let cache = Ca.create ~capacity:2 st in
  List.iter
    (fun p -> ignore (Ca.resolve_in cache root (N.of_string p)))
    [ "bin"; "etc"; "usr" ];
  let s = Ca.stats cache in
  check i "one eviction past capacity" 1 s.Ca.evictions;
  check i "table stays at capacity" 2 s.Ca.entries;
  (* the survivors are still served as hits *)
  ignore (Ca.resolve_in cache root (N.of_string "usr"));
  check i "newest entry survived" 1 (Ca.stats cache).Ca.hits

(* property: under random interleavings of resolutions and mutations, the
   cache always agrees with the plain resolver. *)
let prop_cache_transparent =
  QCheck.Test.make ~name:"cache = plain resolver under mutation" ~count:40
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let st, fs, root = fixture () in
      let cache = Ca.create ~capacity:16 st in
      let names =
        List.map N.of_string
          [ "bin/ls"; "usr/bin/cc"; "etc/passwd"; "tmp"; "ghost"; "bin" ]
      in
      let ok = ref true in
      for k = 0 to 80 do
        if Dsim.Rng.bool rng 0.2 then
          (* mutate: create or remove a file *)
          if Dsim.Rng.bool rng 0.5 then
            ignore
              (Vfs.Fs.add_file fs
                 (Printf.sprintf "/tmp/f%d" k)
                 ~content:"x")
          else begin
            let tmp = Vfs.Fs.lookup fs "/tmp" in
            match Vfs.Fs.readdir fs tmp with
            | (a, _) :: _ -> Vfs.Fs.unlink fs ~dir:tmp (N.atom_to_string a)
            | [] -> ()
          end
        else begin
          let n = Dsim.Rng.pick rng names in
          let cached = Ca.resolve_in cache root n in
          let plain = Naming.Resolver.resolve_in st root n in
          if not (E.equal cached plain) then ok := false
        end
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "hit/miss" `Quick test_hit_miss;
    Alcotest.test_case "invalidation on mutation" `Quick
      test_invalidation_on_mutation;
    Alcotest.test_case "negative caching" `Quick test_negative_caching;
    Alcotest.test_case "capacity reset" `Quick test_capacity_reset;
    Alcotest.test_case "create errors" `Quick test_create_errors;
    Alcotest.test_case "unrelated mutation keeps entry" `Quick
      test_unrelated_mutation_keeps_entry;
    Alcotest.test_case "on-path mutation invalidates" `Quick
      test_on_path_mutation_invalidates;
    Alcotest.test_case "single-entry eviction" `Quick
      test_single_entry_eviction;
    QCheck_alcotest.to_alcotest prop_cache_transparent;
  ]

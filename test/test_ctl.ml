(* Source-level checks on bin/namingctl.ml: every subcommand the CLI
   registers must be mentioned (as a bold $(b,name) cross-reference) in
   the man-page overview, so `namingctl man`/`--help` never silently
   trails the command set. The test parses the source (declared as a
   dune dep), not the binary, so it needs no subprocess. *)

let check = Alcotest.check

(* Under `dune runtest` the cwd is the sandboxed test directory and the
   declared dep sits at ../bin/; a bare `dune exec test/test_main.exe`
   runs from the project root instead. *)
let source_path () =
  List.find_opt Sys.file_exists [ "../bin/namingctl.ml"; "bin/namingctl.ml" ]
  |> Option.value ~default:"../bin/namingctl.ml"

let read_source () =
  let ic = open_in_bin (source_path ()) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* All X from occurrences of [Cmd.info "X"] — the registration point
   every subcommand must pass through. *)
let registered_subcommands src =
  let needle = {|Cmd.info "|} in
  let nlen = String.length needle in
  let rec scan acc from =
    match
      if from >= String.length src then None
      else
        let rec find i =
          if i + nlen > String.length src then None
          else if String.sub src i nlen = needle then Some i
          else find (i + 1)
        in
        find from
    with
    | None -> List.rev acc
    | Some i -> (
        let start = i + nlen in
        match String.index_from_opt src start '"' with
        | None -> List.rev acc
        | Some stop ->
            scan (String.sub src start (stop - start) :: acc) (stop + 1))
  in
  scan [] 0

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_man_covers_every_subcommand () =
  let src = read_source () in
  let subs =
    registered_subcommands src
    |> List.filter (fun s -> not (String.equal s "namingctl"))
  in
  check Alcotest.bool "found a plausible number of subcommands" true
    (List.length subs >= 10);
  List.iter
    (fun sub ->
      check Alcotest.bool
        (Printf.sprintf "man overview mentions $(b,%s)" sub)
        true
        (contains_sub src (Printf.sprintf "$(b,%s)" sub)))
    subs

let test_subcommands_are_distinct () =
  let src = read_source () in
  let subs = registered_subcommands src in
  let sorted = List.sort_uniq String.compare subs in
  check Alcotest.int "no subcommand registered twice" (List.length sorted)
    (List.length subs)

let suite =
  [
    Alcotest.test_case "man overview covers every subcommand" `Quick
      test_man_covers_every_subcommand;
    Alcotest.test_case "subcommand names are distinct" `Quick
      test_subcommands_are_distinct;
  ]

(* Tests for Naming.Coherence — the paper's central definition. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module R = Naming.Rule
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let f = Alcotest.float 1e-9

(* Three activities: a1 and a2 share a binding for "shared"; everyone has
   a private binding for "local"; "only1" is bound only for a1. *)
let fixture () =
  let st = S.create () in
  let shared = S.create_object ~label:"shared" st in
  let l1 = S.create_object st and l2 = S.create_object st and l3 = S.create_object st in
  let only = S.create_object st in
  let a1 = S.create_activity st and a2 = S.create_activity st and a3 = S.create_activity st in
  let asg = R.Assignment.create () in
  let mk bindings = S.create_context_object ~ctx:(C.of_bindings bindings) st in
  R.Assignment.set asg a1
    (mk [ (N.atom "shared", shared); (N.atom "local", l1); (N.atom "only1", only) ]);
  R.Assignment.set asg a2
    (mk [ (N.atom "shared", shared); (N.atom "local", l2) ]);
  R.Assignment.set asg a3
    (mk [ (N.atom "shared", shared); (N.atom "local", l3) ]);
  (st, R.of_activity asg, [ a1; a2; a3 ], (l1, l2, l3))

let occs activities = List.map O.generated activities

let test_coherent () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule (occs acts) (N.of_string "shared") with
  | Coh.Coherent e -> check b "defined" true (E.is_defined e)
  | v -> Alcotest.failf "expected coherent, got %a" Coh.pp_verdict v

let test_incoherent_different () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule (occs acts) (N.of_string "local") with
  | Coh.Incoherent ((_, e1), (_, e2)) ->
      check b "witnesses differ" false (E.equal e1 e2)
  | v -> Alcotest.failf "expected incoherent, got %a" Coh.pp_verdict v

let test_incoherent_partial () =
  let st, rule, acts, _ = fixture () in
  (* only1 is defined for a1 and bottom for the others: incoherent, with a
     defined witness and an undefined one. *)
  match Coh.check st rule (occs acts) (N.of_string "only1") with
  | Coh.Incoherent ((_, d), (_, u)) ->
      check b "defined witness" true (E.is_defined d);
      check b "undefined witness" true (E.is_undefined u)
  | v -> Alcotest.failf "expected incoherent, got %a" Coh.pp_verdict v

let test_vacuous () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule (occs acts) (N.of_string "ghost") with
  | Coh.Vacuous -> ()
  | v -> Alcotest.failf "expected vacuous, got %a" Coh.pp_verdict v

let test_weak () =
  let st, rule, acts, (l1, l2, l3) = fixture () in
  let repl = Naming.Replication.create () in
  Naming.Replication.declare repl [ l1; l2; l3 ];
  let equiv = Naming.Replication.same_replica repl in
  (match Coh.check ~equiv st rule (occs acts) (N.of_string "local") with
  | Coh.Weakly_coherent es ->
      check Alcotest.int "one per occurrence" 3 (List.length es)
  | v -> Alcotest.failf "expected weakly coherent, got %a" Coh.pp_verdict v);
  check b "is_coherent counts weak" true
    (Coh.is_coherent ~equiv st rule (occs acts) (N.of_string "local"))

let test_empty_occurrences () =
  let st, rule, _, _ = fixture () in
  match Coh.check st rule [] (N.of_string "shared") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty occurrence list accepted"

let test_single_occurrence_coherent () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule [ O.generated (List.hd acts) ] (N.of_string "local") with
  | Coh.Coherent _ -> ()
  | v -> Alcotest.failf "single occurrence should be coherent, got %a"
           Coh.pp_verdict v

let test_measure_and_degrees () =
  let st, rule, acts, _ = fixture () in
  let probes =
    [ N.of_string "shared"; N.of_string "local"; N.of_string "only1";
      N.of_string "ghost" ]
  in
  let r = Coh.measure st rule (occs acts) probes in
  check Alcotest.int "probes" 4 r.Coh.probes;
  check Alcotest.int "coherent" 1 r.Coh.coherent;
  check Alcotest.int "incoherent" 2 r.Coh.incoherent;
  check Alcotest.int "vacuous" 1 r.Coh.vacuous;
  check Alcotest.int "weak" 0 r.Coh.weakly_coherent;
  check f "degree = 1/3" (1.0 /. 3.0) (Coh.degree r);
  check f "strict same here" (1.0 /. 3.0) (Coh.strict_degree r)

let test_degree_all_vacuous () =
  let st, rule, acts, _ = fixture () in
  let r = Coh.measure st rule (occs acts) [ N.of_string "ghost" ] in
  check f "vacuous-only degree is 1" 1.0 (Coh.degree r)

let test_classify_and_filters () =
  let st, rule, acts, _ = fixture () in
  let probes = [ N.of_string "shared"; N.of_string "local" ] in
  let detail = Coh.classify st rule (occs acts) probes in
  check Alcotest.int "detail length" 2 (List.length detail);
  let coh = Coh.coherent_names st rule (occs acts) probes in
  check (Alcotest.list Alcotest.string) "coherent names" [ "shared" ]
    (List.map N.to_string coh);
  let inc = Coh.incoherent_names st rule (occs acts) probes in
  check (Alcotest.list Alcotest.string) "incoherent names" [ "local" ]
    (List.map N.to_string inc)

(* property: the verdict class is invariant under permutation of the
   occurrence list. *)
let prop_order_invariant =
  QCheck.Test.make ~name:"verdict invariant under occurrence order" ~count:100
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.return 3) QCheck.small_nat)
       QCheck.small_nat)
    (fun (_perm_seed, name_pick) ->
      let st, rule, acts, _ = fixture () in
      let name =
        List.nth
          [ N.of_string "shared"; N.of_string "local"; N.of_string "only1";
            N.of_string "ghost" ]
          (name_pick mod 4)
      in
      let class_of occs =
        match Coh.check st rule occs name with
        | Coh.Coherent _ -> 0
        | Coh.Weakly_coherent _ -> 1
        | Coh.Incoherent _ -> 2
        | Coh.Vacuous -> 3
      in
      let fwd = class_of (occs acts) in
      let bwd = class_of (occs (List.rev acts)) in
      fwd = bwd)

(* property: enlarging the occurrence set never turns an incoherent or
   vacuous name coherent (coherence is an intersection). *)
let prop_monotone_in_activities =
  QCheck.Test.make ~name:"coherence anti-monotone in the activity set"
    ~count:100
    (QCheck.pair QCheck.small_nat QCheck.small_nat)
    (fun (_seed, name_pick) ->
      let st, rule, acts, _ = fixture () in
      let name =
        List.nth
          [ N.of_string "shared"; N.of_string "local"; N.of_string "only1";
            N.of_string "ghost" ]
          (name_pick mod 4)
      in
      let rank occs =
        match Coh.check st rule occs name with
        | Coh.Coherent _ | Coh.Weakly_coherent _ -> 2
        | Coh.Vacuous -> 1
        | Coh.Incoherent _ -> 0
      in
      match acts with
      | a1 :: a2 :: a3 :: _ ->
          let small = rank (occs [ a1; a2 ]) in
          let large = rank (occs [ a1; a2; a3 ]) in
          (* a coherent pair can become incoherent with more activities,
             never the reverse (2 >= large unless small < 2) *)
          small >= large || small = 1 (* vacuous can become incoherent *)
      | _ -> false)

(* Batching through a shared cache is an optimisation, not a semantics
   change: every verdict must match the uncached path. *)
let test_cached_measure_parity () =
  let st, rule, acts, _ = fixture () in
  let probes =
    List.map N.of_string [ "shared"; "local"; "only1"; "ghost" ]
  in
  let cache = Naming.Cache.create st in
  let cached = Coh.classify ~cache st rule (occs acts) probes in
  List.iter
    (fun (n, cached_verdict) ->
      let plain = Coh.check st rule (occs acts) n in
      let same =
        match (cached_verdict, plain) with
        | Coh.Coherent e1, Coh.Coherent e2 -> E.equal e1 e2
        | Coh.Incoherent _, Coh.Incoherent _ -> true
        | Coh.Vacuous, Coh.Vacuous -> true
        | Coh.Weakly_coherent _, Coh.Weakly_coherent _ -> true
        | _, _ -> false
      in
      if not same then
        Alcotest.failf "%s: cached %a vs plain %a" (N.to_string n)
          Coh.pp_verdict cached_verdict Coh.pp_verdict plain)
    cached;
  let r_cached = Coh.measure ~cache st rule (occs acts) probes in
  let r_plain = Coh.measure st rule (occs acts) probes in
  check f "same degree" (Coh.degree r_plain) (Coh.degree r_cached)

let probe_names = [ "shared"; "local"; "only1"; "missing" ]

let test_measure_seq_parity () =
  let st, rule, acts, _ = fixture () in
  let os = occs acts in
  (* more than one chunk, so the streaming fold actually iterates *)
  let names =
    List.init 5000 (fun i -> N.of_string (List.nth probe_names (i mod 4)))
  in
  let r_list = Coh.measure st rule os names in
  let r_seq = Coh.measure_seq st rule os (List.to_seq names) in
  check b "streamed report equals list report" true (r_list = r_seq);
  let r_jobs = Coh.measure_seq ~jobs:2 st rule os (List.to_seq names) in
  check b "streamed report equals at jobs 2" true (r_list = r_jobs);
  let count =
    Coh.fold_verdicts st rule os ~init:0
      ~f:(fun acc _ -> acc + 1)
      (List.to_seq names)
  in
  check Alcotest.int "fold visits every probe" 5000 count

(* Uniform draws from a fixed name list: the estimator's target is then
   the exact degree over that population. *)
let uniform names =
  let arr = Array.of_list (List.map N.of_string names) in
  {
    Coh.split = Dsim.Rng.split;
    draw = (fun rng -> arr.(Dsim.Rng.int rng (Array.length arr)));
  }

let test_estimate_fixture () =
  let st, rule, acts, _ = fixture () in
  let est =
    Coh.estimate ~rng:(Dsim.Rng.create 42L) st rule (occs acts)
      (uniform probe_names)
  in
  (* over the population: shared coherent; local and only1 incoherent;
     missing vacuous — true degree 1/3 *)
  check b "interval brackets the point estimate" true
    (est.Coh.ci_low <= est.Coh.degree && est.Coh.degree <= est.Coh.ci_high);
  check b "interval contains the true degree" true
    (est.Coh.ci_low <= 1.0 /. 3.0 && 1.0 /. 3.0 <= est.Coh.ci_high);
  check b "strict degree matches (no equivalence supplied)" true
    (est.Coh.degree = est.Coh.strict_degree);
  check b "drew some samples" true (est.Coh.samples > 0)

let test_estimate_parity () =
  let st, rule, acts, _ = fixture () in
  let run ?engine ?jobs () =
    Coh.estimate ?engine ?jobs ~rng:(Dsim.Rng.create 7L) st rule (occs acts)
      (uniform probe_names)
  in
  let base = run () in
  check b "jobs 4 parity" true (base = run ~jobs:4 ());
  check b "interpreted engine parity" true
    (base = run ~engine:(Naming.Engine.create `Interpreted st) ());
  check b "cached engine parity" true
    (base = run ~engine:(Naming.Engine.create `Cached st) ());
  check b "compiled engine parity" true
    (base = run ~engine:(Naming.Engine.create `Compiled st) ())

let test_estimate_all_vacuous () =
  let st, rule, acts, _ = fixture () in
  let est =
    Coh.estimate ~max_samples:600 ~rng:(Dsim.Rng.create 1L) st rule
      (occs acts) (uniform [ "missing" ])
  in
  check f "vacuous degree convention" 1.0 est.Coh.degree;
  check f "lower bound stays 0" 0.0 est.Coh.ci_low;
  check f "upper bound stays 1" 1.0 est.Coh.ci_high;
  check Alcotest.int "runs to max_samples" 600 est.Coh.samples

let test_estimate_invalid () =
  let st, rule, acts, _ = fixture () in
  let expect label run =
    match run () with
    | exception Invalid_argument _ -> ()
    | (_ : Coh.estimate) -> Alcotest.fail label
  in
  let est ?confidence ?epsilon ?max_samples () =
    Coh.estimate ?confidence ?epsilon ?max_samples
      ~rng:(Dsim.Rng.create 1L) st rule (occs acts) (uniform probe_names)
  in
  expect "confidence 1.0 accepted" (fun () -> est ~confidence:1.0 ());
  expect "confidence 0.0 accepted" (fun () -> est ~confidence:0.0 ());
  expect "epsilon 0 accepted" (fun () -> est ~epsilon:0.0 ());
  expect "max_samples 0 accepted" (fun () -> est ~max_samples:0 ())

let suite =
  [
    Alcotest.test_case "coherent" `Quick test_coherent;
    Alcotest.test_case "incoherent (different entities)" `Quick
      test_incoherent_different;
    Alcotest.test_case "incoherent (defined vs bottom)" `Quick
      test_incoherent_partial;
    Alcotest.test_case "vacuous" `Quick test_vacuous;
    Alcotest.test_case "weak coherence" `Quick test_weak;
    Alcotest.test_case "empty occurrences rejected" `Quick
      test_empty_occurrences;
    Alcotest.test_case "single occurrence" `Quick
      test_single_occurrence_coherent;
    Alcotest.test_case "measure and degrees" `Quick test_measure_and_degrees;
    Alcotest.test_case "all-vacuous degree" `Quick test_degree_all_vacuous;
    Alcotest.test_case "classify and filters" `Quick test_classify_and_filters;
    Alcotest.test_case "cached measure parity" `Quick
      test_cached_measure_parity;
    Alcotest.test_case "measure_seq parity" `Quick test_measure_seq_parity;
    Alcotest.test_case "estimate on the fixture" `Quick test_estimate_fixture;
    Alcotest.test_case "estimate parity across jobs and engines" `Quick
      test_estimate_parity;
    Alcotest.test_case "estimate all vacuous" `Quick test_estimate_all_vacuous;
    Alcotest.test_case "estimate invalid arguments" `Quick
      test_estimate_invalid;
    QCheck_alcotest.to_alcotest prop_order_invariant;
    QCheck_alcotest.to_alcotest prop_monotone_in_activities;
  ]

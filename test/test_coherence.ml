(* Tests for Naming.Coherence — the paper's central definition. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module R = Naming.Rule
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let f = Alcotest.float 1e-9

(* Three activities: a1 and a2 share a binding for "shared"; everyone has
   a private binding for "local"; "only1" is bound only for a1. *)
let fixture () =
  let st = S.create () in
  let shared = S.create_object ~label:"shared" st in
  let l1 = S.create_object st and l2 = S.create_object st and l3 = S.create_object st in
  let only = S.create_object st in
  let a1 = S.create_activity st and a2 = S.create_activity st and a3 = S.create_activity st in
  let asg = R.Assignment.create () in
  let mk bindings = S.create_context_object ~ctx:(C.of_bindings bindings) st in
  R.Assignment.set asg a1
    (mk [ (N.atom "shared", shared); (N.atom "local", l1); (N.atom "only1", only) ]);
  R.Assignment.set asg a2
    (mk [ (N.atom "shared", shared); (N.atom "local", l2) ]);
  R.Assignment.set asg a3
    (mk [ (N.atom "shared", shared); (N.atom "local", l3) ]);
  (st, R.of_activity asg, [ a1; a2; a3 ], (l1, l2, l3))

let occs activities = List.map O.generated activities

let test_coherent () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule (occs acts) (N.of_string "shared") with
  | Coh.Coherent e -> check b "defined" true (E.is_defined e)
  | v -> Alcotest.failf "expected coherent, got %a" Coh.pp_verdict v

let test_incoherent_different () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule (occs acts) (N.of_string "local") with
  | Coh.Incoherent ((_, e1), (_, e2)) ->
      check b "witnesses differ" false (E.equal e1 e2)
  | v -> Alcotest.failf "expected incoherent, got %a" Coh.pp_verdict v

let test_incoherent_partial () =
  let st, rule, acts, _ = fixture () in
  (* only1 is defined for a1 and bottom for the others: incoherent, with a
     defined witness and an undefined one. *)
  match Coh.check st rule (occs acts) (N.of_string "only1") with
  | Coh.Incoherent ((_, d), (_, u)) ->
      check b "defined witness" true (E.is_defined d);
      check b "undefined witness" true (E.is_undefined u)
  | v -> Alcotest.failf "expected incoherent, got %a" Coh.pp_verdict v

let test_vacuous () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule (occs acts) (N.of_string "ghost") with
  | Coh.Vacuous -> ()
  | v -> Alcotest.failf "expected vacuous, got %a" Coh.pp_verdict v

let test_weak () =
  let st, rule, acts, (l1, l2, l3) = fixture () in
  let repl = Naming.Replication.create () in
  Naming.Replication.declare repl [ l1; l2; l3 ];
  let equiv = Naming.Replication.same_replica repl in
  (match Coh.check ~equiv st rule (occs acts) (N.of_string "local") with
  | Coh.Weakly_coherent es ->
      check Alcotest.int "one per occurrence" 3 (List.length es)
  | v -> Alcotest.failf "expected weakly coherent, got %a" Coh.pp_verdict v);
  check b "is_coherent counts weak" true
    (Coh.is_coherent ~equiv st rule (occs acts) (N.of_string "local"))

let test_empty_occurrences () =
  let st, rule, _, _ = fixture () in
  match Coh.check st rule [] (N.of_string "shared") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty occurrence list accepted"

let test_single_occurrence_coherent () =
  let st, rule, acts, _ = fixture () in
  match Coh.check st rule [ O.generated (List.hd acts) ] (N.of_string "local") with
  | Coh.Coherent _ -> ()
  | v -> Alcotest.failf "single occurrence should be coherent, got %a"
           Coh.pp_verdict v

let test_measure_and_degrees () =
  let st, rule, acts, _ = fixture () in
  let probes =
    [ N.of_string "shared"; N.of_string "local"; N.of_string "only1";
      N.of_string "ghost" ]
  in
  let r = Coh.measure st rule (occs acts) probes in
  check Alcotest.int "probes" 4 r.Coh.probes;
  check Alcotest.int "coherent" 1 r.Coh.coherent;
  check Alcotest.int "incoherent" 2 r.Coh.incoherent;
  check Alcotest.int "vacuous" 1 r.Coh.vacuous;
  check Alcotest.int "weak" 0 r.Coh.weakly_coherent;
  check f "degree = 1/3" (1.0 /. 3.0) (Coh.degree r);
  check f "strict same here" (1.0 /. 3.0) (Coh.strict_degree r)

let test_degree_all_vacuous () =
  let st, rule, acts, _ = fixture () in
  let r = Coh.measure st rule (occs acts) [ N.of_string "ghost" ] in
  check f "vacuous-only degree is 1" 1.0 (Coh.degree r)

let test_classify_and_filters () =
  let st, rule, acts, _ = fixture () in
  let probes = [ N.of_string "shared"; N.of_string "local" ] in
  let detail = Coh.classify st rule (occs acts) probes in
  check Alcotest.int "detail length" 2 (List.length detail);
  let coh = Coh.coherent_names st rule (occs acts) probes in
  check (Alcotest.list Alcotest.string) "coherent names" [ "shared" ]
    (List.map N.to_string coh);
  let inc = Coh.incoherent_names st rule (occs acts) probes in
  check (Alcotest.list Alcotest.string) "incoherent names" [ "local" ]
    (List.map N.to_string inc)

(* property: the verdict class is invariant under permutation of the
   occurrence list. *)
let prop_order_invariant =
  QCheck.Test.make ~name:"verdict invariant under occurrence order" ~count:100
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.return 3) QCheck.small_nat)
       QCheck.small_nat)
    (fun (_perm_seed, name_pick) ->
      let st, rule, acts, _ = fixture () in
      let name =
        List.nth
          [ N.of_string "shared"; N.of_string "local"; N.of_string "only1";
            N.of_string "ghost" ]
          (name_pick mod 4)
      in
      let class_of occs =
        match Coh.check st rule occs name with
        | Coh.Coherent _ -> 0
        | Coh.Weakly_coherent _ -> 1
        | Coh.Incoherent _ -> 2
        | Coh.Vacuous -> 3
      in
      let fwd = class_of (occs acts) in
      let bwd = class_of (occs (List.rev acts)) in
      fwd = bwd)

(* property: enlarging the occurrence set never turns an incoherent or
   vacuous name coherent (coherence is an intersection). *)
let prop_monotone_in_activities =
  QCheck.Test.make ~name:"coherence anti-monotone in the activity set"
    ~count:100
    (QCheck.pair QCheck.small_nat QCheck.small_nat)
    (fun (_seed, name_pick) ->
      let st, rule, acts, _ = fixture () in
      let name =
        List.nth
          [ N.of_string "shared"; N.of_string "local"; N.of_string "only1";
            N.of_string "ghost" ]
          (name_pick mod 4)
      in
      let rank occs =
        match Coh.check st rule occs name with
        | Coh.Coherent _ | Coh.Weakly_coherent _ -> 2
        | Coh.Vacuous -> 1
        | Coh.Incoherent _ -> 0
      in
      match acts with
      | a1 :: a2 :: a3 :: _ ->
          let small = rank (occs [ a1; a2 ]) in
          let large = rank (occs [ a1; a2; a3 ]) in
          (* a coherent pair can become incoherent with more activities,
             never the reverse (2 >= large unless small < 2) *)
          small >= large || small = 1 (* vacuous can become incoherent *)
      | _ -> false)

(* Batching through a shared cache is an optimisation, not a semantics
   change: every verdict must match the uncached path. *)
let test_cached_measure_parity () =
  let st, rule, acts, _ = fixture () in
  let probes =
    List.map N.of_string [ "shared"; "local"; "only1"; "ghost" ]
  in
  let cache = Naming.Cache.create st in
  let cached = Coh.classify ~cache st rule (occs acts) probes in
  List.iter
    (fun (n, cached_verdict) ->
      let plain = Coh.check st rule (occs acts) n in
      let same =
        match (cached_verdict, plain) with
        | Coh.Coherent e1, Coh.Coherent e2 -> E.equal e1 e2
        | Coh.Incoherent _, Coh.Incoherent _ -> true
        | Coh.Vacuous, Coh.Vacuous -> true
        | Coh.Weakly_coherent _, Coh.Weakly_coherent _ -> true
        | _, _ -> false
      in
      if not same then
        Alcotest.failf "%s: cached %a vs plain %a" (N.to_string n)
          Coh.pp_verdict cached_verdict Coh.pp_verdict plain)
    cached;
  let r_cached = Coh.measure ~cache st rule (occs acts) probes in
  let r_plain = Coh.measure st rule (occs acts) probes in
  check f "same degree" (Coh.degree r_plain) (Coh.degree r_cached)

let suite =
  [
    Alcotest.test_case "coherent" `Quick test_coherent;
    Alcotest.test_case "incoherent (different entities)" `Quick
      test_incoherent_different;
    Alcotest.test_case "incoherent (defined vs bottom)" `Quick
      test_incoherent_partial;
    Alcotest.test_case "vacuous" `Quick test_vacuous;
    Alcotest.test_case "weak coherence" `Quick test_weak;
    Alcotest.test_case "empty occurrences rejected" `Quick
      test_empty_occurrences;
    Alcotest.test_case "single occurrence" `Quick
      test_single_occurrence_coherent;
    Alcotest.test_case "measure and degrees" `Quick test_measure_and_degrees;
    Alcotest.test_case "all-vacuous degree" `Quick test_degree_all_vacuous;
    Alcotest.test_case "classify and filters" `Quick test_classify_and_filters;
    Alcotest.test_case "cached measure parity" `Quick
      test_cached_measure_parity;
    QCheck_alcotest.to_alcotest prop_order_invariant;
    QCheck_alcotest.to_alcotest prop_monotone_in_activities;
  ]

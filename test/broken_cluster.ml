(* A deliberately broken cluster deployment for the replication
   coherence analyzer: a hand-picked spec, fault schedule and write
   workload that together trip every NG2xx diagnostic — statically,
   without executing the simulator.

   The schedule: 4 replicas split {ns0,ns1} | {ns2,ns3} by a partition
   at t=10 that never heals within the 80s run, plus a crash of ns3
   (the victim) over [40; 60). Clients retry twice (timeout 2.0), so a
   write's attempts send at offsets [0;0] and [2; 2.2] and the retry
   budget exhausts by +6.6. The workload:

   - #0 t=2.0  ns0 /a/x→k1 : with dedup_window=1, write #1 lands
     within #0's retry horizon and can evict it          -> NG206
   - #1 t=3.0  ns0 /a/x→k2 : the evicting call (same origin, so no
     race diagnostics at this site)
   - #2 t=12.0 ns0 /a/y→k1 : accepted after the partition cuts, can
     never reach side B                                  -> NG202 (ns2, ns3)
   - #3 t=20.0 ns0 /a/race→k1 and
   - #4 t=22.0 ns2 /a/race→k2 : provably concurrent (the partition
     never heals) LWW updates of one name                -> NG201
     with overlapping stamp intervals                    -> NG205
     #4 is also side B's first post-partition write      -> NG202 (ns0, ns1)
   - #5 t=39.5 ns3 /a/maybe→k1 : first attempt straddles the crash
     boundary, the retry is swallowed — may or may not
     apply                                               -> NG208
   - #6 t=45.0 ns2 /a/stale→k2 : accepted during ns3's crash, cannot
     reach ns3 before the window ends at 60              -> NG203
   - #7 t=45.0 ns3 /a/hole→k1 : every attempt lands inside the home
     replica's own crash window                          -> NG204

   The spec adds an orphaned directory (/ghost/sub without /ghost) and
   a link to an unknown leaf key                         -> NG207 ×2 *)

module Ns = Dsim.Nameserver
module Ch = Dsim.Chaos
module N = Naming.Name

let config =
  {
    Ch.default with
    Ch.seed = 7;
    replicas = 4;
    drop = 0.0;
    duplicate = 0.0;
    partition_at = 10.0;
    partition_for = 1000.0;
    crash_at = 40.0;
    crash_for = 20.0;
    call_timeout = 2.0;
    call_attempts = 2;
    dedup_window = Some 1;
  }

let spec =
  {
    Ns.dirs = [ N.of_string "/a"; N.of_string "/ghost/sub" ];
    leaves = [ ("k1", "one"); ("k2", "two") ];
    links = [ (N.of_string "/a/x", "k1"); (N.of_string "/a/dead", "kmissing") ];
  }

let w time client atom target =
  (time, client, Ns.Write { path = N.of_string "/a"; atom = N.atom atom; target })

let workload =
  [
    w 2.0 0 "x" (Some "k1");
    w 3.0 0 "x" (Some "k2");
    w 12.0 0 "y" (Some "k1");
    w 20.0 0 "race" (Some "k1");
    w 22.0 2 "race" (Some "k2");
    w 39.5 3 "maybe" (Some "k1");
    w 45.0 2 "stale" (Some "k2");
    w 45.0 3 "hole" (Some "k1");
  ]

let subject = Analysis.Replpasses.subject ~workload config spec

let report () =
  Analysis.Replpasses.report ~label:"broken-cluster" subject

(* Every code the fixture is expected to trip, in report order
   (severity descending, then code, then message). *)
let expected_codes =
  [
    "NG201";
    "NG202"; "NG202"; "NG202"; "NG202";
    "NG203";
    "NG204";
    "NG205";
    "NG206";
    "NG207"; "NG207";
    "NG208";
  ]

(* ------------------------------------------------------------------ *)
(* The leader-mode companion: the same deliberately-broken spec under a
   [`Leader_log] schedule whose faults provably deny a write quorum.

   3 replicas, majority 2, partition {ns0} | {ns1, ns2} over [10; 40)
   and a crash of ns2 (the victim) over [15; 35). The majority side
   keeps a quorum while only the partition is active, so the provable
   no-quorum window is exactly the overlap [15; 35)        -> NG209

   Transactions run on a 10s client budget:
   - #0 t=2.0  ns0 /a/x→k1 : commits before the faults (clean)
   - #1 t=18.0 ns1 /a/y→k2 : deadline 28 < 35, expires in-window
                                                           -> NG210
   - #2 t=22.0 ns0 /a/z→k1 : deadline 32 < 35, expires in-window
                                                           -> NG210
   - #3 t=30.0 ns1 /a/w→k2 : deadline 40 > 35, quorum can return in
     time, outcome decidable (clean)

   The spec's orphaned directory and dead link still trip  -> NG207 ×2
   and the LWW race/topology/durability passes are discharged by the
   leader tier — no NG201-NG206, NG208 can appear. *)

let leader_config =
  {
    Ch.default with
    Ch.seed = 11;
    mode = `Leader_log;
    replicas = 3;
    drop = 0.0;
    duplicate = 0.0;
    partition_at = 10.0;
    partition_for = 30.0;
    crash_at = 15.0;
    crash_for = 20.0;
    txn_deadline = 10.0;
  }

let leader_workload =
  [
    w 2.0 0 "x" (Some "k1");
    w 18.0 1 "y" (Some "k2");
    w 22.0 0 "z" (Some "k1");
    w 30.0 1 "w" (Some "k2");
  ]

let leader_subject =
  Analysis.Replpasses.subject ~workload:leader_workload leader_config spec

let leader_report () =
  Analysis.Replpasses.report ~label:"broken-cluster-leader" leader_subject

(* Report order again: severity descending, then code, then message. *)
let leader_expected_codes =
  [ "NG207"; "NG207"; "NG209"; "NG210"; "NG210" ]

(* The full pretty-JSON report, kept as a golden string: the abstract
   interpretation's time/stamp bounds are deterministic, so any drift
   in the acceptance analysis, the propagation relation or the
   diagnostic text shows up here. *)
let expected_json = {golden|{
  "label": "broken-cluster",
  "activities": 4,
  "objects": 2,
  "context_objects": 2,
  "probes": 8,
  "passes": [
    "cluster-spec",
    "cluster-races",
    "cluster-topology",
    "cluster-durability",
    "cluster-verdict"
  ],
  "counts": {
    "error": 7,
    "warning": 4,
    "info": 1
  },
  "diagnostics": [
    {
      "code": "NG201",
      "severity": "error",
      "pass": "cluster-races",
      "message": "write #3 (ns0 t=20.0 /a/race→k1) and write #4 (ns2 t=22.0 /a/race→k2) are provably concurrent updates of one name: neither op can reach the other's replica before both are accepted, so last-writer-wins silently discards one of them",
      "entities": [],
      "step": 4,
      "name": "/a/race"
    },
    {
      "code": "NG202",
      "severity": "error",
      "pass": "cluster-topology",
      "message": "write #2 (ns0 t=12.0 /a/y→k1) can never reach ns2 within the run: the anti-entropy pull graph is not strongly connected over the schedule, so the replicas provably fail to reconverge",
      "entities": [],
      "step": 2,
      "name": "/a/y"
    },
    {
      "code": "NG202",
      "severity": "error",
      "pass": "cluster-topology",
      "message": "write #2 (ns0 t=12.0 /a/y→k1) can never reach ns3 within the run: the anti-entropy pull graph is not strongly connected over the schedule, so the replicas provably fail to reconverge",
      "entities": [],
      "step": 2,
      "name": "/a/y"
    },
    {
      "code": "NG202",
      "severity": "error",
      "pass": "cluster-topology",
      "message": "write #4 (ns2 t=22.0 /a/race→k2) can never reach ns0 within the run: the anti-entropy pull graph is not strongly connected over the schedule, so the replicas provably fail to reconverge",
      "entities": [],
      "step": 4,
      "name": "/a/race"
    },
    {
      "code": "NG202",
      "severity": "error",
      "pass": "cluster-topology",
      "message": "write #4 (ns2 t=22.0 /a/race→k2) can never reach ns1 within the run: the anti-entropy pull graph is not strongly connected over the schedule, so the replicas provably fail to reconverge",
      "entities": [],
      "step": 4,
      "name": "/a/race"
    },
    {
      "code": "NG203",
      "severity": "error",
      "pass": "cluster-topology",
      "message": "ns3 is provably stale beyond the staleness bound (2 anti-entropy rounds) for the whole crash window [40.0; 60.0): write #2 (ns0 t=12.0 /a/y→k1) cannot reach it before sample #28 at t=58.0",
      "entities": [],
      "step": 28,
      "name": "/a/y"
    },
    {
      "code": "NG204",
      "severity": "error",
      "pass": "cluster-durability",
      "message": "write #7 (ns3 t=45.0 /a/hole→k1) is a durability hole: every retransmission lands inside ns3's crash window [40.0; 60.0), no surviving replica ever holds the update and the client's retry budget provably exhausts",
      "entities": [],
      "step": 7,
      "name": "/a/hole"
    },
    {
      "code": "NG205",
      "severity": "warning",
      "pass": "cluster-races",
      "message": "site /a·race: write #3 (ns0 t=20.0 /a/race→k1) (stamp in [4; 4]) and write #4 (ns2 t=22.0 /a/race→k2) (stamp in [1; 5]) may tie on Lamport stamp, leaving the LWW winner decided only by origin id",
      "entities": [],
      "step": 4,
      "name": "/a/race"
    },
    {
      "code": "NG206",
      "severity": "warning",
      "pass": "cluster-durability",
      "message": "dedup window 1 is smaller than client c0's overlapping retry traffic: 1 later calls can evict write #0 (ns0 t=2.0 /a/x→k1) from the dedup memory while its duplicates are still in flight, so the write may be applied twice",
      "entities": [],
      "step": 0,
      "name": "/a/x"
    },
    {
      "code": "NG207",
      "severity": "warning",
      "pass": "cluster-spec",
      "message": "directory /ghost/sub is orphaned: parent /ghost is not in the spec, so the binding is silently dropped on every replica and the mirror group can never satisfy §5 equivalence",
      "entities": [],
      "name": "/ghost/sub"
    },
    {
      "code": "NG207",
      "severity": "warning",
      "pass": "cluster-spec",
      "message": "link /a/dead refers to unknown leaf key \"kmissing\": the binding is silently dropped on every replica",
      "entities": [],
      "name": "/a/dead"
    },
    {
      "code": "NG208",
      "severity": "info",
      "pass": "cluster-verdict",
      "message": "1 of 8 writes may or may not be applied (loss p=0.00 over the client path): the convergence verdict is undecided within the round budget (2)",
      "entities": []
    }
  ]
}|golden}

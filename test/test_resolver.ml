(* Tests for Naming.Resolver — the recursive resolution of section 2. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module R = Naming.Resolver

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

(* /a/b/f plus a cycle loop -> root. *)
let fixture () =
  let st = S.create () in
  let root = S.create_context_object ~label:"root" st in
  let a = S.create_context_object ~label:"a" st in
  let bdir = S.create_context_object ~label:"b" st in
  let f = S.create_object ~label:"f" ~state:(S.Data "payload") st in
  S.bind st ~dir:root (N.atom "a") a;
  S.bind st ~dir:a (N.atom "b") bdir;
  S.bind st ~dir:bdir (N.atom "f") f;
  S.bind st ~dir:bdir (N.atom "loop") root;
  (st, root, a, bdir, f)

let ctx_of root = C.of_bindings [ (N.root_atom, root) ]

let test_single_atom () =
  let st, root, a, _, _ = fixture () in
  let ctx = C.of_bindings [ (N.atom "a", a); (N.root_atom, root) ] in
  check entity "single" a (R.resolve st ctx (N.of_string "a"));
  check entity "missing" E.undefined (R.resolve st ctx (N.of_string "zzz"))

let test_compound () =
  let st, root, _, _, f = fixture () in
  check entity "deep" f (R.resolve st (ctx_of root) (N.of_string "/a/b/f"))

let test_failure_modes () =
  let st, root, _, _, _ = fixture () in
  let ctx = ctx_of root in
  check entity "unbound tail" E.undefined
    (R.resolve st ctx (N.of_string "/a/nope/f"));
  (* traversing THROUGH a data object fails... *)
  check entity "data object mid-path" E.undefined
    (R.resolve st ctx (N.of_string "/a/b/f/x"));
  (* ...but ending on it is fine (covered by test_compound). *)
  check entity "unbound head" E.undefined
    (R.resolve st ctx (N.of_string "nothing"))

let test_cycle_terminates () =
  let st, root, _, _, f = fixture () in
  (* loop goes back to root; a long name through the cycle still resolves
     because each step consumes an atom. *)
  check entity "through cycle" f
    (R.resolve st (ctx_of root) (N.of_string "/a/b/loop/a/b/f"))

let test_trace () =
  let st, root, _, _, f = fixture () in
  let result, trace = R.resolve_trace st (ctx_of root) (N.of_string "/a/b/f") in
  check entity "result" f result;
  check Alcotest.int "steps" 4 (List.length trace);
  let last = List.nth trace 3 in
  check entity "last target" f last.R.target;
  let first = List.hd trace in
  check entity "first at is bottom (initial context value)" E.undefined
    first.R.at

let test_trace_stops_at_failure () =
  let st, root, _, _, _ = fixture () in
  let result, trace =
    R.resolve_trace st (ctx_of root) (N.of_string "/a/missing/f/g")
  in
  check entity "failed" E.undefined result;
  check Alcotest.int "stops early" 3 (List.length trace)

let test_resolve_in () =
  let st, _, a, _, f = fixture () in
  check entity "from ctx object" f (R.resolve_in st a (N.of_string "b/f"));
  check entity "from data object" E.undefined
    (R.resolve_in st f (N.of_string "x"))

let test_resolve_deps_dedup () =
  let st, root, a, bdir, f = fixture () in
  (* The loop binding sends the walk through root, a and b a second
     time; each consulted entity must be reported once, at its first
     visit. *)
  let result, deps = R.resolve_deps st root (N.of_string "a/b/loop/a/b/f") in
  check entity "result through cycle" f result;
  check (Alcotest.list entity) "deps deduped in first-visit order"
    [ root; a; bdir ] deps;
  (* the failure path still reports the failing entity (once) *)
  let r2, deps2 = R.resolve_deps st root (N.of_string "a/b/f/x") in
  check entity "fails through data object" E.undefined r2;
  check (Alcotest.list entity) "failing entity reported once"
    [ root; a; bdir; f ] deps2

let test_resolve_str () =
  let st, root, _, _, f = fixture () in
  check entity "str" f (R.resolve_str st (ctx_of root) "/a/b/f")

let test_deref () =
  let st, root, a, bdir, _ = fixture () in
  let ctx = ctx_of root in
  let n = N.of_string "/a/b/f" in
  check entity "prefix 1" root (R.deref st ctx n ~prefix:1);
  check entity "prefix 2" a (R.deref st ctx n ~prefix:2);
  check entity "prefix 3" bdir (R.deref st ctx n ~prefix:3);
  (match R.deref st ctx n ~prefix:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prefix 0 accepted");
  (match R.deref st ctx n ~prefix:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prefix beyond length accepted")

(* property: on a random tree, every (name, entity) from Graph.all_names
   resolves to that entity. *)
let prop_all_names_sound =
  let build seed =
    let rng = Dsim.Rng.create (Int64.of_int seed) in
    let st = S.create () in
    let root = S.create_context_object ~label:"root" st in
    let dirs = ref [ root ] in
    for i = 0 to 20 do
      let parent = Dsim.Rng.pick rng !dirs in
      if Dsim.Rng.bool rng 0.6 then begin
        let d = S.create_context_object st in
        S.bind st ~dir:parent (N.atom (Printf.sprintf "d%d" i)) d;
        dirs := d :: !dirs
      end
      else begin
        let f = S.create_object st in
        S.bind st ~dir:parent (N.atom (Printf.sprintf "f%d" i)) f
      end
    done;
    (st, root)
  in
  QCheck.Test.make ~name:"all_names sound w.r.t. resolver" ~count:50
    QCheck.small_nat (fun seed ->
      let st, root = build seed in
      match S.context_of st root with
      | None -> false
      | Some ctx ->
          List.for_all
            (fun (n, e) -> E.equal (R.resolve st ctx n) e)
            (Naming.Graph.all_names st ctx ~max_depth:6 ()))

let suite =
  [
    Alcotest.test_case "single atom" `Quick test_single_atom;
    Alcotest.test_case "compound" `Quick test_compound;
    Alcotest.test_case "failure modes" `Quick test_failure_modes;
    Alcotest.test_case "cycles terminate" `Quick test_cycle_terminates;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "trace stops at failure" `Quick
      test_trace_stops_at_failure;
    Alcotest.test_case "resolve_in" `Quick test_resolve_in;
    Alcotest.test_case "resolve_deps dedups cyclic walks" `Quick
      test_resolve_deps_dedup;
    Alcotest.test_case "resolve_str" `Quick test_resolve_str;
    Alcotest.test_case "deref" `Quick test_deref;
    QCheck_alcotest.to_alcotest prop_all_names_sound;
  ]

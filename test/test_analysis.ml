(* Tests for the Analysis library: diagnostics, passes, engine, the
   static coherence predictor, and the broken-world golden output. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module A = Analysis

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let sl = Alcotest.(list string)

let broken_report () =
  let subject = Broken_world.build () in
  let config =
    { A.Engine.default_config with A.Engine.fuel = Broken_world.fuel }
  in
  (subject, A.Engine.analyze ~config ~label:"broken" subject)

(* --- Json ----------------------------------------------------------- *)

let test_json_render () =
  let j =
    A.Json.Obj
      [
        ("s", A.Json.String "a\"b\\c\nd\tcontrol:\x01");
        ("n", A.Json.Int 3);
        ("f", A.Json.Float 1.5);
        ("l", A.Json.List [ A.Json.Bool true; A.Json.Null ]);
        ("e", A.Json.Obj []);
      ]
  in
  check Alcotest.string "compact"
    "{\"s\":\"a\\\"b\\\\c\\nd\\tcontrol:\\u0001\",\"n\":3,\"f\":1.5,\
     \"l\":[true,null],\"e\":{}}"
    (A.Json.to_string j);
  check b "pretty contains newlines" true
    (String.contains (A.Json.to_string_pretty j) '\n')

(* --- the broken-world fixture --------------------------------------- *)

let test_broken_codes () =
  let _subject, r = broken_report () in
  let codes = List.map (fun d -> d.A.Diagnostic.code) r.A.Engine.diagnostics in
  check sl "diagnostic codes in report order" Broken_world.expected_codes codes

let test_broken_gates () =
  let _subject, r = broken_report () in
  check b "has errors" true (A.Engine.has_errors r);
  check i "exit code" 1 (A.Engine.exit_code [ r ]);
  check i "errors" 6 r.A.Engine.errors;
  check i "warnings" 6 r.A.Engine.warnings;
  check i "infos" 7 r.A.Engine.infos

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_broken_pretty () =
  let subject, r = broken_report () in
  let pretty =
    Format.asprintf "%a" (A.Engine.pp subject.A.Subject.store) r
  in
  List.iter
    (fun code ->
      check b (Printf.sprintf "pretty output mentions %s" code) true
        (contains ~sub:code pretty))
    Broken_world.expected_codes;
  check b "pretty output has the summary line" true
    (contains ~sub:"summary: 6 error(s), 6 warning(s), 7 info(s)" pretty)

let test_codes_in_catalogue () =
  let _subject, r = broken_report () in
  List.iter
    (fun d ->
      match
        List.find_opt
          (fun (c, _, _) -> String.equal c d.A.Diagnostic.code)
          A.Diagnostic.catalogue
      with
      | None ->
          Alcotest.failf "code %s not in the catalogue" d.A.Diagnostic.code
      | Some (_, sev, _) ->
          check b
            (Printf.sprintf "%s severity matches catalogue" d.A.Diagnostic.code)
            true
            (sev = d.A.Diagnostic.severity))
    r.A.Engine.diagnostics;
  (* ... and the fixtures together trip every catalogued code: the
     broken world covers the NG0xx world passes, the broken script the
     NG1xx flow passes, the broken cluster the NG2xx replication
     passes, and the explorer fixtures the NG3xx exploration passes. *)
  let tripped =
    List.map (fun d -> d.A.Diagnostic.code) r.A.Engine.diagnostics
    @ Broken_script.expected_codes @ Broken_cluster.expected_codes
    @ Broken_cluster.leader_expected_codes @ Test_explore.expected_codes
  in
  List.iter
    (fun (c, _, _) ->
      check b (Printf.sprintf "%s tripped" c) true
        (List.exists (String.equal c) tripped))
    A.Diagnostic.catalogue

let test_broken_json_golden () =
  let subject, r = broken_report () in
  let json =
    A.Json.to_string_pretty (A.Engine.to_json subject.A.Subject.store r)
  in
  check Alcotest.string "golden JSON" Broken_world.expected_json json

(* --- engine configuration ------------------------------------------- *)

let test_min_severity_filter () =
  let subject = Broken_world.build () in
  let config =
    {
      A.Engine.default_config with
      A.Engine.min_severity = A.Diagnostic.Error;
      fuel = Broken_world.fuel;
    }
  in
  let r = A.Engine.analyze ~config ~label:"broken" subject in
  check b "only errors reported" true
    (List.for_all
       (fun d -> d.A.Diagnostic.severity = A.Diagnostic.Error)
       r.A.Engine.diagnostics);
  check i "filtered length" r.A.Engine.errors
    (List.length r.A.Engine.diagnostics);
  (* counters are unfiltered *)
  check i "warnings still counted" 6 r.A.Engine.warnings

let test_pass_subset () =
  let subject = Broken_world.build () in
  let config =
    { A.Engine.default_config with A.Engine.passes = Some [ "structure" ] }
  in
  let r = A.Engine.analyze ~config ~label:"broken" subject in
  check b "only structure diagnostics" true
    (List.for_all
       (fun d -> String.equal d.A.Diagnostic.pass "structure")
       r.A.Engine.diagnostics);
  check i "five structural errors" 5 r.A.Engine.errors;
  Alcotest.check_raises "unknown pass"
    (Invalid_argument "Engine.analyze: unknown pass \"nosuch\"") (fun () ->
      ignore
        (A.Engine.analyze
           ~config:
             { A.Engine.default_config with A.Engine.passes = Some [ "nosuch" ] }
           ~label:"broken" subject))

(* --- the static coherence predictor --------------------------------- *)

let world_exn scheme =
  match Harness.Sample.world scheme with
  | Some w -> w
  | None -> Alcotest.failf "unknown sample scheme %s" scheme

let occs_of (w : Harness.Sample.world) =
  List.map Naming.Occurrence.generated w.Harness.Sample.activities

let test_predict_same_context () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs [ "etc/passwd" ];
  let env = Schemes.Process_env.create st in
  let root = Vfs.Fs.root fs in
  let p0 = Schemes.Process_env.spawn ~label:"p0" ~root env in
  let p1 = Schemes.Process_env.spawn ~label:"p1" ~root env in
  let occs = List.map Naming.Occurrence.generated [ p0; p1 ] in
  let p =
    A.Predict.predict st (Schemes.Process_env.rule env) occs
      (N.of_string "/etc")
  in
  check b "same-context evidence" true (p.A.Predict.evidence = A.Predict.Same_context);
  match p.A.Predict.outcome with
  | A.Predict.Coherent e ->
      check b "denotes /etc" true (E.equal e (Vfs.Fs.lookup fs "/etc"))
  | _ -> Alcotest.fail "expected provably-coherent"

let test_predict_convergence () =
  (* Two Andrew clients: private roots, shared subtree under "vice" —
     traces into the shared tree diverge at the root and converge at the
     attach point (paper section 6). *)
  let w = world_exn "andrew" in
  let p =
    A.Predict.predict w.Harness.Sample.store w.Harness.Sample.rule (occs_of w)
      (N.of_string "/vice/pkg")
  in
  (match p.A.Predict.outcome with
  | A.Predict.Coherent _ -> ()
  | o -> Alcotest.failf "expected coherent, got %s" (A.Predict.outcome_to_string o));
  match p.A.Predict.evidence with
  | A.Predict.Traces_compared { converge_at = Some k } ->
      check b "converges after the root step" true (k >= 1)
  | _ -> Alcotest.fail "expected converging traces"

let test_predict_incoherent_and_budget () =
  let w = world_exn "unix" in
  let st = w.Harness.Sample.store in
  let p =
    A.Predict.predict st w.Harness.Sample.rule (occs_of w) (N.of_string "/bin")
  in
  (match p.A.Predict.outcome with
  | A.Predict.Incoherent ((_, e1), (_, e2)) ->
      check b "distinct witnesses" true (not (E.equal e1 e2))
  | o -> Alcotest.failf "expected incoherent, got %s" (A.Predict.outcome_to_string o));
  let p =
    A.Predict.predict ~fuel:1 st w.Harness.Sample.rule (occs_of w)
      (N.of_string "/bin/ls")
  in
  check b "budget exhausted" true
    (match p.A.Predict.outcome with A.Predict.Unknown _ -> true | _ -> false);
  check b "budget evidence" true
    (p.A.Predict.evidence = A.Predict.Budget_exceeded)

(* Acceptance: on every sample scheme's probe set the static predictor
   agrees with the dynamic checker. *)
let test_predictor_agrees_on_samples () =
  List.iter
    (fun scheme ->
      let w = world_exn scheme in
      let st = w.Harness.Sample.store in
      let rule = w.Harness.Sample.rule in
      let occs = occs_of w in
      List.iter
        (fun probe ->
          let p = A.Predict.predict st rule occs probe in
          let v = Naming.Coherence.check st rule occs probe in
          if not (A.Predict.agrees p v) then
            Alcotest.failf "%s: predictor contradicts dynamic check on %s"
              scheme (N.to_string probe))
        (Harness.Sample.probes w))
    Harness.Sample.schemes

(* ... and each sample world analyzes without errors. *)
let test_samples_error_free () =
  List.iter
    (fun scheme ->
      let w = world_exn scheme in
      let subject =
        A.Subject.v
          ~probes:(Harness.Sample.probes w)
          ~rule:w.Harness.Sample.rule
          ~activities:w.Harness.Sample.activities w.Harness.Sample.store
      in
      let r = A.Engine.analyze ~label:scheme subject in
      if A.Engine.has_errors r then
        Alcotest.failf "%s has analyzer errors:@\n%a" scheme
          (A.Engine.pp w.Harness.Sample.store)
          r)
    Harness.Sample.schemes

(* --- properties ----------------------------------------------------- *)

let atom_pool =
  [ "/"; "etc"; "usr"; "bin"; "passwd"; "hosts"; "vice"; "pkg"; "sysb";
    "fs1"; "..."; ".:"; ".."; "."; "nosuch" ]

(* The predictor never contradicts the dynamic checker: random scheme,
   random probe, random fuel. *)
let prop_predictor_never_contradicts =
  QCheck.Test.make ~name:"predictor never contradicts Coherence.check"
    ~count:200
    QCheck.(
      triple small_nat
        (list_of_size Gen.(1 -- 5) (oneofl atom_pool))
        small_nat)
    (fun (seed, atoms, fuel_seed) ->
      QCheck.assume (atoms <> []);
      let scheme =
        List.nth Harness.Sample.schemes
          (seed mod List.length Harness.Sample.schemes)
      in
      let w =
        match Harness.Sample.world scheme with
        | Some w -> w
        | None -> assert false
      in
      let st = w.Harness.Sample.store in
      let rule = w.Harness.Sample.rule in
      let occs = occs_of w in
      let probe = N.of_atoms (List.map N.atom atoms) in
      let fuel = 1 + (fuel_seed mod 6) in
      A.Predict.agrees
        (A.Predict.predict ~fuel st rule occs probe)
        (Naming.Coherence.check st rule occs probe)
      && A.Predict.agrees
           (A.Predict.predict st rule occs probe)
           (Naming.Coherence.check st rule occs probe))

(* Randomly generated unix-style worlds (docgen projects plus subtree
   surgery, two processes, one chrooted) analyze without errors. *)
let prop_random_worlds_error_free =
  QCheck.Test.make ~name:"random worlds analyze error-free" ~count:25
    QCheck.small_nat (fun seed ->
      let st = S.create () in
      let fs = Vfs.Fs.create st in
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let project =
        Workload.Docgen.build fs ~at:"p" ~rng ~spec:Workload.Docgen.default_spec
      in
      let mnt = Vfs.Fs.mkdir_path fs "/mnt" in
      Vfs.Subtree.relocate fs ~src:(Vfs.Fs.root fs) ~name:"p" ~dst:mnt ();
      let clone = Vfs.Subtree.copy fs project in
      Vfs.Fs.link fs ~dir:mnt "copy" clone;
      S.bind st ~dir:clone N.parent_atom mnt;
      Vfs.Subtree.attach fs ~dir:(Vfs.Fs.root fs) ~name:"alias" project;
      let env = Schemes.Process_env.create st in
      let p0 = Schemes.Process_env.spawn ~label:"p0" ~root:(Vfs.Fs.root fs) env in
      let chroot_dir = if seed mod 2 = 0 then Vfs.Fs.root fs else mnt in
      let p1 = Schemes.Process_env.spawn ~label:"p1" ~root:chroot_dir env in
      let subject =
        A.Subject.v ~rule:(Schemes.Process_env.rule env)
          ~activities:[ p0; p1 ] st
      in
      let r = A.Engine.analyze ~label:"random" subject in
      (not (A.Engine.has_errors r))
      (* and, on the same worlds, the predictor agrees with the checker
         over the default probe set *)
      && List.for_all
           (fun probe ->
             let occs =
               List.map Naming.Occurrence.generated [ p0; p1 ]
             in
             A.Predict.agrees
               (A.Predict.predict st (Schemes.Process_env.rule env) occs probe)
               (Naming.Coherence.check st (Schemes.Process_env.rule env) occs
                  probe))
           subject.A.Subject.probes)

let suite =
  [
    Alcotest.test_case "json render" `Quick test_json_render;
    Alcotest.test_case "broken world codes" `Quick test_broken_codes;
    Alcotest.test_case "broken world gates" `Quick test_broken_gates;
    Alcotest.test_case "broken world pretty output" `Quick test_broken_pretty;
    Alcotest.test_case "codes match catalogue" `Quick test_codes_in_catalogue;
    Alcotest.test_case "broken world JSON golden" `Quick
      test_broken_json_golden;
    Alcotest.test_case "min-severity filter" `Quick test_min_severity_filter;
    Alcotest.test_case "pass subset" `Quick test_pass_subset;
    Alcotest.test_case "predict: same context" `Quick
      test_predict_same_context;
    Alcotest.test_case "predict: convergence" `Quick test_predict_convergence;
    Alcotest.test_case "predict: incoherent, budget" `Quick
      test_predict_incoherent_and_budget;
    Alcotest.test_case "predictor agrees on all samples" `Quick
      test_predictor_agrees_on_samples;
    Alcotest.test_case "sample schemes analyze error-free" `Quick
      test_samples_error_free;
    QCheck_alcotest.to_alcotest prop_predictor_never_contradicts;
    QCheck_alcotest.to_alcotest prop_random_worlds_error_free;
  ]

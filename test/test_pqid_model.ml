(* Tests for Schemes.Pqid_model — pids as ordinary names in the model,
   checked equivalent to the arithmetic Netaddr.Registry. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module P = Netaddr.Pqid
module R = Netaddr.Registry
module M = Schemes.Pqid_model

let check = Alcotest.check
let b = Alcotest.bool

let small_registry () =
  let r = R.create () in
  let n1 = R.add_network r ~label:"n1" in
  let n2 = R.add_network r ~label:"n2" in
  let m11 = R.add_machine r ~net:n1 ~label:"m11" in
  let m12 = R.add_machine r ~net:n1 ~label:"m12" in
  let m21 = R.add_machine r ~net:n2 ~label:"m21" in
  List.iter
    (fun m ->
      for k = 1 to 2 do
        ignore (R.add_process r ~mach:m ~label:(Printf.sprintf "p%d" k))
      done)
    [ m11; m12; m21 ];
  r

let test_pid_name () =
  check b "self has no name" true (M.pid_name P.self = None);
  (match M.pid_name (P.local 3) with
  | Some n -> check Alcotest.string "local" "3" (N.to_string n)
  | None -> Alcotest.fail "no name");
  (match M.pid_name (P.machine ~maddr:2 ~laddr:3) with
  | Some n -> check Alcotest.string "network-local" "2/3" (N.to_string n)
  | None -> Alcotest.fail "no name");
  match M.pid_name (P.full ~naddr:1 ~maddr:2 ~laddr:3) with
  | Some n -> check Alcotest.string "full" "1/2/3" (N.to_string n)
  | None -> Alcotest.fail "no name"

let test_structure () =
  let r = small_registry () in
  let st = S.create () in
  let m = M.of_registry st r in
  (* the universe resolves full pids as graph paths *)
  let first = List.hd (R.all_processes r) in
  let pid = R.full_pid r first in
  (match M.pid_name pid with
  | Some name ->
      check b "graph traversal reaches the activity" true
        (E.equal
           (Naming.Resolver.resolve_in st (M.universe m) name)
           (M.activity_of m first))
  | None -> Alcotest.fail "full pid has a name");
  (* the mirrored store is well-formed *)
  check b "lint clean" true (Naming.Lint.is_clean st)

let agree r m =
  let procs = R.all_processes r in
  let pids_about target holder =
    [
      R.pid_of r ~target ~relative_to:holder;
      R.full_pid r target;
      P.local (R.laddr r target);
    ]
  in
  List.for_all
    (fun holder ->
      List.for_all
        (fun target ->
          List.for_all
            (fun pid ->
              R.resolve r ~from:holder pid = M.resolve m ~from:holder pid)
            (pids_about target holder))
        procs)
    procs

let test_equivalence_static () =
  let r = small_registry () in
  let m = M.of_registry (S.create ()) r in
  check b "registry = model" true (agree r m)

let test_equivalence_after_renumbering () =
  let r = small_registry () in
  let m = M.of_registry (S.create ()) r in
  let rng = Dsim.Rng.create 3L in
  ignore
    (Workload.Reconfig.random_ops r ~rng ~n:10
       ~kinds:[ `Renumber_machine; `Renumber_network; `Move_machine ]
       ());
  (* renumbering in the model is REBINDING: refresh re-mirrors *)
  M.refresh m;
  check b "still agree after reconfiguration" true (agree r m)

let test_dangling () =
  let r = small_registry () in
  let m = M.of_registry (S.create ()) r in
  let from = List.hd (R.all_processes r) in
  check b "dangling pid" true
    (M.resolve m ~from (P.local 99) = None
    && R.resolve r ~from (P.local 99) = None)

(* property: equivalence over random topologies and reconfigurations *)
let prop_model_equals_registry =
  QCheck.Test.make ~name:"model resolution = registry resolution" ~count:25
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let r = R.create () in
      let nets =
        List.init (1 + Dsim.Rng.int rng 2) (fun k ->
            R.add_network r ~label:(Printf.sprintf "n%d" k))
      in
      List.iter
        (fun net ->
          for mm = 0 to Dsim.Rng.int rng 2 do
            let mach =
              R.add_machine r ~net ~label:(Printf.sprintf "m%d" mm)
            in
            for p = 0 to Dsim.Rng.int rng 2 do
              ignore (R.add_process r ~mach ~label:(Printf.sprintf "p%d" p))
            done
          done)
        nets;
      if R.all_processes r = [] then true
      else begin
        let m = M.of_registry (S.create ()) r in
        let ok_before = agree r m in
        ignore
          (Workload.Reconfig.random_ops r ~rng ~n:5
             ~kinds:[ `Renumber_machine; `Renumber_network ]
             ());
        M.refresh m;
        ok_before && agree r m
      end)

let suite =
  [
    Alcotest.test_case "pid_name" `Quick test_pid_name;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "equivalence (static)" `Quick test_equivalence_static;
    Alcotest.test_case "equivalence after renumbering" `Quick
      test_equivalence_after_renumbering;
    Alcotest.test_case "dangling pids" `Quick test_dangling;
    QCheck_alcotest.to_alcotest prop_model_equals_registry;
  ]

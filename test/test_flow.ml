(* Tests for the name-flow analyzer: the broken-script fixture and its
   golden JSON, sample plans, strict/report script modes, the script
   parser, the SARIF renderer, and the static-vs-dynamic soundness
   property. *)

module A = Analysis
module F = A.Flow
module Sc = Workload.Script
module N = Naming.Name

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let sl = Alcotest.(list string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- the broken-script fixture --------------------------------------- *)

let test_broken_codes () =
  let _r, rep = Broken_script.report () in
  let codes =
    List.map (fun d -> d.A.Diagnostic.code) rep.A.Engine.diagnostics
  in
  check sl "diagnostic codes in report order" Broken_script.expected_codes
    codes

let test_broken_gates () =
  let _r, rep = Broken_script.report () in
  check b "has errors" true (A.Engine.has_errors rep);
  check i "exit code" 1 (A.Engine.exit_code [ rep ]);
  check i "errors" 2 rep.A.Engine.errors;
  check i "warnings" 4 rep.A.Engine.warnings;
  check i "infos" 1 rep.A.Engine.infos

let test_broken_json_golden () =
  let _r, rep = Broken_script.report () in
  let store = Naming.Store.create () in
  let json = A.Json.to_string_pretty (A.Engine.to_json store rep) in
  check Alcotest.string "golden JSON" Broken_script.expected_json json

let test_broken_lines () =
  let plan = Broken_script.plan () in
  let lines = Broken_script.lines () in
  check i "one source line per step" (List.length plan) (Array.length lines);
  (* the leading comment line shifts every step down by one *)
  check i "first step line" 2 lines.(0);
  check i "last step line" (List.length plan + 1)
    lines.(Array.length lines - 1)

(* The fixture's static verdicts against the dynamic replay: outcomes
   agree, divergence witnesses match, and the predicted skip set is
   exactly the real one. *)
let compare_static_dynamic plan config =
  let r = F.analyze ~config plan in
  let d = F.replay ~config plan in
  check i "verdict count" (List.length r.F.verdicts)
    (List.length d.F.dyn_verdicts);
  List.iter2
    (fun (v : F.verdict) (dy : F.dyn) ->
      check i "same step" v.F.index dy.F.dyn_index;
      if not (F.agrees v.F.outcome dy.F.dyn_outcome) then
        Alcotest.failf "step %d (%s): static %s contradicts dynamic %s"
          v.F.index
          (F.flow_to_string v.F.flow)
          (Format.asprintf "%a" F.pp_outcome v.F.outcome)
          (Format.asprintf "%a" F.pp_outcome dy.F.dyn_outcome);
      match v.F.outcome with
      | F.Unknown _ -> ()
      | _ ->
          check b
            (Printf.sprintf "step %d divergence" v.F.index)
            dy.F.dyn_diverged
            (v.F.divergence <> None))
    r.F.verdicts d.F.dyn_verdicts;
  let skip_key (idx, (sk : Sc.skip)) =
    Printf.sprintf "%d/%d %s: %s" idx sk.Sc.index (Sc.op_to_string sk.Sc.op)
      sk.Sc.reason
  in
  check sl "identical skip sets"
    (List.map skip_key d.F.dyn_skips)
    (List.map skip_key r.F.skips)

let test_broken_replay_agrees () =
  compare_static_dynamic (Broken_script.plan ()) Broken_script.config

(* --- sample plans ----------------------------------------------------- *)

let script_exn name =
  match Harness.Sample.script name with
  | Some plan -> plan
  | None -> Alcotest.failf "unknown sample script %s" name

let test_samples_error_free () =
  check b "sample scripts exist" true (Harness.Sample.scripts <> []);
  List.iter
    (fun name ->
      let _r, rep = A.Flowpasses.report ~label:name (script_exn name) in
      if A.Engine.has_errors rep then
        Alcotest.failf "sample script %s has flow errors" name)
    Harness.Sample.scripts

let test_samples_replay_agrees () =
  List.iter
    (fun name ->
      compare_static_dynamic (script_exn name) F.default_config)
    Harness.Sample.scripts

(* The fork sample exists to witness NG104; the skips sample NG103 and
   NG105. *)
let codes_of name =
  let _r, rep = A.Flowpasses.report ~label:name (script_exn name) in
  List.map (fun d -> d.A.Diagnostic.code) rep.A.Engine.diagnostics

let test_sample_witnesses () =
  check sl "fork" [ "NG104" ] (codes_of "fork");
  check sl "skips" [ "NG103"; "NG105" ] (codes_of "skips");
  check sl "exchange" [] (codes_of "exchange")

(* --- strict mode and the skip report ---------------------------------- *)

let ops_with_skip =
  [ Sc.Spawn "p0"; Sc.Mkdir "/a"; Sc.Chdir (0, "/nope"); Sc.Mkdir "/a/b" ]

let test_run_report () =
  let w = Sc.new_world (Naming.Store.create ()) in
  match Sc.run_report w ops_with_skip with
  | [ sk ] ->
      check i "skip index" 2 sk.Sc.index;
      check Alcotest.string "skip reason" "/nope is not a directory"
        sk.Sc.reason;
      (* the ops after the skip still ran *)
      check b "later op applied" true
        (Naming.Entity.is_defined
           (Vfs.Fs.lookup (Sc.fs w) "/a/b"))
  | sks -> Alcotest.failf "expected exactly one skip, got %d" (List.length sks)

let test_run_strict () =
  let w = Sc.new_world (Naming.Store.create ()) in
  (match Sc.run ~strict:true w ops_with_skip with
  | () -> Alcotest.fail "expected Skipped"
  | exception Sc.Skipped sk ->
      check i "strict skip index" 2 sk.Sc.index;
      check Alcotest.string "strict reason" "/nope is not a directory"
        sk.Sc.reason);
  (* strict stops at the offending op *)
  check b "later op not applied" true
    (Naming.Entity.is_undefined (Vfs.Fs.lookup (Sc.fs w) "/a/b"));
  (* the default is the historical silent-skip behaviour *)
  let w2 = Sc.new_world (Naming.Store.create ()) in
  Sc.run w2 ops_with_skip;
  check b "non-strict completes" true
    (Naming.Entity.is_defined (Vfs.Fs.lookup (Sc.fs w2) "/a/b"))

(* --- the op parser ----------------------------------------------------- *)

let roundtrip_ops =
  [
    Sc.Mkdir "/a/b";
    Sc.Add_file ("/a/b/f", "two words");
    Sc.Write ("/a/b/f", "x\"y");
    Sc.Unlink "/a/b/f";
    Sc.Spawn "p0";
    Sc.Fork 3;
    Sc.Chdir (0, "/a");
    Sc.Chroot (1, "/a/b");
    Sc.Bind (2, "mnt", "/a");
    Sc.Unbind (2, "mnt");
  ]

let test_op_roundtrip () =
  List.iter
    (fun op ->
      let s = Sc.op_to_string op in
      match Sc.op_of_string s with
      | Ok op' ->
          check b (Printf.sprintf "roundtrip %s" s) true (op = op')
      | Error msg -> Alcotest.failf "%s does not parse back: %s" s msg)
    roundtrip_ops

let test_parse_errors () =
  (match F.parse "mkdir /a\nbogus 1 2\n" with
  | Error msg -> check b "error names the line" true (contains ~sub:"line 2" msg)
  | Ok _ -> Alcotest.fail "expected a parse error");
  (match F.parse "# comments\n\n  \n" with
  | Ok (plan, _) -> check i "comments-only plan is empty" 0 (List.length plan)
  | Error msg -> Alcotest.failf "comments-only text rejected: %s" msg);
  match F.parse "use 0\n" with
  | Error msg -> check b "truncated flow rejected" true (contains ~sub:"line 1" msg)
  | Ok _ -> Alcotest.fail "expected a parse error"

(* --- SARIF ------------------------------------------------------------- *)

let test_sarif () =
  let _r, rep = Broken_script.report () in
  let lines = Broken_script.lines () in
  let line_of i =
    if i >= 0 && i < Array.length lines then Some lines.(i) else None
  in
  let s =
    A.Json.to_string
      (A.Sarif.render [ A.Sarif.of_report ~uri:"broken.nsc" ~line_of rep ])
  in
  List.iter
    (fun sub ->
      check b (Printf.sprintf "sarif contains %s" sub) true (contains ~sub s))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"namingctl\"";
      "\"id\":\"NG101\"";
      "\"ruleId\":\"NG101\"";
      "\"ruleId\":\"NG106\"";
      "\"level\":\"note\"";
      "\"uri\":\"broken.nsc\"";
      (* the NG101 send is step 7, source line 9 *)
      "\"startLine\":9";
    ];
  (* without a uri the result falls back to a logical location *)
  let s2 = A.Json.to_string (A.Sarif.render [ A.Sarif.of_report rep ]) in
  check b "logical location fallback" true
    (contains ~sub:"\"logicalLocations\"" s2);
  check b "no physical location" false (contains ~sub:"physicalLocation" s2)

(* --- properties -------------------------------------------------------- *)

let flow_names =
  [| "/a"; "/a/b"; "/a/b/c"; "/d"; "/d/e"; "/f"; "a"; "a/b"; "b/c";
     "mnt"; "mnt/f"; "vice"; "x"; "e"; ".."; "." |]

let flow_paths = [| "/a"; "/a/b"; "/a/b/c"; "/d"; "/d/e"; "/f"; "a/b" |]

let random_flow rng =
  let name () = N.of_string (Dsim.Rng.pick_array rng flow_names) in
  let idx () = Dsim.Rng.int rng 4 in
  match Dsim.Rng.int rng 3 with
  | 0 -> F.Use { proc = idx (); name = name () }
  | 1 -> F.Send { sender = idx (); receiver = idx (); name = name () }
  | _ -> F.Read { reader = idx (); path = Dsim.Rng.pick_array rng flow_paths;
                  name = name () }

(* A random plan: [Script.random_ops] (generated against a scratch
   world) interleaved with random flows. *)
let random_plan seed =
  let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
  let w = Sc.new_world (Naming.Store.create ()) in
  let ops = Sc.random_ops w ~rng ~n:25 in
  List.concat_map
    (fun op ->
      F.Op op
      ::
      (if Dsim.Rng.int rng 2 = 0 then [ F.Flow (random_flow rng) ] else []))
    ops

(* Soundness: the static analyzer never contradicts the dynamic replay —
   on outcomes, on fork divergence, or on the predicted skip set. *)
let prop_static_never_contradicts_dynamic =
  QCheck.Test.make ~name:"flow analyzer never contradicts replay" ~count:150
    QCheck.small_nat (fun seed ->
      let plan = random_plan seed in
      let r = F.analyze plan in
      let d = F.replay plan in
      List.length r.F.verdicts = List.length d.F.dyn_verdicts
      && List.for_all2
           (fun (v : F.verdict) (dy : F.dyn) ->
             v.F.index = dy.F.dyn_index
             && F.agrees v.F.outcome dy.F.dyn_outcome
             &&
             match v.F.outcome with
             | F.Unknown _ -> true
             | _ -> (v.F.divergence <> None) = dy.F.dyn_diverged)
           r.F.verdicts d.F.dyn_verdicts
      && List.map
           (fun (idx, (sk : Sc.skip)) ->
             (idx, sk.Sc.index, Sc.op_to_string sk.Sc.op, sk.Sc.reason))
           r.F.skips
         = List.map
             (fun (idx, (sk : Sc.skip)) ->
               (idx, sk.Sc.index, Sc.op_to_string sk.Sc.op, sk.Sc.reason))
             d.F.dyn_skips)

(* Structural sanity of the emitted diagnostics on the same plans: every
   code is catalogued with a matching severity, and every witness step
   is in range. *)
let prop_diagnostics_well_formed =
  QCheck.Test.make ~name:"flow diagnostics are well-formed" ~count:50
    QCheck.small_nat (fun seed ->
      let plan = random_plan seed in
      let _r, rep = A.Flowpasses.report ~label:"random" plan in
      List.for_all
        (fun (d : A.Diagnostic.t) ->
          (match
             List.find_opt
               (fun (c, _, _) -> String.equal c d.A.Diagnostic.code)
               A.Diagnostic.catalogue
           with
          | Some (_, sev, _) -> sev = d.A.Diagnostic.severity
          | None -> false)
          &&
          match d.A.Diagnostic.loc with
          | Some step -> step >= 0 && step < List.length plan
          | None -> false)
        rep.A.Engine.diagnostics)

let suite =
  [
    Alcotest.test_case "broken script codes" `Quick test_broken_codes;
    Alcotest.test_case "broken script gates" `Quick test_broken_gates;
    Alcotest.test_case "broken script JSON golden" `Quick
      test_broken_json_golden;
    Alcotest.test_case "broken script source lines" `Quick test_broken_lines;
    Alcotest.test_case "broken script replay agrees" `Quick
      test_broken_replay_agrees;
    Alcotest.test_case "sample scripts error-free" `Quick
      test_samples_error_free;
    Alcotest.test_case "sample scripts replay agrees" `Quick
      test_samples_replay_agrees;
    Alcotest.test_case "sample script witnesses" `Quick test_sample_witnesses;
    Alcotest.test_case "run_report" `Quick test_run_report;
    Alcotest.test_case "strict run" `Quick test_run_strict;
    Alcotest.test_case "op roundtrip" `Quick test_op_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "sarif render" `Quick test_sarif;
    QCheck_alcotest.to_alcotest prop_static_never_contradicts_dynamic;
    QCheck_alcotest.to_alcotest prop_diagnostics_well_formed;
  ]

(* Tests for Dsim.Engine — the discrete-event core. *)

module En = Dsim.Engine

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let f = Alcotest.float 1e-9

let test_time_order () =
  let e = En.create () in
  let log = ref [] in
  ignore (En.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (En.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (En.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  ignore (En.run e);
  check (Alcotest.list i) "time order" [ 1; 2; 3 ] (List.rev !log);
  check f "clock at last event" 3.0 (En.now e)

let test_fifo_ties () =
  let e = En.create () in
  let log = ref [] in
  for k = 1 to 5 do
    ignore (En.schedule e ~delay:1.0 (fun () -> log := k :: !log))
  done;
  ignore (En.run e);
  check (Alcotest.list i) "FIFO among equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_nested_scheduling () =
  let e = En.create () in
  let log = ref [] in
  ignore
    (En.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (En.schedule e ~delay:0.5 (fun () -> log := "inner" :: !log))));
  ignore (En.run e);
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ]
    (List.rev !log);
  check f "clock" 1.5 (En.now e)

let test_cancel () =
  let e = En.create () in
  let fired = ref false in
  let h = En.schedule e ~delay:1.0 (fun () -> fired := true) in
  check i "pending" 1 (En.pending e);
  En.cancel e h;
  check i "pending after cancel" 0 (En.pending e);
  ignore (En.run e);
  check b "not fired" false !fired;
  (* double cancel is a no-op *)
  En.cancel e h;
  check i "still zero" 0 (En.pending e)

let test_step () =
  let e = En.create () in
  let count = ref 0 in
  ignore (En.schedule e ~delay:1.0 (fun () -> incr count));
  ignore (En.schedule e ~delay:2.0 (fun () -> incr count));
  check b "step true" true (En.step e);
  check i "one ran" 1 !count;
  check b "step true again" true (En.step e);
  check b "queue empty" false (En.step e)

let test_run_until () =
  let e = En.create () in
  let count = ref 0 in
  for k = 1 to 5 do
    ignore (En.schedule e ~delay:(float_of_int k) (fun () -> incr count))
  done;
  let n = En.run ~until:3.0 e in
  check i "three executed" 3 n;
  check f "clock at horizon" 3.0 (En.now e);
  check i "two left" 2 (En.pending e);
  ignore (En.run e);
  check i "rest executed" 5 !count

let test_run_until_empty_queue_advances_clock () =
  let e = En.create () in
  ignore (En.run ~until:10.0 e);
  check f "clock advanced" 10.0 (En.now e)

let test_max_events () =
  let e = En.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (En.schedule e ~delay:1.0 (fun () -> incr count))
  done;
  let n = En.run ~max_events:4 e in
  check i "limited" 4 n;
  check i "count" 4 !count

let test_schedule_at_and_past () =
  let e = En.create () in
  ignore (En.schedule_at e ~time:5.0 (fun () -> ()));
  ignore (En.run e);
  check f "clock" 5.0 (En.now e);
  (match En.schedule_at e ~time:1.0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "past scheduling accepted");
  (match En.schedule e ~delay:(-1.0) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay accepted")

let test_executed_counter () =
  let e = En.create () in
  for _ = 1 to 3 do
    ignore (En.schedule e ~delay:1.0 (fun () -> ()))
  done;
  ignore (En.run e);
  check i "executed" 3 (En.executed e)

(* property: events always execute in non-decreasing time order, whatever
   the (delay) multiset. *)
let prop_monotone_time =
  QCheck.Test.make ~name:"event times are non-decreasing" ~count:100
    (QCheck.list_of_size QCheck.Gen.(1 -- 30) (QCheck.pos_float)) (fun delays ->
      let delays = List.map (fun d -> Float.rem (Float.abs d) 1000.0) delays in
      let e = En.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          ignore (En.schedule e ~delay:d (fun () -> times := En.now e :: !times)))
        delays;
      ignore (En.run e);
      let ts = List.rev !times in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono ts && List.length ts = List.length delays)

(* property: with a random subset of events cancelled, exactly the
   non-cancelled ones run. *)
let prop_cancel_subset =
  QCheck.Test.make ~name:"cancelled events never run" ~count:100
    (QCheck.list_of_size QCheck.Gen.(1 -- 20) (QCheck.pair QCheck.pos_float QCheck.bool))
    (fun specs ->
      let e = En.create () in
      let ran = ref 0 in
      let expected = ref 0 in
      let handles =
        List.map
          (fun (d, keep) ->
            let d = Float.rem (Float.abs d) 100.0 in
            let h = En.schedule e ~delay:d (fun () -> incr ran) in
            if keep then incr expected;
            (h, keep))
          specs
      in
      List.iter (fun (h, keep) -> if not keep then En.cancel e h) handles;
      ignore (En.run e);
      !ran = !expected)

let test_heap_growth () =
  (* far beyond the initial heap capacity of 64 *)
  let e = En.create () in
  let count = ref 0 in
  for k = 1 to 5000 do
    ignore
      (En.schedule e
         ~delay:(float_of_int ((k * 7919) mod 1000))
         (fun () -> incr count))
  done;
  ignore (En.run e);
  check i "all executed" 5000 !count

let suite =
  [
    Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "run until on empty queue" `Quick
      test_run_until_empty_queue_advances_clock;
    Alcotest.test_case "max events" `Quick test_max_events;
    Alcotest.test_case "schedule_at / past" `Quick test_schedule_at_and_past;
    Alcotest.test_case "executed counter" `Quick test_executed_counter;
    QCheck_alcotest.to_alcotest prop_monotone_time;
    QCheck_alcotest.to_alcotest prop_cancel_subset;
    Alcotest.test_case "heap growth (5000 events)" `Quick test_heap_growth;
  ]

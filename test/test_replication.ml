(* Tests for Naming.Replication — weak coherence support (section 5). *)

module S = Naming.Store
module E = Naming.Entity
module Rep = Naming.Replication

let check = Alcotest.check
let b = Alcotest.bool

let objs st n = List.init n (fun _ -> S.create_object ~state:(S.Data "x") st)

let test_declare_and_groups () =
  let st = S.create () in
  let t = Rep.create () in
  let g1 = objs st 3 in
  let g2 = objs st 2 in
  Rep.declare t g1;
  Rep.declare t g2;
  check Alcotest.int "two groups" 2 (List.length (Rep.groups t));
  check b "same group" true (Rep.group_of t (List.nth g1 0) = Rep.group_of t (List.nth g1 2));
  check b "different groups" false
    (Rep.group_of t (List.hd g1) = Rep.group_of t (List.hd g2));
  check Alcotest.int "replicas_of" 3 (List.length (Rep.replicas_of t (List.hd g1)))

let test_declare_errors () =
  let st = S.create () in
  let t = Rep.create () in
  (match Rep.declare t [ S.create_object st ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "singleton group accepted");
  let g = objs st 2 in
  Rep.declare t g;
  (match Rep.declare t (List.hd g :: objs st 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double membership accepted");
  (match Rep.declare t [ S.create_activity st; S.create_activity st ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "activities accepted as replicas")

let test_same_replica () =
  let st = S.create () in
  let t = Rep.create () in
  let g = objs st 2 in
  Rep.declare t g;
  let lone = S.create_object st in
  let g0 = List.nth g 0 and g1 = List.nth g 1 in
  check b "replicas equivalent" true (Rep.same_replica t g0 g1);
  check b "reflexive" true (Rep.same_replica t lone lone);
  check b "lone vs replica" false (Rep.same_replica t lone g0);
  check b "bottom vs defined" false (Rep.same_replica t E.undefined g0);
  check b "bottom vs bottom" true (Rep.same_replica t E.undefined E.undefined)

let test_unreplicated_singleton () =
  let st = S.create () in
  let t = Rep.create () in
  let o = S.create_object st in
  check b "group_of none" true (Rep.group_of t o = None);
  check Alcotest.int "replicas_of self" 1 (List.length (Rep.replicas_of t o))

let test_states_consistent () =
  let st = S.create () in
  let t = Rep.create () in
  let o1 = S.create_object ~state:(S.Data "same") st in
  let o2 = S.create_object ~state:(S.Data "same") st in
  Rep.declare t [ o1; o2 ];
  check b "consistent" true (Rep.states_consistent t st);
  S.set_obj_state st o2 (S.Data "drifted");
  check b "inconsistent after drift" false (Rep.states_consistent t st)

let test_states_consistent_contexts () =
  let st = S.create () in
  let t = Rep.create () in
  let target = S.create_object st in
  let mk () =
    S.create_context_object
      ~ctx:(Naming.Context.of_bindings [ (Naming.Name.atom "x", target) ])
      st
  in
  let d1 = mk () and d2 = mk () in
  Rep.declare t [ d1; d2 ];
  check b "context replicas consistent" true (Rep.states_consistent t st);
  S.unbind st ~dir:d2 (Naming.Name.atom "x");
  check b "binding drift detected" false (Rep.states_consistent t st)

let test_sync_from () =
  let st = S.create () in
  let t = Rep.create () in
  let o1 = S.create_object ~state:(S.Data "v1") st in
  let o2 = S.create_object ~state:(S.Data "v1") st in
  let o3 = S.create_object ~state:(S.Data "v1") st in
  Rep.declare t [ o1; o2; o3 ];
  S.set_obj_state st o2 (S.Data "v2");
  check b "drifted" false (Rep.states_consistent t st);
  Rep.sync_from t st o2;
  check b "restored" true (Rep.states_consistent t st);
  check b "update propagated" true (S.data_of st o1 = Some "v2");
  (* unreplicated entities: no-op *)
  let lone = S.create_object ~state:(S.Data "x") st in
  Rep.sync_from t st lone;
  check b "no-op" true (S.data_of st lone = Some "x")

let test_sync_all () =
  let st = S.create () in
  let t = Rep.create () in
  let a1 = S.create_object ~state:(S.Data "a") st in
  let a2 = S.create_object ~state:(S.Data "drift-a") st in
  let b1 = S.create_object ~state:(S.Data "b") st in
  let b2 = S.create_object ~state:(S.Data "drift-b") st in
  Rep.declare t [ a1; a2 ];
  Rep.declare t [ b1; b2 ];
  Rep.sync_all t st;
  check b "all consistent" true (Rep.states_consistent t st);
  (* first member wins *)
  check b "first wins a" true (S.data_of st a2 = Some "a");
  check b "first wins b" true (S.data_of st b2 = Some "b")

let suite =
  [
    Alcotest.test_case "declare and groups" `Quick test_declare_and_groups;
    Alcotest.test_case "declare errors" `Quick test_declare_errors;
    Alcotest.test_case "same_replica" `Quick test_same_replica;
    Alcotest.test_case "unreplicated entities" `Quick
      test_unreplicated_singleton;
    Alcotest.test_case "states_consistent (data)" `Quick test_states_consistent;
    Alcotest.test_case "states_consistent (contexts)" `Quick
      test_states_consistent_contexts;
    Alcotest.test_case "sync_from" `Quick test_sync_from;
    Alcotest.test_case "sync_all" `Quick test_sync_all;
  ]

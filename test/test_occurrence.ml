(* Tests for Naming.Occurrence — the meta context M. *)

module E = Naming.Entity
module O = Naming.Occurrence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let a1 = E.Activity 1
let a2 = E.Activity 2
let o1 = E.Object 1

let test_sources () =
  check b "generated" true (O.source (O.generated a1) = O.Source_generated);
  check b "received" true
    (O.source (O.received ~sender:a1 ~receiver:a2) = O.Source_received);
  check b "embedded" true
    (O.source (O.embedded ~reader:a1 ~source:o1) = O.Source_embedded);
  check Alcotest.int "all sources listed" 3 (List.length O.all_sources)

let test_subject () =
  check entity "generated subject" a1 (O.subject (O.generated a1));
  check entity "received subject is the receiver" a2
    (O.subject (O.received ~sender:a1 ~receiver:a2));
  check entity "embedded subject is the reader" a1
    (O.subject (O.embedded ~reader:a1 ~source:o1))

let test_with_subject () =
  let retarget occ = O.subject (O.with_subject occ a2) in
  check entity "generated retargeted" a2 (retarget (O.generated a1));
  check entity "received retargeted" a2
    (retarget (O.received ~sender:a1 ~receiver:a1));
  (* non-subject fields are preserved *)
  (match O.with_subject (O.received ~sender:a1 ~receiver:a2) a2 with
  | O.Received { sender; _ } -> check entity "sender kept" a1 sender
  | _ -> Alcotest.fail "wrong shape");
  match O.with_subject (O.embedded ~reader:a1 ~source:o1) a2 with
  | O.Embedded { source; reader } ->
      check entity "source kept" o1 source;
      check entity "reader changed" a2 reader
  | _ -> Alcotest.fail "wrong shape"

let test_equal () =
  check b "same" true (O.equal (O.generated a1) (O.generated a1));
  check b "different subject" false (O.equal (O.generated a1) (O.generated a2));
  check b "different kind" false
    (O.equal (O.generated a1) (O.embedded ~reader:a1 ~source:o1));
  check b "received equality is componentwise" false
    (O.equal
       (O.received ~sender:a1 ~receiver:a2)
       (O.received ~sender:a2 ~receiver:a1))

let test_pp () =
  let str occ = Format.asprintf "%a" O.pp occ in
  check b "generated mentions subject" true
    (String.length (str (O.generated a1)) > 5);
  check Alcotest.string "source names" "generated"
    (O.source_to_string O.Source_generated);
  check Alcotest.string "received name" "received"
    (O.source_to_string O.Source_received);
  check Alcotest.string "embedded name" "embedded"
    (O.source_to_string O.Source_embedded)

let suite =
  [
    Alcotest.test_case "sources" `Quick test_sources;
    Alcotest.test_case "subject" `Quick test_subject;
    Alcotest.test_case "with_subject" `Quick test_with_subject;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "pp" `Quick test_pp;
  ]

(* Tests for Schemes.Crosslink — Figure 5. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module X = Schemes.Crosslink
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let tree = [ "docs/report"; "bin/tool" ]

let fixture () =
  let st = S.create () in
  let t = X.build ~systems:[ ("sysa", tree); ("sysb", tree) ] st in
  (st, t)

let test_autonomous_roots () =
  let _, t = fixture () in
  check b "different roots" false
    (E.equal (X.system_root t "sysa") (X.system_root t "sysb"))

let test_crosslink_reaches_remote () =
  let _, t = fixture () in
  X.add_crosslink t ~from_system:"sysa" ~name:"remote" ~to_system:"sysb" ();
  let pa = X.spawn_on t ~system:"sysa" in
  check entity "through the link"
    (Vfs.Fs.lookup (X.system_fs t "sysb") "/docs/report")
    (X.resolve t ~as_:pa "/remote/docs/report")

let test_crosslink_at_subdir_and_path () =
  let _, t = fixture () in
  X.add_crosslink t ~from_system:"sysa" ~at:"/docs" ~name:"their-bin"
    ~to_system:"sysb" ~to_path:"/bin" ();
  let pa = X.spawn_on t ~system:"sysa" in
  check entity "nested link"
    (Vfs.Fs.lookup (X.system_fs t "sysb") "/bin/tool")
    (X.resolve t ~as_:pa "/docs/their-bin/tool")

let test_crosslink_errors () =
  let _, t = fixture () in
  (match
     X.add_crosslink t ~from_system:"sysa" ~at:"/docs/report" ~name:"x"
       ~to_system:"sysb" ()
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "file attach point accepted");
  (match
     X.add_crosslink t ~from_system:"sysa" ~name:"x" ~to_system:"sysb"
       ~to_path:"/missing" ()
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "dangling target accepted")

let test_no_global_names () =
  let st, t = fixture () in
  let pa = X.spawn_on t ~system:"sysa" in
  let pb = X.spawn_on t ~system:"sysb" in
  (* identical spelling, different denotation *)
  let report =
    Coh.measure st (X.rule t)
      [ O.generated pa; O.generated pb ]
      [ N.of_string "/docs/report"; N.of_string "/bin/tool" ]
  in
  check (Alcotest.float 1e-9) "incoherent" 0.0 (Coh.degree report)

let test_map_name_utility () =
  let prefix = N.of_string "/users" in
  let replacement = N.of_string "/org2/users" in
  check Alcotest.string "mapped" "/org2/users/bob"
    (N.to_string (X.map_name ~prefix ~replacement (N.of_string "/users/bob")));
  check Alcotest.string "exact prefix" "/org2/users"
    (N.to_string (X.map_name ~prefix ~replacement (N.of_string "/users")));
  check Alcotest.string "no match unchanged" "/etc/passwd"
    (N.to_string (X.map_name ~prefix ~replacement (N.of_string "/etc/passwd")))

let test_mapped_exchange_restores_meaning () =
  let _, t = fixture () in
  X.add_crosslink t ~from_system:"sysb" ~name:"sysa" ~to_system:"sysa" ();
  let pa = X.spawn_on t ~system:"sysa" in
  let pb = X.spawn_on t ~system:"sysb" in
  let n = N.of_string "/docs/report" in
  let intended = X.resolve t ~as_:pa "/docs/report" in
  let mapped =
    X.map_name ~prefix:(N.of_string "/")
      ~replacement:(N.of_string "/sysa")
      n
  in
  check entity "receiver reaches sender's entity" intended
    (Schemes.Process_env.resolve (X.env t) ~as_:pb mapped)

let test_probes () =
  let _, t = fixture () in
  let probes = X.system_probes t ~system:"sysa" ~max_depth:3 in
  check b "non-empty" true (probes <> []);
  check b "has root" true (List.exists (fun n -> N.to_string n = "/") probes)

let test_build_errors () =
  let st = S.create () in
  match X.build ~systems:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no systems accepted"

let suite =
  [
    Alcotest.test_case "autonomous roots" `Quick test_autonomous_roots;
    Alcotest.test_case "crosslink reaches remote" `Quick
      test_crosslink_reaches_remote;
    Alcotest.test_case "crosslink at subdir/path" `Quick
      test_crosslink_at_subdir_and_path;
    Alcotest.test_case "crosslink errors" `Quick test_crosslink_errors;
    Alcotest.test_case "no global names" `Quick test_no_global_names;
    Alcotest.test_case "map_name utility" `Quick test_map_name_utility;
    Alcotest.test_case "mapped exchange" `Quick
      test_mapped_exchange_restores_meaning;
    Alcotest.test_case "probes" `Quick test_probes;
    Alcotest.test_case "build errors" `Quick test_build_errors;
  ]

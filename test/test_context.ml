(* Tests for Naming.Context: totalised finite maps from atoms to entities. *)

module C = Naming.Context
module E = Naming.Entity
module N = Naming.Name

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let a = N.atom

let entity_testable = Alcotest.testable E.pp E.equal

let test_empty_total () =
  check entity_testable "unmapped is bottom" E.undefined
    (C.lookup C.empty (a "x"));
  check b "empty" true (C.is_empty C.empty);
  check i "cardinal" 0 (C.cardinal C.empty)

let test_bind_lookup () =
  let c = C.bind C.empty (a "f") (E.Object 1) in
  check entity_testable "bound" (E.Object 1) (C.lookup c (a "f"));
  check b "mem" true (C.mem c (a "f"));
  check b "not mem" false (C.mem c (a "g"));
  let c2 = C.bind c (a "f") (E.Object 2) in
  check entity_testable "rebound" (E.Object 2) (C.lookup c2 (a "f"));
  check entity_testable "original unchanged (persistent)" (E.Object 1)
    (C.lookup c (a "f"))

let test_bind_undefined_unbinds () =
  let c = C.bind C.empty (a "f") (E.Object 1) in
  let c = C.bind c (a "f") E.undefined in
  check b "binding to bottom removes" false (C.mem c (a "f"));
  check i "cardinal 0" 0 (C.cardinal c)

let test_exists () =
  let c = C.of_bindings [ (a "x", E.Object 1); (a "y", E.Object 2) ] in
  check b "finds a binding" true
    (C.exists (fun _ e -> E.equal e (E.Object 2)) c);
  check b "no match" false (C.exists (fun _ e -> E.equal e (E.Object 3)) c);
  check b "empty" false (C.exists (fun _ _ -> true) C.empty)

let test_unbind () =
  let c = C.of_bindings [ (a "x", E.Object 1); (a "y", E.Object 2) ] in
  let c = C.unbind c (a "x") in
  check b "gone" false (C.mem c (a "x"));
  check b "other kept" true (C.mem c (a "y"))

let test_of_bindings_last_wins () =
  let c = C.of_bindings [ (a "x", E.Object 1); (a "x", E.Object 9) ] in
  check entity_testable "later wins" (E.Object 9) (C.lookup c (a "x"))

let test_union_prefer () =
  let c1 = C.of_bindings [ (a "x", E.Object 1); (a "y", E.Object 2) ] in
  let c2 = C.of_bindings [ (a "x", E.Object 10); (a "z", E.Object 3) ] in
  let l = C.union ~prefer:`Left c1 c2 in
  let r = C.union ~prefer:`Right c1 c2 in
  check entity_testable "left wins" (E.Object 1) (C.lookup l (a "x"));
  check entity_testable "right wins" (E.Object 10) (C.lookup r (a "x"));
  check entity_testable "left-only kept" (E.Object 2) (C.lookup r (a "y"));
  check entity_testable "right-only kept" (E.Object 3) (C.lookup l (a "z"))

let test_restrict () =
  let c = C.of_bindings [ (a "x", E.Object 1); (a "y", E.Object 2) ] in
  let c = C.restrict c [ a "x"; a "missing" ] in
  check b "kept" true (C.mem c (a "x"));
  check b "dropped" false (C.mem c (a "y"));
  check i "cardinal" 1 (C.cardinal c)

let test_map () =
  let c = C.of_bindings [ (a "x", E.Object 1) ] in
  let c = C.map (fun _ -> E.Object 42) c in
  check entity_testable "mapped" (E.Object 42) (C.lookup c (a "x"))

let test_agree_on () =
  let c1 = C.of_bindings [ (a "x", E.Object 1) ] in
  let c2 = C.of_bindings [ (a "x", E.Object 1); (a "y", E.Object 2) ] in
  check b "agree on x" true (C.agree_on c1 c2 (a "x"));
  check b "agree on unbound-vs-unbound" true (C.agree_on c1 c1 (a "z"));
  check b "disagree bound-vs-unbound" false (C.agree_on c1 c2 (a "y"))

let test_bindings_sorted_defined () =
  let c = C.of_bindings [ (a "z", E.Object 1); (a "a", E.Object 2) ] in
  let atoms = List.map (fun (x, _) -> N.atom_to_string x) (C.bindings c) in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "z" ] atoms

let test_equal_compare () =
  let c1 = C.of_bindings [ (a "x", E.Object 1) ] in
  let c2 = C.of_bindings [ (a "x", E.Object 1) ] in
  check b "equal" true (C.equal c1 c2);
  check i "compare" 0 (C.compare c1 c2);
  check b "unequal" false (C.equal c1 (C.bind c1 (a "y") (E.Object 2)))

(* property: union with prefer:`Right behaves like sequential rebinding *)
let prop_union_right_rebind =
  let binding_gen =
    QCheck.Gen.(
      map
        (fun (s, i) -> (a (String.make 1 (Char.chr (97 + (s mod 6)))), E.Object i))
        (pair (int_bound 5) (int_bound 20)))
  in
  let ctx_gen = QCheck.Gen.(map C.of_bindings (list_size (0 -- 8) binding_gen)) in
  let arb = QCheck.make ctx_gen in
  QCheck.Test.make ~name:"union prefer:`Right = fold bind" ~count:300
    (QCheck.pair arb arb) (fun (c1, c2) ->
      let expected =
        List.fold_left (fun acc (k, v) -> C.bind acc k v) c1 (C.bindings c2)
      in
      C.equal (C.union ~prefer:`Right c1 c2) expected)

let suite =
  [
    Alcotest.test_case "empty is total" `Quick test_empty_total;
    Alcotest.test_case "bind/lookup" `Quick test_bind_lookup;
    Alcotest.test_case "bind bottom = unbind" `Quick test_bind_undefined_unbinds;
    Alcotest.test_case "exists short-circuits" `Quick test_exists;
    Alcotest.test_case "unbind" `Quick test_unbind;
    Alcotest.test_case "of_bindings last wins" `Quick test_of_bindings_last_wins;
    Alcotest.test_case "union prefer" `Quick test_union_prefer;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "agree_on" `Quick test_agree_on;
    Alcotest.test_case "bindings sorted" `Quick test_bindings_sorted_defined;
    Alcotest.test_case "equal/compare" `Quick test_equal_compare;
    QCheck_alcotest.to_alcotest prop_union_right_rebind;
  ]

(* Tests for Dsim.Rng (SplitMix64). *)

module R = Dsim.Rng

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let test_determinism () =
  let r1 = R.create 42L and r2 = R.create 42L in
  let s1 = List.init 10 (fun _ -> R.next_int64 r1) in
  let s2 = List.init 10 (fun _ -> R.next_int64 r2) in
  check b "same seed, same stream" true (s1 = s2);
  let r3 = R.create 43L in
  let s3 = List.init 10 (fun _ -> R.next_int64 r3) in
  check b "different seed, different stream" false (s1 = s3)

let test_copy_and_split () =
  let r = R.create 1L in
  ignore (R.next_int64 r);
  let c = R.copy r in
  check b "copy continues identically" true (R.next_int64 r = R.next_int64 c);
  let r' = R.create 1L in
  let child = R.split r' in
  check b "split child differs from parent stream" false
    (R.next_int64 child = R.next_int64 r')

let test_int_bounds () =
  let r = R.create 5L in
  for _ = 1 to 1000 do
    let v = R.int r 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of bounds"
  done;
  (match R.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bound accepted");
  check i "bound 1 is 0" 0 (R.int r 1)

let test_int_in () =
  let r = R.create 5L in
  for _ = 1 to 500 do
    let v = R.int_in r ~min:(-3) ~max:3 in
    if v < -3 || v > 3 then Alcotest.fail "int_in out of bounds"
  done;
  check i "degenerate range" 4 (R.int_in r ~min:4 ~max:4)

let test_float_bounds () =
  let r = R.create 9L in
  for _ = 1 to 1000 do
    let v = R.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_bool_probability () =
  let r = R.create 11L in
  let n = 10_000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if R.bool r 0.3 then incr trues
  done;
  let freq = float_of_int !trues /. float_of_int n in
  check b "freq near 0.3" true (freq > 0.25 && freq < 0.35);
  check b "p=0 never" false (R.bool r 0.0);
  check b "p=1 always" true (R.bool r 1.0)

let test_pick () =
  let r = R.create 3L in
  let l = [ 1; 2; 3 ] in
  for _ = 1 to 100 do
    if not (List.mem (R.pick r l) l) then Alcotest.fail "pick outside list"
  done;
  (match R.pick r [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick accepted");
  check i "pick_array" 9 (R.pick_array r [| 9 |])

let test_shuffle_permutation () =
  let r = R.create 17L in
  let l = List.init 20 Fun.id in
  let s = R.shuffle r l in
  check (Alcotest.list i) "same multiset" l (List.sort compare s);
  check i "same length" 20 (List.length s)

let test_sample () =
  let r = R.create 19L in
  let l = List.init 10 Fun.id in
  let s = R.sample r 4 l in
  check i "k elements" 4 (List.length s);
  check i "no duplicates" 4 (List.length (List.sort_uniq compare s));
  check i "k > n gives n" 10 (List.length (R.sample r 99 l))

let test_exponential_positive () =
  let r = R.create 23L in
  let total = ref 0.0 in
  for _ = 1 to 1000 do
    let v = R.exponential r ~mean:2.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    total := !total +. v
  done;
  let mean = !total /. 1000.0 in
  check b "mean near 2.0" true (mean > 1.6 && mean < 2.4)

let prop_int_uniformish =
  QCheck.Test.make ~name:"int covers the whole range" ~count:20
    QCheck.small_nat (fun seed ->
      let r = R.create (Int64.of_int (seed + 1)) in
      let seen = Array.make 5 false in
      for _ = 1 to 300 do
        seen.(R.int r 5) <- true
      done;
      Array.for_all Fun.id seen)

(* The estimator's reproducibility rests on split: equal parent states
   must yield equal child streams (and equally-advanced parents), and
   distinct children must not echo the parent or each other. *)
let prop_split_deterministic =
  QCheck.Test.make ~name:"split is deterministic in the parent state"
    ~count:100 QCheck.int64 (fun seed ->
      let a = R.create seed and b = R.create seed in
      let ca = R.split a and cb = R.split b in
      let take r = List.init 8 (fun _ -> R.next_int64 r) in
      take ca = take cb && take a = take b)

let prop_split_independent =
  QCheck.Test.make ~name:"split children differ from parent and each other"
    ~count:100 QCheck.int64 (fun seed ->
      let r = R.create seed in
      let c1 = R.split r in
      let c2 = R.split r in
      let take p = List.init 8 (fun _ -> R.next_int64 p) in
      let sp = take r and s1 = take c1 and s2 = take c2 in
      sp <> s1 && sp <> s2 && s1 <> s2)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy and split" `Quick test_copy_and_split;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bool probability" `Quick test_bool_probability;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "shuffle is a permutation" `Quick
      test_shuffle_permutation;
    Alcotest.test_case "sample" `Quick test_sample;
    Alcotest.test_case "exponential" `Quick test_exponential_positive;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
    QCheck_alcotest.to_alcotest prop_split_deterministic;
    QCheck_alcotest.to_alcotest prop_split_independent;
  ]

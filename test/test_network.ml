(* Tests for Dsim.Network and Dsim.Actor. *)

module En = Dsim.Engine
module Net = Dsim.Network
module Act = Dsim.Actor
module R = Dsim.Rng

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let make ?(config = Net.default_config) () =
  let engine = En.create () in
  let rng = R.create 42L in
  let net = Net.create ~config ~engine ~rng () in
  (engine, net)

let test_nodes () =
  let _, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  check (Alcotest.list i) "nodes" [ n1; n2 ] (Net.nodes net);
  check Alcotest.string "label" "m2" (Net.node_label net n2);
  (match Net.node_label net 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown node accepted")

let test_basic_delivery () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let bdst = Act.create net ~node:n2 ~port:1 in
  Act.send a ~to_:bdst "hello";
  check i "not yet delivered" 0 (Act.inbox_length bdst);
  ignore (En.run engine);
  (match Act.receive bdst with
  | Some env ->
      check Alcotest.string "payload" "hello" env.Net.payload;
      check b "latency applied" true (env.Net.delivered_at >= 1.0);
      check b "src recorded" true (env.Net.src = Act.address a)
  | None -> Alcotest.fail "no delivery");
  let s = Net.stats net in
  check i "sent" 1 s.Net.sent;
  check i "delivered" 1 s.Net.delivered

let test_local_latency () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n1 ~port:2 in
  Act.send a ~to_:c "x";
  ignore (En.run engine);
  match Act.receive c with
  | Some env ->
      check b "local latency is small" true
        (env.Net.delivered_at -. env.Net.sent_at < 0.5)
  | None -> Alcotest.fail "no delivery"

let test_drop_all () =
  let engine, net =
    make ~config:{ Net.default_config with Net.drop_probability = 1.0 } ()
  in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  for _ = 1 to 10 do
    Act.send a ~to_:c "x"
  done;
  ignore (En.run engine);
  check i "nothing delivered" 0 (Act.inbox_length c);
  check i "all dropped" 10 (Net.stats net).Net.dropped

let test_duplicates () =
  let engine, net =
    make ~config:{ Net.default_config with Net.duplicate_probability = 1.0 } ()
  in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  Act.send a ~to_:c "x";
  ignore (En.run engine);
  check i "two copies" 2 (Act.inbox_length c);
  check i "duplicated stat" 1 (Net.stats net).Net.duplicated

let test_partition_and_heal () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  Net.partition net [ n1 ] [ n2 ];
  Act.send a ~to_:c "x";
  Act.send c ~to_:a "y";
  ignore (En.run engine);
  check i "both cut" 2 (Net.stats net).Net.cut;
  check i "none delivered" 0 (Act.inbox_length a + Act.inbox_length c);
  Net.heal net;
  Act.send a ~to_:c "x2";
  ignore (En.run engine);
  check i "heals" 1 (Act.inbox_length c)

let test_undeliverable () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  Net.send net ~src:(Act.address a) ~dst:{ Net.node = n2; port = 9 } "x";
  ignore (En.run engine);
  check i "undeliverable" 1 (Net.stats net).Net.undeliverable

let test_reactive_handler () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  (* c echoes everything back to the sender. *)
  Act.on_receive c (fun env ->
      Act.send_to c env.Net.src ("echo:" ^ env.Net.payload));
  Act.send a ~to_:c "ping";
  ignore (En.run engine);
  (match Act.receive a with
  | Some env -> check Alcotest.string "echo" "echo:ping" env.Net.payload
  | None -> Alcotest.fail "no echo");
  (* back to queueing *)
  Act.queue_incoming c;
  Act.send a ~to_:c "ping2";
  ignore (En.run engine);
  check i "queued now" 1 (Act.inbox_length c)

let test_node_crash_and_recovery () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  check b "up initially" true (Net.node_is_up net n2);
  (* crash before send: lost at send time *)
  Net.set_node_up net n2 false;
  Act.send a ~to_:c "lost1";
  ignore (En.run engine);
  check i "down counted" 1 (Net.stats net).Net.node_down;
  check i "nothing queued" 0 (Act.inbox_length c);
  (* crash while in flight: lost at delivery time *)
  Net.set_node_up net n2 true;
  Act.send a ~to_:c "lost2";
  Net.set_node_up net n2 false;
  ignore (En.run engine);
  check i "in-flight loss counted" 2 (Net.stats net).Net.node_down;
  (* recovery: bindings survive *)
  Net.set_node_up net n2 true;
  Act.send a ~to_:c "finally";
  ignore (En.run engine);
  check i "delivered after restart" 1 (Act.inbox_length c)

let test_port_collision () =
  let _, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let _a = Act.create net ~node:n1 ~port:1 in
  (match Act.create net ~node:n1 ~port:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate port accepted");
  (* same port on another node is fine *)
  let n2 = Net.add_node net ~label:"m2" in
  ignore (Act.create net ~node:n2 ~port:1)

let test_drain_order () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n1 ~port:2 in
  Act.send a ~to_:c "first";
  ignore (En.run engine);
  Act.send a ~to_:c "second";
  ignore (En.run engine);
  let payloads = List.map (fun e -> e.Net.payload) (Act.drain c) in
  check (Alcotest.list Alcotest.string) "oldest first" [ "first"; "second" ]
    payloads;
  check i "drained" 0 (Act.inbox_length c)

let test_many_messages_all_arrive () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  for k = 1 to 100 do
    Act.send a ~to_:c (string_of_int k)
  done;
  ignore (En.run engine);
  check i "all arrived" 100 (Act.inbox_length c);
  check i "delivered stat" 100 (Net.stats net).Net.delivered

(* A crash/restart window driven from inside the simulation: sends
   before and after the window arrive, sends into it are lost, and the
   port binding (the "naming state" of the node) survives the restart. *)
let test_scheduled_crash_window () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  ignore
    (En.schedule engine ~delay:5.0 (fun () -> Net.set_node_up net n2 false));
  ignore
    (En.schedule engine ~delay:10.0 (fun () -> Net.set_node_up net n2 true));
  let send_at t payload =
    ignore (En.schedule engine ~delay:t (fun () -> Act.send a ~to_:c payload))
  in
  send_at 1.0 "before";
  send_at 6.0 "during";
  send_at 12.0 "after";
  ignore (En.run engine);
  let payloads = List.map (fun e -> e.Net.payload) (Act.drain c) in
  check (Alcotest.list Alcotest.string) "window loss only"
    [ "before"; "after" ] payloads;
  check i "down loss counted" 1 (Net.stats net).Net.node_down

(* The message is in flight when the destination dies: it was accepted
   by the network but must not be delivered. *)
let test_crash_loses_in_flight () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  Act.send a ~to_:c "doomed";
  (* the crash fires at time 0, before any delivery latency elapses *)
  ignore (En.schedule engine ~delay:0.0 (fun () -> Net.set_node_up net n2 false));
  ignore (En.run engine);
  check i "nothing delivered" 0 (Act.inbox_length c);
  check i "in-flight loss counted" 1 (Net.stats net).Net.node_down

let test_scheduled_partition_window () =
  let engine, net = make () in
  let n1 = Net.add_node net ~label:"m1" in
  let n2 = Net.add_node net ~label:"m2" in
  let a = Act.create net ~node:n1 ~port:1 in
  let c = Act.create net ~node:n2 ~port:1 in
  ignore
    (En.schedule engine ~delay:2.0 (fun () -> Net.partition net [ n1 ] [ n2 ]));
  ignore (En.schedule engine ~delay:4.0 (fun () -> Net.heal net));
  let send_at t payload =
    ignore (En.schedule engine ~delay:t (fun () -> Act.send a ~to_:c payload))
  in
  send_at 1.0 "pre";
  send_at 3.0 "cut";
  send_at 5.0 "post";
  ignore (En.run engine);
  let payloads = List.map (fun e -> e.Net.payload) (Act.drain c) in
  check (Alcotest.list Alcotest.string) "cut window only" [ "pre"; "post" ]
    payloads;
  check i "cut counted" 1 (Net.stats net).Net.cut

let suite =
  [
    Alcotest.test_case "nodes" `Quick test_nodes;
    Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "local latency" `Quick test_local_latency;
    Alcotest.test_case "drop" `Quick test_drop_all;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
    Alcotest.test_case "undeliverable" `Quick test_undeliverable;
    Alcotest.test_case "reactive handler" `Quick test_reactive_handler;
    Alcotest.test_case "node crash and recovery" `Quick
      test_node_crash_and_recovery;
    Alcotest.test_case "port collision" `Quick test_port_collision;
    Alcotest.test_case "drain order" `Quick test_drain_order;
    Alcotest.test_case "100 messages" `Quick test_many_messages_all_arrive;
    Alcotest.test_case "scheduled crash window" `Quick
      test_scheduled_crash_window;
    Alcotest.test_case "crash loses in-flight message" `Quick
      test_crash_loses_in_flight;
    Alcotest.test_case "scheduled partition window" `Quick
      test_scheduled_partition_window;
  ]

(* Tests for Dsim.Nameserver — the replicated name service: mirror
   trees, versioned writes, anti-entropy reconvergence, and the paper's
   §5 weak coherence measured live across replicas. *)

module En = Dsim.Engine
module Net = Dsim.Network
module Rpc = Dsim.Rpc
module Ns = Dsim.Nameserver
module N = Naming.Name
module E = Naming.Entity
module Co = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

(* /a, /a/b; two shared leaves; /a/x -> k1, /a/b/y -> k2. *)
let small_spec =
  {
    Ns.dirs = [ N.of_string "/a"; N.of_string "/a/b" ];
    leaves = [ ("k1", "one"); ("k2", "two") ];
    links = [ (N.of_string "/a/x", "k1"); (N.of_string "/a/b/y", "k2") ];
  }

let probes =
  small_spec.Ns.dirs @ List.map fst small_spec.Ns.links

let make ?(config = Net.default_config) ?(replicas = 3) () =
  let engine = En.create () in
  let net =
    Net.create ~config ~engine ~rng:(Dsim.Rng.create 42L) ()
  in
  let cluster =
    Ns.create ~network:net ~rng:(Dsim.Rng.create 7L) ~replicas small_spec
  in
  (engine, net, cluster)

let test_mirrors_agree_initially () =
  let _, _, cluster = make () in
  (* every replica resolves the links to the SAME shared leaves *)
  let leaf1 = Ns.resolve_at cluster 0 (N.of_string "/a/x") in
  check b "leaf is defined" false (E.is_undefined leaf1);
  for r = 1 to Ns.replicas cluster - 1 do
    check b "same leaf everywhere" true
      (E.equal leaf1 (Ns.resolve_at cluster r (N.of_string "/a/x")))
  done;
  (* directories are per-replica mirrors: equal only up to replica
     equivalence *)
  let d0 = Ns.resolve_at cluster 0 (N.of_string "/a") in
  let d1 = Ns.resolve_at cluster 1 (N.of_string "/a") in
  check b "distinct mirror dirs" false (E.equal d0 d1);
  check b "but replica-equivalent" true (Ns.equiv cluster d0 d1);
  let report = Ns.measure cluster probes in
  check i "leaf probes strictly coherent" 2 report.Co.coherent;
  check i "dir probes weakly coherent" 2 report.Co.weakly_coherent;
  check i "nothing incoherent" 0 report.Co.incoherent;
  check b "fresh cluster converged" true (Ns.converged cluster)

let test_local_write_then_anti_entropy () =
  let engine, _, cluster = make () in
  (match
     Ns.write_local cluster 0
       (Ns.Write
          { path = N.of_string "/a"; atom = N.atom "z"; target = Some "k2" })
   with
  | Ns.Ack _ -> ()
  | _ -> Alcotest.fail "write not acked");
  (* applied at the origin only: other replicas do not see it yet *)
  check b "replica 1 lags" true
    (E.is_undefined (Ns.resolve_at cluster 1 (N.of_string "/a/z")));
  check b "diverged" false (Ns.converged cluster);
  Ns.start_anti_entropy ~period:2.0 cluster;
  ignore (En.run ~until:30.0 engine);
  Ns.stop_anti_entropy cluster;
  check b "converged" true (Ns.converged cluster);
  let expected = Option.get (Ns.leaf cluster "k2") in
  for r = 0 to Ns.replicas cluster - 1 do
    check b "write visible everywhere" true
      (E.equal expected (Ns.resolve_at cluster r (N.of_string "/a/z")))
  done

let test_nack_on_unknown_path_and_leaf () =
  let _, _, cluster = make () in
  (match
     Ns.write_local cluster 0
       (Ns.Write
          { path = N.of_string "/nope"; atom = N.atom "z"; target = None })
   with
  | Ns.Nack _ -> ()
  | _ -> Alcotest.fail "unknown path accepted");
  match
    Ns.write_local cluster 0
      (Ns.Write
         { path = N.of_string "/a"; atom = N.atom "z"; target = Some "k9" })
  with
  | Ns.Nack _ -> ()
  | _ -> Alcotest.fail "unknown leaf accepted"

(* The acceptance demo: partition the cluster, make conflicting writes
   on both sides, watch the probe become incoherent, heal, and verify
   the replicas reconverge (same LWW winner everywhere) within a bounded
   number of anti-entropy rounds. *)
let test_partition_diverge_heal_reconverge () =
  let engine, net, cluster = make () in
  Net.partition net
    [ Ns.replica_node cluster 0 ]
    [ Ns.replica_node cluster 1; Ns.replica_node cluster 2 ];
  (* conflicting writes for the same binding site on the two sides:
     replica 0 rebinds /a/x to k2, replica 1 unbinds it. Both carry
     Lamport stamp 1, so last-writer-wins breaks the tie on origin and
     the unbind (origin 1 > origin 0) must win everywhere. *)
  ignore
    (Ns.write_local cluster 0
       (Ns.Write
          { path = N.of_string "/a"; atom = N.atom "x"; target = Some "k2" }));
  ignore
    (Ns.write_local cluster 1
       (Ns.Write { path = N.of_string "/a"; atom = N.atom "x"; target = None }));
  let report = Ns.measure cluster probes in
  check b "diverged: some probe incoherent" true (report.Co.incoherent > 0);
  check b "not converged while partitioned" false (Ns.converged cluster);
  (* anti-entropy cannot cross the partition: replicas 1 and 2 agree
     with each other but the cluster as a whole stays split *)
  Ns.start_anti_entropy ~period:2.0 ~timeout:1.0 ~attempts:2 cluster;
  ignore (En.run ~until:20.0 engine);
  check b "still split" false (Ns.converged cluster);
  (* heal, then a bounded number of rounds reconverges: 10 periods is
     far more than the diameter of a 3-replica gossip graph needs *)
  Net.heal net;
  ignore (En.run ~until:40.0 engine);
  Ns.stop_anti_entropy cluster;
  check b "reconverged after heal" true (Ns.converged cluster);
  let final = Ns.measure cluster probes in
  check i "coherence restored" 0 final.Co.incoherent;
  (* the LWW winner (the unbind) took effect on every replica *)
  for r = 0 to Ns.replicas cluster - 1 do
    check b "unbind won everywhere" true
      (E.is_undefined (Ns.resolve_at cluster r (N.of_string "/a/x")))
  done;
  check b "losing write counted" true ((Ns.stats cluster).Ns.lww_losses >= 1)

let test_resolve_over_rpc () =
  let engine, net, cluster = make () in
  let cnode = Net.add_node net ~label:"client" in
  let client = Rpc.create net ~node:cnode ~port:9 () in
  let got = ref None in
  Rpc.call_retry client
    ~to_:(Ns.replica_address cluster 0)
    ~timeout:2.0 ~rng:(Dsim.Rng.create 5L) ~attempts:4
    (Ns.Resolve (N.of_string "/a/b/y"))
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  match !got with
  | Some (Ok (Ns.Resolved e)) ->
      check b "resolved to the shared leaf" true
        (E.equal e (Option.get (Ns.leaf cluster "k2")))
  | _ -> Alcotest.fail "no resolution over rpc"

let test_spec_of_context_extracts_sample_world () =
  match Harness.Sample.world "unix" with
  | None -> Alcotest.fail "no unix sample world"
  | Some w ->
      let spec = Ns.spec_of_context w.Harness.Sample.store w.Harness.Sample.ctx in
      check b "found directories" true (List.length spec.Ns.dirs > 0);
      check b "found leaves" true (List.length spec.Ns.leaves > 0);
      check b "found links" true (List.length spec.Ns.links > 0);
      (* the extracted tree must be buildable and coherent as a cluster *)
      let engine = En.create () in
      let net =
        Net.create ~config:Net.default_config ~engine
          ~rng:(Dsim.Rng.create 42L) ()
      in
      let cluster =
        Ns.create ~network:net ~rng:(Dsim.Rng.create 7L) ~replicas:2 spec
      in
      let probes = spec.Ns.dirs @ List.map fst spec.Ns.links in
      let report = Ns.measure cluster probes in
      check i "extracted world starts coherent" 0 report.Co.incoherent;
      check b "has strict and weak probes" true
        (report.Co.coherent > 0 && report.Co.weakly_coherent > 0)

let test_rejects_single_replica () =
  let engine = En.create () in
  let net =
    Net.create ~config:Net.default_config ~engine ~rng:(Dsim.Rng.create 1L) ()
  in
  match Ns.create ~network:net ~rng:(Dsim.Rng.create 1L) ~replicas:1 small_spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a 1-replica cluster"

let suite =
  [
    Alcotest.test_case "mirrors agree initially" `Quick
      test_mirrors_agree_initially;
    Alcotest.test_case "local write + anti-entropy" `Quick
      test_local_write_then_anti_entropy;
    Alcotest.test_case "nack on unknown path/leaf" `Quick
      test_nack_on_unknown_path_and_leaf;
    Alcotest.test_case "partition/diverge/heal/reconverge" `Quick
      test_partition_diverge_heal_reconverge;
    Alcotest.test_case "resolve over rpc" `Quick test_resolve_over_rpc;
    Alcotest.test_case "spec_of_context on a sample world" `Quick
      test_spec_of_context_extracts_sample_world;
    Alcotest.test_case "rejects single replica" `Quick
      test_rejects_single_replica;
  ]

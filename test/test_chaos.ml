(* Tests for Dsim.Chaos — the fault-injection harness: convergence
   under the default schedule, deterministic JSON, jobs parity, and a
   schedule designed not to converge. *)

module Ns = Dsim.Nameserver
module Ch = Dsim.Chaos
module N = Naming.Name
module Co = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let spec =
  {
    Ns.dirs = [ N.of_string "/a"; N.of_string "/a/b"; N.of_string "/c" ];
    leaves = [ ("k1", "one"); ("k2", "two"); ("k3", "three") ];
    links =
      [
        (N.of_string "/a/x", "k1");
        (N.of_string "/a/b/y", "k2");
        (N.of_string "/c/z", "k3");
      ];
  }

let probes = spec.Ns.dirs @ List.map fst spec.Ns.links

let test_default_schedule_converges () =
  let r = Ch.run ~config:Ch.default ~spec ~probes () in
  check b "replicas reconverged" true r.Ch.converged;
  check i "all writes issued" Ch.default.Ch.writes r.Ch.writes_sent;
  check b "every sample got taken" true
    (List.length r.Ch.samples
    = int_of_float (Ch.default.Ch.duration /. Ch.default.Ch.sample_every));
  check b "faults actually bit" true
    ((r.Ch.net.Dsim.Network.dropped > 0 || r.Ch.net.Dsim.Network.cut > 0)
    && List.exists
         (fun s -> s.Ch.report.Co.incoherent > 0 || not s.Ch.converged)
         r.Ch.samples);
  check b "convergence happened after the heal" true
    (match r.Ch.converge_time with
    | Some t -> t >= r.Ch.heal_at
    | None -> false);
  check b "in bounded anti-entropy rounds" true
    (match r.Ch.rounds_to_converge with Some n -> n <= 10 | None -> false);
  check i "final report fully coherent" 0 r.Ch.final_report.Co.incoherent

let test_json_deterministic_and_jobs_parity () =
  let j1 = Ch.to_json ~scheme:"t" (Ch.run ~config:Ch.default ~spec ~probes ()) in
  let j2 = Ch.to_json ~scheme:"t" (Ch.run ~config:Ch.default ~spec ~probes ()) in
  let j4 =
    Ch.to_json ~scheme:"t" (Ch.run ~jobs:4 ~config:Ch.default ~spec ~probes ())
  in
  check Alcotest.string "same seed, same bytes" j1 j2;
  check Alcotest.string "jobs do not change the run" j1 j4;
  let other =
    Ch.to_json ~scheme:"t"
      (Ch.run ~config:{ Ch.default with Ch.seed = 43 } ~spec ~probes ())
  in
  check b "different seed, different run" false (String.equal j1 other)

(* A partition that outlives the run: replicas cannot reconverge, the
   harness must say so (and the CLI turns this into a nonzero exit). *)
let test_unhealed_partition_fails_to_converge () =
  let config =
    {
      Ch.default with
      Ch.partition_at = 5.0;
      partition_for = 1000.0;
      crash_for = 0.0;
      duration = 60.0;
    }
  in
  let r = Ch.run ~config ~spec ~probes () in
  check b "verdict: not converged" false r.Ch.converged;
  check b "no convergence time" true (r.Ch.converge_time = None);
  check b "divergence is visible in coherence" true
    (r.Ch.final_report.Co.incoherent > 0
    || not (List.for_all (fun (s : Ch.sample) -> s.Ch.converged) r.Ch.samples))

let test_fault_free_run_stays_coherent () =
  let config =
    {
      Ch.default with
      Ch.drop = 0.0;
      duplicate = 0.0;
      partition_for = 0.0;
      crash_for = 0.0;
      duration = 60.0;
    }
  in
  let r = Ch.run ~config ~spec ~probes () in
  check b "converged" true r.Ch.converged;
  check i "no writes lost" 0 r.Ch.writes_lost;
  check i "final coherent" 0 r.Ch.final_report.Co.incoherent

let suite =
  [
    Alcotest.test_case "default schedule converges" `Quick
      test_default_schedule_converges;
    Alcotest.test_case "deterministic json + jobs parity" `Quick
      test_json_deterministic_and_jobs_parity;
    Alcotest.test_case "unhealed partition fails" `Quick
      test_unhealed_partition_fails_to_converge;
    Alcotest.test_case "fault-free run stays coherent" `Quick
      test_fault_free_run_stays_coherent;
  ]

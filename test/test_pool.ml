(* Tests for Naming.Pool — the domain pool behind every [?jobs] — and
   for the parallel paths of the batch entry points: jobs > 1 must be
   structurally equal to the sequential sweep, failures must propagate
   deterministically, and the store write barrier must catch mutation
   attempted inside a parallel section. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module P = Naming.Pool
module Sc = Workload.Script

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

(* One real 4-way pool shared by the unit tests; qcheck properties go
   through [?jobs] and the shared pool like production callers do. *)
let pool = lazy (P.create ~jobs:4)

let test_map_order () =
  let p = Lazy.force pool in
  let xs = List.init 100 (fun i -> i) in
  check (Alcotest.list i) "in task order, like List.map"
    (List.map (fun x -> (x * x) + 1) xs)
    (P.map p (fun x -> (x * x) + 1) xs);
  check (Alcotest.list i) "empty" [] (P.map p (fun x -> x) []);
  check (Alcotest.list i) "singleton" [ 7 ] (P.map p (fun x -> x) [ 7 ])

let test_map_local_states () =
  let p = Lazy.force pool in
  let xs = List.init 64 (fun i -> i) in
  let results, locals =
    P.map_local p
      ~local:(fun () -> ref 0)
      (fun w x ->
        incr w;
        x)
      xs
  in
  check (Alcotest.list i) "results in order" xs results;
  check b "at most jobs participants"
    true
    (List.length locals >= 1 && List.length locals <= P.jobs p);
  (* every task ran exactly once, under exactly one participant *)
  check i "local counters partition the batch" (List.length xs)
    (List.fold_left (fun acc w -> acc + !w) 0 locals)

let test_exception_propagates () =
  let p = Lazy.force pool in
  let xs = List.init 100 (fun i -> i) in
  (match
     P.map p (fun x -> if x = 70 || x = 10 || x = 30 then failwith (string_of_int x) else x) xs
   with
  | _ -> Alcotest.fail "expected a Failure"
  | exception Failure msg ->
      check Alcotest.string "lowest-indexed failure wins" "10" msg);
  (* the pool survives a failed batch *)
  check (Alcotest.list i) "pool usable after failure" [ 2; 4; 6 ]
    (P.map p (fun x -> 2 * x) [ 1; 2; 3 ])

let test_jobs_cap () =
  let p = Lazy.force pool in
  let _, locals =
    P.map_local ~jobs:2 p
      ~local:(fun () -> ())
      (fun () x -> x)
      (List.init 32 (fun i -> i))
  in
  check b "?jobs caps participants below pool size" true
    (List.length locals <= 2)

let test_write_barrier () =
  let st = S.create () in
  let dir = S.create_context_object st in
  let out =
    S.read_only st (fun () ->
        check b "flag visible" true (S.is_read_only st);
        (match S.create_activity st with
        | _ -> Alcotest.fail "create_activity inside read_only must raise"
        | exception Invalid_argument _ -> ());
        (match S.bind st ~dir (N.atom "x") (E.undefined) with
        | _ -> Alcotest.fail "bind inside read_only must raise"
        | exception Invalid_argument _ -> ());
        17)
  in
  check i "read_only returns the body's value" 17 out;
  check b "flag cleared" false (S.is_read_only st);
  (* nesting: the store stays frozen until the outermost section ends *)
  S.read_only st (fun () ->
      S.read_only st (fun () -> ());
      check b "still frozen after inner exit" true (S.is_read_only st));
  (* mutable again afterwards, even after an exception unwound a section *)
  (try S.read_only st (fun () -> failwith "escape") with Failure _ -> ());
  ignore (S.create_activity st)

let test_cache_copy_absorb () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs Schemes.Unix_scheme.default_tree;
  let root = Vfs.Fs.root fs in
  let cache = Naming.Cache.create st in
  let n = N.of_string "usr/bin/cc" in
  let e = Naming.Cache.resolve_in cache root n in
  let shard = Naming.Cache.copy cache in
  (* the shard inherits the entry (hit, no new miss) but not the counters *)
  check i "shard counters zeroed" 0 (Naming.Cache.stats shard).Naming.Cache.misses;
  check b "shard hit on inherited entry" true
    (E.equal e (Naming.Cache.resolve_in shard root n)
    && (Naming.Cache.stats shard).Naming.Cache.hits = 1);
  (* absorbing shard stats adds counters without touching entries *)
  let before = Naming.Cache.stats cache in
  Naming.Cache.absorb cache (Naming.Cache.stats shard);
  let after = Naming.Cache.stats cache in
  check i "hits merged" (before.Naming.Cache.hits + 1) after.Naming.Cache.hits;
  check i "entries unchanged" before.Naming.Cache.entries
    after.Naming.Cache.entries

(* A random world for the parity properties: [n] random script ops over
   a fresh store, measured over a fixed probe set. *)
let random_world seed =
  let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
  let st = S.create () in
  let w = Sc.new_world st in
  ignore (Sc.random_ops w ~rng ~n:60);
  let probes =
    List.map N.of_string
      [ "/a/b/c"; "/a/b"; "/d/e"; "/d"; "mnt/c"; "."; ".."; "/a/b/c/d" ]
  in
  (st, w, probes)

let prop_measure_parity =
  QCheck.Test.make ~name:"Coherence.measure: jobs 2/4 = sequential" ~count:25
    QCheck.small_nat (fun seed ->
      let st, w, probes = random_world seed in
      let rule = Schemes.Process_env.rule (Sc.env w) in
      let occs = List.map Naming.Occurrence.generated (Sc.processes w) in
      if occs = [] then true
      else
        let seq = Naming.Coherence.measure st rule occs probes in
        List.for_all
          (fun jobs ->
            Naming.Coherence.measure ~jobs st rule occs probes = seq
            && Naming.Coherence.classify ~jobs st rule occs probes
               = Naming.Coherence.classify st rule occs probes)
          [ 2; 4 ])

let prop_exchange_parity =
  QCheck.Test.make ~name:"Exchange.coherent_fraction: jobs 2/4 = sequential"
    ~count:25 QCheck.small_nat (fun seed ->
      let st, w, probes = random_world seed in
      let rule = Schemes.Process_env.rule (Sc.env w) in
      match Sc.processes w with
      | _ :: _ :: _ as activities ->
          let events = Workload.Exchange.all_pairs ~activities ~probes in
          let seq = Workload.Exchange.coherent_fraction st rule events in
          List.for_all
            (fun jobs ->
              Workload.Exchange.coherent_fraction ~jobs st rule events = seq)
            [ 2; 4 ]
      | _ -> true)

let prop_flow_parity =
  QCheck.Test.make ~name:"Flow.analyze_many: jobs 2/4 = sequential" ~count:10
    QCheck.small_nat (fun seed ->
      let plans =
        List.filter_map Harness.Sample.script Harness.Sample.scripts
        @ [
            (let rng = Dsim.Rng.create (Int64.of_int (seed + 3)) in
             let w = Sc.new_world (S.create ()) in
             let probe = N.of_string "/a/b" in
             List.concat_map
               (fun op ->
                 [
                   Analysis.Flow.Op op;
                   Analysis.Flow.Flow
                     (Analysis.Flow.Use { proc = 0; name = probe });
                 ])
               (Sc.random_ops w ~rng ~n:40));
          ]
      in
      let strip r = { r with Analysis.Flow.config = Analysis.Flow.default_config } in
      let seq = List.map strip (Analysis.Flow.analyze_many plans) in
      List.for_all
        (fun jobs ->
          List.map strip (Analysis.Flow.analyze_many ~jobs plans) = seq)
        [ 2; 4 ])

(* Engine reports over the sample worlds: build each subject once and
   analyze it at every jobs level, so the comparison isolates the sweep. *)
let test_engine_parity () =
  let subjects =
    List.filter_map
      (fun scheme ->
        match Harness.Sample.world scheme with
        | None -> None
        | Some w ->
            Some
              ( scheme,
                Analysis.Subject.v
                  ~probes:(Harness.Sample.probes w)
                  ~rule:w.Harness.Sample.rule
                  ~activities:w.Harness.Sample.activities w.Harness.Sample.store
              ))
      Harness.Sample.schemes
  in
  let seq = Analysis.Engine.analyze_many subjects in
  List.iter
    (fun jobs ->
      check b
        (Printf.sprintf "jobs=%d reports equal sequential" jobs)
        true
        (Analysis.Engine.analyze_many ~jobs subjects = seq))
    [ 2; 4 ]

let test_matrix_parity () =
  let worlds = Harness.Exp_matrix.worlds () in
  let seq = Harness.Matrix.measure_all worlds in
  List.iter
    (fun jobs ->
      check b
        (Printf.sprintf "jobs=%d rows equal sequential" jobs)
        true
        (Harness.Matrix.measure_all ~jobs worlds = seq))
    [ 2; 4 ]

let test_codec_many_parity () =
  let stores =
    List.filter_map
      (fun s ->
        Option.map (fun w -> w.Harness.Sample.store) (Harness.Sample.world s))
      Harness.Sample.schemes
  in
  let seq = List.map Naming.Codec.to_string stores in
  check (Alcotest.list Alcotest.string) "jobs=4 dumps byte-identical" seq
    (Naming.Codec.to_string_many ~jobs:4 stores)

(* The chunked quoting in Codec.to_string must stay %S-compatible: the
   parser reads labels and file data back with Scanf %S, and the golden
   dumps predate the chunked writer. *)
let prop_quoting_matches_printf =
  QCheck.Test.make ~name:"codec quoting = Printf %%S" ~count:200
    QCheck.(string_gen (Gen.char_range '\000' '\255'))
    (fun s ->
      let st = S.create () in
      let f = S.create_object ~state:(S.Data s) st in
      S.set_label st f s;
      let dump = Naming.Codec.to_string st in
      let expect_file = Printf.sprintf "file %d %S" (E.id f) s in
      let expect_label = Printf.sprintf "label o%d %S" (E.id f) s in
      let lines = String.split_on_char '\n' dump in
      List.mem expect_file lines && List.mem expect_label lines)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map_local participant states" `Quick
      test_map_local_states;
    Alcotest.test_case "lowest-index exception, pool reusable" `Quick
      test_exception_propagates;
    Alcotest.test_case "?jobs caps a batch" `Quick test_jobs_cap;
    Alcotest.test_case "store write barrier" `Quick test_write_barrier;
    Alcotest.test_case "cache copy/absorb" `Quick test_cache_copy_absorb;
    Alcotest.test_case "engine parity (jobs 2/4)" `Quick test_engine_parity;
    Alcotest.test_case "matrix parity (jobs 2/4)" `Quick test_matrix_parity;
    Alcotest.test_case "codec to_string_many parity" `Quick
      test_codec_many_parity;
    QCheck_alcotest.to_alcotest prop_measure_parity;
    QCheck_alcotest.to_alcotest prop_exchange_parity;
    QCheck_alcotest.to_alcotest prop_flow_parity;
    QCheck_alcotest.to_alcotest prop_quoting_matches_printf;
  ]

(* Tests for Dsim.Trace and Dsim.Metrics. *)

module T = Dsim.Trace
module M = Dsim.Metrics

let check = Alcotest.check
let i = Alcotest.int
let f = Alcotest.float 1e-9

let test_trace_basic () =
  let t = T.create () in
  T.record t ~time:1.0 ~category:"send" "a -> b";
  T.recordf t ~time:2.0 ~category:"recv" "b got %d bytes" 5;
  check i "length" 2 (T.length t);
  check i "send count" 1 (T.count t ~category:"send");
  check i "recv count" 1 (T.count t ~category:"recv");
  check i "missing count" 0 (T.count t ~category:"drop");
  (match T.entries t with
  | [ e1; e2 ] ->
      check f "order" 1.0 e1.T.time;
      check Alcotest.string "formatted" "b got 5 bytes" e2.T.message
  | _ -> Alcotest.fail "wrong entries");
  T.clear t;
  check i "cleared" 0 (T.length t)

let test_trace_filter () =
  let t = T.create () in
  for k = 1 to 5 do
    T.record t ~time:(float_of_int k)
      ~category:(if k mod 2 = 0 then "even" else "odd")
      (string_of_int k)
  done;
  check i "filter" 2 (List.length (T.filter t ~category:"even"))

let test_counter () =
  let c = M.Counter.create () in
  M.Counter.incr c;
  M.Counter.add c 4;
  check i "value" 5 (M.Counter.value c);
  M.Counter.reset c;
  check i "reset" 0 (M.Counter.value c)

let test_series () =
  let s = M.Series.create () in
  check f "empty mean" 0.0 (M.Series.mean s);
  List.iter (M.Series.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  check i "count" 4 (M.Series.count s);
  check f "mean" 2.5 (M.Series.mean s);
  check f "min" 1.0 (M.Series.min s);
  check f "max" 4.0 (M.Series.max s);
  check f "sum" 10.0 (M.Series.sum s);
  check f "median-ish" 3.0 (M.Series.percentile s 0.5);
  check f "p0" 1.0 (M.Series.percentile s 0.0);
  check f "p100" 4.0 (M.Series.percentile s 1.0);
  check (Alcotest.list f) "values in order" [ 1.0; 2.0; 3.0; 4.0 ]
    (M.Series.values s)

let test_series_percentile_errors () =
  let s = M.Series.create () in
  (match M.Series.percentile s 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty percentile accepted");
  M.Series.observe s 1.0;
  (match M.Series.percentile s 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range p accepted")

let suite =
  [
    Alcotest.test_case "trace basic" `Quick test_trace_basic;
    Alcotest.test_case "trace filter" `Quick test_trace_filter;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "series percentile errors" `Quick
      test_series_percentile_errors;
  ]

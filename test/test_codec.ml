(* Tests for Naming.Codec — store serialisation. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Cd = Naming.Codec

let check = Alcotest.check
let b = Alcotest.bool

let sample_store () =
  let st = S.create () in
  let t = Schemes.Unix_scheme.build st in
  ignore (Schemes.Unix_scheme.spawn ~label:"p0" t);
  ignore
    (Vfs.Fs.add_file (Schemes.Unix_scheme.fs t) "/etc/motd"
       ~content:"hello\n\"quoted\"\tand tabs");
  st

let test_roundtrip () =
  let st = sample_store () in
  let text = Cd.to_string st in
  let st' = Cd.of_string text in
  check b "roundtrip equal" true (Cd.roundtrip_equal st st')

let test_roundtrip_resolves () =
  let st = sample_store () in
  let st' = Cd.of_string (Cd.to_string st) in
  (* Entity ids are preserved, so a name resolved in the original and in
     the copy yields the SAME id. *)
  let root st =
    List.find (fun e -> S.label st e = Some "/") (S.objects st)
  in
  let resolve st =
    Naming.Resolver.resolve st
      (Naming.Context.of_bindings [ (N.root_atom, root st) ])
      (N.of_string "/etc/motd")
  in
  let e = resolve st and e' = resolve st' in
  check b "same id" true (E.equal e e');
  check b "same content" true (S.data_of st e = S.data_of st' e')

let test_idempotent_text () =
  let st = sample_store () in
  let text = Cd.to_string st in
  let text' = Cd.to_string (Cd.of_string text) in
  check Alcotest.string "stable text" text text'

let test_bad_inputs () =
  let expect_fail s =
    match Cd.of_string s with
    | exception Cd.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  expect_fail "";
  expect_fail "not a store";
  expect_fail "coherent-naming-store v1\ngarbage line";
  expect_fail "coherent-naming-store v1\nactivity 1";
  (* non-dense ids *)
  expect_fail "coherent-naming-store v1\nbind 0 \"x\" o5";
  (* dangling reference *)
  expect_fail "coherent-naming-store v1\ndir 0\nbind 0 \"x\" o9"

let test_empty_store () =
  let st = S.create () in
  let st' = Cd.of_string (Cd.to_string st) in
  check b "empty roundtrip" true (Cd.roundtrip_equal st st')

let test_binding_to_activity () =
  let st = S.create () in
  let d = S.create_context_object ~label:"procs" st in
  let a = S.create_activity ~label:"init" st in
  S.bind st ~dir:d (N.atom "init") a;
  let st' = Cd.of_string (Cd.to_string st) in
  check b "activity edge survives" true (Cd.roundtrip_equal st st');
  check b "resolves to the activity" true
    (E.equal (S.lookup st' ~dir:d (N.atom "init")) a)

(* property: every randomly generated world round-trips. *)
let prop_roundtrip_random =
  QCheck.Test.make ~name:"random worlds roundtrip" ~count:30 QCheck.small_nat
    (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let st = S.create () in
      let fs = Vfs.Fs.create st in
      ignore
        (Workload.Docgen.build fs ~at:"p" ~rng ~spec:Workload.Docgen.default_spec);
      for _ = 1 to Dsim.Rng.int rng 4 do
        ignore (S.create_activity st)
      done;
      Cd.roundtrip_equal st (Cd.of_string (Cd.to_string st)))

let test_error_positions () =
  (match Cd.of_string_result "not a store" with
  | Error { Cd.line = 1; _ } -> ()
  | _ -> Alcotest.fail "bad header not reported on line 1");
  (match Cd.of_string_result "coherent-naming-store v1\ndir 0\ngarbage" with
  | Error { Cd.line = 3; _ } -> ()
  | _ -> Alcotest.fail "garbage not reported on line 3");
  match Cd.of_string_result (Cd.to_string (sample_store ())) with
  | Ok st' -> check b "ok on valid dump" true (Cd.roundtrip_equal (sample_store ()) st')
  | Error _ -> Alcotest.fail "valid dump rejected"

(* property: the decoder is total — arbitrary bytes produce a value,
   never an exception. *)
let prop_decode_never_raises =
  QCheck.Test.make ~name:"of_string_result is total on random bytes"
    ~count:500
    QCheck.(string_gen Gen.char)
    (fun s ->
      match Cd.of_string_result s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) s)

(* property: ditto for corrupted valid dumps — truncations and byte
   flips of a real serialisation, the adversarial neighbourhood random
   bytes never reach. *)
let prop_decode_total_on_mutated_dumps =
  let base = Cd.to_string (sample_store ()) in
  QCheck.Test.make ~name:"of_string_result is total on mutated dumps"
    ~count:500
    QCheck.(triple small_nat small_nat (QCheck.char))
    (fun (pos, cut, c) ->
      let mutate s =
        if String.length s = 0 then s
        else begin
          let bytes = Bytes.of_string s in
          Bytes.set bytes (pos mod Bytes.length bytes) c;
          Bytes.to_string bytes
        end
      in
      let truncate s = String.sub s 0 (cut mod (String.length s + 1)) in
      List.for_all
        (fun s ->
          match Cd.of_string_result s with
          | Ok _ | Error _ -> true
          | exception e ->
              QCheck.Test.fail_reportf "raised %s on %S"
                (Printexc.to_string e) s)
        [ mutate base; truncate base; mutate (truncate base) ])

(* The streaming pair must be byte- and structure-compatible with the
   string pair on every sample world: encode_to_channel writes exactly
   to_string's bytes, and decode_from_channel accepts them. *)
let test_streaming_roundtrip_samples () =
  let path = Filename.temp_file "naming_codec" ".dump" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      List.iter
        (fun scheme ->
          let w =
            match Harness.Sample.world scheme with
            | Some w -> w
            | None -> Alcotest.failf "sample scheme %s missing" scheme
          in
          let text = Cd.to_string w.Harness.Sample.store in
          let oc = open_out_bin path in
          Cd.encode_to_channel w.Harness.Sample.store oc;
          close_out oc;
          let ic = open_in_bin path in
          let written = really_input_string ic (in_channel_length ic) in
          seek_in ic 0;
          let decoded = Cd.decode_from_channel ic in
          close_in ic;
          check b
            (scheme ^ ": channel bytes equal to_string")
            true
            (String.equal text written);
          match decoded with
          | Error e ->
              Alcotest.failf "%s: streaming decode failed at line %d: %s"
                scheme e.Cd.line e.Cd.message
          | Ok st' ->
              check b
                (scheme ^ ": streaming decode roundtrips")
                true
                (Cd.roundtrip_equal w.Harness.Sample.store st'))
        Harness.Sample.schemes)

let test_streaming_decode_errors () =
  let decode_str text =
    let path = Filename.temp_file "naming_codec" ".bad" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc;
        let ic = open_in_bin path in
        let r = Cd.decode_from_channel ic in
        close_in ic;
        r)
  in
  (match decode_str "coherent-naming-store v1\ndir 1\n" with
  | Error e -> check Alcotest.int "out-of-order id line" 2 e.Cd.line
  | Ok _ -> Alcotest.fail "sparse entity ids accepted");
  (match decode_str "nonsense\n" with
  | Error e -> check Alcotest.int "bad header line" 1 e.Cd.line
  | Ok _ -> Alcotest.fail "bad header accepted");
  (* a dangling bind target must fail at end of input, like of_string *)
  match decode_str "coherent-naming-store v1\ndir 0\nbind 0 \"x\" o9\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling reference accepted"

(* Streaming and string decoders agree verdict-for-verdict on mutated
   dumps: both total, both accepting/rejecting the same inputs. *)
let prop_streaming_matches_string =
  QCheck.Test.make ~name:"decode_from_channel agrees with of_string_result"
    ~count:60
    (QCheck.pair QCheck.small_nat QCheck.small_nat)
    (fun (line_no, flip) ->
      let st = sample_store () in
      let text = Cd.to_string st in
      let lines = String.split_on_char '\n' text in
      let n = List.length lines in
      let target = line_no mod n in
      let mutated =
        String.concat "\n"
          (List.mapi
             (fun i l ->
               if i <> target then l
               else
                 match flip mod 3 with
                 | 0 -> "garbage here"
                 | 1 -> ""
                 | _ -> l ^ " trailing")
             lines)
      in
      let path = Filename.temp_file "naming_codec" ".mut" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out_bin path in
          output_string oc mutated;
          close_out oc;
          let ic = open_in_bin path in
          let streamed = Cd.decode_from_channel ic in
          close_in ic;
          match (Cd.of_string_result mutated, streamed) with
          | Ok a, Ok b -> Cd.roundtrip_equal a b
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "roundtrip preserves resolution" `Quick
      test_roundtrip_resolves;
    Alcotest.test_case "idempotent text" `Quick test_idempotent_text;
    Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
    Alcotest.test_case "empty store" `Quick test_empty_store;
    Alcotest.test_case "binding to an activity" `Quick
      test_binding_to_activity;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    QCheck_alcotest.to_alcotest prop_decode_never_raises;
    QCheck_alcotest.to_alcotest prop_decode_total_on_mutated_dumps;
    Alcotest.test_case "streaming roundtrip on every sample scheme" `Quick
      test_streaming_roundtrip_samples;
    Alcotest.test_case "streaming decode errors" `Quick
      test_streaming_decode_errors;
    QCheck_alcotest.to_alcotest prop_streaming_matches_string;
  ]

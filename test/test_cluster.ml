(* Tests for the replication coherence analyzer (Analysis.Clusterstate
   + Analysis.Replpasses): the broken-cluster fixture trips every NG2xx
   code with golden JSON and SARIF output, diagnostic lists are
   byte-identical at any job count for all three analyzer families, and
   — the soundness contract — every error-severity diagnostic over
   seeded random schedules is witnessed by a chaos replay of the same
   schedule. *)

module A = Analysis
module Cs = Analysis.Clusterstate
module Rp = Analysis.Replpasses
module Ns = Dsim.Nameserver
module Ch = Dsim.Chaos
module Rng = Dsim.Rng
module N = Naming.Name

let check = Alcotest.check
let b = Alcotest.bool
let sl = Alcotest.(list string)
let s = Alcotest.string

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let report_json r =
  (* NG2xx diagnostics carry no store entities; any store renders them. *)
  A.Json.to_string_pretty (A.Engine.to_json (Naming.Store.create ()) r)

(* ------------------------------------------------------------------ *)
(* The broken-cluster fixture.                                         *)

let test_broken_codes () =
  let _st, r = Broken_cluster.report () in
  check sl "diagnostic codes in report order" Broken_cluster.expected_codes
    (List.map (fun d -> d.A.Diagnostic.code) r.A.Engine.diagnostics);
  check b "gates on errors" true (A.Engine.has_errors r);
  List.iter
    (fun d ->
      match
        List.find_opt
          (fun (c, _, _) -> String.equal c d.A.Diagnostic.code)
          A.Diagnostic.catalogue
      with
      | None -> Alcotest.failf "code %s not in the catalogue" d.A.Diagnostic.code
      | Some (_, sev, _) ->
          check b
            (Printf.sprintf "%s severity matches catalogue" d.A.Diagnostic.code)
            true
            (sev = d.A.Diagnostic.severity))
    r.A.Engine.diagnostics

let test_broken_json_golden () =
  let _st, r = Broken_cluster.report () in
  check s "golden JSON report" Broken_cluster.expected_json (report_json r)

let test_broken_sarif () =
  let _st, r = Broken_cluster.report () in
  let sarif = A.Json.to_string_pretty (A.Sarif.render [ A.Sarif.of_report r ]) in
  List.iter
    (fun code ->
      check b (code ^ " appears in SARIF") true
        (contains ~sub:(Printf.sprintf "\"id\": \"%s\"" code) sarif))
    [ "NG201"; "NG202"; "NG203"; "NG204"; "NG205"; "NG206"; "NG207"; "NG208" ];
  check b "results carry error level" true
    (contains ~sub:"\"level\": \"error\"" sarif)

(* ------------------------------------------------------------------ *)
(* The leader-mode fixture: NG209/NG210 from the availability pass,
   LWW passes discharged.                                              *)

let test_leader_broken_codes () =
  let st, r = Broken_cluster.leader_report () in
  check sl "diagnostic codes in report order"
    Broken_cluster.leader_expected_codes
    (List.map (fun d -> d.A.Diagnostic.code) r.A.Engine.diagnostics);
  check b "warnings only, no gate" false (A.Engine.has_errors r);
  check sl "leader mode runs spec + availability passes only"
    Rp.leader_pass_ids r.A.Engine.passes_run;
  (* the window arithmetic: quorum is denied exactly while the crash
     overlaps the partition *)
  (match Cs.no_quorum_windows st with
  | [ (s, e) ] ->
      check (Alcotest.float 1e-9) "no-quorum window starts at crash" 15.0 s;
      check (Alcotest.float 1e-9) "no-quorum window ends at recovery" 35.0 e
  | ws ->
      Alcotest.failf "expected one no-quorum window, got %d" (List.length ws));
  List.iter
    (fun d ->
      match
        List.find_opt
          (fun (c, _, _) -> String.equal c d.A.Diagnostic.code)
          A.Diagnostic.catalogue
      with
      | None -> Alcotest.failf "code %s not in the catalogue" d.A.Diagnostic.code
      | Some (_, sev, _) ->
          check b
            (Printf.sprintf "%s severity matches catalogue" d.A.Diagnostic.code)
            true
            (sev = d.A.Diagnostic.severity))
    r.A.Engine.diagnostics

(* The same schedule under LWW keeps the five LWW passes and never
   emits the leader-only codes; under leader mode the availability
   verdicts quantify over every fault placement, so a partition the
   majority side survives alone yields no NG209. *)
let test_mode_gating () =
  let lww_subject =
    Rp.subject
      ~workload:Broken_cluster.leader_workload
      { Broken_cluster.leader_config with Ch.mode = `Lww_ae }
      Broken_cluster.spec
  in
  let _st, r = Rp.report ~label:"lww" lww_subject in
  check sl "lww mode runs the five LWW passes" Rp.pass_ids
    r.A.Engine.passes_run;
  check b "lww mode never emits NG209/NG210" false
    (List.exists
       (fun d ->
         String.equal d.A.Diagnostic.code "NG209"
         || String.equal d.A.Diagnostic.code "NG210")
       r.A.Engine.diagnostics);
  (* partition only, no crash: {ns1, ns2} keeps a quorum throughout *)
  let survivable =
    Rp.subject
      ~workload:Broken_cluster.leader_workload
      { Broken_cluster.leader_config with Ch.crash_for = 0.0 }
      Broken_cluster.spec
  in
  let st, r = Rp.report ~label:"survivable" survivable in
  check b "no no-quorum window when a majority side survives" true
    (Cs.no_quorum_windows st = []);
  check b "hence no NG209/NG210" false
    (List.exists
       (fun d ->
         String.equal d.A.Diagnostic.code "NG209"
         || String.equal d.A.Diagnostic.code "NG210")
       r.A.Engine.diagnostics);
  (* with [partition_leader] the isolated replica is unknown, so the
     same overlap is no longer provable: the crash victim could be the
     isolated one, leaving the other two a quorum *)
  let unprovable =
    Rp.subject
      ~workload:Broken_cluster.leader_workload
      { Broken_cluster.leader_config with Ch.partition_leader = true }
      Broken_cluster.spec
  in
  let st, _r = Rp.report ~label:"unprovable" unprovable in
  check b "partition_leader overlap is not provably quorum-denying" true
    (Cs.no_quorum_windows st = [])

(* ------------------------------------------------------------------ *)
(* Determinism: the three analyzer families produce byte-identical
   reports at any job count (the CLI's --jobs 1 vs --jobs 4).          *)

let test_jobs_parity () =
  let eq what js1 js4 =
    List.iteri
      (fun i (j1, j4) ->
        check s (Printf.sprintf "%s report %d identical across jobs" what i) j1
          j4)
      (List.combine js1 js4)
  in
  (* analyze *)
  let subjects () =
    [ ("w1", Broken_world.build ()); ("w2", Broken_world.build ()) ]
  in
  let analyze jobs =
    let subjects = subjects () in
    List.map2
      (fun (_, subj) r ->
        A.Json.to_string_pretty (A.Engine.to_json subj.A.Subject.store r))
      subjects
      (A.Engine.analyze_many ~jobs subjects)
  in
  eq "analyze" (analyze 1) (analyze 4);
  (* check-script *)
  let scripts = [ ("s1", Broken_script.plan ()); ("s2", Broken_script.plan ()) ] in
  let flow jobs =
    List.map
      (fun (_res, r) -> report_json r)
      (A.Flowpasses.report_many ~config:Broken_script.config ~jobs scripts)
  in
  eq "check-script" (flow 1) (flow 4);
  (* check-cluster *)
  let clusters =
    [
      ("c1", Broken_cluster.subject);
      ("c2", Rp.subject Ch.default Broken_cluster.spec);
      ("c3", Broken_cluster.leader_subject);
    ]
  in
  let cluster jobs =
    List.map
      (fun (_st, r) -> report_json r)
      (Rp.report_many ~jobs clusters)
  in
  eq "check-cluster" (cluster 1) (cluster 4)

(* ------------------------------------------------------------------ *)
(* Soundness: cross-validation against the simulator. Every
   error-severity NG2xx diagnostic is a Must/Never fact about EVERY
   execution of the schedule, so a chaos replay of the same config,
   spec and (default) workload must witness it:

   - NG201 (LWW race): the replay loses an update or fails to converge;
   - NG202 (pull graph not strongly connected): the replay provably
     fails to reconverge;
   - NG203 (staleness over a fault window): the witness sample — the
     diagnostic's [loc] is its index — reports divergence;
   - NG204 (durability hole): the replay loses a client write outright;

   and dually, a schedule the analyzer calls clean (no errors, no
   NG208 undecided verdict) must reconverge in replay. *)

let spec =
  {
    Ns.dirs = [ N.of_string "/a"; N.of_string "/a/b"; N.of_string "/c" ];
    leaves = [ ("k1", "one"); ("k2", "two"); ("k3", "three") ];
    links =
      [
        (N.of_string "/a/x", "k1");
        (N.of_string "/a/b/y", "k2");
        (N.of_string "/c/z", "k3");
      ];
  }

let probes = spec.Ns.dirs @ List.map fst spec.Ns.links

(* A deterministic schedule drawn from the seed: replicas 2-4, half the
   schedules loss-free (the only ones that can prove Must facts), fault
   windows that may or may not heal in-run, a modest write load. *)
let config_of_seed seed =
  let rng = Rng.create (Int64.of_int ((seed * 7919) + 17)) in
  let replicas = 2 + Rng.int rng 3 in
  let drop = if Rng.bool rng 0.5 then 0.0 else 0.01 +. Rng.float rng 0.08 in
  let partition_for = Rng.pick rng [ 0.0; 0.0; 10.0; 20.0; 1000.0 ] in
  let crash_for = Rng.pick rng [ 0.0; 0.0; 10.0; 20.0 ] in
  let dedup_window = if Rng.bool rng 0.25 then Some 1 else None in
  {
    Ch.default with
    Ch.seed;
    replicas;
    drop;
    duplicate = drop;
    partition_at = 10.0;
    partition_for;
    crash_at = 15.0;
    crash_for;
    writes = 4 + Rng.int rng 9;
    write_window = 30.0;
    call_attempts = 2 + Rng.int rng 2;
    dedup_window;
    duration = 60.0;
  }

let prop_errors_replay_witnessed =
  QCheck.Test.make ~name:"NG2xx errors are replay-witnessed; clean converges"
    ~count:120 QCheck.small_nat (fun seed ->
      let config = config_of_seed seed in
      let subject = Rp.subject config spec in
      let _st, diags = Rp.diagnostics subject in
      let r = Ch.run ~config ~spec ~probes () in
      let witnessed (d : A.Diagnostic.t) =
        match d.A.Diagnostic.code with
        | "NG201" -> r.Ch.ns.Ns.lww_losses > 0 || not r.Ch.converged
        | "NG202" -> not r.Ch.converged
        | "NG203" -> (
            match d.A.Diagnostic.loc with
            | Some k ->
                k < List.length r.Ch.samples
                && not (List.nth r.Ch.samples k).Ch.converged
            | None -> false)
        | "NG204" -> r.Ch.writes_lost > 0
        | _ -> true
      in
      List.iter
        (fun (d : A.Diagnostic.t) ->
          if d.A.Diagnostic.severity = A.Diagnostic.Error && not (witnessed d)
          then
            QCheck.Test.fail_reportf
              "seed %d: %s not witnessed by replay (converged=%b \
               lww_losses=%d writes_lost=%d): %s"
              seed d.A.Diagnostic.code r.Ch.converged r.Ch.ns.Ns.lww_losses
              r.Ch.writes_lost d.A.Diagnostic.message)
        diags;
      let clean =
        (not
           (List.exists
              (fun d -> d.A.Diagnostic.severity = A.Diagnostic.Error)
              diags))
        && not
             (List.exists
                (fun d -> String.equal d.A.Diagnostic.code "NG208")
                diags)
      in
      if clean && not r.Ch.converged then
        QCheck.Test.fail_reportf
          "seed %d: analyzer-clean schedule failed to reconverge in replay"
          seed;
      true)

let suite =
  [
    Alcotest.test_case "broken cluster codes" `Quick test_broken_codes;
    Alcotest.test_case "broken cluster JSON golden" `Quick
      test_broken_json_golden;
    Alcotest.test_case "broken cluster SARIF" `Quick test_broken_sarif;
    Alcotest.test_case "leader broken cluster codes" `Quick
      test_leader_broken_codes;
    Alcotest.test_case "mode gating of passes" `Quick test_mode_gating;
    Alcotest.test_case "jobs parity across analyzers" `Quick test_jobs_parity;
    QCheck_alcotest.to_alcotest prop_errors_replay_witnessed;
  ]

(* Tests for Netaddr.Pqid and Netaddr.Registry (section 6, Example 1). *)

module P = Netaddr.Pqid
module R = Netaddr.Registry

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let pqid = Alcotest.testable P.pp P.equal

let test_constructors () =
  check pqid "self" P.self (P.v ~naddr:0 ~maddr:0 ~laddr:0);
  check pqid "local" (P.v ~naddr:0 ~maddr:0 ~laddr:3) (P.local 3);
  check pqid "machine" (P.v ~naddr:0 ~maddr:2 ~laddr:3) (P.machine ~maddr:2 ~laddr:3);
  check pqid "full" (P.v ~naddr:1 ~maddr:2 ~laddr:3) (P.full ~naddr:1 ~maddr:2 ~laddr:3)

let test_constructor_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid pqid accepted"
  in
  expect_invalid (fun () -> P.v ~naddr:1 ~maddr:0 ~laddr:1);
  expect_invalid (fun () -> P.v ~naddr:0 ~maddr:1 ~laddr:0);
  expect_invalid (fun () -> P.v ~naddr:(-1) ~maddr:0 ~laddr:0);
  expect_invalid (fun () -> P.local 0);
  expect_invalid (fun () -> P.machine ~maddr:0 ~laddr:1);
  expect_invalid (fun () -> P.full ~naddr:0 ~maddr:1 ~laddr:1)

let test_qualification () =
  check b "self" true (P.qualification P.self = P.Self);
  check b "machine local" true (P.qualification (P.local 2) = P.Machine_local);
  check b "network local" true
    (P.qualification (P.machine ~maddr:1 ~laddr:2) = P.Network_local);
  check b "full" true
    (P.qualification (P.full ~naddr:1 ~maddr:1 ~laddr:1) = P.Fully_qualified);
  check b "is_self" true (P.is_self P.self)

let test_to_string () =
  check Alcotest.string "paper notation" "(1,2,3)"
    (P.to_string (P.full ~naddr:1 ~maddr:2 ~laddr:3))

(* -- registry ---------------------------------------------------------- *)

(* net1:{alpha:{p1,p2}, beta:{p1}}, net2:{gamma:{p1}} *)
let fixture () =
  let r = R.create () in
  let n1 = R.add_network r ~label:"net1" in
  let n2 = R.add_network r ~label:"net2" in
  let alpha = R.add_machine r ~net:n1 ~label:"alpha" in
  let beta = R.add_machine r ~net:n1 ~label:"beta" in
  let gamma = R.add_machine r ~net:n2 ~label:"gamma" in
  let a1 = R.add_process r ~mach:alpha ~label:"a1" in
  let a2 = R.add_process r ~mach:alpha ~label:"a2" in
  let b1 = R.add_process r ~mach:beta ~label:"b1" in
  let g1 = R.add_process r ~mach:gamma ~label:"g1" in
  (r, (n1, n2), (alpha, beta, gamma), (a1, a2, b1, g1))

let test_topology () =
  let r, (n1, n2), (alpha, _, _), (a1, _, _, _) = fixture () in
  check i "networks" 2 (List.length (R.networks r));
  check i "machines in net1" 2 (List.length (R.machines r n1));
  check i "machines in net2" 1 (List.length (R.machines r n2));
  check i "procs on alpha" 2 (List.length (R.processes r alpha));
  check i "all procs" 4 (List.length (R.all_processes r));
  check Alcotest.string "labels" "a1" (R.label_proc r a1);
  check b "addresses start at 1" true (R.naddr r n1 = 1 && R.naddr r n2 = 2)

let test_placement () =
  let r, _, _, (a1, a2, b1, g1) = fixture () in
  check pqid "a1" (P.full ~naddr:1 ~maddr:1 ~laddr:1) (R.placement r a1);
  check pqid "a2" (P.full ~naddr:1 ~maddr:1 ~laddr:2) (R.placement r a2);
  check pqid "b1" (P.full ~naddr:1 ~maddr:2 ~laddr:1) (R.placement r b1);
  check pqid "g1" (P.full ~naddr:2 ~maddr:1 ~laddr:1) (R.placement r g1)

let test_pid_of_minimality () =
  let r, _, _, (a1, a2, b1, g1) = fixture () in
  check pqid "itself" P.self (R.pid_of r ~target:a1 ~relative_to:a1);
  check pqid "same machine" (P.local 2) (R.pid_of r ~target:a2 ~relative_to:a1);
  check pqid "same network" (P.machine ~maddr:2 ~laddr:1)
    (R.pid_of r ~target:b1 ~relative_to:a1);
  check pqid "cross network" (P.full ~naddr:2 ~maddr:1 ~laddr:1)
    (R.pid_of r ~target:g1 ~relative_to:a1)

let test_resolve_each_form () =
  let r, _, _, (a1, a2, b1, g1) = fixture () in
  let procs = [ a1; a2; b1; g1 ] in
  (* every minimally qualified pid resolves back to its target from the
     holder's context. *)
  List.iter
    (fun holder ->
      List.iter
        (fun target ->
          let pid = R.pid_of r ~target ~relative_to:holder in
          match R.resolve r ~from:holder pid with
          | Some p when p = target -> ()
          | _ -> Alcotest.fail "pid_of does not resolve back")
        procs)
    procs;
  check b "dangling pid" true (R.resolve r ~from:a1 (P.local 99) = None)

let test_resolve_is_contextual () =
  let r, _, _, (a1, _, b1, _) = fixture () in
  (* (0,0,1) means a1 from alpha, but b1 from beta. *)
  let pid = P.local 1 in
  check b "from a1" true (R.resolve r ~from:a1 pid = Some a1);
  check b "from b1" true (R.resolve r ~from:b1 pid = Some b1)

let test_map_for_transit () =
  let r, _, _, (a1, a2, b1, g1) = fixture () in
  let procs = [ a1; a2; b1; g1 ] in
  (* after mapping, the receiver resolves the pid to the sender's
     referent — for all (sender, receiver, target) triples and all
     qualification levels the sender might have used. *)
  List.iter
    (fun sender ->
      List.iter
        (fun receiver ->
          List.iter
            (fun target ->
              let pid = R.pid_of r ~target ~relative_to:sender in
              let mapped = R.map_for_transit r ~sender ~receiver pid in
              match R.resolve r ~from:receiver mapped with
              | Some p when p = target -> ()
              | _ ->
                  Alcotest.failf "transit mapping broken: %s->%s about %s"
                    (R.label_proc r sender) (R.label_proc r receiver)
                    (R.label_proc r target))
            procs)
        procs)
    procs

let test_map_for_transit_minimal () =
  let r, _, _, (a1, a2, b1, _) = fixture () in
  (* a1 tells its machine-mate a2 about b1: result should stay
     network-local, not fully qualified. *)
  let pid = R.pid_of r ~target:b1 ~relative_to:a1 in
  let mapped = R.map_for_transit r ~sender:a1 ~receiver:a2 pid in
  check b "minimally qualified" true
    (P.qualification mapped = P.Network_local);
  (* a1 tells a2 about a1 itself: the self pid expands then reduces to a
     machine-local pid. *)
  let mapped_self = R.map_for_transit r ~sender:a1 ~receiver:a2 P.self in
  check pqid "self becomes local" (P.local 1) mapped_self

let test_renumber_machine () =
  let r, _, (alpha, _, _), (a1, a2, b1, _) = fixture () in
  let intra = R.pid_of r ~target:a2 ~relative_to:a1 in
  let inter = R.pid_of r ~target:a1 ~relative_to:b1 in
  let full = R.full_pid r a1 in
  R.renumber_machine r alpha 42;
  check b "intra-machine pid survives" true
    (R.resolve r ~from:a1 intra = Some a2);
  check b "inter-machine pid to renamed machine breaks" true
    (R.resolve r ~from:b1 inter = None);
  check b "full pid breaks" true (R.resolve r ~from:b1 full = None);
  (* New pids work under the new addressing. *)
  check pqid "new address visible" (P.full ~naddr:1 ~maddr:42 ~laddr:1)
    (R.placement r a1)

let test_renumber_network () =
  let r, (n1, _), _, (a1, a2, b1, g1) = fixture () in
  let intra_net = R.pid_of r ~target:b1 ~relative_to:a1 in
  let cross = R.pid_of r ~target:a1 ~relative_to:g1 in
  R.renumber_network r n1 77;
  check b "intra-network pid survives" true
    (R.resolve r ~from:a1 intra_net = Some b1);
  check b "intra-machine pid survives" true
    (R.resolve r ~from:a1 (R.pid_of r ~target:a2 ~relative_to:a1) = Some a2);
  check b "cross-network pid breaks" true (R.resolve r ~from:g1 cross = None)

let test_renumber_validation () =
  let r, (n1, n2), (alpha, beta, _), _ = fixture () in
  (match R.renumber_machine r alpha (R.maddr r beta) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "address clash accepted");
  (match R.renumber_network r n1 (R.naddr r n2) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "network clash accepted");
  (match R.renumber_machine r alpha 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero address accepted");
  (* renumbering to one's own address is a no-op *)
  R.renumber_machine r alpha (R.maddr r alpha)

let test_move_machine () =
  let r, (n1, n2), (alpha, _, gamma), (a1, _, _, g1) = fixture () in
  R.move_machine r alpha n2;
  check b "moved" true (R.network_of_mach r alpha = n2);
  (* alpha had maddr 1, gamma already has maddr 1 in net2: a fresh one is
     chosen. *)
  check b "fresh maddr" true (R.maddr r alpha <> R.maddr r gamma);
  check b "now same network" true
    (P.qualification (R.pid_of r ~target:g1 ~relative_to:a1) = P.Network_local);
  ignore n1

let test_move_process () =
  let r, _, (alpha, beta, _), (a1, a2, _, _) = fixture () in
  let neighbour_pid = R.pid_of r ~target:a2 ~relative_to:a1 in
  check b "machine-local before" true
    (P.qualification neighbour_pid = P.Machine_local);
  (* a2 migrates to beta; beta already has laddr 1 (b1), a2 had laddr 2 *)
  R.move_process r a2 beta;
  check b "moved" true (R.machine_of_proc r a2 = beta);
  (* the old machine-local pid now dangles (or denotes someone else) *)
  check b "old pid broken" true (R.resolve r ~from:a1 neighbour_pid <> Some a2);
  (* fresh pids work and are network-local now *)
  let fresh = R.pid_of r ~target:a2 ~relative_to:a1 in
  check b "fresh network-local" true (P.qualification fresh = P.Network_local);
  check b "fresh resolves" true (R.resolve r ~from:a1 fresh = Some a2);
  ignore alpha

let test_move_process_laddr_clash () =
  let r, _, (_, beta, _), (a1, _, b1, _) = fixture () in
  (* a1 has laddr 1; beta's b1 also has laddr 1: migration picks a fresh one *)
  R.move_process r a1 beta;
  check b "laddr changed on clash" true (R.laddr r a1 <> R.laddr r b1);
  check b "still resolvable" true
    (R.resolve r ~from:b1 (R.pid_of r ~target:a1 ~relative_to:b1) = Some a1)

let test_explicit_addresses () =
  let r = R.create () in
  let n = R.add_network ~naddr:10 r ~label:"n" in
  check i "explicit naddr" 10 (R.naddr r n);
  (match R.add_network ~naddr:10 r ~label:"dup" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate naddr accepted");
  let m = R.add_machine ~maddr:5 r ~net:n ~label:"m" in
  check i "explicit maddr" 5 (R.maddr r m);
  let p = R.add_process ~laddr:7 r ~mach:m ~label:"p" in
  check i "explicit laddr" 7 (R.laddr r p)

(* property: pid_of always resolves back, under random topologies. *)
let prop_pid_roundtrip =
  QCheck.Test.make ~name:"pid_of resolves back (random topology)" ~count:50
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let r = R.create () in
      let nets =
        List.init (1 + Dsim.Rng.int rng 3) (fun k ->
            R.add_network r ~label:(Printf.sprintf "n%d" k))
      in
      List.iter
        (fun net ->
          for m = 0 to Dsim.Rng.int rng 3 do
            let mach = R.add_machine r ~net ~label:(Printf.sprintf "m%d" m) in
            for p = 0 to Dsim.Rng.int rng 3 do
              ignore (R.add_process r ~mach ~label:(Printf.sprintf "p%d" p))
            done
          done)
        nets;
      let procs = R.all_processes r in
      procs = []
      || List.for_all
           (fun holder ->
             List.for_all
               (fun target ->
                 R.resolve r ~from:holder
                   (R.pid_of r ~target ~relative_to:holder)
                 = Some target)
               procs)
           procs)

let suite =
  [
    Alcotest.test_case "pqid constructors" `Quick test_constructors;
    Alcotest.test_case "pqid validation" `Quick test_constructor_validation;
    Alcotest.test_case "qualification" `Quick test_qualification;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "topology" `Quick test_topology;
    Alcotest.test_case "placement" `Quick test_placement;
    Alcotest.test_case "pid_of minimality" `Quick test_pid_of_minimality;
    Alcotest.test_case "resolve all forms" `Quick test_resolve_each_form;
    Alcotest.test_case "resolution is contextual" `Quick
      test_resolve_is_contextual;
    Alcotest.test_case "map_for_transit correct" `Quick test_map_for_transit;
    Alcotest.test_case "map_for_transit minimal" `Quick
      test_map_for_transit_minimal;
    Alcotest.test_case "renumber machine" `Quick test_renumber_machine;
    Alcotest.test_case "renumber network" `Quick test_renumber_network;
    Alcotest.test_case "renumber validation" `Quick test_renumber_validation;
    Alcotest.test_case "move machine" `Quick test_move_machine;
    Alcotest.test_case "move process" `Quick test_move_process;
    Alcotest.test_case "move process laddr clash" `Quick
      test_move_process_laddr_clash;
    Alcotest.test_case "explicit addresses" `Quick test_explicit_addresses;
    QCheck_alcotest.to_alcotest prop_pid_roundtrip;
  ]

(* Tests for Naming.Store: entity allocation, states, snapshot/restore. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let test_allocation_kinds () =
  let st = S.create () in
  let o = S.create_object st in
  let d = S.create_context_object st in
  let a = S.create_activity st in
  check b "object" true (E.is_object o);
  check b "ctxobj is object" true (E.is_object d);
  check b "activity" true (E.is_activity a);
  check i "cardinal" 3 (S.cardinal st);
  check b "distinct ids" true (not (E.equal o d))

let test_states () =
  let st = S.create () in
  let f = S.create_object ~state:(S.Data "hello") st in
  check b "data" true (S.data_of st f = Some "hello");
  check b "not ctx" true (S.context_of st f = None);
  check b "not ctxobj" false (S.is_context_object st f);
  let d = S.create_context_object st in
  check b "ctxobj" true (S.is_context_object st d);
  check b "no data" true (S.data_of st d = None);
  S.set_obj_state st f (S.Data "bye");
  check b "updated" true (S.data_of st f = Some "bye")

let test_activity_has_no_obj_state () =
  let st = S.create () in
  let a = S.create_activity st in
  check b "no state" true (S.obj_state st a = None);
  (match S.set_obj_state st a (S.Data "x") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "activity state set")

let test_bind_lookup_unbind () =
  let st = S.create () in
  let d = S.create_context_object st in
  let f = S.create_object st in
  S.bind st ~dir:d (N.atom "f") f;
  check entity "bound" f (S.lookup st ~dir:d (N.atom "f"));
  S.unbind st ~dir:d (N.atom "f");
  check entity "unbound" E.undefined (S.lookup st ~dir:d (N.atom "f"));
  (match S.bind st ~dir:f (N.atom "x") d with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bind in a data object");
  check entity "lookup in non-context is bottom" E.undefined
    (S.lookup st ~dir:f (N.atom "x"))

let test_labels () =
  let st = S.create () in
  let o = S.create_object ~label:"passwd" st in
  check b "label" true (S.label st o = Some "passwd");
  S.set_label st o "shadow";
  check b "relabel" true (S.label st o = Some "shadow");
  let anon = S.create_object st in
  check b "anonymous" true (S.label st anon = None)

let test_enumerations () =
  let st = S.create () in
  let a1 = S.create_activity st in
  let o1 = S.create_object st in
  let d1 = S.create_context_object st in
  let a2 = S.create_activity st in
  check (Alcotest.list entity) "activities in order" [ a1; a2 ]
    (S.activities st);
  check (Alcotest.list entity) "objects in order" [ o1; d1 ] (S.objects st);
  check (Alcotest.list entity) "context objects" [ d1 ] (S.context_objects st)

let test_exists () =
  let st = S.create () in
  let o = S.create_object st in
  let a = S.create_activity st in
  check b "object exists" true (S.exists st o);
  check b "activity exists" true (S.exists st a);
  check b "foreign object" false (S.exists st (E.Object 999));
  check b "undefined" false (S.exists st E.undefined)

let test_snapshot_restore () =
  let st = S.create () in
  let d = S.create_context_object st in
  let f = S.create_object ~state:(S.Data "v1") st in
  S.bind st ~dir:d (N.atom "f") f;
  let snap = S.snapshot st in
  (* Mutate everything. *)
  S.set_obj_state st f (S.Data "v2");
  S.unbind st ~dir:d (N.atom "f");
  let g = S.create_object ~state:(S.Data "new") st in
  S.restore st snap;
  check b "data restored" true (S.data_of st f = Some "v1");
  check entity "binding restored" f (S.lookup st ~dir:d (N.atom "f"));
  check b "post-snapshot entity untouched" true (S.data_of st g = Some "new")

let test_set_context () =
  let st = S.create () in
  let d = S.create_context_object st in
  let o = S.create_object st in
  S.set_context st d (C.of_bindings [ (N.atom "o", o) ]);
  check entity "context replaced" o (S.lookup st ~dir:d (N.atom "o"))

let test_generations () =
  let st = S.create () in
  let d = S.create_context_object st in
  let o = S.create_object ~state:(S.Data "v") st in
  let gd = S.generation st d and go = S.generation st o in
  check b "fresh objects have a generation" true (gd > 0 && go > 0);
  S.bind st ~dir:d (N.atom "o") o;
  check b "bind bumps the dir's generation" true (S.generation st d > gd);
  check i "the bound target is untouched" go (S.generation st o);
  check b "tick covers every generation" true (S.tick st >= S.generation st d)

let test_touched_since () =
  let st = S.create () in
  let d = S.create_context_object st in
  let o = S.create_object ~state:(S.Data "v") st in
  let t0 = S.tick st in
  check (Alcotest.list entity) "nothing since now" [] (S.touched_since st t0);
  S.bind st ~dir:d (N.atom "o") o;
  check (Alcotest.list entity) "the mutated dir" [ d ] (S.touched_since st t0);
  S.set_obj_state st o (S.Data "v2");
  S.set_obj_state st o (S.Data "v3");
  (* deduplicated, oldest change first *)
  check (Alcotest.list entity) "both, deduped" [ d; o ] (S.touched_since st t0);
  check (Alcotest.list entity) "empty at the tip" []
    (S.touched_since st (S.tick st))

let test_touched_since_overflow () =
  let st = S.create () in
  let d = S.create_context_object st in
  let o = S.create_object ~state:(S.Data "v0") st in
  let t0 = S.tick st in
  (* one early change, then enough churn to overflow the 8192-entry
     journal (truncated to its 2048 newest): the early change scrolls
     out, so [touched_since t0] must take the generation-scan fallback *)
  S.bind st ~dir:d (N.atom "o") o;
  for i = 1 to 9000 do
    S.set_obj_state st o (S.Data (string_of_int i))
  done;
  let touched = S.touched_since st t0 in
  check b "fallback reports the scrolled-out dir" true
    (List.exists (E.equal d) touched);
  check b "fallback reports the churned object" true
    (List.exists (E.equal o) touched);
  check b "fallback reports nothing untouched" true
    (List.for_all (fun e -> E.equal e d || E.equal e o) touched);
  (* recent windows are still served by the journal: ordered, deduped *)
  let tn = S.tick st in
  S.set_obj_state st o (S.Data "x");
  S.set_obj_state st o (S.Data "y");
  S.bind st ~dir:d (N.atom "p") o;
  check (Alcotest.list entity) "journal path intact after overflow" [ o; d ]
    (S.touched_since st tn)

let suite =
  [
    Alcotest.test_case "allocation kinds" `Quick test_allocation_kinds;
    Alcotest.test_case "object states" `Quick test_states;
    Alcotest.test_case "activities have no object state" `Quick
      test_activity_has_no_obj_state;
    Alcotest.test_case "bind/lookup/unbind" `Quick test_bind_lookup_unbind;
    Alcotest.test_case "labels" `Quick test_labels;
    Alcotest.test_case "enumerations" `Quick test_enumerations;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "set_context" `Quick test_set_context;
    Alcotest.test_case "generations" `Quick test_generations;
    Alcotest.test_case "touched_since" `Quick test_touched_since;
    Alcotest.test_case "touched_since journal overflow" `Quick
      test_touched_since_overflow;
  ]

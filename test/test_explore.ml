(* Tests for the adversarial schedule explorer (Analysis.Explore +
   Analysis.Explorepasses) and the explicit-schedule plumbing in
   Dsim.Chaos:

   - acceptance: exploring the broken-cluster fixture's spec family
     synthesizes NG301 and NG302 witnesses whose minimized schedules,
     serialized to JSON, parsed back and replayed, reproduce the
     claimed failure byte-for-byte in the chaos JSON report;
   - schedule JSON round-trip: [schedule_of_json] ∘ [schedule_to_json]
     is the identity, structurally and at the byte level, over seeded
     random schedules;
   - soundness: over seeded explorer configs, every witness's claim
     holds in the confirming replay, in a fresh replay of the minimized
     schedule, and in a replay of the unminimized schedule — and the
     full diagnostic report is byte-identical at jobs 1 and 4;
   - Engine.assemble: cross-family ordering, dedup and severity
     filtering when all four analyzer families contribute. *)

module A = Analysis
module Ex = Analysis.Explore
module Xp = Analysis.Explorepasses
module Ns = Dsim.Nameserver
module Ch = Dsim.Chaos
module Rng = Dsim.Rng
module N = Naming.Name

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let s = Alcotest.string

let report_json r =
  A.Json.to_string_pretty (A.Engine.to_json (Naming.Store.create ()) r)

(* The probes [Explore.run] replays with — the spec's directories and
   link paths, exactly as [namingctl chaos] derives them. *)
let probes_of (spec : Ns.spec) =
  spec.Ns.dirs @ List.map fst spec.Ns.links

(* ------------------------------------------------------------------ *)
(* Acceptance on the broken-cluster spec family.                       *)

let broken_config =
  {
    Ex.default with
    Ex.base = { Ex.default.Ex.base with Ch.replicas = 4 };
  }

(* The NG3xx codes the two fixture runs below trip between them, for
   the catalogue coverage check in test_analysis.ml. *)
let expected_codes = [ "NG301"; "NG302"; "NG303"; "NG304" ]

let test_acceptance () =
  let spec = Broken_cluster.spec in
  let outcome = Ex.run ~config:broken_config spec in
  let codes = List.map (fun w -> w.Ex.code) outcome.Ex.witnesses in
  check b "synthesizes an NG301 witness" true (List.mem "NG301" codes);
  check b "synthesizes an NG302 witness" true (List.mem "NG302" codes);
  check b "synthesizes an NG303 witness" true (List.mem "NG303" codes);
  let probes = probes_of spec in
  List.iter
    (fun (w : Ex.witness) ->
      (* the serialized minimized schedule parses back... *)
      let json = Ch.schedule_to_json w.Ex.schedule in
      let parsed =
        match Ch.schedule_of_json json with
        | Ok p -> p
        | Error m -> Alcotest.failf "%s witness schedule unparsable: %s"
                       w.Ex.code m
      in
      check s
        (w.Ex.code ^ " schedule re-renders byte-identically")
        json
        (Ch.schedule_to_json parsed);
      (* ...and its replay reproduces the stored one byte for byte *)
      let replayed = Ch.run_schedule ~spec ~probes parsed in
      check s
        (w.Ex.code ^ " replay reproduces the witness report byte-for-byte")
        (Ch.to_json ~scheme:"witness" w.Ex.replay)
        (Ch.to_json ~scheme:"witness" replayed);
      check b
        (w.Ex.code ^ " claim holds in replay")
        true
        (Ex.claim_holds w.Ex.claim replayed))
    outcome.Ex.witnesses;
  (* minimized witnesses are minimal in an obvious sense: no schedule
     needs more writes than the exploration found necessary *)
  List.iter
    (fun (w : Ex.witness) ->
      check b
        (w.Ex.code ^ " minimized no larger than unminimized")
        true
        (List.length w.Ex.schedule.Ch.writes
        <= List.length w.Ex.unminimized.Ch.writes))
    outcome.Ex.witnesses

let test_report_codes () =
  let subject = Xp.subject ~config:broken_config Broken_cluster.spec in
  let outcome, r = Xp.report ~label:"broken-cluster" subject in
  check b "report gates on errors" true (A.Engine.has_errors r);
  check i "one diagnostic per witness"
    (List.length outcome.Ex.witnesses)
    (List.length r.A.Engine.diagnostics);
  List.iter
    (fun d ->
      match
        List.find_opt
          (fun (c, _, _) -> String.equal c d.A.Diagnostic.code)
          A.Diagnostic.catalogue
      with
      | None ->
          Alcotest.failf "code %s not in the catalogue" d.A.Diagnostic.code
      | Some (_, sev, _) ->
          check b
            (d.A.Diagnostic.code ^ " severity matches catalogue")
            true
            (sev = d.A.Diagnostic.severity))
    r.A.Engine.diagnostics

(* Leader mode: the same spec family explored with the leader tier as
   the replay target. The statically-racing schedules (LWW claims)
   replay without losing an update — the loss frontier is discharged by
   its own replay — while genuine convergence defeats (a partition that
   never heals starving a follower) may survive as witnesses. *)
let test_leader_mode_discharges_losses () =
  let config =
    {
      broken_config with
      Ex.base = { broken_config.Ex.base with Ch.mode = `Leader_log };
    }
  in
  let spec = Broken_cluster.spec in
  let outcome = Ex.run ~config spec in
  let codes = List.map (fun w -> w.Ex.code) outcome.Ex.witnesses in
  check b "no NG301 loss witness survives the leader replay" false
    (List.mem "NG301" codes);
  List.iter
    (fun (w : Ex.witness) ->
      check b (w.Ex.code ^ " witness schedule carries leader mode") true
        (w.Ex.schedule.Ch.config.Ch.mode = `Leader_log);
      check b (w.Ex.code ^ " claim holds in the leader replay") true
        (Ex.claim_holds w.Ex.claim w.Ex.replay);
      check i (w.Ex.code ^ " replay observed zero lost updates") 0
        w.Ex.replay.Ch.ns.Ns.lww_losses)
    outcome.Ex.witnesses

(* A spec whose cluster accepts no write at all: the space is a single
   empty schedule, exhausted clean — the NG304 verdict. *)
let test_exhausted_clean () =
  let spec = { Ns.dirs = [ N.of_string "/a" ]; leaves = []; links = [] } in
  let outcome, r = Xp.report ~label:"clean" (Xp.subject spec) in
  check b "space exhausted" true outcome.Ex.stats.Ex.exhausted;
  check i "no witnesses" 0 (List.length outcome.Ex.witnesses);
  check b "no errors" false (A.Engine.has_errors r);
  match r.A.Engine.diagnostics with
  | [ d ] -> check s "NG304 verdict" "NG304" d.A.Diagnostic.code
  | ds -> Alcotest.failf "expected exactly NG304, got %d diagnostics"
            (List.length ds)

(* ------------------------------------------------------------------ *)
(* Schedule JSON round-trip.                                           *)

let roundtrip_spec =
  {
    Ns.dirs = [ N.of_string "/a"; N.of_string "/a/b" ];
    leaves = [ ("k1", "one"); ("k2", "two") ];
    links = [ (N.of_string "/a/x", "k1"); (N.of_string "/a/b/y", "k2") ];
  }

let schedule_of_seed seed =
  let rng = Rng.create (Int64.of_int ((seed * 6151) + 3)) in
  let nwrites = Rng.int rng 5 in
  let config =
    {
      Ch.default with
      Ch.seed;
      replicas = 2 + Rng.int rng 3;
      drop = Rng.float rng 0.3;
      duplicate = Rng.float rng 0.3;
      partition_at = Rng.float rng 20.0;
      partition_for = Rng.pick rng [ 0.0; Rng.float rng 50.0 ];
      crash_at = Rng.float rng 20.0;
      crash_for = Rng.pick rng [ 0.0; Rng.float rng 30.0 ];
      writes = nwrites;
      call_timeout = 0.5 +. Rng.float rng 3.0;
      ae_period = 0.5 +. Rng.float rng 3.0;
      duration = 40.0 +. Rng.float rng 40.0;
      dedup_window = (if Rng.bool rng 0.3 then Some (Rng.int rng 4) else None);
      mode = (if Rng.bool rng 0.5 then `Leader_log else `Lww_ae);
      leader_kill_at = Rng.float rng 30.0;
      leader_kill_for = Rng.pick rng [ 0.0; Rng.float rng 20.0 ];
      partition_leader = Rng.bool rng 0.3;
      txn_deadline = 5.0 +. Rng.float rng 30.0;
    }
  in
  let writes =
    List.init nwrites (fun _ ->
        let path, atom =
          Rng.pick rng
            [
              (N.of_string "/a", N.atom "x");
              (N.of_string "/a/b", N.atom "y");
              (N.of_string "/", N.atom "z");
            ]
        in
        let target =
          if Rng.bool rng 0.25 then None
          else Some (Rng.pick rng [ "k1"; "k2" ])
        in
        ( Rng.float rng config.Ch.write_window,
          Rng.int rng config.Ch.replicas,
          Ns.Write { path; atom; target } ))
  in
  { Ch.config; writes }

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"schedule_of_json ∘ schedule_to_json = id" ~count:200
    QCheck.small_nat (fun seed ->
      let sched = schedule_of_seed seed in
      let json = Ch.schedule_to_json sched in
      match Ch.schedule_of_json json with
      | Error m -> QCheck.Test.fail_reportf "seed %d: unparsable: %s" seed m
      | Ok parsed ->
          if parsed.Ch.config <> sched.Ch.config then
            QCheck.Test.fail_reportf "seed %d: config not preserved" seed;
          if Ch.schedule_to_json parsed <> json then
            QCheck.Test.fail_reportf "seed %d: re-render not byte-identical"
              seed;
          true)

(* A witness from before the leader tier: its config object stops at
   dedup_window. It must parse with [`Lww_ae] and the leader-fault
   defaults, so every archived witness file replays byte-for-byte. *)
let test_schedule_json_backward_compat () =
  let old_json =
    {|{
  "version": 1,
  "config": {"seed": 7, "replicas": 3, "drop": 0.05, "duplicate": 0.05, "partition_at": 10, "partition_for": 20, "crash_at": 15, "crash_for": 10, "writes": 2, "write_window": 30, "call_timeout": 2, "call_attempts": 6, "ae_period": 2, "ae_timeout": 2, "ae_attempts": 3, "sample_every": 2, "duration": 80, "dedup_window": null},
  "writes": [
    {"time": 1.5, "client": 0, "path": "/a", "atom": "x", "target": "k1"},
    {"time": 2.5, "client": 1, "path": "/a/b", "atom": "y", "target": null}]
}|}
  in
  match Ch.schedule_of_json old_json with
  | Error m -> Alcotest.failf "pre-leader witness rejected: %s" m
  | Ok s ->
      Alcotest.(check bool) "defaults to lww" true (s.Ch.config.Ch.mode = `Lww_ae);
      Alcotest.(check bool) "leader-kill disabled" true
        (s.Ch.config.Ch.leader_kill_for = 0.0);
      Alcotest.(check bool) "no leader partition" false
        s.Ch.config.Ch.partition_leader;
      Alcotest.(check bool) "default txn deadline" true
        (s.Ch.config.Ch.txn_deadline = Ch.default.Ch.txn_deadline);
      Alcotest.(check int) "writes preserved" 2 (List.length s.Ch.writes);
      (* and the re-render carries the new fields explicitly *)
      let json = Ch.schedule_to_json s in
      (match Ch.schedule_of_json json with
      | Ok s' ->
          Alcotest.(check bool) "re-render round-trips" true
            (s'.Ch.config = s.Ch.config)
      | Error m -> Alcotest.failf "re-render unparsable: %s" m)

let test_schedule_of_json_errors () =
  let reject what text =
    match Ch.schedule_of_json text with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  reject "garbage" "nonsense";
  reject "bad version" {|{"version": 2, "config": {}, "writes": []}|};
  reject "missing config field"
    {|{"version": 1, "config": {"seed": 1}, "writes": []}|};
  let good = Ch.schedule_to_json (schedule_of_seed 1) in
  reject "trailing garbage" (good ^ "x");
  match Ch.schedule_of_json good with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "round-trip rejected: %s" m

(* ------------------------------------------------------------------ *)
(* Soundness over seeded explorer configs, at jobs 1 and 4.            *)

let explore_spec =
  {
    Ns.dirs = [ N.of_string "/a" ];
    leaves = [ ("k1", "one"); ("k2", "two") ];
    links = [ (N.of_string "/a/x", "k1") ];
  }

let explore_config_of_seed seed =
  let rng = Rng.create (Int64.of_int ((seed * 4099) + 29)) in
  {
    Ex.default with
    Ex.base =
      {
        Ex.default.Ex.base with
        Ch.seed;
        replicas = 2 + Rng.int rng 2;
        duration = 48.0;
      };
    depth = 1 + Rng.int rng 2;
    max_writes = 1 + Rng.int rng 2;
    budget = 120 + Rng.int rng 80;
    seed;
  }

let prop_witnesses_sound =
  QCheck.Test.make
    ~name:"explorer witnesses replay soundly; jobs 1 = jobs 4" ~count:60
    QCheck.small_nat (fun seed ->
      let config = explore_config_of_seed seed in
      let subject = Xp.subject ~config explore_spec in
      let outcome, r1 = Xp.report ~jobs:1 ~label:"sound" subject in
      let _, r4 = Xp.report ~jobs:4 ~label:"sound" subject in
      if report_json r1 <> report_json r4 then
        QCheck.Test.fail_reportf "seed %d: jobs 1 and jobs 4 reports differ"
          seed;
      let probes = probes_of explore_spec in
      List.iter
        (fun (w : Ex.witness) ->
          if not (Ex.claim_holds w.Ex.claim w.Ex.replay) then
            QCheck.Test.fail_reportf
              "seed %d: %s claim does not hold in its confirming replay" seed
              w.Ex.code;
          let fresh = Ch.run_schedule ~spec:explore_spec ~probes w.Ex.schedule in
          if
            Ch.to_json ~scheme:"w" fresh
            <> Ch.to_json ~scheme:"w" w.Ex.replay
          then
            QCheck.Test.fail_reportf
              "seed %d: %s minimized replay not reproducible byte-for-byte"
              seed w.Ex.code;
          let unmin =
            Ch.run_schedule ~spec:explore_spec ~probes w.Ex.unminimized
          in
          if not (Ex.claim_holds w.Ex.claim unmin) then
            QCheck.Test.fail_reportf
              "seed %d: %s claim lost by minimization (unminimized replay \
               does not exhibit it)"
              seed w.Ex.code)
        outcome.Ex.witnesses;
      true)

(* ------------------------------------------------------------------ *)
(* Engine.assemble across all four analyzer families.                  *)

let test_assemble_cross_family () =
  let d ?name ?loc code severity pass msg =
    A.Diagnostic.make ~code ~severity ~pass ?name ?loc msg
  in
  let open A.Diagnostic in
  let name = N.of_string "/a/x" in
  let diags =
    [
      d "NG304" Info "explore-space" "space exhausted";
      d ~name ~loc:1 "NG301" Error "explore-loss" "write lost";
      d "NG106" Info "flow-verdict" "undecided";
      d ~name "NG201" Error "cluster-races" "lww race";
      d ~name "NG003" Error "structure" "dangling binding";
      d ~name ~loc:1 "NG301" Error "explore-loss" "write lost";
      (* duplicate *)
      d "NG205" Warning "cluster-races" "stamp tie";
      d ~name "NG104" Warning "crosslinks" "fork divergence";
      d ~name ~loc:3 "NG303" Warning "explore-staleness" "stale window";
    ]
  in
  let r =
    A.Engine.assemble ~label:"all-families" ~activities:1 ~objects:1
      ~context_objects:1 ~probes:1
      ~passes_run:[ "structure"; "crosslinks"; "flow"; "cluster"; "explore" ]
      diags
  in
  (* the duplicate NG301 collapses; order is Diagnostic.compare *)
  check i "dedup leaves 8" 8 (List.length r.A.Engine.diagnostics);
  check Alcotest.(list string) "cross-family report order"
    [
      "NG003"; "NG201"; "NG301"; "NG104"; "NG205"; "NG303"; "NG106"; "NG304";
    ]
    (List.map (fun d -> d.A.Diagnostic.code) r.A.Engine.diagnostics);
  let sorted =
    List.for_all2
      (fun a b -> A.Diagnostic.compare a b <= 0)
      (List.filteri (fun k _ -> k < List.length r.A.Engine.diagnostics - 1)
         r.A.Engine.diagnostics)
      (List.tl r.A.Engine.diagnostics)
  in
  check b "sorted by Diagnostic.compare" true sorted;
  check i "errors counted unfiltered" 3 r.A.Engine.errors;
  check i "warnings counted unfiltered" 3 r.A.Engine.warnings;
  check i "infos counted unfiltered" 2 r.A.Engine.infos;
  (* the display filter hides below min severity; counters don't move *)
  let rw =
    A.Engine.assemble ~min_severity:A.Diagnostic.Warning ~label:"filtered"
      ~activities:1 ~objects:1 ~context_objects:1 ~probes:1
      ~passes_run:[ "x" ] diags
  in
  check i "filter drops infos from display" 6
    (List.length rw.A.Engine.diagnostics);
  check i "filtered infos still counted" 2 rw.A.Engine.infos;
  check b "exit policy sees unfiltered errors" true (A.Engine.has_errors rw)

let suite =
  [
    Alcotest.test_case "explorer acceptance on broken cluster" `Quick
      test_acceptance;
    Alcotest.test_case "explorer report codes" `Quick test_report_codes;
    Alcotest.test_case "leader mode discharges the loss frontier" `Quick
      test_leader_mode_discharges_losses;
    Alcotest.test_case "space exhausted clean (NG304)" `Quick
      test_exhausted_clean;
    Alcotest.test_case "schedule_of_json rejects malformed input" `Quick
      test_schedule_of_json_errors;
    Alcotest.test_case "pre-leader witness files still parse" `Quick
      test_schedule_json_backward_compat;
    Alcotest.test_case "assemble across four families" `Quick
      test_assemble_cross_family;
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
    QCheck_alcotest.to_alcotest prop_witnesses_sound;
  ]

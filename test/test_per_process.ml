(* Tests for Schemes.Per_process — Plan 9 / extended Waterloo Port. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Pp = Schemes.Per_process
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let tree = [ "bin/tool"; "data/set1"; "tmp/" ]

let fixture () =
  let st = S.create () in
  let t = Pp.build ~subsystems:[ ("port1", tree); ("port2", tree) ] st in
  (st, t)

let test_private_roots () =
  let _, t = fixture () in
  let p1 = Pp.spawn ~attach:[ ("fs", "port1") ] t in
  let p2 = Pp.spawn ~attach:[ ("fs", "port2") ] t in
  check b "distinct private roots" false
    (E.equal (Pp.private_root t p1) (Pp.private_root t p2));
  (* same name, different subsystem: the flexibility *)
  check b "same spelling, different entity" false
    (E.equal (Pp.resolve t ~as_:p1 "/fs/bin/tool")
       (Pp.resolve t ~as_:p2 "/fs/bin/tool"))

let test_arranged_coherence () =
  let st, t = fixture () in
  (* Solution II: arrange both namespaces identically. *)
  let attach = [ ("fs1", "port1"); ("fs2", "port2") ] in
  let p1 = Pp.spawn ~attach t in
  let p2 = Pp.spawn ~attach t in
  let probes = Pp.namespace_probes t p1 ~max_depth:4 in
  let report =
    Coh.measure st (Pp.rule t) [ O.generated p1; O.generated p2 ] probes
  in
  check (Alcotest.float 1e-9) "coherent by arrangement" 1.0 (Coh.degree report)

let test_attach_detach () =
  let _, t = fixture () in
  let p = Pp.spawn t in
  check entity "nothing attached" E.undefined (Pp.resolve t ~as_:p "/fs/bin/tool");
  Pp.attach t p ~as_name:"fs" ~subsystem:"port1";
  check entity "attached"
    (Vfs.Fs.lookup (Pp.subsystem_fs t "port1") "/bin/tool")
    (Pp.resolve t ~as_:p "/fs/bin/tool");
  Pp.detach t p "fs";
  check entity "detached" E.undefined (Pp.resolve t ~as_:p "/fs/bin/tool")

let test_attach_dir () =
  let _, t = fixture () in
  let p = Pp.spawn t in
  let data = Vfs.Fs.lookup (Pp.subsystem_fs t "port2") "/data" in
  Pp.attach_dir t p ~as_name:"d" data;
  check entity "arbitrary dir attached"
    (Vfs.Fs.lookup (Pp.subsystem_fs t "port2") "/data/set1")
    (Pp.resolve t ~as_:p "/d/set1")

let test_remote_exec_both_properties () =
  let _, t = fixture () in
  let parent = Pp.spawn ~label:"parent" ~attach:[ ("fs", "port1") ] t in
  let child = Pp.remote_exec ~label:"child" t ~parent ~subsystem:"port2" in
  (* parameter coherence *)
  check entity "parent's name valid in child"
    (Pp.resolve t ~as_:parent "/fs/data/set1")
    (Pp.resolve t ~as_:child "/fs/data/set1");
  (* local access *)
  check entity "child reaches executing subsystem"
    (Vfs.Fs.lookup (Pp.subsystem_fs t "port2") "/tmp")
    (Pp.resolve t ~as_:child "/local/tmp")

let test_remote_exec_isolation () =
  let _, t = fixture () in
  let parent = Pp.spawn ~attach:[ ("fs", "port1") ] t in
  let child = Pp.remote_exec t ~parent ~subsystem:"port2" in
  (* The child's extra attachment is invisible to the parent... *)
  check entity "parent has no /local" E.undefined
    (Pp.resolve t ~as_:parent "/local/tmp");
  (* ...and post-fork changes do not propagate either way. *)
  Pp.attach t parent ~as_name:"new" ~subsystem:"port2";
  check entity "parent's later attach not in child" E.undefined
    (Pp.resolve t ~as_:child "/new/tmp");
  Pp.detach t child "fs";
  check b "parent keeps fs" true
    (E.is_defined (Pp.resolve t ~as_:parent "/fs/bin/tool"))

let test_custom_local_name () =
  let _, t = fixture () in
  let parent = Pp.spawn ~attach:[ ("fs", "port1") ] t in
  let child = Pp.remote_exec ~local_name:"site" t ~parent ~subsystem:"port2" in
  check b "custom local name" true
    (E.is_defined (Pp.resolve t ~as_:child "/site/tmp"))

let test_namespace_probes () =
  let _, t = fixture () in
  let p = Pp.spawn ~attach:[ ("fs", "port1") ] t in
  let probes = List.map N.to_string (Pp.namespace_probes t p ~max_depth:4) in
  check b "probe through attachment" true (List.mem "/fs/bin/tool" probes)

let test_build_errors () =
  let st = S.create () in
  match Pp.build ~subsystems:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no subsystems accepted"

let suite =
  [
    Alcotest.test_case "private roots" `Quick test_private_roots;
    Alcotest.test_case "arranged coherence" `Quick test_arranged_coherence;
    Alcotest.test_case "attach/detach" `Quick test_attach_detach;
    Alcotest.test_case "attach_dir" `Quick test_attach_dir;
    Alcotest.test_case "remote exec: both properties" `Quick
      test_remote_exec_both_properties;
    Alcotest.test_case "remote exec: isolation" `Quick
      test_remote_exec_isolation;
    Alcotest.test_case "custom local name" `Quick test_custom_local_name;
    Alcotest.test_case "namespace probes" `Quick test_namespace_probes;
    Alcotest.test_case "build errors" `Quick test_build_errors;
  ]

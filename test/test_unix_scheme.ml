(* Tests for Schemes.Unix_scheme — the single naming graph approach. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module U = Schemes.Unix_scheme
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let test_build_default_tree () =
  let st = S.create () in
  let t = U.build st in
  check b "bin/ls exists" true
    (E.is_defined (Vfs.Fs.lookup (U.fs t) "/bin/ls"));
  check b "root is tree" true
    (Naming.Graph.is_tree st ~root:(U.root t) ~ignore:(fun a ->
         N.atom_equal a N.self_atom || N.atom_equal a N.parent_atom))

let test_shared_root_coherence () =
  let st = S.create () in
  let t = U.build st in
  let a1 = U.spawn t and a2 = U.spawn ~cwd:"/home/alice" t in
  let occs = [ O.generated a1; O.generated a2 ] in
  let report =
    Coh.measure st (U.rule t) occs (U.absolute_probes t ~max_depth:4)
  in
  check (Alcotest.float 1e-9) "full coherence for '/'-names" 1.0
    (Coh.degree report)

let test_cwd_gives_flexibility () =
  let st = S.create () in
  let t = U.build st in
  let a1 = U.spawn ~cwd:"/home/alice" t in
  let a2 = U.spawn ~cwd:"/home/bob" t in
  (* The same relative name denotes different entities — that is the
     useful flexibility the paper notes. *)
  let r1 = U.resolve t ~as_:a1 "notes.txt" in
  ignore st;
  check b "a1 finds its file" true (E.is_defined r1);
  check b "a2 does not" true (E.is_undefined (U.resolve t ~as_:a2 "notes.txt"))

let test_chroot_breaks_coherence () =
  let st = S.create () in
  let t = U.build st in
  let a1 = U.spawn t in
  let a3 = U.spawn_chrooted ~root_path:"/usr" t in
  check entity "chrooted sees /usr as /" (Vfs.Fs.lookup (U.fs t) "/usr/bin/cc")
    (U.resolve t ~as_:a3 "/bin/cc");
  let occs = [ O.generated a1; O.generated a3 ] in
  check b "not coherent for /bin/ls" false
    (Coh.is_coherent st (U.rule t) occs (N.of_string "/bin/ls"))

let test_spawn_errors () =
  let st = S.create () in
  let t = U.build st in
  (match U.spawn ~cwd:"/bin/ls" t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "file cwd accepted");
  (match U.spawn_chrooted ~root_path:"/bin/ls" t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "file root accepted")

let test_chdir () =
  let st = S.create () in
  let t = U.build st in
  let a = U.spawn t in
  U.chdir t a "/home/alice";
  check b "relative now works" true
    (E.is_defined (U.resolve t ~as_:a "notes.txt"));
  (match U.chdir t a "/etc/passwd" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "chdir to file accepted");
  ignore st

let test_fork_coherence () =
  let st = S.create () in
  let t = U.build st in
  let parent = U.spawn ~cwd:"/home/alice" t in
  let child = U.fork t ~parent in
  (* Any file name the parent can pass resolves identically for the
     child. *)
  let probes = U.absolute_probes t ~max_depth:4 in
  let occs = [ O.generated parent; O.generated child ] in
  let report = Coh.measure st (U.rule t) occs probes in
  check (Alcotest.float 1e-9) "parent-child coherence" 1.0 (Coh.degree report);
  check entity "even relative names"
    (U.resolve t ~as_:parent "notes.txt")
    (U.resolve t ~as_:child "notes.txt")

let test_distributed_single_tree () =
  let st = S.create () in
  let t = U.build_distributed ~machines:[ "m1"; "m2" ] st in
  let a1 = U.spawn ~cwd:"/m1" t and a2 = U.spawn ~cwd:"/m2" t in
  (* Locus/V: all roots bound to the single tree root. *)
  let occs = [ O.generated a1; O.generated a2 ] in
  let report =
    Coh.measure st (U.rule t) occs (U.absolute_probes t ~max_depth:4)
  in
  check (Alcotest.float 1e-9) "global coherence" 1.0 (Coh.degree report);
  check b "m2's files visible to a1" true
    (E.is_defined (U.resolve t ~as_:a1 "/m2/bin/ls"))

let test_custom_tree () =
  let st = S.create () in
  let t = U.build ~tree:[ "only/file" ] st in
  check b "custom tree" true (E.is_defined (Vfs.Fs.lookup (U.fs t) "/only/file"));
  check b "no default content" true
    (E.is_undefined (Vfs.Fs.lookup (U.fs t) "/bin/ls"))

let suite =
  [
    Alcotest.test_case "build default tree" `Quick test_build_default_tree;
    Alcotest.test_case "shared-root coherence" `Quick
      test_shared_root_coherence;
    Alcotest.test_case "cwd flexibility" `Quick test_cwd_gives_flexibility;
    Alcotest.test_case "chroot breaks coherence" `Quick
      test_chroot_breaks_coherence;
    Alcotest.test_case "spawn errors" `Quick test_spawn_errors;
    Alcotest.test_case "chdir" `Quick test_chdir;
    Alcotest.test_case "fork coherence" `Quick test_fork_coherence;
    Alcotest.test_case "distributed single tree" `Quick
      test_distributed_single_tree;
    Alcotest.test_case "custom tree" `Quick test_custom_tree;
  ]

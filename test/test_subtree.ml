(* Tests for Vfs.Subtree: members, copy, relocate, attach. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Fs = Vfs.Fs
module Sub = Vfs.Subtree

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let project_fixture () =
  let st = S.create () in
  let fs = Fs.create st in
  Fs.populate fs [ "proj/lib/c0"; "proj/lib/c1"; "proj/src/s0"; "other/x" ];
  (st, fs, Fs.lookup fs "/proj")

let test_members () =
  let _, fs, proj = project_fixture () in
  (* proj, lib, c0, c1, src, s0 *)
  check i "member count" 6 (E.Set.cardinal (Sub.members fs proj));
  check i "size agrees" 6 (Sub.size fs proj);
  check b "excludes outside" false
    (E.Set.mem (Fs.lookup fs "/other/x") (Sub.members fs proj))

let test_copy_fresh_entities () =
  let st, fs, proj = project_fixture () in
  let clone = Sub.copy fs proj in
  check b "fresh root" false (E.equal clone proj);
  check i "same size" 6 (Sub.size fs clone);
  let orig_c0 = Fs.lookup fs "/proj/lib/c0" in
  let copy_c0 = Fs.resolve_from fs ~dir:clone (N.of_string "lib/c0") in
  check b "fresh leaf" false (E.equal orig_c0 copy_c0);
  check b "same content" true (S.data_of st copy_c0 = S.data_of st orig_c0)

let test_copy_rewires_dots () =
  let _, fs, proj = project_fixture () in
  let clone = Sub.copy fs proj in
  check entity "clone/. is clone" clone
    (Fs.resolve_from fs ~dir:clone (N.of_string "."));
  check entity "clone/.. is clone until attached" clone
    (Fs.resolve_from fs ~dir:clone (N.of_string ".."));
  let clone_lib = Fs.resolve_from fs ~dir:clone (N.of_string "lib") in
  check entity "inner .. points inside the copy" clone
    (Fs.resolve_from fs ~dir:clone_lib (N.of_string ".."))

let test_copy_keeps_external_edges () =
  let _, fs, proj = project_fixture () in
  (* proj cross-links a directory of another part of the environment; its
     '..' points elsewhere, so it is not a tree child and must stay
     shared under copying (Figure 5 cross-links). *)
  let outside_dir = Fs.lookup fs "/other" in
  Fs.link fs ~dir:proj "ext" outside_dir;
  check b "not a member" false (E.Set.mem outside_dir (Sub.members fs proj));
  let clone = Sub.copy fs proj in
  check entity "external directory kept (not copied)" outside_dir
    (Fs.resolve_from fs ~dir:clone (N.of_string "ext"))

let test_copy_preserves_sharing () =
  let st = S.create () in
  let fs = Fs.create st in
  Fs.populate fs [ "p/shared-file" ];
  let p = Fs.lookup fs "/p" in
  let f = Fs.lookup fs "/p/shared-file" in
  let d = Fs.mkdir fs ~under:p "d" in
  Fs.link fs ~dir:d "alias" f;
  let clone = Sub.copy fs p in
  let via_direct = Fs.resolve_from fs ~dir:clone (N.of_string "shared-file") in
  let via_alias = Fs.resolve_from fs ~dir:clone (N.of_string "d/alias") in
  check entity "internal sharing preserved" via_direct via_alias;
  check b "and it is a copy" false (E.equal via_direct f)

let test_relocate () =
  let _, fs, proj = project_fixture () in
  let root = Fs.root fs in
  let dst = Fs.mkdir_path fs "/mnt" in
  Sub.relocate fs ~src:root ~name:"proj" ~dst ();
  check entity "gone from old place" E.undefined (Fs.lookup fs "/proj");
  check entity "at new place" proj (Fs.lookup fs "/mnt/proj");
  check entity "'..' updated" dst
    (Fs.resolve_from fs ~dir:proj (N.of_string ".."))

let test_relocate_rename () =
  let _, fs, proj = project_fixture () in
  let root = Fs.root fs in
  let dst = Fs.mkdir_path fs "/mnt" in
  Sub.relocate fs ~src:root ~name:"proj" ~dst ~new_name:"tool" ();
  check entity "renamed" proj (Fs.lookup fs "/mnt/tool")

let test_relocate_errors () =
  let _, fs, _ = project_fixture () in
  let root = Fs.root fs in
  let dst = Fs.mkdir_path fs "/mnt" in
  (match Sub.relocate fs ~src:root ~name:"nope" ~dst () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "missing binding accepted");
  let file = Fs.lookup fs "/other/x" in
  (match Sub.relocate fs ~src:root ~name:"proj" ~dst:file () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "file destination accepted")

let test_attach_detach () =
  let _, fs, proj = project_fixture () in
  let mnt = Fs.mkdir_path fs "/mnt" in
  Sub.attach fs ~dir:mnt ~name:"alias" proj;
  check entity "attached" proj (Fs.lookup fs "/mnt/alias");
  check entity "still at original place" proj (Fs.lookup fs "/proj");
  (* '..' untouched: primary parent remains the root. *)
  check entity "primary parent kept" (Fs.root fs)
    (Fs.resolve_from fs ~dir:proj (N.of_string ".."));
  Sub.detach fs ~dir:mnt ~name:"alias";
  check entity "detached" E.undefined (Fs.lookup fs "/mnt/alias")

(* property: copying a randomly generated project preserves size and the
   multiset of file contents. *)
let prop_copy_preserves_shape =
  QCheck.Test.make ~name:"copy preserves size and contents" ~count:30
    QCheck.small_nat (fun seed ->
      let st = S.create () in
      let fs = Fs.create st in
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let project =
        Workload.Docgen.build fs ~at:"p" ~rng
          ~spec:
            {
              Workload.Docgen.n_components = 1 + (seed mod 4);
              n_sources = 1 + (seed mod 5);
              refs_per_source = 1 + (seed mod 3);
              nested = seed mod 2 = 0;
            }
      in
      let contents root =
        List.sort compare
          (List.filter_map
             (fun e -> S.data_of st e)
             (E.Set.elements (Sub.members fs root)))
      in
      let before = contents project in
      let clone = Sub.copy fs project in
      Sub.size fs clone = Sub.size fs project && contents clone = before)

let suite =
  [
    Alcotest.test_case "members" `Quick test_members;
    Alcotest.test_case "copy: fresh entities" `Quick test_copy_fresh_entities;
    Alcotest.test_case "copy: dots rewired" `Quick test_copy_rewires_dots;
    Alcotest.test_case "copy: external edges kept" `Quick
      test_copy_keeps_external_edges;
    Alcotest.test_case "copy: internal sharing preserved" `Quick
      test_copy_preserves_sharing;
    Alcotest.test_case "relocate" `Quick test_relocate;
    Alcotest.test_case "relocate with rename" `Quick test_relocate_rename;
    Alcotest.test_case "relocate errors" `Quick test_relocate_errors;
    Alcotest.test_case "attach/detach" `Quick test_attach_detach;
    QCheck_alcotest.to_alcotest prop_copy_preserves_shape;
  ]

(* Tests for Naming.Compiled and Naming.Engine — the packed-table
   resolution compiler and the engine abstraction over it. The contract
   under test is strict: every engine returns byte-identical results to
   the section-2 interpreter on every input, and incremental
   recompilation is indistinguishable from compiling from scratch. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module R = Naming.Resolver
module Cp = Naming.Compiled
module Eng = Naming.Engine

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs Schemes.Unix_scheme.default_tree;
  (st, fs, Vfs.Fs.root fs)

let unix_paths =
  [
    "/";
    "bin";
    "bin/ls";
    "usr/bin/cc";
    "etc/passwd";
    "tmp";
    "ghost";
    "no/such/thing";
    "bin/ls/through-a-file";
  ]

let test_matches_interpreter () =
  let st, _, root = fixture () in
  let c = Cp.compile st in
  List.iter
    (fun p ->
      let n = N.of_string p in
      check entity p (R.resolve_in st root n) (Cp.resolve_in c root n))
    unix_paths;
  (* resolution against a context value, and from a non-context *)
  let ctx = C.of_bindings [ (N.root_atom, root) ] in
  List.iter
    (fun p ->
      let n = N.of_string p in
      check entity (p ^ " (ctx)") (R.resolve st ctx n) (Cp.resolve c ctx n))
    unix_paths;
  let file = R.resolve_in st root (N.of_string "bin/ls") in
  check entity "resolve_in from a data object" E.undefined
    (Cp.resolve_in c file (N.of_string "x"))

let test_incremental_refresh () =
  let st, fs, root = fixture () in
  let c = Cp.compile st in
  ignore (Cp.resolve_in c root (N.of_string "bin/ls"));
  (* bind, unbind, create: each patch must be visible immediately *)
  let f = Vfs.Fs.add_file fs "/tmp/fresh" ~content:"x" in
  check entity "new file visible" f (Cp.resolve_in c root (N.of_string "tmp/fresh"));
  let bin = Vfs.Fs.lookup fs "/bin" in
  Vfs.Fs.unlink fs ~dir:bin "ls";
  check entity "unbind visible" E.undefined
    (Cp.resolve_in c root (N.of_string "bin/ls"));
  let d = Vfs.Fs.mkdir_path fs "/tmp/sub" in
  let g = Vfs.Fs.add_file fs "/tmp/sub/g" ~content:"y" in
  check entity "new dir walkable" g
    (Cp.resolve_in c root (N.of_string "tmp/sub/g"));
  check entity "new dir itself" d (Cp.resolve_in c root (N.of_string "tmp/sub"));
  let st_stats = Cp.stats c in
  check b "patched incrementally, not recompiled" true
    (st_stats.Cp.full_compiles = 1 && st_stats.Cp.patches >= 3)

(* Promotion and demotion: an entity's context-object-hood can change
   after parents already hold packed references to it. *)
let test_promotion_demotion () =
  let st = S.create () in
  let root = S.create_context_object ~label:"root" st in
  let o = S.create_object ~label:"o" ~state:(S.Data "plain") st in
  S.bind st ~dir:root (N.atom "o") o;
  let c = Cp.compile st in
  check entity "leaf resolves" o (Cp.resolve_in c root (N.of_string "o"));
  check entity "leaf blocks descent" E.undefined
    (Cp.resolve_in c root (N.of_string "o/x"));
  (* promote: o becomes a context object *)
  let x = S.create_object ~label:"x" st in
  S.set_obj_state st o (S.Context (C.of_bindings [ (N.atom "x", x) ]));
  check entity "promoted: descent works" x
    (Cp.resolve_in c root (N.of_string "o/x"));
  (* demote: o back to data; the parent table is untouched but the walk
     must fail again *)
  S.set_obj_state st o (S.Data "plain again");
  check entity "demoted: descent blocked" E.undefined
    (Cp.resolve_in c root (N.of_string "o/x"));
  check entity "demoted: leaf still resolves" o
    (Cp.resolve_in c root (N.of_string "o"))

let test_trace_parity () =
  let st, _, root = fixture () in
  let c = Cp.compile st in
  let ctx = C.of_bindings [ (N.root_atom, root) ] in
  let b1 = R.create_buffer () and b2 = R.create_buffer () in
  List.iter
    (fun p ->
      let n = N.of_string ("/" ^ p) in
      let e1 = R.resolve_trace_into b1 st ctx n in
      let e2 = Cp.resolve_trace_into b2 c ctx n in
      check entity (p ^ " result") e1 e2;
      check b (p ^ " trace") true (R.buffer_trace b1 = R.buffer_trace b2))
    [ "bin/ls"; "usr/bin/cc"; "nope"; "bin/ls/x"; "usr/nope/cc" ]

let test_stats_shape () =
  let st, _, _ = fixture () in
  let c = Cp.compile st in
  let s = Cp.stats c in
  check i "one node per context object" (List.length (S.context_objects st))
    s.Cp.nodes;
  let bindings =
    List.fold_left
      (fun acc e ->
        match S.context_of st e with
        | Some ctx -> acc + C.cardinal ctx
        | None -> acc)
      0 (S.context_objects st)
  in
  check i "one occupied cell per binding" bindings s.Cp.bindings;
  check b "tables at most half full" true (s.Cp.table_cells >= 2 * s.Cp.bindings)

(* Engine selection and the NAMING_ENGINE variable. *)
let test_engine_select () =
  let st, _, _ = fixture () in
  let cache = Naming.Cache.create st in
  (* env-dependent defaults only checked when NAMING_ENGINE is unset, so
     the suite still passes when CI re-runs it under another engine *)
  (match Eng.env_kind () with
  | Some _ -> ()
  | None ->
      check Alcotest.string "default interpreted" "interpreted"
        (Eng.label (Eng.of_env st));
      check Alcotest.string "explicit default" "cached"
        (Eng.label (Eng.of_env ~default:`Cached st));
      check Alcotest.string "cache wraps" "cached"
        (Eng.label (Eng.select ~cache ~default:`Interpreted st)));
  let engine = Eng.create `Compiled st in
  check Alcotest.string "explicit engine wins" "compiled"
    (Eng.label (Eng.select ~cache ~engine ~default:`Interpreted st))

(* ------------------------------------------------------------------ *)
(* Parity across every sample scheme.                                  *)

let sample_worlds () =
  List.filter_map
    (fun scheme ->
      Option.map (fun w -> (scheme, w)) (Harness.Sample.world scheme))
    Harness.Sample.schemes

let test_sample_scheme_parity () =
  List.iter
    (fun (scheme, w) ->
      let { Harness.Sample.store; ctx; rule = _; activities = _ } = w in
      let probes = Harness.Sample.probes w in
      check b (scheme ^ " has probes") true (probes <> []);
      let c = Cp.compile store in
      List.iter
        (fun n ->
          check entity
            (Printf.sprintf "%s: %s" scheme (N.to_string n))
            (R.resolve store ctx n) (Cp.resolve c ctx n))
        probes)
    (sample_worlds ())

(* Coherence verdicts must be engine-independent, sequentially and under
   the NAMING_JOBS fan-out (the CI legs run this suite at jobs 1 and 4). *)
let test_sample_scheme_verdict_parity () =
  List.iter
    (fun (scheme, w) ->
      let { Harness.Sample.store; ctx = _; rule; activities } = w in
      let probes = Harness.Sample.probes w in
      let occs = List.map Naming.Occurrence.generated activities in
      let via kind =
        Naming.Coherence.classify ~engine:(Eng.create kind store) store rule
          occs probes
      in
      let interp = via `Interpreted in
      check b (scheme ^ ": compiled = interpreted") true
        (via `Compiled = interp);
      check b (scheme ^ ": cached = interpreted") true (via `Cached = interp))
    (sample_worlds ())

(* ------------------------------------------------------------------ *)
(* Properties: random worlds, random mutation journals.                *)

(* A random tree world (same shape as the resolver property). *)
let build_world seed =
  let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
  let st = S.create () in
  let root = S.create_context_object ~label:"root" st in
  S.bind st ~dir:root N.root_atom root;
  let dirs = ref [ root ] in
  let files = ref [] in
  for k = 0 to 24 do
    let parent = Dsim.Rng.pick rng !dirs in
    if Dsim.Rng.bool rng 0.5 then begin
      let d = S.create_context_object st in
      S.bind st ~dir:parent (N.atom (Printf.sprintf "d%d" k)) d;
      S.bind st ~dir:d N.parent_atom parent;
      dirs := d :: !dirs
    end
    else begin
      let f = S.create_object st in
      S.bind st ~dir:parent (N.atom (Printf.sprintf "f%d" k)) f;
      files := f :: !files
    end
  done;
  (rng, st, root, dirs, files)

let random_name rng =
  let atoms = [ "d1"; "d3"; "d5"; "f2"; "f4"; ".."; "ghost" ] in
  let len = 1 + Dsim.Rng.int rng 5 in
  N.of_atoms (List.init len (fun _ -> N.atom (Dsim.Rng.pick rng atoms)))

let random_mutation rng st dirs files k =
  match Dsim.Rng.int rng 4 with
  | 0 ->
      let d = S.create_context_object st in
      S.bind st ~dir:(Dsim.Rng.pick rng !dirs) (N.atom (Printf.sprintf "n%d" k)) d;
      dirs := d :: !dirs
  | 1 ->
      let f = S.create_object st in
      S.bind st ~dir:(Dsim.Rng.pick rng !dirs) (N.atom (Printf.sprintf "m%d" k)) f;
      files := f :: !files
  | 2 -> (
      let d = Dsim.Rng.pick rng !dirs in
      match S.context_of st d with
      | Some ctx when not (C.is_empty ctx) ->
          let a, _ = Dsim.Rng.pick rng (C.bindings ctx) in
          S.unbind st ~dir:d a
      | _ -> ())
  | _ -> (
      (* flip an object between data and (empty) context state *)
      match !files with
      | [] -> ()
      | _ -> (
          let f = Dsim.Rng.pick rng !files in
          match S.obj_state st f with
          | Some (S.Data _) -> S.set_obj_state st f (S.Context C.empty)
          | Some (S.Context _) -> S.set_obj_state st f (S.Data "flipped")
          | None -> ()))

(* Compiled (incrementally refreshed) ≡ interpreter under random
   interleavings of resolutions and mutations. *)
let prop_compiled_transparent =
  QCheck.Test.make ~name:"compiled = interpreter under mutation" ~count:40
    QCheck.small_nat (fun seed ->
      let rng, st, root, dirs, files = build_world seed in
      let c = Cp.compile st in
      let ok = ref true in
      for k = 0 to 120 do
        if Dsim.Rng.bool rng 0.3 then random_mutation rng st dirs files k
        else begin
          let n = random_name rng in
          let plain = R.resolve_in st root n in
          if not (E.equal (Cp.resolve_in c root n) plain) then ok := false
        end
      done;
      !ok)

(* After an arbitrary bind/unbind journal, the incrementally patched
   tables answer exactly like a from-scratch compile — on every name,
   and with the same live-table statistics. *)
let prop_patch_equals_recompile =
  QCheck.Test.make ~name:"incremental patch = full recompile" ~count:40
    QCheck.small_nat (fun seed ->
      let rng, st, root, dirs, files = build_world seed in
      let incremental = Cp.compile st in
      ignore (Cp.resolve_in incremental root (N.of_string "/"));
      for k = 0 to 60 do
        random_mutation rng st dirs files k
      done;
      Cp.refresh incremental;
      let fresh = Cp.compile st in
      let names = List.init 40 (fun _ -> random_name rng) in
      List.for_all
        (fun n ->
          E.equal (Cp.resolve_in incremental root n) (Cp.resolve_in fresh root n))
        names
      &&
      let si = Cp.stats incremental and sf = Cp.stats fresh in
      si.Cp.nodes = sf.Cp.nodes && si.Cp.bindings = sf.Cp.bindings)

(* The same equivalence across a journal long enough to overflow the
   store's change journal: refresh must survive the generation-scan
   fallback of [touched_since]. *)
let test_patch_survives_journal_overflow () =
  let rng, st, root, dirs, files = build_world 7 in
  let c = Cp.compile st in
  ignore (Cp.resolve_in c root (N.of_string "/"));
  let churn = S.create_object ~state:(S.Data "0") st in
  for k = 0 to 9000 do
    if k mod 500 = 0 then random_mutation rng st dirs files k
    else S.set_obj_state st churn (S.Data (string_of_int k))
  done;
  let fresh = Cp.compile st in
  let names = List.init 60 (fun _ -> random_name rng) in
  List.iter
    (fun n ->
      check entity (N.to_string n)
        (Cp.resolve_in fresh root n)
        (Cp.resolve_in c root n))
    names

(* Engine parity on random worlds: full verdict lists, all three
   engines, through the ?jobs fan-out when NAMING_JOBS asks for it. *)
let prop_engine_verdict_parity =
  QCheck.Test.make ~name:"engines agree on random-world verdicts" ~count:25
    QCheck.small_nat (fun seed ->
      let rng, st, root, dirs, files = build_world seed in
      for k = 0 to 30 do
        random_mutation rng st dirs files k
      done;
      let asg = Naming.Rule.Assignment.create () in
      let acts =
        List.map
          (fun k ->
            let a = S.create_activity st in
            let o =
              if k = 0 then root
              else
                S.create_context_object
                  ~ctx:(C.of_bindings [ (N.root_atom, Dsim.Rng.pick rng !dirs) ])
                  st
            in
            Naming.Rule.Assignment.set asg a o;
            a)
          [ 0; 1; 2 ]
      in
      let rule = Naming.Rule.of_activity asg in
      let occs = List.map Naming.Occurrence.generated acts in
      let probes = List.init 25 (fun _ -> random_name rng) in
      let via kind =
        Naming.Coherence.classify ~engine:(Eng.create kind st) st rule occs
          probes
      in
      let interp = via `Interpreted in
      via `Compiled = interp && via `Cached = interp)

(* Per-domain compiled snapshots: one snapshot per worker under the
   frozen store answers like the parent. *)
let test_snapshot_parity () =
  let st, _, root = fixture () in
  let c = Cp.compile st in
  let names = List.map N.of_string unix_paths in
  match Naming.Pool.get ~jobs:4 () with
  | None -> Alcotest.fail "no pool at jobs 4"
  | Some pool ->
      Cp.refresh c;
      let results =
        S.read_only st (fun () ->
            let results, _ =
              Naming.Pool.map_local pool
                ~local:(fun () -> Cp.snapshot c)
                (fun shard n -> Cp.resolve_in shard root n)
                names
            in
            results)
      in
      List.iter2
        (fun n r -> check entity (N.to_string n) (R.resolve_in st root n) r)
        names results

let suite =
  [
    Alcotest.test_case "matches the interpreter" `Quick test_matches_interpreter;
    Alcotest.test_case "incremental refresh" `Quick test_incremental_refresh;
    Alcotest.test_case "promotion / demotion" `Quick test_promotion_demotion;
    Alcotest.test_case "trace parity" `Quick test_trace_parity;
    Alcotest.test_case "stats shape" `Quick test_stats_shape;
    Alcotest.test_case "engine selection" `Quick test_engine_select;
    Alcotest.test_case "sample-scheme parity" `Quick test_sample_scheme_parity;
    Alcotest.test_case "sample-scheme verdict parity" `Quick
      test_sample_scheme_verdict_parity;
    Alcotest.test_case "patch survives journal overflow" `Quick
      test_patch_survives_journal_overflow;
    Alcotest.test_case "snapshot parity under pool" `Quick
      test_snapshot_parity;
    QCheck_alcotest.to_alcotest prop_compiled_transparent;
    QCheck_alcotest.to_alcotest prop_patch_equals_recompile;
    QCheck_alcotest.to_alcotest prop_engine_verdict_parity;
  ]

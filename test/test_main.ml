(* Aggregated test runner: one alcotest suite per library module group. *)

let () =
  Alcotest.run "coherent_naming"
    [
      ("name", Test_name.suite);
      ("entity", Test_entity.suite);
      ("context", Test_context.suite);
      ("store", Test_store.suite);
      ("occurrence", Test_occurrence.suite);
      ("resolver", Test_resolver.suite);
      ("graph", Test_graph.suite);
      ("rule", Test_rule.suite);
      ("coherence", Test_coherence.suite);
      ("replication", Test_replication.suite);
      ("codec", Test_codec.suite);
      ("lint", Test_lint.suite);
      ("cache", Test_cache.suite);
      ("compiled", Test_compiled.suite);
      ("rng", Test_rng.suite);
      ("engine", Test_engine.suite);
      ("network", Test_network.suite);
      ("rpc", Test_rpc.suite);
      ("nameserver", Test_nameserver.suite);
      ("chaos", Test_chaos.suite);
      ("leader", Test_leader.suite);
      ("sim-util", Test_sim_util.suite);
      ("fs", Test_fs.suite);
      ("subtree", Test_subtree.suite);
      ("pqid", Test_pqid.suite);
      ("process-env", Test_process_env.suite);
      ("unix-scheme", Test_unix_scheme.suite);
      ("newcastle", Test_newcastle.suite);
      ("shared-graph", Test_shared_graph.suite);
      ("dce", Test_dce.suite);
      ("crosslink", Test_crosslink.suite);
      ("per-process", Test_per_process.suite);
      ("embedded", Test_embedded.suite);
      ("pqid-scheme", Test_pqid_scheme.suite);
      ("pqid-model", Test_pqid_model.suite);
      ("jade", Test_jade.suite);
      ("federation", Test_federation.suite);
      ("exec-facility", Test_exec_facility.suite);
      ("diff", Test_diff.suite);
      ("workload", Test_workload.suite);
      ("script", Test_script.suite);
      ("harness", Test_harness.suite);
      ("worldgen", Test_worldgen.suite);
      ("integration", Test_integration.suite);
      ("analysis", Test_analysis.suite);
      ("flow", Test_flow.suite);
      ("cluster", Test_cluster.suite);
      ("explore", Test_explore.suite);
      ("pool", Test_pool.suite);
      ("ctl", Test_ctl.suite);
    ]

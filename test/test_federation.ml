(* Tests for Schemes.Federation — shared name spaces in limited scopes. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module F = Schemes.Federation

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let t =
    F.build
      ~orgs:
        [
          ("org1", F.default_org_tree ~users:[ "alice" ] ~services:[ "print" ]);
          ("org2", F.default_org_tree ~users:[ "bob" ] ~services:[ "auth" ]);
        ]
      st
  in
  (st, t)

let test_default_tree_layout () =
  let _, t = fixture () in
  let fs1 = F.org_fs t "org1" in
  check b "user home" true
    (E.is_defined (Vfs.Fs.lookup fs1 "/users/alice/doc/readme.txt"));
  check b "inbox dir" true
    (Vfs.Fs.kind fs1 (Vfs.Fs.lookup fs1 "/users/alice/inbox") = `Dir);
  check b "service" true (E.is_defined (Vfs.Fs.lookup fs1 "/services/print"));
  check b "no foreign user" true (E.is_undefined (Vfs.Fs.lookup fs1 "/users/bob"))

let test_common_name_different_meaning () =
  let _, t = fixture () in
  let p1 = F.spawn_in t ~org:"org1" in
  let p2 = F.spawn_in t ~org:"org2" in
  check b "/users differs" false
    (E.equal (F.resolve t ~as_:p1 "/users") (F.resolve t ~as_:p2 "/users"));
  check b "/services differs" false
    (E.equal (F.resolve t ~as_:p1 "/services") (F.resolve t ~as_:p2 "/services"))

let test_federate_and_map () =
  let _, t = fixture () in
  F.federate t ~from:"org1" ~to_:"org2";
  let p1 = F.spawn_in t ~org:"org1" in
  let p2 = F.spawn_in t ~org:"org2" in
  (* the foreign root is reachable under the org's name *)
  check entity "org2 root via /org2" (F.org_root t "org2")
    (F.resolve t ~as_:p1 "/org2");
  (* prefix mapping preserves meaning *)
  let n = N.of_string "/users/bob/doc/readme.txt" in
  let mapped = F.map_name t ~target_org:"org2" n in
  check Alcotest.string "mapped form" "/org2/users/bob/doc/readme.txt"
    (N.to_string mapped);
  check entity "same entity"
    (Schemes.Process_env.resolve (F.env t) ~as_:p2 n)
    (Schemes.Process_env.resolve (F.env t) ~as_:p1 mapped);
  (* federation is one-way unless done both ways *)
  check entity "org2 cannot see org1" E.undefined
    (F.resolve t ~as_:p2 "/org1")

let test_map_name_edge_cases () =
  let _, t = fixture () in
  let rel = N.of_string "users/bob" in
  check b "relative unchanged" true
    (N.equal rel (F.map_name t ~target_org:"org2" rel));
  check Alcotest.string "bare root" "/org2"
    (N.to_string (F.map_name t ~target_org:"org2" (N.of_string "/")));
  (match F.map_name t ~target_org:"ghost" (N.of_string "/users") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown org accepted")

let test_space_probes () =
  let _, t = fixture () in
  let users = F.space_probes t ~org:"org1" ~space:"users" ~max_depth:5 in
  check b "non-empty" true (users <> []);
  check b "all under /users" true
    (List.for_all
       (fun n -> N.is_prefix ~prefix:(N.of_string "/users") n)
       users);
  let p1 = F.spawn_in t ~org:"org1" in
  check b "all resolvable in-scope" true
    (List.for_all
       (fun n ->
         E.is_defined (Schemes.Process_env.resolve (F.env t) ~as_:p1 n))
       users)

let test_build_errors () =
  let st = S.create () in
  (match F.build ~orgs:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no orgs accepted");
  let _, t = fixture () in
  (match F.org_fs t "ghost" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown org accepted")

let suite =
  [
    Alcotest.test_case "default tree layout" `Quick test_default_tree_layout;
    Alcotest.test_case "common name, different meaning" `Quick
      test_common_name_different_meaning;
    Alcotest.test_case "federate and map" `Quick test_federate_and_map;
    Alcotest.test_case "map_name edge cases" `Quick test_map_name_edge_cases;
    Alcotest.test_case "space probes" `Quick test_space_probes;
    Alcotest.test_case "build errors" `Quick test_build_errors;
  ]

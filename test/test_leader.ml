(* Tests for the `Leader_log consistency tier — leader election, log
   replication, atomic multi-name actions, and failover.

   - chaos-level: the default fault schedule converges under leader
     mode, every transaction gets an accounted outcome, and the JSON is
     deterministic and jobs-invariant;
   - transaction semantics: bind_group and atomic_rename commit or
     abort as a unit;
   - acceptance: partition the leader off alone — the minority leader
     deposes itself, its uncommitted transaction aborts, and after the
     heal the majority history wins everywhere;
   - qcheck: under random seeded fault schedules, committed
     transactions are never lost and all replicas agree on one
     committed log (the leader-mode answer to NG201). *)

module En = Dsim.Engine
module Net = Dsim.Network
module Rpc = Dsim.Rpc
module Rng = Dsim.Rng
module Ns = Dsim.Nameserver
module Ch = Dsim.Chaos
module N = Naming.Name
module E = Naming.Entity

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let spec =
  {
    Ns.dirs = [ N.of_string "/a"; N.of_string "/a/b"; N.of_string "/c" ];
    leaves = [ ("k1", "one"); ("k2", "two"); ("k3", "three") ];
    links =
      [
        (N.of_string "/a/x", "k1");
        (N.of_string "/a/b/y", "k2");
        (N.of_string "/c/z", "k3");
      ];
  }

let probes = spec.Ns.dirs @ List.map fst spec.Ns.links
let leader_default = { Ch.default with Ch.mode = `Leader_log }

(* ------------------------------------------------------------------ *)
(* Chaos harness under leader mode.                                    *)

let test_leader_chaos_converges () =
  let r = Ch.run ~config:leader_default ~spec ~probes () in
  check b "replicas reconverged" true r.Ch.converged;
  check i "all writes issued" leader_default.Ch.writes r.Ch.writes_sent;
  check i "every txn accounted" r.Ch.writes_sent
    (r.Ch.txns_committed + r.Ch.txns_aborted + r.Ch.txns_unknown);
  (* the default schedule denies quorum for most of the write window —
     leader mode answers with unknowns where LWW would have acked;
     enough transactions must still commit to prove the path works *)
  check b "a good share of txns committed" true (r.Ch.txns_committed >= 5);
  check b "a leader got elected" true (r.Ch.ns.Ns.elections >= 1);
  check i "no LWW losses in leader mode" 0 r.Ch.ns.Ns.lww_losses;
  (* the cluster may commit transactions whose clients had already
     given up — so its commit count dominates the client-observed one *)
  check b "cluster commits dominate client-observed commits" true
    (r.Ch.ns.Ns.txns_committed >= r.Ch.txns_committed);
  check b "commit latency measured" true
    (r.Ch.txns_committed = 0 || r.Ch.latency_mean > 0.0)

let test_leader_json_deterministic_and_jobs_parity () =
  let j1 =
    Ch.to_json ~scheme:"t" (Ch.run ~config:leader_default ~spec ~probes ())
  in
  let j2 =
    Ch.to_json ~scheme:"t" (Ch.run ~config:leader_default ~spec ~probes ())
  in
  let j4 =
    Ch.to_json ~scheme:"t"
      (Ch.run ~jobs:4 ~config:leader_default ~spec ~probes ())
  in
  check Alcotest.string "same seed, same bytes" j1 j2;
  check Alcotest.string "jobs do not change the run" j1 j4

(* ------------------------------------------------------------------ *)
(* A direct cluster harness: build a leader-mode cluster, drive the
   client protocol by hand, and look inside the logs afterwards.       *)

type harness = {
  engine : En.t;
  net : (Ns.request, Ns.response) Rpc.message Net.t;
  cluster : Ns.t;
  ep : (Ns.request, Ns.response) Rpc.endpoint;
  cnode : Net.node_id;
  crng : Rng.t;
  observed : (int, [ `Committed | `Aborted ]) Hashtbl.t;
      (* tseq -> the outcome the CLIENT saw *)
}

let make_harness ?(drop = 0.0) ?(seed = 11L) ?(replicas = 3) () =
  let rng = Rng.create seed in
  let engine = En.create () in
  (* a tight LAN: replicas a millisecond-scale round trip apart, so the
     period-1.0 protocol timings below are comfortable *)
  let net =
    Net.create
      ~config:
        {
          Net.default_config with
          Net.drop_probability = drop;
          latency = 0.05;
          jitter = 0.01;
        }
      ~engine ~rng:(Rng.split rng) ()
  in
  let cluster =
    Ns.create ~mode:`Leader_log ~network:net ~rng:(Rng.split rng) ~replicas
      spec
  in
  let cnode = Net.add_node net ~label:"client" in
  let ep = Rpc.create net ~node:cnode ~port:9 () in
  {
    engine;
    net;
    cluster;
    ep;
    cnode;
    crng = Rng.split rng;
    observed = Hashtbl.create 16;
  }

let later h d f = ignore (En.schedule h.engine ~delay:d f)

(* The two-phase client protocol, compact: chase redirects, poll until
   decided, give up at [deadline_at] (leaves no record = unknown). *)
let drive h ~txn ~action ~deadline_at =
  let n = Ns.replicas h.cluster in
  let rec submit r =
    let left = deadline_at -. En.now h.engine in
    if left > 0.0 then
      Rpc.call_retry h.ep
        ~to_:(Ns.replica_address h.cluster r)
        ~timeout:1.0 ~rng:h.crng ~attempts:2 ~deadline:left
        (Ns.Submit { txn; action })
        ~on_reply:(function
          | Ok (Ns.Submitted _) -> poll r
          | Ok (Ns.Outcome_is o) -> note o r
          | Ok (Ns.Redirect (Some l)) when l <> r ->
              later h 0.25 (fun () -> submit l)
          | Ok (Ns.Redirect _) -> later h 1.0 (fun () -> submit ((r + 1) mod n))
          | Ok _ -> ()
          | Error (`Timeout | `Unavailable) ->
              later h 0.5 (fun () -> submit ((r + 1) mod n)))
  and poll r =
    let left = deadline_at -. En.now h.engine in
    if left > 0.0 then
      Rpc.call_retry h.ep
        ~to_:(Ns.replica_address h.cluster r)
        ~timeout:1.0 ~rng:h.crng ~attempts:2 ~deadline:left (Ns.Query txn)
        ~on_reply:(function
          | Ok (Ns.Outcome_is o) -> note o r
          | Ok (Ns.Redirect (Some l)) when l <> r ->
              later h 0.25 (fun () -> poll l)
          | Ok (Ns.Redirect _) -> later h 1.0 (fun () -> poll ((r + 1) mod n))
          | Ok _ -> ()
          | Error (`Timeout | `Unavailable) ->
              later h 0.5 (fun () -> poll ((r + 1) mod n)))
  and note o r =
    match o with
    | Ns.Committed -> Hashtbl.replace h.observed txn.Ns.tseq `Committed
    | Ns.Aborted _ -> Hashtbl.replace h.observed txn.Ns.tseq `Aborted
    | Ns.Pending -> later h 0.5 (fun () -> poll r)
  in
  submit 0

let submit_at h time tseq action =
  ignore
    (En.schedule h.engine ~delay:time (fun () ->
         drive h
           ~txn:{ Ns.client = 0; tseq }
           ~action
           ~deadline_at:(time +. 30.0)))

(* The client-visible writes in a committed log, in commit order. *)
let committed_binds log =
  List.concat_map
    (fun ((txn : Ns.txn_id), action) ->
      if txn.Ns.client < 0 then [] (* leader no-op *)
      else
        match action with
        | Ns.Bind_group binds -> List.map (fun bnd -> (txn.Ns.tseq, bnd)) binds
        | Ns.Atomic_rename _ -> [])
    log

(* ------------------------------------------------------------------ *)
(* Transaction semantics.                                              *)

let bind path atom target = (N.of_string path, N.atom atom, target)

let test_bind_group_atomic () =
  let h = make_harness () in
  Ns.start_anti_entropy ~period:1.0 ~timeout:1.0 h.cluster;
  (* good group: two binds land together *)
  submit_at h 6.0 1
    (Ns.Bind_group [ bind "/a" "p" (Some "k1"); bind "/c" "q" (Some "k3") ]);
  (* bad group: one unknown dir poisons the whole group *)
  submit_at h 9.0 2
    (Ns.Bind_group
       [ bind "/a" "r" (Some "k2"); bind "/nowhere" "s" (Some "k1") ]);
  ignore (En.run ~until:40.0 h.engine);
  Ns.stop_anti_entropy h.cluster;
  check b "cluster converged" true (Ns.converged h.cluster);
  check (Alcotest.option b) "txn 1 committed" (Some true)
    (Option.map (( = ) `Committed) (Hashtbl.find_opt h.observed 1));
  check (Alcotest.option b) "txn 2 aborted" (Some true)
    (Option.map (( = ) `Aborted) (Hashtbl.find_opt h.observed 2));
  let k1 = Option.get (Ns.leaf h.cluster "k1") in
  let k3 = Option.get (Ns.leaf h.cluster "k3") in
  for r = 0 to Ns.replicas h.cluster - 1 do
    check b "/a/p bound everywhere" true
      (E.equal k1 (Ns.resolve_at h.cluster r (N.of_string "/a/p")));
    check b "/c/q bound everywhere" true
      (E.equal k3 (Ns.resolve_at h.cluster r (N.of_string "/c/q")));
    (* atomicity: the good half of the aborted group did NOT land *)
    check b "aborted group left no trace" true
      (E.is_undefined (Ns.resolve_at h.cluster r (N.of_string "/a/r")))
  done

let test_atomic_rename () =
  let h = make_harness () in
  Ns.start_anti_entropy ~period:1.0 ~timeout:1.0 h.cluster;
  (* move the existing /a/x binding to /c/x2 *)
  submit_at h 6.0 1
    (Ns.Atomic_rename
       {
         src_path = N.of_string "/a";
         src_atom = N.atom "x";
         dst_path = N.of_string "/c";
         dst_atom = N.atom "x2";
       });
  (* renaming an unbound source aborts *)
  submit_at h 9.0 2
    (Ns.Atomic_rename
       {
         src_path = N.of_string "/a";
         src_atom = N.atom "ghost";
         dst_path = N.of_string "/c";
         dst_atom = N.atom "g2";
       });
  ignore (En.run ~until:40.0 h.engine);
  Ns.stop_anti_entropy h.cluster;
  check b "cluster converged" true (Ns.converged h.cluster);
  check (Alcotest.option b) "rename committed" (Some true)
    (Option.map (( = ) `Committed) (Hashtbl.find_opt h.observed 1));
  check (Alcotest.option b) "ghost rename aborted" (Some true)
    (Option.map (( = ) `Aborted) (Hashtbl.find_opt h.observed 2));
  let k1 = Option.get (Ns.leaf h.cluster "k1") in
  for r = 0 to Ns.replicas h.cluster - 1 do
    check b "source gone" true
      (E.is_undefined (Ns.resolve_at h.cluster r (N.of_string "/a/x")));
    check b "destination bound to the same leaf" true
      (E.equal k1 (Ns.resolve_at h.cluster r (N.of_string "/c/x2")))
  done

(* ------------------------------------------------------------------ *)
(* Acceptance: depose a minority leader; majority history wins.        *)

let test_minority_leader_deposed () =
  let h = make_harness ~seed:5L () in
  Ns.start_anti_entropy ~period:1.0 ~timeout:1.0 h.cluster;
  (* a committed write before the fault *)
  submit_at h 6.0 1 (Ns.Bind_group [ bind "/a" "before" (Some "k1") ]);
  let old_leader = ref (-1) in
  let orphan = { Ns.client = 7; tseq = 99 } in
  ignore
    (En.schedule h.engine ~delay:12.0 (fun () ->
         (* cut whoever leads off alone; the client stays with the
            majority *)
         let l = Option.value ~default:0 (Ns.leader_of h.cluster) in
         old_leader := l;
         let lnode = Ns.replica_node h.cluster l in
         let rest =
           List.filter
             (fun nd -> nd <> lnode)
             (List.init (Ns.replicas h.cluster) (Ns.replica_node h.cluster))
         in
         Net.partition h.net [ lnode ] (h.cnode :: rest);
         (* hand the deposed leader a transaction it can append but
            never commit: inject it server-side, as a client on the
            minority side would *)
         match
           Ns.write_local h.cluster l
             (Ns.Submit
                {
                  txn = orphan;
                  action = Ns.Bind_group [ bind "/a" "orphan" (Some "k2") ];
                })
         with
         | Ns.Submitted _ -> ()
         | _ -> Alcotest.fail "minority leader refused the append"));
  (* while the partition holds, the majority elects and commits *)
  submit_at h 18.0 2 (Ns.Bind_group [ bind "/c" "during" (Some "k3") ]);
  ignore
    (En.schedule h.engine ~delay:26.0 (fun () ->
         (* lease expired well before the heal: the minority leader has
            deposed itself *)
         let l = !old_leader in
         check b "old leader stepped down" true
           (Ns.leader_of h.cluster <> Some l || Ns.term_at h.cluster l > 0);
         check b "majority elected a new leader" true
           (match Ns.leader_of h.cluster with
           | Some l' -> l' <> l
           | None -> false);
         Net.heal h.net));
  ignore (En.run ~until:60.0 h.engine);
  Ns.stop_anti_entropy h.cluster;
  check b "cluster reconverged after heal" true (Ns.converged h.cluster);
  check (Alcotest.option b) "pre-fault txn committed" (Some true)
    (Option.map (( = ) `Committed) (Hashtbl.find_opt h.observed 1));
  check (Alcotest.option b) "majority-side txn committed" (Some true)
    (Option.map (( = ) `Committed) (Hashtbl.find_opt h.observed 2));
  (* the orphaned append was erased by log repair: it is in nobody's
     committed log, its binding is nowhere, and the leader's sticky
     answer for it is Aborted *)
  let logs =
    List.init (Ns.replicas h.cluster) (Ns.committed_log h.cluster)
  in
  List.iteri
    (fun r log ->
      check b "logs agree" true (log = List.nth logs 0);
      check b "orphan not in any committed log" false
        (List.exists (fun (txn, _) -> txn = orphan) log);
      check b "orphan binding nowhere" true
        (E.is_undefined (Ns.resolve_at h.cluster r (N.of_string "/a/orphan")));
      check b "majority write everywhere" false
        (E.is_undefined (Ns.resolve_at h.cluster r (N.of_string "/c/during"))))
    logs;
  let leader = Option.get (Ns.leader_of h.cluster) in
  (match Ns.write_local h.cluster leader (Ns.Query orphan) with
  | Ns.Outcome_is (Ns.Aborted _) -> ()
  | _ -> Alcotest.fail "leader did not sticky-abort the orphan");
  check (Alcotest.option b) "abort recorded at the leader" (Some true)
    (Option.map
       (fun o -> match o with Ns.Aborted _ -> true | _ -> false)
       (Ns.outcome_at h.cluster leader orphan))

(* ------------------------------------------------------------------ *)
(* qcheck: no committed transaction is ever lost, logs always agree.   *)

let prop_no_lost_commits =
  QCheck.Test.make ~name:"leader log: commits survive any seeded schedule"
    ~count:12 QCheck.small_nat (fun seed ->
      let srng = Rng.create (Int64.of_int ((seed * 7919) + 13)) in
      let drop = Rng.pick srng [ 0.0; 0.05; 0.15 ] in
      let h =
        make_harness ~drop ~seed:(Int64.of_int ((seed * 31) + 7)) ()
      in
      (* random fault: either a partition window or a crash window *)
      (if Rng.bool srng 0.7 then begin
         let at = 4.0 +. Rng.float srng 8.0 in
         let len = 3.0 +. Rng.float srng 8.0 in
         let victim = Rng.int srng 3 in
         let vnode = Ns.replica_node h.cluster victim in
         let rest =
           List.filter
             (fun nd -> nd <> vnode)
             (List.init 3 (Ns.replica_node h.cluster))
         in
         if Rng.bool srng 0.5 then begin
           ignore
             (En.schedule h.engine ~delay:at (fun () ->
                  Net.partition h.net [ vnode ] (h.cnode :: rest)));
           ignore
             (En.schedule h.engine ~delay:(at +. len) (fun () ->
                  Net.heal h.net))
         end
         else begin
           ignore
             (En.schedule h.engine ~delay:at (fun () ->
                  Net.set_node_up h.net vnode false));
           ignore
             (En.schedule h.engine ~delay:(at +. len) (fun () ->
                  Net.set_node_up h.net vnode true))
         end
       end);
      Ns.start_anti_entropy ~period:1.0 ~timeout:1.0 h.cluster;
      let writes =
        List.init 8 (fun k ->
            let path = Rng.pick srng [ "/a"; "/a/b"; "/c" ] in
            let atom = Printf.sprintf "w%d" k in
            let target = Rng.pick srng [ Some "k1"; Some "k2"; Some "k3" ] in
            (1.0 +. Rng.float srng 16.0, k + 1, (path, atom, target)))
      in
      List.iter
        (fun (time, tseq, (path, atom, target)) ->
          submit_at h time tseq (Ns.Bind_group [ bind path atom target ]))
        writes;
      ignore (En.run ~until:120.0 h.engine);
      Ns.stop_anti_entropy h.cluster;
      if not (Ns.converged h.cluster) then
        QCheck.Test.fail_reportf "seed %d: did not reconverge" seed;
      let logs = List.init 3 (Ns.committed_log h.cluster) in
      List.iter
        (fun log ->
          if log <> List.nth logs 0 then
            QCheck.Test.fail_reportf "seed %d: committed logs disagree" seed)
        logs;
      let binds = committed_binds (List.nth logs 0) in
      (* every commit the client observed is in the common log *)
      Hashtbl.iter
        (fun tseq outcome ->
          if
            outcome = `Committed
            && not (List.exists (fun (ts, _) -> ts = tseq) binds)
          then
            QCheck.Test.fail_reportf "seed %d: committed txn %d lost" seed
              tseq)
        h.observed;
      (* single-name histories are linearizable: the last committed
         write to each name is the value every replica resolves *)
      let last = Hashtbl.create 8 in
      List.iter
        (fun (_, (path, atom, target)) ->
          Hashtbl.replace last (N.to_string path, N.atom_to_string atom)
            target)
        binds;
      Hashtbl.iter
        (fun (path, atom) target ->
          let full = N.of_string (path ^ "/" ^ atom) in
          for r = 0 to 2 do
            let got = Ns.resolve_at h.cluster r full in
            let ok =
              match target with
              | None -> E.is_undefined got
              | Some key ->
                  E.equal (Option.get (Ns.leaf h.cluster key)) got
            in
            if not ok then
              QCheck.Test.fail_reportf "seed %d: %s/%s wrong at replica %d"
                seed path atom r
          done)
        last;
      true)

let suite =
  [
    Alcotest.test_case "chaos: leader mode converges" `Quick
      test_leader_chaos_converges;
    Alcotest.test_case "chaos: leader json deterministic, jobs parity" `Quick
      test_leader_json_deterministic_and_jobs_parity;
    Alcotest.test_case "bind_group commits or aborts as a unit" `Quick
      test_bind_group_atomic;
    Alcotest.test_case "atomic_rename moves a binding" `Quick
      test_atomic_rename;
    Alcotest.test_case "minority leader deposed, majority history wins"
      `Quick test_minority_leader_deposed;
    QCheck_alcotest.to_alcotest prop_no_lost_commits;
  ]

(* Tests for Naming.Name: atoms, compound names, parsing, prefixes. *)

module N = Naming.Name

let check = Alcotest.check
let s = Alcotest.string
let b = Alcotest.bool

let test_atom_validation () =
  Alcotest.check_raises "empty atom" (N.Invalid "empty atom") (fun () ->
      ignore (N.atom ""));
  (match N.atom "a/b" with
  | exception N.Invalid _ -> ()
  | _ -> Alcotest.fail "atom with '/' accepted");
  check s "root atom ok" "/" (N.atom_to_string (N.atom "/"));
  check s "dot ok" "." (N.atom_to_string (N.atom "."));
  check s "dotdot ok" ".." (N.atom_to_string (N.atom ".."));
  check s "unicode-ish ok" "café" (N.atom_to_string (N.atom "café"))

let test_of_string_absolute () =
  let n = N.of_string "/a/b/c" in
  check b "absolute" true (N.is_absolute n);
  check Alcotest.int "length includes root" 4 (N.length n);
  check s "roundtrip" "/a/b/c" (N.to_string n)

let test_of_string_relative () =
  let n = N.of_string "a/b" in
  check b "relative" false (N.is_absolute n);
  check s "roundtrip" "a/b" (N.to_string n)

let test_of_string_slash_collapse () =
  check s "collapsed" "/a/b" (N.to_string (N.of_string "//a///b/"));
  check s "lone slash" "/" (N.to_string (N.of_string "/"))

let test_of_string_errors () =
  (match N.of_string "" with
  | exception N.Invalid _ -> ()
  | _ -> Alcotest.fail "empty accepted")

let test_of_atoms_empty () =
  match N.of_atoms [] with
  | exception N.Invalid _ -> ()
  | _ -> Alcotest.fail "empty compound name accepted"

let test_head_tail_last () =
  let n = N.of_string "a/b/c" in
  check s "head" "a" (N.atom_to_string (N.head n));
  check s "last" "c" (N.atom_to_string (N.last n));
  (match N.tail n with
  | Some t -> check s "tail" "b/c" (N.to_string t)
  | None -> Alcotest.fail "tail missing");
  check b "singleton tail none" true (N.tail (N.of_string "x") = None)

let test_append_snoc_cons () =
  let a = N.of_string "a/b" and c = N.of_string "c/d" in
  check s "append" "a/b/c/d" (N.to_string (N.append a c));
  check s "snoc" "a/b/z" (N.to_string (N.snoc a (N.atom "z")));
  check s "cons" "z/a/b" (N.to_string (N.cons (N.atom "z") a))

let test_prepend_root () =
  check s "prepends" "/a" (N.to_string (N.prepend_root (N.of_string "a")));
  check s "idempotent" "/a" (N.to_string (N.prepend_root (N.of_string "/a")))

let test_prefix_ops () =
  let p = N.of_string "/a/b" and n = N.of_string "/a/b/c/d" in
  check b "is_prefix" true (N.is_prefix ~prefix:p n);
  check b "not prefix" false (N.is_prefix ~prefix:(N.of_string "/a/c") n);
  (match N.drop_prefix ~prefix:p n with
  | Some rest -> check s "drop" "c/d" (N.to_string rest)
  | None -> Alcotest.fail "drop_prefix failed");
  check b "drop equal is None" true (N.drop_prefix ~prefix:n n = None);
  check b "prefix longer than name" true
    (N.drop_prefix ~prefix:n p = None)

let test_parent () =
  (match N.parent (N.of_string "/a/b") with
  | Some p -> check s "parent" "/a" (N.to_string p)
  | None -> Alcotest.fail "no parent");
  check b "single atom has no parent" true (N.parent (N.of_string "x") = None)

let test_normalize () =
  let norm str = N.to_string (N.normalize (N.of_string str)) in
  check s "dots" "a/c" (norm "a/./b/../c");
  check s "leading dotdot kept (relative)" "../a" (norm "../a");
  check s "leading dotdot dropped (absolute)" "/a" (norm "/../a");
  check s "all dots" "." (norm "././.");
  check s "root stays" "/" (norm "/.");
  check s "stacked dotdots" "../../x" (norm "../../x")

let test_relative_to () =
  let rel base n =
    N.to_string (N.relative_to ~base:(N.of_string base) (N.of_string n))
  in
  check s "sibling" "../c" (rel "/a/b" "/a/c");
  check s "child" "c/d" (rel "/a/b" "/a/b/c/d");
  check s "cousin" "../../x/y" (rel "/a/b/c" "/a/x/y");
  check s "same" "." (rel "/a/b" "/a/b");
  check s "relative names too" "../c" (rel "a/b" "a/c");
  check s "normalizes first" "../c" (rel "/a/./b" "/a/c");
  (match N.relative_to ~base:(N.of_string "/a") (N.of_string "a") with
  | exception N.Invalid _ -> ()
  | _ -> Alcotest.fail "mixed absolute/relative accepted")

let test_compare_equal () =
  check b "equal" true (N.equal (N.of_string "/a/b") (N.of_string "/a/b"));
  check b "unequal" false (N.equal (N.of_string "/a") (N.of_string "a"));
  check Alcotest.int "compare refl" 0
    (N.compare (N.of_string "x/y") (N.of_string "x/y"))

let test_collections () =
  let m = N.Map.singleton (N.of_string "/a") 1 in
  check b "map mem" true (N.Map.mem (N.of_string "/a") m);
  let set = N.Set.of_list [ N.of_string "/a"; N.of_string "/a"; N.of_string "b" ] in
  check Alcotest.int "set dedup" 2 (N.Set.cardinal set)

(* --- properties ------------------------------------------------------ *)

let atom_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ rest)
      (pair (char_range 'a' 'z') (string_size ~gen:(char_range 'a' 'z') (0 -- 5))))

let name_gen =
  QCheck.Gen.(
    map
      (fun (abs, atoms) ->
        let atoms = if atoms = [] then [ "x" ] else atoms in
        if abs then N.of_strings ("/" :: atoms) else N.of_strings atoms)
      (pair bool (list_size (1 -- 6) atom_gen)))

let arbitrary_name = QCheck.make ~print:N.to_string name_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string n) = n" ~count:500
    arbitrary_name (fun n -> N.equal (N.of_string (N.to_string n)) n)

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:500 arbitrary_name
    (fun n -> N.equal (N.normalize n) (N.normalize (N.normalize n)))

let prop_append_length =
  QCheck.Test.make ~name:"length (append a b) = length a + length b" ~count:200
    (QCheck.pair arbitrary_name arbitrary_name) (fun (a, b) ->
      N.length (N.append a b) = N.length a + N.length b)

let prop_drop_prefix_inverse =
  QCheck.Test.make ~name:"append p (drop_prefix p n) = n" ~count:500
    (QCheck.pair arbitrary_name arbitrary_name) (fun (p, n) ->
      match N.drop_prefix ~prefix:p n with
      | None -> true
      | Some rest -> N.equal (N.append p rest) n)

let prop_relative_to_rebuilds =
  (* appending base and the relative name, then normalizing, rebuilds n *)
  QCheck.Test.make ~name:"normalize (base / relative_to base n) = normalize n"
    ~count:300
    (QCheck.pair arbitrary_name arbitrary_name)
    (fun (base, n) ->
      QCheck.assume (N.is_absolute base = N.is_absolute n);
      let r = N.relative_to ~base n in
      N.equal (N.normalize (N.append base r)) (N.normalize n))

let prop_is_prefix_of_append =
  QCheck.Test.make ~name:"is_prefix a (append a b)" ~count:500
    (QCheck.pair arbitrary_name arbitrary_name) (fun (a, b) ->
      N.is_prefix ~prefix:a (N.append a b))

let arbitrary_atom_string = QCheck.make ~print:Fun.id atom_gen

(* Atoms are interned symbols; the string form must survive the round
   trip and re-interning must yield the same symbol. *)
let prop_atom_intern_roundtrip =
  QCheck.Test.make ~name:"atom interning round-trips of_string/to_string"
    ~count:500 arbitrary_atom_string (fun s ->
      let a = N.atom s in
      String.equal (N.atom_to_string a) s
      && N.atom_equal a (N.atom (N.atom_to_string a))
      && N.atom_id a = N.atom_id (N.atom s))

let sign c = compare c 0

(* Interning must not change any observable ordering: atom comparison is
   still string comparison of the spelt-out forms... *)
let prop_atom_compare_is_string_compare =
  QCheck.Test.make ~name:"atom_compare = String.compare on string forms"
    ~count:500
    (QCheck.pair arbitrary_atom_string arbitrary_atom_string)
    (fun (s1, s2) ->
      sign (N.atom_compare (N.atom s1) (N.atom s2))
      = sign (String.compare s1 s2))

(* ... and name comparison is still lexicographic over those forms. *)
let prop_name_compare_is_string_order =
  QCheck.Test.make ~name:"Name.compare = lexicographic string comparison"
    ~count:500
    (QCheck.pair arbitrary_name arbitrary_name)
    (fun (a, b) ->
      let strs n = List.map N.atom_to_string (N.atoms n) in
      sign (N.compare a b) = sign (List.compare String.compare (strs a) (strs b)))

let suite =
  [
    Alcotest.test_case "atom validation" `Quick test_atom_validation;
    Alcotest.test_case "of_string absolute" `Quick test_of_string_absolute;
    Alcotest.test_case "of_string relative" `Quick test_of_string_relative;
    Alcotest.test_case "slash collapsing" `Quick test_of_string_slash_collapse;
    Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
    Alcotest.test_case "of_atoms empty" `Quick test_of_atoms_empty;
    Alcotest.test_case "head/tail/last" `Quick test_head_tail_last;
    Alcotest.test_case "append/snoc/cons" `Quick test_append_snoc_cons;
    Alcotest.test_case "prepend_root" `Quick test_prepend_root;
    Alcotest.test_case "prefix ops" `Quick test_prefix_ops;
    Alcotest.test_case "parent" `Quick test_parent;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "relative_to" `Quick test_relative_to;
    Alcotest.test_case "compare/equal" `Quick test_compare_equal;
    Alcotest.test_case "maps and sets" `Quick test_collections;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_append_length;
    QCheck_alcotest.to_alcotest prop_drop_prefix_inverse;
    QCheck_alcotest.to_alcotest prop_is_prefix_of_append;
    QCheck_alcotest.to_alcotest prop_relative_to_rebuilds;
    QCheck_alcotest.to_alcotest prop_atom_intern_roundtrip;
    QCheck_alcotest.to_alcotest prop_atom_compare_is_string_compare;
    QCheck_alcotest.to_alcotest prop_name_compare_is_string_order;
  ]

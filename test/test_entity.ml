(* Tests for Naming.Entity. *)

module E = Naming.Entity

let check = Alcotest.check
let b = Alcotest.bool

let test_predicates () =
  check b "undefined" true (E.is_undefined E.undefined);
  check b "activity" true (E.is_activity (E.Activity 1));
  check b "object" true (E.is_object (E.Object 1));
  check b "defined activity" true (E.is_defined (E.Activity 0));
  check b "undefined not defined" false (E.is_defined E.undefined);
  check b "activity is not object" false (E.is_object (E.Activity 1))

let test_id () =
  check Alcotest.int "activity id" 7 (E.id (E.Activity 7));
  check Alcotest.int "object id" 9 (E.id (E.Object 9));
  Alcotest.check_raises "undefined id"
    (Invalid_argument "Entity.id: undefined entity") (fun () ->
      ignore (E.id E.undefined))

let test_equal_compare () =
  check b "same activity" true (E.equal (E.Activity 3) (E.Activity 3));
  check b "activity vs object same id" false (E.equal (E.Activity 3) (E.Object 3));
  check b "undefined eq" true (E.equal E.undefined E.undefined);
  check b "compare distinguishes kinds" true
    (E.compare (E.Activity 3) (E.Object 3) <> 0);
  check Alcotest.int "compare refl" 0 (E.compare (E.Object 5) (E.Object 5))

let test_hash_distinct () =
  check b "hash distinguishes kind" true
    (E.hash (E.Activity 4) <> E.hash (E.Object 4));
  check b "hash stable" true (E.hash (E.Object 4) = E.hash (E.Object 4))

let test_to_string () =
  check Alcotest.string "activity" "a3" (E.to_string (E.Activity 3));
  check Alcotest.string "object" "o3" (E.to_string (E.Object 3));
  check Alcotest.string "bottom" "⊥" (E.to_string E.undefined)

let test_collections () =
  let set = E.Set.of_list [ E.Activity 1; E.Object 1; E.Activity 1 ] in
  check Alcotest.int "set distinguishes kinds" 2 (E.Set.cardinal set);
  let tbl = E.Tbl.create 4 in
  E.Tbl.replace tbl (E.Object 2) "x";
  check b "tbl find" true (E.Tbl.find_opt tbl (E.Object 2) = Some "x");
  check b "tbl kind-sensitive" true (E.Tbl.find_opt tbl (E.Activity 2) = None);
  let m = E.Map.add (E.Activity 8) 1 E.Map.empty in
  check b "map mem" true (E.Map.mem (E.Activity 8) m)

let prop_compare_total_order =
  let gen =
    QCheck.Gen.(
      map
        (fun (k, i) ->
          match k mod 3 with
          | 0 -> E.undefined
          | 1 -> E.Activity i
          | _ -> E.Object i)
        (pair int (int_bound 100)))
  in
  let arb = QCheck.make ~print:E.to_string gen in
  QCheck.Test.make ~name:"compare antisymmetric & consistent with equal"
    ~count:500 (QCheck.pair arb arb) (fun (a, b) ->
      let c1 = E.compare a b and c2 = E.compare b a in
      (c1 = 0) = (c2 = 0)
      && (c1 > 0) = (c2 < 0)
      && E.equal a b = (c1 = 0))

let suite =
  [
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "id" `Quick test_id;
    Alcotest.test_case "equal/compare" `Quick test_equal_compare;
    Alcotest.test_case "hash" `Quick test_hash_distinct;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "collections" `Quick test_collections;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
  ]

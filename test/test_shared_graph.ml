(* Tests for Schemes.Shared_graph — Figure 4 (Andrew-style). *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Sg = Schemes.Shared_graph
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let t = Sg.build ~clients:[ "c1"; "c2" ] st in
  (st, t)

let test_attachment () =
  let _, t = fixture () in
  (* /vice on every client denotes the one shared root. *)
  let shared_root = Vfs.Fs.root (Sg.shared_fs t) in
  List.iter
    (fun c ->
      check entity (c ^ " /vice") shared_root
        (Vfs.Fs.lookup (Sg.client_fs t c) "/vice"))
    (Sg.clients t)

let test_custom_attach_name () =
  let st = S.create () in
  let t = Sg.build ~clients:[ "x" ] ~attach_name:"afs" st in
  check Alcotest.string "attach name" "afs" (Sg.attach_name t);
  check b "bound" true (E.is_defined (Vfs.Fs.lookup (Sg.client_fs t "x") "/afs"))

let test_shared_vs_local_coherence () =
  let st, t = fixture () in
  let p1 = Sg.spawn_on t ~client:"c1" in
  let p2 = Sg.spawn_on t ~client:"c2" in
  let rule = Sg.rule t in
  let occs = [ O.generated p1; O.generated p2 ] in
  let shared = Coh.measure st rule occs (Sg.shared_probes t ~max_depth:4) in
  check (Alcotest.float 1e-9) "shared names coherent" 1.0 (Coh.degree shared);
  let local =
    Coh.measure st rule occs (Sg.local_probes t ~client:"c1" ~max_depth:4)
  in
  check (Alcotest.float 1e-9) "local names incoherent" 0.0 (Coh.degree local)

let test_probe_sets_disjoint () =
  let _, t = fixture () in
  let shared = N.Set.of_list (Sg.shared_probes t ~max_depth:4) in
  let local = N.Set.of_list (Sg.local_probes t ~client:"c1" ~max_depth:4) in
  check b "disjoint" true (N.Set.is_empty (N.Set.inter shared local));
  check b "both non-empty" true
    (not (N.Set.is_empty shared) && not (N.Set.is_empty local))

let test_replication_weak_coherence () =
  let st, t = fixture () in
  Sg.replicate_local t ~path:"bin/ls" ~content:"ls-binary";
  let p1 = Sg.spawn_on t ~client:"c1" in
  let p2 = Sg.spawn_on t ~client:"c2" in
  let rule = Sg.rule t in
  let occs = [ O.generated p1; O.generated p2 ] in
  let name = N.of_string "/bin/ls" in
  (* strictly incoherent... *)
  (match Coh.check st rule occs name with
  | Coh.Incoherent _ -> ()
  | v -> Alcotest.failf "expected incoherent, got %a" Coh.pp_verdict v);
  (* ...but weakly coherent. *)
  let equiv = Naming.Replication.same_replica (Sg.replication t) in
  (match Coh.check ~equiv st rule occs name with
  | Coh.Weakly_coherent _ -> ()
  | v -> Alcotest.failf "expected weakly coherent, got %a" Coh.pp_verdict v);
  (* replica states agree — the paper's legal-state invariant. *)
  check b "replica states equal" true
    (Naming.Replication.states_consistent (Sg.replication t) st)

let test_remote_exec_shared_only () =
  let st, t = fixture () in
  let parent = Sg.spawn_on t ~client:"c1" in
  let child = Sg.remote_exec t ~parent ~client:"c2" in
  (* shared names still work *)
  check entity "shared param"
    (Sg.resolve t ~as_:parent "/vice/proj/apollo/plan.txt")
    (Sg.resolve t ~as_:child "/vice/proj/apollo/plan.txt");
  (* local names break *)
  check b "local param broken" false
    (E.equal
       (Sg.resolve t ~as_:parent "/home/user/notes.txt")
       (Sg.resolve t ~as_:child "/home/user/notes.txt"));
  ignore st

let test_build_errors () =
  let st = S.create () in
  (match Sg.build ~clients:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no clients accepted");
  let t = Sg.build ~clients:[ "only" ] st in
  (* replicate_local on a single client declares no group (needs >= 2) *)
  Sg.replicate_local t ~path:"bin/x" ~content:"x";
  check Alcotest.int "no group for single client" 0
    (List.length (Naming.Replication.groups (Sg.replication t)))

let suite =
  [
    Alcotest.test_case "shared tree attachment" `Quick test_attachment;
    Alcotest.test_case "custom attach name" `Quick test_custom_attach_name;
    Alcotest.test_case "shared vs local coherence" `Quick
      test_shared_vs_local_coherence;
    Alcotest.test_case "probe sets disjoint" `Quick test_probe_sets_disjoint;
    Alcotest.test_case "replication weak coherence" `Quick
      test_replication_weak_coherence;
    Alcotest.test_case "remote exec passes shared names only" `Quick
      test_remote_exec_shared_only;
    Alcotest.test_case "build errors / single client" `Quick test_build_errors;
  ]

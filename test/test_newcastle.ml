(* Tests for Schemes.Newcastle — Figure 3. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Nc = Schemes.Newcastle
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let t = Nc.build ~machines:[ "unix1"; "unix2"; "unix3" ] st in
  (st, t)

let test_structure () =
  let st, t = fixture () in
  check (Alcotest.list Alcotest.string) "machines" [ "unix1"; "unix2"; "unix3" ]
    (Nc.machines t);
  (* super-root has one edge per machine *)
  let edges = Naming.Graph.out_edges st (Nc.super_root t) in
  let non_dot =
    List.filter
      (fun (a, _) ->
        not (N.atom_equal a N.self_atom || N.atom_equal a N.parent_atom))
      edges
  in
  check Alcotest.int "3 machine edges" 3 (List.length non_dot);
  (* each machine root's '..' is the super-root *)
  List.iter
    (fun m ->
      check entity (m ^ " .. is super") (Nc.super_root t)
        (Naming.Resolver.resolve_in st (Nc.machine_root t m) (N.of_string "..")))
    (Nc.machines t)

let test_unknown_machine () =
  let _, t = fixture () in
  match Nc.fs_of t "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown machine accepted"

let test_per_machine_roots () =
  let _, t = fixture () in
  let p1 = Nc.spawn_on t ~machine:"unix1" in
  let p2 = Nc.spawn_on t ~machine:"unix2" in
  check Alcotest.string "machine_of p1" "unix1" (Nc.machine_of t p1);
  check Alcotest.string "machine_of p2" "unix2" (Nc.machine_of t p2);
  check b "different /" false
    (E.equal (Nc.resolve t ~as_:p1 "/") (Nc.resolve t ~as_:p2 "/"))

let test_dotdot_above_root () =
  let _, t = fixture () in
  let p1 = Nc.spawn_on t ~machine:"unix1" in
  check entity "/.. is super-root" (Nc.super_root t)
    (Nc.resolve t ~as_:p1 "/..");
  check entity "cross-machine path" (Vfs.Fs.lookup (Nc.fs_of t "unix3") "/bin/ls")
    (Nc.resolve t ~as_:p1 "/../unix3/bin/ls")

let test_same_machine_coherence () =
  let st, t = fixture () in
  let p1 = Nc.spawn_on t ~machine:"unix1" in
  let p1' = Nc.spawn_on t ~machine:"unix1" in
  let p2 = Nc.spawn_on t ~machine:"unix2" in
  let probes = Nc.absolute_probes t ~machine:"unix1" ~max_depth:4 in
  let rule = Nc.rule t in
  let same = Coh.measure st rule [ O.generated p1; O.generated p1' ] probes in
  check (Alcotest.float 1e-9) "same machine 1.0" 1.0 (Coh.degree same);
  let cross = Coh.measure st rule [ O.generated p1; O.generated p2 ] probes in
  check (Alcotest.float 1e-9) "cross machine 0.0" 0.0 (Coh.degree cross)

let test_map_name () =
  let _, t = fixture () in
  let p2 = Nc.spawn_on t ~machine:"unix2" in
  let n = N.of_string "/etc/hosts" in
  let mapped = Nc.map_name t ~from_machine:"unix1" ~to_machine:"unix2" n in
  check Alcotest.string "syntax" "/../unix1/etc/hosts" (N.to_string mapped);
  check entity "meaning preserved"
    (Vfs.Fs.lookup (Nc.fs_of t "unix1") "/etc/hosts")
    (Schemes.Process_env.resolve (Nc.env t) ~as_:p2 mapped);
  (* relative names pass through *)
  let rel = N.of_string "etc/hosts" in
  check b "relative unchanged" true
    (N.equal rel (Nc.map_name t ~from_machine:"unix1" ~to_machine:"unix2" rel));
  (match Nc.map_name t ~from_machine:"zzz" ~to_machine:"unix2" n with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown machine accepted")

let test_remote_exec_policies () =
  let _, t = fixture () in
  let parent = Nc.spawn_on t ~machine:"unix1" in
  let ci =
    Nc.remote_exec t ~parent ~machine:"unix2" ~policy:Nc.Invoker_root
  in
  let cr = Nc.remote_exec t ~parent ~machine:"unix2" ~policy:Nc.Remote_root in
  (* invoker root: parameters coherent *)
  check entity "invoker: parent's names work"
    (Nc.resolve t ~as_:parent "/etc/hosts")
    (Nc.resolve t ~as_:ci "/etc/hosts");
  (* remote root: local access *)
  check entity "remote: local names work"
    (Vfs.Fs.lookup (Nc.fs_of t "unix2") "/tmp")
    (Nc.resolve t ~as_:cr "/tmp");
  check b "remote: parameters broken" false
    (E.equal (Nc.resolve t ~as_:parent "/etc/hosts")
       (Nc.resolve t ~as_:cr "/etc/hosts"));
  check Alcotest.string "invoker child reports parent's machine" "unix1"
    (Nc.machine_of t ci);
  check Alcotest.string "remote child reports exec machine" "unix2"
    (Nc.machine_of t cr)

let test_join_structure () =
  let st = S.create () in
  let ta = Nc.build ~machines:[ "u1"; "u2" ] st in
  let tb = Nc.build ~machines:[ "v1" ] st in
  let j = Nc.join st [ ("sysA", ta); ("sysB", tb) ] in
  check (Alcotest.list Alcotest.string) "qualified machine names"
    [ "sysA.u1"; "sysA.u2"; "sysB.v1" ]
    (Nc.machines j);
  (* the old super-roots now hang under the new one *)
  check entity "old super reachable" (Nc.super_root ta)
    (Naming.Resolver.resolve_in st (Nc.super_root j) (N.of_string "sysA"));
  check entity "old super's .. is the new super" (Nc.super_root j)
    (Naming.Resolver.resolve_in st (Nc.super_root ta) (N.of_string ".."))

let test_join_resolution_and_mapping () =
  let st = S.create () in
  let ta = Nc.build ~machines:[ "u1"; "u2" ] st in
  let tb = Nc.build ~machines:[ "v1" ] st in
  let j = Nc.join st [ ("sysA", ta); ("sysB", tb) ] in
  let pa = Nc.spawn_on j ~machine:"sysA.u1" in
  let pb = Nc.spawn_on j ~machine:"sysB.v1" in
  (* deep cross-system path *)
  check entity "deep path"
    (Vfs.Fs.lookup (Nc.fs_of j "sysB.v1") "/bin/ls")
    (Nc.resolve j ~as_:pa "/../../sysB/v1/bin/ls");
  (* mapping rule across the system boundary *)
  let n = N.of_string "/etc/hosts" in
  let mapped = Nc.map_name j ~from_machine:"sysA.u1" ~to_machine:"sysB.v1" n in
  check Alcotest.string "mapped syntax" "/../../sysA/u1/etc/hosts"
    (N.to_string mapped);
  check entity "mapping works"
    (Nc.resolve j ~as_:pa "/etc/hosts")
    (Schemes.Process_env.resolve (Nc.env j) ~as_:pb mapped)

let test_join_errors () =
  let st = S.create () in
  let ta = Nc.build ~machines:[ "u1" ] st in
  match Nc.join st [ ("solo", ta) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single-system join accepted"

let test_build_errors () =
  let st = S.create () in
  match Nc.build ~machines:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty machine list accepted"

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "unknown machine" `Quick test_unknown_machine;
    Alcotest.test_case "per-machine roots" `Quick test_per_machine_roots;
    Alcotest.test_case "'..' above the root" `Quick test_dotdot_above_root;
    Alcotest.test_case "coherence same/cross machine" `Quick
      test_same_machine_coherence;
    Alcotest.test_case "map_name" `Quick test_map_name;
    Alcotest.test_case "remote exec policies" `Quick test_remote_exec_policies;
    Alcotest.test_case "build errors" `Quick test_build_errors;
    Alcotest.test_case "join structure" `Quick test_join_structure;
    Alcotest.test_case "join resolution and mapping" `Quick
      test_join_resolution_and_mapping;
    Alcotest.test_case "join errors" `Quick test_join_errors;
  ]

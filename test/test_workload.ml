(* Tests for the workload generators. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Ng = Workload.Namegen
module Ex = Workload.Exchange
module Rc = Workload.Reconfig
module Dg = Workload.Docgen
module R = Netaddr.Registry

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let world () =
  let st = S.create () in
  let t = Schemes.Unix_scheme.build st in
  let ctx =
    match S.context_of st (Schemes.Unix_scheme.root t) with
    | Some c -> c
    | None -> assert false
  in
  (st, t, ctx)

let test_namegen_from_graph () =
  let st, _, ctx = world () in
  let rng = Dsim.Rng.create 1L in
  let names = Ng.from_graph st ctx ~rng ~n:10 ~max_depth:4 in
  check i "ten names" 10 (List.length names);
  check b "all resolvable" true
    (List.for_all
       (fun n -> E.is_defined (Naming.Resolver.resolve st ctx n))
       names)

let test_namegen_noise () =
  let st, _, ctx = world () in
  let rng = Dsim.Rng.create 2L in
  let names = Ng.noise ~rng ~n:20 ~max_depth:3 in
  check i "twenty" 20 (List.length names);
  check b "none resolvable" true
    (List.for_all
       (fun n -> E.is_undefined (Naming.Resolver.resolve st ctx n))
       names)

let test_namegen_mixed () =
  let st, _, ctx = world () in
  let rng = Dsim.Rng.create 3L in
  let names = Ng.mixed st ctx ~rng ~n:20 ~max_depth:3 ~valid_fraction:0.5 in
  check i "twenty" 20 (List.length names);
  let valid =
    List.length
      (List.filter
         (fun n -> E.is_defined (Naming.Resolver.resolve st ctx n))
         names)
  in
  check i "half valid" 10 valid;
  (match Ng.mixed st ctx ~rng ~n:5 ~max_depth:3 ~valid_fraction:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad fraction accepted")

(* from_graph's cost contract: drawing [n] of [m] names consumes
   exactly [min n m] rng draws (one partial Fisher–Yates step each),
   however large the graph. Pinned by running a mirror rng forward the
   same number of next_int64 steps and comparing states. *)
let test_namegen_draw_count () =
  let st, _, ctx = world () in
  let m = List.length (Naming.Graph.all_names st ctx ~max_depth:4 ()) in
  check b "population is non-trivial" true (m > 10);
  let pinned seed ~n ~expect_names ~expect_draws =
    let rng = Dsim.Rng.create seed in
    let mirror = Dsim.Rng.copy rng in
    let names = Ng.from_graph st ctx ~rng ~n ~max_depth:4 in
    check i "names drawn" expect_names (List.length names);
    for _ = 1 to expect_draws do
      ignore (Dsim.Rng.next_int64 mirror)
    done;
    check b "rng advanced by exactly that many draws" true
      (Dsim.Rng.next_int64 rng = Dsim.Rng.next_int64 mirror)
  in
  pinned 5L ~n:7 ~expect_names:7 ~expect_draws:7;
  pinned 6L ~n:(m + 50) ~expect_names:m ~expect_draws:m;
  pinned 7L ~n:0 ~expect_names:0 ~expect_draws:0

let test_namegen_from_graph_distinct () =
  let st, _, ctx = world () in
  let rng = Dsim.Rng.create 8L in
  let names = Ng.from_graph st ctx ~rng ~n:12 ~max_depth:4 in
  check i "no duplicates (without replacement)" (List.length names)
    (List.length (List.sort_uniq N.compare names))

let test_namegen_descend () =
  let st, _, ctx = world () in
  let rng = Dsim.Rng.create 9L in
  for _ = 1 to 50 do
    match Ng.descend st ctx ~rng ~max_depth:4 with
    | None -> Alcotest.fail "descent in a populated world found nothing"
    | Some n ->
        check b "descent stays within max_depth" true (N.length n <= 4);
        check b "descended name resolves" true
          (E.is_defined (Naming.Resolver.resolve st ctx n))
  done;
  check b "max_depth 0 yields nothing" true
    (Ng.descend st ctx ~rng ~max_depth:0 = None);
  let empty_ctx = Naming.Context.empty in
  check b "no bindings yields nothing" true
    (Ng.descend st empty_ctx ~rng ~max_depth:4 = None)

let test_alphabet () =
  check (Alcotest.list Alcotest.string) "alphabet" [ "f0"; "f1" ]
    (Ng.atoms_of_alphabet ~prefix:"f" 2)

let test_exchange_random () =
  let st, t, _ = world () in
  let a1 = Schemes.Unix_scheme.spawn t in
  let a2 = Schemes.Unix_scheme.spawn t in
  let rng = Dsim.Rng.create 4L in
  let probes = [ N.of_string "/bin/ls" ] in
  let events = Ex.random_events ~rng ~activities:[ a1; a2 ] ~probes ~n:50 in
  check i "fifty" 50 (List.length events);
  check b "sender <> receiver" true
    (List.for_all (fun e -> not (E.equal e.Ex.sender e.Ex.receiver)) events);
  (match Ex.random_events ~rng ~activities:[ a1 ] ~probes ~n:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single activity accepted");
  ignore st

let test_exchange_all_pairs () =
  let _, t, _ = world () in
  let acts = List.init 3 (fun _ -> Schemes.Unix_scheme.spawn t) in
  let probes = [ N.of_string "/bin/ls"; N.of_string "/etc" ] in
  let events = Ex.all_pairs ~activities:acts ~probes in
  (* 3*2 ordered pairs x 2 probes *)
  check i "count" 12 (List.length events)

let test_exchange_occurrences () =
  let _, t, _ = world () in
  let a1 = Schemes.Unix_scheme.spawn t in
  let a2 = Schemes.Unix_scheme.spawn t in
  let ev = { Ex.sender = a1; receiver = a2; name = N.of_string "/x" } in
  match Ex.occurrences ev with
  | [ Naming.Occurrence.Generated { by }; Naming.Occurrence.Received { sender; receiver } ] ->
      check b "by sender" true (E.equal by a1);
      check b "received pair" true (E.equal sender a1 && E.equal receiver a2)
  | _ -> Alcotest.fail "wrong occurrence shape"

let test_exchange_coherent_fraction () =
  let st, t, _ = world () in
  let a1 = Schemes.Unix_scheme.spawn t in
  let a2 = Schemes.Unix_scheme.spawn t in
  let events =
    Ex.all_pairs ~activities:[ a1; a2 ]
      ~probes:[ N.of_string "/bin/ls"; N.of_string "/ghost" ]
  in
  (* shared root: coherent for the defined probe, vacuous for the ghost *)
  check (Alcotest.float 1e-9) "fraction" 1.0
    (Ex.coherent_fraction st (Schemes.Unix_scheme.rule t) events)

let test_exchange_over_network () =
  let st, t, _ = world () in
  let a1 = Schemes.Unix_scheme.spawn t in
  let a2 = Schemes.Unix_scheme.spawn t in
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create ~engine ~rng:(Dsim.Rng.create 5L) () in
  let node = Dsim.Network.add_node net ~label:"m" in
  let actors = Hashtbl.create 4 in
  let actor_of e =
    match Hashtbl.find_opt actors e with
    | Some a -> a
    | None ->
        let a =
          Dsim.Actor.create net ~node ~port:(Hashtbl.length actors + 1)
        in
        Hashtbl.replace actors e a;
        a
  in
  let events =
    [
      { Ex.sender = a1; receiver = a2; name = N.of_string "/bin/ls" };
      { Ex.sender = a2; receiver = a1; name = N.of_string "/etc" };
    ]
  in
  let delivered = Ex.run_over_network ~engine ~network:net ~actor_of events in
  check i "both delivered" 2 (List.length delivered);
  check b "names survive transit" true
    (List.exists (fun (_, _, n) -> N.to_string n = "/bin/ls") delivered);
  ignore st

let registry3 () =
  let r = R.create () in
  let n1 = R.add_network r ~label:"n1" in
  let n2 = R.add_network r ~label:"n2" in
  let m1 = R.add_machine r ~net:n1 ~label:"m1" in
  let m2 = R.add_machine r ~net:n2 ~label:"m2" in
  ignore (R.add_process r ~mach:m1 ~label:"p1");
  ignore (R.add_process r ~mach:m2 ~label:"p2");
  r

let test_reconfig_random_ops () =
  let r = registry3 () in
  let rng = Dsim.Rng.create 6L in
  let ops = Rc.random_ops r ~rng ~n:20 () in
  check i "twenty ops applied" 20 (List.length ops);
  (* registry invariants hold: placements are still unique & resolvable *)
  let procs = R.all_processes r in
  check b "pids still resolve" true
    (List.for_all
       (fun holder ->
         List.for_all
           (fun target ->
             R.resolve r ~from:holder (R.pid_of r ~target ~relative_to:holder)
             = Some target)
           procs)
       procs)

let test_reconfig_moves () =
  let r = registry3 () in
  let rng = Dsim.Rng.create 7L in
  let ops = Rc.random_ops r ~rng ~n:10 ~kinds:[ `Move_machine ] () in
  check i "ten" 10 (List.length ops);
  (match Rc.random_ops r ~rng ~n:1 ~kinds:[] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty kinds accepted")

let test_docgen_structure () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  let rng = Dsim.Rng.create 8L in
  let spec =
    { Dg.n_components = 3; n_sources = 4; refs_per_source = 2; nested = true }
  in
  let project = Dg.build fs ~at:"p" ~rng ~spec in
  let sources = Dg.sources fs project in
  (* 4 outer + inner sub sources *)
  check b "outer + nested sources" true (List.length sources > 4);
  check i "refs counted" (List.length sources * 2) (Dg.expected_refs fs project);
  (* every source lives in a dir that contains it *)
  check b "dirs contain their files" true
    (List.for_all
       (fun (dir, file) ->
         List.exists (fun (_, e) -> E.equal e file) (Vfs.Fs.readdir fs dir))
       sources)

let test_docgen_validation () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  let rng = Dsim.Rng.create 9L in
  match
    Dg.build fs ~at:"p" ~rng
      ~spec:{ Dg.n_components = 0; n_sources = 1; refs_per_source = 1; nested = false }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero components accepted"

let suite =
  [
    Alcotest.test_case "namegen from_graph" `Quick test_namegen_from_graph;
    Alcotest.test_case "namegen draw count" `Quick test_namegen_draw_count;
    Alcotest.test_case "namegen without replacement" `Quick
      test_namegen_from_graph_distinct;
    Alcotest.test_case "namegen descend" `Quick test_namegen_descend;
    Alcotest.test_case "namegen noise" `Quick test_namegen_noise;
    Alcotest.test_case "namegen mixed" `Quick test_namegen_mixed;
    Alcotest.test_case "alphabet" `Quick test_alphabet;
    Alcotest.test_case "exchange random" `Quick test_exchange_random;
    Alcotest.test_case "exchange all pairs" `Quick test_exchange_all_pairs;
    Alcotest.test_case "exchange occurrences" `Quick test_exchange_occurrences;
    Alcotest.test_case "exchange coherent fraction" `Quick
      test_exchange_coherent_fraction;
    Alcotest.test_case "exchange over network" `Quick
      test_exchange_over_network;
    Alcotest.test_case "reconfig random ops" `Quick test_reconfig_random_ops;
    Alcotest.test_case "reconfig moves" `Quick test_reconfig_moves;
    Alcotest.test_case "docgen structure" `Quick test_docgen_structure;
    Alcotest.test_case "docgen validation" `Quick test_docgen_validation;
  ]

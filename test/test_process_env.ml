(* Tests for Schemes.Process_env — per-activity naming environments. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Pe = Schemes.Process_env

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs [ "bin/ls"; "home/alice/f"; "tmp/" ];
  (st, fs, Pe.create st)

let test_spawn_bindings () =
  let _, fs, env = fixture () in
  let root = Vfs.Fs.root fs in
  let tmp = Vfs.Fs.lookup fs "/tmp" in
  let a = Pe.spawn ~label:"a" ~root ~cwd:tmp ~extra:[ ("x", tmp) ] env in
  check entity "root" root (Pe.root_of env a);
  check entity "cwd" tmp (Pe.cwd_of env a);
  check entity "extra binding" tmp
    (Naming.Context.lookup (Pe.context env a) (N.atom "x"));
  check b "in activities list" true (List.mem a (Pe.activities env))

let test_spawn_cwd_defaults_to_root () =
  let _, fs, env = fixture () in
  let root = Vfs.Fs.root fs in
  let a = Pe.spawn ~root env in
  check entity "cwd = root" root (Pe.cwd_of env a)

let test_resolution_absolute_and_relative () =
  let _, fs, env = fixture () in
  let root = Vfs.Fs.root fs in
  let home = Vfs.Fs.lookup fs "/home/alice" in
  let a = Pe.spawn ~root ~cwd:home env in
  check entity "absolute" (Vfs.Fs.lookup fs "/bin/ls")
    (Pe.resolve_str env ~as_:a "/bin/ls");
  check entity "relative through cwd" (Vfs.Fs.lookup fs "/home/alice/f")
    (Pe.resolve_str env ~as_:a "f");
  check entity "dotdot" (Vfs.Fs.lookup fs "/home")
    (Pe.resolve_str env ~as_:a "..")

let test_chdir_chroot () =
  let _, fs, env = fixture () in
  let root = Vfs.Fs.root fs in
  let a = Pe.spawn ~root env in
  Pe.set_cwd env a (Vfs.Fs.lookup fs "/home/alice");
  check entity "after chdir" (Vfs.Fs.lookup fs "/home/alice/f")
    (Pe.resolve_str env ~as_:a "f");
  Pe.set_root env a (Vfs.Fs.lookup fs "/home");
  check entity "after chroot, / is /home" (Vfs.Fs.lookup fs "/home/alice")
    (Pe.resolve_str env ~as_:a "/alice")

let test_fork_inherits_then_diverges () =
  let _, fs, env = fixture () in
  let root = Vfs.Fs.root fs in
  let parent = Pe.spawn ~label:"parent" ~root ~cwd:(Vfs.Fs.lookup fs "/tmp") env in
  let child = Pe.fork ~label:"child" env ~parent in
  (* Paper: "a parent and a child have coherence for all names until one
     of them modifies its context". *)
  check b "contexts equal at fork" true
    (Naming.Context.equal (Pe.context env parent) (Pe.context env child));
  Pe.set_cwd env child (Vfs.Fs.lookup fs "/home");
  check entity "parent unchanged" (Vfs.Fs.lookup fs "/tmp")
    (Pe.cwd_of env parent);
  check entity "child changed" (Vfs.Fs.lookup fs "/home") (Pe.cwd_of env child)

let test_fork_unmanaged_parent () =
  let st, _, env = fixture () in
  let stranger = S.create_activity st in
  match Pe.fork env ~parent:stranger with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fork of unmanaged parent accepted"

let test_bindings_mutation () =
  let _, fs, env = fixture () in
  let a = Pe.spawn ~root:(Vfs.Fs.root fs) env in
  Pe.set_binding env a "vice" (Vfs.Fs.lookup fs "/tmp");
  (* the attachment lives in the process context itself: it is reached by
     the bare name, ahead of the working directory *)
  check entity "mounted" (Vfs.Fs.lookup fs "/tmp")
    (Pe.resolve_str env ~as_:a "vice");
  Pe.remove_binding env a "vice";
  check entity "unmounted" E.undefined (Pe.resolve_str env ~as_:a "vice")

let test_rule_is_activity_rule () =
  let _, fs, env = fixture () in
  let a1 = Pe.spawn ~root:(Vfs.Fs.root fs) env in
  let rule = Pe.rule env in
  check entity "rule resolves in subject ctx" (Vfs.Fs.lookup fs "/bin/ls")
    (Naming.Rule.resolve rule (Pe.store env) (Naming.Occurrence.generated a1)
       (N.of_string "/bin/ls"))

let suite =
  [
    Alcotest.test_case "spawn bindings" `Quick test_spawn_bindings;
    Alcotest.test_case "cwd defaults to root" `Quick
      test_spawn_cwd_defaults_to_root;
    Alcotest.test_case "absolute and relative resolution" `Quick
      test_resolution_absolute_and_relative;
    Alcotest.test_case "chdir/chroot" `Quick test_chdir_chroot;
    Alcotest.test_case "fork inherits then diverges" `Quick
      test_fork_inherits_then_diverges;
    Alcotest.test_case "fork unmanaged parent" `Quick
      test_fork_unmanaged_parent;
    Alcotest.test_case "binding mutation" `Quick test_bindings_mutation;
    Alcotest.test_case "rule" `Quick test_rule_is_activity_rule;
  ]

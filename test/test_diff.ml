(* Tests for Harness.Diff — namespace diffing. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module R = Naming.Rule
module D = Harness.Diff

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let f = Alcotest.float 1e-9

(* a: {x->o1, shared->s, mine->m}; b: {x->o2, shared->s, yours->y} *)
let fixture () =
  let st = S.create () in
  let o1 = S.create_object st and o2 = S.create_object st in
  let s = S.create_object st in
  let m = S.create_object st and y = S.create_object st in
  let a = S.create_activity st and bb = S.create_activity st in
  let asg = R.Assignment.create () in
  let mk bindings =
    S.create_context_object ~ctx:(C.of_bindings bindings) st
  in
  R.Assignment.set asg a
    (mk [ (N.atom "x", o1); (N.atom "shared", s); (N.atom "mine", m) ]);
  R.Assignment.set asg bb
    (mk [ (N.atom "x", o2); (N.atom "shared", s); (N.atom "yours", y) ]);
  (st, R.of_activity asg, a, bb)

let probes =
  List.map N.of_string [ "shared"; "x"; "mine"; "yours"; "ghost" ]

let test_buckets () =
  let st, rule, a, bb = fixture () in
  let d = D.diff st rule ~a ~b:bb ~probes in
  check i "agree" 1 (List.length d.D.agree);
  check i "disagree" 1 (List.length d.D.disagree);
  check i "only a" 1 (List.length d.D.only_a);
  check i "only b" 1 (List.length d.D.only_b);
  check i "neither" 1 (List.length d.D.neither);
  (match d.D.disagree with
  | [ (n, ea, eb) ] ->
      check Alcotest.string "the clash is x" "x" (N.to_string n);
      check b "sides differ" false (E.equal ea eb)
  | _ -> Alcotest.fail "wrong disagree bucket");
  check f "fraction" 0.25 (D.coherent_fraction d)

let test_identical_namespaces () =
  let st, rule, a, _ = fixture () in
  let d = D.diff st rule ~a ~b:a ~probes in
  check i "no disagreement" 0
    (List.length d.D.disagree + List.length d.D.only_a + List.length d.D.only_b);
  check f "full agreement" 1.0 (D.coherent_fraction d)

let test_all_vacuous () =
  let st, rule, a, bb = fixture () in
  let d = D.diff st rule ~a ~b:bb ~probes:[ N.of_string "nothing" ] in
  check f "vacuous fraction is 1" 1.0 (D.coherent_fraction d);
  check i "neither" 1 (List.length d.D.neither)

let test_pp_smoke () =
  let st, rule, a, bb = fixture () in
  let d = D.diff st rule ~a ~b:bb ~probes in
  let text = Format.asprintf "%a" (D.pp st) d in
  check b "mentions counts" true (String.length text > 20)

let test_agrees_with_coherence () =
  (* diff's agree bucket = names Coherence calls coherent over {a,b} *)
  let st, rule, a, bb = fixture () in
  let d = D.diff st rule ~a ~b:bb ~probes in
  let occs = [ Naming.Occurrence.generated a; Naming.Occurrence.generated bb ] in
  let coherent = Naming.Coherence.coherent_names st rule occs probes in
  check (Alcotest.list Alcotest.string) "same set"
    (List.map N.to_string coherent)
    (List.map (fun (n, _) -> N.to_string n) d.D.agree)

let suite =
  [
    Alcotest.test_case "buckets" `Quick test_buckets;
    Alcotest.test_case "identical namespaces" `Quick test_identical_namespaces;
    Alcotest.test_case "all vacuous" `Quick test_all_vacuous;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    Alcotest.test_case "agrees with Coherence" `Quick
      test_agrees_with_coherence;
  ]

(* Tests for Workload.Script — scripted scenarios and fuzzing. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module Sc = Workload.Script

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let test_deterministic_scenario () =
  let st = S.create () in
  let w = Sc.new_world st in
  Sc.run w
    [
      Sc.Mkdir "/a/b";
      Sc.Add_file ("/a/b/f", "v1");
      Sc.Spawn "p0";
      Sc.Fork 0;
      Sc.Chdir (1, "/a");
      Sc.Bind (0, "mnt", "/a/b");
    ];
  (match Sc.processes w with
  | [ p0; p1 ] ->
      check entity "p1 relative via cwd"
        (Vfs.Fs.lookup (Sc.fs w) "/a/b/f")
        (Schemes.Process_env.resolve_str (Sc.env w) ~as_:p1 "b/f");
      check entity "p0 via binding"
        (Vfs.Fs.lookup (Sc.fs w) "/a/b/f")
        (Schemes.Process_env.resolve_str (Sc.env w) ~as_:p0 "mnt/f")
  | l -> Alcotest.failf "expected 2 processes, got %d" (List.length l));
  check i "two processes" 2 (List.length (Sc.processes w))

let test_invalid_ops_skipped () =
  let st = S.create () in
  let w = Sc.new_world st in
  (* none of these can apply; none may raise *)
  Sc.run w
    [
      Sc.Fork 7;
      Sc.Chdir (0, "/nope");
      Sc.Chroot (3, "/");
      Sc.Unbind (0, "x");
      Sc.Unlink "/nothing/here";
      Sc.Write ("/missing", "x");
    ];
  check i "still no processes" 0 (List.length (Sc.processes w))

let test_unlink_op () =
  let st = S.create () in
  let w = Sc.new_world st in
  Sc.run w [ Sc.Add_file ("/a/f", "x"); Sc.Unlink "/a/f" ];
  check entity "gone" E.undefined (Vfs.Fs.lookup (Sc.fs w) "/a/f");
  Sc.run w [ Sc.Add_file ("/g", "y"); Sc.Unlink "/g" ];
  check entity "top-level unlink works" E.undefined
    (Vfs.Fs.lookup (Sc.fs w) "/g")

let test_replay_equivalence () =
  (* the ops returned by random_ops, replayed on a fresh world, produce an
     observably identical world *)
  let rng = Dsim.Rng.create 5L in
  let st1 = S.create () in
  let w1 = Sc.new_world st1 in
  let ops = Sc.random_ops w1 ~rng ~n:60 in
  let st2 = S.create () in
  let w2 = Sc.new_world st2 in
  Sc.run w2 ops;
  check i "same process count"
    (List.length (Sc.processes w1))
    (List.length (Sc.processes w2));
  (* same resolutions for a fixed probe set, process by process *)
  let probes = [ "/a/b/c"; "/d/e"; "/f"; "mnt/c"; "vice"; "." ] in
  List.iter2
    (fun p1 p2 ->
      List.iter
        (fun probe ->
          let r1 = Schemes.Process_env.resolve_str (Sc.env w1) ~as_:p1 probe in
          let r2 = Schemes.Process_env.resolve_str (Sc.env w2) ~as_:p2 probe in
          (* entity ids may differ between stores; compare definedness and
             label *)
          if E.is_defined r1 <> E.is_defined r2 then
            Alcotest.failf "replay diverged on %s" probe;
          if
            E.is_defined r1
            && S.label st1 r1 <> S.label st2 r2
          then Alcotest.failf "replay diverged on %s (labels)" probe)
        probes)
    (Sc.processes w1) (Sc.processes w2)

let test_pp_op () =
  let text = Format.asprintf "%a" Sc.pp_op (Sc.Bind (1, "mnt", "/a")) in
  check Alcotest.string "pp" "bind 1 mnt /a" text

(* fuzz: random scripts preserve the global invariants *)
let prop_fuzz_invariants =
  QCheck.Test.make ~name:"random scripts keep worlds well-formed" ~count:50
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let st = S.create () in
      let w = Sc.new_world st in
      ignore (Sc.random_ops w ~rng ~n:80);
      (* 1. lint-clean *)
      Naming.Lint.is_clean st
      &&
      (* 2. resolution is total for every process over a probe set *)
      let probes =
        List.map N.of_string [ "/a/b/c"; "/d/e"; "mnt/c"; "."; ".." ]
      in
      List.for_all
        (fun p ->
          List.for_all
            (fun n ->
              match Schemes.Process_env.resolve (Sc.env w) ~as_:p n with
              | (_ : E.t) -> true)
            probes)
        (Sc.processes w)
      &&
      (* 3. coherence degree stays in [0,1] *)
      match Sc.processes w with
      | p1 :: p2 :: _ ->
          let occs =
            [ Naming.Occurrence.generated p1; Naming.Occurrence.generated p2 ]
          in
          let report =
            Naming.Coherence.measure st
              (Schemes.Process_env.rule (Sc.env w))
              occs probes
          in
          let d = Naming.Coherence.degree report in
          d >= 0.0 && d <= 1.0
      | _ -> true)

let suite =
  [
    Alcotest.test_case "deterministic scenario" `Quick
      test_deterministic_scenario;
    Alcotest.test_case "invalid ops skipped" `Quick test_invalid_ops_skipped;
    Alcotest.test_case "unlink op" `Quick test_unlink_op;
    Alcotest.test_case "replay equivalence" `Quick test_replay_equivalence;
    Alcotest.test_case "pp_op" `Quick test_pp_op;
    QCheck_alcotest.to_alcotest prop_fuzz_invariants;
  ]

(* Tests for Dsim.Rpc — request/response over the simulated network. *)

module En = Dsim.Engine
module Net = Dsim.Network
module Rpc = Dsim.Rpc

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let make ?(config = Net.default_config) () =
  let engine = En.create () in
  let net = Net.create ~config ~engine ~rng:(Dsim.Rng.create 42L) () in
  let n1 = Net.add_node net ~label:"server" in
  let n2 = Net.add_node net ~label:"client" in
  (engine, net, n1, n2)

let test_call_reply () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x * 2)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:10.0 21
    ~on_reply:(fun r -> got := Some r);
  check i "pending" 1 (Rpc.pending client);
  ignore (En.run engine);
  check b "reply" true (!got = Some (Ok 42));
  check i "none pending" 0 (Rpc.pending client);
  let s = Rpc.stats client in
  check i "calls" 1 s.Rpc.calls;
  check i "replies" 1 s.Rpc.replies;
  check i "timeouts" 0 s.Rpc.timeouts;
  check i "server served" 1 (Rpc.stats server).Rpc.served

let test_timeout_on_loss () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with drop_probability = 1.0 } ()
  in
  let _server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some x) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:{ Net.node = n1; port = 1 } ~timeout:3.0 1
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "timeout" true (!got = Some (Error `Timeout));
  check i "timeout counted" 1 (Rpc.stats client).Rpc.timeouts;
  check b "clock advanced to timeout" true (En.now engine >= 3.0)

let test_handler_drop () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun _ -> None) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:3.0 1 ~on_reply:(fun r ->
      got := Some r);
  ignore (En.run engine);
  check b "timed out" true (!got = Some (Error `Timeout));
  check i "request dropped by handler" 1
    (Rpc.stats server).Rpc.dropped_requests

let test_no_handler () =
  let engine, net, n1, n2 = make () in
  let server : (int, int) Rpc.endpoint = Rpc.create net ~node:n1 ~port:1 () in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:2.0 1
    ~on_reply:(fun _ -> ());
  ignore (En.run engine);
  check i "unserved" 1 (Rpc.stats server).Rpc.dropped_requests;
  (* a handler installed later serves new calls *)
  Rpc.set_handler server (fun x -> Some (x + 1));
  let got = ref None in
  (* the round trip costs ~2.0-2.4 time units; give it room *)
  Rpc.call client ~to_:(Rpc.address server) ~timeout:5.0 1 ~on_reply:(fun r ->
      got := Some r);
  ignore (En.run engine);
  check b "served after set_handler" true (!got = Some (Ok 2))

let test_correlation () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x * 10)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let replies = ref [] in
  List.iter
    (fun k ->
      Rpc.call client ~to_:(Rpc.address server) ~timeout:20.0 k
        ~on_reply:(fun r -> replies := (k, r) :: !replies))
    [ 1; 2; 3; 4; 5 ];
  ignore (En.run engine);
  check i "all replied" 5 (List.length !replies);
  List.iter
    (fun (k, r) ->
      if r <> Ok (k * 10) then Alcotest.failf "bad correlation for %d" k)
    !replies

let test_concurrent_clients_one_server () =
  let engine, net, n1, n2 = make () in
  let n3 = Net.add_node net ~label:"client2" in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (-x)) ()
  in
  let c1 = Rpc.create net ~node:n2 ~port:1 () in
  let c2 = Rpc.create net ~node:n3 ~port:1 () in
  let ok = ref 0 in
  for k = 1 to 10 do
    Rpc.call c1 ~to_:(Rpc.address server) ~timeout:30.0 k ~on_reply:(fun r ->
        if r = Ok (-k) then incr ok);
    Rpc.call c2 ~to_:(Rpc.address server) ~timeout:30.0 (100 + k)
      ~on_reply:(fun r -> if r = Ok (-(100 + k)) then incr ok)
  done;
  ignore (En.run engine);
  check i "all 20 correct" 20 !ok;
  check i "server served 20" 20 (Rpc.stats server).Rpc.served

let test_duplicate_response_is_late () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with duplicate_probability = 1.0 } ()
  in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some x) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let replies = ref 0 in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:30.0 1
    ~on_reply:(fun _ -> incr replies);
  ignore (En.run engine);
  (* the duplicated request produces two responses, each possibly
     duplicated; exactly one reaches the callback *)
  check i "exactly one callback" 1 !replies;
  check b "surplus counted as late" true
    ((Rpc.stats client).Rpc.late_replies >= 1)

(* ------------------------------------------------------------------ *)
(* Retries, dedup and fault windows.                                   *)

let test_retry_recovers_loss () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with drop_probability = 0.5 } ()
  in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x * 2)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call_retry client ~to_:(Rpc.address server) ~timeout:2.0
    ~rng:(Dsim.Rng.create 7L) ~attempts:10 21
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "recovered by retrying" true (!got = Some (Ok 42));
  let s = Rpc.stats client in
  check i "one logical call" 1 s.Rpc.calls;
  check b "at least one retry" true (s.Rpc.retries >= 1);
  check i "no exhaustion" 0 s.Rpc.exhausted

let test_retry_exhaustion_stats () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with drop_probability = 1.0 } ()
  in
  let _server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some x) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call_retry client ~to_:{ Net.node = n1; port = 1 } ~timeout:1.0
    ~backoff:2.0 ~jitter:0.0 ~rng:(Dsim.Rng.create 7L) ~attempts:3 1
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "exhausted" true (!got = Some (Error `Timeout));
  let s = Rpc.stats client in
  check i "calls" 1 s.Rpc.calls;
  check i "every attempt timed out" 3 s.Rpc.timeouts;
  check i "two retransmissions" 2 s.Rpc.retries;
  check i "one budget exhausted" 1 s.Rpc.exhausted;
  check i "none pending" 0 (Rpc.pending client);
  (* exponential backoff: 1 + 2 + 4 time units before giving up *)
  check b "backoff applied" true (En.now engine >= 7.0)

let test_deadline_cuts_retries_short () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with drop_probability = 1.0 } ()
  in
  let _server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some x) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  let at = ref 0.0 in
  (* attempts alone would burn 1 + 2 + 4 + 8 ... time units; the
     deadline must surface a terminal [`Unavailable] at 5.0 sharp *)
  Rpc.call_retry client ~to_:{ Net.node = n1; port = 1 } ~timeout:1.0
    ~backoff:2.0 ~jitter:0.0 ~rng:(Dsim.Rng.create 7L) ~attempts:10
    ~deadline:5.0 1
    ~on_reply:(fun r ->
      got := Some r;
      at := En.now engine);
  ignore (En.run engine);
  check b "terminal error is Unavailable" true
    (!got = Some (Error `Unavailable));
  check b "reported exactly at the deadline" true (!at = 5.0);
  let s = Rpc.stats client in
  check i "counted as unavailable" 1 s.Rpc.unavailable;
  check i "distinct from attempts-exhausted" 0 s.Rpc.exhausted;
  check i "none pending" 0 (Rpc.pending client)

let test_deadline_no_effect_when_reply_arrives () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x * 2)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call_retry client ~to_:(Rpc.address server) ~timeout:2.0
    ~rng:(Dsim.Rng.create 7L) ~attempts:3 ~deadline:50.0 21
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "normal reply" true (!got = Some (Ok 42));
  check i "no unavailable" 0 (Rpc.stats client).Rpc.unavailable;
  (* and an invalid deadline is rejected eagerly *)
  check b "non-positive deadline rejected" true
    (try
       Rpc.call_retry client ~to_:(Rpc.address server) ~timeout:2.0
         ~rng:(Dsim.Rng.create 7L) ~attempts:3 ~deadline:0.0 1
         ~on_reply:(fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_duplicate_invokes_handler_twice_without_dedup () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with duplicate_probability = 1.0 } ()
  in
  let invocations = ref 0 in
  let server =
    Rpc.create net ~node:n1 ~port:1
      ~handler:(fun x -> incr invocations; Some x)
      ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:30.0 1
    ~on_reply:(fun _ -> ());
  ignore (En.run engine);
  check i "duplicate delivery runs the handler twice" 2 !invocations;
  check i "no dedup hits without dedup" 0 (Rpc.stats server).Rpc.dedup_hits

let test_dedup_applies_once () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with duplicate_probability = 1.0 } ()
  in
  let invocations = ref 0 in
  let server =
    Rpc.create net ~node:n1 ~port:1
      ~handler:(fun x -> incr invocations; Some x)
      ~dedup:true ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:30.0 1
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "still replied" true (!got = Some (Ok 1));
  check i "handler ran once" 1 !invocations;
  check b "duplicate answered from memory" true
    ((Rpc.stats server).Rpc.dedup_hits >= 1)

let test_retry_across_crash_restart () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x + 1)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  Net.set_node_up net n1 false;
  ignore
    (En.schedule engine ~delay:5.0 (fun () -> Net.set_node_up net n1 true));
  let got = ref None in
  Rpc.call_retry client ~to_:(Rpc.address server) ~timeout:2.0 ~backoff:1.0
    ~rng:(Dsim.Rng.create 7L) ~attempts:10 1
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  (* the server's binding survived the crash; a retry after the restart
     gets through *)
  check b "served after restart" true (!got = Some (Ok 2));
  check b "down window cost retries" true ((Rpc.stats client).Rpc.retries >= 1)

let test_retry_across_partition_heal () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x + 1)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  Net.partition net [ n1 ] [ n2 ];
  ignore (En.schedule engine ~delay:5.0 (fun () -> Net.heal net));
  let got = ref None in
  Rpc.call_retry client ~to_:(Rpc.address server) ~timeout:2.0 ~backoff:1.0
    ~rng:(Dsim.Rng.create 7L) ~attempts:10 1
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "served after heal" true (!got = Some (Ok 2));
  check b "messages were cut meanwhile" true ((Net.stats net).Net.cut >= 1)

(* property: with dedup on and a sufficient attempt budget, every
   logical request is applied exactly once, whatever the loss and
   duplication rates (below 1) do to the individual messages. *)
let prop_exactly_once =
  QCheck.Test.make ~name:"retry+dedup applies exactly once" ~count:25
    QCheck.(triple small_nat (float_bound_inclusive 0.7)
              (float_bound_inclusive 0.7))
    (fun (seed, drop, duplicate) ->
      let engine = En.create () in
      let net =
        Net.create
          ~config:
            { Net.default_config with
              drop_probability = drop;
              duplicate_probability = duplicate }
          ~engine
          ~rng:(Dsim.Rng.create (Int64.of_int (seed + 1)))
          ()
      in
      let n1 = Net.add_node net ~label:"server" in
      let n2 = Net.add_node net ~label:"client" in
      let applied = Hashtbl.create 8 in
      let server =
        Rpc.create net ~node:n1 ~port:1
          ~handler:(fun k ->
            Hashtbl.replace applied k (1 + Option.value ~default:0 (Hashtbl.find_opt applied k));
            Some k)
          ~dedup:true ()
      in
      let client = Rpc.create net ~node:n2 ~port:1 () in
      let logical = 5 in
      let ok = ref 0 in
      for k = 1 to logical do
        Rpc.call_retry client ~to_:(Rpc.address server) ~timeout:1.0
          ~backoff:1.0 ~rng:(Dsim.Rng.create (Int64.of_int (seed + k)))
          ~attempts:200 k
          ~on_reply:(function Ok _ -> incr ok | Error _ -> ())
      done;
      ignore (En.run engine);
      (* at-most-once always; with this budget, exactly once *)
      Hashtbl.iter
        (fun k n ->
          if n <> 1 then
            QCheck.Test.fail_reportf "request %d applied %d times" k n)
        applied;
      !ok = logical && Hashtbl.length applied = logical)

let suite =
  [
    Alcotest.test_case "call/reply" `Quick test_call_reply;
    Alcotest.test_case "timeout on loss" `Quick test_timeout_on_loss;
    Alcotest.test_case "handler drop" `Quick test_handler_drop;
    Alcotest.test_case "no handler / set_handler" `Quick test_no_handler;
    Alcotest.test_case "correlation" `Quick test_correlation;
    Alcotest.test_case "two clients, one server" `Quick
      test_concurrent_clients_one_server;
    Alcotest.test_case "duplicate responses are late" `Quick
      test_duplicate_response_is_late;
    Alcotest.test_case "retry recovers loss" `Quick test_retry_recovers_loss;
    Alcotest.test_case "retry exhaustion stats" `Quick
      test_retry_exhaustion_stats;
    Alcotest.test_case "deadline cuts retries short" `Quick
      test_deadline_cuts_retries_short;
    Alcotest.test_case "deadline inert when replies flow" `Quick
      test_deadline_no_effect_when_reply_arrives;
    Alcotest.test_case "duplicate runs handler twice (no dedup)" `Quick
      test_duplicate_invokes_handler_twice_without_dedup;
    Alcotest.test_case "dedup applies once" `Quick test_dedup_applies_once;
    Alcotest.test_case "retry across crash/restart" `Quick
      test_retry_across_crash_restart;
    Alcotest.test_case "retry across partition/heal" `Quick
      test_retry_across_partition_heal;
    QCheck_alcotest.to_alcotest prop_exactly_once;
  ]

(* Tests for Dsim.Rpc — request/response over the simulated network. *)

module En = Dsim.Engine
module Net = Dsim.Network
module Rpc = Dsim.Rpc

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

let make ?(config = Net.default_config) () =
  let engine = En.create () in
  let net = Net.create ~config ~engine ~rng:(Dsim.Rng.create 42L) () in
  let n1 = Net.add_node net ~label:"server" in
  let n2 = Net.add_node net ~label:"client" in
  (engine, net, n1, n2)

let test_call_reply () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x * 2)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:10.0 21
    ~on_reply:(fun r -> got := Some r);
  check i "pending" 1 (Rpc.pending client);
  ignore (En.run engine);
  check b "reply" true (!got = Some (Ok 42));
  check i "none pending" 0 (Rpc.pending client);
  let s = Rpc.stats client in
  check i "calls" 1 s.Rpc.calls;
  check i "replies" 1 s.Rpc.replies;
  check i "timeouts" 0 s.Rpc.timeouts;
  check i "server served" 1 (Rpc.stats server).Rpc.served

let test_timeout_on_loss () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with drop_probability = 1.0 } ()
  in
  let _server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some x) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:{ Net.node = n1; port = 1 } ~timeout:3.0 1
    ~on_reply:(fun r -> got := Some r);
  ignore (En.run engine);
  check b "timeout" true (!got = Some (Error `Timeout));
  check i "timeout counted" 1 (Rpc.stats client).Rpc.timeouts;
  check b "clock advanced to timeout" true (En.now engine >= 3.0)

let test_handler_drop () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun _ -> None) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let got = ref None in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:3.0 1 ~on_reply:(fun r ->
      got := Some r);
  ignore (En.run engine);
  check b "timed out" true (!got = Some (Error `Timeout));
  check i "request dropped by handler" 1
    (Rpc.stats server).Rpc.dropped_requests

let test_no_handler () =
  let engine, net, n1, n2 = make () in
  let server : (int, int) Rpc.endpoint = Rpc.create net ~node:n1 ~port:1 () in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:2.0 1
    ~on_reply:(fun _ -> ());
  ignore (En.run engine);
  check i "unserved" 1 (Rpc.stats server).Rpc.dropped_requests;
  (* a handler installed later serves new calls *)
  Rpc.set_handler server (fun x -> Some (x + 1));
  let got = ref None in
  (* the round trip costs ~2.0-2.4 time units; give it room *)
  Rpc.call client ~to_:(Rpc.address server) ~timeout:5.0 1 ~on_reply:(fun r ->
      got := Some r);
  ignore (En.run engine);
  check b "served after set_handler" true (!got = Some (Ok 2))

let test_correlation () =
  let engine, net, n1, n2 = make () in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (x * 10)) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let replies = ref [] in
  List.iter
    (fun k ->
      Rpc.call client ~to_:(Rpc.address server) ~timeout:20.0 k
        ~on_reply:(fun r -> replies := (k, r) :: !replies))
    [ 1; 2; 3; 4; 5 ];
  ignore (En.run engine);
  check i "all replied" 5 (List.length !replies);
  List.iter
    (fun (k, r) ->
      if r <> Ok (k * 10) then Alcotest.failf "bad correlation for %d" k)
    !replies

let test_concurrent_clients_one_server () =
  let engine, net, n1, n2 = make () in
  let n3 = Net.add_node net ~label:"client2" in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some (-x)) ()
  in
  let c1 = Rpc.create net ~node:n2 ~port:1 () in
  let c2 = Rpc.create net ~node:n3 ~port:1 () in
  let ok = ref 0 in
  for k = 1 to 10 do
    Rpc.call c1 ~to_:(Rpc.address server) ~timeout:30.0 k ~on_reply:(fun r ->
        if r = Ok (-k) then incr ok);
    Rpc.call c2 ~to_:(Rpc.address server) ~timeout:30.0 (100 + k)
      ~on_reply:(fun r -> if r = Ok (-(100 + k)) then incr ok)
  done;
  ignore (En.run engine);
  check i "all 20 correct" 20 !ok;
  check i "server served 20" 20 (Rpc.stats server).Rpc.served

let test_duplicate_response_is_late () =
  let engine, net, n1, n2 =
    make ~config:{ Net.default_config with duplicate_probability = 1.0 } ()
  in
  let server =
    Rpc.create net ~node:n1 ~port:1 ~handler:(fun x -> Some x) ()
  in
  let client = Rpc.create net ~node:n2 ~port:1 () in
  let replies = ref 0 in
  Rpc.call client ~to_:(Rpc.address server) ~timeout:30.0 1
    ~on_reply:(fun _ -> incr replies);
  ignore (En.run engine);
  (* the duplicated request produces two responses, each possibly
     duplicated; exactly one reaches the callback *)
  check i "exactly one callback" 1 !replies;
  check b "surplus counted as late" true
    ((Rpc.stats client).Rpc.late_replies >= 1)

let suite =
  [
    Alcotest.test_case "call/reply" `Quick test_call_reply;
    Alcotest.test_case "timeout on loss" `Quick test_timeout_on_loss;
    Alcotest.test_case "handler drop" `Quick test_handler_drop;
    Alcotest.test_case "no handler / set_handler" `Quick test_no_handler;
    Alcotest.test_case "correlation" `Quick test_correlation;
    Alcotest.test_case "two clients, one server" `Quick
      test_concurrent_clients_one_server;
    Alcotest.test_case "duplicate responses are late" `Quick
      test_duplicate_response_is_late;
  ]

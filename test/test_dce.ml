(* Tests for Schemes.Dce — global directory service + cells. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module D = Schemes.Dce
module O = Naming.Occurrence
module Coh = Naming.Coherence

let check = Alcotest.check
let b = Alcotest.bool
let entity = Alcotest.testable E.pp E.equal

let fixture () =
  let st = S.create () in
  let t =
    D.build ~cells:[ ("cellA", [ "ma1"; "ma2" ]); ("cellB", [ "mb1" ]) ] st
  in
  (st, t)

let test_structure () =
  let _, t = fixture () in
  check (Alcotest.list Alcotest.string) "cells" [ "cellA"; "cellB" ] (D.cells t);
  check Alcotest.int "machines" 3 (List.length (D.machines t));
  check Alcotest.string "cell of ma2" "cellA" (D.cell_of_machine t "ma2");
  check Alcotest.string "cell of mb1" "cellB" (D.cell_of_machine t "mb1")

let test_global_binding () =
  let _, t = fixture () in
  List.iter
    (fun m ->
      check entity (m ^ " /... is gds root") (D.global_root t)
        (Vfs.Fs.lookup (Vfs.Fs.of_root (D.store t) (D.machine_root t m))
           ("/" ^ D.global_atom)))
    (D.machines t)

let test_cell_binding () =
  let _, t = fixture () in
  let p = D.spawn_on t ~machine:"ma1" in
  check entity "/.: is cellA" (D.cell_dir t "cellA")
    (D.resolve t ~as_:p ("/" ^ D.cell_atom));
  let q = D.spawn_on t ~machine:"mb1" in
  check entity "/.: is cellB for mb1" (D.cell_dir t "cellB")
    (D.resolve t ~as_:q ("/" ^ D.cell_atom))

let test_cells_reachable_globally () =
  let _, t = fixture () in
  let p = D.spawn_on t ~machine:"mb1" in
  (* cellA's services reachable from cellB machines via the global path. *)
  check entity "global path to foreign cell"
    (D.resolve t ~as_:(D.spawn_on t ~machine:"ma1") "/.:/services/print")
    (D.resolve t ~as_:p "/.../cells/cellA/services/print")

let test_coherence_split () =
  let st, t = fixture () in
  let pa = D.spawn_on t ~machine:"ma1" in
  let pa' = D.spawn_on t ~machine:"ma2" in
  let pb = D.spawn_on t ~machine:"mb1" in
  let rule = D.rule t in
  let cell_probes = D.cell_relative_probes t ~cell:"cellA" ~max_depth:4 in
  let global_probes = D.global_probes t ~max_depth:4 in
  (* within a cell, /.:-names cohere *)
  let within =
    Coh.measure st rule [ O.generated pa; O.generated pa' ] cell_probes
  in
  check (Alcotest.float 1e-9) "cell-relative within cell" 1.0
    (Coh.degree within);
  (* across cells they do not *)
  let across =
    Coh.measure st rule [ O.generated pa; O.generated pb ] cell_probes
  in
  check b "cell-relative across cells < 1" true (Coh.degree across < 1.0);
  (* global names cohere everywhere *)
  let global =
    Coh.measure st rule
      [ O.generated pa; O.generated pa'; O.generated pb ]
      global_probes
  in
  check (Alcotest.float 1e-9) "global names" 1.0 (Coh.degree global)

let test_map_cell_name () =
  let _, t = fixture () in
  let n = N.of_string "/.:/services/print" in
  let mapped = D.map_cell_name t ~cell:"cellA" n in
  check Alcotest.string "mapped" "/.../cells/cellA/services/print"
    (N.to_string mapped);
  let pb = D.spawn_on t ~machine:"mb1" in
  let pa = D.spawn_on t ~machine:"ma1" in
  check entity "mapping preserves meaning" (D.resolve t ~as_:pa "/.:/services/print")
    (Schemes.Process_env.resolve (D.env t) ~as_:pb mapped);
  (* non-cell names unchanged *)
  let g = N.of_string "/.../registry/orgs.txt" in
  check b "global name unchanged" true
    (N.equal g (D.map_cell_name t ~cell:"cellA" g))

let test_add_local_context () =
  let _, t = fixture () in
  (* a department context inside the cell, attached as an extra local
     context on one machine only *)
  let dept =
    Vfs.Fs.mkdir_path
      (Vfs.Fs.of_root (D.store t) (D.cell_dir t "cellA"))
      "departments/os-group"
  in
  D.add_local_context t ~machine:"ma1" ~name:".dept:" ~dir:dept;
  let p1 = D.spawn_on t ~machine:"ma1" in
  let p2 = D.spawn_on t ~machine:"ma2" in
  check entity "bound on ma1" dept (D.resolve t ~as_:p1 "/.dept:");
  check entity "absent on ma2" E.undefined (D.resolve t ~as_:p2 "/.dept:");
  (* more local contexts, more incoherence — exactly the paper's point *)
  check b "incoherent across the cell" false
    (Naming.Coherence.is_coherent (D.store t) (D.rule t)
       [ O.generated p1; O.generated p2 ]
       (N.of_string "/.dept:"));
  (match D.add_local_context t ~machine:"ma1" ~name:"x" ~dir:E.undefined with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-directory accepted")

let test_errors () =
  let st = S.create () in
  (match D.build ~cells:[] st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no cells accepted");
  let _, t = fixture () in
  (match D.cell_dir t "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown cell accepted");
  (match D.machine_root t "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown machine accepted")

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "global binding" `Quick test_global_binding;
    Alcotest.test_case "cell binding" `Quick test_cell_binding;
    Alcotest.test_case "cells reachable globally" `Quick
      test_cells_reachable_globally;
    Alcotest.test_case "coherence split" `Quick test_coherence_split;
    Alcotest.test_case "map_cell_name" `Quick test_map_cell_name;
    Alcotest.test_case "add_local_context" `Quick test_add_local_context;
    Alcotest.test_case "errors" `Quick test_errors;
  ]

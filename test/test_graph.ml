(* Tests for Naming.Graph: the naming graph view of a store. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module G = Naming.Graph

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int

(* root -> {bin -> {ls}, tmp}, plus dot edges on root when asked. *)
let fixture ?(dots = false) () =
  let st = S.create () in
  let root = S.create_context_object ~label:"root" st in
  let bin = S.create_context_object ~label:"bin" st in
  let ls = S.create_object ~label:"ls" st in
  let tmp = S.create_context_object ~label:"tmp" st in
  S.bind st ~dir:root (N.atom "bin") bin;
  S.bind st ~dir:root (N.atom "tmp") tmp;
  S.bind st ~dir:bin (N.atom "ls") ls;
  if dots then begin
    S.bind st ~dir:root N.self_atom root;
    S.bind st ~dir:root N.parent_atom root
  end;
  (st, root, bin, ls, tmp)

let test_edges_and_degree () =
  let st, root, bin, _, _ = fixture () in
  check i "total edges" 3 (List.length (G.edges st));
  check i "root degree" 2 (G.out_degree st root);
  check i "bin degree" 1 (G.out_degree st bin);
  let labels =
    List.map (fun (a, _) -> N.atom_to_string a) (G.out_edges st root)
  in
  check (Alcotest.list Alcotest.string) "sorted edge labels" [ "bin"; "tmp" ]
    labels

let test_out_edges_non_context () =
  let st, _, _, ls, _ = fixture () in
  check i "file has no out edges" 0 (List.length (G.out_edges st ls))

let test_reachable () =
  let st, root, bin, ls, tmp = fixture () in
  let r = G.reachable st ~from:root in
  check i "all reachable" 4 (E.Set.cardinal r);
  check b "contains ls" true (E.Set.mem ls r);
  let r2 = G.reachable st ~from:bin in
  check i "subtree" 2 (E.Set.cardinal r2);
  check b "tmp not from bin" false (E.Set.mem tmp r2)

let test_reachable_from_context () =
  let st, _, bin, _, tmp = fixture () in
  let ctx = C.of_bindings [ (N.atom "b", bin); (N.atom "t", tmp) ] in
  let r = G.reachable_from_context st ctx in
  check i "bin+ls+tmp" 3 (E.Set.cardinal r)

let test_cycles () =
  let st, root, bin, _, _ = fixture () in
  check b "acyclic" false (G.has_cycle st);
  S.bind st ~dir:bin (N.atom "up") root;
  check b "cyclic" true (G.has_cycle st)

let test_dots_cycle () =
  let st, _, _, _, _ = fixture ~dots:true () in
  check b "dot edges are cycles" true (G.has_cycle st)

let test_is_tree () =
  let st, root, bin, ls, _ = fixture ~dots:true () in
  let ignore_dots a =
    N.atom_equal a N.self_atom || N.atom_equal a N.parent_atom
  in
  check b "tree modulo dots" true (G.is_tree st ~root ~ignore:ignore_dots);
  (* A hard link makes it a DAG, not a tree. *)
  S.bind st ~dir:bin (N.atom "ls2") ls;
  check b "extra link breaks tree" false
    (G.is_tree st ~root ~ignore:ignore_dots)

let test_all_names () =
  let st, root, _, _, _ = fixture ~dots:true () in
  let ctx = C.of_bindings [ (N.atom "r", root) ] in
  let names = G.all_names st ctx ~max_depth:3 () in
  let strings = List.map (fun (n, _) -> N.to_string n) names in
  check b "has r" true (List.mem "r" strings);
  check b "has r/bin/ls" true (List.mem "r/bin/ls" strings);
  check b "skips dots by default" false (List.mem "r/./bin" strings);
  (* depth limiting *)
  let shallow = G.all_names st ctx ~max_depth:1 () in
  check i "depth 1" 1 (List.length shallow)

let test_all_names_custom_skip () =
  let st, root, _, _, _ = fixture () in
  let ctx = C.of_bindings [ (N.atom "r", root) ] in
  let skip a = N.atom_equal a (N.atom "bin") in
  let names = G.all_names st ctx ~max_depth:3 ~skip () in
  let strings = List.map (fun (n, _) -> N.to_string n) names in
  check b "bin pruned" false (List.mem "r/bin/ls" strings);
  check b "tmp kept" true (List.mem "r/tmp" strings)

let test_names_of () =
  let st, root, bin, ls, _ = fixture () in
  S.bind st ~dir:root (N.atom "ls-link") ls;
  let ctx = C.of_bindings [ (N.atom "r", root) ] in
  let names = G.names_of st ctx ~target:ls ~max_depth:3 () in
  let strings = List.map N.to_string names in
  check b "path name" true (List.mem "r/bin/ls" strings);
  check b "link name" true (List.mem "r/ls-link" strings);
  check i "exactly two" 2 (List.length strings);
  ignore bin

let test_to_dot () =
  let st, _, _, _, _ = fixture () in
  let dot = G.to_dot st in
  check b "digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  check b "mentions edge label" true
    (let rec contains i =
       i + 2 <= String.length dot
       && (String.equal (String.sub dot i 2) "ls" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "edges and degree" `Quick test_edges_and_degree;
    Alcotest.test_case "non-context out edges" `Quick test_out_edges_non_context;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "reachable from context" `Quick
      test_reachable_from_context;
    Alcotest.test_case "cycle detection" `Quick test_cycles;
    Alcotest.test_case "dot edges are cycles" `Quick test_dots_cycle;
    Alcotest.test_case "is_tree" `Quick test_is_tree;
    Alcotest.test_case "all_names" `Quick test_all_names;
    Alcotest.test_case "all_names custom skip" `Quick test_all_names_custom_skip;
    Alcotest.test_case "names_of finds links" `Quick test_names_of;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
  ]

(* Tests for Schemes.Embedded — Figure 6 and section 6, Example 2. *)

module S = Naming.Store
module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module Emb = Schemes.Embedded
module Fs = Vfs.Fs

let check = Alcotest.check
let b = Alcotest.bool
let i = Alcotest.int
let entity = Alcotest.testable E.pp E.equal

let test_content_roundtrip () =
  let refs = [ N.of_string "a/b"; N.of_string "c" ] in
  let content = Emb.make_content ~text:"hello\nworld" ~refs () in
  check (Alcotest.list Alcotest.string) "roundtrip" [ "a/b"; "c" ]
    (List.map N.to_string (Emb.refs_of_content content))

let test_content_ignores_noise () =
  let content = "@ref ok\nplain line\n@reference not-a-marker\n@ref also/ok" in
  check (Alcotest.list Alcotest.string) "parsed" [ "ok"; "also/ok" ]
    (List.map N.to_string (Emb.refs_of_content content));
  check i "empty content" 0 (List.length (Emb.refs_of_content ""))

let test_add_ref () =
  let st = S.create () in
  let fs = Fs.create st in
  let f = Fs.add_file fs "/f" ~content:"text" in
  Emb.add_ref st f (N.of_string "x/y");
  check (Alcotest.list Alcotest.string) "appended" [ "x/y" ]
    (List.map N.to_string (Emb.refs_of st f));
  let d = Fs.mkdir_path fs "/d" in
  (match Emb.add_ref st d (N.of_string "x") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "add_ref to directory accepted")

(* Figure 6 fixture:
     root/ a(binding at root) ...
     root/outer/  lib/{c}  inner/  lib'{shadow}  src-file *)
let scope_fixture () =
  let st = S.create () in
  let fs = Fs.create st in
  Fs.populate fs [ "outer/lib/c"; "outer/inner/f"; "lib/c" ];
  ( st,
    fs,
    Fs.lookup fs "/outer",
    Fs.lookup fs "/outer/inner",
    Fs.lookup fs "/outer/lib/c",
    Fs.lookup fs "/lib/c" )

let test_ancestors () =
  let st, fs, outer, inner, _, _ = scope_fixture () in
  let chain = Emb.ancestors st inner in
  check (Alcotest.list entity) "nearest first" [ inner; outer; Fs.root fs ]
    chain

let test_ancestors_cycle_cut () =
  let st = S.create () in
  let fs = Fs.create st in
  let a = Fs.mkdir_path fs "/a" in
  let bdir = Fs.mkdir_path fs "/a/b" in
  (* corrupt: make the root's parent point back down to b *)
  S.bind st ~dir:(Fs.root fs) N.parent_atom bdir;
  let chain = Emb.ancestors st a in
  check i "terminates" 3 (List.length chain)

let test_scope_nearest_wins () =
  let st, _, _, inner, _, _ = scope_fixture () in
  (* name lib/c from inner: inner has no lib, outer does -> outer's. *)
  let _, fs, outer, _, outer_c, root_c = scope_fixture () in
  ignore (st, inner);
  let inner' = Fs.lookup fs "/outer/inner" in
  let st' = Fs.store fs in
  check entity "outer shadows root" outer_c
    (Emb.resolve_at st' ~dir:inner' (N.of_string "lib/c"));
  (* from the root itself, the root's lib wins *)
  check entity "root scope" root_c
    (Emb.resolve_at st' ~dir:(Fs.root fs) (N.of_string "lib/c"));
  ignore outer

let test_scope_falls_back_to_ancestor () =
  let st, fs, _, inner, _, _ = scope_fixture () in
  (* "lib" only exists at outer and root; from inner it resolves. *)
  check b "found via ancestor" true
    (E.is_defined (Emb.resolve_at st ~dir:inner (N.of_string "lib/c")));
  check entity "unknown name is bottom" E.undefined
    (Emb.resolve_at st ~dir:inner (N.of_string "nothing/here"));
  ignore fs

let test_scope_context_union () =
  let st, fs, outer, inner, _, _ = scope_fixture () in
  let scope = Emb.scope_context st ~dir:inner in
  (* has outer's lib, root's lib shadowed, and inner's own f *)
  check entity "lib from outer"
    (Fs.lookup fs "/outer/lib")
    (C.lookup scope (N.atom "lib"));
  check entity "own binding"
    (Fs.lookup fs "/outer/inner/f")
    (C.lookup scope (N.atom "f"));
  check entity "root binding visible"
    (Fs.lookup fs "/outer")
    (C.lookup scope (N.atom "outer"));
  ignore outer

let test_home_of () =
  let st, fs, _, _, outer_c, _ = scope_fixture () in
  (match Emb.home_of st ~file:outer_c with
  | Some d -> check entity "home" (Fs.lookup fs "/outer/lib") d
  | None -> Alcotest.fail "no home");
  let orphan = S.create_object st in
  check b "orphan has no home" true (Emb.home_of st ~file:orphan = None)

let test_rule_algol () =
  let st, fs, _, _, outer_c, _ = scope_fixture () in
  (* a document inside inner embedding "lib/c" *)
  let doc =
    Fs.add_file fs "/outer/inner/doc"
      ~content:(Emb.make_content ~refs:[ N.of_string "lib/c" ] ())
  in
  let reader = S.create_activity st in
  let rule = Emb.rule_algol () in
  check entity "embedded occurrence uses the file's scope" outer_c
    (Naming.Rule.resolve rule st
       (Naming.Occurrence.embedded ~reader ~source:doc)
       (N.of_string "lib/c"));
  (* no context for other occurrence kinds *)
  check entity "generated is bottom" E.undefined
    (Naming.Rule.resolve rule st
       (Naming.Occurrence.generated reader)
       (N.of_string "lib/c"))

let test_resolve_closure_transitive () =
  let st = S.create () in
  let fs = Fs.create st in
  ignore (Fs.add_file fs "/p/figures/fig" ~content:"f");
  ignore
    (Fs.add_file fs "/p/chapter"
       ~content:(Emb.make_content ~refs:[ N.of_string "figures/fig" ] ()));
  let main =
    Fs.add_file fs "/p/main"
      ~content:(Emb.make_content ~refs:[ N.of_string "chapter" ] ())
  in
  let p = Fs.lookup fs "/p" in
  let closure = Emb.resolve_closure st ~dir:p main in
  check i "two refs transitively" 2 (List.length closure);
  check b "all resolved" true
    (List.for_all (fun (_, e) -> E.is_defined e) closure)

let test_resolve_closure_cyclic () =
  let st = S.create () in
  let fs = Fs.create st in
  let a = Fs.add_file fs "/p/a" ~content:"" in
  let bfile = Fs.add_file fs "/p/b" ~content:"" in
  Emb.add_ref st a (N.of_string "b");
  Emb.add_ref st bfile (N.of_string "a");
  let p = Fs.lookup fs "/p" in
  let closure = Emb.resolve_closure st ~dir:p a in
  check i "cycle cut" 2 (List.length closure)

(* property: for refs planted at random depths, resolve_at never returns
   an entity different from what the scope-context lookup says — the
   collapsed-context formalisation agrees with the search procedure. *)
let prop_scope_agrees_with_search =
  QCheck.Test.make ~name:"scope context = upward search" ~count:50
    QCheck.small_nat (fun seed ->
      let rng = Dsim.Rng.create (Int64.of_int (seed + 1)) in
      let st = S.create () in
      let fs = Fs.create st in
      let project =
        Workload.Docgen.build fs ~at:"p" ~rng ~spec:Workload.Docgen.default_spec
      in
      List.for_all
        (fun (dir, file) ->
          List.for_all
            (fun r ->
              let via_resolve = Emb.resolve_at st ~dir r in
              let via_scope =
                Naming.Resolver.resolve st (Emb.scope_context st ~dir) r
              in
              E.equal via_resolve via_scope)
            (Emb.refs_of st file))
        (Workload.Docgen.sources fs project))

let suite =
  [
    Alcotest.test_case "content roundtrip" `Quick test_content_roundtrip;
    Alcotest.test_case "content ignores noise" `Quick
      test_content_ignores_noise;
    Alcotest.test_case "add_ref" `Quick test_add_ref;
    Alcotest.test_case "ancestors" `Quick test_ancestors;
    Alcotest.test_case "ancestors cycle cut" `Quick test_ancestors_cycle_cut;
    Alcotest.test_case "nearest ancestor wins" `Quick test_scope_nearest_wins;
    Alcotest.test_case "falls back to ancestor" `Quick
      test_scope_falls_back_to_ancestor;
    Alcotest.test_case "scope context union" `Quick test_scope_context_union;
    Alcotest.test_case "home_of" `Quick test_home_of;
    Alcotest.test_case "rule_algol" `Quick test_rule_algol;
    Alcotest.test_case "resolve_closure transitive" `Quick
      test_resolve_closure_transitive;
    Alcotest.test_case "resolve_closure cyclic" `Quick
      test_resolve_closure_cyclic;
    QCheck_alcotest.to_alcotest prop_scope_agrees_with_search;
  ]

(* namingctl — command-line interface to the coherent-naming library.

   Subcommands:
     list               list the reproduced experiments
     exp <id|all>       run one experiment (e1..e10, a1..a4) or all of them
     report             run everything, emit a markdown report
     dump <scheme|all>  serialise a sample world (Naming.Codec v1)
     lint <scheme|all>  well-formedness report for a sample world
     analyze <scheme|all>
                        multi-pass static analysis of a sample world
                        (--json, --sarif, --min-severity, nonzero exit on
                        errors)
     check-script <file|sample|all>
                        static name-flow analysis of a script/flow plan
                        (--json, --sarif, --min-severity, --received-rule,
                        --embedded-rule; nonzero exit on errors)
     check-cluster <scheme|all>
                        static replication coherence analysis of a sample
                        world's cluster deployment: NG2xx diagnostics from
                        abstract interpretation of the fault schedule, no
                        simulator execution (--json, --sarif,
                        --min-severity, --seed, --drop, --partition,
                        --replicas, --mode lww|leader, --partition-leader,
                        --leader-kill; nonzero exit on errors)
     coherence <scheme> <name>
                        per-activity resolution and coherence verdict
     cache-stats <scheme|all>
                        run a representative cached workload over a sample
                        world and print the memoising resolver's counters
     diff <scheme>      bucketed namespace diff of two activities
     dot <scheme>       print the naming graph of a sample world (graphviz)
     trace <scheme> <name>
                        resolve a name in a sample world and print the
                        resolution path
     chaos <scheme|all>
                        run a replicated name service built from a sample
                        world through a fault schedule and report coherence
                        under failure (--seed, --drop, --partition,
                        --replicas, --mode lww|leader, --partition-leader,
                        --leader-kill, --json, --schedule FILE to replay
                        an explicit witness schedule verbatim; nonzero
                        exit when the replicas fail to reconverge)
     explore <scheme|all>
                        adversarial schedule exploration: bounded model
                        checking over the cluster's fault-schedule space,
                        synthesizing minimized replayable witnesses (NG3xx
                        diagnostics; --depth, --max-writes, --budget,
                        --seed, --replicas, --mode lww|leader, --json,
                        --sarif, --min-severity, --witness-dir, --jobs;
                        nonzero exit on errors)
     worldgen <template>
                        generate a large seeded world (unixlike,
                        perprocess, federated) and stream its Codec v1
                        dump to stdout or --out FILE (--size, --seed;
                        deterministic: same template/size/seed, same
                        bytes)
     estimate <scheme|world-file>
                        sampling-based coherence estimation: draw seeded
                        probes until the Wilson interval is tight enough
                        (--confidence, --epsilon, --max-samples, --seed,
                        --engine, --jobs, --json; nonzero exit when the
                        interval stays wider than epsilon)

   analyze, check-script, check-cluster, explore, chaos and cache-stats
   take --jobs N (default from NAMING_JOBS, else 1) to fan their sweeps
   across N domains; output is printed sequentially in input order
   regardless of jobs. *)

let sample_schemes = Harness.Sample.schemes

(* A small world (two activities in the positions the scheme makes
   interesting) for [dot], [dump], [trace], [coherence] and [analyze]. *)
let sample_world scheme =
  match Harness.Sample.world scheme with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown scheme %S (expected one of: %s)\n" scheme
        (String.concat ", " sample_schemes);
      exit 2

let cmd_list () =
  List.iter
    (fun e ->
      Printf.printf "%-4s %-24s %s\n" e.Harness.Experiments.id
        e.Harness.Experiments.paper_artefact e.Harness.Experiments.title)
    Harness.Experiments.all;
  0

let cmd_exp id =
  let ppf = Format.std_formatter in
  if String.equal (String.lowercase_ascii id) "all" then begin
    Harness.Experiments.run_all ppf;
    0
  end
  else
    match Harness.Experiments.find id with
    | Some e ->
        Harness.Experiments.run_one ppf e;
        0
    | None ->
        Printf.eprintf "unknown experiment %S; try 'namingctl list'\n" id;
        2

let cmd_dot scheme =
  let w = sample_world scheme in
  print_string (Naming.Graph.to_dot w.store);
  0

let cmd_report () =
  print_string (Harness.Report.generate ());
  0

(* Runs [f] on one scheme, or on every sample scheme when [arg] is
   "all"; the combined exit code is the max of the per-scheme codes. *)
let on_schemes arg f =
  if String.equal (String.lowercase_ascii arg) "all" then
    List.fold_left (fun acc s -> max acc (f s)) 0 sample_schemes
  else f arg

let cmd_dump scheme =
  on_schemes scheme (fun scheme ->
      let w = sample_world scheme in
      print_string (Naming.Codec.to_string w.store);
      0)

let cmd_lint scheme =
  on_schemes scheme (fun scheme ->
      let w = sample_world scheme in
      let report = Naming.Lint.check w.store in
      Format.printf "%s: %a@." scheme (Naming.Lint.pp_report w.store) report;
      if report.Naming.Lint.violations = [] then 0 else 1)

let cmd_trace scheme name =
  let w = sample_world scheme in
  match Naming.Name.of_string name with
  | exception Naming.Name.Invalid msg ->
      Printf.eprintf "invalid name: %s\n" msg;
      2
  | n ->
      let result, trace = Naming.Resolver.resolve_trace w.store w.ctx n in
      Format.printf "%a@." (Naming.Resolver.pp_trace w.store) trace;
      Format.printf "%s resolves to %a@." name (Naming.Store.pp_entity w.store)
        result;
      if Naming.Entity.is_undefined result then 1 else 0

let probes_of_world = Harness.Sample.probes

let cmd_diff scheme =
  let w = sample_world scheme in
  match w.activities with
  | a :: b :: _ ->
      let d = Harness.Diff.diff w.store w.rule ~a ~b ~probes:(probes_of_world w) in
      Format.printf "%a@." (Harness.Diff.pp w.store) d;
      Format.printf "coherent fraction: %.3f@." (Harness.Diff.coherent_fraction d);
      0
  | _ ->
      prerr_endline "sample world has fewer than two activities";
      2

let cmd_coherence scheme name =
  let w = sample_world scheme in
  match Naming.Name.of_string name with
  | exception Naming.Name.Invalid msg ->
      Printf.eprintf "invalid name: %s\n" msg;
      2
  | n ->
      let occs = List.map Naming.Occurrence.generated w.activities in
      List.iter
        (fun a ->
          let e =
            Naming.Rule.resolve w.rule w.store (Naming.Occurrence.generated a)
              n
          in
          Format.printf "  %a resolves it to %a@."
            (Naming.Store.pp_entity w.store)
            a
            (Naming.Store.pp_entity w.store)
            e)
        w.activities;
      let verdict = Naming.Coherence.check w.store w.rule occs n in
      Format.printf "verdict: %a@." Naming.Coherence.pp_verdict verdict;
      (match verdict with
      | Naming.Coherence.Coherent _ | Naming.Coherence.Weakly_coherent _ -> 0
      | Naming.Coherence.Incoherent _ | Naming.Coherence.Vacuous -> 1)

(* Three coherence sweeps (every probe from every activity) through one
   shared cache, with a mutation burst between the second and third: the
   workload every batch entry point runs, at observable scale. *)
let cmd_cache_stats scheme jobs =
  on_schemes scheme (fun scheme ->
      let w = sample_world scheme in
      let cache = Naming.Cache.create w.store in
      let occs = List.map Naming.Occurrence.generated w.activities in
      let probes = probes_of_world w in
      ignore (Naming.Coherence.measure ~cache ~jobs w.store w.rule occs probes);
      ignore (Naming.Coherence.measure ~cache ~jobs w.store w.rule occs probes);
      let scratch =
        Naming.Store.create_context_object ~label:"scratch" w.store
      in
      (match List.rev (Naming.Store.context_objects w.store) with
      | dir :: _ ->
          Naming.Store.bind w.store ~dir (Naming.Name.atom "scratch") scratch
      | [] -> ());
      ignore (Naming.Coherence.measure ~cache ~jobs w.store w.rule occs probes);
      let s = Naming.Cache.stats cache in
      let total = max 1 (s.Naming.Cache.hits + s.Naming.Cache.misses) in
      Printf.printf
        "%s: %d probes x %d activities, 3 sweeps, 1 mutation in between\n"
        scheme (List.length probes) (List.length w.activities);
      Printf.printf
        "  hits=%d misses=%d invalidations=%d evictions=%d entries=%d \
         hit_rate=%.4f\n"
        s.Naming.Cache.hits s.Naming.Cache.misses s.Naming.Cache.invalidations
        s.Naming.Cache.evictions s.Naming.Cache.entries
        (float_of_int s.Naming.Cache.hits /. float_of_int total);
      0)

(* Compiles each sample world to packed dispatch form and reports the
   table footprint, the compile cost, and the incremental patching
   behaviour: a full coherence sweep through the compiled engine, then a
   binding burst, then a second sweep — which must arrive via subtree
   patches, never a second full compile. *)
let cmd_compile_stats scheme jobs =
  on_schemes scheme (fun scheme ->
      let w = sample_world scheme in
      let reps = 50 in
      let t0 = Sys.time () in
      for _ = 1 to reps - 1 do
        ignore (Naming.Compiled.compile w.store)
      done;
      let compiled = Naming.Compiled.compile w.store in
      let compile_ms = (Sys.time () -. t0) *. 1000.0 /. float_of_int reps in
      let engine = Naming.Engine.Compiled compiled in
      let occs = List.map Naming.Occurrence.generated w.activities in
      let probes = probes_of_world w in
      ignore (Naming.Coherence.measure ~engine ~jobs w.store w.rule occs probes);
      let scratch =
        Naming.Store.create_context_object ~label:"scratch" w.store
      in
      (match List.rev (Naming.Store.context_objects w.store) with
      | dir :: _ ->
          Naming.Store.bind w.store ~dir (Naming.Name.atom "scratch") scratch
      | [] -> ());
      ignore (Naming.Coherence.measure ~engine ~jobs w.store w.rule occs probes);
      let s = Naming.Compiled.stats compiled in
      Printf.printf
        "%s: %d probes x %d activities, 2 sweeps, 1 binding burst in between\n"
        scheme (List.length probes) (List.length w.activities);
      Printf.printf "  compile=%.3fms %s\n" compile_ms
        (Format.asprintf "%a" Naming.Compiled.pp_stats s);
      if s.Naming.Compiled.full_compiles = 1 then 0
      else begin
        Printf.eprintf "  unexpected recompile (full_compiles=%d)\n"
          s.Naming.Compiled.full_compiles;
        1
      end)

(* Parses --mode, or prints the usage error and exits 2; chaos,
   check-cluster and explore all route through this. *)
let with_mode s f =
  match Dsim.Chaos.mode_of_string s with
  | None ->
      Printf.eprintf "invalid --mode %S (expected lww or leader)\n" s;
      2
  | Some mode -> f mode

(* Builds a replicated name service from a sample world's tree, runs one
   chaos schedule over it and reports coherence under failure. Exit code
   1 when the replicas fail to reconverge after the faults heal.
   [--schedule FILE] replays an explicit schedule (the witness format
   the explorer emits) verbatim; it takes precedence over the --seed,
   --drop, --partition, --replicas, --mode and leader-fault knobs. *)
let cmd_chaos scheme seed drop partition replicas mode partition_leader
    leader_kill json jobs schedule_file =
  with_mode mode @@ fun mode ->
  let schedule =
    match schedule_file with
    | None -> Ok None
    | Some file -> (
        match
          let ic = open_in_bin file in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Dsim.Chaos.schedule_of_json text
        with
        | Ok s -> Ok (Some s)
        | Error m -> Error (Printf.sprintf "%s: %s" file m)
        | exception Sys_error m -> Error m)
  in
  match schedule with
  | Error m ->
      Printf.eprintf "invalid --schedule: %s\n" m;
      2
  | Ok schedule ->
  let schemes =
    if String.equal (String.lowercase_ascii scheme) "all" then sample_schemes
    else [ scheme ]
  in
  let results =
    List.map
      (fun scheme ->
        let w = sample_world scheme in
        let spec = Dsim.Nameserver.spec_of_context w.store w.ctx in
        let probes =
          spec.Dsim.Nameserver.dirs
          @ List.map fst spec.Dsim.Nameserver.links
        in
        match schedule with
        | Some s -> (scheme, Dsim.Chaos.run_schedule ~jobs ~spec ~probes s)
        | None ->
            let config =
              {
                Dsim.Chaos.default with
                Dsim.Chaos.seed;
                drop;
                duplicate = drop;
                partition_for = partition;
                replicas;
                mode;
                partition_leader;
                leader_kill_for = leader_kill;
              }
            in
            (scheme, Dsim.Chaos.run ~jobs ~config ~spec ~probes ()))
      schemes
  in
  (match (json, results) with
  | true, [ (scheme, r) ] -> print_endline (Dsim.Chaos.to_json ~scheme r)
  | true, _ ->
      print_string "{\"schemes\": [\n";
      List.iteri
        (fun i (scheme, r) ->
          if i > 0 then print_string ",\n";
          print_string (Dsim.Chaos.to_json ~scheme r))
        results;
      print_endline "\n]}"
  | false, _ ->
      List.iter
        (fun (scheme, r) ->
          Format.printf "%a@." (Dsim.Chaos.pp_summary ~scheme) r)
        results);
  if List.for_all (fun (_, r) -> r.Dsim.Chaos.converged) results then 0 else 1

(* Parses --min-severity, or prints the usage error and exits 2; every
   report command routes through this, so the rejection message is
   uniform. *)
let with_min_severity s f =
  match Analysis.Diagnostic.severity_of_string s with
  | None ->
      Printf.eprintf
        "invalid --min-severity %S (expected info, warning or error)\n" s;
      2
  | Some min_severity -> f min_severity

(* The shared --json/--sarif reporting tail of analyze, check-script and
   check-cluster: renders the analyzed targets — (store, uri, line_of,
   report), in input order — in the requested format and returns the
   CI gate exit code (nonzero iff any report has error-severity
   diagnostics, independent of the display filter). [plural] keys the
   multi-target JSON document ("schemes", "scripts"). *)
let emit_reports ~json ~sarif ~plural targets =
  if sarif then
    print_endline
      (Analysis.Json.to_string_pretty
         (Analysis.Sarif.render
            (List.map
               (fun (_store, uri, line_of, r) ->
                 Analysis.Sarif.of_report ?uri ~line_of r)
               targets)))
  else if json then (
    match targets with
    | [ (store, _, _, r) ] ->
        print_endline
          (Analysis.Json.to_string_pretty (Analysis.Engine.to_json store r))
    | _ ->
        print_endline
          (Analysis.Json.to_string_pretty
             (Analysis.Json.Obj
                [
                  ( plural,
                    Analysis.Json.List
                      (List.map
                         (fun (store, _, _, r) ->
                           Analysis.Engine.to_json store r)
                         targets) );
                ])))
  else
    List.iter
      (fun (store, _, _, r) ->
        Format.printf "%a@." (Analysis.Engine.pp store) r)
      targets;
  Analysis.Engine.exit_code (List.map (fun (_, _, _, r) -> r) targets)

let no_line : int -> int option = fun _ -> None

let cmd_analyze scheme json sarif min_severity jobs =
  with_min_severity min_severity @@ fun min_severity ->
  let config = { Analysis.Engine.default_config with min_severity } in
  let schemes =
    if String.equal (String.lowercase_ascii scheme) "all" then sample_schemes
    else [ scheme ]
  in
  let subjects =
    List.map
      (fun scheme ->
        let w = sample_world scheme in
        let subject =
          Analysis.Subject.v ~probes:(probes_of_world w) ~rule:w.rule
            ~activities:w.activities w.store
        in
        (scheme, w.store, subject))
      schemes
  in
  let reports =
    Analysis.Engine.analyze_many ~config ~jobs
      (List.map (fun (label, _, subject) -> (label, subject)) subjects)
  in
  emit_reports ~json ~sarif ~plural:"schemes"
    (List.map2
       (fun (_, store, _) r -> (store, None, no_line, r))
       subjects reports)

(* A check-script target: a script file (takes precedence), a sample
   plan name, or 'all' (every sample plan). *)
let script_targets arg =
  if Sys.file_exists arg then begin
    let ic = open_in_bin arg in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Analysis.Flow.parse text with
    | Error msg ->
        Printf.eprintf "%s: %s\n" arg msg;
        Error 2
    | Ok (plan, lines) ->
        let line_of i =
          if i >= 0 && i < Array.length lines then Some lines.(i) else None
        in
        Ok [ (Filename.basename arg, plan, Some arg, line_of) ]
  end
  else
    let sample name =
      match Harness.Sample.script name with
      | Some plan -> Ok [ (name, plan, None, fun _ -> None) ]
      | None ->
          Printf.eprintf
            "unknown script %S (expected a file, one of: %s; or 'all')\n" name
            (String.concat ", " Harness.Sample.scripts);
          Error 2
    in
    if String.equal (String.lowercase_ascii arg) "all" then
      List.fold_left
        (fun acc name ->
          Result.bind acc (fun ts -> Result.map (( @ ) ts) (sample name)))
        (Ok []) Harness.Sample.scripts
    else sample arg

let cmd_check_script target json sarif min_severity received embedded jobs =
  with_min_severity min_severity @@ fun min_severity ->
  let received_rule =
    match received with
    | "receiver" -> Some `Receiver
    | "sender" -> Some `Sender
    | _ -> None
  in
  let embedded_rule =
    match embedded with
    | "reader" -> Some `Reader
    | "source" -> Some `Source
    | _ -> None
  in
  match (received_rule, embedded_rule) with
  | None, _ ->
      Printf.eprintf
        "invalid received-rule %S (expected receiver or sender)\n" received;
      2
  | _, None ->
      Printf.eprintf "invalid embedded-rule %S (expected reader or source)\n"
        embedded;
      2
  | Some received_rule, Some embedded_rule -> (
      match script_targets target with
      | Error code -> code
      | Ok targets ->
          let config =
            { Analysis.Flow.default_config with received_rule; embedded_rule }
          in
          let results =
            Analysis.Flowpasses.report_many ~min_severity ~config ~jobs
              (List.map (fun (label, plan, _, _) -> (label, plan)) targets)
          in
          let checked =
            List.map2
              (fun (_, _, uri, line_of) (_result, report) ->
                (uri, line_of, report))
              targets results
          in
          (* Flow diagnostics carry no store entities; any store renders
             them. *)
          let store = Naming.Store.create () in
          emit_reports ~json ~sarif ~plural:"scripts"
            (List.map
               (fun (uri, line_of, r) -> (store, uri, line_of, r))
               checked))

(* Statically analyzes the replicated deployment of a sample world's
   tree: same cluster spec and fault schedule as [cmd_chaos], but the
   NG2xx diagnostics come from abstract interpretation — no simulator
   execution. Exit code 1 on any error-severity diagnostic, for CI. *)
let cmd_check_cluster scheme json sarif min_severity seed drop partition
    replicas mode partition_leader leader_kill jobs =
  with_min_severity min_severity @@ fun min_severity ->
  with_mode mode @@ fun mode ->
  let schemes =
    if String.equal (String.lowercase_ascii scheme) "all" then sample_schemes
    else [ scheme ]
  in
  let subjects =
    List.map
      (fun scheme ->
        let w = sample_world scheme in
        let spec = Dsim.Nameserver.spec_of_context w.store w.ctx in
        let config =
          {
            Dsim.Chaos.default with
            Dsim.Chaos.seed;
            drop;
            duplicate = drop;
            partition_for = partition;
            replicas;
            mode;
            partition_leader;
            leader_kill_for = leader_kill;
          }
        in
        (scheme, w.store, Analysis.Replpasses.subject config spec))
      schemes
  in
  let results =
    Analysis.Replpasses.report_many ~min_severity ~jobs
      (List.map (fun (label, _, subject) -> (label, subject)) subjects)
  in
  emit_reports ~json ~sarif ~plural:"schemes"
    (List.map2
       (fun (_, store, _) (_state, r) -> (store, None, no_line, r))
       subjects results)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Adversarial schedule exploration over a sample world's cluster
   deployment: bounded model checking of the fault-schedule space with
   minimized, replayable witnesses (NG3xx). [--witness-dir DIR] writes
   each witness's minimized schedule (<scheme>-<code>-<i>.schedule.json,
   the format [chaos --schedule] replays) next to the chaos JSON report
   of its confirming replay (<scheme>-<code>-<i>.replay.json), so CI can
   verify the reproduction byte for byte. Exit code 1 on any
   error-severity diagnostic. *)
let cmd_explore scheme json sarif min_severity depth max_writes budget seed
    replicas mode jobs witness_dir =
  with_min_severity min_severity @@ fun min_severity ->
  with_mode mode @@ fun mode ->
  let config =
    {
      Analysis.Explore.default with
      Analysis.Explore.base =
        {
          Analysis.Explore.default.Analysis.Explore.base with
          Dsim.Chaos.replicas;
          mode;
        };
      depth;
      max_writes;
      budget;
      seed;
    }
  in
  let schemes =
    if String.equal (String.lowercase_ascii scheme) "all" then sample_schemes
    else [ scheme ]
  in
  let subjects =
    List.map
      (fun scheme ->
        let w = sample_world scheme in
        let spec = Dsim.Nameserver.spec_of_context w.store w.ctx in
        (scheme, w.store, Analysis.Explorepasses.subject ~config spec))
      schemes
  in
  let results =
    Analysis.Explorepasses.report_many ~min_severity ~jobs
      (List.map (fun (label, _, subject) -> (label, subject)) subjects)
  in
  (match witness_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter2
        (fun (scheme, _, _) ((outcome : Analysis.Explore.outcome), _) ->
          List.iteri
            (fun i (w : Analysis.Explore.witness) ->
              let base =
                Printf.sprintf "%s-%s-%d" scheme w.Analysis.Explore.code i
              in
              write_file
                (Filename.concat dir (base ^ ".schedule.json"))
                (Dsim.Chaos.schedule_to_json w.Analysis.Explore.schedule);
              write_file
                (Filename.concat dir (base ^ ".replay.json"))
                (Dsim.Chaos.to_json ~scheme w.Analysis.Explore.replay ^ "\n"))
            outcome.Analysis.Explore.witnesses)
        subjects results);
  emit_reports ~json ~sarif ~plural:"schemes"
    (List.map2
       (fun (_, store, _) (_outcome, r) -> (store, None, no_line, r))
       subjects results)

(* Generates a seeded world and streams its codec dump, never holding
   the dump text in memory: a million-entity world goes straight from
   the builder to the channel. *)
let cmd_worldgen template size seed out =
  match Harness.Worldgen.template_of_string template with
  | None ->
      Printf.eprintf "unknown template %S (expected one of: %s)\n" template
        (String.concat ", " Harness.Worldgen.templates);
      2
  | Some t -> (
      match Harness.Worldgen.build t ~size ~seed with
      | exception Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          2
      | w -> (
          match out with
          | None ->
              Naming.Codec.encode_to_channel w.store stdout;
              flush stdout;
              0
          | Some file ->
              let oc = open_out_bin file in
              Naming.Codec.encode_to_channel w.store oc;
              close_out oc;
              0))

(* An estimate target: a world file in codec format (takes precedence;
   reconstructed via the Process_env label convention) or a sample
   scheme name. *)
let estimate_world target =
  if Sys.file_exists target then begin
    let ic = open_in_bin target in
    let decoded = Naming.Codec.decode_from_channel ic in
    close_in ic;
    match decoded with
    | Error e ->
        Error
          (Printf.sprintf "%s:%d: %s" target e.Naming.Codec.line
             e.Naming.Codec.message)
    | Ok store -> (
        match Harness.Worldgen.of_store store with
        | Some w -> Ok w
        | None ->
            Error
              (Printf.sprintf
                 "%s: no measurable world in dump (activities and their \
                  context objects must carry the p<i>/p<i>.ctx labels)"
                 target))
  end
  else
    match Harness.Sample.world target with
    | Some w -> Ok w
    | None ->
        Error
          (Printf.sprintf
             "unknown scheme or file %S (expected a codec dump file or one \
              of: %s)"
             target
             (String.concat ", " sample_schemes))

(* Sampling-based coherence estimation over a sample scheme or a dumped
   world. The probe stream is fixed by --seed alone (batches drawn from
   split child streams), so the printed report is byte-identical across
   --jobs values and engines — CI diffs it. Exit code 1 when the
   confidence interval never reached the requested half-width. *)
let cmd_estimate target confidence epsilon max_samples seed engine jobs json =
  let engine_kind =
    match String.lowercase_ascii engine with
    | "" | "default" -> Ok None
    | "interpreted" -> Ok (Some `Interpreted)
    | "cached" -> Ok (Some `Cached)
    | "compiled" -> Ok (Some `Compiled)
    | _ ->
        Error
          (Printf.sprintf
             "invalid --engine %S (expected interpreted, cached or compiled)"
             engine)
  in
  match (estimate_world target, engine_kind) with
  | Error msg, _ | _, Error msg ->
      Printf.eprintf "%s\n" msg;
      2
  | Ok w, Ok engine_kind -> (
      let engine =
        Option.map (fun k -> Naming.Engine.create k w.store) engine_kind
      in
      let occs = List.map Naming.Occurrence.generated w.activities in
      let rng = Dsim.Rng.create seed in
      let sampler = Harness.Worldgen.sampler w in
      match
        Naming.Coherence.estimate ?engine ~jobs ~confidence ~epsilon
          ~max_samples ~rng w.store w.rule occs sampler
      with
      | exception Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          2
      | est ->
          let open Naming.Coherence in
          let half = (est.ci_high -. est.ci_low) /. 2.0 in
          if json then
            Printf.printf
              "{\"target\": %S, \"degree\": %.6f, \"strict_degree\": %.6f, \
               \"ci_low\": %.6f, \"ci_high\": %.6f, \"samples\": %d, \
               \"confidence\": %.6f, \"epsilon\": %.6f, \"converged\": %b}\n"
              target est.degree est.strict_degree est.ci_low est.ci_high
              est.samples confidence epsilon (half <= epsilon)
          else
            Format.printf "%s: %a@." target pp_estimate est;
          if half <= epsilon then 0 else 1)

open Cmdliner

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproduced experiments")
    Term.(const cmd_list $ const ())

let exp_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (e1..e10) or 'all'")
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run an experiment") Term.(const cmd_exp $ id)

let scheme_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEME"
         ~doc:(Printf.sprintf "One of: %s" (String.concat ", " sample_schemes)))

let scheme_or_all_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEME"
         ~doc:(Printf.sprintf "One of: %s; or 'all'"
                 (String.concat ", " sample_schemes)))

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Print a sample world's naming graph (graphviz)")
    Term.(const cmd_dot $ scheme_arg)

let dump_cmd =
  Cmd.v
    (Cmd.info "dump" ~doc:"Serialise a sample world's store (Codec v1 format)")
    Term.(const cmd_dump $ scheme_or_all_arg)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON")

let sarif_flag =
  Arg.(value & flag
       & info [ "sarif" ]
           ~doc:"Emit the report as SARIF 2.1.0 (for code scanning); \
                 takes precedence over --json")

let min_severity_opt =
  Arg.(value & opt string "info"
       & info [ "min-severity" ] ~docv:"SEV"
           ~doc:"Report only diagnostics at least this severe: info, \
                 warning or error. The exit code always reflects errors.")

let jobs_opt =
  Arg.(value & opt int (Naming.Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Evaluate the sweeps on $(docv) domains (defaults to \
                 NAMING_JOBS when set, else 1 = fully sequential). \
                 Results and output order do not depend on $(docv).")

(* The fault-schedule knobs, shared between [chaos] (which executes the
   schedule) and [check-cluster] (which interprets it abstractly). *)
let seed_opt =
  Arg.(value & opt int Dsim.Chaos.default.Dsim.Chaos.seed
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Chaos schedule seed. The same seed reproduces the \
                 schedule (and the chaos run sample for sample).")

let drop_opt =
  Arg.(value & opt float Dsim.Chaos.default.Dsim.Chaos.drop
       & info [ "drop" ] ~docv:"P"
           ~doc:"Per-message loss (and duplication) probability.")

let partition_opt =
  Arg.(value & opt float Dsim.Chaos.default.Dsim.Chaos.partition_for
       & info [ "partition" ] ~docv:"SECONDS"
           ~doc:"Length of the network partition window (0 disables \
                 the partition).")

let replicas_opt =
  Arg.(value & opt int Dsim.Chaos.default.Dsim.Chaos.replicas
       & info [ "replicas" ] ~docv:"N" ~doc:"Name-server replicas.")

let mode_opt =
  Arg.(value & opt string "lww"
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Consistency tier: 'lww' (last-writer-wins replicas \
                 reconciled by anti-entropy) or 'leader' \
                 (leader-replicated log with quorum commit and atomic \
                 multi-name transactions).")

let partition_leader_flag =
  Arg.(value & flag
       & info [ "partition-leader" ]
           ~doc:"Leader mode only: instead of static halves, the \
                 partition cuts whoever leads at partition time (plus \
                 its client) off alone — the minority-leader deposition \
                 scenario.")

let leader_kill_opt =
  Arg.(value & opt float Dsim.Chaos.default.Dsim.Chaos.leader_kill_for
       & info [ "leader-kill" ] ~docv:"SECONDS"
           ~doc:"Leader mode only: downtime of whoever leads at the \
                 kill instant (0 disables the targeted fault).")

let schedule_opt =
  Arg.(value & opt (some string) None
       & info [ "schedule" ] ~docv:"FILE"
           ~doc:"Replay this explicit schedule file (the explorer's \
                 witness format) verbatim; takes precedence over \
                 --seed, --drop, --partition, --replicas, --mode and \
                 the leader-fault knobs.")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a replicated name service built from a sample world \
             through a fault schedule (message loss, a partition window, \
             a replica crash/restart, targeted leader faults) in either \
             consistency tier and report coherence over time; exits \
             nonzero when the replicas fail to reconverge")
    Term.(const cmd_chaos $ scheme_or_all_arg $ seed_opt $ drop_opt
          $ partition_opt $ replicas_opt $ mode_opt
          $ partition_leader_flag $ leader_kill_opt $ json_flag $ jobs_opt
          $ schedule_opt)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Multi-pass static analysis of a sample world's naming graph; \
             exits nonzero when any error-severity diagnostic fires")
    Term.(const cmd_analyze $ scheme_or_all_arg $ json_flag $ sarif_flag
          $ min_severity_opt $ jobs_opt)

let check_script_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCRIPT"
           ~doc:(Printf.sprintf
                   "A script file, or one of the sample plans: %s; or 'all'"
                   (String.concat ", " Harness.Sample.scripts)))
  in
  let received_rule =
    Arg.(value & opt string "receiver"
         & info [ "received-rule" ] ~docv:"RULE"
             ~doc:"Context for received names: 'receiver' (the common OS \
                   closure) or 'sender' (remap with the message).")
  in
  let embedded_rule =
    Arg.(value & opt string "reader"
         & info [ "embedded-rule" ] ~docv:"RULE"
             ~doc:"Context for embedded names: 'reader' or 'source' (the \
                   object's own scope).")
  in
  Cmd.v
    (Cmd.info "check-script"
       ~doc:"Static name-flow analysis of a script: classify every \
             use/send/read flow as coherent, incoherent or unknown \
             without running it; exits nonzero when any flow is provably \
             incoherent")
    Term.(const cmd_check_script $ target $ json_flag $ sarif_flag
          $ min_severity_opt $ received_rule $ embedded_rule $ jobs_opt)

let check_cluster_cmd =
  Cmd.v
    (Cmd.info "check-cluster"
       ~doc:"Static replication coherence analysis of a sample world's \
             cluster deployment: interpret the fault schedule abstractly \
             and report NG2xx diagnostics (under lww: lost-update races, \
             unreachable replicas, staleness, durability holes; under \
             leader: provable no-quorum windows and unknown-outcome \
             horizons) without executing the simulator; exits nonzero on \
             any error-severity diagnostic")
    Term.(const cmd_check_cluster $ scheme_or_all_arg $ json_flag
          $ sarif_flag $ min_severity_opt $ seed_opt $ drop_opt
          $ partition_opt $ replicas_opt $ mode_opt
          $ partition_leader_flag $ leader_kill_opt $ jobs_opt)

let explore_cmd =
  let depth_opt =
    Arg.(value & opt int Analysis.Explore.default.Analysis.Explore.depth
         & info [ "depth" ] ~docv:"N"
             ~doc:"Candidate fault-window start boundaries (anti-entropy \
                   ticks) to explore.")
  in
  let max_writes_opt =
    Arg.(value & opt int Analysis.Explore.default.Analysis.Explore.max_writes
         & info [ "max-writes" ] ~docv:"N"
             ~doc:"Writes per candidate schedule, at most.")
  in
  let budget_opt =
    Arg.(value & opt int Analysis.Explore.default.Analysis.Explore.budget
         & info [ "budget" ] ~docv:"N"
             ~doc:"Candidate schedules enumerated at most.")
  in
  let witness_dir_opt =
    Arg.(value & opt (some string) None
         & info [ "witness-dir" ] ~docv:"DIR"
             ~doc:"Write each witness's minimized schedule \
                   (*.schedule.json, replayable with chaos --schedule) \
                   and the chaos JSON report of its confirming replay \
                   (*.replay.json) into $(docv).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Adversarially explore the fault-schedule space of a sample \
             world's cluster deployment (bounded model checking with \
             partial-order and symmetry reduction) and report NG3xx \
             diagnostics, each backed by a minimized schedule witness \
             that 'chaos --schedule' replays verbatim; with --mode \
             leader the synthesized loss schedules replay against the \
             leader tier and are discharged unless a commit is actually \
             lost; exits nonzero on any error-severity diagnostic")
    Term.(const cmd_explore $ scheme_or_all_arg $ json_flag $ sarif_flag
          $ min_severity_opt $ depth_opt $ max_writes_opt $ budget_opt
          $ seed_opt $ replicas_opt $ mode_opt $ jobs_opt
          $ witness_dir_opt)

let worldgen_cmd =
  let template =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TEMPLATE"
           ~doc:(Printf.sprintf "One of: %s"
                   (String.concat ", " Harness.Worldgen.templates)))
  in
  let size =
    Arg.(value & opt int 10_000
         & info [ "size" ] ~docv:"N"
             ~doc:"Entities in the generated store (at least 64).")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Generator seed. The same template, size and seed \
                   rebuild the identical world, bind for bind.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the dump to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "worldgen"
       ~doc:"Generate a large seeded world from a template (zipf-shaped \
             directory fan-out, scaled to --size entities) and stream \
             its Codec v1 dump without materialising it")
    Term.(const cmd_worldgen $ template $ size $ seed $ out)

let estimate_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORLD"
           ~doc:(Printf.sprintf
                   "A Codec v1 world file (e.g. from worldgen), or one \
                    of: %s"
                   (String.concat ", " sample_schemes)))
  in
  let confidence =
    Arg.(value & opt float 0.95
         & info [ "confidence" ] ~docv:"C"
             ~doc:"Confidence level of the Wilson interval, in (0, 1).")
  in
  let epsilon =
    Arg.(value & opt float 0.01
         & info [ "epsilon" ] ~docv:"E"
             ~doc:"Stop once the interval half-width is at most $(docv).")
  in
  let max_samples =
    Arg.(value & opt int 100_000
         & info [ "max-samples" ] ~docv:"N"
             ~doc:"Hard cap on drawn probes; exits nonzero if the \
                   interval is still wider than epsilon when it hits.")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Probe-stream seed. The estimate depends only on \
                   $(docv) — never on --jobs or --engine.")
  in
  let engine =
    Arg.(value & opt string "default"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Resolution engine: interpreted, cached or compiled \
                   (default: the library's usual selection, honouring \
                   NAMING_ENGINE).")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate a world's coherence degree by sequential sampling: \
             draw seeded probes until the Wilson score interval at the \
             requested confidence is tighter than epsilon, instead of \
             sweeping every name exactly; exits nonzero when the \
             interval never converges within --max-samples")
    Term.(const cmd_estimate $ target $ confidence $ epsilon $ max_samples
          $ seed $ engine $ jobs_opt $ json_flag)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run all experiments and print a markdown report")
    Term.(const cmd_report $ const ())

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"Check a sample world's well-formedness")
    Term.(const cmd_lint $ scheme_or_all_arg)

let name_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME"
         ~doc:"Name to resolve, e.g. /usr/bin/cc")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Resolve a name in a sample world, with trace")
    Term.(const cmd_trace $ scheme_arg $ name_arg)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff the namespaces of a sample world's two activities")
    Term.(const cmd_diff $ scheme_arg)

let coherence_cmd =
  Cmd.v
    (Cmd.info "coherence"
       ~doc:"Check a name's coherence across a sample world's activities")
    Term.(const cmd_coherence $ scheme_arg $ name_arg)

let cache_stats_cmd =
  Cmd.v
    (Cmd.info "cache-stats"
       ~doc:"Run a representative cached workload over a sample world and \
             print the memoising resolver's hit/miss/invalidation counters")
    Term.(const cmd_cache_stats $ scheme_or_all_arg $ jobs_opt)

let compile_stats_cmd =
  Cmd.v
    (Cmd.info "compile-stats"
       ~doc:"Compile a sample world to packed dispatch tables and print \
             their footprint, compile time and incremental-patch counters")
    Term.(const cmd_compile_stats $ scheme_or_all_arg $ jobs_opt)

let main =
  let man =
    [
      `S Manpage.s_description;
      `P "Inspection: $(b,list), $(b,dot), $(b,dump), $(b,trace), \
          $(b,diff), $(b,coherence), $(b,cache-stats), \
          $(b,compile-stats).";
      `P "Experiments: $(b,exp), $(b,report).";
      `P "Scale: $(b,worldgen) (seeded million-entity worlds, streamed \
          as Codec v1), $(b,estimate) (sampling-based coherence degree \
          with a Wilson confidence interval).";
      `P "Static analysis: $(b,lint), $(b,analyze) (NG0xx, worlds), \
          $(b,check-script) (NG1xx, scripts), $(b,check-cluster) \
          (NG2xx, one fault schedule), $(b,explore) (NG3xx, the whole \
          bounded schedule space).";
      `P "Dynamic verification: $(b,chaos) (optionally replaying an \
          explorer witness with $(b,--schedule)).";
    ]
  in
  let info =
    Cmd.info "namingctl" ~version:"1.0.0" ~man
      ~doc:
        "Coherence in naming (Radia & Pachl, ICDCS 1993) — experiment and
inspection tool"
  in
  Cmd.group info
    [
      list_cmd; exp_cmd; report_cmd; dot_cmd; dump_cmd; lint_cmd;
      analyze_cmd; check_script_cmd; check_cluster_cmd; explore_cmd;
      trace_cmd; coherence_cmd; diff_cmd; cache_stats_cmd;
      compile_stats_cmd; chaos_cmd; worldgen_cmd; estimate_cmd;
    ]

let () = exit (Cmd.eval' main)

(* namingctl — command-line interface to the coherent-naming library.

   Subcommands:
     list               list the reproduced experiments
     exp <id|all>       run one experiment (e1..e10, a1..a4) or all of them
     report             run everything, emit a markdown report
     dump <scheme>      serialise a sample world (Naming.Codec v1)
     lint <scheme>      well-formedness report for a sample world
     coherence <scheme> <name>
                        per-activity resolution and coherence verdict
     diff <scheme>      bucketed namespace diff of two activities
     dot <scheme>       print the naming graph of a sample world (graphviz)
     trace <scheme> <name>
                        resolve a name in a sample world and print the
                        resolution path *)

let sample_schemes = [ "unix"; "newcastle"; "andrew"; "dce"; "crosslink"; "perprocess"; "federation" ]

type world = {
  store : Naming.Store.t;
  ctx : Naming.Context.t;  (* a representative activity's context *)
  rule : Naming.Rule.t;
  activities : Naming.Entity.t list;
}

(* Builds a small world (two activities in the positions the scheme makes
   interesting) for [dot], [dump], [trace] and [coherence]. *)
let sample_world scheme =
  let store = Naming.Store.create () in
  let of_env env ps =
    match ps with
    | p :: _ ->
        {
          store;
          ctx = Schemes.Process_env.context env p;
          rule = Schemes.Process_env.rule env;
          activities = ps;
        }
    | [] -> assert false
  in
  match scheme with
  | "unix" ->
      let t = Schemes.Unix_scheme.build store in
      of_env (Schemes.Unix_scheme.env t)
        [
          Schemes.Unix_scheme.spawn ~label:"p0" t;
          Schemes.Unix_scheme.spawn_chrooted ~label:"p1" ~root_path:"/usr" t;
        ]
  | "newcastle" ->
      let t = Schemes.Newcastle.build ~machines:[ "unix1"; "unix2" ] store in
      of_env (Schemes.Newcastle.env t)
        [
          Schemes.Newcastle.spawn_on ~label:"p0" t ~machine:"unix1";
          Schemes.Newcastle.spawn_on ~label:"p1" t ~machine:"unix2";
        ]
  | "andrew" ->
      let t = Schemes.Shared_graph.build ~clients:[ "c1"; "c2" ] store in
      of_env (Schemes.Shared_graph.env t)
        [
          Schemes.Shared_graph.spawn_on ~label:"p0" t ~client:"c1";
          Schemes.Shared_graph.spawn_on ~label:"p1" t ~client:"c2";
        ]
  | "dce" ->
      let t =
        Schemes.Dce.build ~cells:[ ("cellA", [ "m1" ]); ("cellB", [ "m2" ]) ]
          store
      in
      of_env (Schemes.Dce.env t)
        [
          Schemes.Dce.spawn_on ~label:"p0" t ~machine:"m1";
          Schemes.Dce.spawn_on ~label:"p1" t ~machine:"m2";
        ]
  | "crosslink" ->
      let tree = Schemes.Unix_scheme.default_tree in
      let t =
        Schemes.Crosslink.build ~systems:[ ("sysa", tree); ("sysb", tree) ]
          store
      in
      Schemes.Crosslink.add_crosslink t ~from_system:"sysa" ~name:"sysb"
        ~to_system:"sysb" ();
      of_env (Schemes.Crosslink.env t)
        [
          Schemes.Crosslink.spawn_on ~label:"p0" t ~system:"sysa";
          Schemes.Crosslink.spawn_on ~label:"p1" t ~system:"sysb";
        ]
  | "perprocess" ->
      let tree = Schemes.Unix_scheme.default_tree in
      let t =
        Schemes.Per_process.build
          ~subsystems:[ ("port1", tree); ("port2", tree) ]
          store
      in
      let attach = [ ("fs1", "port1"); ("fs2", "port2") ] in
      of_env (Schemes.Per_process.env t)
        [
          Schemes.Per_process.spawn ~label:"p0" ~attach t;
          Schemes.Per_process.spawn ~label:"p1" ~attach t;
        ]
  | "federation" ->
      let t =
        Schemes.Federation.build
          ~orgs:
            [
              ( "org1",
                Schemes.Federation.default_org_tree ~users:[ "alice" ]
                  ~services:[ "print" ] );
              ( "org2",
                Schemes.Federation.default_org_tree ~users:[ "bob" ]
                  ~services:[ "auth" ] );
            ]
          store
      in
      Schemes.Federation.federate t ~from:"org1" ~to_:"org2";
      of_env (Schemes.Federation.env t)
        [
          Schemes.Federation.spawn_in ~label:"p0" t ~org:"org1";
          Schemes.Federation.spawn_in ~label:"p1" t ~org:"org2";
        ]
  | other ->
      Printf.eprintf "unknown scheme %S (expected one of: %s)\n" other
        (String.concat ", " sample_schemes);
      exit 2

let cmd_list () =
  List.iter
    (fun e ->
      Printf.printf "%-4s %-24s %s\n" e.Harness.Experiments.id
        e.Harness.Experiments.paper_artefact e.Harness.Experiments.title)
    Harness.Experiments.all;
  0

let cmd_exp id =
  let ppf = Format.std_formatter in
  if String.equal (String.lowercase_ascii id) "all" then begin
    Harness.Experiments.run_all ppf;
    0
  end
  else
    match Harness.Experiments.find id with
    | Some e ->
        Harness.Experiments.run_one ppf e;
        0
    | None ->
        Printf.eprintf "unknown experiment %S; try 'namingctl list'\n" id;
        2

let cmd_dot scheme =
  let w = sample_world scheme in
  print_string (Naming.Graph.to_dot w.store);
  0

let cmd_report () =
  print_string (Harness.Report.generate ());
  0

let cmd_dump scheme =
  let w = sample_world scheme in
  print_string (Naming.Codec.to_string w.store);
  0

let cmd_lint scheme =
  let w = sample_world scheme in
  let report = Naming.Lint.check w.store in
  Format.printf "%a@." (Naming.Lint.pp_report w.store) report;
  if report.Naming.Lint.violations = [] then 0 else 1

let cmd_trace scheme name =
  let w = sample_world scheme in
  match Naming.Name.of_string name with
  | exception Naming.Name.Invalid msg ->
      Printf.eprintf "invalid name: %s\n" msg;
      2
  | n ->
      let result, trace = Naming.Resolver.resolve_trace w.store w.ctx n in
      Format.printf "%a@." (Naming.Resolver.pp_trace w.store) trace;
      Format.printf "%s resolves to %a@." name (Naming.Store.pp_entity w.store)
        result;
      if Naming.Entity.is_undefined result then 1 else 0

let probes_of_world (w : world) =
  (* generic probe set: absolute names resolvable by the first activity *)
  match
    Naming.Context.lookup w.ctx Naming.Name.root_atom |> fun root ->
    Naming.Store.context_of w.store root
  with
  | None -> []
  | Some root_ctx ->
      Naming.Name.singleton Naming.Name.root_atom
      :: List.map
           (fun (n, _e) -> Naming.Name.cons Naming.Name.root_atom n)
           (Naming.Graph.all_names w.store root_ctx ~max_depth:3 ())

let cmd_diff scheme =
  let w = sample_world scheme in
  match w.activities with
  | a :: b :: _ ->
      let d = Harness.Diff.diff w.store w.rule ~a ~b ~probes:(probes_of_world w) in
      Format.printf "%a@." (Harness.Diff.pp w.store) d;
      Format.printf "coherent fraction: %.3f@." (Harness.Diff.coherent_fraction d);
      0
  | _ ->
      prerr_endline "sample world has fewer than two activities";
      2

let cmd_coherence scheme name =
  let w = sample_world scheme in
  match Naming.Name.of_string name with
  | exception Naming.Name.Invalid msg ->
      Printf.eprintf "invalid name: %s\n" msg;
      2
  | n ->
      let occs = List.map Naming.Occurrence.generated w.activities in
      List.iter
        (fun a ->
          let e =
            Naming.Rule.resolve w.rule w.store (Naming.Occurrence.generated a)
              n
          in
          Format.printf "  %a resolves it to %a@."
            (Naming.Store.pp_entity w.store)
            a
            (Naming.Store.pp_entity w.store)
            e)
        w.activities;
      let verdict = Naming.Coherence.check w.store w.rule occs n in
      Format.printf "verdict: %a@." Naming.Coherence.pp_verdict verdict;
      (match verdict with
      | Naming.Coherence.Coherent _ | Naming.Coherence.Weakly_coherent _ -> 0
      | Naming.Coherence.Incoherent _ | Naming.Coherence.Vacuous -> 1)

open Cmdliner

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproduced experiments")
    Term.(const cmd_list $ const ())

let exp_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (e1..e10) or 'all'")
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run an experiment") Term.(const cmd_exp $ id)

let scheme_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEME"
         ~doc:(Printf.sprintf "One of: %s" (String.concat ", " sample_schemes)))

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Print a sample world's naming graph (graphviz)")
    Term.(const cmd_dot $ scheme_arg)

let dump_cmd =
  Cmd.v
    (Cmd.info "dump" ~doc:"Serialise a sample world's store (Codec v1 format)")
    Term.(const cmd_dump $ scheme_arg)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run all experiments and print a markdown report")
    Term.(const cmd_report $ const ())

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"Check a sample world's well-formedness")
    Term.(const cmd_lint $ scheme_arg)

let name_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME"
         ~doc:"Name to resolve, e.g. /usr/bin/cc")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Resolve a name in a sample world, with trace")
    Term.(const cmd_trace $ scheme_arg $ name_arg)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff the namespaces of a sample world's two activities")
    Term.(const cmd_diff $ scheme_arg)

let coherence_cmd =
  Cmd.v
    (Cmd.info "coherence"
       ~doc:"Check a name's coherence across a sample world's activities")
    Term.(const cmd_coherence $ scheme_arg $ name_arg)

let main =
  let info =
    Cmd.info "namingctl" ~version:"1.0.0"
      ~doc:
        "Coherence in naming (Radia & Pachl, ICDCS 1993) — experiment and
inspection tool"
  in
  Cmd.group info
    [
      list_cmd; exp_cmd; report_cmd; dot_cmd; dump_cmd; lint_cmd; trace_cmd;
      coherence_cmd; diff_cmd;
    ]

let () = exit (Cmd.eval' main)

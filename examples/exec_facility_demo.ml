(* The remote execution facility, end to end (paper, section 6, II).

   A client on port1 asks port2's exec server to run a program that reads
   two files: one named in the CLIENT's namespace, one at the execution
   site. Because the child inherits the client's namespace and attaches
   its site as /local, both names mean the right thing — the paper's
   "powerful remote execution facility", with the request, the spawn and
   the reply all travelling through the simulated network.

   Run with:  dune exec examples/exec_facility_demo.exe *)

module N = Naming.Name
module Ef = Schemes.Exec_facility

let () =
  let engine = Dsim.Engine.create () in
  let rng = Dsim.Rng.create 9L in
  let store = Naming.Store.create () in
  let t =
    Ef.build
      ~subsystems:
        [
          ("port1", [ "home/alice/query.sql"; "tmp/" ]);
          ("port2", [ "data/warehouse.db"; "tmp/" ]);
        ]
      ~engine ~rng store
  in
  (* give the files content *)
  let fs1 = Schemes.Per_process.subsystem_fs (Ef.world t) "port1" in
  let fs2 = Schemes.Per_process.subsystem_fs (Ef.world t) "port2" in
  Vfs.Fs.write fs1 (Vfs.Fs.lookup fs1 "/home/alice/query.sql")
    "SELECT coherence FROM names;";
  Vfs.Fs.write fs2 (Vfs.Fs.lookup fs2 "/data/warehouse.db")
    "(the big data set that must not move)";

  let client =
    Ef.new_client ~label:"alice" t ~on:"port1" ~attach:[ ("fs", "port1") ]
  in
  Format.printf
    "alice (port1) runs her query remotely on port2, next to the data:@.";
  Ef.exec_remote t ~client ~on:"port2"
    ~reads:
      [
        N.of_string "/fs/home/alice/query.sql";
        N.of_string "/local/data/warehouse.db";
      ]
    ~on_result:(fun result ->
      match result with
      | Ok reads ->
          List.iter
            (fun (name, content) ->
              Format.printf "  %-28s -> %s@." (N.to_string name)
                (match content with
                | Some c -> Printf.sprintf "%S" c
                | None -> "⊥"))
            reads
      | Error (`Timeout | `Unavailable) -> Format.printf "  timed out@.")
    ();
  ignore (Dsim.Engine.run engine);
  Format.printf
    "@.%d child spawned; the query came from alice's namespace, the data
never left port2 — parameter coherence AND local access, with no global
names anywhere.@."
    (Ef.children_spawned t)

(* Structured documents with embedded file names (paper, section 6, Ex. 2).

   A report includes chapters by name, LaTeX-style. Under the usual
   reader's-context interpretation the document changes meaning with the
   reader; under the Algol-scope rule it does not, and it can be moved and
   copied freely.

   Run with:  dune exec examples/document_build.exe *)

module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store
module Emb = Schemes.Embedded

let () =
  let store = S.create () in
  let fs = Vfs.Fs.create ~root_label:"host:/" store in
  Vfs.Fs.populate fs [ "tmp/"; "home/alice/"; "home/bob/" ];

  (* alice writes a book: main.tex includes chapters/intro.tex, which in
     turn includes figures/fig1. *)
  ignore (Vfs.Fs.add_file fs "home/alice/book/figures/fig1" ~content:"a graph");
  ignore
    (Vfs.Fs.add_file fs "home/alice/book/chapters/intro.tex"
       ~content:
         (Emb.make_content ~text:"Welcome."
            ~refs:[ N.of_string "figures/fig1" ]
            ()));
  ignore
    (Vfs.Fs.add_file fs "home/alice/book/main.tex"
       ~content:
         (Emb.make_content ~text:"The Book."
            ~refs:[ N.of_string "chapters/intro.tex" ]
            ()));
  let book = Vfs.Fs.lookup fs "home/alice/book" in
  let main = Vfs.Fs.lookup fs "home/alice/book/main.tex" in

  Format.printf "The tree:@.%a@." Vfs.Fs.pp_tree fs;

  (* Resolve the whole structured object: every reference, transitively. *)
  let show_closure () =
    List.iter
      (fun (r, e) ->
        Format.printf "  @ref %-22s -> %a@." (N.to_string r) (S.pp_entity store) e)
      (Emb.resolve_closure store ~dir:book main)
  in
  Format.printf "Embedded references under the Algol-scope rule:@.";
  show_closure ();

  (* Move the whole book to bob's home — the paper says the meaning of the
     embedded names must not change. *)
  let alice = Vfs.Fs.lookup fs "home/alice" in
  let bob = Vfs.Fs.lookup fs "home/bob" in
  Vfs.Subtree.relocate fs ~src:alice ~name:"book" ~dst:bob ();
  Format.printf "@.After relocating the book to /home/bob/book:@.";
  show_closure ();

  (* Copy it: the copy's references resolve within the copy. *)
  let copy = Vfs.Subtree.copy fs book in
  Vfs.Fs.link fs ~dir:alice "book-draft" copy;
  S.bind store ~dir:copy N.parent_atom alice;
  let copy_main =
    Vfs.Fs.resolve_from fs ~dir:copy (N.of_string "main.tex")
  in
  Format.printf "@.The copy at /home/alice/book-draft resolves within itself:@.";
  List.iter
    (fun (r, e) ->
      Format.printf "  @ref %-22s -> %a@." (N.to_string r) (S.pp_entity store) e)
    (Emb.resolve_closure store ~dir:copy copy_main)

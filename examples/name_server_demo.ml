(* A name server over the simulated network.

   Clients on several machines ask a directory server to resolve names in
   the SERVER's context — contexts arranged so that every client gets the
   same answer (the paper's solution II, in client/server form), while a
   lossy network exercises the RPC timeout path.

   Run with:  dune exec examples/name_server_demo.exe *)

module N = Naming.Name
module E = Naming.Entity

type request = N.t
type response = string (* entity, rendered *)

let () =
  let store = Naming.Store.create () in
  let world = Schemes.Unix_scheme.build store in
  let server_proc = Schemes.Unix_scheme.spawn ~label:"nameserver" world in

  let engine = Dsim.Engine.create () in
  let rng = Dsim.Rng.create 3L in
  let network =
    Dsim.Network.create
      ~config:{ Dsim.Network.default_config with drop_probability = 0.15 }
      ~engine ~rng ()
  in
  let server_node = Dsim.Network.add_node network ~label:"server" in
  let client_node1 = Dsim.Network.add_node network ~label:"client1" in
  let client_node2 = Dsim.Network.add_node network ~label:"client2" in

  (* The server resolves every request in its own context. *)
  let server : (request, response) Dsim.Rpc.endpoint =
    Dsim.Rpc.create network ~node:server_node ~port:1
      ~handler:(fun name ->
        let e = Schemes.Unix_scheme.resolve world ~as_:server_proc
            (N.to_string name)
        in
        Some (E.to_string e))
      ()
  in
  let client1 = Dsim.Rpc.create network ~node:client_node1 ~port:1 () in
  let client2 = Dsim.Rpc.create network ~node:client_node2 ~port:1 () in

  let queries =
    [ "/bin/ls"; "/usr/bin/cc"; "/home/alice/notes.txt"; "/no/such/file" ]
  in
  let ask who client name =
    Dsim.Rpc.call client ~to_:(Dsim.Rpc.address server) ~timeout:5.0
      (N.of_string name) ~on_reply:(fun reply ->
        match reply with
        | Ok entity ->
            Format.printf "  [%5.2f] %s: %-24s -> %s@."
              (Dsim.Engine.now engine) who name entity
        | Error (`Timeout | `Unavailable) ->
            Format.printf "  [%5.2f] %s: %-24s -> TIMEOUT (retrying)@."
              (Dsim.Engine.now engine) who name;
            (* a real client retries *)
            Dsim.Rpc.call client ~to_:(Dsim.Rpc.address server) ~timeout:5.0
              (N.of_string name) ~on_reply:(fun reply ->
                match reply with
                | Ok entity ->
                    Format.printf "  [%5.2f] %s: %-24s -> %s (retry)@."
                      (Dsim.Engine.now engine) who name entity
                | Error (`Timeout | `Unavailable) ->
                    Format.printf "  [%5.2f] %s: %-24s -> gave up@."
                      (Dsim.Engine.now engine) who name))
  in
  Format.printf "clients query the name server (15%% message loss):@.";
  List.iter (fun q -> ask "client1" client1 q) queries;
  List.iter (fun q -> ask "client2" client2 q) queries;
  ignore (Dsim.Engine.run engine);

  Format.printf "@.server stats: %a@." Dsim.Rpc.pp_stats
    (Dsim.Rpc.stats server);
  Format.printf "client1 stats: %a@." Dsim.Rpc.pp_stats
    (Dsim.Rpc.stats client1);
  Format.printf "client2 stats: %a@." Dsim.Rpc.pp_stats
    (Dsim.Rpc.stats client2);
  Format.printf "network: %a@." Dsim.Network.pp_stats
    (Dsim.Network.stats network);
  Format.printf
    "@.Both clients always see the same entity for the same name: the
resolutions all happen in the server's context — coherence by
arrangement, not by global names.@."

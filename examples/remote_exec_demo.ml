(* Per-process namespaces and remote execution (paper, section 6, II).

   The parent's namespace is inherited by the remote child, which also
   attaches its executing subsystem — so names passed as parameters stay
   coherent AND the child can reach local objects, without global names.

   Run with:  dune exec examples/remote_exec_demo.exe *)

module N = Naming.Name
module Pp = Schemes.Per_process

let () =
  let store = Naming.Store.create () in
  let tree = Schemes.Unix_scheme.default_tree in
  let t = Pp.build ~subsystems:[ ("port1", tree); ("port2", tree) ] store in
  let env = Pp.env t in

  (* The parent, on port1, attaches the subsystems it knows. *)
  let parent = Pp.spawn ~label:"parent" ~attach:[ ("fs", "port1") ] t in
  Format.printf "parent namespace:@.";
  List.iter
    (fun n -> Format.printf "  %a@." N.pp n)
    (Pp.namespace_probes t parent ~max_depth:2);

  (* Remote execution on port2: inherit + attach local. *)
  let child = Pp.remote_exec ~label:"child" t ~parent ~subsystem:"port2" in

  let show who p name =
    let e = Schemes.Process_env.resolve_str env ~as_:p name in
    Format.printf "  %-6s resolves %-24s -> %a@." who name
      (Naming.Store.pp_entity store) e
  in
  Format.printf "@.a parameter passed by the parent keeps its meaning:@.";
  show "parent" parent "/fs/home/alice/notes.txt";
  show "child" child "/fs/home/alice/notes.txt";

  Format.printf "@.and the child reaches its execution site as /local:@.";
  show "child" child "/local/tmp";

  (* The namespaces have diverged: attaching in the child does not affect
     the parent. *)
  Format.printf "@.namespaces are private — the parent has no /local:@.";
  show "parent" parent "/local/tmp"

(* The shared naming graph approach, Andrew-style (paper, Figure 4).

   Client workstations keep private trees and attach one shared tree at
   /vice; replicated commands live in each client's /bin. Shows which
   names are global, which are local, and what weak coherence means.

   Run with:  dune exec examples/andrew_demo.exe *)

module N = Naming.Name
module Sg = Schemes.Shared_graph

let () =
  let store = Naming.Store.create () in
  let t = Sg.build ~clients:[ "wks1"; "wks2" ] store in
  Sg.replicate_local t ~path:"bin/ls" ~content:"ls binary v1";
  let p1 = Sg.spawn_on t ~client:"wks1" in
  let p2 = Sg.spawn_on t ~client:"wks2" in
  let env = Sg.env t in

  let show who p name =
    Format.printf "  %-5s %-28s -> %a@." who name
      (Naming.Store.pp_entity store)
      (Schemes.Process_env.resolve_str env ~as_:p name)
  in
  Format.printf "shared-tree names are global (one entity for everyone):@.";
  show "wks1" p1 "/vice/proj/apollo/plan.txt";
  show "wks2" p2 "/vice/proj/apollo/plan.txt";

  Format.printf "@.local names cohere only within a workstation:@.";
  show "wks1" p1 "/home/user/notes.txt";
  show "wks2" p2 "/home/user/notes.txt";

  Format.printf
    "@.replicated commands: same name, different entity, same content —
weak coherence:@.";
  show "wks1" p1 "/bin/ls";
  show "wks2" p2 "/bin/ls";
  let e1 = Schemes.Process_env.resolve_str env ~as_:p1 "/bin/ls" in
  let e2 = Schemes.Process_env.resolve_str env ~as_:p2 "/bin/ls" in
  let repl = Sg.replication t in
  Format.printf "  same entity: %b   same replica group: %b@."
    (Naming.Entity.equal e1 e2)
    (Naming.Replication.same_replica repl e1 e2);

  (* one replica drifts; anti-entropy restores the legal state *)
  Vfs.Fs.write (Sg.client_fs t "wks2") e2 "ls binary v2";
  Format.printf "@.after wks2 upgrades its ls: states consistent = %b@."
    (Naming.Replication.states_consistent repl store);
  Naming.Replication.sync_from repl store e2;
  Format.printf "after sync_from:              states consistent = %b@."
    (Naming.Replication.states_consistent repl store)

(* Partially qualified identifiers under reconfiguration (paper, §6 Ex. 1).

   Processes hold pids for each other; a machine is renumbered; the
   partially qualified pids of local processes survive while the fully
   qualified ones break. Pids embedded in messages are remapped in
   transit (the R(sender) closure mechanism).

   Run with:  dune exec examples/pqid_reconfig_demo.exe *)

module R = Netaddr.Registry
module Ps = Schemes.Pqid_scheme

let () =
  let rng = Dsim.Rng.create 7L in
  let engine = Dsim.Engine.create () in
  let t =
    Ps.build
      ~topology:[ ("net1", [ ("alpha", 2); ("beta", 2) ]) ]
      ~engine ~rng ()
  in
  let reg = Ps.registry t in
  Format.printf "topology:@.%a@." R.pp reg;

  match Ps.processes t with
  | [ a1; a2; b1; _b2 ] ->
      (* a1 and a2 are on machine alpha; b1 on beta. *)
      let intra = Ps.connect t ~holder:a1 ~target:a2 ~qualification:`Partial in
      let intra_full = Ps.connect t ~holder:a1 ~target:a2 ~qualification:`Full in
      let inter = Ps.connect t ~holder:b1 ~target:a1 ~qualification:`Partial in
      Format.printf "a1 holds %s for a2 (partially qualified)@."
        (Netaddr.Pqid.to_string intra.Ps.held_pid);
      Format.printf "a1 holds %s for a2 (fully qualified)@."
        (Netaddr.Pqid.to_string intra_full.Ps.held_pid);
      Format.printf "b1 holds %s for a1@."
        (Netaddr.Pqid.to_string inter.Ps.held_pid);

      (* Renumber machine alpha. *)
      let alpha = R.machine_of_proc reg a1 in
      R.renumber_machine reg alpha 77;
      Format.printf "@.after renumbering machine alpha to maddr 77:@.";
      let check label c =
        Format.printf "  %-36s %s@." label
          (if Ps.connection_valid t c then "still valid" else "BROKEN")
      in
      check "a1->a2, partial (local to alpha):" intra;
      check "a1->a2, full:" intra_full;
      check "b1->a1, partial (names alpha):" inter;

      (* Messages: a pid embedded in a message is remapped in transit. *)
      Format.printf "@.b1 tells a1 about a2, with the R(sender) mapping:@.";
      Ps.send_pid t ~from:b1 ~to_:a1 ~target:a2 ~mapped:true;
      ignore (Dsim.Engine.run engine);
      List.iter
        (fun (receiver, msg) ->
          let ok = Ps.resolution_correct t (receiver, msg) in
          Format.printf "  %s received %s -> %s@."
            (R.label_proc reg receiver)
            (Netaddr.Pqid.to_string msg.Ps.pid)
            (if ok then "resolves to the intended process" else "WRONG"))
        (Ps.deliveries t)
  | _ -> assert false

(* Quickstart: the core naming model in ten minutes.

   Build a store, create contexts and context objects, resolve compound
   names, select contexts with resolution rules, and measure coherence.

   Run with:  dune exec examples/quickstart.exe *)

module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

let () =
  (* 1. A store holds the global state: entities and their states. *)
  let store = S.create () in

  (* 2. Context objects are objects whose state is a context (a function
        from names to entities) — think "directory". *)
  let etc = S.create_context_object ~label:"etc" store in
  let passwd = S.create_object ~label:"passwd" ~state:(S.Data "root:x:0") store in
  S.bind store ~dir:etc (N.atom "passwd") passwd;

  let root = S.create_context_object ~label:"root" store in
  S.bind store ~dir:root (N.atom "etc") etc;

  (* 3. Compound names are resolved step by step through context objects
        (paper, section 2). *)
  let ctx = Naming.Context.of_bindings [ (N.root_atom, root) ] in
  let name = N.of_string "/etc/passwd" in
  let result, trace = Naming.Resolver.resolve_trace store ctx name in
  Format.printf "resolving %a:@.  %a@.  result: %a@.@." N.pp name
    (Naming.Resolver.pp_trace store)
    trace (S.pp_entity store) result;

  (* 4. Two activities with different contexts give the same name
        different meanings — unless the name is global. *)
  let env = Schemes.Process_env.create store in
  let alice = Schemes.Process_env.spawn ~label:"alice" ~root env in
  let other_root = S.create_context_object ~label:"other-root" store in
  let bob = Schemes.Process_env.spawn ~label:"bob" ~root:other_root env in

  let rule = Schemes.Process_env.rule env in
  let occs = [ Naming.Occurrence.generated alice; Naming.Occurrence.generated bob ] in
  Format.printf "is /etc/passwd coherent between alice and bob? %a@."
    Naming.Coherence.pp_verdict
    (Naming.Coherence.check store rule occs name);

  (* 5. Give bob the same root and coherence appears. *)
  Schemes.Process_env.set_root env bob root;
  Format.printf "after binding bob's root to alice's: %a@."
    Naming.Coherence.pp_verdict
    (Naming.Coherence.check store rule occs name);

  (* 6. Measure a degree of coherence over a probe set. *)
  let probes = [ name; N.of_string "/etc"; N.of_string "/nonexistent" ] in
  let report = Naming.Coherence.measure store rule occs probes in
  Format.printf "report: %a@." Naming.Coherence.pp_report report

(* The Newcastle Connection (paper, Figure 3), end to end.

   Three Unix machines joined under a super-root; '..' above a machine's
   root reaches the other machines. Shows per-machine incoherence, the
   name-mapping rule, and both remote-execution policies.

   Run with:  dune exec examples/newcastle_demo.exe *)

module N = Naming.Name
module Nc = Schemes.Newcastle

let () =
  let store = Naming.Store.create () in
  let t = Nc.build ~machines:[ "unix1"; "unix2"; "unix3" ] store in
  let env = Nc.env t in

  let p1 = Nc.spawn_on ~label:"p1" t ~machine:"unix1" in
  let p2 = Nc.spawn_on ~label:"p2" t ~machine:"unix2" in

  let show who p name =
    let e = Schemes.Process_env.resolve_str env ~as_:p name in
    Format.printf "  %-4s resolves %-28s -> %a@." who name
      (Naming.Store.pp_entity store) e
  in

  Format.printf "Machine-absolute names mean different things per machine:@.";
  show "p1" p1 "/home/alice/notes.txt";
  show "p2" p2 "/home/alice/notes.txt";

  Format.printf "@.The super-root makes every file reachable from everywhere:@.";
  show "p1" p1 "/../unix2/home/alice/notes.txt";
  show "p2" p2 "/../unix2/home/alice/notes.txt";

  Format.printf "@.The mapping rule rewrites names for another machine:@.";
  let name = N.of_string "/home/alice/notes.txt" in
  let mapped = Nc.map_name t ~from_machine:"unix1" ~to_machine:"unix2" name in
  Format.printf "  %a (on unix1)  =>  %a (usable on unix2)@." N.pp name N.pp
    mapped;
  show "p2" p2 (N.to_string mapped);

  Format.printf "@.Remote execution, invoker-root policy (parameters work):@.";
  let child_i =
    Nc.remote_exec ~label:"child-i" t ~parent:p1 ~machine:"unix2"
      ~policy:Nc.Invoker_root
  in
  show "p1" p1 "/etc/hosts";
  show "chld" child_i "/etc/hosts";

  Format.printf "@.Remote execution, remote-root policy (local access works):@.";
  let child_r =
    Nc.remote_exec ~label:"child-r" t ~parent:p1 ~machine:"unix2"
      ~policy:Nc.Remote_root
  in
  show "p2" p2 "/tmp";
  show "chld" child_r "/tmp"

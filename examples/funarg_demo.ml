(* The funarg problem as a naming-coherence problem (paper, section 4).

   "When a function is passed as a parameter, it is desirable to resolve
   the non-local variable names of the function in the context where the
   function was defined, instead of the context of the callee; the funarg
   mechanism was introduced in Lisp for this purpose."

   We model it directly in the core: a function is an OBJECT containing
   an embedded variable name; the module that defines it has a context
   binding that name. Passing the function to another module and calling
   it there is an Embedded occurrence read by the callee. R(activity) is
   dynamic scoping (the callee's binding wins); R(object) is the funarg /
   lexical rule (the definition site's binding wins).

   Run with:  dune exec examples/funarg_demo.exe *)

module N = Naming.Name
module S = Naming.Store
module C = Naming.Context
module R = Naming.Rule
module O = Naming.Occurrence

let () =
  let store = S.create () in

  (* Two "variables" named limit: one per module. *)
  let limit_a = S.create_object ~label:"limit=100" ~state:(S.Data "100") store in
  let limit_b = S.create_object ~label:"limit=7" ~state:(S.Data "7") store in

  (* Module A defines function f, which refers to the free variable
     `limit`. Module B receives f and calls it. *)
  let module_a_ctx =
    S.create_context_object ~label:"module-A.ctx"
      ~ctx:(C.of_bindings [ (N.atom "limit", limit_a) ])
      store
  in
  let module_b_ctx =
    S.create_context_object ~label:"module-B.ctx"
      ~ctx:(C.of_bindings [ (N.atom "limit", limit_b) ])
      store
  in
  let f = S.create_object ~label:"function-f" ~state:(S.Data "fun () -> limit") store in
  let caller = S.create_activity ~label:"caller-in-B" store in

  let activity_asg = R.Assignment.create () in
  R.Assignment.set activity_asg caller module_b_ctx;

  let object_asg = R.Assignment.create () in
  R.Assignment.set object_asg f module_a_ctx;

  let occ = O.embedded ~reader:caller ~source:f in
  let name = N.of_string "limit" in

  let show rule =
    let result = R.resolve rule store occ name in
    Format.printf "  %-14s -> %a  (value %s)@." (R.label rule)
      (S.pp_entity store) result
      (match S.data_of store result with Some v -> v | None -> "?")
  in
  Format.printf
    "f is defined in module A (limit=100) and called from module B
(limit=7); f's body mentions the free variable `limit`:@.@.";
  Format.printf "dynamic scoping — the callee's context:@.";
  show (R.of_activity activity_asg);
  Format.printf "@.funarg / lexical scoping — the definition context:@.";
  show (R.of_object object_asg);
  Format.printf
    "@.The same closure mechanisms, applied to operating systems, are the
paper's R(activity) and R(object) rules for embedded names.@."

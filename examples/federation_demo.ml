(* Shared name spaces in limited scopes (paper, section 7).

   Two organisations each attach user homes under /users. Inside an org
   the names cohere; across orgs humans map names with an /org2 prefix;
   embedded names in a foreign subtree are restored by the Algol rule.

   Run with:  dune exec examples/federation_demo.exe *)

module N = Naming.Name
module F = Schemes.Federation
module Emb = Schemes.Embedded

let () =
  let store = Naming.Store.create () in
  let t =
    F.build
      ~orgs:
        [
          ("org1", F.default_org_tree ~users:[ "alice" ] ~services:[ "print" ]);
          ("org2", F.default_org_tree ~users:[ "bob" ] ~services:[ "auth" ]);
        ]
      store
  in
  let env = F.env t in
  let p1 = F.spawn_in ~label:"org1.alice" t ~org:"org1" in
  let p2 = F.spawn_in ~label:"org2.bob" t ~org:"org2" in

  let show who p name =
    let e = Schemes.Process_env.resolve_str env ~as_:p name in
    Format.printf "  %-10s resolves %-28s -> %a@." who name
      (Naming.Store.pp_entity store) e
  in

  Format.printf "/users means something different in each organisation:@.";
  show "org1.alice" p1 "/users/bob/doc/readme.txt";
  show "org2.bob" p2 "/users/bob/doc/readme.txt";

  Format.printf "@.federate: org1 attaches org2's root under /org2@.";
  F.federate t ~from:"org1" ~to_:"org2";
  let mapped = F.map_name t ~target_org:"org2" (N.of_string "/users/bob/doc/readme.txt") in
  Format.printf "  the human maps the name by prefixing: %a@." N.pp mapped;
  show "org1.alice" p1 (N.to_string mapped);

  (* bob's doc embeds a name; org1 reads the doc through /org2/... — the
     embedded name is NOT prefixed, so the human mapping cannot help, but
     the Algol rule resolves it where the doc lives. *)
  let fs2 = F.org_fs t "org2" in
  ignore (Vfs.Fs.add_file fs2 "users/bob/doc/data.csv" ~content:"1,2,3");
  let doc =
    Vfs.Fs.add_file fs2 "users/bob/doc/report.txt"
      ~content:(Emb.make_content ~refs:[ N.of_string "data.csv" ] ())
  in
  ignore doc;
  let doc_dir = Vfs.Fs.lookup fs2 "users/bob/doc" in
  Format.printf
    "@.bob's report embeds 'data.csv'; resolved with the Algol rule at the
document's home, it denotes org2's file for every reader:@.";
  let e = Emb.resolve_at store ~dir:doc_dir (N.of_string "data.csv") in
  Format.printf "  @ref data.csv -> %a@." (Naming.Store.pp_entity store) e

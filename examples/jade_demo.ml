(* Jade-style per-user name spaces with union directories (paper, ref [13]).

   Each user assembles a personal namespace from autonomous file
   services; a mount may be backed by an ordered search path, and the
   same name legitimately means different things to different users.

   Run with:  dune exec examples/jade_demo.exe *)

module N = Naming.Name
module J = Schemes.Jade

let () =
  let store = Naming.Store.create () in
  let t =
    J.build
      ~services:
        [
          ("homedir", [ "bin/mytool"; "doc/notes.txt" ]);
          ("dept", [ "bin/mytool"; "bin/deptool"; "data/shared.csv" ]);
          ("campus", [ "bin/cc"; "bin/deptool" ]);
        ]
      store
  in
  (* alice prefers her own binaries; bob prefers the department's *)
  let alice =
    J.new_user ~label:"alice" t
      ~mounts:[ ("bin", [ "homedir"; "dept"; "campus" ]) ]
  in
  let bob =
    J.new_user ~label:"bob" t ~mounts:[ ("bin", [ "dept"; "campus" ]) ]
  in
  let show user who name =
    Format.printf "  %-5s %-16s -> %a (from %s)@." who name
      (Naming.Store.pp_entity store)
      (J.resolve_str t ~as_:user name)
      (match J.which t ~as_:user (N.of_string name) with
      | Some s -> s
      | None -> "-")
  in
  Format.printf "the same name, per-user meanings (search order differs):@.";
  show alice "alice" "bin/bin/mytool";
  show bob "bob" "bin/bin/mytool";
  Format.printf "@.fall-through to later services:@.";
  show alice "alice" "bin/bin/cc";
  show bob "bob" "bin/bin/deptool";
  Format.printf
    "@.This is the paper's 'case against a unique global name space':
names are personal, yet users who ARRANGE identical mount tables regain
full coherence (solution II).@."

(* Benchmark and experiment driver.

   Usage:
     bench/main.exe            — run every experiment (E1–E10, A1, A2),
                                 then the Bechamel benchmarks
     bench/main.exe e3         — run one experiment (e1..e10, a1, a2)
     bench/main.exe exps       — experiments only
     bench/main.exe micro      — micro-benchmarks only
     bench/main.exe scaling    — cost-vs-size series (depth, #activities,
                                 store size)
     bench/main.exe chaos      — b15: full chaos runs (fault-injected
                                 replicated name service) at three fault
                                 levels
     bench/main.exe cluster    — b16: static replication coherence
                                 analysis (check-cluster) across replica
                                 counts at one and four domains
     bench/main.exe compiled   — b17: the compiled resolution engine vs
                                 the interpreter and the cache, by path
                                 depth, store size, coherence sweep and
                                 mutation mix
     bench/main.exe explore    — b19: bounded schedule-space exploration
                                 (explore) at one and four domains, plus
                                 an instrumented workload run reporting
                                 states/second
     bench/main.exe worlds     — b18: exact coherence measurement vs
                                 sampling-based estimation on generated
                                 worlds at 10^3..10^6 entities, across
                                 engines and domain counts (sizes
                                 overridable via BENCH_WORLDS_SIZES)
     bench/main.exe modes      — b20: the coherence/availability/latency
                                 trade-off matrix — identical seeded
                                 fault schedules under the `Lww_ae and
                                 `Leader_log tiers (doc/FAULTS.md)

   Flags (anywhere on the command line):
     --seed N   — seed for the global RNG (default: $BENCH_SEED or 42);
                  runs are reproducible by default, never self-seeded
     --json     — also write results to BENCH_<date>[_<tag>].json in the cwd
     --tag S    — suffix for the JSON filename (so two runs of the same
                  day, e.g. --jobs 1 and --jobs 4, do not clobber each
                  other)
     --jobs N   — domain count for the sweep-shaped series (b4, b12, b14)
                  and the batch entry points behind them; default
                  $NAMING_JOBS, else 1 (fully sequential)

   One Bechamel test per reproduced artefact: e1..e10/a1..a4 measure the
   cost of the measurement behind the corresponding figure/claim; b1..b14
   measure the primitive operations of the library. Every series runs a
   discarded warmup pass first and a stabilised measured pass with a
   minimum batch size, so the OLS fit has honest support (see
   doc/PERF.md). *)

let flags, positional =
  let rec go fl pos = function
    | [] -> (fl, List.rev pos)
    | "--seed" :: v :: rest -> go (("seed", v) :: fl) pos rest
    | "--json" :: rest -> go (("json", "") :: fl) pos rest
    | "--tag" :: v :: rest -> go (("tag", v) :: fl) pos rest
    | "--jobs" :: v :: rest -> go (("jobs", v) :: fl) pos rest
    | x :: rest -> go fl (x :: pos) rest
  in
  go [] [] (List.tl (Array.to_list Sys.argv))

let seed =
  match List.assoc_opt "seed" flags with
  | Some v -> (
      match int_of_string_opt v with
      | Some s -> s
      | None ->
          Printf.eprintf "--seed expects an integer, got %S\n" v;
          exit 2)
  | None -> (
      match Option.map int_of_string_opt (Sys.getenv_opt "BENCH_SEED") with
      | Some (Some s) -> s
      | Some None | None -> 42)

let json_mode = List.mem_assoc "json" flags
let tag = List.assoc_opt "tag" flags

let jobs =
  match List.assoc_opt "jobs" flags with
  | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          Printf.eprintf "--jobs expects a positive integer, got %S\n" v;
          exit 2)
  | None -> Naming.Pool.default_jobs ()

let () = Random.init seed

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures (built once, outside the timed regions).   *)

module Fixtures = struct
  let store = Naming.Store.create ()
  let unix = Schemes.Unix_scheme.build store

  (* /d1/d2/.../d32, for the depth-sweep resolver bench *)
  let () =
    let rec go acc i =
      if i > 32 then acc else go (acc ^ Printf.sprintf "d%d/" i) (i + 1)
    in
    ignore (Vfs.Fs.mkdir_path (Schemes.Unix_scheme.fs unix) (go "/" 1))

  let proc = Schemes.Unix_scheme.spawn ~label:"bench" unix

  let name_of_depth d =
    Naming.Name.of_string
      (String.concat "/" ("" :: List.init d (fun i -> Printf.sprintf "d%d" (i + 1))))

  let ctx = Schemes.Process_env.context (Schemes.Unix_scheme.env unix) proc

  let newcastle_store = Naming.Store.create ()
  let newcastle =
    Schemes.Newcastle.build ~machines:[ "u1"; "u2"; "u3" ] newcastle_store

  let newcastle_procs =
    List.concat_map
      (fun m ->
        List.init 2 (fun i ->
            Schemes.Newcastle.spawn_on
              ~label:(Printf.sprintf "%s.%d" m i)
              newcastle ~machine:m))
      [ "u1"; "u2"; "u3" ]

  let newcastle_probes =
    Schemes.Newcastle.absolute_probes newcastle ~machine:"u1" ~max_depth:4

  let registry =
    let r = Netaddr.Registry.create () in
    let n1 = Netaddr.Registry.add_network r ~label:"n1" in
    let n2 = Netaddr.Registry.add_network r ~label:"n2" in
    List.iter
      (fun (net, label) ->
        let m = Netaddr.Registry.add_machine r ~net ~label in
        for i = 1 to 4 do
          ignore
            (Netaddr.Registry.add_process r ~mach:m
               ~label:(Printf.sprintf "%s.p%d" label i))
        done)
      [ (n1, "m11"); (n1, "m12"); (n2, "m21"); (n2, "m22") ];
    r

  let regprocs = Netaddr.Registry.all_processes registry

  let embedded_store = Naming.Store.create ()
  let embedded_fs = Vfs.Fs.create embedded_store

  let project =
    let rng = Dsim.Rng.create 7L in
    Workload.Docgen.build embedded_fs ~at:"proj/tool" ~rng
      ~spec:Workload.Docgen.default_spec

  let project_sources = Workload.Docgen.sources embedded_fs project

  let codec_text = Naming.Codec.to_string newcastle_store

  let cache = Naming.Cache.create store
  let unix_root = Schemes.Unix_scheme.root unix

  (* a deep path, where memoisation actually pays *)
  let hot_name =
    Naming.Name.of_string
      (String.concat "/" (List.init 16 (fun i -> Printf.sprintf "d%d" (i + 1))))

  (* warm the cache once *)
  let () = ignore (Naming.Cache.resolve_in cache unix_root hot_name)

  let jade =
    let st = Naming.Store.create () in
    Schemes.Jade.build
      ~services:
        [
          ("local", Schemes.Unix_scheme.default_tree);
          ("campus", Schemes.Unix_scheme.default_tree);
        ]
      st

  let jade_user =
    Schemes.Jade.new_user jade ~mounts:[ ("sw", [ "local"; "campus" ]) ]

  (* name-flow analysis: the sample plans, and generated plans for the
     size sweep (ops interleaved with a probing flow) *)
  let flow_plans = List.filter_map Harness.Sample.script Harness.Sample.scripts

  let flow_plan_of_size n =
    let rng = Dsim.Rng.create (Int64.of_int (n + 11)) in
    let w = Workload.Script.new_world (Naming.Store.create ()) in
    let probe = Naming.Name.of_string "/a/b" in
    List.concat_map
      (fun op ->
        [
          Analysis.Flow.Op op;
          Analysis.Flow.Flow (Analysis.Flow.Use { proc = 0; name = probe });
        ])
      (Workload.Script.random_ops w ~rng ~n)

  (* b13: one mutation in /tmp per nine cached resolutions of hot paths
     elsewhere — the workload fine-grained invalidation exists for. *)
  let b13_store = Naming.Store.create ()
  let b13_fs = Vfs.Fs.create b13_store
  let () = Vfs.Fs.populate b13_fs Schemes.Unix_scheme.default_tree
  let b13_root = Vfs.Fs.root b13_fs
  let b13_cache = Naming.Cache.create b13_store

  let b13_names =
    List.map Naming.Name.of_string
      [ "usr/bin/cc"; "bin/ls"; "etc/passwd"; "usr/lib/libc"; "bin" ]

  let b13_rng = Dsim.Rng.create 42L
  let b13_k = ref 0

  (* b14: the E10 scheme-matrix worlds, built once; the bench times the
     sweep itself (one row per world, three degrees per row). *)
  let matrix_worlds = Harness.Exp_matrix.worlds ()

  (* b17: the compiled engine over the b1 store (the /d1/../d32 chain is
     already in place above) and a mutation-mix world of its own. *)
  let compiled = Naming.Compiled.compile store
  let () = Naming.Compiled.refresh compiled

  let b17_store = Naming.Store.create ()
  let b17_fs = Vfs.Fs.create b17_store
  let () = Vfs.Fs.populate b17_fs Schemes.Unix_scheme.default_tree
  let b17_root = Vfs.Fs.root b17_fs
  let b17_compiled = Naming.Compiled.compile b17_store

  let b17_names =
    List.map Naming.Name.of_string
      [ "usr/bin/cc"; "bin/ls"; "etc/passwd"; "usr/lib/libc"; "bin" ]

  let b17_rng = Dsim.Rng.create 42L
  let b17_k = ref 0

  (* b15: the chaos harness — a complete fault-injection run over a
     small replicated name service per bench iteration. The spec and a
     shortened schedule are fixed; each run rebuilds its own cluster, so
     iterations are identical and the OLS fit honest. *)
  let chaos_spec =
    {
      Dsim.Nameserver.dirs =
        [ Naming.Name.of_string "/a"; Naming.Name.of_string "/a/b" ];
      leaves = [ ("k1", "one"); ("k2", "two") ];
      links =
        [
          (Naming.Name.of_string "/a/x", "k1");
          (Naming.Name.of_string "/a/b/y", "k2");
        ];
    }

  let chaos_probes =
    chaos_spec.Dsim.Nameserver.dirs
    @ List.map fst chaos_spec.Dsim.Nameserver.links

  let chaos_config ~drop ~partition_for =
    {
      Dsim.Chaos.default with
      Dsim.Chaos.drop;
      duplicate = drop;
      partition_for;
      partition_at = 5.0;
      crash_at = 8.0;
      crash_for = (if partition_for > 0.0 then 6.0 else 0.0);
      writes = 16;
      write_window = 15.0;
      duration = 40.0;
    }
end

(* The b13 workload at report scale: a fresh world, [ops] operations,
   returning the cache counters. Also the source of the hit-rate figure
   in the JSON report. *)
let cache_workload ~ops =
  let st = Naming.Store.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs Schemes.Unix_scheme.default_tree;
  let root = Vfs.Fs.root fs in
  let cache = Naming.Cache.create st in
  let names =
    List.map Naming.Name.of_string
      [ "usr/bin/cc"; "bin/ls"; "etc/passwd"; "usr/lib/libc"; "bin" ]
  in
  let rng = Dsim.Rng.create (Int64.of_int seed) in
  for k = 0 to ops - 1 do
    if k mod 10 = 0 then
      ignore
        (Vfs.Fs.add_file fs (Printf.sprintf "/tmp/f%d" (k mod 64)) ~content:"x")
    else ignore (Naming.Cache.resolve_in cache root (Dsim.Rng.pick rng names))
  done;
  Naming.Cache.stats cache

let workload_stats : (int * Naming.Cache.stats) option ref = ref None

let report_cache_workload () =
  let ops = 100_000 in
  let s = cache_workload ~ops in
  workload_stats := Some (ops, s);
  let total = s.Naming.Cache.hits + s.Naming.Cache.misses in
  Printf.printf
    "\nb13 workload (%d ops, seed %d): hits=%d misses=%d invalidations=%d \
     evictions=%d hit_rate=%.4f\n"
    ops seed s.Naming.Cache.hits s.Naming.Cache.misses
    s.Naming.Cache.invalidations s.Naming.Cache.evictions
    (float_of_int s.Naming.Cache.hits /. float_of_int (max 1 total))

(* Every run_bechamel call appends its rows here; --json dumps them and
   the b17 report reads its depth series back out. *)
let collected : (string * float option * float option) list ref = ref []

let micro_tests =
  let open Bechamel in
  let resolve_depth d =
    Test.make
      ~name:(Printf.sprintf "b1: resolve depth-%d path" d)
      (Staged.stage (fun () ->
           ignore
             (Naming.Resolver.resolve Fixtures.store Fixtures.ctx
                (Fixtures.name_of_depth d))))
  in
  [
    resolve_depth 2;
    resolve_depth 8;
    resolve_depth 16;
    Test.make ~name:"b2: unix scheme resolve /usr/bin/cc"
      (Staged.stage (fun () ->
           ignore (Schemes.Unix_scheme.resolve Fixtures.unix ~as_:Fixtures.proc "/usr/bin/cc")));
    Test.make ~name:"b3: coherence check, 6 activities x 1 name (newcastle)"
      (Staged.stage (fun () ->
           let occs =
             List.map Naming.Occurrence.generated Fixtures.newcastle_procs
           in
           ignore
             (Naming.Coherence.check Fixtures.newcastle_store
                (Schemes.Newcastle.rule Fixtures.newcastle)
                occs
                (Naming.Name.of_string "/usr/bin/cc"))));
    Test.make ~name:"b4: coherence matrix row (newcastle, all probes)"
      (Staged.stage (fun () ->
           let occs =
             List.map Naming.Occurrence.generated Fixtures.newcastle_procs
           in
           ignore
             (Naming.Coherence.measure ~jobs Fixtures.newcastle_store
                (Schemes.Newcastle.rule Fixtures.newcastle)
                occs Fixtures.newcastle_probes)));
    Test.make ~name:"b5: pqid map_for_transit"
      (Staged.stage (fun () ->
           match Fixtures.regprocs with
           | a :: b :: c :: _ ->
               let pid =
                 Netaddr.Registry.pid_of Fixtures.registry ~target:c
                   ~relative_to:a
               in
               ignore
                 (Netaddr.Registry.map_for_transit Fixtures.registry ~sender:a
                    ~receiver:b pid)
           | _ -> assert false));
    Test.make ~name:"b6: algol scope resolution (one embedded ref)"
      (Staged.stage (fun () ->
           match Fixtures.project_sources with
           | (dir, file) :: _ ->
               let refs = Schemes.Embedded.refs_of Fixtures.embedded_store file in
               List.iter
                 (fun r ->
                   ignore
                     (Schemes.Embedded.resolve_at Fixtures.embedded_store ~dir r))
                 refs
           | [] -> assert false));
    Test.make ~name:"b7: subtree copy (project)"
      (Staged.stage (fun () ->
           ignore (Vfs.Subtree.copy Fixtures.embedded_fs Fixtures.project)));
    Test.make ~name:"b8: codec roundtrip (newcastle world)"
      (Staged.stage (fun () ->
           ignore (Naming.Codec.of_string Fixtures.codec_text)));
    Test.make ~name:"b8b: codec to_string (newcastle world)"
      (Staged.stage (fun () ->
           ignore (Naming.Codec.to_string Fixtures.newcastle_store)));
    Test.make ~name:"b9: jade union resolution (miss then hit)"
      (Staged.stage (fun () ->
           ignore
             (Schemes.Jade.resolve_str Fixtures.jade ~as_:Fixtures.jade_user
                "sw/usr/bin/cc")));
    Test.make ~name:"b10: store lint (newcastle world)"
      (Staged.stage (fun () ->
           ignore (Naming.Lint.check Fixtures.newcastle_store)));
    Test.make ~name:"b11a: resolve_in, plain"
      (Staged.stage (fun () ->
           ignore
             (Naming.Resolver.resolve_in Fixtures.store Fixtures.unix_root
                Fixtures.hot_name)));
    Test.make ~name:"b11b: resolve_in, cached (hot)"
      (Staged.stage (fun () ->
           ignore
             (Naming.Cache.resolve_in Fixtures.cache Fixtures.unix_root
                Fixtures.hot_name)));
    Test.make ~name:"b12: flow analysis (all sample plans)"
      (Staged.stage (fun () ->
           ignore (Analysis.Flow.analyze_many ~jobs Fixtures.flow_plans)));
    (* A fixed 1-mutation + 9-resolves bundle per run: the 10% mutation
       mix of the report workload, with every run identical in
       composition so the per-run cost is stationary and the OLS fit
       meaningful (a stateful every-10th-run-mutates thunk is bimodal
       and fits a line badly no matter the sample count). *)
    Test.make ~name:"b13: cached resolve, 10-op mutate/resolve bundle"
      (Staged.stage (fun () ->
           let k = !Fixtures.b13_k in
           Fixtures.b13_k := k + 1;
           ignore
             (Vfs.Fs.add_file Fixtures.b13_fs
                (Printf.sprintf "/tmp/f%d" (k mod 64))
                ~content:"x");
           for _ = 1 to 9 do
             ignore
               (Naming.Cache.resolve_in Fixtures.b13_cache Fixtures.b13_root
                  (Dsim.Rng.pick Fixtures.b13_rng Fixtures.b13_names))
           done));
    Test.make ~name:"b14: scheme matrix sweep (all E10 worlds)"
      (Staged.stage (fun () ->
           ignore (Harness.Matrix.measure_all ~jobs Fixtures.matrix_worlds)));
  ]

(* The b15 series: one full chaos run per iteration, at three fault
   levels — the cost of measuring coherence under failure. Shares the
   `chaos` positional selector with BENCH_<date>_chaos.json. *)
let chaos_tests =
  let open Bechamel in
  let run ~drop ~partition_for () =
    ignore
      (Dsim.Chaos.run ~jobs
         ~config:(Fixtures.chaos_config ~drop ~partition_for)
         ~spec:Fixtures.chaos_spec ~probes:Fixtures.chaos_probes ())
  in
  [
    Test.make ~name:"b15a: chaos run, fault-free"
      (Staged.stage (run ~drop:0.0 ~partition_for:0.0));
    Test.make ~name:"b15b: chaos run, 5% loss + partition + crash"
      (Staged.stage (run ~drop:0.05 ~partition_for:10.0));
    Test.make ~name:"b15c: chaos run, 20% loss + partition + crash"
      (Staged.stage (run ~drop:0.2 ~partition_for:10.0));
  ]

(* The b16 series: the static replication coherence analyzer
   (check-cluster) across replica counts, at one and four domains — the
   abstract-interpretation counterpart of b15's concrete runs. Eight
   subjects per iteration so the domain fan-out has real work to
   spread. Shares the `cluster` positional selector with
   BENCH_<date>_b16.json. *)
let cluster_tests =
  let open Bechamel in
  let subjects replicas =
    List.init 8 (fun i ->
        ( Printf.sprintf "s%d" i,
          Analysis.Replpasses.subject
            {
              (Fixtures.chaos_config ~drop:0.0 ~partition_for:10.0) with
              Dsim.Chaos.seed = i;
              replicas;
            }
            Fixtures.chaos_spec ))
  in
  let indexed ~name ~jobs =
    Test.make_indexed ~name ~args:[ 2; 4; 8 ] (fun replicas ->
        let subjects = subjects replicas in
        Staged.stage (fun () ->
            ignore (Analysis.Replpasses.report_many ~jobs subjects)))
  in
  [
    indexed ~name:"b16a: check-cluster by replicas, jobs 1" ~jobs:1;
    indexed ~name:"b16b: check-cluster by replicas, jobs 4" ~jobs:4;
  ]

(* The b17 series: the compiled engine against the interpreter and the
   cache on the resolver's dominant shapes — path depth (the b1/b2
   axis), store size (the s4 axis), the coherence sweep through ?jobs,
   and the b13 mutation mix (where every tenth op forces an incremental
   patch). Shares the `compiled` positional selector with
   BENCH_<date>_b17.json. *)
let compiled_tests =
  let open Bechamel in
  let depths = [ 2; 8; 16; 32 ] in
  let by_depth ~name f =
    Test.make_indexed ~name ~args:depths (fun d ->
        let n = Fixtures.name_of_depth d in
        Staged.stage (fun () -> ignore (f n)))
  in
  let s4_world n =
    let st = Naming.Store.create () in
    let fs = Vfs.Fs.create st in
    ignore (Vfs.Fs.mkdir_path fs "/a/b/c/d");
    for i = 1 to n do
      ignore (Vfs.Fs.add_file fs (Printf.sprintf "/a/f%d" i) ~content:"x")
    done;
    (st, Vfs.Fs.root fs, Naming.Name.of_string "a/b/c/d")
  in
  let sweep_engine kind =
    let engine = Naming.Engine.create kind Fixtures.newcastle_store in
    let occs = List.map Naming.Occurrence.generated Fixtures.newcastle_procs in
    Staged.stage (fun () ->
        ignore
          (Naming.Coherence.measure ~engine ~jobs Fixtures.newcastle_store
             (Schemes.Newcastle.rule Fixtures.newcastle)
             occs Fixtures.newcastle_probes))
  in
  [
    by_depth ~name:"b17a: resolve by depth, interpreted" (fun n ->
        Naming.Resolver.resolve Fixtures.store Fixtures.ctx n);
    by_depth ~name:"b17b: resolve by depth, cached" (fun n ->
        Naming.Cache.resolve Fixtures.cache Fixtures.ctx n);
    by_depth ~name:"b17c: resolve by depth, compiled" (fun n ->
        Naming.Compiled.resolve Fixtures.compiled Fixtures.ctx n);
    Test.make_indexed ~name:"b17d: resolve by store size, compiled"
      ~args:[ 64; 256; 1024; 4096 ]
      (fun n ->
        let st, root, name = s4_world n in
        let c = Naming.Compiled.compile st in
        Staged.stage (fun () -> ignore (Naming.Compiled.resolve_in c root name)));
    Test.make ~name:"b17e: coherence sweep (newcastle), engine cached"
      (sweep_engine `Cached);
    Test.make ~name:"b17f: coherence sweep (newcastle), engine compiled"
      (sweep_engine `Compiled);
    (* the b13 bundle, compiled: one mutation per nine resolves, so each
       bundle pays one incremental patch round *)
    Test.make ~name:"b17g: compiled resolve, 10-op mutate/resolve bundle"
      (Staged.stage (fun () ->
           let k = !Fixtures.b17_k in
           Fixtures.b17_k := k + 1;
           ignore
             (Vfs.Fs.add_file Fixtures.b17_fs
                (Printf.sprintf "/tmp/f%d" (k mod 64))
                ~content:"x");
           for _ = 1 to 9 do
             ignore
               (Naming.Compiled.resolve_in Fixtures.b17_compiled
                  Fixtures.b17_root
                  (Dsim.Rng.pick Fixtures.b17_rng Fixtures.b17_names))
           done));
  ]

let compiled_workload : (float * Naming.Compiled.stats) option ref = ref None

(* Compile-from-scratch cost and the incremental-patch counters of the
   b17g fixture, plus the headline depth-series speedup computed from
   the rows just measured. *)
let report_compiled_workload () =
  let st = Naming.Store.create () in
  let fs = Vfs.Fs.create st in
  Vfs.Fs.populate fs Schemes.Unix_scheme.default_tree;
  let t0 = Unix.gettimeofday () in
  let c = Naming.Compiled.compile st in
  let compile_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let s = Naming.Compiled.stats c in
  compiled_workload := Some (compile_ms, s);
  Printf.printf
    "\nb17 compile (unix world): %.3f ms, nodes=%d slots=%d cells=%d \
     bindings=%d\n"
    compile_ms s.Naming.Compiled.nodes s.Naming.Compiled.slots
    s.Naming.Compiled.table_cells s.Naming.Compiled.bindings;
  let w = Naming.Compiled.stats Fixtures.b17_compiled in
  Printf.printf
    "b17 mutation mix: node_builds=%d patches=%d patched_nodes=%d\n"
    w.Naming.Compiled.node_builds w.Naming.Compiled.patches
    w.Naming.Compiled.patched_nodes;
  let time_of name =
    List.find_map
      (fun (n, t, _) -> if String.equal n name then t else None)
      !collected
  in
  List.iter
    (fun d ->
      let interp =
        time_of (Printf.sprintf "compiled/b17a: resolve by depth, interpreted:%d" d)
      and comp =
        time_of (Printf.sprintf "compiled/b17c: resolve by depth, compiled:%d" d)
      in
      match (interp, comp) with
      | Some i, Some c when c > 0.0 ->
          Printf.printf "b17 speedup, depth %2d: %6.1f ns -> %6.1f ns (%.1fx)\n"
            d i c (i /. c)
      | _ -> ())
    [ 2; 8; 16; 32 ]

(* The b19 series: the adversarial schedule explorer — one bounded
   model-checking sweep (enumeration, abstract interpretation, witness
   minimization and confirming replays) per iteration, at one and four
   domains. The bounds are trimmed so an iteration stays in benchmark
   range while still synthesizing witnesses. Shares the `explore`
   positional selector with BENCH_<date>_b19.json. *)
let explore_config =
  {
    Analysis.Explore.default with
    Analysis.Explore.base =
      { Analysis.Explore.default.Analysis.Explore.base with
        Dsim.Chaos.duration = 48.0 };
    depth = 2;
    max_writes = 2;
    budget = 384;
  }

let explore_tests =
  let open Bechamel in
  let run ~jobs () =
    ignore
      (Analysis.Explore.run ~jobs ~config:explore_config Fixtures.chaos_spec)
  in
  [
    Test.make ~name:"b19a: explore sweep, jobs 1" (Staged.stage (run ~jobs:1));
    Test.make ~name:"b19b: explore sweep, jobs 4" (Staged.stage (run ~jobs:4));
  ]

let explore_workload : (Analysis.Explore.stats * float) option ref = ref None

let report_explore_workload () =
  let t0 = Unix.gettimeofday () in
  let outcome = Analysis.Explore.run ~jobs ~config:explore_config
      Fixtures.chaos_spec in
  let seconds = Unix.gettimeofday () -. t0 in
  let s = outcome.Analysis.Explore.stats in
  explore_workload := Some (s, seconds);
  Printf.printf
    "\nb19 workload (depth %d, max_writes %d, budget %d, jobs %d): \
     enumerated=%d interpreted=%d pruned_por=%d pruned_symmetry=%d \
     replays=%d exhausted=%b witnesses=%d in %.3fs (%.0f states/s)\n"
    explore_config.Analysis.Explore.depth
    explore_config.Analysis.Explore.max_writes
    explore_config.Analysis.Explore.budget jobs s.Analysis.Explore.enumerated
    s.Analysis.Explore.interpreted s.Analysis.Explore.pruned_por
    s.Analysis.Explore.pruned_symmetry s.Analysis.Explore.replays
    s.Analysis.Explore.exhausted
    (List.length outcome.Analysis.Explore.witnesses)
    seconds
    (float_of_int s.Analysis.Explore.interpreted /. Float.max 1e-9 seconds)

(* The b18 series: exact coherence measurement against sampling-based
   estimation on generated worlds, by store size, engine and domain
   count. These are one-shot wall-clock measurements, not bechamel
   series — the exact sweep at 10^6 entities is minutes away from
   micro-benchmark range, and the point of the series is precisely that
   ratio. Shares the `worlds` positional selector with
   BENCH_<date>_b18.json. *)
type b18_run = {
  b18_engine : string;
  b18_jobs : int;
  b18_est : Naming.Coherence.estimate;
  b18_seconds : float;
}

type b18_row = {
  b18_size : int;
  b18_build_s : float;
  b18_enumerate_s : float;
  b18_probes : int;
  b18_exact_degree : float;
  b18_exact_s : float;
  b18_runs : b18_run list;
}

let b18_rows : b18_row list ref = ref []

let b18_sizes =
  match Sys.getenv_opt "BENCH_WORLDS_SIZES" with
  | Some s ->
      List.filter_map int_of_string_opt (String.split_on_char ',' s)
  | None -> [ 1_000; 10_000; 100_000; 1_000_000 ]

let run_worlds () =
  let rows =
    List.map
      (fun size ->
        let t0 = Unix.gettimeofday () in
        let w =
          Harness.Worldgen.build `Unixlike ~size ~seed:(Int64.of_int seed)
        in
        let build_s = Unix.gettimeofday () -. t0 in
        let occs =
          List.map Naming.Occurrence.generated w.Harness.Sample.activities
        in
        let t0 = Unix.gettimeofday () in
        let probes = Array.of_seq (Harness.Worldgen.probes_seq w) in
        let enumerate_s = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        let report =
          Naming.Coherence.measure_seq ~jobs w.Harness.Sample.store
            w.Harness.Sample.rule occs (Array.to_seq probes)
        in
        let exact_s = Unix.gettimeofday () -. t0 in
        let exact_degree = Naming.Coherence.degree report in
        Printf.printf
          "b18 unixlike size=%d: build=%.3fs enumerate=%.3fs exact \
           degree=%.4f over %d probes in %.3fs\n%!"
          size build_s enumerate_s exact_degree (Array.length probes) exact_s;
        (* the estimator draws uniformly from the same probe population
           the exact sweep covers, so its interval targets exactly the
           degree measured above — the b18 accuracy columns compare like
           with like *)
        let sampler = Harness.Worldgen.uniform_sampler probes in
        let runs =
          List.concat_map
            (fun kind ->
              List.map
                (fun jobs ->
                  let rng = Dsim.Rng.create (Int64.of_int seed) in
                  let t0 = Unix.gettimeofday () in
                  (* engine construction (e.g. the compile) is part of
                     what an estimate costs — timed with it *)
                  let engine =
                    Naming.Engine.create kind w.Harness.Sample.store
                  in
                  let est =
                    Naming.Coherence.estimate ~engine ~jobs ~rng
                      w.Harness.Sample.store w.Harness.Sample.rule occs
                      sampler
                  in
                  let seconds = Unix.gettimeofday () -. t0 in
                  let label = Naming.Engine.label engine in
                  Printf.printf
                    "  estimate engine=%-11s jobs=%d: degree=%.4f \
                     ci=[%.4f, %.4f] samples=%d in %.4fs (%.0fx)\n%!"
                    label jobs est.Naming.Coherence.degree
                    est.Naming.Coherence.ci_low est.Naming.Coherence.ci_high
                    est.Naming.Coherence.samples seconds
                    (exact_s /. Float.max 1e-9 seconds);
                  { b18_engine = label; b18_jobs = jobs; b18_est = est;
                    b18_seconds = seconds })
                [ 1; 4 ])
            [ `Interpreted; `Cached; `Compiled ]
        in
        { b18_size = size; b18_build_s = build_s;
          b18_enumerate_s = enumerate_s; b18_probes = Array.length probes;
          b18_exact_degree = exact_degree; b18_exact_s = exact_s;
          b18_runs = runs })
      b18_sizes
  in
  b18_rows := rows

(* The b20 series: the coherence/availability/latency trade-off matrix
   behind doc/FAULTS.md — identical seeded fault schedules run under
   both consistency tiers (`Lww_ae and `Leader_log), reporting the
   coherence degree, write availability and client-visible commit
   latency each tier delivers. These are one-shot simulation runs whose
   metrics live entirely in simulated time, so the printed table and
   the JSON rows are byte-identical at any --jobs count; there is
   nothing for bechamel to fit. Shares the `modes` positional selector
   with BENCH_<date>_b20.json. *)
type b20_row = {
  b20_scenario : string;
  b20_mode : string;
  b20_degree_min : float;  (** worst sampled coherence degree in-run *)
  b20_degree_final : float;
  b20_sent : int;
  b20_committed : int;  (** acked writes / committed txns *)
  b20_avail : float;  (** committed / sent *)
  b20_lat_mean : float;  (** client-visible success latency, sim s *)
  b20_lat_max : float;
  b20_converged : bool;
  b20_converge : float option;
  b20_rounds : int option;
  b20_lost : int;  (** exhausted retries / unknown-outcome txns *)
  b20_lww_losses : int;
  b20_unknown : int;
  b20_elections : int;
}

let b20_rows : b20_row list ref = ref []

(* The same fault grid as b15 plus a leader-kill scenario: the kill is
   a no-op under `Lww_ae (there is no leader to depose), so that row
   prices the failover window the leader tier alone pays. *)
let b20_scenarios =
  [
    ("healthy", Fixtures.chaos_config ~drop:0.0 ~partition_for:0.0);
    ("drop-5%", Fixtures.chaos_config ~drop:0.05 ~partition_for:0.0);
    ("partition+crash", Fixtures.chaos_config ~drop:0.0 ~partition_for:10.0);
    ( "partition+crash+drop",
      Fixtures.chaos_config ~drop:0.05 ~partition_for:10.0 );
    ( "leader-kill",
      {
        (Fixtures.chaos_config ~drop:0.0 ~partition_for:0.0) with
        Dsim.Chaos.leader_kill_at = 5.0;
        leader_kill_for = 6.0;
      } );
  ]

let run_modes () =
  let rows =
    List.concat_map
      (fun (scenario, base) ->
        List.map
          (fun mode ->
            let config = { base with Dsim.Chaos.mode } in
            let (r : Dsim.Chaos.result) =
              Dsim.Chaos.run ~jobs ~config ~spec:Fixtures.chaos_spec
                ~probes:Fixtures.chaos_probes ()
            in
            let degree_min =
              List.fold_left
                (fun acc (s : Dsim.Chaos.sample) ->
                  Float.min acc (Naming.Coherence.degree s.report))
                1.0 r.samples
            in
            {
              b20_scenario = scenario;
              b20_mode = Dsim.Chaos.mode_to_string mode;
              b20_degree_min = degree_min;
              b20_degree_final = Naming.Coherence.degree r.final_report;
              b20_sent = r.writes_sent;
              b20_committed = r.writes_acked;
              b20_avail =
                float_of_int r.writes_acked
                /. float_of_int (max 1 r.writes_sent);
              b20_lat_mean = r.latency_mean;
              b20_lat_max = r.latency_max;
              b20_converged = r.converged;
              b20_converge = r.converge_time;
              b20_rounds = r.rounds_to_converge;
              b20_lost = r.writes_lost;
              b20_lww_losses = r.ns.Dsim.Nameserver.lww_losses;
              b20_unknown = r.txns_unknown;
              b20_elections = r.ns.Dsim.Nameserver.elections;
            })
          [ `Lww_ae; `Leader_log ])
      b20_scenarios
  in
  b20_rows := rows;
  let opt_f = function Some t -> Printf.sprintf "%8.1f" t | None -> "       -" in
  let opt_i = function Some n -> Printf.sprintf "%6d" n | None -> "     -" in
  Printf.printf
    "b20 consistency-tier trade-off (seed %d; simulated time, \
     jobs-independent)\n"
    seed;
  Printf.printf "%-22s %-7s %10s %10s %7s %9s %9s %5s %8s %6s %5s %7s %7s %6s\n"
    "scenario" "mode" "degree_min" "degree_end" "avail" "lat_mean" "lat_max"
    "conv" "conv_t" "rounds" "lost" "lww_lost" "unknown" "elects";
  Printf.printf "%s\n" (String.make 132 '-');
  List.iter
    (fun row ->
      Printf.printf
        "%-22s %-7s %10.4f %10.4f %7.3f %9.2f %9.2f %5b %s %s %5d %8d %7d \
         %6d\n"
        row.b20_scenario row.b20_mode row.b20_degree_min row.b20_degree_final
        row.b20_avail row.b20_lat_mean row.b20_lat_max row.b20_converged
        (opt_f row.b20_converge) (opt_i row.b20_rounds) row.b20_lost
        row.b20_lww_losses row.b20_unknown row.b20_elections)
    rows

let experiment_tests =
  let open Bechamel in
  [
    Test.make ~name:"e1: figure 1 measurement"
      (Staged.stage (fun () -> ignore (Harness.Exp_sources.measure ())));
    Test.make ~name:"e2: figure 2 sweep"
      (Staged.stage (fun () -> ignore (Harness.Exp_rules.sweep ())));
    Test.make ~name:"e3: figure 3 newcastle"
      (Staged.stage (fun () -> ignore (Harness.Exp_newcastle.measure ())));
    Test.make ~name:"e4: figure 4 shared graph"
      (Staged.stage (fun () -> ignore (Harness.Exp_shared.measure ())));
    Test.make ~name:"e5: figure 5 crosslinks"
      (Staged.stage (fun () -> ignore (Harness.Exp_crosslink.measure ())));
    Test.make ~name:"e6: figure 6 embedded names"
      (Staged.stage (fun () -> ignore (Harness.Exp_embedded.measure ())));
    Test.make ~name:"e7: pqid reconfiguration"
      (Staged.stage (fun () -> ignore (Harness.Exp_pqid.measure ())));
    Test.make ~name:"e8: remote execution"
      (Staged.stage (fun () -> ignore (Harness.Exp_remote_exec.measure ())));
    Test.make ~name:"e9: federation"
      (Staged.stage (fun () -> ignore (Harness.Exp_federation.measure ())));
    Test.make ~name:"e10: scheme matrix"
      (Staged.stage (fun () -> ignore (Harness.Exp_matrix.measure ())));
    Test.make ~name:"a1: composite-rule ablation"
      (Staged.stage (fun () -> ignore (Harness.Exp_composite.sweep ())));
    Test.make ~name:"a2: recursive newcastle"
      (Staged.stage (fun () -> ignore (Harness.Exp_recursive.measure ())));
    Test.make ~name:"a3: renumbering vs migration"
      (Staged.stage (fun () -> ignore (Harness.Exp_migration.measure ())));
    Test.make ~name:"a4: replica drift and sync"
      (Staged.stage (fun () -> ignore (Harness.Exp_replicas.measure ())));
  ]

(* Scaling series: resolver cost vs path depth, and coherence-matrix cost
   vs number of activities — the library's two dominant loops. *)
let scaling_tests =
  let open Bechamel in
  let depth_test =
    Test.make_indexed ~name:"s1: resolve by depth" ~args:[ 2; 4; 8; 16; 32 ]
      (fun d ->
        Staged.stage (fun () ->
            ignore
              (Naming.Resolver.resolve Fixtures.store Fixtures.ctx
                 (Fixtures.name_of_depth d))))
  in
  let big_newcastle n =
    let store = Naming.Store.create () in
    let t = Schemes.Newcastle.build ~machines:[ "u1"; "u2" ] store in
    let procs =
      List.init n (fun i ->
          Schemes.Newcastle.spawn_on
            ~label:(Printf.sprintf "p%d" i)
            t
            ~machine:(if i mod 2 = 0 then "u1" else "u2"))
    in
    let probes = Schemes.Newcastle.absolute_probes t ~machine:"u1" ~max_depth:4 in
    (store, Schemes.Newcastle.rule t, procs, probes)
  in
  let matrix_test =
    Test.make_indexed ~name:"s2: coherence matrix row by #activities"
      ~args:[ 2; 4; 8; 16 ]
      (fun n ->
        let store, rule, procs, probes = big_newcastle n in
        let occs = List.map Naming.Occurrence.generated procs in
        Staged.stage (fun () ->
            ignore (Naming.Coherence.measure store rule occs probes)))
  in
  let flow_test =
    Test.make_indexed ~name:"s3: flow analysis by plan size"
      ~args:[ 16; 64; 256 ]
      (fun n ->
        let plan = Fixtures.flow_plan_of_size n in
        Staged.stage (fun () -> ignore (Analysis.Flow.analyze plan)))
  in
  (* s4: a fixed probe path in stores of growing size — resolution cost
     should depend on path depth, not store population, and the cached
     walk should be flat in both. *)
  let s4_world n =
    let st = Naming.Store.create () in
    let fs = Vfs.Fs.create st in
    ignore (Vfs.Fs.mkdir_path fs "/a/b/c/d");
    for i = 1 to n do
      ignore (Vfs.Fs.add_file fs (Printf.sprintf "/a/f%d" i) ~content:"x")
    done;
    let root = Vfs.Fs.root fs in
    let name = Naming.Name.of_string "a/b/c/d" in
    let cache = Naming.Cache.create st in
    ignore (Naming.Cache.resolve_in cache root name);
    (st, root, name, cache)
  in
  let store_sizes = [ 64; 256; 1024; 4096 ] in
  let size_plain =
    Test.make_indexed ~name:"s4a: resolve by store size, plain"
      ~args:store_sizes (fun n ->
        let st, root, name, _cache = s4_world n in
        Staged.stage (fun () -> ignore (Naming.Resolver.resolve_in st root name)))
  in
  let size_cached =
    Test.make_indexed ~name:"s4b: resolve by store size, cached"
      ~args:store_sizes (fun n ->
        let _st, root, name, cache = s4_world n in
        Staged.stage (fun () -> ignore (Naming.Cache.resolve_in cache root name)))
  in
  [ depth_test; matrix_test; flow_test; size_plain; size_cached ]

(* Measurement methodology (doc/PERF.md):
   1. a discarded warmup pass faults in the fixtures and warms caches;
   2. the measured pass stabilises the GC before each sample and grows
      batches geometrically from a minimum of 100 runs — single-run
      samples are dominated by clock granularity on the sub-microsecond
      series and used to drive their OLS r² negative;
   3. a series whose fit still has r² < 0.8 (scheduler noise on a busy
      machine) is re-measured with a doubled time budget, keeping the
      best fit per series, up to [max_attempts] passes. *)
let r2_target = 0.8
let max_attempts = 3

let run_bechamel ~name tests =
  let open Bechamel in
  let grouped = Test.make_grouped ~name tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let warmup_cfg =
    Benchmark.cfg ~limit:25 ~quota:(Time.second 0.05) ~stabilize:false ()
  in
  ignore (Benchmark.all warmup_cfg instances grouped);
  let measure_once ~quota =
    let cfg =
      Benchmark.cfg ~limit:1500 ~quota:(Time.second quota) ~stabilize:true
        ~sampling:(`Geometric 1.25) ~start:100 ()
    in
    let raw = Benchmark.all cfg instances grouped in
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.fold
      (fun name est acc ->
        let time =
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Some t
          | Some _ | None -> None
        in
        (name, time, Analyze.OLS.r_square est) :: acc)
      results []
  in
  let better (_, _, r2) (_, _, r2') =
    match (r2, r2') with
    | Some a, Some b -> a >= b
    | Some _, None -> true
    | None, _ -> false
  in
  let merge best rows =
    List.map
      (fun ((n, _, _) as row) ->
        match List.find_opt (fun (n', _, _) -> String.equal n n') best with
        | Some old when better old row -> old
        | Some _ | None -> row)
      rows
  in
  let all_fit rows =
    List.for_all
      (fun (_, _, r2) -> match r2 with Some r -> r >= r2_target | None -> false)
      rows
  in
  let rec attempt n quota best =
    let rows = merge best (measure_once ~quota) in
    if all_fit rows || n >= max_attempts then rows
    else attempt (n + 1) (quota *. 2.0) rows
  in
  let rows = attempt 1 1.0 [] in
  let rows = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows in
  collected := !collected @ rows;
  Printf.printf "%-60s  %16s  %8s\n" "benchmark" "ns/run" "r^2";
  Printf.printf "%s\n" (String.make 88 '-');
  List.iter
    (fun (name, time, r2) ->
      let time =
        match time with
        | Some t -> Printf.sprintf "%16.1f" t
        | None -> "             n/a"
      in
      let r2 =
        match r2 with Some r -> Printf.sprintf "%8.4f" r | None -> "     n/a"
      in
      Printf.printf "%-60s  %s  %s\n" name time r2)
    rows

(* ------------------------------------------------------------------ *)
(* --json: machine-readable results, one file per day.                 *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let write_json () =
  let path =
    match tag with
    | None -> Printf.sprintf "BENCH_%s.json" (today ())
    | Some t -> Printf.sprintf "BENCH_%s_%s.json" (today ()) t
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"date\": \"%s\",\n  \"seed\": %d,\n  \"jobs\": %d,\n" (today ())
    seed jobs;
  (match !workload_stats with
  | None -> ()
  | Some (ops, s) ->
      let total = max 1 (s.Naming.Cache.hits + s.Naming.Cache.misses) in
      out
        "  \"cache_workload\": {\"ops\": %d, \"hits\": %d, \"misses\": %d, \
         \"invalidations\": %d, \"evictions\": %d, \"hit_rate\": %.4f},\n"
        ops s.Naming.Cache.hits s.Naming.Cache.misses
        s.Naming.Cache.invalidations s.Naming.Cache.evictions
        (float_of_int s.Naming.Cache.hits /. float_of_int total));
  (match !compiled_workload with
  | None -> ()
  | Some (compile_ms, s) ->
      out
        "  \"compiled_workload\": {\"compile_ms\": %.3f, \"nodes\": %d, \
         \"slots\": %d, \"table_cells\": %d, \"bindings\": %d, \
         \"node_builds\": %d, \"patches\": %d, \"patched_nodes\": %d},\n"
        compile_ms s.Naming.Compiled.nodes s.Naming.Compiled.slots
        s.Naming.Compiled.table_cells s.Naming.Compiled.bindings
        s.Naming.Compiled.node_builds s.Naming.Compiled.patches
        s.Naming.Compiled.patched_nodes);
  (match !explore_workload with
  | None -> ()
  | Some (s, seconds) ->
      out
        "  \"explore_workload\": {\"candidates\": %d, \"interpreted\": %d, \
         \"pruned_por\": %d, \"pruned_symmetry\": %d, \"replays\": %d, \
         \"exhausted\": %b, \"seconds\": %.3f, \"states_per_sec\": %.0f},\n"
        s.Analysis.Explore.enumerated s.Analysis.Explore.interpreted
        s.Analysis.Explore.pruned_por s.Analysis.Explore.pruned_symmetry
        s.Analysis.Explore.replays s.Analysis.Explore.exhausted seconds
        (float_of_int s.Analysis.Explore.interpreted
        /. Float.max 1e-9 seconds));
  (match !b18_rows with
  | [] -> ()
  | rows ->
      out "  \"worlds_workload\": [";
      List.iteri
        (fun i r ->
          out "%s\n    {\"size\": %d, \"build_s\": %.3f, \"enumerate_s\": \
               %.3f, \"probes\": %d, \"exact_degree\": %.6f, \"exact_s\": \
               %.3f, \"runs\": ["
            (if i = 0 then "" else ",")
            r.b18_size r.b18_build_s r.b18_enumerate_s r.b18_probes
            r.b18_exact_degree r.b18_exact_s;
          List.iteri
            (fun j run ->
              let est = run.b18_est in
              out
                "%s\n      {\"engine\": \"%s\", \"jobs\": %d, \"degree\": \
                 %.6f, \"ci_low\": %.6f, \"ci_high\": %.6f, \"samples\": \
                 %d, \"seconds\": %.4f, \"speedup\": %.1f}"
                (if j = 0 then "" else ",")
                run.b18_engine run.b18_jobs est.Naming.Coherence.degree
                est.Naming.Coherence.ci_low est.Naming.Coherence.ci_high
                est.Naming.Coherence.samples run.b18_seconds
                (r.b18_exact_s /. Float.max 1e-9 run.b18_seconds))
            r.b18_runs;
          out "\n    ]}")
        rows;
      out "\n  ],\n");
  (match !b20_rows with
  | [] -> ()
  | rows ->
      let opt_f = function Some t -> Printf.sprintf "%.1f" t | None -> "null" in
      let opt_i = function Some n -> string_of_int n | None -> "null" in
      out "  \"modes_workload\": [";
      List.iteri
        (fun i r ->
          out
            "%s\n    {\"scenario\": \"%s\", \"mode\": \"%s\", \
             \"degree_min\": %.6f, \"degree_final\": %.6f, \"sent\": %d, \
             \"committed\": %d, \"availability\": %.4f, \"latency_mean\": \
             %.4f, \"latency_max\": %.4f, \"converged\": %b, \
             \"converge_time\": %s, \"rounds_to_converge\": %s, \"lost\": \
             %d, \"lww_losses\": %d, \"unknown\": %d, \"elections\": %d}"
            (if i = 0 then "" else ",")
            (json_escape r.b20_scenario) r.b20_mode r.b20_degree_min
            r.b20_degree_final r.b20_sent r.b20_committed r.b20_avail
            r.b20_lat_mean r.b20_lat_max r.b20_converged
            (opt_f r.b20_converge) (opt_i r.b20_rounds) r.b20_lost
            r.b20_lww_losses r.b20_unknown r.b20_elections)
        rows;
      out "\n  ],\n");
  out "  \"results\": [";
  List.iteri
    (fun i (name, time, r2) ->
      let num = function Some f -> Printf.sprintf "%.1f" f | None -> "null" in
      out "%s\n    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}"
        (if i = 0 then "" else ",")
        (json_escape name) (num time)
        (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "null"))
    !collected;
  out "\n  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let run_experiments ppf = Harness.Experiments.run_all ppf

let () =
  let ppf = Format.std_formatter in
  (match positional with
  | "micro" :: _ ->
      run_bechamel ~name:"micro" micro_tests;
      report_cache_workload ()
  | "scaling" :: _ -> run_bechamel ~name:"scaling" scaling_tests
  | "chaos" :: _ -> run_bechamel ~name:"chaos" chaos_tests
  | "cluster" :: _ -> run_bechamel ~name:"cluster" cluster_tests
  | "compiled" :: _ ->
      run_bechamel ~name:"compiled" compiled_tests;
      report_compiled_workload ()
  | "explore" :: _ ->
      run_bechamel ~name:"explore" explore_tests;
      report_explore_workload ()
  | "worlds" :: _ -> run_worlds ()
  | "modes" :: _ -> run_modes ()
  | "exps" :: _ -> run_experiments ppf
  | id :: _ when Harness.Experiments.find id <> None -> (
      match Harness.Experiments.find id with
      | Some e -> Harness.Experiments.run_one ppf e
      | None -> assert false)
  | [] ->
      run_experiments ppf;
      Format.fprintf ppf "@\n%s@\nBechamel benchmarks (one per reproduced artefact + primitives)@\n%s@\n@."
        (String.make 72 '=') (String.make 72 '=');
      run_bechamel ~name:"bench" (micro_tests @ experiment_tests);
      report_cache_workload ()
  | unknown :: _ ->
      Printf.eprintf
        "unknown argument %S (expected: micro | scaling | chaos | cluster | \
         compiled | explore | worlds | modes | exps | e1..e10 | a1..a4)\n"
        unknown;
      exit 2);
  if json_mode then write_json ()

type key = Entity.t * Name.t

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal (e1, n1) (e2, n2) = Entity.equal e1 e2 && Name.equal n1 n2
  let hash (e, n) = (Entity.hash e * 65599) + Name.hash n
end)

(* An entry remembers the generations of the context objects on its
   resolution path. It is valid while every one of them is unchanged: a
   mutation elsewhere in the store (a bind in /tmp while /bin/cc is
   cached) leaves the entry alone. *)
type entry = { result : Entity.t; deps : (Entity.t * int) array }

type t = {
  store : Store.t;
  capacity : int;
  entries : entry Key_tbl.t;
  order : key Queue.t;  (* insertion order; may hold stale keys *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  evictions : int;
  entries : int;
}

let create ?(capacity = 4096) store =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    store;
    capacity;
    entries = Key_tbl.create 256;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let clear (t : t) =
  Key_tbl.reset t.entries;
  Queue.clear t.order

(* A worker domain's shard: same store, same capacity, a private copy of
   the entries (so a warmed shared cache seeds every shard) and zeroed
   counters (so per-shard work can be merged with [absorb]). *)
let copy (t : t) =
  {
    store = t.store;
    capacity = t.capacity;
    entries = Key_tbl.copy t.entries;
    order = Queue.copy t.order;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let absorb (t : t) (s : stats) =
  t.hits <- t.hits + s.hits;
  t.misses <- t.misses + s.misses;
  t.invalidations <- t.invalidations + s.invalidations;
  t.evictions <- t.evictions + s.evictions

let entry_valid (t : t) entry =
  let n = Array.length entry.deps in
  let rec ok i =
    if i >= n then true
    else
      let e, g = entry.deps.(i) in
      Store.generation t.store e = g && ok (i + 1)
  in
  ok 0

(* Drop one arbitrary (oldest-inserted) live entry. The queue may hold
   keys that were invalidated or replaced since insertion; skip those. *)
let evict_one (t : t) =
  let rec go () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some key ->
        if Key_tbl.mem t.entries key then begin
          Key_tbl.remove t.entries key;
          t.evictions <- t.evictions + 1
        end
        else go ()
  in
  go ()

let miss (t : t) key =
  let ctxobj, name = key in
  t.misses <- t.misses + 1;
  let result, dep_list = Resolver.resolve_deps t.store ctxobj name in
  let deps =
    Array.of_list
      (List.map (fun e -> (e, Store.generation t.store e)) dep_list)
  in
  if Key_tbl.length t.entries >= t.capacity then evict_one t;
  Key_tbl.replace t.entries key { result; deps };
  Queue.push key t.order;
  result

let resolve_in (t : t) ctxobj name =
  let key = (ctxobj, name) in
  match Key_tbl.find_opt t.entries key with
  | Some entry when entry_valid t entry ->
      t.hits <- t.hits + 1;
      entry.result
  | Some _stale ->
      t.invalidations <- t.invalidations + 1;
      Key_tbl.remove t.entries key;
      miss t key
  | None -> miss t key

let resolve (t : t) ctx name =
  let a = Name.head name in
  let e = Context.lookup ctx a in
  match Name.tail name with
  | None -> e
  | Some rest ->
      if Store.is_context_object t.store e then resolve_in t e rest
      else Entity.undefined

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    evictions = t.evictions;
    entries = Key_tbl.length t.entries;
  }

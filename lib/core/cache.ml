type key = Entity.t * Name.t

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal (e1, n1) (e2, n2) = Entity.equal e1 e2 && Name.equal n1 n2

  let hash (e, n) =
    List.fold_left
      (fun acc a -> (acc * 65599) + Hashtbl.hash (Name.atom_to_string a))
      (Entity.hash e) (Name.atoms n)
end)

type t = {
  store : Store.t;
  capacity : int;
  entries : Entity.t Key_tbl.t;
  mutable valid_at : int;  (* store version the entries are valid for *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; invalidations : int }

let create ?(capacity = 4096) store =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    store;
    capacity;
    entries = Key_tbl.create 256;
    valid_at = Store.version store;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let clear t = Key_tbl.reset t.entries

let resolve_in t ctxobj name =
  let now = Store.version t.store in
  if now <> t.valid_at then begin
    clear t;
    t.valid_at <- now;
    t.invalidations <- t.invalidations + 1
  end;
  let key = (ctxobj, name) in
  match Key_tbl.find_opt t.entries key with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None ->
      t.misses <- t.misses + 1;
      let e = Resolver.resolve_in t.store ctxobj name in
      if Key_tbl.length t.entries >= t.capacity then clear t;
      Key_tbl.replace t.entries key e;
      e

let stats (t : t) : stats =
  { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

type obj_state = Context of Context.t | Data of string

(* Mutations are tracked at entity granularity: a monotonic global [tick]
   plus, per entity, the tick of its last state change. Caches key their
   entries to the generations of the entities on their resolution path,
   so a mutation invalidates only the entries whose path it touches. A
   bounded journal of recent (tick, entity) changes backs
   [touched_since]; when asked about ticks older than the journal covers,
   we fall back to scanning the generation table. *)

let journal_cap = 8192
let journal_keep = 2048

type t = {
  tick : int ref;  (* a ref, not a mutable field, so engines can hold the cell and poll staleness without a call *)
  mutable next_id : int;
  mutable frozen : int;  (* depth of read-only (parallel) sections *)
  objs : obj_state Entity.Tbl.t;
  gens : int Entity.Tbl.t;
  mutable journal : (int * Entity.t) list;  (* newest first *)
  mutable journal_len : int;
  mutable journal_floor : int;  (* ticks <= floor may be missing *)
  labels : string Entity.Tbl.t;
  mutable rev_activities : Entity.t list;
  mutable rev_objects : Entity.t list;
}

let create () =
  {
    tick = ref 0;
    next_id = 0;
    frozen = 0;
    objs = Entity.Tbl.create 64;
    gens = Entity.Tbl.create 64;
    journal = [];
    journal_len = 0;
    journal_floor = 0;
    labels = Entity.Tbl.create 64;
    rev_activities = [];
    rev_objects = [];
  }

let version t = !(t.tick)
let tick = version
let tick_cell t = t.tick

(* The write barrier of parallel sweeps. Worker domains treat every
   store as read-only; the batch entry points freeze the store around
   the fan-out so that any mutation attempted while workers may be
   reading it — from a worker or from the coordinating domain — fails
   loudly instead of racing. Every mutation funnels through [touch],
   [fresh_id] or [set_label], so checking there covers them all. *)
let check_writable t =
  if t.frozen > 0 then
    invalid_arg
      "Store: mutation inside a read-only section (a parallel sweep is \
       reading this store)"

let is_read_only t = t.frozen > 0

let read_only t f =
  t.frozen <- t.frozen + 1;
  Fun.protect ~finally:(fun () -> t.frozen <- t.frozen - 1) f

let generation t e =
  match Entity.Tbl.find_opt t.gens e with None -> 0 | Some g -> g

let rec take_journal k = function
  | [] -> []
  | _ when k = 0 -> []
  | entry :: rest -> entry :: take_journal (k - 1) rest

let touch t e =
  check_writable t;
  incr t.tick;
  Entity.Tbl.replace t.gens e !(t.tick);
  t.journal <- (!(t.tick), e) :: t.journal;
  t.journal_len <- t.journal_len + 1;
  if t.journal_len > journal_cap then begin
    t.journal <- take_journal journal_keep t.journal;
    t.journal_len <- journal_keep;
    (match List.rev t.journal with
    | (oldest, _) :: _ -> t.journal_floor <- oldest - 1
    | [] -> t.journal_floor <- !(t.tick))
  end

let touched_since t since =
  if since >= !(t.tick) then []
  else if since >= t.journal_floor then begin
    let seen = Entity.Tbl.create 16 in
    let rec go acc = function
      | (tk, e) :: rest when tk > since ->
          if Entity.Tbl.mem seen e then go acc rest
          else begin
            Entity.Tbl.replace seen e ();
            go (e :: acc) rest
          end
      | _ -> acc
    in
    (* journal is newest-first; accumulate to oldest-first order *)
    go [] t.journal
  end
  else
    Entity.Tbl.fold
      (fun e g acc -> if g > since then e :: acc else acc)
      t.gens []

let fresh_id t =
  check_writable t;
  let id = t.next_id in
  t.next_id <- id + 1;
  incr t.tick;
  id

let create_object ?label ?(state = Data "") t =
  let e = Entity.Object (fresh_id t) in
  Entity.Tbl.replace t.objs e state;
  (* Allocation is a state change for the new entity: a cache entry that
     concluded "not a context object" about this id (e.g. one recorded
     against a foreign store) must not survive its birth here. *)
  touch t e;
  (match label with None -> () | Some l -> Entity.Tbl.replace t.labels e l);
  t.rev_objects <- e :: t.rev_objects;
  e

let create_context_object ?label ?(ctx = Context.empty) t =
  create_object ?label ~state:(Context ctx) t

let create_activity ?label t =
  let e = Entity.Activity (fresh_id t) in
  (match label with None -> () | Some l -> Entity.Tbl.replace t.labels e l);
  t.rev_activities <- e :: t.rev_activities;
  e

let exists t e =
  match e with
  | Entity.Undefined -> false
  | Entity.Object _ -> Entity.Tbl.mem t.objs e
  | Entity.Activity _ -> List.exists (Entity.equal e) t.rev_activities

let obj_state t e =
  match e with
  | Entity.Object _ -> (
      match Entity.Tbl.find t.objs e with
      | s -> Some s
      | exception Not_found -> None)
  | Entity.Undefined | Entity.Activity _ -> None

let set_obj_state t e state =
  match e with
  | Entity.Object _ when Entity.Tbl.mem t.objs e ->
      touch t e;
      Entity.Tbl.replace t.objs e state
  | _ ->
      invalid_arg
        (Printf.sprintf "Store.set_obj_state: %s is not an object of this store"
           (Entity.to_string e))

let context_of t e =
  match obj_state t e with
  | Some (Context c) -> Some c
  | Some (Data _) | None -> None

let is_context_object t e =
  match context_of t e with Some _ -> true | None -> false

let data_of t e =
  match obj_state t e with
  | Some (Data d) -> Some d
  | Some (Context _) | None -> None

let set_context t e c = set_obj_state t e (Context c)

let bind t ~dir a e =
  match context_of t dir with
  | Some c -> set_context t dir (Context.bind c a e)
  | None ->
      invalid_arg
        (Printf.sprintf "Store.bind: %s is not a context object"
           (Entity.to_string dir))

let unbind t ~dir a =
  match context_of t dir with
  | Some c -> set_context t dir (Context.unbind c a)
  | None ->
      invalid_arg
        (Printf.sprintf "Store.unbind: %s is not a context object"
           (Entity.to_string dir))

let lookup t ~dir a =
  match context_of t dir with
  | Some c -> Context.lookup c a
  | None -> Entity.undefined

let label t e = Entity.Tbl.find_opt t.labels e

let set_label t e l =
  check_writable t;
  Entity.Tbl.replace t.labels e l

let pp_entity t ppf e =
  match label t e with
  | Some l -> Format.fprintf ppf "%s(%a)" l Entity.pp e
  | None -> Entity.pp ppf e

let activities t = List.rev t.rev_activities
let objects t = List.rev t.rev_objects

let context_objects t =
  List.filter (fun e -> is_context_object t e) (objects t)

let cardinal t = List.length t.rev_activities + List.length t.rev_objects

let snapshot t =
  List.map
    (fun e ->
      match Entity.Tbl.find_opt t.objs e with
      | Some s -> (e, s)
      | None -> assert false)
    (objects t)

let restore t saved =
  List.iter
    (fun (e, s) ->
      touch t e;
      Entity.Tbl.replace t.objs e s)
    saved

let pp ppf t =
  Format.fprintf ppf "@[<v>store: %d entities@," (cardinal t);
  List.iter
    (fun a -> Format.fprintf ppf "activity %a@," (pp_entity t) a)
    (activities t);
  List.iter
    (fun o ->
      match obj_state t o with
      | Some (Context c) ->
          Format.fprintf ppf "ctxobj %a = %a@," (pp_entity t) o Context.pp c
      | Some (Data d) ->
          Format.fprintf ppf "object %a = %S@," (pp_entity t) o d
      | None -> ())
    (objects t);
  Format.fprintf ppf "@]"

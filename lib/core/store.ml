type obj_state = Context of Context.t | Data of string

type t = {
  mutable version : int;
  mutable next_id : int;
  objs : obj_state Entity.Tbl.t;
  labels : string Entity.Tbl.t;
  mutable rev_activities : Entity.t list;
  mutable rev_objects : Entity.t list;
}

let create () =
  {
    version = 0;
    next_id = 0;
    objs = Entity.Tbl.create 64;
    labels = Entity.Tbl.create 64;
    rev_activities = [];
    rev_objects = [];
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.version <- t.version + 1;
  id

let create_object ?label ?(state = Data "") t =
  let e = Entity.Object (fresh_id t) in
  Entity.Tbl.replace t.objs e state;
  (match label with None -> () | Some l -> Entity.Tbl.replace t.labels e l);
  t.rev_objects <- e :: t.rev_objects;
  e

let create_context_object ?label ?(ctx = Context.empty) t =
  create_object ?label ~state:(Context ctx) t

let create_activity ?label t =
  let e = Entity.Activity (fresh_id t) in
  (match label with None -> () | Some l -> Entity.Tbl.replace t.labels e l);
  t.rev_activities <- e :: t.rev_activities;
  e

let exists t e =
  match e with
  | Entity.Undefined -> false
  | Entity.Object _ -> Entity.Tbl.mem t.objs e
  | Entity.Activity _ -> List.exists (Entity.equal e) t.rev_activities

let obj_state t e =
  match e with
  | Entity.Object _ -> Entity.Tbl.find_opt t.objs e
  | Entity.Undefined | Entity.Activity _ -> None

let set_obj_state t e state =
  match e with
  | Entity.Object _ when Entity.Tbl.mem t.objs e ->
      t.version <- t.version + 1;
      Entity.Tbl.replace t.objs e state
  | _ ->
      invalid_arg
        (Printf.sprintf "Store.set_obj_state: %s is not an object of this store"
           (Entity.to_string e))

let context_of t e =
  match obj_state t e with
  | Some (Context c) -> Some c
  | Some (Data _) | None -> None

let is_context_object t e =
  match context_of t e with Some _ -> true | None -> false

let data_of t e =
  match obj_state t e with
  | Some (Data d) -> Some d
  | Some (Context _) | None -> None

let set_context t e c = set_obj_state t e (Context c)

let bind t ~dir a e =
  match context_of t dir with
  | Some c -> set_context t dir (Context.bind c a e)
  | None ->
      invalid_arg
        (Printf.sprintf "Store.bind: %s is not a context object"
           (Entity.to_string dir))

let unbind t ~dir a =
  match context_of t dir with
  | Some c -> set_context t dir (Context.unbind c a)
  | None ->
      invalid_arg
        (Printf.sprintf "Store.unbind: %s is not a context object"
           (Entity.to_string dir))

let lookup t ~dir a =
  match context_of t dir with
  | Some c -> Context.lookup c a
  | None -> Entity.undefined

let version t = t.version

let label t e = Entity.Tbl.find_opt t.labels e
let set_label t e l = Entity.Tbl.replace t.labels e l

let pp_entity t ppf e =
  match label t e with
  | Some l -> Format.fprintf ppf "%s(%a)" l Entity.pp e
  | None -> Entity.pp ppf e

let activities t = List.rev t.rev_activities
let objects t = List.rev t.rev_objects

let context_objects t =
  List.filter (fun e -> is_context_object t e) (objects t)

let cardinal t = List.length t.rev_activities + List.length t.rev_objects

let snapshot t =
  List.map
    (fun e ->
      match Entity.Tbl.find_opt t.objs e with
      | Some s -> (e, s)
      | None -> assert false)
    (objects t)

let restore t saved =
  t.version <- t.version + 1;
  List.iter (fun (e, s) -> Entity.Tbl.replace t.objs e s) saved

let pp ppf t =
  Format.fprintf ppf "@[<v>store: %d entities@," (cardinal t);
  List.iter
    (fun a -> Format.fprintf ppf "activity %a@," (pp_entity t) a)
    (activities t);
  List.iter
    (fun o ->
      match obj_state t o with
      | Some (Context c) ->
          Format.fprintf ppf "ctxobj %a = %a@," (pp_entity t) o Context.pp c
      | Some (Data d) ->
          Format.fprintf ppf "object %a = %S@," (pp_entity t) o d
      | None -> ())
    (objects t);
  Format.fprintf ppf "@]"

(** The naming graph induced by a store.

    The nodes are the entities of the store; there is an edge labelled [a]
    from object [o] to entity [e] whenever [o] is a context object and its
    context binds [a] to [e] (paper, section 2). Resolving a compound name
    is traversing a directed path in this graph. *)

type edge = { src : Entity.t; label : Name.atom; dst : Entity.t }

val edges : Store.t -> edge list
(** Every edge of the graph, in source allocation order. *)

val out_edges : Store.t -> Entity.t -> (Name.atom * Entity.t) list
(** Outgoing edges of a context object (empty otherwise). *)

val out_degree : Store.t -> Entity.t -> int

val reachable : Store.t -> from:Entity.t -> Entity.Set.t
(** All entities reachable from [from] (inclusive) along edges. *)

val reachable_from_context : Store.t -> Context.t -> Entity.Set.t
(** All entities reachable through the bindings of a context value. *)

val has_cycle : Store.t -> bool
(** True when the graph contains a directed cycle (e.g. [".."] edges). *)

val is_tree : Store.t -> root:Entity.t -> ignore:(Name.atom -> bool) -> bool
(** True when, ignoring edges whose label satisfies [ignore] (typically
    ["."] and [".."]), every node reachable from [root] has exactly one
    incoming edge within the reachable subgraph. *)

val all_names :
  Store.t ->
  Context.t ->
  max_depth:int ->
  ?skip:(Name.atom -> bool) ->
  unit ->
  (Name.t * Entity.t) list
(** Enumerates every compound name of length ≤ [max_depth] resolvable to a
    defined entity from the given context, with its denotation. Edges whose
    label satisfies [skip] are not traversed (default: skip ["."] and
    [".."], which otherwise make the enumeration explode). Names are listed
    in breadth-first order. *)

val names_of :
  Store.t ->
  Context.t ->
  target:Entity.t ->
  max_depth:int ->
  ?skip:(Name.atom -> bool) ->
  unit ->
  Name.t list
(** The subset of {!all_names} denoting [target]. *)

val to_dot : Store.t -> string
(** Graphviz rendering, for debugging and documentation. *)

type kind = [ `Interpreted | `Cached | `Compiled ]

type t =
  | Interpreted of Store.t
  | Cached of Cache.t
  | Compiled of Compiled.t

let create kind store =
  match kind with
  | `Interpreted -> Interpreted store
  | `Cached -> Cached (Cache.create store)
  | `Compiled -> Compiled (Compiled.compile store)

let kind_of_string = function
  | "interpreted" -> Some `Interpreted
  | "cached" -> Some `Cached
  | "compiled" -> Some `Compiled
  | _ -> None

let env_var = "NAMING_ENGINE"

let env_kind () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some s -> (
      match kind_of_string s with
      | Some k -> Some k
      | None ->
          invalid_arg
            (Printf.sprintf
               "%s=%s: expected interpreted, cached or compiled" env_var s))

let of_env ?(default = `Interpreted) store =
  let kind = match env_kind () with Some k -> k | None -> default in
  create kind store

let select ?cache ?engine ~default store =
  match engine with
  | Some e -> e
  | None -> (
      (* NAMING_ENGINE overrides a caller-supplied cache: the variable
         exists precisely to re-run unchanged call sites under another
         engine. *)
      match env_kind () with
      | Some k -> create k store
      | None -> (
          match cache with
          | Some c -> Cached c
          | None -> create default store))

let kind = function
  | Interpreted _ -> `Interpreted
  | Cached _ -> `Cached
  | Compiled _ -> `Compiled

let label = function
  | Interpreted _ -> "interpreted"
  | Cached _ -> "cached"
  | Compiled _ -> "compiled"

let store = function
  | Interpreted s -> s
  | Cached _ as _e ->
      (* Cache does not expose its store; engine consumers that need the
         store already hold it. *)
      invalid_arg "Engine.store: cached engine"
  | Compiled c -> Compiled.store c

let resolve t ctx name =
  match t with
  | Interpreted s -> Resolver.resolve s ctx name
  | Cached c -> Cache.resolve c ctx name
  | Compiled c -> Compiled.resolve c ctx name

let resolve_in t o name =
  match t with
  | Interpreted s -> Resolver.resolve_in s o name
  | Cached c -> Cache.resolve_in c o name
  | Compiled c -> Compiled.resolve_in c o name

let resolve_trace_into buf t store ctx name =
  match t with
  | Interpreted _ | Cached _ ->
      (* The cache memoises results, not paths; traces always come from
         a real walk. *)
      Resolver.resolve_trace_into buf store ctx name
  | Compiled c -> Compiled.resolve_trace_into buf c ctx name

let prepare = function
  | Interpreted _ | Cached _ -> ()
  | Compiled c -> Compiled.refresh c

let shard = function
  | Interpreted _ as t -> t
  | Cached c -> Cached (Cache.copy c)
  | Compiled c -> Compiled (Compiled.snapshot c)

let absorb t ~shard =
  match (t, shard) with
  | Cached c, Cached s -> Cache.absorb c (Cache.stats s)
  | _ -> ()

let cache = function Cached c -> Some c | Interpreted _ | Compiled _ -> None
let compiled = function Compiled c -> Some c | _ -> None

(** Entities: activities, objects, and the undefined entity.

    The paper's model distinguishes {e activities} (active entities, e.g.
    processes) from {e objects} (passive entities, e.g. files and
    directories), and adjoins an undefined entity ⊥ that is the result of
    failed resolutions (paper, section 2). *)

type t = Undefined | Activity of int | Object of int

val undefined : t
val is_undefined : t -> bool
val is_activity : t -> bool
val is_object : t -> bool
val is_defined : t -> bool

val id : t -> int
(** The raw identifier. @raise Invalid_argument on {!undefined}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t

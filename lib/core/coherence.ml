type verdict =
  | Coherent of Entity.t
  | Weakly_coherent of Entity.t list
  | Incoherent of (Occurrence.t * Entity.t) * (Occurrence.t * Entity.t)
  | Vacuous

(* Rule.resolve through an engine: the rule selects the context, the
   engine performs (and possibly memoises or compiles) the walk. *)
let resolve_via_engine engine store rule occ name =
  match Rule.select rule store occ with
  | None -> Entity.undefined
  | Some ctx -> Engine.resolve engine ctx name

let check ?(equiv = Entity.equal) ?cache ?engine store rule occs name =
  match occs with
  | [] -> invalid_arg "Coherence.check: no occurrences"
  | first :: rest ->
      let engine = Engine.select ?cache ?engine ~default:`Interpreted store in
      let resolve occ = (occ, resolve_via_engine engine store rule occ name) in
      let results = resolve first :: List.map resolve rest in
      let defined = List.filter (fun (_, e) -> Entity.is_defined e) results in
      (match defined with
      | [] -> Vacuous
      | (occ_d, d) :: _ -> (
          match
            List.find_opt (fun (_, e) -> Entity.is_undefined e) results
          with
          | Some witness -> Incoherent ((occ_d, d), witness)
          | None -> (
              match List.find_opt (fun (_, e) -> not (equiv d e)) results with
              | Some witness -> Incoherent ((occ_d, d), witness)
              | None ->
                  if List.for_all (fun (_, e) -> Entity.equal d e) results then
                    Coherent d
                  else Weakly_coherent (List.map snd results))))

let is_coherent ?equiv ?cache ?engine store rule occs name =
  match check ?equiv ?cache ?engine store rule occs name with
  | Coherent _ | Weakly_coherent _ -> true
  | Incoherent _ | Vacuous -> false

type report = {
  probes : int;
  coherent : int;
  weakly_coherent : int;
  incoherent : int;
  vacuous : int;
}

let degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int (r.coherent + r.weakly_coherent) /. float_of_int meaningful

let strict_degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int r.coherent /. float_of_int meaningful

(* Batch entry points share one engine across every (occurrence, probe)
   pair: with the default cached engine, probes that share a path prefix
   walk it once; with the compiled engine, the world is compiled once. *)
let batch_engine ?cache ?engine store =
  Engine.select ?cache ?engine ~default:`Cached store

(* The parallel fan-out behind [?jobs]: one verdict per probe, computed
   across domains with the store frozen (a mutation mid-sweep raises
   instead of racing) and an engine shard per worker ({!Engine.shard}:
   a cache copy or compiled snapshot seeded from the caller's engine).
   Cached-shard counters are merged back on join so a shared cache's
   statistics still account for the whole sweep; shard entries are
   private and dropped. Verdicts come back in probe order, so every
   derived quantity equals the sequential path's. *)
let classify_parallel ?equiv engine pool store rule occs probes =
  Engine.prepare engine;
  Store.read_only store (fun () ->
      let verdicts, shards =
        Pool.map_local pool
          ~local:(fun () -> Engine.shard engine)
          (fun shard name -> check ?equiv ~engine:shard store rule occs name)
          probes
      in
      List.iter (fun s -> Engine.absorb engine ~shard:s) shards;
      verdicts)

let verdicts_of ?equiv ?cache ?engine ?jobs store rule occs probes =
  let engine = batch_engine ?cache ?engine store in
  match Pool.get ?jobs () with
  | Some pool -> classify_parallel ?equiv engine pool store rule occs probes
  | None -> List.map (fun n -> check ?equiv ~engine store rule occs n) probes

let measure ?equiv ?cache ?engine ?jobs store rule occs probes =
  let init =
    { probes = 0; coherent = 0; weakly_coherent = 0; incoherent = 0; vacuous = 0 }
  in
  List.fold_left
    (fun acc verdict ->
      let acc = { acc with probes = acc.probes + 1 } in
      match verdict with
      | Coherent _ -> { acc with coherent = acc.coherent + 1 }
      | Weakly_coherent _ -> { acc with weakly_coherent = acc.weakly_coherent + 1 }
      | Incoherent _ -> { acc with incoherent = acc.incoherent + 1 }
      | Vacuous -> { acc with vacuous = acc.vacuous + 1 })
    init
    (verdicts_of ?equiv ?cache ?engine ?jobs store rule occs probes)

let classify ?equiv ?cache ?engine ?jobs store rule occs probes =
  List.combine probes
    (verdicts_of ?equiv ?cache ?engine ?jobs store rule occs probes)

let coherent_names ?equiv ?cache ?engine ?jobs store rule occs probes =
  List.filter_map
    (fun (n, v) ->
      match v with
      | Coherent _ | Weakly_coherent _ -> Some n
      | Incoherent _ | Vacuous -> None)
    (classify ?equiv ?cache ?engine ?jobs store rule occs probes)

let incoherent_names ?equiv ?cache ?engine ?jobs store rule occs probes =
  List.filter_map
    (fun (n, v) ->
      match v with
      | Incoherent _ -> Some n
      | Coherent _ | Weakly_coherent _ | Vacuous -> None)
    (classify ?equiv ?cache ?engine ?jobs store rule occs probes)

let pp_verdict ppf = function
  | Coherent e -> Format.fprintf ppf "coherent(%a)" Entity.pp e
  | Weakly_coherent es ->
      Format.fprintf ppf "weakly-coherent(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Entity.pp)
        es
  | Incoherent ((o1, e1), (o2, e2)) ->
      Format.fprintf ppf "incoherent(%a ⇒ %a vs %a ⇒ %a)" Occurrence.pp o1
        Entity.pp e1 Occurrence.pp o2 Entity.pp e2
  | Vacuous -> Format.pp_print_string ppf "vacuous"

let pp_report ppf r =
  Format.fprintf ppf
    "probes=%d coherent=%d weak=%d incoherent=%d vacuous=%d degree=%.3f" r.probes
    r.coherent r.weakly_coherent r.incoherent r.vacuous (degree r)

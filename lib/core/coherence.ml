type verdict =
  | Coherent of Entity.t
  | Weakly_coherent of Entity.t list
  | Incoherent of (Occurrence.t * Entity.t) * (Occurrence.t * Entity.t)
  | Vacuous

(* Rule.resolve, optionally through a shared cache: the rule selects the
   context, the cache memoises the walk. *)
let resolve_via ?cache store rule occ name =
  match Rule.select rule store occ with
  | None -> Entity.undefined
  | Some ctx -> (
      match cache with
      | Some c -> Cache.resolve c ctx name
      | None -> Resolver.resolve store ctx name)

let check ?(equiv = Entity.equal) ?cache store rule occs name =
  match occs with
  | [] -> invalid_arg "Coherence.check: no occurrences"
  | first :: rest ->
      let resolve occ = (occ, resolve_via ?cache store rule occ name) in
      let results = resolve first :: List.map resolve rest in
      let defined = List.filter (fun (_, e) -> Entity.is_defined e) results in
      (match defined with
      | [] -> Vacuous
      | (occ_d, d) :: _ -> (
          match
            List.find_opt (fun (_, e) -> Entity.is_undefined e) results
          with
          | Some witness -> Incoherent ((occ_d, d), witness)
          | None -> (
              match List.find_opt (fun (_, e) -> not (equiv d e)) results with
              | Some witness -> Incoherent ((occ_d, d), witness)
              | None ->
                  if List.for_all (fun (_, e) -> Entity.equal d e) results then
                    Coherent d
                  else Weakly_coherent (List.map snd results))))

let is_coherent ?equiv ?cache store rule occs name =
  match check ?equiv ?cache store rule occs name with
  | Coherent _ | Weakly_coherent _ -> true
  | Incoherent _ | Vacuous -> false

type report = {
  probes : int;
  coherent : int;
  weakly_coherent : int;
  incoherent : int;
  vacuous : int;
}

let degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int (r.coherent + r.weakly_coherent) /. float_of_int meaningful

let strict_degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int r.coherent /. float_of_int meaningful

(* Batch entry points share one cache across every (occurrence, probe)
   pair: probes that share a path prefix walk it once. *)
let batch_cache ?cache store =
  match cache with Some c -> c | None -> Cache.create store

let measure ?equiv ?cache store rule occs probes =
  let cache = batch_cache ?cache store in
  let init =
    { probes = 0; coherent = 0; weakly_coherent = 0; incoherent = 0; vacuous = 0 }
  in
  List.fold_left
    (fun acc name ->
      let acc = { acc with probes = acc.probes + 1 } in
      match check ?equiv ~cache store rule occs name with
      | Coherent _ -> { acc with coherent = acc.coherent + 1 }
      | Weakly_coherent _ -> { acc with weakly_coherent = acc.weakly_coherent + 1 }
      | Incoherent _ -> { acc with incoherent = acc.incoherent + 1 }
      | Vacuous -> { acc with vacuous = acc.vacuous + 1 })
    init probes

let classify ?equiv ?cache store rule occs probes =
  let cache = batch_cache ?cache store in
  List.map (fun n -> (n, check ?equiv ~cache store rule occs n)) probes

let coherent_names ?equiv ?cache store rule occs probes =
  let cache = batch_cache ?cache store in
  List.filter (fun n -> is_coherent ?equiv ~cache store rule occs n) probes

let incoherent_names ?equiv ?cache store rule occs probes =
  let cache = batch_cache ?cache store in
  List.filter
    (fun n ->
      match check ?equiv ~cache store rule occs n with
      | Incoherent _ -> true
      | Coherent _ | Weakly_coherent _ | Vacuous -> false)
    probes

let pp_verdict ppf = function
  | Coherent e -> Format.fprintf ppf "coherent(%a)" Entity.pp e
  | Weakly_coherent es ->
      Format.fprintf ppf "weakly-coherent(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Entity.pp)
        es
  | Incoherent ((o1, e1), (o2, e2)) ->
      Format.fprintf ppf "incoherent(%a ⇒ %a vs %a ⇒ %a)" Occurrence.pp o1
        Entity.pp e1 Occurrence.pp o2 Entity.pp e2
  | Vacuous -> Format.pp_print_string ppf "vacuous"

let pp_report ppf r =
  Format.fprintf ppf
    "probes=%d coherent=%d weak=%d incoherent=%d vacuous=%d degree=%.3f" r.probes
    r.coherent r.weakly_coherent r.incoherent r.vacuous (degree r)

type verdict =
  | Coherent of Entity.t
  | Weakly_coherent of Entity.t list
  | Incoherent of (Occurrence.t * Entity.t) * (Occurrence.t * Entity.t)
  | Vacuous

(* Rule.resolve, optionally through a shared cache: the rule selects the
   context, the cache memoises the walk. *)
let resolve_via ?cache store rule occ name =
  match Rule.select rule store occ with
  | None -> Entity.undefined
  | Some ctx -> (
      match cache with
      | Some c -> Cache.resolve c ctx name
      | None -> Resolver.resolve store ctx name)

let check ?(equiv = Entity.equal) ?cache store rule occs name =
  match occs with
  | [] -> invalid_arg "Coherence.check: no occurrences"
  | first :: rest ->
      let resolve occ = (occ, resolve_via ?cache store rule occ name) in
      let results = resolve first :: List.map resolve rest in
      let defined = List.filter (fun (_, e) -> Entity.is_defined e) results in
      (match defined with
      | [] -> Vacuous
      | (occ_d, d) :: _ -> (
          match
            List.find_opt (fun (_, e) -> Entity.is_undefined e) results
          with
          | Some witness -> Incoherent ((occ_d, d), witness)
          | None -> (
              match List.find_opt (fun (_, e) -> not (equiv d e)) results with
              | Some witness -> Incoherent ((occ_d, d), witness)
              | None ->
                  if List.for_all (fun (_, e) -> Entity.equal d e) results then
                    Coherent d
                  else Weakly_coherent (List.map snd results))))

let is_coherent ?equiv ?cache store rule occs name =
  match check ?equiv ?cache store rule occs name with
  | Coherent _ | Weakly_coherent _ -> true
  | Incoherent _ | Vacuous -> false

type report = {
  probes : int;
  coherent : int;
  weakly_coherent : int;
  incoherent : int;
  vacuous : int;
}

let degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int (r.coherent + r.weakly_coherent) /. float_of_int meaningful

let strict_degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int r.coherent /. float_of_int meaningful

(* Batch entry points share one cache across every (occurrence, probe)
   pair: probes that share a path prefix walk it once. *)
let batch_cache ?cache store =
  match cache with Some c -> c | None -> Cache.create store

(* The parallel fan-out behind [?jobs]: one verdict per probe, computed
   across domains with the store frozen (a mutation mid-sweep raises
   instead of racing) and a cache shard per worker, each seeded from the
   caller's cache. Shard counters are merged back on join so a shared
   cache's statistics still account for the whole sweep; shard entries
   are private and dropped. Verdicts come back in probe order, so every
   derived quantity equals the sequential path's. *)
let classify_parallel ?equiv ?cache pool store rule occs probes =
  Store.read_only store (fun () ->
      let verdicts, shards =
        Pool.map_local pool
          ~local:(fun () -> batch_cache ?cache store |> Cache.copy)
          (fun shard name -> check ?equiv ~cache:shard store rule occs name)
          probes
      in
      (match cache with
      | None -> ()
      | Some c -> List.iter (fun s -> Cache.absorb c (Cache.stats s)) shards);
      verdicts)

let verdicts_of ?equiv ?cache ?jobs store rule occs probes =
  match Pool.get ?jobs () with
  | Some pool -> classify_parallel ?equiv ?cache pool store rule occs probes
  | None ->
      let cache = batch_cache ?cache store in
      List.map (fun n -> check ?equiv ~cache store rule occs n) probes

let measure ?equiv ?cache ?jobs store rule occs probes =
  let init =
    { probes = 0; coherent = 0; weakly_coherent = 0; incoherent = 0; vacuous = 0 }
  in
  List.fold_left
    (fun acc verdict ->
      let acc = { acc with probes = acc.probes + 1 } in
      match verdict with
      | Coherent _ -> { acc with coherent = acc.coherent + 1 }
      | Weakly_coherent _ -> { acc with weakly_coherent = acc.weakly_coherent + 1 }
      | Incoherent _ -> { acc with incoherent = acc.incoherent + 1 }
      | Vacuous -> { acc with vacuous = acc.vacuous + 1 })
    init
    (verdicts_of ?equiv ?cache ?jobs store rule occs probes)

let classify ?equiv ?cache ?jobs store rule occs probes =
  List.combine probes (verdicts_of ?equiv ?cache ?jobs store rule occs probes)

let coherent_names ?equiv ?cache ?jobs store rule occs probes =
  List.filter_map
    (fun (n, v) ->
      match v with
      | Coherent _ | Weakly_coherent _ -> Some n
      | Incoherent _ | Vacuous -> None)
    (classify ?equiv ?cache ?jobs store rule occs probes)

let incoherent_names ?equiv ?cache ?jobs store rule occs probes =
  List.filter_map
    (fun (n, v) ->
      match v with
      | Incoherent _ -> Some n
      | Coherent _ | Weakly_coherent _ | Vacuous -> None)
    (classify ?equiv ?cache ?jobs store rule occs probes)

let pp_verdict ppf = function
  | Coherent e -> Format.fprintf ppf "coherent(%a)" Entity.pp e
  | Weakly_coherent es ->
      Format.fprintf ppf "weakly-coherent(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Entity.pp)
        es
  | Incoherent ((o1, e1), (o2, e2)) ->
      Format.fprintf ppf "incoherent(%a ⇒ %a vs %a ⇒ %a)" Occurrence.pp o1
        Entity.pp e1 Occurrence.pp o2 Entity.pp e2
  | Vacuous -> Format.pp_print_string ppf "vacuous"

let pp_report ppf r =
  Format.fprintf ppf
    "probes=%d coherent=%d weak=%d incoherent=%d vacuous=%d degree=%.3f" r.probes
    r.coherent r.weakly_coherent r.incoherent r.vacuous (degree r)

type verdict =
  | Coherent of Entity.t
  | Weakly_coherent of Entity.t list
  | Incoherent of (Occurrence.t * Entity.t) * (Occurrence.t * Entity.t)
  | Vacuous

(* Rule.resolve through an engine: the rule selects the context, the
   engine performs (and possibly memoises or compiles) the walk. *)
let resolve_via_engine engine store rule occ name =
  match Rule.select rule store occ with
  | None -> Entity.undefined
  | Some ctx -> Engine.resolve engine ctx name

let check ?(equiv = Entity.equal) ?cache ?engine store rule occs name =
  match occs with
  | [] -> invalid_arg "Coherence.check: no occurrences"
  | first :: rest ->
      let engine = Engine.select ?cache ?engine ~default:`Interpreted store in
      let resolve occ = (occ, resolve_via_engine engine store rule occ name) in
      let results = resolve first :: List.map resolve rest in
      let defined = List.filter (fun (_, e) -> Entity.is_defined e) results in
      (match defined with
      | [] -> Vacuous
      | (occ_d, d) :: _ -> (
          match
            List.find_opt (fun (_, e) -> Entity.is_undefined e) results
          with
          | Some witness -> Incoherent ((occ_d, d), witness)
          | None -> (
              match List.find_opt (fun (_, e) -> not (equiv d e)) results with
              | Some witness -> Incoherent ((occ_d, d), witness)
              | None ->
                  if List.for_all (fun (_, e) -> Entity.equal d e) results then
                    Coherent d
                  else Weakly_coherent (List.map snd results))))

let is_coherent ?equiv ?cache ?engine store rule occs name =
  match check ?equiv ?cache ?engine store rule occs name with
  | Coherent _ | Weakly_coherent _ -> true
  | Incoherent _ | Vacuous -> false

type report = {
  probes : int;
  coherent : int;
  weakly_coherent : int;
  incoherent : int;
  vacuous : int;
}

let degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int (r.coherent + r.weakly_coherent) /. float_of_int meaningful

let strict_degree r =
  let meaningful = r.probes - r.vacuous in
  if meaningful <= 0 then 1.0
  else float_of_int r.coherent /. float_of_int meaningful

(* Batch entry points share one engine across every (occurrence, probe)
   pair: with the default cached engine, probes that share a path prefix
   walk it once; with the compiled engine, the world is compiled once. *)
let batch_engine ?cache ?engine store =
  Engine.select ?cache ?engine ~default:`Cached store

(* The parallel fan-out behind [?jobs]: one verdict per probe, computed
   across domains with the store frozen (a mutation mid-sweep raises
   instead of racing) and an engine shard per worker ({!Engine.shard}:
   a cache copy or compiled snapshot seeded from the caller's engine).
   Cached-shard counters are merged back on join so a shared cache's
   statistics still account for the whole sweep; shard entries are
   private and dropped. Verdicts come back in probe order, so every
   derived quantity equals the sequential path's. *)
let classify_parallel ?equiv engine pool store rule occs probes =
  Engine.prepare engine;
  Store.read_only store (fun () ->
      let verdicts, shards =
        Pool.map_local pool
          ~local:(fun () -> Engine.shard engine)
          (fun shard name -> check ?equiv ~engine:shard store rule occs name)
          probes
      in
      List.iter (fun s -> Engine.absorb engine ~shard:s) shards;
      verdicts)

let verdicts_of ?equiv ?cache ?engine ?jobs store rule occs probes =
  let engine = batch_engine ?cache ?engine store in
  match Pool.get ?jobs () with
  | Some pool -> classify_parallel ?equiv engine pool store rule occs probes
  | None -> List.map (fun n -> check ?equiv ~engine store rule occs n) probes

(* Streaming sweep: probes arrive as a [Seq.t], are materialised one
   chunk at a time (sequentially or fanned over the pool, chunk by
   chunk) and folded away immediately — peak residency is one chunk of
   verdicts, never O(probes), so an exact sweep over 10^6 probes stops
   allocating million-element intermediate lists. Chunk size trades
   pool dispatch overhead against residency; verdict values and order
   are independent of it and of [jobs]. *)
let chunk_size = 4096

let fold_verdicts ?equiv ?cache ?engine ?jobs store rule occs ~init ~f seq =
  let engine = batch_engine ?cache ?engine store in
  let pool = Pool.get ?jobs () in
  let sweep chunk =
    match pool with
    | Some pool -> classify_parallel ?equiv engine pool store rule occs chunk
    | None -> List.map (fun n -> check ?equiv ~engine store rule occs n) chunk
  in
  let rec take acc k seq =
    if k = 0 then (List.rev acc, seq)
    else
      match Seq.uncons seq with
      | None -> (List.rev acc, Seq.empty)
      | Some (x, rest) -> take (x :: acc) (k - 1) rest
  in
  let rec go acc seq =
    match take [] chunk_size seq with
    | [], _ -> acc
    | chunk, rest ->
        let acc = List.fold_left f acc (sweep chunk) in
        if List.compare_length_with chunk chunk_size < 0 then acc
        else go acc rest
  in
  go init seq

let empty_report =
  { probes = 0; coherent = 0; weakly_coherent = 0; incoherent = 0; vacuous = 0 }

let count_verdict acc verdict =
  let acc = { acc with probes = acc.probes + 1 } in
  match verdict with
  | Coherent _ -> { acc with coherent = acc.coherent + 1 }
  | Weakly_coherent _ -> { acc with weakly_coherent = acc.weakly_coherent + 1 }
  | Incoherent _ -> { acc with incoherent = acc.incoherent + 1 }
  | Vacuous -> { acc with vacuous = acc.vacuous + 1 }

let measure_seq ?equiv ?cache ?engine ?jobs store rule occs probes =
  fold_verdicts ?equiv ?cache ?engine ?jobs store rule occs ~init:empty_report
    ~f:count_verdict probes

let measure ?equiv ?cache ?engine ?jobs store rule occs probes =
  measure_seq ?equiv ?cache ?engine ?jobs store rule occs (List.to_seq probes)

let classify ?equiv ?cache ?engine ?jobs store rule occs probes =
  List.combine probes
    (verdicts_of ?equiv ?cache ?engine ?jobs store rule occs probes)

let coherent_names ?equiv ?cache ?engine ?jobs store rule occs probes =
  List.filter_map
    (fun (n, v) ->
      match v with
      | Coherent _ | Weakly_coherent _ -> Some n
      | Incoherent _ | Vacuous -> None)
    (classify ?equiv ?cache ?engine ?jobs store rule occs probes)

let incoherent_names ?equiv ?cache ?engine ?jobs store rule occs probes =
  List.filter_map
    (fun (n, v) ->
      match v with
      | Incoherent _ -> Some n
      | Coherent _ | Weakly_coherent _ | Vacuous -> None)
    (classify ?equiv ?cache ?engine ?jobs store rule occs probes)

type estimate = {
  degree : float;
  strict_degree : float;
  ci_low : float;
  ci_high : float;
  samples : int;
}

type 'rng sampler = { split : 'rng -> 'rng; draw : 'rng -> Name.t }

(* Acklam's rational approximation to the standard normal quantile
   (|error| < 1.2e-9), evaluated at (1 + confidence) / 2. Confidence is
   always > 0.5 here, so only the central and upper branches fire. *)
let z_of_confidence confidence =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Coherence.estimate: confidence outside (0, 1)";
  let p = 0.5 +. (confidence /. 2.0) in
  let horner coeffs x =
    Array.fold_left (fun acc c -> (acc *. x) +. c) 0.0 coeffs
  in
  if p <= 1.0 -. 0.02425 then
    let q = p -. 0.5 in
    let r = q *. q in
    q
    *. horner
         [|
           -3.969683028665376e+01; 2.209460984245205e+02;
           -2.759285104469687e+02; 1.383577518672690e+02;
           -3.066479806614716e+01; 2.506628277459239e+00;
         |]
         r
    /. horner
         [|
           -5.447609879822406e+01; 1.615858368580409e+02;
           -1.556989798598866e+02; 6.680131188771972e+01;
           -1.328068155288572e+01; 1.0;
         |]
         r
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.(horner
         [|
           -7.784894002430293e-03; -3.223964580411365e-01;
           -2.400758277161838e+00; -2.549732539343734e+00;
           4.374664141464968e+00; 2.938163982698783e+00;
         |]
         q
      /. horner
           [|
             7.784695709041462e-03; 3.224671290700398e-01;
             2.445134137142996e+00; 3.754408661907416e+00; 1.0;
           |]
           q)

(* Wilson score interval for [s] successes out of [n] meaningful
   samples: the sequential stopping statistic. Chosen over the normal
   approximation because it behaves at p near 0 and 1 — exactly where
   coherence degrees live. *)
let wilson ~z ~s ~n =
  if n <= 0 then (0.0, 1.0)
  else
    let nf = float_of_int n in
    let p = float_of_int s /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let half =
      z
      *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
      /. denom
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))

(* Probes are drawn in fixed-size batches, each batch from a child rng
   stream split off the caller's: the drawn sequence depends only on
   the seed and the batch index, never on how the batch is then fanned
   across domains — so jobs 1 and jobs 4 (and every engine) produce
   byte-identical estimates. Sampling stops as soon as the Wilson
   interval at the requested confidence is within [epsilon] of the
   point estimate (half-width), or at [max_samples]. *)
let estimate_batch = 256

let estimate ?equiv ?cache ?engine ?jobs ?(confidence = 0.95)
    ?(epsilon = 0.01) ?(max_samples = 100_000) ~rng store rule occs sampler =
  let z = z_of_confidence confidence in
  if not (epsilon > 0.0) then
    invalid_arg "Coherence.estimate: epsilon must be positive";
  if max_samples < 1 then
    invalid_arg "Coherence.estimate: max_samples must be at least 1";
  let engine = batch_engine ?cache ?engine store in
  let pool = Pool.get ?jobs () in
  let sweep chunk =
    match pool with
    | Some pool -> classify_parallel ?equiv engine pool store rule occs chunk
    | None -> List.map (fun n -> check ?equiv ~engine store rule occs n) chunk
  in
  let rec draw child acc k =
    if k = 0 then List.rev acc
    else draw child (sampler.draw child :: acc) (k - 1)
  in
  let rec go report =
    let child = sampler.split rng in
    let batch = min estimate_batch (max_samples - report.probes) in
    let report =
      List.fold_left count_verdict report (sweep (draw child [] batch))
    in
    let meaningful = report.probes - report.vacuous in
    let successes = report.coherent + report.weakly_coherent in
    let lo, hi = wilson ~z ~s:successes ~n:meaningful in
    if
      (meaningful > 0 && (hi -. lo) /. 2.0 <= epsilon)
      || report.probes >= max_samples
    then (report, lo, hi)
    else go report
  in
  let report, ci_low, ci_high = go empty_report in
  {
    degree = degree report;
    strict_degree = strict_degree report;
    ci_low;
    ci_high;
    samples = report.probes;
  }

let pp_estimate ppf e =
  Format.fprintf ppf "degree=%.4f strict=%.4f ci=[%.4f, %.4f] samples=%d"
    e.degree e.strict_degree e.ci_low e.ci_high e.samples

let pp_verdict ppf = function
  | Coherent e -> Format.fprintf ppf "coherent(%a)" Entity.pp e
  | Weakly_coherent es ->
      Format.fprintf ppf "weakly-coherent(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Entity.pp)
        es
  | Incoherent ((o1, e1), (o2, e2)) ->
      Format.fprintf ppf "incoherent(%a ⇒ %a vs %a ⇒ %a)" Occurrence.pp o1
        Entity.pp e1 Occurrence.pp o2 Entity.pp e2
  | Vacuous -> Format.pp_print_string ppf "vacuous"

let pp_report ppf r =
  Format.fprintf ppf
    "probes=%d coherent=%d weak=%d incoherent=%d vacuous=%d degree=%.3f" r.probes
    r.coherent r.weakly_coherent r.incoherent r.vacuous (degree r)

type t = Entity.t Name.Atom_map.t

let empty = Name.Atom_map.empty

let bind c a e =
  if Entity.is_undefined e then Name.Atom_map.remove a c
  else Name.Atom_map.add a e c

let of_bindings l = List.fold_left (fun c (a, e) -> bind c a e) empty l

let lookup c a =
  match Name.Atom_map.find_opt a c with None -> Entity.undefined | Some e -> e

let mem c a = Name.Atom_map.mem a c
let unbind c a = Name.Atom_map.remove a c
let bindings c = Name.Atom_map.bindings c
let cardinal = Name.Atom_map.cardinal
let is_empty = Name.Atom_map.is_empty

let union ~prefer c1 c2 =
  let pick _a e1 e2 =
    match prefer with `Left -> Some e1 | `Right -> Some e2
  in
  Name.Atom_map.union pick c1 c2

let restrict c atoms =
  List.fold_left
    (fun acc a ->
      match Name.Atom_map.find_opt a c with
      | None -> acc
      | Some e -> Name.Atom_map.add a e acc)
    empty atoms

let map f c =
  Name.Atom_map.fold
    (fun a e acc -> bind acc a (f e))
    c empty

let agree_on c1 c2 a = Entity.equal (lookup c1 a) (lookup c2 a)
let equal = Name.Atom_map.equal Entity.equal
let compare = Name.Atom_map.compare Entity.compare

let pp ppf c =
  let pp_binding ppf (a, e) =
    Format.fprintf ppf "%a ↦ %a" Name.pp_atom a Entity.pp e
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_binding)
    (bindings c)

let fold = Name.Atom_map.fold
let iter = Name.Atom_map.iter
let exists = Name.Atom_map.exists

(* Keyed by interned symbol id ({!Name.Atom_id_map}): lookup on the
   resolution hot path costs integer comparisons only. The documented
   orderings (bindings, fold, iter) are string order, so observable
   behaviour is unchanged from the string-keyed representation. *)

type t = Entity.t Name.Atom_id_map.t

let empty = Name.Atom_id_map.empty

let bind c a e =
  if Entity.is_undefined e then Name.Atom_id_map.remove a c
  else Name.Atom_id_map.add a e c

let of_bindings l = List.fold_left (fun c (a, e) -> bind c a e) empty l

(* find + Not_found rather than find_opt: no [Some] allocation on the
   resolution hot path. *)
let lookup c a =
  match Name.Atom_id_map.find a c with
  | e -> e
  | exception Not_found -> Entity.undefined

let mem c a = Name.Atom_id_map.mem a c
let unbind c a = Name.Atom_id_map.remove a c

let bindings c =
  List.sort
    (fun (a1, _) (a2, _) -> Name.atom_compare a1 a2)
    (Name.Atom_id_map.bindings c)

let cardinal = Name.Atom_id_map.cardinal
let is_empty = Name.Atom_id_map.is_empty

let union ~prefer c1 c2 =
  let pick _a e1 e2 =
    match prefer with `Left -> Some e1 | `Right -> Some e2
  in
  Name.Atom_id_map.union pick c1 c2

let restrict c atoms =
  List.fold_left
    (fun acc a ->
      match Name.Atom_id_map.find_opt a c with
      | None -> acc
      | Some e -> Name.Atom_id_map.add a e acc)
    empty atoms

let map f c =
  Name.Atom_id_map.fold (fun a e acc -> bind acc a (f e)) c empty

let agree_on c1 c2 a = Entity.equal (lookup c1 a) (lookup c2 a)
let equal = Name.Atom_id_map.equal Entity.equal

let compare c1 c2 =
  (* Total order over the string-ordered binding lists, so the ordering is
     independent of interning order. *)
  List.compare
    (fun (a1, e1) (a2, e2) ->
      match Name.atom_compare a1 a2 with
      | 0 -> Entity.compare e1 e2
      | c -> c)
    (bindings c1) (bindings c2)

let pp ppf c =
  let pp_binding ppf (a, e) =
    Format.fprintf ppf "%a ↦ %a" Name.pp_atom a Entity.pp e
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_binding)
    (bindings c)

let fold f c init =
  List.fold_left (fun acc (a, e) -> f a e acc) init (bindings c)

let iter f c = List.iter (fun (a, e) -> f a e) (bindings c)
let exists p c = Name.Atom_id_map.exists p c

exception Parse_error of string

type error = { line : int; message : string }

(* Internal: carries the structured position until it reaches the public
   surface (either [Error] from [of_string_result] or a rendered
   [Parse_error] from [of_string]). *)
exception Err of error

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Err { line; message })) fmt

let header = "coherent-naming-store v1"

let entity_ref e =
  match e with
  | Entity.Undefined -> "!"
  | Entity.Activity i -> Printf.sprintf "a%d" i
  | Entity.Object i -> Printf.sprintf "o%d" i

let add_entity_ref buf e =
  match e with
  | Entity.Undefined -> Buffer.add_char buf '!'
  | Entity.Activity i ->
      Buffer.add_char buf 'a';
      Buffer.add_string buf (string_of_int i)
  | Entity.Object i ->
      Buffer.add_char buf 'o';
      Buffer.add_string buf (string_of_int i)

(* %S-compatible quoting, chunked: runs of characters that need no
   escape are blitted with one [add_substring] instead of a char-by-char
   walk. The escape set and forms must match [String.escaped] exactly —
   the parser reads these back with Scanf [%S], and golden dumps must
   not change. *)
let add_quoted buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let flush start stop =
    if stop > start then Buffer.add_substring buf s start (stop - start)
  in
  let rec go start i =
    if i = n then flush start i
    else
      let c = s.[i] in
      if c >= ' ' && c <= '~' && c <> '"' && c <> '\\' then go start (i + 1)
      else begin
        flush start i;
        (match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\b' -> Buffer.add_string buf "\\b"
        | c ->
            Buffer.add_char buf '\\';
            Buffer.add_string buf (Printf.sprintf "%03d" (Char.code c)));
        go (i + 1) (i + 1)
      end
  in
  go 0 0;
  Buffer.add_char buf '"'

(* One pass over the entities to size the buffer: a close upper bound on
   the unescaped output (escapes may add a few percent, absorbed by one
   final doubling at worst; the common case allocates exactly once). *)
let size_estimate store all =
  List.fold_left
    (fun acc e ->
      let acc =
        acc + 16
        + (match Store.label store e with
          | Some l -> String.length l + 16
          | None -> 0)
      in
      match Store.obj_state store e with
      | Some (Store.Data d) -> acc + String.length d
      | Some (Store.Context ctx) -> acc + (24 * Context.cardinal ctx)
      | None -> acc)
    (String.length header + 1)
    all

(* The single encoder behind [to_string] and [encode_to_channel]: fills
   [buf] entity by entity, calling [flush] after each one — a no-op for
   the in-memory dump, a threshold-triggered channel write for the
   streaming one, so both produce the same bytes. *)
let encode store ~buf ~flush =
  (* Entities in allocation (id) order. *)
  let all =
    List.sort
      (fun e1 e2 -> Int.compare (Entity.id e1) (Entity.id e2))
      (Store.activities store @ Store.objects store)
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      (match Store.obj_state store e with
      | None ->
          Buffer.add_string buf "activity ";
          Buffer.add_string buf (string_of_int (Entity.id e));
          Buffer.add_char buf '\n'
      | Some (Store.Data d) ->
          Buffer.add_string buf "file ";
          Buffer.add_string buf (string_of_int (Entity.id e));
          Buffer.add_char buf ' ';
          add_quoted buf d;
          Buffer.add_char buf '\n'
      | Some (Store.Context _) ->
          Buffer.add_string buf "dir ";
          Buffer.add_string buf (string_of_int (Entity.id e));
          Buffer.add_char buf '\n');
      (match Store.label store e with
      | None -> ()
      | Some l ->
          Buffer.add_string buf "label ";
          add_entity_ref buf e;
          Buffer.add_char buf ' ';
          add_quoted buf l;
          Buffer.add_char buf '\n');
      flush ())
    all;
  (* Bindings, after every entity exists. *)
  List.iter
    (fun e ->
      match Store.obj_state store e with
      | Some (Store.Context ctx) ->
          List.iter
            (fun (atom, target) ->
              Buffer.add_string buf "bind ";
              Buffer.add_string buf (string_of_int (Entity.id e));
              Buffer.add_char buf ' ';
              add_quoted buf (Name.atom_to_string atom);
              Buffer.add_char buf ' ';
              add_entity_ref buf target;
              Buffer.add_char buf '\n')
            (Context.bindings ctx);
          flush ()
      | Some (Store.Data _) | None -> ())
    all

let to_string store =
  let all = Store.activities store @ Store.objects store in
  let buf = Buffer.create (size_estimate store all) in
  encode store ~buf ~flush:ignore;
  Buffer.contents buf

let stream_chunk = 65536

let encode_to_channel store oc =
  let buf = Buffer.create (2 * stream_chunk) in
  let flush () =
    if Buffer.length buf >= stream_chunk then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  encode store ~buf ~flush;
  Buffer.output_buffer oc buf

let to_string_many ?jobs stores =
  match Pool.get ?jobs () with
  | None -> List.map to_string stores
  | Some pool ->
      Pool.map pool
        (fun store -> Store.read_only store (fun () -> to_string store))
        stores

type pre_entity = Pre_activity | Pre_file of string | Pre_dir

let parse_entity_ref lineno s =
  if String.length s < 2 then parse_error lineno "bad entity reference %S" s
  else
    let num () =
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i when i >= 0 -> i
      | _ -> parse_error lineno "bad entity reference %S" s
    in
    match s.[0] with
    | 'a' -> Entity.Activity (num ())
    | 'o' -> Entity.Object (num ())
    | _ -> parse_error lineno "bad entity reference %S" s

(* One classified body line; the string parser and the streaming channel
   decoder share this so the two accept the same line language and
   report the same errors at the same positions. *)
type line =
  | L_blank
  | L_entity of int * pre_entity
  | L_label of string * string  (* entity ref, label *)
  | L_bind of int * string * string  (* dir id, atom, target ref *)

let classify_line lineno line =
  if String.equal line "" then L_blank
  else if String.length line >= 9 && String.sub line 0 9 = "activity " then
    match int_of_string_opt (String.sub line 9 (String.length line - 9)) with
    | Some id -> L_entity (id, Pre_activity)
    | None -> parse_error lineno "bad activity line"
  else if String.length line >= 4 && String.sub line 0 4 = "dir " then
    match int_of_string_opt (String.sub line 4 (String.length line - 4)) with
    | Some id -> L_entity (id, Pre_dir)
    | None -> parse_error lineno "bad dir line"
  else if String.length line >= 5 && String.sub line 0 5 = "file " then begin
    try
      Scanf.sscanf line "file %d %S" (fun id data ->
          L_entity (id, Pre_file data))
    with Scanf.Scan_failure _ | End_of_file ->
      parse_error lineno "bad file line"
  end
  else if String.length line >= 6 && String.sub line 0 6 = "label " then begin
    try Scanf.sscanf line "label %s %S" (fun ref_ l -> L_label (ref_, l))
    with Scanf.Scan_failure _ | End_of_file ->
      parse_error lineno "bad label line"
  end
  else if String.length line >= 5 && String.sub line 0 5 = "bind " then begin
    try
      Scanf.sscanf line "bind %d %S %s" (fun dir atom target ->
          L_bind (dir, atom, target))
    with Scanf.Scan_failure _ | End_of_file ->
      parse_error lineno "bad bind line"
  end
  else parse_error lineno "unrecognised line %S" line

(* Reference lookup, label application and bind application over the
   id ↦ created-entity table — shared by both decoders. *)
let find_created created lineno e =
  match e with
  | Entity.Undefined -> Entity.Undefined
  | _ -> (
      match Hashtbl.find_opt created (Entity.id e) with
      | Some e' when Entity.(is_activity e = is_activity e') -> e'
      | _ -> parse_error lineno "dangling entity reference %s" (entity_ref e))

let apply_label store created (lineno, ref_, l) =
  Store.set_label store
    (find_created created lineno (parse_entity_ref lineno ref_))
    l

let apply_bind store created (lineno, dir_id, atom, target) =
  let dir = find_created created lineno (Entity.Object dir_id) in
  if not (Store.is_context_object store dir) then
    parse_error lineno "bind into non-directory o%d" dir_id;
  let target = find_created created lineno (parse_entity_ref lineno target) in
  match Name.atom atom with
  | a -> Store.bind store ~dir a target
  | exception Name.Invalid msg -> parse_error lineno "bad atom: %s" msg

let parse text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _ when String.equal first header -> ()
  | first :: _ -> parse_error 1 "bad header %S" first
  | [] -> parse_error 1 "empty input");
  let entities = Hashtbl.create 64 in
  let labels = ref [] in
  let binds = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if idx = 0 then ()
      else
        match classify_line lineno line with
        | L_blank -> ()
        | L_entity (id, pre) -> Hashtbl.replace entities id pre
        | L_label (ref_, l) -> labels := (lineno, ref_, l) :: !labels
        | L_bind (dir, atom, target) ->
            binds := (lineno, dir, atom, target) :: !binds)
    lines;
  (* Recreate entities in id order; ids must be dense from 0. *)
  let store = Store.create () in
  let count = Hashtbl.length entities in
  let created = Hashtbl.create count in
  for id = 0 to count - 1 do
    match Hashtbl.find_opt entities id with
    | None -> parse_error 0 "entity ids not dense: %d missing" id
    | Some Pre_activity ->
        Hashtbl.replace created id (Store.create_activity store)
    | Some (Pre_file data) ->
        Hashtbl.replace created id (Store.create_object ~state:(Store.Data data) store)
    | Some Pre_dir ->
        Hashtbl.replace created id (Store.create_context_object store)
  done;
  List.iter (apply_label store created) (List.rev !labels);
  List.iter (apply_bind store created) (List.rev !binds);
  store

(* Streaming decode: one pass, constant-resident. Entities must arrive
   in dense id order (what the encoder emits), so each can be created
   the moment its line is read; labels and binds are applied eagerly
   when their entities already exist — always the case for encoder
   output — and parked until end of input otherwise, where a
   still-dangling reference reports the same error at the same line as
   [parse]. *)
let decode_lines next_line =
  (match next_line () with
  | Some first when String.equal first header -> ()
  | Some first -> parse_error 1 "bad header %S" first
  | None -> parse_error 1 "empty input");
  let store = Store.create () in
  let created = Hashtbl.create 64 in
  let next_id = ref 0 in
  let pending_labels = ref [] in
  let pending_binds = ref [] in
  let ready e =
    match e with
    | Entity.Undefined -> true
    | _ -> (
        match Hashtbl.find_opt created (Entity.id e) with
        | Some e' -> Entity.(is_activity e = is_activity e')
        | None -> false)
  in
  let lineno = ref 1 in
  let rec loop () =
    match next_line () with
    | None -> ()
    | Some line ->
        incr lineno;
        let ln = !lineno in
        (match classify_line ln line with
        | L_blank -> ()
        | L_entity (id, pre) ->
            if id <> !next_id then
              parse_error ln "out-of-order entity id %d (expected %d)" id
                !next_id;
            let e =
              match pre with
              | Pre_activity -> Store.create_activity store
              | Pre_file data ->
                  Store.create_object ~state:(Store.Data data) store
              | Pre_dir -> Store.create_context_object store
            in
            Hashtbl.replace created id e;
            incr next_id
        | L_label (ref_, l) ->
            if ready (parse_entity_ref ln ref_) then
              apply_label store created (ln, ref_, l)
            else pending_labels := (ln, ref_, l) :: !pending_labels
        | L_bind (dir_id, atom, target) ->
            if ready (Entity.Object dir_id) && ready (parse_entity_ref ln target)
            then apply_bind store created (ln, dir_id, atom, target)
            else pending_binds := (ln, dir_id, atom, target) :: !pending_binds);
        loop ()
  in
  loop ();
  List.iter (apply_label store created) (List.rev !pending_labels);
  List.iter (apply_bind store created) (List.rev !pending_binds);
  store

let decode_from_channel ic =
  let next_line () =
    match input_line ic with
    | line -> Some line
    | exception End_of_file -> None
  in
  match decode_lines next_line with
  | store -> Ok store
  | exception Err e -> Error e
  | exception exn -> Error { line = 0; message = Printexc.to_string exn }

(* Total: any input — random bytes, truncated dumps, mutated valid dumps
   — yields [Error] rather than an exception. The catch-all guards
   against escapes from library calls the per-line checks don't cover;
   it reports line 0 (no better position is known). *)
let of_string_result text =
  match parse text with
  | store -> Ok store
  | exception Err e -> Error e
  | exception exn -> Error { line = 0; message = Printexc.to_string exn }

let of_string text =
  match of_string_result text with
  | Ok store -> store
  | Error { line; message } ->
      raise (Parse_error (Printf.sprintf "line %d: %s" line message))

let roundtrip_equal s1 s2 =
  let entities st =
    List.sort
      (fun a b -> Int.compare (Entity.id a) (Entity.id b))
      (Store.activities st @ Store.objects st)
  in
  let e1 = entities s1 and e2 = entities s2 in
  List.length e1 = List.length e2
  && List.for_all2
       (fun a b ->
         Entity.equal a b
         && Store.label s1 a = Store.label s2 b
         &&
         match (Store.obj_state s1 a, Store.obj_state s2 b) with
         | None, None -> true
         | Some (Store.Data d1), Some (Store.Data d2) -> String.equal d1 d2
         | Some (Store.Context c1), Some (Store.Context c2) ->
             Context.equal c1 c2
         | _ -> false)
       e1 e2

exception Parse_error of string

type error = { line : int; message : string }

(* Internal: carries the structured position until it reaches the public
   surface (either [Error] from [of_string_result] or a rendered
   [Parse_error] from [of_string]). *)
exception Err of error

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Err { line; message })) fmt

let header = "coherent-naming-store v1"

let entity_ref e =
  match e with
  | Entity.Undefined -> "!"
  | Entity.Activity i -> Printf.sprintf "a%d" i
  | Entity.Object i -> Printf.sprintf "o%d" i

let add_entity_ref buf e =
  match e with
  | Entity.Undefined -> Buffer.add_char buf '!'
  | Entity.Activity i ->
      Buffer.add_char buf 'a';
      Buffer.add_string buf (string_of_int i)
  | Entity.Object i ->
      Buffer.add_char buf 'o';
      Buffer.add_string buf (string_of_int i)

(* %S-compatible quoting, chunked: runs of characters that need no
   escape are blitted with one [add_substring] instead of a char-by-char
   walk. The escape set and forms must match [String.escaped] exactly —
   the parser reads these back with Scanf [%S], and golden dumps must
   not change. *)
let add_quoted buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let flush start stop =
    if stop > start then Buffer.add_substring buf s start (stop - start)
  in
  let rec go start i =
    if i = n then flush start i
    else
      let c = s.[i] in
      if c >= ' ' && c <= '~' && c <> '"' && c <> '\\' then go start (i + 1)
      else begin
        flush start i;
        (match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\b' -> Buffer.add_string buf "\\b"
        | c ->
            Buffer.add_char buf '\\';
            Buffer.add_string buf (Printf.sprintf "%03d" (Char.code c)));
        go (i + 1) (i + 1)
      end
  in
  go 0 0;
  Buffer.add_char buf '"'

(* One pass over the entities to size the buffer: a close upper bound on
   the unescaped output (escapes may add a few percent, absorbed by one
   final doubling at worst; the common case allocates exactly once). *)
let size_estimate store all =
  List.fold_left
    (fun acc e ->
      let acc =
        acc + 16
        + (match Store.label store e with
          | Some l -> String.length l + 16
          | None -> 0)
      in
      match Store.obj_state store e with
      | Some (Store.Data d) -> acc + String.length d
      | Some (Store.Context ctx) -> acc + (24 * Context.cardinal ctx)
      | None -> acc)
    (String.length header + 1)
    all

let to_string store =
  (* Entities in allocation (id) order. *)
  let all =
    List.sort
      (fun e1 e2 -> Int.compare (Entity.id e1) (Entity.id e2))
      (Store.activities store @ Store.objects store)
  in
  let buf = Buffer.create (size_estimate store all) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      (match Store.obj_state store e with
      | None ->
          Buffer.add_string buf "activity ";
          Buffer.add_string buf (string_of_int (Entity.id e));
          Buffer.add_char buf '\n'
      | Some (Store.Data d) ->
          Buffer.add_string buf "file ";
          Buffer.add_string buf (string_of_int (Entity.id e));
          Buffer.add_char buf ' ';
          add_quoted buf d;
          Buffer.add_char buf '\n'
      | Some (Store.Context _) ->
          Buffer.add_string buf "dir ";
          Buffer.add_string buf (string_of_int (Entity.id e));
          Buffer.add_char buf '\n');
      match Store.label store e with
      | None -> ()
      | Some l ->
          Buffer.add_string buf "label ";
          add_entity_ref buf e;
          Buffer.add_char buf ' ';
          add_quoted buf l;
          Buffer.add_char buf '\n')
    all;
  (* Bindings, after every entity exists. *)
  List.iter
    (fun e ->
      match Store.obj_state store e with
      | Some (Store.Context ctx) ->
          List.iter
            (fun (atom, target) ->
              Buffer.add_string buf "bind ";
              Buffer.add_string buf (string_of_int (Entity.id e));
              Buffer.add_char buf ' ';
              add_quoted buf (Name.atom_to_string atom);
              Buffer.add_char buf ' ';
              add_entity_ref buf target;
              Buffer.add_char buf '\n')
            (Context.bindings ctx)
      | Some (Store.Data _) | None -> ())
    all;
  Buffer.contents buf

let to_string_many ?jobs stores =
  match Pool.get ?jobs () with
  | None -> List.map to_string stores
  | Some pool ->
      Pool.map pool
        (fun store -> Store.read_only store (fun () -> to_string store))
        stores

type pre_entity = Pre_activity | Pre_file of string | Pre_dir

let parse_entity_ref lineno s =
  if String.length s < 2 then parse_error lineno "bad entity reference %S" s
  else
    let num () =
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i when i >= 0 -> i
      | _ -> parse_error lineno "bad entity reference %S" s
    in
    match s.[0] with
    | 'a' -> Entity.Activity (num ())
    | 'o' -> Entity.Object (num ())
    | _ -> parse_error lineno "bad entity reference %S" s

let parse text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _ when String.equal first header -> ()
  | first :: _ -> parse_error 1 "bad header %S" first
  | [] -> parse_error 1 "empty input");
  let entities = Hashtbl.create 64 in
  let labels = ref [] in
  let binds = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if idx = 0 || String.equal line "" then ()
      else if String.length line >= 9 && String.sub line 0 9 = "activity " then
        match int_of_string_opt (String.sub line 9 (String.length line - 9)) with
        | Some id -> Hashtbl.replace entities id Pre_activity
        | None -> parse_error lineno "bad activity line"
      else if String.length line >= 4 && String.sub line 0 4 = "dir " then
        match int_of_string_opt (String.sub line 4 (String.length line - 4)) with
        | Some id -> Hashtbl.replace entities id Pre_dir
        | None -> parse_error lineno "bad dir line"
      else if String.length line >= 5 && String.sub line 0 5 = "file " then begin
        try
          Scanf.sscanf line "file %d %S" (fun id data ->
              Hashtbl.replace entities id (Pre_file data))
        with Scanf.Scan_failure _ | End_of_file ->
          parse_error lineno "bad file line"
      end
      else if String.length line >= 6 && String.sub line 0 6 = "label " then begin
        try
          Scanf.sscanf line "label %s %S" (fun ref_ l ->
              labels := (lineno, ref_, l) :: !labels)
        with Scanf.Scan_failure _ | End_of_file ->
          parse_error lineno "bad label line"
      end
      else if String.length line >= 5 && String.sub line 0 5 = "bind " then begin
        try
          Scanf.sscanf line "bind %d %S %s" (fun dir atom target ->
              binds := (lineno, dir, atom, target) :: !binds)
        with Scanf.Scan_failure _ | End_of_file ->
          parse_error lineno "bad bind line"
      end
      else parse_error lineno "unrecognised line %S" line)
    lines;
  (* Recreate entities in id order; ids must be dense from 0. *)
  let store = Store.create () in
  let count = Hashtbl.length entities in
  let created = Hashtbl.create count in
  for id = 0 to count - 1 do
    match Hashtbl.find_opt entities id with
    | None -> parse_error 0 "entity ids not dense: %d missing" id
    | Some Pre_activity ->
        Hashtbl.replace created id (Store.create_activity store)
    | Some (Pre_file data) ->
        Hashtbl.replace created id (Store.create_object ~state:(Store.Data data) store)
    | Some Pre_dir ->
        Hashtbl.replace created id (Store.create_context_object store)
  done;
  let find lineno e =
    match e with
    | Entity.Undefined -> Entity.Undefined
    | _ -> (
        match Hashtbl.find_opt created (Entity.id e) with
        | Some e' when Entity.(is_activity e = is_activity e') -> e'
        | _ ->
            parse_error lineno "dangling entity reference %s" (entity_ref e))
  in
  List.iter
    (fun (lineno, ref_, l) ->
      Store.set_label store (find lineno (parse_entity_ref lineno ref_)) l)
    (List.rev !labels);
  List.iter
    (fun (lineno, dir_id, atom, target) ->
      let dir = find lineno (Entity.Object dir_id) in
      if not (Store.is_context_object store dir) then
        parse_error lineno "bind into non-directory o%d" dir_id;
      let target = find lineno (parse_entity_ref lineno target) in
      match Name.atom atom with
      | a -> Store.bind store ~dir a target
      | exception Name.Invalid msg -> parse_error lineno "bad atom: %s" msg)
    (List.rev !binds);
  store

(* Total: any input — random bytes, truncated dumps, mutated valid dumps
   — yields [Error] rather than an exception. The catch-all guards
   against escapes from library calls the per-line checks don't cover;
   it reports line 0 (no better position is known). *)
let of_string_result text =
  match parse text with
  | store -> Ok store
  | exception Err e -> Error e
  | exception exn -> Error { line = 0; message = Printexc.to_string exn }

let of_string text =
  match of_string_result text with
  | Ok store -> store
  | Error { line; message } ->
      raise (Parse_error (Printf.sprintf "line %d: %s" line message))

let roundtrip_equal s1 s2 =
  let entities st =
    List.sort
      (fun a b -> Int.compare (Entity.id a) (Entity.id b))
      (Store.activities st @ Store.objects st)
  in
  let e1 = entities s1 and e2 = entities s2 in
  List.length e1 = List.length e2
  && List.for_all2
       (fun a b ->
         Entity.equal a b
         && Store.label s1 a = Store.label s2 b
         &&
         match (Store.obj_state s1 a, Store.obj_state s2 b) with
         | None, None -> true
         | Some (Store.Data d1), Some (Store.Data d2) -> String.equal d1 d2
         | Some (Store.Context c1), Some (Store.Context c2) ->
             Context.equal c1 c2
         | _ -> false)
       e1 e2

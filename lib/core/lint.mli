(** Well-formedness checks for naming worlds.

    The model itself cannot produce dangling references (bindings always
    point at allocated entities), but schemes maintain {e conventions} on
    top of it — dot bindings, tree shape, reachability — whose violation
    usually means a scheme bug. [Lint] makes those conventions checkable;
    every scheme's world in this repository lints clean, and a property
    test keeps it that way. *)

type violation =
  | Self_not_self of Entity.t
      (** a directory whose ["."] binding is not itself *)
  | Parent_not_directory of Entity.t * Entity.t
      (** a [".."] binding to a non-directory *)
  | Parent_not_linked of Entity.t * Entity.t
      (** dir's [".."] names a directory that does not bind dir back
          (excused for roots that are their own parent) *)
  | Binding_to_foreign of Entity.t * Name.atom * Entity.t
      (** a binding to an entity the store does not know *)

type report = { checked : int; violations : violation list }

val check : Store.t -> report
(** Checks every context object of the store. *)

val is_dot : Name.atom -> bool
(** True on ["."] and [".."]. *)

val links_back : Store.t -> parent:Entity.t -> child:Entity.t -> bool
(** Does [parent] bind [child] under some non-dot atom? Short-circuits on
    the first hit. *)

val is_clean : Store.t -> bool
val pp_violation : Store.t -> Format.formatter -> violation -> unit
val pp_report : Store.t -> Format.formatter -> report -> unit

(** The resolution compiler: a naming world packed into flat int tables.

    [compile store] flattens every context object of the store into an
    open-addressed hash table of interned atom ids, so that resolving a
    compound name is one integer table probe per path component —
    no Context map descent, no Store hashtable lookup, and no allocation
    on the resolve path. The compiled form tracks the store's mutation
    clock ({!Store.tick} / {!Store.touched_since}) and recompiles
    {e incrementally}: a bind patches exactly the node of the directory
    it touched, not the world.

    Results are defined to be identical to {!Resolver}'s on every input:
    the compiled engine is an implementation of the paper's section-2
    semantics, not a variant of them. *)

type t

val compile : Store.t -> t
(** Compile the current state of the store. Subsequent store mutations
    are folded in lazily by the next resolve (or eagerly by
    {!refresh}). *)

val store : t -> Store.t

val refresh : t -> unit
(** Bring the tables up to date with the store: rebuilds only the nodes
    of entities reported by {!Store.touched_since} since the last
    refresh. A no-op when the store tick is unchanged. Call this before
    sharing {!snapshot}s with parallel workers so the workers never
    patch concurrently. *)

val snapshot : t -> t
(** A refreshed shallow copy for a parallel worker: shares the packed
    tables (safe under {!Store.read_only}, where no patching can occur)
    but owns its entry-point index, so concurrent resolves in sibling
    domains never contend. Per-run counters start at zero. *)

val resolve : t -> Context.t -> Name.t -> Entity.t
(** [resolve t c n] — same result as [Resolver.resolve (store t) c n]:
    the first atom through the context value [c], every further step
    through the packed tables. *)

val resolve_in : t -> Entity.t -> Name.t -> Entity.t
(** [resolve_in t o n] — same result as
    [Resolver.resolve_in (store t) o n]. *)

val resolve_trace_into : Resolver.buffer -> t -> Context.t -> Name.t -> Entity.t
(** Same steps (and result) as {!Resolver.resolve_trace_into}, produced
    from the packed tables: trace consumers see identical evidence. *)

(** {1 Statistics} *)

type stats = {
  nodes : int;  (** live compiled nodes (= context objects) *)
  slots : int;  (** distinct entities referenced by the tables *)
  table_cells : int;  (** total open-addressing cells across nodes *)
  bindings : int;  (** occupied cells (= defined bindings) *)
  full_compiles : int;  (** whole-world compiles (1, or 0 for snapshots) *)
  node_builds : int;  (** per-node table (re)builds, initial + patches *)
  patches : int;  (** incremental refresh rounds that found changes *)
  patched_nodes : int;  (** touched entities processed by those rounds *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

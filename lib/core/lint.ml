type violation =
  | Self_not_self of Entity.t
  | Parent_not_directory of Entity.t * Entity.t
  | Parent_not_linked of Entity.t * Entity.t
  | Binding_to_foreign of Entity.t * Name.atom * Entity.t

type report = { checked : int; violations : violation list }

let is_dot a =
  Name.atom_equal a Name.self_atom || Name.atom_equal a Name.parent_atom

(* Does [parent] bind [child] under some non-dot atom? *)
let links_back store ~parent ~child =
  match Store.context_of store parent with
  | None -> false
  | Some ctx ->
      Context.exists
        (fun a e -> (not (is_dot a)) && Entity.equal e child)
        ctx

let check_dir store dir acc =
  match Store.context_of store dir with
  | None -> acc
  | Some ctx ->
      let self = Context.lookup ctx Name.self_atom in
      let parent = Context.lookup ctx Name.parent_atom in
      (* Directories carry both dots; a per-activity context object binds
         "." to the working directory and has no "..", so the self check
         only applies when ".." is present too. *)
      let acc =
        if
          Entity.is_defined parent && Entity.is_defined self
          && not (Entity.equal self dir)
        then Self_not_self dir :: acc
        else acc
      in
      let acc =
        if Entity.is_defined parent then
          if not (Store.is_context_object store parent) then
            Parent_not_directory (dir, parent) :: acc
          else if
            (not (Entity.equal parent dir))
            && not (links_back store ~parent ~child:dir)
          then Parent_not_linked (dir, parent) :: acc
          else acc
        else acc
      in
      Context.fold
        (fun a e acc ->
          if Entity.is_defined e && not (Store.exists store e) then
            Binding_to_foreign (dir, a, e) :: acc
          else acc)
        ctx acc

let check store =
  let dirs = Store.context_objects store in
  let violations =
    List.fold_left (fun acc d -> check_dir store d acc) [] dirs
  in
  { checked = List.length dirs; violations = List.rev violations }

let is_clean store = (check store).violations = []

let pp_violation store ppf = function
  | Self_not_self d ->
      Format.fprintf ppf "%a: '.' does not denote itself"
        (Store.pp_entity store) d
  | Parent_not_directory (d, p) ->
      Format.fprintf ppf "%a: '..' denotes non-directory %a"
        (Store.pp_entity store) d (Store.pp_entity store) p
  | Parent_not_linked (d, p) ->
      Format.fprintf ppf "%a: parent %a does not link back"
        (Store.pp_entity store) d (Store.pp_entity store) p
  | Binding_to_foreign (d, a, e) ->
      Format.fprintf ppf "%a: binding %a -> unknown entity %a"
        (Store.pp_entity store) d Name.pp_atom a Entity.pp e

let pp_report store ppf r =
  if r.violations = [] then
    Format.fprintf ppf "lint: %d context objects, clean" r.checked
  else begin
    Format.fprintf ppf "lint: %d context objects, %d violation(s):@\n"
      r.checked
      (List.length r.violations);
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
      (fun ppf v -> Format.fprintf ppf "  %a" (pp_violation store) v)
      ppf r.violations
  end

(** Occurrences: the circumstances in which a name occurs.

    Section 3 of the paper identifies three sources from which an activity
    can obtain a name: it can generate the name internally (this includes
    names typed by a human user), receive it in a message from another
    activity, or read it from an object in which it is embedded. The
    {e meta context} M describes these circumstances; a resolution rule
    R : M → C selects the context used to resolve the name. *)

type t =
  | Generated of { by : Entity.t }
      (** The name was generated internally by activity [by]. *)
  | Received of { sender : Entity.t; receiver : Entity.t }
      (** The name arrived in a message from [sender] to [receiver]. *)
  | Embedded of { reader : Entity.t; source : Entity.t }
      (** Activity [reader] obtained the name from object [source]. *)

type source = Source_generated | Source_received | Source_embedded
(** The three sources of names of Figure 1. *)

val source : t -> source

val subject : t -> Entity.t
(** The activity performing the resolution: [by], [receiver] or
    [reader]. *)

val generated : Entity.t -> t
val received : sender:Entity.t -> receiver:Entity.t -> t
val embedded : reader:Entity.t -> source:Entity.t -> t

val with_subject : t -> Entity.t -> t
(** The same circumstance, re-targeted at another resolving activity. *)

val source_to_string : source -> string
val pp : Format.formatter -> t -> unit
val pp_source : Format.formatter -> source -> unit
val equal : t -> t -> bool

val all_sources : source list

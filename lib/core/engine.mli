(** Resolution engines: one semantics, three execution strategies.

    Every resolve consumer (coherence sweeps, workload replays, the
    analyzers, the simulator) goes through an engine:

    - {e interpreted} — {!Resolver}: walk the context objects
      atom-by-atom on every call.
    - {e cached} — {!Cache}: memoise results with dependency-tracked
      invalidation.
    - {e compiled} — {!Compiled}: packed int-table dispatch with
      incremental recompilation.

    The three produce identical results on every input (a property test
    holds them to it); they differ only in cost model. Call sites take
    [?engine] and fall back to [of_env], so the environment variable
    [NAMING_ENGINE=interpreted|cached|compiled] re-runs any unchanged
    workload under another engine. *)

type kind = [ `Interpreted | `Cached | `Compiled ]

type t =
  | Interpreted of Store.t
  | Cached of Cache.t
  | Compiled of Compiled.t

val create : kind -> Store.t -> t

val env_kind : unit -> kind option
(** The kind requested by [NAMING_ENGINE], or [None] when unset/empty.
    @raise Invalid_argument on an unrecognised value. *)

val of_env : ?default:kind -> Store.t -> t
(** [of_env ?default store] reads [NAMING_ENGINE]; unset or empty falls
    back to [default] (itself defaulting to [`Interpreted] — the
    engine with no warm-up and no state, matching the historical
    behaviour of single resolutions).
    @raise Invalid_argument on an unrecognised value. *)

val select :
  ?cache:Cache.t -> ?engine:t -> default:kind -> Store.t -> t
(** The call-site selector: an explicit [?engine] wins; otherwise
    [NAMING_ENGINE] (the variable exists precisely to re-run unchanged
    call sites under another engine); otherwise a caller-supplied
    [?cache] is wrapped ([Cached]); otherwise [default]. *)

val kind : t -> kind
val label : t -> string

val store : t -> Store.t
(** @raise Invalid_argument for [Cached] (the cache hides its store). *)

(** {1 Resolution} — each equal to its {!Resolver} counterpart *)

val resolve : t -> Context.t -> Name.t -> Entity.t
val resolve_in : t -> Entity.t -> Name.t -> Entity.t

val resolve_trace_into :
  Resolver.buffer -> t -> Store.t -> Context.t -> Name.t -> Entity.t
(** Same steps as {!Resolver.resolve_trace_into}. [Interpreted] and
    [Cached] walk the store (the cache memoises results, not paths);
    [Compiled] reconstructs the identical trace from its tables. *)

(** {1 Parallel sweeps} *)

val prepare : t -> unit
(** Bring the engine up to date with its store ({!Compiled.refresh});
    call before {!Store.read_only} fan-out so worker shards never patch
    concurrently. No-op for the other engines. *)

val shard : t -> t
(** A per-domain engine over the same store: {!Cache.copy} /
    {!Compiled.snapshot}; [Interpreted] is stateless and shared. *)

val absorb : t -> shard:t -> unit
(** Merge a shard's counters back after a join (cached shards only —
    compiled snapshots cannot patch under the read barrier, so they
    have nothing to report). *)

val cache : t -> Cache.t option
val compiled : t -> Compiled.t option

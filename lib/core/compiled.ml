(* The resolution compiler: a naming world flattened into one packed
   integer arena.

   Every context object of the store becomes a {e node}: an open-addressed
   hash table of interned atom ids, stored as a region of the shared int
   arena. A region is a header word (the region's probe mask) followed by
   stride-4 cells [key; slot; next; nextmask] — the bound atom, the
   target's slot index, the {e arena offset} of the target's region when
   the target is itself a context object (-1 otherwise), and that
   region's probe mask. Because child links are arena offsets rather
   than heap pointers, the walk keeps the arena base in a register and a
   resolution step costs exactly two dependent loads: the probed key
   (its cell neighbours share the cache line) and the child's key.
   Integer loads and compares only — no Context map descent, no Store
   hashtable lookup, no allocation.

   Every distinct binding target also has a {e slot}: an index into side
   arrays giving the target entity (for the final step) and the arena
   offset of its region (the source of truth the cached cell links
   mirror). The slot indirection is what keeps incremental recompilation
   O(touched subtree): a bind rebuilds exactly the region of the
   directory it touched, in place when the new table fits the region's
   capacity. Two non-local events invalidate cached cells in parents
   that were not themselves touched: an entity {e gaining or losing}
   context-object-hood (promotion/demotion) and a rebuild that {e moves
   a region} (capacity growth). In both cases [refresh] re-syncs every
   live cell from the slot table — a rare, linear sweep that buys the
   two-load resolution step.

   Starting context {e values} (which have no backing context object)
   get the same treatment: [resolve] packs the context into an entry
   region, memoised by physical equality in a small ring, so repeated
   resolutions against one activity's context skip the Context map
   entirely. Entry regions are re-synced with the rest of the arena.

   Regions abandoned by growth, demotion, or entry-ring eviction are
   simply left behind — the arena is a bump allocator with no
   compaction, which is what makes snapshots cheap blits. *)

type stats = {
  nodes : int;
  slots : int;
  table_cells : int;
  bindings : int;
  full_compiles : int;
  node_builds : int;
  patches : int;
  patched_nodes : int;
}

let entry_ring = 8

type t = {
  store : Store.t;
  tick : int ref;  (* the store's own clock cell: staleness polls inline *)
  mutable gen : int;  (* store tick the tables reflect *)
  slot_of : int Entity.Tbl.t;  (* entity -> slot *)
  mutable slot_ents : Entity.t array;  (* slot -> entity *)
  mutable slot_off : int array;  (* slot -> region offset, -1 = no node *)
  mutable n_slots : int;
  mutable arena : int array;
  mutable arena_top : int;  (* bump pointer *)
  mutable obj_off : int array;  (* object id -> region offset, -1 = none *)
  mutable entry_ctxs : Context.t array;  (* memoised entry contexts *)
  mutable entry_offs : int array;  (* their region offsets *)
  mutable entry_n : int;  (* filled ring prefix *)
  mutable entry_next : int;  (* round-robin eviction cursor *)
  mutable full_compiles : int;
  mutable node_builds : int;
  mutable patches : int;
  mutable patched_nodes : int;
}

let store t = t.store

(* ------------------------------------------------------------------ *)
(* Arena regions                                                       *)

(* [alloc_region t cap] carves a fresh region of [cap] stride-4 cells
   (all empty) and returns its offset; the header word before the offset
   holds the region's probe mask, which never changes afterwards. *)
let alloc_region t cap =
  let need = 1 + (4 * cap) in
  let len = Array.length t.arena in
  if t.arena_top + need > len then begin
    let grown = Array.make (max (2 * len) (t.arena_top + need)) (-1) in
    Array.blit t.arena 0 grown 0 t.arena_top;
    t.arena <- grown
  end;
  let off = t.arena_top + 1 in
  t.arena.(off - 1) <- (4 * cap) - 4;
  Array.fill t.arena off (4 * cap) (-1);
  t.arena_top <- t.arena_top + need;
  off

let slot_for t e =
  match Entity.Tbl.find t.slot_of e with
  | s -> s
  | exception Not_found ->
      let s = t.n_slots in
      let cap = Array.length t.slot_ents in
      if s >= cap then begin
        let ents = Array.make (2 * cap) Entity.undefined in
        let offs = Array.make (2 * cap) (-1) in
        Array.blit t.slot_ents 0 ents 0 cap;
        Array.blit t.slot_off 0 offs 0 cap;
        t.slot_ents <- ents;
        t.slot_off <- offs
      end;
      t.slot_ents.(s) <- e;
      t.slot_off.(s) <- -1;
      t.n_slots <- s + 1;
      Entity.Tbl.replace t.slot_of e s;
      s

let set_obj_off t e off =
  let id = Entity.id e in
  let cap = Array.length t.obj_off in
  if id >= cap then begin
    let grown = Array.make (max (2 * cap) (id + 1)) (-1) in
    Array.blit t.obj_off 0 grown 0 cap;
    t.obj_off <- grown
  end;
  t.obj_off.(id) <- off

(* Give a context object a (minimal, empty) region if it has none. *)
let node_for t e =
  let s = slot_for t e in
  let off = t.slot_off.(s) in
  if off >= 0 then off
  else begin
    let off = alloc_region t 4 in
    t.slot_off.(s) <- off;
    set_obj_off t e off;
    off
  end

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

(* Fill the region at [off] from a context. The region's capacity (and
   so its mask) is fixed; callers guarantee load factor <= 1/2, so
   probes always terminate on an empty cell. Requires the regions of
   every context-object target to be allocated already, so the cached
   links are exact (compile and refresh run an allocation pass first, or
   re-sync afterwards). *)
let build_into t off ctx =
  let arena = t.arena in
  let mask4 = arena.(off - 1) in
  Array.fill arena off (mask4 + 4) (-1);
  Context.iter
    (fun a e ->
      let s = slot_for t e in
      (* slot_for can grow nothing in the arena, so [arena] stays valid *)
      let coff = t.slot_off.(s) in
      let rec place i =
        if arena.(off + i) = -1 then begin
          arena.(off + i) <- Name.atom_id a;
          arena.(off + i + 1) <- s;
          arena.(off + i + 2) <- coff;
          arena.(off + i + 3) <- (if coff < 0 then 0 else arena.(coff - 1))
        end
        else place ((i + 4) land mask4)
      in
      place ((Name.atom_id a lsl 2) land mask4))
    ctx;
  t.node_builds <- t.node_builds + 1

(* Rebuild the region of entity [e] (slot [s]) from [ctx]: in place when
   the table still fits, into a fresh region otherwise. Returns whether
   the region moved (parents' cached links are then stale). *)
let rebuild_node t e s ctx =
  let needed = next_pow2 (2 * Context.cardinal ctx) 4 in
  let off = t.slot_off.(s) in
  if off >= 0 && t.arena.(off - 1) >= (4 * needed) - 4 then begin
    build_into t off ctx;
    false
  end
  else begin
    let off' = alloc_region t needed in
    t.slot_off.(s) <- off';
    set_obj_off t e off';
    build_into t off' ctx;
    true
  end

(* Re-point every live cell's cached link and mask at its slot's current
   region — the repair pass after promotions/demotions or region moves
   invalidate cells in parents that were not themselves touched. Entry
   regions are swept too; abandoned regions are not reachable from any
   slot or entry and are skipped. *)
let resync_region t off =
  let arena = t.arena in
  let mask4 = arena.(off - 1) in
  let i = ref 0 in
  while !i <= mask4 do
    if arena.(off + !i) >= 0 then begin
      let coff = t.slot_off.(arena.(off + !i + 1)) in
      arena.(off + !i + 2) <- coff;
      arena.(off + !i + 3) <- (if coff < 0 then 0 else arena.(coff - 1))
    end;
    i := !i + 4
  done

let resync_links t =
  for s = 0 to t.n_slots - 1 do
    if t.slot_off.(s) >= 0 then resync_region t t.slot_off.(s)
  done;
  for k = 0 to t.entry_n - 1 do
    resync_region t t.entry_offs.(k)
  done

(* Allocation pass over changed entities: give every (possibly new)
   context object a region and clear the offset of every demoted one,
   returning whether any {e pre-existing} slot flipped context-object-
   hood — exactly the case where some cell's cached links may now be
   stale. (A brand-new entity has no slot until a parent's rebuild
   references it, so its links are created correct.) *)
let allocate_changed t touched =
  List.fold_left
    (fun flipped e ->
      match Store.context_of t.store e with
      | Some _ -> (
          match Entity.Tbl.find_opt t.slot_of e with
          | Some s when t.slot_off.(s) >= 0 -> flipped
          | Some _ ->
              ignore (node_for t e);
              true
          | None ->
              ignore (node_for t e);
              flipped)
      | None -> (
          match Entity.Tbl.find_opt t.slot_of e with
          | Some s when t.slot_off.(s) >= 0 ->
              (* The abandoned region stays in the arena; a later
                 re-promotion allocates a fresh one. *)
              t.slot_off.(s) <- -1;
              set_obj_off t e (-1);
              true
          | Some _ | None -> flipped))
    false touched

(* Rebuild the tables of the changed context objects, reporting whether
   any region moved. *)
let rebuild_changed t touched =
  List.fold_left
    (fun moved e ->
      t.patched_nodes <- t.patched_nodes + 1;
      match Store.context_of t.store e with
      | Some ctx ->
          let s = Entity.Tbl.find t.slot_of e in
          rebuild_node t e s ctx || moved
      | None -> moved)
    false touched

let refresh_slow t =
  let touched = Store.touched_since t.store t.gen in
  t.gen <- Store.tick t.store;
  match touched with
  | [] -> ()
  | _ ->
      t.patches <- t.patches + 1;
      let flipped = allocate_changed t touched in
      let moved = rebuild_changed t touched in
      if flipped || moved then resync_links t

let refresh t = if !(t.tick) <> t.gen then refresh_slow t

let compile store =
  let t =
    {
      store;
      tick = Store.tick_cell store;
      gen = Store.tick store;
      slot_of = Entity.Tbl.create 256;
      slot_ents = Array.make 256 Entity.undefined;
      slot_off = Array.make 256 (-1);
      n_slots = 0;
      arena = Array.make 1024 (-1);
      arena_top = 0;
      obj_off = Array.make 256 (-1);
      entry_ctxs = Array.make entry_ring Context.empty;
      entry_offs = Array.make entry_ring (-1);
      entry_n = 0;
      entry_next = 0;
      full_compiles = 1;
      node_builds = 0;
      patches = 0;
      patched_nodes = 0;
    }
  in
  let ctxobjs = Store.context_objects store in
  List.iter
    (fun e ->
      match Store.context_of store e with
      | Some ctx ->
          let s = slot_for t e in
          ignore (rebuild_node t e s ctx)
      | None -> ())
    ctxobjs;
  (* regions were built in registration order; one sweep makes every
     cached link exact regardless of that order *)
  resync_links t;
  t

(* A snapshot owns copies of every mutable structure (arena included —
   plain int blits), because workers lazily pack entry regions for the
   context values they encounter: sibling domains must never bump a
   shared arena. The price is O(world) per worker, the same as a cache
   shard's copy. *)
let snapshot t =
  refresh t;
  {
    t with
    slot_of = Entity.Tbl.copy t.slot_of;
    slot_ents = Array.copy t.slot_ents;
    slot_off = Array.copy t.slot_off;
    arena = Array.copy t.arena;
    obj_off = Array.copy t.obj_off;
    entry_ctxs = Array.copy t.entry_ctxs;
    entry_offs = Array.copy t.entry_offs;
    full_compiles = 0;
    node_builds = 0;
    patches = 0;
    patched_nodes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)

(* The hot loop: probe fused with the step, the child's region offset
   and probe mask read from the matched cell itself. A single top-level
   tail-recursive function — every argument lives in a register, no
   closure is allocated, and the self tail call compiles to a jump. The
   cell's four fields load in parallel (their addresses share a base),
   so the dependent chain from one step to the next is a single L1
   load. *)
let rec walk slot_ents arena off i mask4 a atoms =
  let k = Array.unsafe_get arena (off + i) in
  if k = a then
    match atoms with
    | [] -> Array.unsafe_get slot_ents (Array.unsafe_get arena (off + i + 1))
    | a' :: rest ->
        let off' = Array.unsafe_get arena (off + i + 2) in
        if off' < 0 then Entity.undefined
        else
          let m' = Array.unsafe_get arena (off + i + 3) in
          let a' = Name.atom_id a' in
          walk slot_ents arena off' ((a' lsl 2) land m') m' a' rest
  else if k < 0 then Entity.undefined
  else walk slot_ents arena off ((i + 4) land mask4) mask4 a atoms

let node_of t e =
  match e with
  | Entity.Object id when id < Array.length t.obj_off ->
      Array.unsafe_get t.obj_off id
  | _ -> -1

let resolve_in t o name =
  refresh t;
  let off = node_of t o in
  if off < 0 then Entity.undefined
  else
    match Name.atoms name with
    | [] -> assert false
    | a :: rest ->
        let mask4 = t.arena.(off - 1) in
        let a = Name.atom_id a in
        walk t.slot_ents t.arena off ((a lsl 2) land mask4) mask4 a rest

let rec entry_find t ctx k =
  if k >= t.entry_n then -1
  else if t.entry_ctxs.(k) == ctx then t.entry_offs.(k)
  else entry_find t ctx (k + 1)

(* The packed entry region for a starting context value, memoised by
   physical equality: context values are immutable, so a hit can never
   be stale (the region's cached links are kept fresh by resync like
   any node's). Misses pack the context and evict round-robin. *)
let entry_table t ctx =
  let off = entry_find t ctx 0 in
  if off >= 0 then off
  else begin
    let cap = next_pow2 (2 * Context.cardinal ctx) 4 in
    let off = alloc_region t cap in
    build_into t off ctx;
    let k =
      if t.entry_n < entry_ring then begin
        let k = t.entry_n in
        t.entry_n <- k + 1;
        k
      end
      else begin
        let k = t.entry_next in
        t.entry_next <- (k + 1) mod entry_ring;
        k
      end
    in
    t.entry_ctxs.(k) <- ctx;
    t.entry_offs.(k) <- off;
    off
  end

(* Resolution relative to a context value: every atom, including the
   first, through packed tables — the first via the memoised entry
   region of the value. *)
let resolve t ctx name =
  refresh t;
  match Name.atoms name with
  | [] -> assert false
  | a :: rest ->
      let off =
        if t.entry_n > 0 && Array.unsafe_get t.entry_ctxs 0 == ctx then
          Array.unsafe_get t.entry_offs 0
        else entry_table t ctx
      in
      let mask4 = t.arena.(off - 1) in
      let a = Name.atom_id a in
      walk t.slot_ents t.arena off ((a lsl 2) land mask4) mask4 a rest

(* One non-fused probe, for the trace path: the base cell index of atom
   [a] in the region at [off], or -1 when unbound there. *)
let probe arena off a =
  let mask4 = arena.(off - 1) in
  let rec go i =
    let k = arena.(off + i) in
    if k = a then i else if k < 0 then -1 else go ((i + 4) land mask4)
  in
  go ((a lsl 2) land mask4)

(* The trace mirror of [Resolver.resolve_trace_into]: same steps, same
   buffer, so trace consumers (Predict) can run over compiled form and
   produce identical evidence. *)
let resolve_trace_into buf t ctx name =
  refresh t;
  Resolver.buffer_clear buf;
  let arena = t.arena in
  let rec go at off atoms =
    match atoms with
    | [] -> assert false
    | [ a ] ->
        let i = probe arena off (Name.atom_id a) in
        let e =
          if i < 0 then Entity.undefined
          else t.slot_ents.(arena.(off + i + 1))
        in
        Resolver.buffer_push buf { Resolver.at; atom = a; target = e };
        e
    | a :: rest ->
        let i = probe arena off (Name.atom_id a) in
        let e =
          if i < 0 then Entity.undefined
          else t.slot_ents.(arena.(off + i + 1))
        in
        Resolver.buffer_push buf { Resolver.at; atom = a; target = e };
        if i < 0 then Entity.undefined
        else
          let off' = arena.(off + i + 2) in
          if off' < 0 then Entity.undefined else go e off' rest
  in
  let first atoms =
    match atoms with
    | [] -> assert false
    | [ a ] ->
        let e = Context.lookup ctx a in
        Resolver.buffer_push buf
          { Resolver.at = Entity.undefined; atom = a; target = e };
        e
    | a :: rest ->
        let e = Context.lookup ctx a in
        Resolver.buffer_push buf
          { Resolver.at = Entity.undefined; atom = a; target = e };
        let off = node_of t e in
        if off < 0 then Entity.undefined else go e off rest
  in
  first (Name.atoms name)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

let stats t =
  (* Abandoned regions (growth, demotion, entry eviction) still occupy
     arena space; count only regions a slot currently owns. *)
  let live = ref 0 and table_cells = ref 0 and bindings = ref 0 in
  for s = 0 to t.n_slots - 1 do
    let off = t.slot_off.(s) in
    if off >= 0 then begin
      incr live;
      let mask4 = t.arena.(off - 1) in
      table_cells := !table_cells + ((mask4 + 4) / 4);
      let i = ref 0 in
      while !i <= mask4 do
        if t.arena.(off + !i) >= 0 then incr bindings;
        i := !i + 4
      done
    end
  done;
  {
    nodes = !live;
    slots = t.n_slots;
    table_cells = !table_cells;
    bindings = !bindings;
    full_compiles = t.full_compiles;
    node_builds = t.node_builds;
    patches = t.patches;
    patched_nodes = t.patched_nodes;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d slots=%d cells=%d bindings=%d builds=%d patches=%d \
     patched_nodes=%d"
    s.nodes s.slots s.table_cells s.bindings s.node_builds s.patches
    s.patched_nodes

(** The global state σ : E → S.

    A store allocates entities and records their states. An object whose
    state is a context is a {e context object} (e.g. a file directory); an
    object whose state is data is a plain object (e.g. a file). The store is
    the single mutable structure of the core model; resolving a compound
    name reads the states of the context objects along the resolution path
    (paper, section 2). *)

type obj_state =
  | Context of Context.t  (** the object is a context object *)
  | Data of string  (** an uninterpreted payload, e.g. file contents *)

type t

val create : unit -> t

val create_object : ?label:string -> ?state:obj_state -> t -> Entity.t
(** Allocates a fresh object. Default state is [Data ""]. The optional
    [label] is purely diagnostic. *)

val create_context_object : ?label:string -> ?ctx:Context.t -> t -> Entity.t
(** Allocates a fresh context object (default: the empty context). *)

val create_activity : ?label:string -> t -> Entity.t

val exists : t -> Entity.t -> bool

val obj_state : t -> Entity.t -> obj_state option
(** [None] for activities, the undefined entity, and unknown entities. *)

val set_obj_state : t -> Entity.t -> obj_state -> unit
(** @raise Invalid_argument if the entity is not an object of this store. *)

val context_of : t -> Entity.t -> Context.t option
(** The state of a context object; [None] for anything else. *)

val is_context_object : t -> Entity.t -> bool

val data_of : t -> Entity.t -> string option

val set_context : t -> Entity.t -> Context.t -> unit
(** @raise Invalid_argument as {!set_obj_state}. *)

val bind : t -> dir:Entity.t -> Name.atom -> Entity.t -> unit
(** Adds a binding inside the context object [dir].
    @raise Invalid_argument if [dir] is not a context object. *)

val unbind : t -> dir:Entity.t -> Name.atom -> unit
(** @raise Invalid_argument if [dir] is not a context object. *)

val lookup : t -> dir:Entity.t -> Name.atom -> Entity.t
(** [Entity.undefined] when [dir] is not a context object or the atom is
    unbound — matching the paper's totalised semantics. *)

val label : t -> Entity.t -> string option
val set_label : t -> Entity.t -> string -> unit

val pp_entity : t -> Format.formatter -> Entity.t -> unit
(** Prints the label when one is set, the raw id otherwise. *)

val activities : t -> Entity.t list
(** In allocation order. *)

val objects : t -> Entity.t list
(** In allocation order. *)

val context_objects : t -> Entity.t list
val cardinal : t -> int

val version : t -> int
(** A counter bumped by every object-state mutation ({!set_obj_state},
    {!bind}, {!unbind}, {!set_context}, {!restore}) and by entity
    allocation. If the version is unchanged, every past resolution still
    holds. For finer-grained dependency tracking use {!generation}. *)

val tick : t -> int
(** Alias of {!version}: the monotonic global mutation clock. *)

val tick_cell : t -> int ref
(** The clock itself. Resolution engines hold the cell and compare
    [!(cell)] against their compiled generation on every resolve; the
    cell lets that staleness poll inline to two loads instead of a
    cross-module call. Holders must treat the cell as read-only. *)

val generation : t -> Entity.t -> int
(** The global tick at which this entity's state last changed (object
    allocation counts as a change), or [0] if it never has. A resolution
    that read only entities whose generations are unchanged is still
    valid — the invariant dependency-tracked caches rely on. *)

val touched_since : t -> int -> Entity.t list
(** [touched_since t since] lists the entities whose state changed after
    global tick [since] (each entity once, most recent changes last).
    Backed by a bounded journal of recent changes: the journal grows to
    8192 entries, then is truncated to its 2048 newest, so it always
    covers at least the last 2048 change ticks. Asking about a tick at
    or below the truncation floor falls back to a scan of the
    generation table — still complete (every touched entity is listed,
    never any untouched one), but unordered and O(entities in the
    store). Incremental consumers ({!Compiled}) only rely on
    completeness, so overflow costs time, not correctness. *)

val read_only : t -> (unit -> 'a) -> 'a
(** [read_only t f] runs [f] with the store frozen: any mutation
    ({!bind}, {!set_obj_state}, {!set_label}, entity allocation,
    {!restore}) raises [Invalid_argument] until [f] returns. This is the
    write barrier of the parallel sweeps: {!Pool} batches freeze every
    store their tasks read, so a task (or the coordinating domain) that
    tries to mutate shared state mid-sweep fails loudly instead of
    racing. Sections nest; the barrier is always enforced. *)

val is_read_only : t -> bool
(** True inside a {!read_only} section. *)

val snapshot : t -> (Entity.t * obj_state) list
(** The states of all objects, for later {!restore}. *)

val restore : t -> (Entity.t * obj_state) list -> unit
(** Restores object states saved by {!snapshot}. Entities allocated after
    the snapshot keep their current state. *)

val pp : Format.formatter -> t -> unit
(** A diagnostic dump of the whole store. *)

(** Contexts: functions from names to entities.

    A context is a total function [N → E]; we represent it by a finite map,
    every unmapped atom being sent to the undefined entity ⊥ (paper,
    section 2). Contexts are immutable values; mutable context {e objects}
    live in a {!Store}. *)

type t

val empty : t

val of_bindings : (Name.atom * Entity.t) list -> t
(** Later bindings for the same atom override earlier ones. *)

val lookup : t -> Name.atom -> Entity.t
(** Total: unmapped atoms resolve to {!Entity.undefined}. *)

val mem : t -> Name.atom -> bool
(** [mem c a] is true iff [a] is bound to a {e defined} entity. *)

val bind : t -> Name.atom -> Entity.t -> t
(** [bind c a e] maps [a] to [e]. Binding to {!Entity.undefined} is the
    same as {!unbind}. *)

val unbind : t -> Name.atom -> t
val bindings : t -> (Name.atom * Entity.t) list
(** In increasing atom order; only defined bindings are listed. *)

val cardinal : t -> int
val is_empty : t -> bool

val union : prefer:[ `Left | `Right ] -> t -> t -> t
(** Merge two contexts; [prefer] selects the winner on atoms bound in
    both. Used by union-directory / per-process-namespace schemes. *)

val restrict : t -> Name.atom list -> t
(** Keep only the listed atoms. *)

val map : (Entity.t -> Entity.t) -> t -> t

val agree_on : t -> t -> Name.atom -> bool
(** [agree_on c1 c2 a] is true iff both contexts send [a] to the same
    entity (possibly ⊥). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val fold : (Name.atom -> Entity.t -> 'a -> 'a) -> t -> 'a -> 'a
(** In increasing atom (string) order, like {!bindings}. *)

val iter : (Name.atom -> Entity.t -> unit) -> t -> unit
(** In increasing atom (string) order, like {!bindings}. *)

val exists : (Name.atom -> Entity.t -> bool) -> t -> bool
(** [exists p c] is true iff some defined binding satisfies [p].
    Short-circuits on the first hit. *)

(** Serialisation of stores.

    A textual, line-oriented, versioned format for persisting and
    exchanging naming worlds — useful for dumping a scheme's state from
    the CLI and for moving worlds between runs. Strings (labels, atoms,
    file data) are escaped with OCaml lexical conventions, so arbitrary
    content round-trips.

    Entity identifiers are preserved: a store deserialised from a dump
    uses the same [a<i>]/[o<i>] ids, so names, traces and replica tables
    recorded against the original remain meaningful. *)

val to_string : Store.t -> string

val to_string_many : ?jobs:int -> Store.t list -> string list
(** Serialise several stores, in list order. With [jobs > 1] the stores
    are serialised in parallel on the shared {!Pool} (each store frozen
    via {!Store.read_only} while its task reads it); output is identical
    to [List.map to_string]. *)

val encode_to_channel : Store.t -> out_channel -> unit
(** Streams the dump to a channel in bounded chunks (one internal
    buffer, flushed every ~64 KiB): the bytes written are exactly
    [to_string store], but a million-entity world is encoded without
    ever materialising the multi-megabyte dump string. *)

exception Parse_error of string
(** Carries a line number and message. *)

type error = { line : int; message : string }
(** A parse failure with its position: [line] is 1-based; line 0 means
    the failure is not attributable to a single line (e.g. an entity id
    missing from the whole dump). *)

val of_string_result : string -> (Store.t, error) result
(** Total decoder: never raises, whatever the input — random bytes,
    truncated dumps, or corrupted valid dumps all return [Error] with
    the position of the first problem. *)

val of_string : string -> Store.t
(** [of_string_result] with the error rendered into an exception.
    @raise Parse_error on malformed input, unknown version, or dangling
    entity references. *)

val decode_from_channel : in_channel -> (Store.t, error) result
(** Total streaming decoder: reads the channel line by line in one
    constant-resident pass, never materialising the dump text. Accepts
    the same line language as {!of_string_result} and reports the same
    errors at the same positions, with one extra requirement: entity
    lines must arrive in dense id order (0, 1, 2, …) — which is exactly
    what {!to_string} and {!encode_to_channel} emit — so each entity is
    created the moment its line is read. Labels and binds may reference
    entities not yet created; they are applied at end of input. *)

val roundtrip_equal : Store.t -> Store.t -> bool
(** Structural equality of two stores: same entities in the same order,
    same labels, same object states. (Not exposed by {!Store} itself
    because ordinary code should never need it.) *)

type step = { at : Entity.t; atom : Name.atom; target : Entity.t }
type trace = step list

(* A reusable trace buffer: callers that resolve many names (coherence
   sweeps, the static analyzers) push steps into one growable array
   instead of consing a fresh list per resolution. *)
type buffer = { mutable steps : step array; mutable len : int }

let dummy_step =
  { at = Entity.undefined; atom = Name.root_atom; target = Entity.undefined }

let create_buffer () = { steps = Array.make 16 dummy_step; len = 0 }
let buffer_clear b = b.len <- 0
let buffer_length b = b.len

let buffer_push b s =
  let cap = Array.length b.steps in
  if b.len >= cap then begin
    let bigger = Array.make (2 * cap) dummy_step in
    Array.blit b.steps 0 bigger 0 cap;
    b.steps <- bigger
  end;
  b.steps.(b.len) <- s;
  b.len <- b.len + 1

let buffer_trace b = Array.to_list (Array.sub b.steps 0 b.len)

(* The success path allocates nothing: it walks the atom list, looking
   each atom up in the current context and stepping through the store. *)
let resolve store ctx name =
  let rec go ctx atoms =
    match atoms with
    | [] -> assert false
    | [ a ] -> Context.lookup ctx a
    | a :: rest -> (
        let e = Context.lookup ctx a in
        match Store.context_of store e with
        | Some next_ctx -> go next_ctx rest
        | None -> Entity.undefined)
  in
  go ctx (Name.atoms name)

let resolve_trace_into buf store ctx name =
  buffer_clear buf;
  let rec go at ctx atoms =
    match atoms with
    | [] -> assert false
    | [ a ] ->
        let e = Context.lookup ctx a in
        buffer_push buf { at; atom = a; target = e };
        e
    | a :: rest -> (
        let e = Context.lookup ctx a in
        buffer_push buf { at; atom = a; target = e };
        match Store.context_of store e with
        | Some next_ctx -> go e next_ctx rest
        | None -> Entity.undefined)
  in
  go Entity.undefined ctx (Name.atoms name)

let resolve_trace store ctx name =
  let buf = create_buffer () in
  let e = resolve_trace_into buf store ctx name in
  (e, buffer_trace buf)

let resolve_in store o name =
  match Store.context_of store o with
  | Some c -> resolve store c name
  | None -> Entity.undefined

(* Like [resolve_in], also returning every entity whose state the walk
   consulted (the starting context object, each intermediate entity we
   asked for a context — including the one that failed to be a context on
   the failure path). The result is a function of exactly these entities'
   states: if none of their generations change, the result stands. The
   final entity of a successful walk is looked up but not consulted, so
   it is not a dependency. *)
let resolve_deps store o name =
  (* Cyclic walks (think ".." bindings: /a/../a/..) consult the same
     entity more than once; each is listed once, at its first visit, so
     cache entries stay minimal and generation checks are not repeated. *)
  let add e rev_deps =
    if List.exists (Entity.equal e) rev_deps then rev_deps else e :: rev_deps
  in
  let rec go ctx atoms rev_deps =
    match atoms with
    | [] -> assert false
    | [ a ] -> (Context.lookup ctx a, List.rev rev_deps)
    | a :: rest -> (
        let e' = Context.lookup ctx a in
        match Store.context_of store e' with
        | Some next_ctx -> go next_ctx rest (add e' rev_deps)
        | None -> (Entity.undefined, List.rev (add e' rev_deps)))
  in
  match Store.context_of store o with
  | Some c -> go c (Name.atoms name) [ o ]
  | None -> (Entity.undefined, [ o ])

let resolve_str store ctx s = resolve store ctx (Name.of_string s)

let deref store ctx name ~prefix =
  let atoms = Name.atoms name in
  let len = List.length atoms in
  if prefix < 1 || prefix > len then
    invalid_arg
      (Printf.sprintf "Resolver.deref: prefix %d out of range [1;%d]" prefix
         len);
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | a :: rest -> a :: take (k - 1) rest
  in
  resolve store ctx (Name.of_atoms (take prefix atoms))

let pp_trace store ppf trace =
  let pp_step ppf { at; atom; target } =
    if Entity.is_undefined at then
      Format.fprintf ppf "%a → %a" Name.pp_atom atom (Store.pp_entity store)
        target
    else
      Format.fprintf ppf "%a.%a → %a" (Store.pp_entity store) at Name.pp_atom
        atom (Store.pp_entity store) target
  in
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_step)
    trace

type step = { at : Entity.t; atom : Name.atom; target : Entity.t }
type trace = step list

let resolve_trace store ctx name =
  let rec go at ctx atoms rev_trace =
    match atoms with
    | [] -> assert false
    | [ a ] ->
        let e = Context.lookup ctx a in
        (e, List.rev ({ at; atom = a; target = e } :: rev_trace))
    | a :: rest ->
        let e = Context.lookup ctx a in
        let rev_trace = { at; atom = a; target = e } :: rev_trace in
        (match Store.context_of store e with
        | Some next_ctx -> go e next_ctx rest rev_trace
        | None -> (Entity.undefined, List.rev rev_trace))
  in
  go Entity.undefined ctx (Name.atoms name) []

let resolve store ctx name = fst (resolve_trace store ctx name)

let resolve_in store o name =
  match Store.context_of store o with
  | Some c -> resolve store c name
  | None -> Entity.undefined

let resolve_str store ctx s = resolve store ctx (Name.of_string s)

let deref store ctx name ~prefix =
  let atoms = Name.atoms name in
  let len = List.length atoms in
  if prefix < 1 || prefix > len then
    invalid_arg
      (Printf.sprintf "Resolver.deref: prefix %d out of range [1;%d]" prefix
         len);
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | a :: rest -> a :: take (k - 1) rest
  in
  resolve store ctx (Name.of_atoms (take prefix atoms))

let pp_trace store ppf trace =
  let pp_step ppf { at; atom; target } =
    if Entity.is_undefined at then
      Format.fprintf ppf "%a → %a" Name.pp_atom atom (Store.pp_entity store)
        target
    else
      Format.fprintf ppf "%a.%a → %a" (Store.pp_entity store) at Name.pp_atom
        atom (Store.pp_entity store) target
  in
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_step)
    trace

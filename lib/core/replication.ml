type t = {
  group_of : int Entity.Tbl.t;
  mutable groups : Entity.t list array;
}

let create () = { group_of = Entity.Tbl.create 16; groups = [||] }

let declare t members =
  if List.length members < 2 then
    invalid_arg "Replication.declare: a replica group needs >= 2 members";
  List.iter
    (fun e ->
      if not (Entity.is_object e) then
        invalid_arg "Replication.declare: replicas must be objects";
      if Entity.Tbl.mem t.group_of e then
        invalid_arg
          (Printf.sprintf "Replication.declare: %s already replicated"
             (Entity.to_string e)))
    members;
  let gid = Array.length t.groups in
  t.groups <- Array.append t.groups [| members |];
  List.iter (fun e -> Entity.Tbl.replace t.group_of e gid) members

let group_of t e = Entity.Tbl.find_opt t.group_of e

let replicas_of t e =
  match group_of t e with None -> [ e ] | Some gid -> t.groups.(gid)

let same_replica t a b =
  Entity.equal a b
  || Entity.is_defined a && Entity.is_defined b
     &&
     match (group_of t a, group_of t b) with
     | Some ga, Some gb -> Int.equal ga gb
     | _ -> false

let groups t = Array.to_list t.groups

let states_consistent t store =
  List.for_all
    (fun members ->
      match members with
      | [] | [ _ ] -> true
      | first :: rest ->
          let s0 = Store.obj_state store first in
          List.for_all
            (fun e ->
              match (s0, Store.obj_state store e) with
              | Some (Store.Data d1), Some (Store.Data d2) -> String.equal d1 d2
              | Some (Store.Context c1), Some (Store.Context c2) ->
                  Context.equal c1 c2
              | None, None -> true
              | _ -> false)
            rest)
    (groups t)

let sync_from t store e =
  match group_of t e with
  | None -> ()
  | Some gid -> (
      match Store.obj_state store e with
      | None -> ()
      | Some state ->
          List.iter
            (fun replica ->
              if not (Entity.equal replica e) then
                Store.set_obj_state store replica state)
            t.groups.(gid))

let sync_all t store =
  Array.iter
    (fun members ->
      match members with
      | [] -> ()
      | first :: _ -> sync_from t store first)
    t.groups

let empty_equiv = Entity.equal

type t = Undefined | Activity of int | Object of int

let undefined = Undefined
let is_undefined = function Undefined -> true | Activity _ | Object _ -> false
let is_activity = function Activity _ -> true | Undefined | Object _ -> false
let is_object = function Object _ -> true | Undefined | Activity _ -> false
let is_defined e = not (is_undefined e)

let id = function
  | Undefined -> invalid_arg "Entity.id: undefined entity"
  | Activity i | Object i -> i

let tag = function Undefined -> 0 | Activity _ -> 1 | Object _ -> 2

let equal a b =
  match (a, b) with
  | Undefined, Undefined -> true
  | Activity i, Activity j | Object i, Object j -> Int.equal i j
  | (Undefined | Activity _ | Object _), _ -> false

let compare a b =
  match (a, b) with
  | Activity i, Activity j | Object i, Object j -> Int.compare i j
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | Undefined -> 0
  | Activity i -> (i * 2) + 1
  | Object i -> (i * 2) + 2

let to_string = function
  | Undefined -> "⊥"
  | Activity i -> Printf.sprintf "a%d" i
  | Object i -> Printf.sprintf "o%d" i

let pp ppf e = Format.pp_print_string ppf (to_string e)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Stdlib.Map.Make (Ord)
module Set = Stdlib.Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

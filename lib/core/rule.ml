type t = {
  label : string;
  select : Store.t -> Occurrence.t -> Context.t option;
}

let make ~label select = { label; select }
let label t = t.label
let select t store occ = t.select store occ

let resolve t store occ name =
  match select t store occ with
  | None -> Entity.undefined
  | Some ctx -> Resolver.resolve store ctx name

module Assignment = struct
  type nonrec t = Entity.t Entity.Tbl.t

  let create () = Entity.Tbl.create 16
  let set t e ctxobj = Entity.Tbl.replace t e ctxobj
  let remove t e = Entity.Tbl.remove t e
  let find t e = Entity.Tbl.find_opt t e

  let context t store e =
    match find t e with
    | None -> None
    | Some ctxobj -> Store.context_of store ctxobj

  let copy = Entity.Tbl.copy
  let entities t = Entity.Tbl.fold (fun e _ acc -> e :: acc) t []
end

let of_activity asg =
  make ~label:"R(activity)" (fun store occ ->
      Assignment.context asg store (Occurrence.subject occ))

let of_sender asg =
  make ~label:"R(sender)" (fun store occ ->
      match occ with
      | Occurrence.Received { sender; _ } -> Assignment.context asg store sender
      | Occurrence.Generated _ | Occurrence.Embedded _ -> None)

let of_receiver asg =
  make ~label:"R(receiver)" (fun store occ ->
      match occ with
      | Occurrence.Received { receiver; _ } ->
          Assignment.context asg store receiver
      | Occurrence.Generated _ | Occurrence.Embedded _ -> None)

let of_object asg =
  make ~label:"R(object)" (fun store occ ->
      match occ with
      | Occurrence.Embedded { source; _ } -> Assignment.context asg store source
      | Occurrence.Generated _ | Occurrence.Received _ -> None)

let of_receiver_sender ~prefer asg =
  let label =
    match prefer with
    | `Sender -> "R(receiver,sender)/sender-wins"
    | `Receiver -> "R(receiver,sender)/receiver-wins"
  in
  make ~label (fun store occ ->
      match occ with
      | Occurrence.Received { sender; receiver } -> (
          let cs = Assignment.context asg store sender in
          let cr = Assignment.context asg store receiver in
          match (cs, cr) with
          | None, c | c, None -> c
          | Some cs, Some cr -> (
              match prefer with
              | `Sender -> Some (Context.union ~prefer:`Right cr cs)
              | `Receiver -> Some (Context.union ~prefer:`Right cs cr)))
      | Occurrence.Generated _ | Occurrence.Embedded _ -> None)

let constant ~label ctx =
  make ~label (fun _store _occ -> Some ctx)

let in_context_object ~label ctxobj =
  make ~label (fun store _occ -> Store.context_of store ctxobj)

let dispatch ~generated ~received ~embedded =
  let lbl =
    Printf.sprintf "dispatch(gen=%s, recv=%s, emb=%s)" generated.label
      received.label embedded.label
  in
  make ~label:lbl (fun store occ ->
      match Occurrence.source occ with
      | Occurrence.Source_generated -> generated.select store occ
      | Occurrence.Source_received -> received.select store occ
      | Occurrence.Source_embedded -> embedded.select store occ)

let fallback r1 r2 =
  make
    ~label:(Printf.sprintf "%s?%s" r1.label r2.label)
    (fun store occ ->
      match r1.select store occ with
      | Some _ as res -> res
      | None -> r2.select store occ)

let pp ppf t = Format.pp_print_string ppf t.label

(** Replicated objects and replica equivalence.

    Some important objects in distributed systems (e.g. executable code for
    commands) are replicated: objects o1 … og with σ(o1) = … = σ(og) in
    every legal state. For such objects the paper weakens coherence: a name
    is {e weakly coherent} when it denotes replicas of the same replicated
    object in different activities (paper, section 5). *)

type t

val create : unit -> t

val declare : t -> Entity.t list -> unit
(** Declares the listed objects to be replicas of one replicated object.
    @raise Invalid_argument if any of them already belongs to a group, or
    the list has fewer than two elements. *)

val group_of : t -> Entity.t -> int option
(** The group index, or [None] for unreplicated entities. *)

val replicas_of : t -> Entity.t -> Entity.t list
(** All replicas in the same group (including the argument); the singleton
    list for unreplicated entities. *)

val same_replica : t -> Entity.t -> Entity.t -> bool
(** Equal entities, or members of the same replica group. This is the
    equivalence used by weak coherence. Always false when either side is
    the undefined entity, unless they are equal — and ⊥ never equals a
    defined entity. *)

val groups : t -> Entity.t list list

val states_consistent : t -> Store.t -> bool
(** Checks the paper's legal-state invariant: within every group all object
    states are equal. *)

val sync_from : t -> Store.t -> Entity.t -> unit
(** Copies the given replica's state to every member of its group —
    restores the legal-state invariant after an update to one replica.
    No-op for unreplicated entities. *)

val sync_all : t -> Store.t -> unit
(** {!sync_from} every group's first member — a crude anti-entropy pass
    that re-establishes the invariant everywhere. *)

val empty_equiv : Entity.t -> Entity.t -> bool
(** Plain entity equality — the equivalence for strong coherence. *)

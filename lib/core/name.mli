(** Names and compound names.

    In the model of Radia & Pachl, a name is an uninterpreted identifier and
    a {e compound name} is a non-empty sequence of names, resolved
    component-by-component through context objects (paper, section 2).

    We call a single name an {e atom}. Atoms are non-empty strings that do
    not contain ['/'], with one exception: the distinguished atom ["/"],
    which naming schemes conventionally bind to a root directory in each
    activity's context. Atoms ["."] and [".."] are ordinary atoms; schemes
    that want Unix-like behaviour bind them inside directory contexts.

    Atoms are {e interned}: each distinct atom string is mapped once to an
    integer symbol id in a process-global symbol table, so {!atom_equal}
    is integer equality and contexts can be keyed by id. {!atom_compare}
    (and therefore {!compare} and all Map/Set orderings) still orders
    atoms by their underlying string, so interning is observationally
    neutral. The symbol table grows monotonically and is not
    thread-safe. *)

type atom

type t = private atom list
(** A compound name: a non-empty sequence of atoms. *)

exception Invalid of string
(** Raised by the smart constructors on malformed input. *)

val atom : string -> atom
(** [atom s] validates [s] as an atom.
    @raise Invalid if [s] is empty or contains ['/'] (except [s = "/"]). *)

val atom_to_string : atom -> string

external atom_id : atom -> int = "%identity"
(** The interned symbol id: a small non-negative integer, distinct for
    distinct atom strings, stable for the lifetime of the process.
    (A compiler primitive so per-step uses inside resolution loops cost
    nothing even without cross-module inlining.) *)

val atom_hash : atom -> int
(** A hash consistent with {!atom_equal} (the symbol id itself). *)

val root_atom : atom
(** The distinguished atom ["/"]. *)

val self_atom : atom
(** The atom ["."]. *)

val parent_atom : atom
(** The atom [".."]. *)

val of_atoms : atom list -> t
(** @raise Invalid on the empty list. *)

val singleton : atom -> t

val of_strings : string list -> t
(** [of_strings l] validates every element. @raise Invalid as {!atom}. *)

val of_string : string -> t
(** [of_string s] parses a path-like syntax: ["/a/b"] becomes the compound
    name [\["/"; "a"; "b"\]] and ["a/b"] becomes [\["a"; "b"\]]. Repeated
    slashes are collapsed; a trailing slash is ignored. ["/"] alone parses
    to [\["/"\]].
    @raise Invalid on the empty string or empty components. *)

val to_string : t -> string
(** Inverse of {!of_string}: a leading root atom prints as a leading
    slash. *)

external atoms : t -> atom list = "%identity"
val length : t -> int
val head : t -> atom
val tail : t -> t option
(** [tail n] is [None] when [n] is a single atom. *)

val last : t -> atom
val append : t -> t -> t
val snoc : t -> atom -> t
val cons : atom -> t -> t
val prepend_root : t -> t
(** [prepend_root n] is ["/" :: n] unless [n] already starts with the root
    atom, in which case it is [n]. *)

val is_absolute : t -> bool
(** True when the first atom is {!root_atom}. *)

val is_prefix : prefix:t -> t -> bool
val drop_prefix : prefix:t -> t -> t option
(** [drop_prefix ~prefix n] is the remainder of [n] after [prefix], or
    [None] when [prefix] is not a proper prefix of [n] (equality yields
    [None]: the remainder would be empty). *)

val parent : t -> t option
(** All but the last atom; [None] for a single atom. *)

val relative_to : base:t -> t -> t
(** [relative_to ~base n] is a name that, resolved from the directory
    [base] denotes (in a tree with ordinary [".."] bindings), reaches what
    [n] denotes from [base]'s starting point: shared prefix stripped, one
    [".."] per remaining [base] component. Both names are lexically
    {!normalize}d first; if the normalised [n] equals the normalised
    [base], the result is ["."]. Purely lexical — meaningful only where
    [".."] behaves tree-like, the same caveat as {!normalize}.
    @raise Invalid with mixed absolute/relative arguments. *)

val normalize : t -> t
(** Lexically eliminates ["."] and [".."] atoms: [a/b/../c] becomes [a/c],
    [./a] becomes [a]. A [".."] at the head of an absolute name is dropped
    (the root is its own parent, as in Unix); a [".."] at the head of a
    relative name is kept. Note that lexical normalisation is {e not}
    semantically neutral in a general naming graph; schemes that resolve
    [".."] through real directory bindings must not use it. *)

val equal : t -> t -> bool
(** Integer comparison per atom — no string hashing. *)

val compare : t -> t -> int
(** Lexicographic over {!atom_compare}: the same ordering as before
    interning (atoms ordered by their strings). *)

val hash : t -> int
(** A hash consistent with {!equal}, computed from symbol ids. *)

val atom_equal : atom -> atom -> bool
val atom_compare : atom -> atom -> int
(** Orders atoms by their underlying string. *)

val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> atom -> unit

module Atom_map : Stdlib.Map.S with type key = atom
(** Ordered by {!atom_compare} (string order). *)

module Atom_id_map : Stdlib.Map.S with type key = atom
(** Ordered by symbol id: constant-time integer comparisons, for hot
    lookup structures. Iteration order is interning order, {e not} string
    order — callers that expose an ordering must sort with
    {!atom_compare}. *)

module Map : Stdlib.Map.S with type key = t
module Set : Stdlib.Set.S with type elt = t

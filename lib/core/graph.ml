type edge = { src : Entity.t; label : Name.atom; dst : Entity.t }

let out_edges store e =
  match Store.context_of store e with
  | None -> []
  | Some c ->
      List.filter
        (fun (_a, dst) -> Entity.is_defined dst)
        (Context.bindings c)

let out_degree store e = List.length (out_edges store e)

let edges store =
  List.concat_map
    (fun src ->
      List.map (fun (label, dst) -> { src; label; dst }) (out_edges store src))
    (Store.context_objects store)

let reachable store ~from =
  let rec go visited = function
    | [] -> visited
    | e :: rest ->
        if Entity.Set.mem e visited then go visited rest
        else
          let visited = Entity.Set.add e visited in
          let succs = List.map snd (out_edges store e) in
          go visited (succs @ rest)
  in
  go Entity.Set.empty [ from ]

let reachable_from_context store ctx =
  let starts =
    List.filter_map
      (fun (_a, e) -> if Entity.is_defined e then Some e else None)
      (Context.bindings ctx)
  in
  List.fold_left
    (fun acc e -> Entity.Set.union acc (reachable store ~from:e))
    Entity.Set.empty starts

let has_cycle store =
  (* Iterative three-colour DFS over context objects. *)
  let module T = Entity.Tbl in
  let colour = T.create 64 in
  let get e = match T.find_opt colour e with None -> `White | Some c -> c in
  let cyclic = ref false in
  let rec visit e =
    match get e with
    | `Grey -> cyclic := true
    | `Black -> ()
    | `White ->
        T.replace colour e `Grey;
        List.iter (fun (_a, dst) -> if not !cyclic then visit dst)
          (out_edges store e);
        T.replace colour e `Black
  in
  List.iter
    (fun e -> if not !cyclic then visit e)
    (Store.context_objects store);
  !cyclic

let default_skip a =
  Name.atom_equal a Name.self_atom || Name.atom_equal a Name.parent_atom

let is_tree store ~root ~ignore =
  let visited = Entity.Tbl.create 64 in
  let ok = ref true in
  let rec visit e =
    List.iter
      (fun (a, dst) ->
        if not (ignore a) then
          if Entity.Tbl.mem visited dst then ok := false
          else begin
            Entity.Tbl.replace visited dst ();
            visit dst
          end)
      (out_edges store e)
  in
  Entity.Tbl.replace visited root ();
  visit root;
  !ok

let all_names store ctx ~max_depth ?(skip = default_skip) () =
  (* Breadth-first enumeration of resolvable names. *)
  let results = ref [] in
  let frontier = ref [] in
  (* Seed with length-1 names from the starting context value. *)
  Context.iter
    (fun a e ->
      if (not (skip a)) && Entity.is_defined e then
        frontier := (Name.singleton a, e) :: !frontier)
    ctx;
  let frontier = ref (List.rev !frontier) in
  let depth = ref 1 in
  while !frontier <> [] && !depth <= max_depth do
    results := List.rev_append !frontier !results;
    let next = ref [] in
    if !depth < max_depth then
      List.iter
        (fun (n, e) ->
          List.iter
            (fun (a, dst) ->
              if (not (skip a)) && Entity.is_defined dst then
                next := (Name.snoc n a, dst) :: !next)
            (out_edges store e))
        !frontier;
    frontier := List.rev !next;
    incr depth
  done;
  List.rev !results

let names_of store ctx ~target ~max_depth ?skip () =
  List.filter_map
    (fun (n, e) -> if Entity.equal e target then Some n else None)
    (all_names store ctx ~max_depth ?skip ())

let to_dot store =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph naming {\n";
  let node_name e = Entity.to_string e in
  List.iter
    (fun e ->
      let lbl =
        match Store.label store e with
        | Some l -> Printf.sprintf "%s\\n%s" l (Entity.to_string e)
        | None -> Entity.to_string e
      in
      let shape = if Store.is_context_object store e then "folder" else "box" in
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\", shape=%s];\n" (node_name e) lbl
           shape))
    (Store.objects store);
  List.iter
    (fun a ->
      let lbl =
        match Store.label store a with
        | Some l -> Printf.sprintf "%s\\n%s" l (Entity.to_string a)
        | None -> Entity.to_string a
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\", shape=ellipse];\n" (node_name a)
           lbl))
    (Store.activities store);
  List.iter
    (fun { src; label; dst } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" (node_name src)
           (node_name dst)
           (Name.atom_to_string label)))
    (edges store);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** A memoising resolver with store-version invalidation.

    Resolution walks the naming graph on every call; workloads that
    resolve the same names repeatedly (command lookup, library paths —
    exactly the replicated objects of section 5) benefit from a cache.
    Correctness matters more than hit rate: entries are keyed to
    {!Store.version}, so {e any} mutation of the store invalidates the
    whole cache — resolution through a cache is always equal to
    resolution without it (a property test holds us to this).

    The cache memoises {!Naming.Resolver.resolve_in} — resolution relative
    to a context {e object} — because context objects have stable
    identity. Resolution in a context {e value} has no usable cache key. *)

type t

val create : ?capacity:int -> Store.t -> t
(** [capacity] bounds the number of entries (default 4096); at capacity
    the cache clears (cheap, correctness-neutral). *)

val resolve_in : t -> Entity.t -> Name.t -> Entity.t
(** Same result as {!Resolver.resolve_in}, memoised. *)

type stats = { hits : int; misses : int; invalidations : int }

val stats : t -> stats
val clear : t -> unit

(** A memoising resolver with dependency-tracked invalidation.

    Resolution walks the naming graph on every call; workloads that
    resolve the same names repeatedly (command lookup, library paths —
    exactly the replicated objects of section 5) benefit from a cache.
    Correctness matters more than hit rate: every entry records the
    {!Store.generation} of each context object on its resolution path
    (see {!Resolver.resolve_deps}), and is served only while all of them
    are unchanged. A mutation invalidates exactly the entries whose path
    it touches — a [bind] in [/tmp] no longer evicts [/bin/cc] — so
    resolution through a cache is always equal to resolution without it
    (a property test holds us to this), and reconfiguration-heavy
    workloads keep their hit rate.

    The cache memoises {!Naming.Resolver.resolve_in} — resolution relative
    to a context {e object} — because context objects have stable
    identity. {!resolve} handles a context {e value} by performing the
    first step against the value and memoising the remainder. *)

type t

val create : ?capacity:int -> Store.t -> t
(** [capacity] bounds the number of entries (default 4096); at capacity
    a single arbitrary entry is evicted per insertion. *)

val resolve_in : t -> Entity.t -> Name.t -> Entity.t
(** Same result as {!Resolver.resolve_in}, memoised. *)

val resolve : t -> Context.t -> Name.t -> Entity.t
(** Same result as {!Resolver.resolve}: the first atom is looked up in
    the given context value (not cached — values have no identity), the
    remaining atoms via {!resolve_in} on the entity it denotes. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
      (** entries found stale (a dependency's generation moved) and
          re-resolved — counted per entry, not per store mutation *)
  evictions : int;  (** entries dropped by the capacity bound *)
  entries : int;  (** entries currently live *)
}

val stats : t -> stats
val clear : t -> unit

val copy : t -> t
(** An independent cache over the same store, seeded with the current
    entries and with zeroed counters. This is the per-domain shard of
    the parallel sweeps: entries key on per-entity generations that only
    mutate on the coordinating domain, so a worker may {e read} the
    copied entries freely but must never share one live cache with
    another domain. Entries added to the copy are not propagated back. *)

val absorb : t -> stats -> unit
(** [absorb t s] adds the counters of [s] into [t]'s — how a parallel
    batch merges its shards' statistics into the caller's cache on
    join ([entries] is not a counter and is ignored). *)

(** Coherence in naming: definitions and metrics.

    A name [n] is {e coherent} across a set of occurrences when it denotes
    the same defined entity under each of them (paper, section 4). {e Weak}
    coherence replaces entity equality with replica equivalence (section
    5). The {e degree} of coherence of a scheme is our quantification of
    the paper's qualitative claims: the fraction of probe names that are
    coherent across the given occurrences. *)

type verdict =
  | Coherent of Entity.t
      (** Every occurrence resolves the name to this defined entity. *)
  | Weakly_coherent of Entity.t list
      (** Occurrences resolve to distinct but replica-equivalent entities
          (one representative per occurrence, in occurrence order). Only
          produced when an equivalence is supplied. *)
  | Incoherent of (Occurrence.t * Entity.t) * (Occurrence.t * Entity.t)
      (** Two witnessing occurrences with conflicting resolutions (either
          two different defined entities, or defined vs ⊥). *)
  | Vacuous  (** The name is undefined under every occurrence. *)

val check :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t ->
  verdict
(** [check store rule occs n] resolves [n] under every occurrence and
    classifies the outcome. With [equiv], resolutions that are equivalent
    but unequal yield [Weakly_coherent]. Resolutions go through an
    {!Engine}, chosen by {!Engine.select}: an explicit [?engine] wins,
    then [NAMING_ENGINE], then [?cache] (wrapped as a cached engine),
    then the default — interpreted here, cached for the batch entry
    points below, which share one engine across every (occurrence,
    probe) pair. Every engine produces the same verdicts.
    @raise Invalid_argument on an empty occurrence list. *)

val is_coherent :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t ->
  bool
(** True on [Coherent _] and [Weakly_coherent _]. *)

type report = {
  probes : int;  (** number of probe names *)
  coherent : int;  (** strictly coherent *)
  weakly_coherent : int;  (** coherent only up to replica equivalence *)
  incoherent : int;
  vacuous : int;  (** undefined everywhere *)
}

val degree : report -> float
(** [(coherent + weakly_coherent) / (probes - vacuous)]; 1.0 when every
    probe is vacuous (coherence over an empty set of meaningful probes is
    trivially full). *)

val strict_degree : report -> float
(** [coherent / (probes - vacuous)]. *)

val measure :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  report
(** Every batch entry point takes [?jobs]: with [jobs > 1] the probes
    are swept in parallel on a {!Pool} of that many domains — the store
    frozen ({!Store.read_only}) for the duration, one {!Engine.shard}
    per worker (a {!Cache.copy} or {!Compiled.snapshot} seeded from the
    caller's engine), cached-shard counters merged back on join.
    Results are returned in probe order and are structurally equal to
    the sequential ones; [jobs = 1] (or omitting it) runs today's
    sequential path unchanged. *)

val classify :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  (Name.t * verdict) list
(** Per-probe detail, in probe order. *)

val coherent_names :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  Name.t list

val incoherent_names :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  Name.t list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit

(** Coherence in naming: definitions and metrics.

    A name [n] is {e coherent} across a set of occurrences when it denotes
    the same defined entity under each of them (paper, section 4). {e Weak}
    coherence replaces entity equality with replica equivalence (section
    5). The {e degree} of coherence of a scheme is our quantification of
    the paper's qualitative claims: the fraction of probe names that are
    coherent across the given occurrences. *)

type verdict =
  | Coherent of Entity.t
      (** Every occurrence resolves the name to this defined entity. *)
  | Weakly_coherent of Entity.t list
      (** Occurrences resolve to distinct but replica-equivalent entities
          (one representative per occurrence, in occurrence order). Only
          produced when an equivalence is supplied. *)
  | Incoherent of (Occurrence.t * Entity.t) * (Occurrence.t * Entity.t)
      (** Two witnessing occurrences with conflicting resolutions (either
          two different defined entities, or defined vs ⊥). *)
  | Vacuous  (** The name is undefined under every occurrence. *)

val check :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t ->
  verdict
(** [check store rule occs n] resolves [n] under every occurrence and
    classifies the outcome. With [equiv], resolutions that are equivalent
    but unequal yield [Weakly_coherent]. Resolutions go through an
    {!Engine}, chosen by {!Engine.select}: an explicit [?engine] wins,
    then [NAMING_ENGINE], then [?cache] (wrapped as a cached engine),
    then the default — interpreted here, cached for the batch entry
    points below, which share one engine across every (occurrence,
    probe) pair. Every engine produces the same verdicts.
    @raise Invalid_argument on an empty occurrence list. *)

val is_coherent :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t ->
  bool
(** True on [Coherent _] and [Weakly_coherent _]. *)

type report = {
  probes : int;  (** number of probe names *)
  coherent : int;  (** strictly coherent *)
  weakly_coherent : int;  (** coherent only up to replica equivalence *)
  incoherent : int;
  vacuous : int;  (** undefined everywhere *)
}

val degree : report -> float
(** [(coherent + weakly_coherent) / (probes - vacuous)]; 1.0 when every
    probe is vacuous (coherence over an empty set of meaningful probes is
    trivially full). *)

val strict_degree : report -> float
(** [coherent / (probes - vacuous)]. *)

val measure :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  report
(** Every batch entry point takes [?jobs]: with [jobs > 1] the probes
    are swept in parallel on a {!Pool} of that many domains — the store
    frozen ({!Store.read_only}) for the duration, one {!Engine.shard}
    per worker (a {!Cache.copy} or {!Compiled.snapshot} seeded from the
    caller's engine), cached-shard counters merged back on join.
    Results are returned in probe order and are structurally equal to
    the sequential ones; [jobs = 1] (or omitting it) runs today's
    sequential path unchanged. *)

val measure_seq :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t Seq.t ->
  report
(** {!measure} over a lazy probe sequence: probes are materialised one
    fixed-size chunk at a time (sequentially, or fanned over the pool
    chunk by chunk) and folded into the report immediately, so peak
    residency is one chunk — an exact sweep over 10^6 streamed probes
    never allocates an O(probes) verdict list. The report is identical
    to [measure] over the forced sequence, for every engine and every
    [jobs]. *)

val fold_verdicts :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  init:'a ->
  f:('a -> verdict -> 'a) ->
  Name.t Seq.t ->
  'a
(** The streaming fold underneath {!measure_seq}: verdicts are folded
    in probe order, chunk by chunk. *)

type estimate = {
  degree : float;  (** point estimate of {!degree} *)
  strict_degree : float;  (** point estimate of {!strict_degree} *)
  ci_low : float;  (** Wilson interval lower bound on [degree] *)
  ci_high : float;  (** Wilson interval upper bound on [degree] *)
  samples : int;  (** probes drawn (including vacuous ones) *)
}

type 'rng sampler = {
  split : 'rng -> 'rng;
      (** A child stream, deterministic from the parent's state; the
          parent advances (e.g. [Dsim.Rng.split]). *)
  draw : 'rng -> Name.t;  (** The next probe from a stream. *)
}
(** A seeded probe source. The rng type is abstract here so the core
    library stays independent of any particular generator; the harness
    instantiates it with [Dsim.Rng.t]. *)

val estimate :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  ?confidence:float ->
  ?epsilon:float ->
  ?max_samples:int ->
  rng:'rng ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  'rng sampler ->
  estimate
(** Sampling-based coherence estimation: draws probes from the sampler
    and classifies them exactly like {!measure} until the Wilson score
    interval at [confidence] (default 0.95) has half-width at most
    [epsilon] (default 0.01), or [max_samples] (default 100_000) probes
    have been drawn. [degree] is the observed success fraction over
    meaningful (non-vacuous) samples — the quantity exact [measure]
    computes exhaustively — and [\[ci_low, ci_high\]] covers the true
    degree with the requested confidence.

    Probes are drawn in fixed-size batches, each batch from a child
    stream obtained with [sampler.split]: the drawn sequence depends
    only on the rng state and the batch index, never on [jobs] or the
    engine, so estimates are byte-identical across jobs 1 vs 4 and
    across interpreted, cached and compiled engines. When every drawn
    probe is vacuous, [degree] is 1.0 (the {!degree} convention) and
    the interval stays [\[0, 1\]].
    @raise Invalid_argument when [confidence] is outside (0, 1),
    [epsilon] is not positive, or [max_samples < 1]. *)

val pp_estimate : Format.formatter -> estimate -> unit

val classify :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  (Name.t * verdict) list
(** Per-probe detail, in probe order. *)

val coherent_names :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  Name.t list

val incoherent_names :
  ?equiv:(Entity.t -> Entity.t -> bool) ->
  ?cache:Cache.t ->
  ?engine:Engine.t ->
  ?jobs:int ->
  Store.t ->
  Rule.t ->
  Occurrence.t list ->
  Name.t list ->
  Name.t list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit

(* Atoms are interned: every distinct atom string is assigned a small
   integer id in a global symbol table, so atom equality is integer
   equality and context lookup can be keyed by id instead of hashing
   strings. [atom_compare] still orders atoms by their string, so every
   ordering observable through the API (Name.compare, Context.bindings,
   Map/Set iteration) is unchanged by interning. *)

type atom = int

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

(* The global symbol table: id -> string and string -> id. Grows
   monotonically for the lifetime of the process; never shrinks.

   Domain-safety: interning (the only writer) holds [lock], so the
   string->id table is consulted and extended atomically. Reads of the
   frozen prefix ([string_of]) are lock-free: an id is published by the
   [Atomic.incr count] that follows the slot write, and the strings
   array is swapped (grow-by-copy) before any slot of the new region is
   written — so a reader that observed [id < count] finds the slot
   filled in whichever array version it then loads. *)
module Symtab = struct
  let lock = Mutex.create ()
  let ids : (string, int) Hashtbl.t = Hashtbl.create 1024
  let strings = Atomic.make (Array.make 1024 "")
  let count = Atomic.make 0

  let string_of id =
    if id < 0 || id >= Atomic.get count then
      invalid_arg (Printf.sprintf "Name: unknown atom id %d" id)
    else (Atomic.get strings).(id)

  let intern s =
    Mutex.lock lock;
    let id =
      match Hashtbl.find_opt ids s with
      | Some id -> id
      | None ->
          let id = Atomic.get count in
          let arr = Atomic.get strings in
          let cap = Array.length arr in
          let arr =
            if id >= cap then begin
              let bigger = Array.make (2 * cap) "" in
              Array.blit arr 0 bigger 0 cap;
              Atomic.set strings bigger;
              bigger
            end
            else arr
          in
          arr.(id) <- s;
          Atomic.incr count;
          Hashtbl.replace ids s id;
          id
    in
    Mutex.unlock lock;
    id
end

let atom s =
  if String.equal s "/" then Symtab.intern s
  else if String.equal s "" then invalid "empty atom"
  else if String.contains s '/' then invalid "atom %S contains '/'" s
  else Symtab.intern s

let atom_to_string = Symtab.string_of
external atom_id : atom -> int = "%identity"
let root_atom = atom "/"
let self_atom = atom "."
let parent_atom = atom ".."

type t = atom list

let of_atoms = function
  | [] -> invalid "empty compound name"
  | l -> l

let singleton a = [ a ]
let of_strings l = of_atoms (List.map atom l)

let of_string s =
  if String.equal s "" then invalid "empty name";
  let parts = String.split_on_char '/' s in
  let absolute = String.length s > 0 && Char.equal s.[0] '/' in
  let comps = List.filter (fun c -> not (String.equal c "")) parts in
  let comps = List.map atom comps in
  match (absolute, comps) with
  | true, [] -> [ root_atom ]
  | true, l -> root_atom :: l
  | false, [] -> invalid "name %S has no components" s
  | false, l -> l

let atom_equal : atom -> atom -> bool = Int.equal

let atom_compare a b =
  if Int.equal a b then 0
  else String.compare (atom_to_string a) (atom_to_string b)

let atom_hash (a : atom) = a

let to_string = function
  | [] -> assert false
  | [ a ] when atom_equal a root_atom -> "/"
  | a :: rest when atom_equal a root_atom ->
      "/" ^ String.concat "/" (List.map atom_to_string rest)
  | l -> String.concat "/" (List.map atom_to_string l)

external atoms : t -> atom list = "%identity"
let length = List.length

let head = function [] -> assert false | a :: _ -> a

let tail = function [] -> assert false | [ _ ] -> None | _ :: r -> Some r

let rec last = function
  | [] -> assert false
  | [ a ] -> a
  | _ :: r -> last r

let append a b = a @ b
let snoc n a = n @ [ a ]
let cons a n = a :: n

let is_absolute = function a :: _ -> atom_equal a root_atom | [] -> false

let prepend_root n = if is_absolute n then n else root_atom :: n

let rec is_prefix ~prefix n =
  match (prefix, n) with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: ps, a :: rest -> atom_equal p a && is_prefix ~prefix:ps rest

let drop_prefix ~prefix n =
  let rec go prefix n =
    match (prefix, n) with
    | [], [] -> None
    | [], rest -> Some rest
    | _ :: _, [] -> None
    | p :: ps, a :: rest -> if atom_equal p a then go ps rest else None
  in
  go prefix n

let parent n =
  match List.rev n with
  | [] -> assert false
  | [ _ ] -> None
  | _ :: rev_init -> Some (List.rev rev_init)

let normalize n =
  let absolute = is_absolute n in
  let comps = if absolute then List.tl n else n in
  let step acc a =
    if atom_equal a self_atom then acc
    else if atom_equal a parent_atom then
      match acc with
      | [] -> if absolute then [] else [ a ]
      | top :: rest -> if atom_equal top parent_atom then a :: acc else rest
    else a :: acc
  in
  let rev = List.fold_left step [] comps in
  let comps = List.rev rev in
  match (absolute, comps) with
  | true, l -> root_atom :: l
  | false, [] -> [ self_atom ]
  | false, l -> l

let relative_to ~base n =
  if is_absolute base <> is_absolute n then
    invalid "relative_to: mixed absolute and relative names";
  let strip l = if is_absolute l then List.tl l else l in
  let rec strip_common b m =
    match (b, m) with
    | a :: bs, c :: ms when atom_equal a c -> strip_common bs ms
    | _ -> (b, m)
  in
  let b, m = strip_common (strip (normalize base)) (strip (normalize n)) in
  let ups = List.map (fun _ -> parent_atom) b in
  match ups @ m with [] -> [ self_atom ] | l -> l

let equal a b = List.equal atom_equal a b
let compare a b = List.compare atom_compare a b

let hash n =
  List.fold_left (fun acc a -> (acc * 65599) + a) 0 n land max_int

let pp ppf n = Format.pp_print_string ppf (to_string n)
let pp_atom ppf a = Format.pp_print_string ppf (atom_to_string a)

module Atom_ord = struct
  type t = atom

  let compare = atom_compare
end

module Atom_map = Stdlib.Map.Make (Atom_ord)

(* Ordered by id, not by string: O(1) integer comparisons on the
   resolution hot path. Iteration order is interning order — callers that
   need the documented string order (Context.bindings and friends) sort
   with [atom_compare]. *)
module Atom_id_map = Stdlib.Map.Make (Int)

module Map = Stdlib.Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

type atom = string
type t = atom list

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let atom s =
  if String.equal s "/" then s
  else if String.equal s "" then invalid "empty atom"
  else if String.contains s '/' then invalid "atom %S contains '/'" s
  else s

let atom_to_string s = s
let root_atom = "/"
let self_atom = "."
let parent_atom = ".."

let of_atoms = function
  | [] -> invalid "empty compound name"
  | l -> l

let singleton a = [ a ]
let of_strings l = of_atoms (List.map atom l)

let of_string s =
  if String.equal s "" then invalid "empty name";
  let parts = String.split_on_char '/' s in
  let absolute = String.length s > 0 && Char.equal s.[0] '/' in
  let comps = List.filter (fun c -> not (String.equal c "")) parts in
  let comps = List.map atom comps in
  match (absolute, comps) with
  | true, [] -> [ root_atom ]
  | true, l -> root_atom :: l
  | false, [] -> invalid "name %S has no components" s
  | false, l -> l

let to_string = function
  | [] -> assert false
  | [ a ] when String.equal a root_atom -> "/"
  | a :: rest when String.equal a root_atom -> "/" ^ String.concat "/" rest
  | l -> String.concat "/" l

let atoms n = n
let length = List.length

let head = function [] -> assert false | a :: _ -> a

let tail = function [] -> assert false | [ _ ] -> None | _ :: r -> Some r

let rec last = function
  | [] -> assert false
  | [ a ] -> a
  | _ :: r -> last r

let append a b = a @ b
let snoc n a = n @ [ a ]
let cons a n = a :: n

let is_absolute = function a :: _ -> String.equal a root_atom | [] -> false

let prepend_root n = if is_absolute n then n else root_atom :: n

let rec is_prefix ~prefix n =
  match (prefix, n) with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: ps, a :: rest -> String.equal p a && is_prefix ~prefix:ps rest

let drop_prefix ~prefix n =
  let rec go prefix n =
    match (prefix, n) with
    | [], [] -> None
    | [], rest -> Some rest
    | _ :: _, [] -> None
    | p :: ps, a :: rest -> if String.equal p a then go ps rest else None
  in
  go prefix n

let parent n =
  match List.rev n with
  | [] -> assert false
  | [ _ ] -> None
  | _ :: rev_init -> Some (List.rev rev_init)

let normalize n =
  let absolute = is_absolute n in
  let comps = if absolute then List.tl n else n in
  let step acc a =
    if String.equal a self_atom then acc
    else if String.equal a parent_atom then
      match acc with
      | [] -> if absolute then [] else [ a ]
      | top :: rest ->
          if String.equal top parent_atom then a :: acc else rest
    else a :: acc
  in
  let rev = List.fold_left step [] comps in
  let comps = List.rev rev in
  match (absolute, comps) with
  | true, l -> root_atom :: l
  | false, [] -> [ self_atom ]
  | false, l -> l

let relative_to ~base n =
  if is_absolute base <> is_absolute n then
    invalid "relative_to: mixed absolute and relative names";
  let strip l = if is_absolute l then List.tl l else l in
  let rec strip_common b m =
    match (b, m) with
    | a :: bs, c :: ms when String.equal a c -> strip_common bs ms
    | _ -> (b, m)
  in
  let b, m =
    strip_common (strip (normalize base)) (strip (normalize n))
  in
  let ups = List.map (fun _ -> parent_atom) b in
  match ups @ m with [] -> [ self_atom ] | l -> l

let atom_equal = String.equal
let atom_compare = String.compare
let equal a b = List.equal String.equal a b
let compare a b = List.compare String.compare a b
let pp ppf n = Format.pp_print_string ppf (to_string n)
let pp_atom ppf a = Format.pp_print_string ppf a

module Atom_map = Stdlib.Map.Make (String)

module Map = Stdlib.Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

(** Resolution rules (closure mechanisms).

    A resolution rule R : M → C selects, from the circumstances in which a
    name occurs, the context in which to resolve it (paper, section 3). A
    rule that selects no context models a resolution that cannot proceed:
    the name then denotes ⊥.

    Rules are first-class so that schemes can be compared by swapping the
    rule and nothing else — exactly the ablation of Figure 2. *)

type t

val make : label:string -> (Store.t -> Occurrence.t -> Context.t option) -> t
val label : t -> string

val select : t -> Store.t -> Occurrence.t -> Context.t option
(** The context chosen for this occurrence, if any. *)

val resolve : t -> Store.t -> Occurrence.t -> Name.t -> Entity.t
(** [resolve r store m n] = [R(m)(n)]: select the context, then resolve.
    ⊥ when no context is selected or resolution fails. *)

(** {1 Context assignments}

    Operating systems keep an implicit association between entities and
    their contexts ("the context of process p", "the context of object
    o"). An {!Assignment.t} is that association: entity ↦ context object.
    Because it maps to context {e objects} (not context values), updating
    the object's state in the store is immediately visible through every
    rule built from the assignment. *)

module Assignment : sig
  type t

  val create : unit -> t

  val set : t -> Entity.t -> Entity.t -> unit
  (** [set asg e ctxobj] associates entity [e] with context object
      [ctxobj]. *)

  val remove : t -> Entity.t -> unit
  val find : t -> Entity.t -> Entity.t option
  val context : t -> Store.t -> Entity.t -> Context.t option
  (** The current context value of the associated context object. *)

  val copy : t -> t
  val entities : t -> Entity.t list
end

(** {1 The rules analysed in the paper} *)

val of_activity : Assignment.t -> t
(** R(a): resolve in the context of the activity performing the
    resolution, whatever the source of the name. This is the common
    operating-system rule. *)

val of_sender : Assignment.t -> t
(** R(sender): for a received name, resolve in the context of the sender.
    Selects no context for other sources. *)

val of_receiver : Assignment.t -> t
(** R(receiver): for a received name, resolve in the context of the
    receiver. Selects no context for other sources. *)

val of_object : Assignment.t -> t
(** R(o): for an embedded name, resolve in the context associated with the
    object from which the name was obtained. Selects no context for other
    sources. *)

val constant : label:string -> Context.t -> t
(** A single fixed context — the "global context" of early distributed
    systems (Locus, the V system). *)

val in_context_object : label:string -> Entity.t -> t
(** Resolve every name in the current state of the given context object. *)

val of_receiver_sender :
  prefer:[ `Sender | `Receiver ] -> Assignment.t -> t
(** The composite rule R(receiver, sender) the paper mentions as
    "possible" but finds "no instances of, and no justification for": for
    a received name, resolve in the {e union} of the receiver's and the
    sender's contexts, [prefer] deciding clashes. Selects no context for
    other sources. Implemented so the ablation experiment can verify the
    paper's judgement quantitatively. *)

val dispatch : generated:t -> received:t -> embedded:t -> t
(** Compose one rule per source of name. *)

val fallback : t -> t -> t
(** [fallback r1 r2] uses [r2] whenever [r1] selects no context. *)

val pp : Format.formatter -> t -> unit

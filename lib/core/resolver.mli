(** Resolution of (compound) names in a context.

    Implements the recursive definition of section 2 of the paper:

    {v c(n1 ... nk) = σ(c(n1))(n2 ... nk)   when σ(c(n1)) is a context
                     = ⊥                     otherwise v}

    Resolution always terminates: each step consumes one atom of the
    compound name, so even cyclic naming graphs (e.g. [".."] bindings)
    cannot cause divergence. *)

type step = {
  at : Entity.t;
      (** The context object whose context was applied, or
          {!Entity.undefined} for the first step, which uses the starting
          context value directly. *)
  atom : Name.atom;  (** The atom that was looked up. *)
  target : Entity.t;  (** The entity the atom was bound to (possibly ⊥). *)
}

type trace = step list
(** In resolution order. *)

val resolve : Store.t -> Context.t -> Name.t -> Entity.t
(** [resolve store c n] is the entity denoted by [n] in context [c], or
    {!Entity.undefined} when resolution fails at any step (unbound atom, or
    an intermediate entity that is not a context object). An iterative
    walk that allocates nothing on the success path. *)

val resolve_trace : Store.t -> Context.t -> Name.t -> Entity.t * trace
(** Like {!resolve} but also returns the resolution path. On failure the
    trace stops at the failing step. *)

(** {1 Reusable trace buffers}

    Callers that trace many resolutions (coherence sweeps, the static
    analyzers) can reuse one buffer across calls instead of allocating a
    step list per resolution. *)

type buffer

val create_buffer : unit -> buffer
val buffer_clear : buffer -> unit
val buffer_length : buffer -> int

val buffer_push : buffer -> step -> unit
(** Append one step. Exposed for alternative engines ({!Compiled}) that
    fill a buffer with the same steps this module would produce. *)

val buffer_trace : buffer -> trace
(** Snapshot the buffered steps as a list (allocates). *)

val resolve_trace_into : buffer -> Store.t -> Context.t -> Name.t -> Entity.t
(** Like {!resolve_trace}, writing the steps into [buffer] (cleared
    first) instead of building a list. *)

val resolve_in : Store.t -> Entity.t -> Name.t -> Entity.t
(** [resolve_in store o n] resolves [n] in the context that is the state of
    context object [o]; ⊥ when [o] is not a context object. *)

val resolve_deps : Store.t -> Entity.t -> Name.t -> Entity.t * Entity.t list
(** [resolve_deps store o n] is {!resolve_in} plus the entities whose
    states the walk consulted, each listed once at its first visit, in
    walk order, starting with [o] itself (cyclic walks — e.g. [".."]
    bindings — consult the same entity repeatedly but report it once).
    The result of the resolution is a function of exactly these entities'
    states: while none of their {!Store.generation}s change, the result
    (defined or ⊥) cannot change. Dependency-tracked caches key their
    entries to this list. *)

val resolve_str : Store.t -> Context.t -> string -> Entity.t
(** Convenience: parses with {!Name.of_string} first. *)

val deref : Store.t -> Context.t -> Name.t -> prefix:int -> Entity.t
(** [deref store c n ~prefix] resolves only the first [prefix] atoms of
    [n]; [prefix] must be between 1 and [Name.length n].
    @raise Invalid_argument otherwise. *)

val pp_trace : Store.t -> Format.formatter -> trace -> unit

(** Resolution of (compound) names in a context.

    Implements the recursive definition of section 2 of the paper:

    {v c(n1 ... nk) = σ(c(n1))(n2 ... nk)   when σ(c(n1)) is a context
                     = ⊥                     otherwise v}

    Resolution always terminates: each step consumes one atom of the
    compound name, so even cyclic naming graphs (e.g. [".."] bindings)
    cannot cause divergence. *)

type step = {
  at : Entity.t;
      (** The context object whose context was applied, or
          {!Entity.undefined} for the first step, which uses the starting
          context value directly. *)
  atom : Name.atom;  (** The atom that was looked up. *)
  target : Entity.t;  (** The entity the atom was bound to (possibly ⊥). *)
}

type trace = step list
(** In resolution order. *)

val resolve : Store.t -> Context.t -> Name.t -> Entity.t
(** [resolve store c n] is the entity denoted by [n] in context [c], or
    {!Entity.undefined} when resolution fails at any step (unbound atom, or
    an intermediate entity that is not a context object). *)

val resolve_trace : Store.t -> Context.t -> Name.t -> Entity.t * trace
(** Like {!resolve} but also returns the resolution path. On failure the
    trace stops at the failing step. *)

val resolve_in : Store.t -> Entity.t -> Name.t -> Entity.t
(** [resolve_in store o n] resolves [n] in the context that is the state of
    context object [o]; ⊥ when [o] is not a context object. *)

val resolve_str : Store.t -> Context.t -> string -> Entity.t
(** Convenience: parses with {!Name.of_string} first. *)

val deref : Store.t -> Context.t -> Name.t -> prefix:int -> Entity.t
(** [deref store c n ~prefix] resolves only the first [prefix] atoms of
    [n]; [prefix] must be between 1 and [Name.length n].
    @raise Invalid_argument otherwise. *)

val pp_trace : Store.t -> Format.formatter -> trace -> unit

(* A reusable fixed-size domain pool. Workers block on [work] between
   batches and execute opaque thunks; batches are built by [map_local],
   which farms indexed tasks out of a shared atomic counter so results
   land in task order regardless of scheduling.

   The calling domain always participates in its own batch. This is
   what makes nested or concurrent use safe: even if every worker is
   busy (or the helper thunks a batch enqueued are picked up late), the
   caller alone drains the batch, so joining a batch can never wait on
   work that nobody is running. Helper thunks that arrive after their
   batch has drained find the counter exhausted and return without
   creating participant state. *)

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled on enqueue and on shutdown *)
  pending : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable size : int;  (* total parallelism, callers included *)
}

let jobs t = t.size

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec await () =
    if t.stopping then None
    else
      match Queue.take_opt t.pending with
      | Some job -> Some job
      | None ->
          Condition.wait t.work t.lock;
          await ()
  in
  let job = await () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some job ->
      (* batch thunks handle their own exceptions; a raise here would
         kill the worker, so treat any escape as a bug but survive it *)
      (try job () with _ -> ());
      worker_loop t

let spawn_workers t n =
  let fresh = List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  t.workers <- fresh @ t.workers

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      pending = Queue.create ();
      stopping = false;
      workers = [];
      size = jobs;
    }
  in
  spawn_workers t (jobs - 1);
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  let ws = t.workers in
  t.workers <- [];
  t.size <- 1;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join ws

(* Grow the pool to at least [jobs] total parallelism. *)
let grow t ~jobs =
  Mutex.lock t.lock;
  let missing = jobs - t.size in
  if missing > 0 && not t.stopping then begin
    t.size <- jobs;
    spawn_workers t missing
  end;
  Mutex.unlock t.lock

let available_parallelism () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "NAMING_JOBS" with
  | None -> 1
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some j when j >= 1 -> j
      | Some _ | None -> 1)

(* The shared pool behind [?jobs] on the batch APIs: created on first
   parallel request, grown on demand, joined at exit so the process
   does not leave domains blocked on the condition variable. *)
let shared : t option ref = ref None
let shared_lock = Mutex.create ()

let get ?jobs () =
  match (match jobs with None -> default_jobs () | Some j -> j) with
  | j when j <= 1 -> None
  | j ->
      Mutex.lock shared_lock;
      let t =
        match !shared with
        | Some t -> t
        | None ->
            let t = create ~jobs:j in
            shared := Some t;
            at_exit (fun () -> shutdown t);
            t
      in
      Mutex.unlock shared_lock;
      if t.size < j then grow t ~jobs:j;
      Some t

let map_local ?jobs:requested t ~local f xs =
  match xs with
  | [] -> ([], [])
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let p =
        let cap = match requested with None -> t.size | Some j -> min j t.size in
        max 1 (min cap n)
      in
      if p = 1 then
        let w = local () in
        (List.map (f w) xs, [ w ])
      else begin
        let results = Array.make n None in
        let next = Atomic.make 0 in
        (* batch-completion latch and failure slot, both under [bl] *)
        let bl = Mutex.create () in
        let drained = Condition.create () in
        let completed = ref 0 in
        let failure = ref None in
        let locals = ref [] in
        let participant () =
          if Atomic.get next < n then begin
            let w = local () in
            Mutex.lock bl;
            locals := w :: !locals;
            Mutex.unlock bl;
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                (match f w arr.(i) with
                | v -> results.(i) <- Some v
                | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    Mutex.lock bl;
                    (match !failure with
                    | Some (j, _, _) when j <= i -> ()
                    | Some _ | None -> failure := Some (i, e, bt));
                    Mutex.unlock bl);
                Mutex.lock bl;
                incr completed;
                if !completed = n then Condition.broadcast drained;
                Mutex.unlock bl;
                loop ()
              end
            in
            loop ()
          end
        in
        Mutex.lock t.lock;
        for _ = 2 to p do
          Queue.push participant t.pending
        done;
        Condition.broadcast t.work;
        Mutex.unlock t.lock;
        participant ();
        Mutex.lock bl;
        while !completed < n do
          Condition.wait drained bl
        done;
        let fail = !failure and ws = !locals in
        Mutex.unlock bl;
        (match fail with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        ( List.map
            (function Some v -> v | None -> assert false)
            (Array.to_list results),
          ws )
      end

let map ?jobs t f xs =
  fst (map_local ?jobs t ~local:(fun () -> ()) (fun () x -> f x) xs)

(** A fixed-size domain pool for sweep-shaped parallelism.

    The quantitative payload of the paper — degree-of-coherence
    measurements across schemes, activities and sources of names — is a
    family of embarrassingly parallel sweeps over independent units of
    work (one verdict per (occurrence set, probe) pair, one row per
    world, one report per plan). This pool runs such sweeps across
    domains while keeping the API deterministic and exception-safe:

    - {e Deterministic results}: [map] and [map_local] return results in
      task order, whatever order the workers finished in. A parallel
      sweep is observationally equal to the sequential one.
    - {e Deterministic failures}: if tasks raise, the exception of the
      {e lowest-indexed} failing task is re-raised on the calling domain
      (with its backtrace) after the batch has drained — independent of
      scheduling. The pool stays usable afterwards.
    - {e Caller participation}: the calling domain executes tasks too,
      so a pool sized [jobs] applies [jobs]-way parallelism with
      [jobs - 1] worker domains, and a batch can never deadlock waiting
      for busy workers (the caller alone will drain it).

    Worker domains are long-lived: they block on a condition variable
    between batches, so per-sweep overhead is a few mutex operations,
    not a domain spawn.

    Domain-safety contract for tasks (see doc/PARALLEL.md): tasks must
    treat every {!Store} they can reach as read-only — enforced by
    {!Store.read_only}, which the parallel batch entry points wrap their
    sweeps in — and must not share a {!Cache} between tasks; shard it
    with {!Cache.copy} via {!map_local}. Interning new atoms
    ({!Name.atom}, {!Name.of_string}) is safe anywhere: the symbol
    table's writes are mutex-protected, its reads lock-free. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. [jobs] is the total
    parallelism including the calling domain; [create ~jobs:1] spawns
    nothing and every batch runs sequentially.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** The pool's total parallelism (workers + the calling domain). *)

val shutdown : t -> unit
(** Joins the worker domains. Call only when no batch is in flight;
    further batches on the pool run sequentially on the caller. *)

val available_parallelism : unit -> int
(** What the hardware offers: {!Domain.recommended_domain_count}. *)

val default_jobs : unit -> int
(** The [NAMING_JOBS] environment variable when set to a positive
    integer, else [1]. This is what batch APIs fall back to when
    [?jobs] is omitted ({!get}) and what the CLI tools default their
    [--jobs] to — so parallelism stays opt-in per invocation, but one
    environment variable turns it on everywhere at once (CI runs the
    whole test suite a second time under [NAMING_JOBS=4]). *)

val get : ?jobs:int -> unit -> t option
(** Resolves a [?jobs] request against a lazily-created shared pool.
    An omitted [?jobs] means {!default_jobs}[ ()]; an effective request
    [<= 1] means "run sequentially" ([None] is returned); a request
    [> 1] returns the shared pool, grown to at least that size. The
    shared pool is created on first use and joined at exit. *)

val map : ?jobs:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, in parallel across at
    most [min jobs (List.length xs)] participants (default: the pool
    size), returning results in list order. With one participant this
    is exactly [List.map f xs]. *)

val map_local :
  ?jobs:int ->
  t ->
  local:(unit -> 'w) ->
  ('w -> 'a -> 'b) ->
  'a list ->
  'b list * 'w list
(** [map_local pool ~local f xs] is {!map} with per-participant state:
    each participating domain calls [local ()] once (lazily, before its
    first task) and its tasks receive that value — the mechanism behind
    per-domain cache shards. Returns the results in list order and the
    participant states (in no particular order) so the caller can merge
    them (e.g. cache statistics). Sequentially this is
    [let w = local () in (List.map (f w) xs, [ w ])]. *)

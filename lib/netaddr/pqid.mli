(** Partially qualified process identifiers.

    Section 6, Example 1 of the paper: process identifiers have the form
    [(naddr, maddr, laddr)] and are qualified {e only as far as
    necessary}. A process with local address [l] on machine [m] in network
    [n] can be denoted, depending on the context of reference, by
    [(0,0,0)] (itself), [(0,0,l)] (within its machine), [(0,m,l)] (within
    its network) or [(n,m,l)] (fully qualified). The component value [0]
    means "unqualified". *)

type t = { naddr : int; maddr : int; laddr : int }

val v : naddr:int -> maddr:int -> laddr:int -> t
(** @raise Invalid_argument on negative components, or when a qualified
    component appears below an unqualified one (e.g. [naddr <> 0] with
    [maddr = 0] but [laddr <> 0] is fine — that cannot happen — the real
    constraint is: if [naddr <> 0] then [maddr <> 0] and [laddr <> 0]; if
    [maddr <> 0] then [laddr <> 0]). *)

val self : t
(** [(0,0,0)] — usable by any process to refer to itself. *)

val local : int -> t
(** [(0,0,l)]: machine-local form. @raise Invalid_argument when [l = 0]. *)

val machine : maddr:int -> laddr:int -> t
(** [(0,m,l)]: network-local form. *)

val full : naddr:int -> maddr:int -> laddr:int -> t
(** Fully qualified. *)

type qualification = Self | Machine_local | Network_local | Fully_qualified

val qualification : t -> qualification

val is_self : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** [(n,m,l)] notation, as in the paper. *)

type net = int
type mach = int
type proc = int

type net_rec = { mutable naddr : int; n_label : string }
type mach_rec = { mutable maddr : int; mutable net : int; m_label : string }
type proc_rec = { mutable laddr : int; mutable mach : int; p_label : string }

type t = {
  mutable nets : net_rec array;
  mutable machs : mach_rec array;
  mutable procs : proc_rec array;
}

let create () = { nets = [||]; machs = [||]; procs = [||] }

let append arr x = Array.append arr [| x |]

let indices arr = List.init (Array.length arr) (fun i -> i)

(* Free-address helpers. *)

let net_addr_used t a = Array.exists (fun n -> Int.equal n.naddr a) t.nets

let mach_addr_used t ~net a =
  Array.exists (fun m -> Int.equal m.net net && Int.equal m.maddr a) t.machs

let proc_addr_used t ~mach a =
  Array.exists (fun p -> Int.equal p.mach mach && Int.equal p.laddr a) t.procs

let smallest_free used =
  let rec go a = if used a then go (a + 1) else a in
  go 1

let add_network ?naddr t ~label =
  let addr =
    match naddr with
    | None -> smallest_free (net_addr_used t)
    | Some a ->
        if a <= 0 then invalid_arg "Registry.add_network: naddr must be > 0";
        if net_addr_used t a then
          invalid_arg (Printf.sprintf "Registry.add_network: naddr %d in use" a);
        a
  in
  t.nets <- append t.nets { naddr = addr; n_label = label };
  Array.length t.nets - 1

let check_net t net =
  if net < 0 || net >= Array.length t.nets then
    invalid_arg "Registry: unknown network"

let check_mach t mach =
  if mach < 0 || mach >= Array.length t.machs then
    invalid_arg "Registry: unknown machine"

let check_proc t proc =
  if proc < 0 || proc >= Array.length t.procs then
    invalid_arg "Registry: unknown process"

let add_machine ?maddr t ~net ~label =
  check_net t net;
  let addr =
    match maddr with
    | None -> smallest_free (mach_addr_used t ~net)
    | Some a ->
        if a <= 0 then invalid_arg "Registry.add_machine: maddr must be > 0";
        if mach_addr_used t ~net a then
          invalid_arg (Printf.sprintf "Registry.add_machine: maddr %d in use" a);
        a
  in
  t.machs <- append t.machs { maddr = addr; net; m_label = label };
  Array.length t.machs - 1

let add_process ?laddr t ~mach ~label =
  check_mach t mach;
  let addr =
    match laddr with
    | None -> smallest_free (proc_addr_used t ~mach)
    | Some a ->
        if a <= 0 then invalid_arg "Registry.add_process: laddr must be > 0";
        if proc_addr_used t ~mach a then
          invalid_arg (Printf.sprintf "Registry.add_process: laddr %d in use" a);
        a
  in
  t.procs <- append t.procs { laddr = addr; mach; p_label = label };
  Array.length t.procs - 1

let networks t = indices t.nets

let machines t net =
  check_net t net;
  List.filter (fun m -> Int.equal t.machs.(m).net net) (indices t.machs)

let processes t mach =
  check_mach t mach;
  List.filter (fun p -> Int.equal t.procs.(p).mach mach) (indices t.procs)

let all_processes t = indices t.procs

let label_net t net =
  check_net t net;
  t.nets.(net).n_label

let label_mach t mach =
  check_mach t mach;
  t.machs.(mach).m_label

let label_proc t proc =
  check_proc t proc;
  t.procs.(proc).p_label

let naddr t net =
  check_net t net;
  t.nets.(net).naddr

let maddr t mach =
  check_mach t mach;
  t.machs.(mach).maddr

let laddr t proc =
  check_proc t proc;
  t.procs.(proc).laddr

let network_of_mach t mach =
  check_mach t mach;
  t.machs.(mach).net

let machine_of_proc t proc =
  check_proc t proc;
  t.procs.(proc).mach

let placement t proc =
  let p = t.procs.(proc) in
  let m = t.machs.(p.mach) in
  let n = t.nets.(m.net) in
  Pqid.v ~naddr:n.naddr ~maddr:m.maddr ~laddr:p.laddr

let full_pid = placement

let renumber_machine t mach addr =
  check_mach t mach;
  if addr <= 0 then invalid_arg "Registry.renumber_machine: maddr must be > 0";
  let m = t.machs.(mach) in
  if not (Int.equal m.maddr addr) then begin
    if mach_addr_used t ~net:m.net addr then
      invalid_arg
        (Printf.sprintf "Registry.renumber_machine: maddr %d in use" addr);
    m.maddr <- addr
  end

let renumber_network t net addr =
  check_net t net;
  if addr <= 0 then invalid_arg "Registry.renumber_network: naddr must be > 0";
  let n = t.nets.(net) in
  if not (Int.equal n.naddr addr) then begin
    if net_addr_used t addr then
      invalid_arg
        (Printf.sprintf "Registry.renumber_network: naddr %d in use" addr);
    n.naddr <- addr
  end

let move_process t proc mach =
  check_proc t proc;
  check_mach t mach;
  let p = t.procs.(proc) in
  let addr =
    if proc_addr_used t ~mach p.laddr then smallest_free (proc_addr_used t ~mach)
    else p.laddr
  in
  p.mach <- mach;
  p.laddr <- addr

let move_machine t mach net =
  check_mach t mach;
  check_net t net;
  let m = t.machs.(mach) in
  let addr =
    if mach_addr_used t ~net m.maddr then
      smallest_free (mach_addr_used t ~net)
    else m.maddr
  in
  m.net <- net;
  m.maddr <- addr

(* Address → handle lookups under current addressing. *)

let find_net t a =
  let rec go i =
    if i >= Array.length t.nets then None
    else if Int.equal t.nets.(i).naddr a then Some i
    else go (i + 1)
  in
  go 0

let find_mach t ~net a =
  let rec go i =
    if i >= Array.length t.machs then None
    else if Int.equal t.machs.(i).net net && Int.equal t.machs.(i).maddr a then
      Some i
    else go (i + 1)
  in
  go 0

let find_proc t ~mach a =
  let rec go i =
    if i >= Array.length t.procs then None
    else if Int.equal t.procs.(i).mach mach && Int.equal t.procs.(i).laddr a
    then Some i
    else go (i + 1)
  in
  go 0

let resolve t ~from pid =
  check_proc t from;
  match Pqid.qualification pid with
  | Pqid.Self -> Some from
  | Pqid.Machine_local ->
      find_proc t ~mach:(machine_of_proc t from) pid.Pqid.laddr
  | Pqid.Network_local -> (
      let net = network_of_mach t (machine_of_proc t from) in
      match find_mach t ~net pid.Pqid.maddr with
      | None -> None
      | Some mach -> find_proc t ~mach pid.Pqid.laddr)
  | Pqid.Fully_qualified -> (
      match find_net t pid.Pqid.naddr with
      | None -> None
      | Some net -> (
          match find_mach t ~net pid.Pqid.maddr with
          | None -> None
          | Some mach -> find_proc t ~mach pid.Pqid.laddr))

let pid_of t ~target ~relative_to =
  check_proc t target;
  check_proc t relative_to;
  if Int.equal target relative_to then Pqid.self
  else
    let tm = machine_of_proc t target
    and rm = machine_of_proc t relative_to in
    if Int.equal tm rm then Pqid.local (laddr t target)
    else
      let tn = network_of_mach t tm and rn = network_of_mach t rm in
      if Int.equal tn rn then
        Pqid.machine ~maddr:(maddr t tm) ~laddr:(laddr t target)
      else placement t target

let map_for_transit t ~sender ~receiver pid =
  check_proc t sender;
  check_proc t receiver;
  (* Expand in the sender's frame. *)
  let sp = placement t sender in
  let expanded =
    match Pqid.qualification pid with
    | Pqid.Self -> sp
    | Pqid.Machine_local ->
        Pqid.v ~naddr:sp.Pqid.naddr ~maddr:sp.Pqid.maddr ~laddr:pid.Pqid.laddr
    | Pqid.Network_local ->
        Pqid.v ~naddr:sp.Pqid.naddr ~maddr:pid.Pqid.maddr ~laddr:pid.Pqid.laddr
    | Pqid.Fully_qualified -> pid
  in
  (* Reduce in the receiver's frame. *)
  let rp = placement t receiver in
  if Pqid.equal expanded rp then Pqid.self
  else if
    Int.equal expanded.Pqid.naddr rp.Pqid.naddr
    && Int.equal expanded.Pqid.maddr rp.Pqid.maddr
  then Pqid.local expanded.Pqid.laddr
  else if Int.equal expanded.Pqid.naddr rp.Pqid.naddr then
    Pqid.machine ~maddr:expanded.Pqid.maddr ~laddr:expanded.Pqid.laddr
  else expanded

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun net ->
      Format.fprintf ppf "network %s (naddr=%d)@," (label_net t net)
        (naddr t net);
      List.iter
        (fun mach ->
          Format.fprintf ppf "  machine %s (maddr=%d)@," (label_mach t mach)
            (maddr t mach);
          List.iter
            (fun proc ->
              Format.fprintf ppf "    process %s %s@," (label_proc t proc)
                (Pqid.to_string (placement t proc)))
            (processes t mach))
        (machines t net))
    (networks t);
  Format.fprintf ppf "@]"

(** The address registry: networks, machines, processes, and renumbering.

    Maintains the current placement (naddr, maddr, laddr) of every
    process. Handles are stable across renumbering — they model the
    processes themselves; addresses model how processes are referred to.
    Experiment E7 uses [renumber_machine] / [renumber_network] to replay
    the reconfiguration scenario of section 6, Example 1, and compares how
    many held process identifiers stay valid under fully vs partially
    qualified pids. *)

type t
type net = private int
type mach = private int
type proc = private int

val create : unit -> t

(** {1 Topology construction} *)

val add_network : ?naddr:int -> t -> label:string -> net
(** @raise Invalid_argument when an explicit [naddr] is 0, negative or in
    use. Default: smallest free positive address. *)

val add_machine : ?maddr:int -> t -> net:net -> label:string -> mach
(** Machine addresses are unique within their network. *)

val add_process : ?laddr:int -> t -> mach:mach -> label:string -> proc
(** Local addresses are unique within their machine. *)

val networks : t -> net list
val machines : t -> net -> mach list
val processes : t -> mach -> proc list
val all_processes : t -> proc list

val label_net : t -> net -> string
val label_mach : t -> mach -> string
val label_proc : t -> proc -> string

(** {1 Current placement} *)

val naddr : t -> net -> int
val maddr : t -> mach -> int
val laddr : t -> proc -> int

val placement : t -> proc -> Pqid.t
(** The fully qualified pid of a process under current addressing. *)

val network_of_mach : t -> mach -> net
val machine_of_proc : t -> proc -> mach

(** {1 Reconfiguration} *)

val renumber_machine : t -> mach -> int -> unit
(** Changes the machine's address within its network.
    @raise Invalid_argument on clash or on a non-positive address. *)

val renumber_network : t -> net -> int -> unit

val move_machine : t -> mach -> net -> unit
(** Relocates a machine (keeping its maddr if free, else the smallest free
    one) into another network. *)

val move_process : t -> proc -> mach -> unit
(** Migrates a process to another machine (keeping its laddr if free,
    else the smallest free one). Unlike machine/network renumbering —
    which the paper shows partially-qualified pids survive — migration
    changes the process's own address, so even machine-local pids held by
    its old neighbours break. E7's companion tests use this as the
    contrast case. *)

(** {1 Resolution and mapping} *)

val resolve : t -> from:proc -> Pqid.t -> proc option
(** Resolves a pid {e in the context of} process [from], interpreting
    unqualified components relative to [from]'s current placement: self,
    same machine, same network, or fully qualified. [None] when no process
    currently has the denoted address. *)

val pid_of : t -> target:proc -> relative_to:proc -> Pqid.t
(** The {e minimally qualified} pid for [target] as referred to by
    [relative_to]: [(0,0,0)] for itself, [(0,0,l)] within a machine,
    [(0,m,l)] within a network, fully qualified across networks. *)

val full_pid : t -> proc -> Pqid.t
(** Alias of {!placement} — the fully-qualified baseline of E7. *)

val map_for_transit : t -> sender:proc -> receiver:proc -> Pqid.t -> Pqid.t
(** The R(sender) closure mechanism for pids embedded in messages: a pid
    valid in the sender's context is rewritten into an equivalent pid
    valid in the receiver's context (qualified exactly as far as
    necessary). This is the "mapping the embedded pid" implementation of
    the paper. The pid is expanded in the sender's frame, then reduced in
    the receiver's frame — no resolution to a process is required, so it
    also works for pids denoting third parties. *)

val pp : Format.formatter -> t -> unit

type t = { naddr : int; maddr : int; laddr : int }

let v ~naddr ~maddr ~laddr =
  if naddr < 0 || maddr < 0 || laddr < 0 then
    invalid_arg "Pqid.v: negative address component";
  if naddr <> 0 && maddr = 0 then
    invalid_arg "Pqid.v: network-qualified pid must be machine-qualified";
  if maddr <> 0 && laddr = 0 then
    invalid_arg "Pqid.v: machine-qualified pid must be locally qualified";
  { naddr; maddr; laddr }

let self = { naddr = 0; maddr = 0; laddr = 0 }

let local l =
  if l = 0 then invalid_arg "Pqid.local: laddr must be non-zero";
  v ~naddr:0 ~maddr:0 ~laddr:l

let machine ~maddr ~laddr =
  if maddr = 0 then invalid_arg "Pqid.machine: maddr must be non-zero";
  v ~naddr:0 ~maddr ~laddr

let full ~naddr ~maddr ~laddr =
  if naddr = 0 then invalid_arg "Pqid.full: naddr must be non-zero";
  v ~naddr ~maddr ~laddr

type qualification = Self | Machine_local | Network_local | Fully_qualified

let qualification t =
  if t.naddr <> 0 then Fully_qualified
  else if t.maddr <> 0 then Network_local
  else if t.laddr <> 0 then Machine_local
  else Self

let is_self t = t.naddr = 0 && t.maddr = 0 && t.laddr = 0

let equal a b =
  Int.equal a.naddr b.naddr && Int.equal a.maddr b.maddr
  && Int.equal a.laddr b.laddr

let compare a b =
  let c = Int.compare a.naddr b.naddr in
  if c <> 0 then c
  else
    let c = Int.compare a.maddr b.maddr in
    if c <> 0 then c else Int.compare a.laddr b.laddr

let to_string t = Printf.sprintf "(%d,%d,%d)" t.naddr t.maddr t.laddr
let pp ppf t = Format.pp_print_string ppf (to_string t)

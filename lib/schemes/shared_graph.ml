module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

type t = {
  env : Process_env.t;
  shared_fs : Vfs.Fs.t;
  clients : (string * Vfs.Fs.t) list;
  attach : string;
  replication : Naming.Replication.t;
}

let default_local_tree =
  [ "home/user/notes.txt"; "home/user/src/main.c"; "tmp/"; "etc/fstab" ]

let default_shared_tree =
  [
    "pkg/tex/latex.fmt";
    "pkg/cc/cc1";
    "proj/apollo/plan.txt";
    "proj/apollo/src/nav.c";
    "users/alice/public/paper.tex";
  ]

let build ~clients ?(attach_name = "vice") ?(local_tree = default_local_tree)
    ?(shared_tree = default_shared_tree) store =
  if clients = [] then invalid_arg "Shared_graph.build: no clients";
  let shared_fs = Vfs.Fs.create ~root_label:"shared:/" store in
  Vfs.Fs.populate shared_fs shared_tree;
  let client_fss =
    List.map
      (fun c ->
        let fs = Vfs.Fs.create ~root_label:(c ^ ":/") store in
        Vfs.Fs.populate fs local_tree;
        Vfs.Fs.link fs ~dir:(Vfs.Fs.root fs) attach_name (Vfs.Fs.root shared_fs);
        (c, fs))
      clients
  in
  {
    env = Process_env.create store;
    shared_fs;
    clients = client_fss;
    attach = attach_name;
    replication = Naming.Replication.create ();
  }

let env t = t.env
let store t = Process_env.store t.env
let shared_fs t = t.shared_fs
let clients t = List.map fst t.clients
let attach_name t = t.attach
let replication t = t.replication

let client_fs t c =
  match List.assoc_opt c t.clients with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Shared_graph: unknown client %S" c)

let client_root t c = Vfs.Fs.root (client_fs t c)

let replicate_local t ~path ~content =
  let copies =
    List.map (fun (_c, fs) -> Vfs.Fs.add_file fs path ~content) t.clients
  in
  match copies with
  | [] | [ _ ] -> ()
  | _ -> Naming.Replication.declare t.replication copies

let spawn_on ?label t ~client =
  let r = client_root t client in
  let label = match label with Some l -> Some l | None -> Some client in
  Process_env.spawn ?label ~root:r ~cwd:r t.env

let remote_exec ?label t ~parent ~client =
  let child = Process_env.fork ?label t.env ~parent in
  let r = client_root t client in
  Process_env.set_root t.env child r;
  Process_env.set_cwd t.env child r;
  child

let rule t = Process_env.rule t.env
let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let shared_probes ?(max_depth = 6) t =
  let st = store t in
  match S.context_of st (Vfs.Fs.root t.shared_fs) with
  | None -> []
  | Some ctx ->
      let names = Naming.Graph.all_names st ctx ~max_depth:(max_depth - 2) () in
      let prefix = N.of_strings [ "/"; t.attach ] in
      prefix :: List.map (fun (n, _e) -> N.append prefix n) names

let local_probes ?(max_depth = 6) t ~client =
  let st = store t in
  let root = client_root t client in
  match S.context_of st root with
  | None -> []
  | Some ctx ->
      let skip a =
        N.atom_equal a N.self_atom
        || N.atom_equal a N.parent_atom
        || N.atom_equal a (N.atom t.attach)
      in
      let names =
        Naming.Graph.all_names st ctx ~max_depth:(max_depth - 1) ~skip ()
      in
      List.map (fun (n, _e) -> N.cons N.root_atom n) names

(** Cross-links between autonomous systems (Figure 5).

    Two or more autonomous systems, each with its own naming graph, are
    connected by adding cross-links: bindings in one system's directories
    that denote entities of another system. The context of each activity
    is still based on its local system, merely {e extended} to reach the
    remote graph — so there are no global names between the systems unless
    they happen to use the same prefix for a shared entity, and
    incoherence arises for exchanged and embedded names (paper, section
    5.3). *)

type t

val build :
  systems:(string * string list) list -> Naming.Store.t -> t
(** One autonomous system per [(name, tree)] pair. *)

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val systems : t -> string list
val system_fs : t -> string -> Vfs.Fs.t
val system_root : t -> string -> Naming.Entity.t

val add_crosslink :
  t ->
  from_system:string ->
  ?at:string ->
  name:string ->
  to_system:string ->
  ?to_path:string ->
  unit ->
  unit
(** Binds [name], in the directory [at] of [from_system] (default its
    root), to the entity at [to_path] of [to_system] (default its root).
    @raise Invalid_argument when either path does not resolve to a
    suitable entity. *)

val spawn_on : ?label:string -> t -> system:string -> Naming.Entity.t

val map_name :
  prefix:Naming.Name.t -> replacement:Naming.Name.t -> Naming.Name.t -> Naming.Name.t
(** The human prefix-mapping closure mechanism of section 7: replaces
    [prefix] with [replacement] when it matches (e.g. [/users/...] →
    [/org2/users/...]); otherwise returns the name unchanged. *)

val rule : t -> Naming.Rule.t
val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val system_probes : ?max_depth:int -> t -> system:string -> Naming.Name.t list
(** ["/"]-rooted names within one system's own graph, cross-link edges
    included (they are part of the extended context). *)

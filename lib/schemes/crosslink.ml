module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

type t = { env : Process_env.t; systems : (string * Vfs.Fs.t) list }

let build ~systems store =
  if systems = [] then invalid_arg "Crosslink.build: no systems";
  let fss =
    List.map
      (fun (name, tree) ->
        let fs = Vfs.Fs.create ~root_label:(name ^ ":/") store in
        Vfs.Fs.populate fs tree;
        (name, fs))
      systems
  in
  { env = Process_env.create store; systems = fss }

let env t = t.env
let store t = Process_env.store t.env
let systems t = List.map fst t.systems

let system_fs t s =
  match List.assoc_opt s t.systems with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Crosslink: unknown system %S" s)

let system_root t s = Vfs.Fs.root (system_fs t s)

let add_crosslink t ~from_system ?(at = "/") ~name ~to_system ?(to_path = "/")
    () =
  let from_fs = system_fs t from_system in
  let to_fs = system_fs t to_system in
  let dir = Vfs.Fs.lookup from_fs at in
  if not (S.is_context_object (store t) dir) then
    invalid_arg
      (Printf.sprintf "Crosslink.add_crosslink: %S is not a directory" at);
  let target = Vfs.Fs.lookup to_fs to_path in
  if E.is_undefined target then
    invalid_arg
      (Printf.sprintf "Crosslink.add_crosslink: %S does not resolve" to_path);
  Vfs.Fs.link from_fs ~dir name target

let spawn_on ?label t ~system =
  let r = system_root t system in
  let label = match label with Some l -> Some l | None -> Some system in
  Process_env.spawn ?label ~root:r ~cwd:r t.env

let map_name ~prefix ~replacement name =
  if N.equal name prefix then replacement
  else
    match N.drop_prefix ~prefix name with
    | None -> name
    | Some rest -> N.append replacement rest

let rule t = Process_env.rule t.env
let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let system_probes ?(max_depth = 6) t ~system =
  let st = store t in
  let root = system_root t system in
  match S.context_of st root with
  | None -> []
  | Some ctx ->
      let names = Naming.Graph.all_names st ctx ~max_depth:(max_depth - 1) () in
      N.singleton N.root_atom
      :: List.map (fun (n, _e) -> N.cons N.root_atom n) names

module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

type request = { client : E.t; reads : N.t list }
type result = (N.t * string option) list
type response = result

type t = {
  world : Per_process.t;
  engine : Dsim.Engine.t;
  network : (request, response) Dsim.Rpc.message Dsim.Network.t;
  servers : (string * (request, response) Dsim.Rpc.endpoint) list;
  nodes : (string * Dsim.Network.node_id) list;
  clients : (request, response) Dsim.Rpc.endpoint E.Tbl.t;
  mutable next_client_port : int;
  mutable children : int;
}

let serve t subsystem request =
  let child =
    Per_process.remote_exec ~label:"exec-child" ~local_name:"local" t.world
      ~parent:request.client ~subsystem
  in
  t.children <- t.children + 1;
  let store = Per_process.store t.world in
  let read name =
    let e = Process_env.resolve (Per_process.env t.world) ~as_:child name in
    (name, S.data_of store e)
  in
  Some (List.map read request.reads)

let build ~subsystems ~engine ~rng ?net_config store =
  let config =
    match net_config with Some c -> c | None -> Dsim.Network.default_config
  in
  let world = Per_process.build ~subsystems store in
  let network = Dsim.Network.create ~config ~engine ~rng () in
  let t_ref = ref None in
  let nodes =
    List.map
      (fun (name, _) -> (name, Dsim.Network.add_node network ~label:name))
      subsystems
  in
  let servers =
    List.map
      (fun (name, node) ->
        let handler request =
          match !t_ref with
          | None -> None
          | Some t -> serve t name request
        in
        (name, Dsim.Rpc.create network ~node ~port:1 ~handler ()))
      nodes
  in
  let t =
    {
      world;
      engine;
      network;
      servers;
      nodes;
      clients = E.Tbl.create 8;
      next_client_port = 100;
      children = 0;
    }
  in
  t_ref := Some t;
  t

let world t = t.world
let engine t = t.engine

let node_of t name =
  match List.assoc_opt name t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Exec_facility: unknown subsystem %S" name)

let server_of t name =
  match List.assoc_opt name t.servers with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Exec_facility: unknown subsystem %S" name)

let new_client ?label t ~on ~attach =
  let node = node_of t on in
  let client = Per_process.spawn ?label ~attach t.world in
  let port = t.next_client_port in
  t.next_client_port <- port + 1;
  let endpoint = Dsim.Rpc.create t.network ~node ~port () in
  E.Tbl.replace t.clients client endpoint;
  client

let exec_remote t ~client ~on ~reads ?(timeout = 30.0) ~on_result () =
  let endpoint =
    match E.Tbl.find_opt t.clients client with
    | Some e -> e
    | None -> invalid_arg "Exec_facility.exec_remote: not a client"
  in
  let server = server_of t on in
  Dsim.Rpc.call endpoint ~to_:(Dsim.Rpc.address server) ~timeout
    { client; reads }
    ~on_reply:on_result

let children_spawned t = t.children

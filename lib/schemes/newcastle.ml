module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

type entry = {
  fs : Vfs.Fs.t;
  ups : int;  (* '..' steps from the machine root to the super-root *)
  path_from_super : N.t;  (* path from the super-root down to the machine *)
}

type t = {
  env : Process_env.t;
  super : E.t;
  machines : (string * entry) list;
}

let build ~machines ?(tree = Unix_scheme.default_tree) store =
  if machines = [] then invalid_arg "Newcastle.build: no machines";
  let super = S.create_context_object ~label:"super-root" store in
  S.bind store ~dir:super N.self_atom super;
  S.bind store ~dir:super N.parent_atom super;
  let fss =
    List.map
      (fun m ->
        let fs = Vfs.Fs.create ~root_label:(m ^ ":/") store in
        Vfs.Fs.populate fs tree;
        S.bind store ~dir:super (N.atom m) (Vfs.Fs.root fs);
        (* '..' above the machine root reaches the super-root. *)
        S.bind store ~dir:(Vfs.Fs.root fs) N.parent_atom super;
        (m, { fs; ups = 1; path_from_super = N.singleton (N.atom m) }))
      machines
  in
  { env = Process_env.create store; super; machines = fss }

let env t = t.env
let store t = Process_env.store t.env
let super_root t = t.super
let machines t = List.map fst t.machines

let entry_of t m =
  match List.assoc_opt m t.machines with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Newcastle: unknown machine %S" m)

let fs_of t m = (entry_of t m).fs
let machine_root t m = Vfs.Fs.root (fs_of t m)

let join store systems =
  if List.length systems < 2 then
    invalid_arg "Newcastle.join: need at least two systems";
  let super = S.create_context_object ~label:"joined-super-root" store in
  S.bind store ~dir:super N.self_atom super;
  S.bind store ~dir:super N.parent_atom super;
  let machines =
    List.concat_map
      (fun (sys_name, t) ->
        S.bind store ~dir:super (N.atom sys_name) t.super;
        (* the old super-root now has a parent of its own *)
        S.bind store ~dir:t.super N.parent_atom super;
        List.map
          (fun (m, entry) ->
            ( sys_name ^ "." ^ m,
              {
                entry with
                ups = entry.ups + 1;
                path_from_super =
                  N.cons (N.atom sys_name) entry.path_from_super;
              } ))
          t.machines)
      systems
  in
  let env =
    (* all systems share one store; reuse the first system's environment so
       that existing processes keep working in the joined system *)
    match systems with (_, t) :: _ -> t.env | [] -> assert false
  in
  { env; super; machines }

let spawn_on ?label t ~machine =
  let r = machine_root t machine in
  let label = match label with Some l -> Some l | None -> Some machine in
  Process_env.spawn ?label ~root:r ~cwd:r t.env

let machine_of t a =
  let r = Process_env.root_of t.env a in
  match
    List.find_opt (fun (_m, e) -> E.equal (Vfs.Fs.root e.fs) r) t.machines
  with
  | Some (m, _) -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Newcastle.machine_of: %s has a non-machine root"
           (E.to_string a))

type exec_policy = Invoker_root | Remote_root

let remote_exec ?label t ~parent ~machine ~policy =
  let root =
    match policy with
    | Invoker_root -> Process_env.root_of t.env parent
    | Remote_root -> machine_root t machine
  in
  let child = Process_env.fork ?label t.env ~parent in
  Process_env.set_root t.env child root;
  Process_env.set_cwd t.env child root;
  child

let map_name t ~from_machine ~to_machine name =
  let from_entry = entry_of t from_machine in
  let to_entry = entry_of t to_machine in
  if not (N.is_absolute name) then name
  else
    (* climb from [to_machine]'s root to the super-root, then walk down to
       [from_machine]'s root *)
    let ups = List.init to_entry.ups (fun _ -> N.parent_atom) in
    let prefix =
      N.append
        (N.of_atoms (N.root_atom :: ups))
        from_entry.path_from_super
    in
    match N.tail name with None -> prefix | Some rest -> N.append prefix rest

let rule t = Process_env.rule t.env
let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let absolute_probes ?(max_depth = 6) t ~machine =
  let st = store t in
  let root = machine_root t machine in
  match S.context_of st root with
  | None -> []
  | Some ctx ->
      let names = Naming.Graph.all_names st ctx ~max_depth:(max_depth - 1) () in
      N.singleton N.root_atom
      :: List.map (fun (n, _e) -> N.cons N.root_atom n) names

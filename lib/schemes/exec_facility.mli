(** A remote execution facility over the simulated network.

    The paper (section 6, II) builds "a powerful remote execution
    facility" on the per-process view of naming: the remotely executing
    process can access files on both its local and its parent's machines.
    This module is that facility as a working client/server protocol:

    - every subsystem runs an {e exec server} (an {!Dsim.Rpc} endpoint);
    - a client sends it an exec request naming the files the remote
      program needs;
    - the server spawns the child with the client's namespace (inherited)
      plus the executing subsystem attached, resolves every name in the
      child's namespace, and replies with the file contents.

    Because the child's namespace is arranged per the paper's solution II,
    names that the client generated resolve remotely to the same entities
    — the experiment-level claim of E8, here exercised end-to-end through
    messages, latency, and (if configured) loss. *)

type t

val build :
  subsystems:(string * string list) list ->
  engine:Dsim.Engine.t ->
  rng:Dsim.Rng.t ->
  ?net_config:Dsim.Network.config ->
  Naming.Store.t ->
  t
(** One file tree, one network node and one exec server per subsystem. *)

val world : t -> Per_process.t
val engine : t -> Dsim.Engine.t

val new_client :
  ?label:string -> t -> on:string -> attach:(string * string) list ->
  Naming.Entity.t
(** A client process on subsystem [on], with the given namespace
    attachments, and a private RPC endpoint for its calls. *)

type result = (Naming.Name.t * string option) list
(** For each requested name: the content of the file it denotes in the
    {e child's} namespace, or [None] if it did not resolve to a file. *)

val exec_remote :
  t ->
  client:Naming.Entity.t ->
  on:string ->
  reads:Naming.Name.t list ->
  ?timeout:float ->
  on_result:((result, [ `Timeout | `Unavailable ]) Stdlib.result -> unit) ->
  unit ->
  unit
(** Ships the exec request to subsystem [on]'s server. The reply arrives
    (or times out) when the engine runs. Children are spawned with
    [local_name "local"], so [reads] may mix the client's own names
    (e.g. [/fs/home/alice/in.txt]) with execution-site names
    ([/local/tmp/scratch]). *)

val children_spawned : t -> int
(** Total children spawned by all servers (for tests). *)

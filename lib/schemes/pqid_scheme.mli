(** Partially qualified identifiers in a simulated network (section 6, Ex. 1).

    Couples the {!Netaddr.Registry} with the {!Dsim} message network:
    processes are simulated actors that exchange messages containing
    process identifiers. A pid embedded in a message is valid in the
    context of the sender, but not necessarily in the context of the
    receiver; the R(sender) closure mechanism is implemented by {e mapping
    the embedded pid} in transit. The module supports both behaviours so
    experiment E7 can ablate the mapping, and maintains long-lived
    "connections" whose survival under machine/network renumbering is the
    paper's headline argument for partial qualification. *)

type t

type message = {
  pid : Netaddr.Pqid.t;  (** the identifier embedded in the message *)
  intended : Netaddr.Registry.proc;
      (** ground truth, carried for measurement only *)
}

val build :
  topology:(string * (string * int) list) list ->
  engine:Dsim.Engine.t ->
  rng:Dsim.Rng.t ->
  ?net_config:Dsim.Network.config ->
  unit ->
  t
(** [topology] lists networks, each with its machines and per-machine
    process counts. Each simulated process gets an actor on a node of the
    message network. *)

val registry : t -> Netaddr.Registry.t
val network : t -> message Dsim.Network.t
val processes : t -> Netaddr.Registry.proc list
val actor_of : t -> Netaddr.Registry.proc -> message Dsim.Actor.t

val send_pid :
  t ->
  from:Netaddr.Registry.proc ->
  to_:Netaddr.Registry.proc ->
  target:Netaddr.Registry.proc ->
  mapped:bool ->
  unit
(** [from] sends [to_] a message embedding a minimally-qualified pid for
    [target] (as seen by [from]). With [mapped:true] the pid is rewritten
    with {!Netaddr.Registry.map_for_transit} — the R(sender) mechanism;
    with [mapped:false] it travels verbatim — the R(receiver) baseline. *)

val deliveries : t -> (Netaddr.Registry.proc * message) list
(** Drains all inboxes: [(receiver, message)] pairs, delivery order per
    receiver. Call after running the engine. *)

val resolution_correct : t -> Netaddr.Registry.proc * message -> bool
(** Whether the receiver, resolving the embedded pid in its own context,
    reaches the intended process. *)

(** {1 Connections under reconfiguration} *)

type connection = {
  holder : Netaddr.Registry.proc;
  target : Netaddr.Registry.proc;
  held_pid : Netaddr.Pqid.t;
}

val connect :
  t ->
  holder:Netaddr.Registry.proc ->
  target:Netaddr.Registry.proc ->
  qualification:[ `Partial | `Full ] ->
  connection
(** The holder stores a pid for the target: minimally qualified
    ([`Partial], the paper's scheme) or fully qualified ([`Full], the
    conventional baseline). *)

val connection_valid : t -> connection -> bool
(** Whether the stored pid still resolves, {e from the holder}, to the
    original target under current addressing. *)

module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store
module C = Naming.Context

type t = {
  store : S.t;
  asg : Naming.Rule.Assignment.t;
  mutable rev_activities : E.t list;
  mutable env_engine : Naming.Engine.t option;
      (* lazily built when NAMING_ENGINE overrides the default resolve
         path, so e.g. the compiled engine compiles once per
         environment, not once per resolution *)
}

let create store =
  {
    store;
    asg = Naming.Rule.Assignment.create ();
    rev_activities = [];
    env_engine = None;
  }

let store t = t.store
let assignment t = t.asg

let spawn ?label ?root ?cwd ?(extra = []) t =
  let a = S.create_activity ?label t.store in
  let ctx = C.empty in
  let ctx =
    match root with
    | None -> ctx
    | Some r -> C.bind ctx N.root_atom r
  in
  let cwd = match cwd with Some c -> Some c | None -> root in
  let ctx =
    match cwd with None -> ctx | Some c -> C.bind ctx N.self_atom c
  in
  let ctx =
    List.fold_left (fun ctx (s, e) -> C.bind ctx (N.atom s) e) ctx extra
  in
  let ctx_label = match label with Some l -> l ^ ".ctx" | None -> "ctx" in
  let ctxobj = S.create_context_object ~label:ctx_label ~ctx t.store in
  Naming.Rule.Assignment.set t.asg a ctxobj;
  t.rev_activities <- a :: t.rev_activities;
  a

let context_object t a =
  match Naming.Rule.Assignment.find t.asg a with
  | Some o -> o
  | None ->
      invalid_arg
        (Printf.sprintf "Process_env: activity %s not managed here"
           (E.to_string a))

let context t a =
  match S.context_of t.store (context_object t a) with
  | Some c -> c
  | None -> assert false

let fork ?label t ~parent =
  let parent_ctx = context t parent in
  let a = S.create_activity ?label t.store in
  let ctx_label = match label with Some l -> l ^ ".ctx" | None -> "ctx" in
  let ctxobj =
    S.create_context_object ~label:ctx_label ~ctx:parent_ctx t.store
  in
  Naming.Rule.Assignment.set t.asg a ctxobj;
  t.rev_activities <- a :: t.rev_activities;
  a

let set_binding t a s e = S.bind t.store ~dir:(context_object t a) (N.atom s) e
let remove_binding t a s = S.unbind t.store ~dir:(context_object t a) (N.atom s)
let set_root t a dir = S.bind t.store ~dir:(context_object t a) N.root_atom dir
let set_cwd t a dir = S.bind t.store ~dir:(context_object t a) N.self_atom dir
let root_of t a = C.lookup (context t a) N.root_atom
let cwd_of t a = C.lookup (context t a) N.self_atom
let activities t = List.rev t.rev_activities
let rule t = Naming.Rule.of_activity t.asg

let resolve ?cache ?engine t ~as_ name =
  let ctx = context t as_ in
  (* Absolute names go through the "/" binding; relative names whose head
     is bound directly in the activity's context (a per-process
     attachment) resolve there; anything else is cwd-relative. *)
  let name =
    if N.is_absolute name then name
    else if C.mem ctx (N.head name) then name
    else N.cons N.self_atom name
  in
  match (cache, engine) with
  | _, Some e -> Naming.Engine.resolve_in e (context_object t as_) name
  | Some c, None -> Naming.Cache.resolve_in c (context_object t as_) name
  | None, None -> (
      match Naming.Engine.env_kind () with
      | None -> Naming.Resolver.resolve t.store ctx name
      | Some kind ->
          let e =
            match t.env_engine with
            | Some e when Naming.Engine.kind e = kind -> e
            | _ ->
                let e = Naming.Engine.create kind t.store in
                t.env_engine <- Some e;
                e
          in
          Naming.Engine.resolve_in e (context_object t as_) name)

let resolve_str ?cache ?engine t ~as_ s =
  resolve ?cache ?engine t ~as_ (N.of_string s)

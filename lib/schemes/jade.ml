module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

type t = {
  env : Process_env.t;
  services : (string * Vfs.Fs.t) list;
  mounts : (string * string list) list E.Tbl.t;  (* user -> mount table *)
}

let build ~services store =
  if services = [] then invalid_arg "Jade.build: no services";
  let fss =
    List.map
      (fun (name, tree) ->
        let fs = Vfs.Fs.create ~root_label:(name ^ ":/") store in
        Vfs.Fs.populate fs tree;
        (name, fs))
      services
  in
  { env = Process_env.create store; services = fss; mounts = E.Tbl.create 8 }

let env t = t.env
let store t = Process_env.store t.env
let services t = List.map fst t.services

let service_fs t s =
  match List.assoc_opt s t.services with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Jade: unknown service %S" s)

let service_root t s = Vfs.Fs.root (service_fs t s)

let check_services t names =
  List.iter (fun s -> ignore (service_fs t s)) names

let new_user ?label t ~mounts =
  List.iter (fun (_n, ss) -> check_services t ss) mounts;
  let user = Process_env.spawn ?label t.env in
  E.Tbl.replace t.mounts user mounts;
  user

let mounts_of t user =
  match E.Tbl.find_opt t.mounts user with
  | Some m -> m
  | None -> invalid_arg "Jade: not a Jade user"

let add_mount t user ~name ~services =
  check_services t services;
  let mounts = mounts_of t user in
  let mounts = List.remove_assoc name mounts @ [ (name, services) ] in
  E.Tbl.replace t.mounts user mounts

let remove_mount t user name =
  E.Tbl.replace t.mounts user (List.remove_assoc name (mounts_of t user))

let resolve t ~as_ name =
  let mounts = mounts_of t as_ in
  let st = store t in
  match N.atoms name with
  | [] -> E.undefined
  | mount :: rest -> (
      match List.assoc_opt (N.atom_to_string mount) mounts with
      | None -> E.undefined
      | Some backing -> (
          match rest with
          | [] ->
              (* the mount itself: the first backing directory *)
              (match backing with
              | [] -> E.undefined
              | s :: _ -> service_root t s)
          | _ ->
              let rest_name = N.of_atoms rest in
              let rec search = function
                | [] -> E.undefined
                | s :: more ->
                    let result =
                      Naming.Resolver.resolve_in st (service_root t s)
                        rest_name
                    in
                    if E.is_defined result then result else search more
              in
              search backing))

let resolve_str t ~as_ s = resolve t ~as_ (N.of_string s)

let which t ~as_ name =
  let mounts = mounts_of t as_ in
  let st = store t in
  match N.atoms name with
  | [] | [ _ ] -> None
  | mount :: rest -> (
      match List.assoc_opt (N.atom_to_string mount) mounts with
      | None -> None
      | Some backing ->
          let rest_name = N.of_atoms rest in
          List.find_opt
            (fun s ->
              E.is_defined
                (Naming.Resolver.resolve_in st (service_root t s) rest_name))
            backing)

let probes ?(max_depth = 5) t user =
  let st = store t in
  List.concat_map
    (fun (mount, backing) ->
      let mount_atom = N.atom mount in
      List.concat_map
        (fun s ->
          match S.context_of st (service_root t s) with
          | None -> []
          | Some ctx ->
              List.map
                (fun (n, _e) -> N.cons mount_atom n)
                (Naming.Graph.all_names st ctx ~max_depth:(max_depth - 1) ()))
        backing)
    (mounts_of t user)
  |> List.sort_uniq N.compare

module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store
module C = Naming.Context

let ref_marker = "@ref "

let make_content ?(text = "") ~refs () =
  let lines = List.map (fun r -> ref_marker ^ N.to_string r) refs in
  String.concat "\n" (lines @ if String.equal text "" then [] else [ text ])

let refs_of_content content =
  let lines = String.split_on_char '\n' content in
  List.filter_map
    (fun line ->
      let mlen = String.length ref_marker in
      if
        String.length line > mlen
        && String.equal (String.sub line 0 mlen) ref_marker
      then
        match N.of_string (String.sub line mlen (String.length line - mlen)) with
        | name -> Some name
        | exception N.Invalid _ -> None
      else None)
    lines

let refs_of store file =
  match S.data_of store file with
  | None -> []
  | Some content -> refs_of_content content

let add_ref store file name =
  match S.data_of store file with
  | None -> invalid_arg "Embedded.add_ref: not a file"
  | Some content ->
      let line = ref_marker ^ N.to_string name in
      let content =
        if String.equal content "" then line else content ^ "\n" ^ line
      in
      S.set_obj_state store file (S.Data content)

let ancestors store dir =
  let rec go acc seen d =
    if E.Set.mem d seen then List.rev acc
    else
      let acc = d :: acc and seen = E.Set.add d seen in
      match S.context_of store d with
      | None -> List.rev acc
      | Some ctx ->
          let parent = C.lookup ctx N.parent_atom in
          if E.is_undefined parent || E.equal parent d then List.rev acc
          else go acc seen parent
  in
  go [] E.Set.empty dir

let scope_context store ~dir =
  (* Fold from the root down so that nearer ancestors override. *)
  let chain = List.rev (ancestors store dir) in
  List.fold_left
    (fun acc d ->
      match S.context_of store d with
      | None -> acc
      | Some ctx -> C.union ~prefer:`Right acc ctx)
    C.empty chain

(* Resolve an embedded name and report the directory containing the final
   entity (needed to recurse into structured objects). *)
let resolve_at_full store ~dir name =
  let scope = scope_context store ~dir in
  let atoms = N.atoms name in
  match atoms with
  | [] -> (E.undefined, E.undefined)
  | first :: rest ->
      (* The anchor: the nearest ancestor whose context binds [first]. *)
      let anchor =
        List.find_opt
          (fun d ->
            match S.context_of store d with
            | None -> false
            | Some ctx -> C.mem ctx first)
          (ancestors store dir)
      in
      let e1 = C.lookup scope first in
      if E.is_undefined e1 then (E.undefined, E.undefined)
      else
        let anchor = match anchor with Some a -> a | None -> E.undefined in
        let rec walk container current = function
          | [] -> (current, container)
          | a :: rest -> (
              match S.context_of store current with
              | None -> (E.undefined, E.undefined)
              | Some ctx ->
                  let next = C.lookup ctx a in
                  if E.is_undefined next then (E.undefined, E.undefined)
                  else walk current next rest)
        in
        walk anchor e1 rest

let resolve_at store ~dir name = fst (resolve_at_full store ~dir name)

let home_of store ~file =
  let dirs = S.context_objects store in
  List.find_opt
    (fun d ->
      match S.context_of store d with
      | None -> false
      | Some ctx ->
          C.fold
            (fun a e acc ->
              acc
              || (not
                    (N.atom_equal a N.self_atom || N.atom_equal a N.parent_atom))
                 && E.equal e file)
            ctx false)
    dirs

let rule_algol () =
  Naming.Rule.make ~label:"R(file):algol-scope" (fun store occ ->
      match occ with
      | Naming.Occurrence.Embedded { source; _ } ->
          let dir =
            if S.is_context_object store source then Some source
            else home_of store ~file:source
          in
          (match dir with
          | None -> None
          | Some dir -> Some (scope_context store ~dir))
      | Naming.Occurrence.Generated _ | Naming.Occurrence.Received _ -> None)

let rule_reader asg = Naming.Rule.of_activity asg

let resolve_closure store ~dir file =
  let results = ref [] in
  let visited = E.Tbl.create 16 in
  let rec go dir file =
    if not (E.Tbl.mem visited file) then begin
      E.Tbl.replace visited file ();
      List.iter
        (fun r ->
          let target, container = resolve_at_full store ~dir r in
          results := (r, target) :: !results;
          if E.is_defined target && S.data_of store target <> None then
            go container target)
        (refs_of store file)
    end
  in
  go dir file;
  List.rev !results

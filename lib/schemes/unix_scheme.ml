module N = Naming.Name
module E = Naming.Entity

type t = { env : Process_env.t; fs : Vfs.Fs.t }

let default_tree =
  [
    "bin/ls";
    "bin/cat";
    "bin/sh";
    "etc/passwd";
    "etc/hosts";
    "usr/bin/cc";
    "usr/lib/libc.a";
    "usr/include/stdio.h";
    "home/alice/notes.txt";
    "home/alice/src/main.c";
    "home/bob/todo.txt";
    "tmp/";
    "dev/null";
  ]

let build ?(tree = default_tree) store =
  let fs = Vfs.Fs.create ~root_label:"/" store in
  Vfs.Fs.populate fs tree;
  { env = Process_env.create store; fs }

let build_distributed ~machines ?(tree_per_machine = default_tree) store =
  let fs = Vfs.Fs.create ~root_label:"/" store in
  List.iter
    (fun m ->
      Vfs.Fs.populate fs (List.map (fun spec -> m ^ "/" ^ spec) tree_per_machine))
    machines;
  { env = Process_env.create store; fs }

let env t = t.env
let fs t = t.fs
let store t = Vfs.Fs.store t.fs
let root t = Vfs.Fs.root t.fs

let dir_at t path =
  let e = Vfs.Fs.lookup t.fs path in
  if not (Naming.Store.is_context_object (store t) e) then
    invalid_arg (Printf.sprintf "Unix_scheme: %S is not a directory" path);
  e

let spawn ?label ?cwd t =
  let cwd =
    match cwd with None -> root t | Some path -> dir_at t path
  in
  Process_env.spawn ?label ~root:(root t) ~cwd t.env

let spawn_chrooted ?label ~root_path t =
  let r = dir_at t root_path in
  Process_env.spawn ?label ~root:r ~cwd:r t.env

let fork ?label t ~parent = Process_env.fork ?label t.env ~parent

let chdir t a path =
  let e = Process_env.resolve_str t.env ~as_:a path in
  if not (Naming.Store.is_context_object (store t) e) then
    invalid_arg (Printf.sprintf "Unix_scheme.chdir: %S is not a directory" path);
  Process_env.set_cwd t.env a e

let rule t = Process_env.rule t.env

let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let absolute_probes ?(max_depth = 6) t =
  match Naming.Store.context_of (store t) (root t) with
  | None -> []
  | Some ctx ->
      let names =
        Naming.Graph.all_names (store t) ctx ~max_depth:(max_depth - 1) ()
      in
      N.singleton N.root_atom
      :: List.map (fun (n, _e) -> N.cons N.root_atom n) names

(** Per-activity naming environments.

    Operating systems associate each activity with an implicit context —
    "the context of process p" — holding at least a binding for the root
    directory and one for the working directory (paper, section 5.1). This
    module is the backbone shared by all scheme implementations: it couples
    a store with a {!Naming.Rule.Assignment} and manages per-process
    context objects.

    The per-process context is itself a context {e object} in the store, so
    schemes can mutate it (chdir, chroot, mount) and rules pick the change
    up immediately; forking copies the parent's context — after which the
    two diverge, matching the paper's remark that "a parent and a child
    have coherence for all names until one of them modifies its
    context". *)

type t

val create : Naming.Store.t -> t
val store : t -> Naming.Store.t

val assignment : t -> Naming.Rule.Assignment.t
(** The activity ↦ context-object association, shared with rules. *)

val spawn :
  ?label:string ->
  ?root:Naming.Entity.t ->
  ?cwd:Naming.Entity.t ->
  ?extra:(string * Naming.Entity.t) list ->
  t ->
  Naming.Entity.t
(** Creates an activity with a fresh context object binding ["/"] to
    [root], ["."] to [cwd] (default: [root]), plus [extra] bindings. *)

val fork : ?label:string -> t -> parent:Naming.Entity.t -> Naming.Entity.t
(** Creates a child activity whose context object starts as a {e copy} of
    the parent's current context (Unix semantics: inherited, then
    independent). @raise Invalid_argument for an unmanaged parent. *)

val context_object : t -> Naming.Entity.t -> Naming.Entity.t
(** The context object of a managed activity. @raise Invalid_argument
    otherwise. *)

val context : t -> Naming.Entity.t -> Naming.Context.t
(** Its current context value. *)

val set_root : t -> Naming.Entity.t -> Naming.Entity.t -> unit
(** [set_root env a dir] — chroot. *)

val set_cwd : t -> Naming.Entity.t -> Naming.Entity.t -> unit
(** chdir. *)

val set_binding : t -> Naming.Entity.t -> string -> Naming.Entity.t -> unit
(** Adds/overrides any binding in the activity's context (mount-style). *)

val remove_binding : t -> Naming.Entity.t -> string -> unit

val root_of : t -> Naming.Entity.t -> Naming.Entity.t
(** The current ["/"] binding (⊥ if absent). *)

val cwd_of : t -> Naming.Entity.t -> Naming.Entity.t

val activities : t -> Naming.Entity.t list
(** Managed activities in creation order. *)

val rule : t -> Naming.Rule.t
(** R(activity) over this environment's assignment — the common
    operating-system closure mechanism. *)

val resolve :
  ?cache:Naming.Cache.t ->
  ?engine:Naming.Engine.t ->
  t ->
  as_:Naming.Entity.t ->
  Naming.Name.t ->
  Naming.Entity.t
(** Resolves a name generated internally by [as_], under {!rule}.
    Absolute names resolve through the ["/"] binding; a relative name
    whose head is bound directly in the activity's context (a
    per-process attachment) resolves there; any other relative name is
    resolved from the working directory (the ["."] binding). The walk
    goes through [engine] when given, else [cache], else the plain
    interpreter — unless [NAMING_ENGINE] overrides the latter, in which
    case an engine of that kind is built once per environment and
    reused. Every path returns the same entity. *)

val resolve_str :
  ?cache:Naming.Cache.t ->
  ?engine:Naming.Engine.t ->
  t ->
  as_:Naming.Entity.t ->
  string ->
  Naming.Entity.t

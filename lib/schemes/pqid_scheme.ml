module R = Netaddr.Registry
module P = Netaddr.Pqid

type message = { pid : P.t; intended : R.proc }

type t = {
  registry : R.t;
  network : message Dsim.Network.t;
  actors : (R.proc * message Dsim.Actor.t) list;
}

let build ~topology ~engine ~rng ?net_config () =
  let config =
    match net_config with Some c -> c | None -> Dsim.Network.default_config
  in
  let registry = R.create () in
  let network = Dsim.Network.create ~config ~engine ~rng () in
  let actors = ref [] in
  List.iter
    (fun (net_label, machines) ->
      let net = R.add_network registry ~label:net_label in
      List.iter
        (fun (mach_label, nprocs) ->
          let mach = R.add_machine registry ~net ~label:mach_label in
          let node = Dsim.Network.add_node network ~label:mach_label in
          for i = 1 to nprocs do
            let label = Printf.sprintf "%s.p%d" mach_label i in
            let proc = R.add_process registry ~mach ~label in
            let actor = Dsim.Actor.create ~label network ~node ~port:i in
            actors := (proc, actor) :: !actors
          done)
        machines)
    topology;
  { registry; network; actors = List.rev !actors }

let registry t = t.registry
let network t = t.network
let processes t = List.map fst t.actors

let actor_of t proc =
  match List.assoc_opt proc t.actors with
  | Some a -> a
  | None -> invalid_arg "Pqid_scheme.actor_of: unknown process"

let send_pid t ~from ~to_ ~target ~mapped =
  let pid = R.pid_of t.registry ~target ~relative_to:from in
  let pid =
    if mapped then R.map_for_transit t.registry ~sender:from ~receiver:to_ pid
    else pid
  in
  Dsim.Actor.send (actor_of t from) ~to_:(actor_of t to_)
    { pid; intended = target }

let deliveries t =
  List.concat_map
    (fun (proc, actor) ->
      List.map
        (fun env -> (proc, env.Dsim.Network.payload))
        (Dsim.Actor.drain actor))
    t.actors

let resolution_correct t (receiver, msg) =
  match R.resolve t.registry ~from:receiver msg.pid with
  | Some p -> Int.equal (p : R.proc :> int) (msg.intended : R.proc :> int)
  | None -> false

type connection = { holder : R.proc; target : R.proc; held_pid : P.t }

let connect t ~holder ~target ~qualification =
  let held_pid =
    match qualification with
    | `Partial -> R.pid_of t.registry ~target ~relative_to:holder
    | `Full -> R.full_pid t.registry target
  in
  { holder; target; held_pid }

let connection_valid t conn =
  match R.resolve t.registry ~from:conn.holder conn.held_pid with
  | Some p -> Int.equal (p : R.proc :> int) (conn.target : R.proc :> int)
  | None -> false

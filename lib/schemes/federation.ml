module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

type t = { env : Process_env.t; orgs : (string * Vfs.Fs.t) list }

let default_org_tree ~users ~services =
  List.concat_map
    (fun u ->
      [
        Printf.sprintf "users/%s/inbox/" u;
        Printf.sprintf "users/%s/doc/readme.txt" u;
      ])
    users
  @ List.map (fun s -> Printf.sprintf "services/%s" s) services

let build ~orgs store =
  if orgs = [] then invalid_arg "Federation.build: no organisations";
  let fss =
    List.map
      (fun (name, tree) ->
        let fs = Vfs.Fs.create ~root_label:(name ^ ":/") store in
        Vfs.Fs.populate fs tree;
        (name, fs))
      orgs
  in
  { env = Process_env.create store; orgs = fss }

let env t = t.env
let store t = Process_env.store t.env
let orgs t = List.map fst t.orgs

let org_fs t o =
  match List.assoc_opt o t.orgs with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Federation: unknown org %S" o)

let org_root t o = Vfs.Fs.root (org_fs t o)

let federate t ~from ~to_ =
  let from_fs = org_fs t from in
  Vfs.Fs.link from_fs ~dir:(Vfs.Fs.root from_fs) to_ (org_root t to_)

let spawn_in ?label t ~org =
  let r = org_root t org in
  let label = match label with Some l -> Some l | None -> Some org in
  Process_env.spawn ?label ~root:r ~cwd:r t.env

let map_name t ~target_org name =
  ignore (org_fs t target_org);
  if not (N.is_absolute name) then name
  else
    match N.tail name with
    | None -> N.of_strings [ "/"; target_org ]
    | Some rest -> N.append (N.of_strings [ "/"; target_org ]) rest

let rule t = Process_env.rule t.env
let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let space_probes ?(max_depth = 6) t ~org ~space =
  let st = store t in
  let fs = org_fs t org in
  let dir = Vfs.Fs.lookup fs space in
  match S.context_of st dir with
  | None -> []
  | Some ctx ->
      let prefix = N.of_strings [ "/"; space ] in
      let names = Naming.Graph.all_names st ctx ~max_depth:(max_depth - 2) () in
      prefix :: List.map (fun (n, _e) -> N.append prefix n) names

(** Partially qualified identifiers expressed inside the naming model.

    The paper insists that memory addresses, network addresses and
    process identifiers are all {e names} (section 1), and its PQID
    analysis is an instance of the general model: networks and machines
    are context objects, address components are atoms, a pid
    [(n, m, l)] is a compound name, and the qualification level is a
    closure mechanism that picks the starting context — the universe,
    the referrer's network, or the referrer's machine. Renumbering is
    rebinding.

    {!Netaddr.Registry} implements the same semantics with address
    arithmetic (that is what a kernel would do); this module implements
    it with stores, contexts and {!Naming.Resolver} — and a property test
    checks the two agree on every resolution, which is the mechanised
    version of the paper's "our model covers identifiers of all
    kinds". *)

type t

val of_registry : Naming.Store.t -> Netaddr.Registry.t -> t
(** Mirrors the registry's current state into the store: one context
    object for the universe, one per network, one per machine; one
    activity per process. *)

val refresh : t -> unit
(** Re-mirrors after the registry changed (renumbering, moves). The
    entities persist — only bindings change, exactly as the paper
    describes reconfiguration. *)

val store : t -> Naming.Store.t
val universe : t -> Naming.Entity.t
(** The context object binding network addresses. *)

val activity_of : t -> Netaddr.Registry.proc -> Naming.Entity.t

val pid_name : Netaddr.Pqid.t -> Naming.Name.t option
(** The compound name of a pid's qualified components: [(0,0,l)] → ["l"],
    [(0,m,l)] → ["m/l"], [(n,m,l)] → ["n/m/l"]. [None] for the self pid,
    which names no path (it is the identity closure). *)

val resolve :
  t -> from:Netaddr.Registry.proc -> Netaddr.Pqid.t -> Netaddr.Registry.proc option
(** Resolution by naming-graph traversal: choose the starting context
    object by qualification level, then resolve {!pid_name} there. *)

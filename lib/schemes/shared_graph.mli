(** The shared naming graph approach (Figure 4): Andrew-style systems.

    Client subsystems keep private naming trees and additionally attach one
    {e shared} naming tree — in Andrew under the node [/vice]. Only files in
    the shared tree have names that denote the same entity for every
    client ("global names": those prefixed with /vice); local names are
    coherent only within a client. Replicated commands and libraries
    ([/bin], [/usr/lib], …) are locally instantiated on every client, so
    their names are only {e weakly} coherent (paper, sections 5 and 5.2). *)

type t

val build :
  clients:string list ->
  ?attach_name:string ->
  ?local_tree:string list ->
  ?shared_tree:string list ->
  Naming.Store.t ->
  t
(** [attach_name] defaults to ["vice"]. [local_tree] is each client's
    private tree (default: a small home/tmp layout); [shared_tree] the
    shared one (default: packages and project files). *)

val default_local_tree : string list
val default_shared_tree : string list

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val shared_fs : t -> Vfs.Fs.t
val clients : t -> string list
val client_fs : t -> string -> Vfs.Fs.t
val client_root : t -> string -> Naming.Entity.t
val attach_name : t -> string

val replication : t -> Naming.Replication.t
(** Replica groups declared by {!replicate_local}. *)

val replicate_local : t -> path:string -> content:string -> unit
(** Creates the file at [path] in {e every} client's local tree with
    identical content and declares the copies as one replica group — the
    paper's replicated commands and libraries. *)

val spawn_on : ?label:string -> t -> client:string -> Naming.Entity.t
(** A process rooted at its client's local root. *)

val remote_exec :
  ?label:string ->
  t ->
  parent:Naming.Entity.t ->
  client:string ->
  Naming.Entity.t
(** Andrew-style remote execution: the child runs rooted at the {e remote}
    client's tree, so only shared-tree entities can be passed as
    arguments (the paper: "Andrew ... therefore only entities in the
    shared naming graph can be passed as argument"). *)

val rule : t -> Naming.Rule.t
val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val shared_probes : ?max_depth:int -> t -> Naming.Name.t list
(** Names under [/<attach_name>] — the "global" names. *)

val local_probes : ?max_depth:int -> t -> client:string -> Naming.Name.t list
(** ["/"]-rooted names of one client's tree (the shared attachment edge is
    excluded so the two probe sets are disjoint). *)

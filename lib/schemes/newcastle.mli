(** The Newcastle Connection (Figure 3).

    A single naming tree is created from the individual trees of several
    machines by adding a new super-root whose entries are the machines'
    roots; the Unix [".."] notation refers to nodes above a machine's
    root. Processes on different machines have {e different} bindings for
    their root directory: typically R(p)(/) is the root of the machine on
    which p executes. Hence there is coherence for ["/"]-names only among
    processes on the same machine, and incoherence across machine
    boundaries — but a simple syntactic rule maps names across machines
    (paper, section 5.1).

    During remote execution the child's root is bound either to the root
    of the invoking machine (coherence for parameters) or to the root of
    the executing machine (access to local objects) — the two policies of
    {!remote_exec}. *)

type t

val build :
  machines:string list -> ?tree:string list -> Naming.Store.t -> t
(** One Unix tree per machine label ([tree] defaults to
    {!Unix_scheme.default_tree}), joined under a fresh super-root. Each
    machine root's [".."] is rebound to the super-root. *)

val join : Naming.Store.t -> (string * t) list -> t
(** The paper: "The Newcastle Connection is a distributed system that can
    be extended recursively because each extended system is still a Unix
    system with a single tree." [join store \[("sysA", tA); ("sysB", tB)\]]
    creates a fresh super-root with one entry per system, rebinding each
    old super-root's [".."] to it. In the joined system machines are named
    ["<sys>.<machine>"], [".."] climbs two levels from a machine root, and
    {!map_name} produces correspondingly deeper [/../../<sys>/<machine>/...]
    names. The systems must share the given store; the joined system
    reuses the first system's process environment.
    @raise Invalid_argument on fewer than two systems. *)

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val super_root : t -> Naming.Entity.t
val machines : t -> string list
val fs_of : t -> string -> Vfs.Fs.t
(** @raise Invalid_argument for an unknown machine. *)

val machine_root : t -> string -> Naming.Entity.t

val spawn_on : ?label:string -> t -> machine:string -> Naming.Entity.t
(** A process whose ["/"] and ["."] bind to its machine's root. *)

val machine_of : t -> Naming.Entity.t -> string
(** The machine whose root the activity's ["/"] currently binds; derived
    from the binding, so a remote child under the invoker-root policy
    reports its parent's machine. @raise Invalid_argument when the root
    binding is not a machine root. *)

type exec_policy =
  | Invoker_root
      (** child's root = parent's root: names passed as parameters stay
          coherent. *)
  | Remote_root
      (** child's root = executing machine's root: the child can reach
          local objects by their customary names, parameters break. *)

val remote_exec :
  ?label:string ->
  t ->
  parent:Naming.Entity.t ->
  machine:string ->
  policy:exec_policy ->
  Naming.Entity.t
(** Spawns a child of [parent] on [machine] under the given root-binding
    policy. The working directory follows the root binding. *)

val map_name :
  t -> from_machine:string -> to_machine:string -> Naming.Name.t -> Naming.Name.t
(** The "simple rule to map names across machines": an absolute name of
    [from_machine] is rewritten as [/../<from_machine>/...] so that it
    denotes the same entity when resolved on [to_machine]. Names that are
    not absolute are returned unchanged. *)

val rule : t -> Naming.Rule.t
val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val absolute_probes : ?max_depth:int -> t -> machine:string -> Naming.Name.t list
(** ["/"]-rooted names of one machine's tree. *)

(** Jade-style per-user name spaces with union directories.

    The paper cites the Jade file system (Rao & Peterson — reference
    [13]) as evidence for "a case against a unique global name space":
    each user assembles a {e personal} name space from multiple,
    autonomous file services, and one name may be backed by an ordered
    {e search path} of directories (a union directory: the first service
    that can resolve a component wins).

    We model a union directory at resolution time — the model's contexts
    stay plain functions; the union is a scheme-level closure mechanism,
    like the Algol rule of {!Embedded}. A user's namespace maps attachment
    names to ordered lists of backing directories. *)

type t

val build : services:(string * string list) list -> Naming.Store.t -> t
(** One autonomous file service per [(name, tree)]. *)

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val services : t -> string list
val service_fs : t -> string -> Vfs.Fs.t
val service_root : t -> string -> Naming.Entity.t

val new_user :
  ?label:string ->
  t ->
  mounts:(string * string list) list ->
  Naming.Entity.t
(** A user (activity) with a personal namespace: each [(name, services)]
    pair attaches, under [name], the ordered union of the listed
    services' roots. E.g. [("bin", \["local"; "campus"\])] makes
    [bin/ls] search the local service first, then the campus one. *)

val add_mount :
  t -> Naming.Entity.t -> name:string -> services:string list -> unit

val remove_mount : t -> Naming.Entity.t -> string -> unit

val resolve : t -> as_:Naming.Entity.t -> Naming.Name.t -> Naming.Entity.t
(** Union-aware resolution in the user's namespace: the first atom names
    a mount; the remainder is resolved in each backing directory in
    order, first hit wins. Plain names with no mount resolve to ⊥. *)

val resolve_str : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val which : t -> as_:Naming.Entity.t -> Naming.Name.t -> string option
(** The service that won the union search, for diagnostics. *)

val mounts_of : t -> Naming.Entity.t -> (string * string list) list

val probes : ?max_depth:int -> t -> Naming.Entity.t -> Naming.Name.t list
(** Resolvable names in the user's namespace (mount-qualified). *)

module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store
module C = Naming.Context

type t = { env : Process_env.t; subsystems : (string * Vfs.Fs.t) list }

let build ~subsystems store =
  if subsystems = [] then invalid_arg "Per_process.build: no subsystems";
  let fss =
    List.map
      (fun (name, tree) ->
        let fs = Vfs.Fs.create ~root_label:(name ^ ":/") store in
        Vfs.Fs.populate fs tree;
        (name, fs))
      subsystems
  in
  { env = Process_env.create store; subsystems = fss }

let env t = t.env
let store t = Process_env.store t.env
let subsystems t = List.map fst t.subsystems

let subsystem_fs t s =
  match List.assoc_opt s t.subsystems with
  | Some fs -> fs
  | None -> invalid_arg (Printf.sprintf "Per_process: unknown subsystem %S" s)

let subsystem_root t s = Vfs.Fs.root (subsystem_fs t s)

let make_private_root ?(label = "ns") t =
  let root = S.create_context_object ~label (store t) in
  S.bind (store t) ~dir:root N.self_atom root;
  S.bind (store t) ~dir:root N.parent_atom root;
  root

let spawn ?label ?(attach = []) t =
  let ns_label = match label with Some l -> l ^ ".ns" | None -> "ns" in
  let root = make_private_root ~label:ns_label t in
  List.iter
    (fun (as_name, subsystem) ->
      S.bind (store t) ~dir:root (N.atom as_name) (subsystem_root t subsystem))
    attach;
  Process_env.spawn ?label ~root ~cwd:root t.env

let private_root t a =
  let r = Process_env.root_of t.env a in
  if E.is_undefined r then
    invalid_arg "Per_process.private_root: process has no root"
  else r

let attach_dir t a ~as_name dir =
  S.bind (store t) ~dir:(private_root t a) (N.atom as_name) dir

let attach t a ~as_name ~subsystem =
  attach_dir t a ~as_name (subsystem_root t subsystem)

let detach t a name = S.unbind (store t) ~dir:(private_root t a) (N.atom name)

let remote_exec ?label ?(local_name = "local") t ~parent ~subsystem =
  (* Copy-on-fork of the private root: the namespaces then diverge. *)
  let parent_root = private_root t parent in
  let parent_ns =
    match S.context_of (store t) parent_root with
    | Some c -> c
    | None -> assert false
  in
  let ns_label = match label with Some l -> l ^ ".ns" | None -> "ns" in
  let child_root =
    S.create_context_object ~label:ns_label ~ctx:parent_ns (store t)
  in
  S.bind (store t) ~dir:child_root N.self_atom child_root;
  S.bind (store t) ~dir:child_root N.parent_atom child_root;
  S.bind (store t) ~dir:child_root (N.atom local_name)
    (subsystem_root t subsystem);
  let child = Process_env.fork ?label t.env ~parent in
  Process_env.set_root t.env child child_root;
  Process_env.set_cwd t.env child child_root;
  child

let rule t = Process_env.rule t.env
let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let namespace_probes ?(max_depth = 6) t a =
  let root = private_root t a in
  match S.context_of (store t) root with
  | None -> []
  | Some ctx ->
      let names =
        Naming.Graph.all_names (store t) ctx ~max_depth:(max_depth - 1) ()
      in
      List.map (fun (n, _e) -> N.cons N.root_atom n) names

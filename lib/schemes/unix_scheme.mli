(** The single-naming-graph approach: Unix, and Locus/V-style global trees.

    Section 5.1 of the paper: one naming tree shared by all activities; the
    context R(p) of a process has two bindings, the root directory and the
    working directory. Typically every process has the same root, giving
    coherence for all names starting with ["/"]; processes that are
    chrooted (different root binding) lose it. Parent and child have
    coherence for {e all} names until one modifies its context.

    Locus and the V system combine subtrees on different machines into one
    tree and bind every process's root to the single tree root — the
    [build_distributed] constructor. *)

type t

val build : ?tree:string list -> Naming.Store.t -> t
(** A single-machine world. [tree] uses {!Vfs.Fs.populate} syntax; the
    default is a small conventional Unix layout. *)

val build_distributed :
  machines:string list -> ?tree_per_machine:string list -> Naming.Store.t -> t
(** A Locus/V-style world: per-machine subtrees ["/<machine>"] combined
    under one root shared by every process. *)

val default_tree : string list

val env : t -> Process_env.t
val fs : t -> Vfs.Fs.t
val store : t -> Naming.Store.t
val root : t -> Naming.Entity.t

val spawn : ?label:string -> ?cwd:string -> t -> Naming.Entity.t
(** A process with the shared root; [cwd] is a path in the tree (default
    the root). @raise Invalid_argument when [cwd] does not name a
    directory. *)

val spawn_chrooted : ?label:string -> root_path:string -> t -> Naming.Entity.t
(** A process whose ["/"] binds to the directory at [root_path] — the
    paper's "in Unix, all processes need not have the same root". *)

val fork : ?label:string -> t -> parent:Naming.Entity.t -> Naming.Entity.t
val chdir : t -> Naming.Entity.t -> string -> unit
(** @raise Invalid_argument when the path does not name a directory in the
    process's current namespace. *)

val rule : t -> Naming.Rule.t
(** R(activity). *)

val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val absolute_probes : ?max_depth:int -> t -> Naming.Name.t list
(** Every ["/"]-rooted name of the shared tree up to [max_depth]
    (default 6) — the probe set used by the experiments. *)

(** Per-process namespaces (Plan 9, extended Waterloo Port; section 6, II).

    Each process has its own private root — a context object of its own —
    to which the naming trees of the subsystems known to the process are
    attached. This decouples a process from the context of its execution
    site: a process executing on one subsystem may use the context of
    another. Arranging the contexts of two communicating activities so
    that they agree on the names exchanged is the paper's solution II, and
    the basis of its "powerful remote execution facility": the remote
    child inherits the parent's namespace (parameters stay coherent) {e
    and} attaches the executing machine's tree (local objects stay
    reachable). *)

type t

val build :
  subsystems:(string * string list) list -> Naming.Store.t -> t
(** One file tree per named subsystem; no process namespaces yet. *)

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val subsystems : t -> string list
val subsystem_fs : t -> string -> Vfs.Fs.t
val subsystem_root : t -> string -> Naming.Entity.t

val spawn :
  ?label:string -> ?attach:(string * string) list -> t -> Naming.Entity.t
(** A process with a fresh private root; [attach] lists
    [(name, subsystem)] pairs to attach initially, e.g.
    [\["fs", "port1"\]] makes the subsystem reachable as [/fs/...]. *)

val attach : t -> Naming.Entity.t -> as_name:string -> subsystem:string -> unit
(** Attaches a subsystem tree into the process's private root. *)

val attach_dir :
  t -> Naming.Entity.t -> as_name:string -> Naming.Entity.t -> unit
(** Attaches an arbitrary directory (e.g. another process's cwd). *)

val detach : t -> Naming.Entity.t -> string -> unit
val private_root : t -> Naming.Entity.t -> Naming.Entity.t

val remote_exec :
  ?label:string ->
  ?local_name:string ->
  t ->
  parent:Naming.Entity.t ->
  subsystem:string ->
  Naming.Entity.t
(** Spawns a child that {e inherits a copy of} the parent's namespace and
    additionally attaches the executing subsystem's tree under
    [local_name] (default ["local"]). Parent's names remain valid in the
    child; the child also reaches its execution site. *)

val rule : t -> Naming.Rule.t
val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val namespace_probes : ?max_depth:int -> t -> Naming.Entity.t -> Naming.Name.t list
(** ["/"]-rooted names currently resolvable by the given process. *)

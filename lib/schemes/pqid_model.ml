module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store
module R = Netaddr.Registry

type t = {
  store : S.t;
  registry : R.t;
  universe : E.t;
  net_objs : (R.net * E.t) list;
  mach_objs : (R.mach * E.t) list;
  proc_acts : (R.proc * E.t) list;
}

let addr_atom i = N.atom (string_of_int i)

let mirror t =
  (* Rebuild every context from the registry's current addressing. *)
  S.set_context t.store t.universe Naming.Context.empty;
  List.iter
    (fun (net, obj) ->
      S.set_context t.store obj Naming.Context.empty;
      S.bind t.store ~dir:t.universe (addr_atom (R.naddr t.registry net)) obj)
    t.net_objs;
  List.iter
    (fun (mach, obj) ->
      S.set_context t.store obj Naming.Context.empty;
      let net_obj = List.assoc (R.network_of_mach t.registry mach) t.net_objs in
      S.bind t.store ~dir:net_obj (addr_atom (R.maddr t.registry mach)) obj)
    t.mach_objs;
  List.iter
    (fun (proc, act) ->
      let mach_obj = List.assoc (R.machine_of_proc t.registry proc) t.mach_objs in
      S.bind t.store ~dir:mach_obj (addr_atom (R.laddr t.registry proc)) act)
    t.proc_acts

let of_registry store registry =
  let universe = S.create_context_object ~label:"universe" store in
  let net_objs =
    List.map
      (fun net ->
        (net, S.create_context_object ~label:(R.label_net registry net) store))
      (R.networks registry)
  in
  let mach_objs =
    List.concat_map
      (fun net ->
        List.map
          (fun mach ->
            ( mach,
              S.create_context_object ~label:(R.label_mach registry mach) store
            ))
          (R.machines registry net))
      (R.networks registry)
  in
  let proc_acts =
    List.map
      (fun proc ->
        (proc, S.create_activity ~label:(R.label_proc registry proc) store))
      (R.all_processes registry)
  in
  let t = { store; registry; universe; net_objs; mach_objs; proc_acts } in
  mirror t;
  t

let refresh = mirror
let store t = t.store
let universe t = t.universe

let activity_of t proc =
  match List.assoc_opt proc t.proc_acts with
  | Some a -> a
  | None -> invalid_arg "Pqid_model.activity_of: unknown process"

let pid_name pid =
  match Netaddr.Pqid.qualification pid with
  | Netaddr.Pqid.Self -> None
  | Netaddr.Pqid.Machine_local ->
      Some (N.singleton (addr_atom pid.Netaddr.Pqid.laddr))
  | Netaddr.Pqid.Network_local ->
      Some
        (N.of_atoms
           [ addr_atom pid.Netaddr.Pqid.maddr; addr_atom pid.Netaddr.Pqid.laddr ])
  | Netaddr.Pqid.Fully_qualified ->
      Some
        (N.of_atoms
           [
             addr_atom pid.Netaddr.Pqid.naddr;
             addr_atom pid.Netaddr.Pqid.maddr;
             addr_atom pid.Netaddr.Pqid.laddr;
           ])

let proc_of_activity t act =
  List.find_opt (fun (_p, a) -> E.equal a act) t.proc_acts
  |> Option.map fst

let resolve t ~from pid =
  (* The closure mechanism: qualification level selects the context
     object in which the compound name is resolved. *)
  let start =
    match Netaddr.Pqid.qualification pid with
    | Netaddr.Pqid.Self -> None (* no resolution at all *)
    | Netaddr.Pqid.Machine_local ->
        List.assoc_opt (R.machine_of_proc t.registry from) t.mach_objs
    | Netaddr.Pqid.Network_local ->
        List.assoc_opt
          (R.network_of_mach t.registry (R.machine_of_proc t.registry from))
          t.net_objs
    | Netaddr.Pqid.Fully_qualified -> Some t.universe
  in
  match (start, pid_name pid) with
  | None, None -> Some from (* the self pid *)
  | Some ctxobj, Some name ->
      let e = Naming.Resolver.resolve_in t.store ctxobj name in
      if E.is_activity e then proc_of_activity t e else None
  | _ -> None

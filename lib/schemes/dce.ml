module N = Naming.Name
module E = Naming.Entity
module S = Naming.Store

let global_atom = "..."
let cell_atom = ".:"

type t = {
  env : Process_env.t;
  global_fs : Vfs.Fs.t;
  cells : (string * E.t) list;  (** cell name → cell directory *)
  machines : (string * (string * Vfs.Fs.t)) list;
      (** machine → (cell, local fs) *)
}

let default_local_tree = [ "tmp/"; "opt/site.conf" ]

let default_cell_tree =
  [ "services/print"; "services/auth"; "profiles/default"; "hosts/gateway" ]

let default_global_tree = [ "registry/orgs.txt" ]

let build ~cells ?(local_tree = default_local_tree)
    ?(cell_tree = default_cell_tree) ?(global_tree = default_global_tree) store
    =
  if cells = [] then invalid_arg "Dce.build: no cells";
  let global_fs = Vfs.Fs.create ~root_label:"gds:/" store in
  Vfs.Fs.populate global_fs global_tree;
  let cell_dirs =
    List.map
      (fun (cell, _machines) ->
        let dir = Vfs.Fs.mkdir_path global_fs ("cells/" ^ cell) in
        let sub = Vfs.Fs.of_root store dir in
        Vfs.Fs.populate sub cell_tree;
        (cell, dir))
      cells
  in
  let machines =
    List.concat_map
      (fun (cell, machine_names) ->
        List.map
          (fun m ->
            let fs = Vfs.Fs.create ~root_label:(m ^ ":/") store in
            Vfs.Fs.populate fs local_tree;
            Vfs.Fs.link fs ~dir:(Vfs.Fs.root fs) global_atom
              (Vfs.Fs.root global_fs);
            let cell_dir = List.assoc cell cell_dirs in
            Vfs.Fs.link fs ~dir:(Vfs.Fs.root fs) cell_atom cell_dir;
            (m, (cell, fs)))
          machine_names)
      cells
  in
  { env = Process_env.create store; global_fs; cells = cell_dirs; machines }

let env t = t.env
let store t = Process_env.store t.env
let cells t = List.map fst t.cells
let machines t = List.map fst t.machines

let machine_entry t m =
  match List.assoc_opt m t.machines with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Dce: unknown machine %S" m)

let cell_of_machine t m = fst (machine_entry t m)
let machine_root t m = Vfs.Fs.root (snd (machine_entry t m))

let cell_dir t c =
  match List.assoc_opt c t.cells with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Dce: unknown cell %S" c)

let global_root t = Vfs.Fs.root t.global_fs

let add_local_context t ~machine ~name ~dir =
  if not (S.is_context_object (store t) dir) then
    invalid_arg "Dce.add_local_context: not a directory";
  S.bind (store t) ~dir:(machine_root t machine) (N.atom name) dir

let spawn_on ?label t ~machine =
  let r = machine_root t machine in
  let label = match label with Some l -> Some l | None -> Some machine in
  Process_env.spawn ?label ~root:r ~cwd:r t.env

let rule t = Process_env.rule t.env
let resolve t ~as_ s = Process_env.resolve_str t.env ~as_ s

let names_under t dir ~max_depth =
  match S.context_of (store t) dir with
  | None -> []
  | Some ctx -> Naming.Graph.all_names (store t) ctx ~max_depth ()

let cell_relative_probes ?(max_depth = 6) t ~cell =
  let dir = cell_dir t cell in
  let prefix = N.of_strings [ "/"; cell_atom ] in
  prefix
  :: List.map
       (fun (n, _e) -> N.append prefix n)
       (names_under t dir ~max_depth:(max_depth - 2))

let global_probes ?(max_depth = 6) t =
  let prefix = N.of_strings [ "/"; global_atom ] in
  prefix
  :: List.map
       (fun (n, _e) -> N.append prefix n)
       (names_under t (global_root t) ~max_depth:(max_depth - 2))

let map_cell_name t ~cell name =
  ignore (cell_dir t cell);
  let cell_prefix = N.of_strings [ "/"; cell_atom ] in
  match N.drop_prefix ~prefix:cell_prefix name with
  | None ->
      if N.equal name cell_prefix then
        N.of_strings [ "/"; global_atom; "cells"; cell ]
      else name
  | Some rest ->
      N.append (N.of_strings [ "/"; global_atom; "cells"; cell ]) rest

(** OSF DCE-style naming: a global directory service plus one local cell.

    In DCE the shared naming tree (the Global Directory Service) is
    attached in each local tree under ["/..."], and an additional local
    context — the {e cell}, an organisational unit — is reached via
    ["/.:"]. A machine may know only one local cell, so names relative to
    the cell context are incoherent across cell boundaries; the paper uses
    this to argue that a single local context is not enough (section
    5.2). Cells are themselves reachable globally under
    ["/.../cells/<cell>"], which is what makes cell-relative names
    {e mappable} even though they are not coherent. *)

type t

val global_atom : string
(** ["..."] *)

val cell_atom : string
(** [".:"] *)

val build :
  cells:(string * string list) list ->
  ?local_tree:string list ->
  ?cell_tree:string list ->
  ?global_tree:string list ->
  Naming.Store.t ->
  t
(** [cells] lists each cell with its member machines. Every cell's tree
    ([cell_tree], default: services and profiles) is created under
    [/.../cells/<cell>] in the global tree; every machine gets a private
    [local_tree] with ["..."] bound to the global root and [".:"] bound to
    its cell's directory. *)

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val cells : t -> string list
val machines : t -> string list
val cell_of_machine : t -> string -> string
val machine_root : t -> string -> Naming.Entity.t
val cell_dir : t -> string -> Naming.Entity.t
val global_root : t -> Naming.Entity.t

val add_local_context : t -> machine:string -> name:string -> dir:Naming.Entity.t -> unit
(** The paper: "A single local context such as the cell is not going to be
    sufficient; it is useful to be able to use names relative to several
    local contexts such as those of the divisions, departments, and
    projects within an organization." Binds an additional local context
    (e.g. a department directory) under [name] in the machine's root —
    adding more non-global names, hence more incoherence, which E10's DCE
    row quantifies. *)

val spawn_on : ?label:string -> t -> machine:string -> Naming.Entity.t
val rule : t -> Naming.Rule.t
val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val cell_relative_probes : ?max_depth:int -> t -> cell:string -> Naming.Name.t list
(** Names of the form [/.:/...] for entities of the given cell. *)

val global_probes : ?max_depth:int -> t -> Naming.Name.t list
(** Names of the form [/.../...]. *)

val map_cell_name : t -> cell:string -> Naming.Name.t -> Naming.Name.t
(** Rewrites a [/.:/x] name into its globally valid [/.../cells/<cell>/x]
    form — the human "prefix mapping" of section 7 applied to cells.
    Non-cell-relative names are returned unchanged. *)

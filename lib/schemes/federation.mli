(** Shared name spaces in limited scopes (section 7).

    The paper's overall architecture: rather than one global name space,
    organisations share name spaces — home directories under [/users],
    services under [/services] — attached by a {e common name} to the
    contexts of the activities in the scope. Within an organisation these
    names are coherent; across organisations the common name cannot be
    used ([/users] means something different in each), and one relies on
    prefix mapping ([/org2/users/...]) by humans, plus the section-6
    mechanisms for embedded and exchanged names. *)

type t

val build : orgs:(string * string list) list -> Naming.Store.t -> t
(** One organisation per [(name, tree)]; the default-tree helper
    {!default_org_tree} provides [/users] and [/services] layouts. *)

val default_org_tree : users:string list -> services:string list -> string list

val env : t -> Process_env.t
val store : t -> Naming.Store.t
val orgs : t -> string list
val org_fs : t -> string -> Vfs.Fs.t
val org_root : t -> string -> Naming.Entity.t

val federate : t -> from:string -> to_:string -> unit
(** Attaches [to_]'s root in [from]'s root under the name [to_] — after
    which [/<to_>/users/...] works for activities of [from]. *)

val spawn_in : ?label:string -> t -> org:string -> Naming.Entity.t

val map_name : t -> target_org:string -> Naming.Name.t -> Naming.Name.t
(** The human prefix-mapping: [/users/x] becomes [/<target_org>/users/x]
    (similarly for any absolute name). *)

val rule : t -> Naming.Rule.t
val resolve : t -> as_:Naming.Entity.t -> string -> Naming.Entity.t

val space_probes :
  ?max_depth:int -> t -> org:string -> space:string -> Naming.Name.t list
(** Names under a shared space, e.g. [space = "users"] yields
    [/users/...] probes of that organisation. *)

(** Embedded names and the Algol-scope resolution rule (Figure 6).

    Names can be embedded in objects to build structured objects — a LaTeX
    document including chapter files, a C source including headers, an
    executable split over several files. The meaning of the structured
    object depends on the objects denoted by the embedded names, so when
    the object is shared it is desirable that the embedded names mean the
    same thing for every reader (paper, sections 4 and 6, Example 2).

    The paper's scheme resolves a name embedded in node [n] with the
    resolution rule R(file): search up the tree from [n], through the
    [".."] bindings, for the closest ancestor with a binding matching the
    first component — Algol block scoping with subtrees for blocks. We
    formalise the search as a single {e scope context} (the union of the
    ancestor contexts, nearest ancestor winning), which makes R(file) a
    bona-fide resolution rule M → C.

    Embedded references are stored in the file's content using a
    [@ref <name>] line syntax, so copying a subtree (which copies file
    data) copies the references — no side tables to keep consistent. *)

val ref_marker : string
(** ["@ref "]. *)

val make_content : ?text:string -> refs:Naming.Name.t list -> unit -> string
(** Content consisting of one [@ref] line per reference followed by the
    free text. *)

val refs_of_content : string -> Naming.Name.t list
(** Parses [@ref] lines; malformed names are ignored. *)

val refs_of : Naming.Store.t -> Naming.Entity.t -> Naming.Name.t list
(** References embedded in a file object (empty for non-files). *)

val add_ref : Naming.Store.t -> Naming.Entity.t -> Naming.Name.t -> unit
(** Appends a reference to a file's content.
    @raise Invalid_argument for non-files. *)

val ancestors : Naming.Store.t -> Naming.Entity.t -> Naming.Entity.t list
(** The [".."] chain from the given directory up to (and including) the
    fixpoint root, nearest first. Cycles are cut. *)

val scope_context : Naming.Store.t -> dir:Naming.Entity.t -> Naming.Context.t
(** The effective context of a node: union of the contexts along
    {!ancestors}, the nearest ancestor overriding — the Algol scope
    chain collapsed into one context. *)

val resolve_at : Naming.Store.t -> dir:Naming.Entity.t -> Naming.Name.t -> Naming.Entity.t
(** Resolution of an embedded name whose containing file lives in [dir],
    under the Algol-scope rule: the first component is looked up through
    the scope chain; the rest is resolved from there. *)

val home_of : Naming.Store.t -> file:Naming.Entity.t -> Naming.Entity.t option
(** A directory binding the file (its "home"), found by scanning; [None]
    if the file is not linked anywhere. When a file is hard-linked into
    several directories the first in store order is returned — readers
    that care should resolve via the directory they actually used
    ({!resolve_at}). *)

val rule_algol : unit -> Naming.Rule.t
(** R(file): for an [Embedded] occurrence, the scope context of the
    source's home directory (if the source is itself a directory, of the
    source). Selects no context for other occurrence kinds. *)

val rule_reader : Naming.Rule.Assignment.t -> Naming.Rule.t
(** The baseline that operating systems use: embedded names resolved in
    the {e reader}'s context, R(activity) — the rule under which shared
    structured objects lose coherence. *)

(** {1 Structured-object helpers for the experiments} *)

val resolve_closure :
  Naming.Store.t ->
  dir:Naming.Entity.t ->
  Naming.Entity.t ->
  (Naming.Name.t * Naming.Entity.t) list
(** Transitively resolves a structured object: returns every embedded
    reference (of the given file and, recursively, of referenced files)
    with its denotation under the Algol rule. The [dir] is where the
    root file lives. Cycles between files are cut. Reference resolution
    failures appear as ⊥ denotations. *)

type config = {
  min_severity : Diagnostic.severity;
  passes : string list option;
  fuel : int;
  alias_depth : int;
}

let default_config =
  {
    min_severity = Diagnostic.Info;
    passes = None;
    fuel = Predict.default_fuel;
    alias_depth = 4;
  }

type pass = {
  id : string;
  doc : string;
  run : config -> Subject.t -> Diagnostic.t list;
}

let all_passes =
  [
    {
      id = "structure";
      doc = "dot and foreign-binding conventions (NG001-NG004)";
      run = (fun _cfg t -> Passes.structure t);
    };
    {
      id = "reachability";
      doc = "objects unreachable from every activity root (NG005)";
      run = (fun _cfg t -> Passes.reachability t);
    };
    {
      id = "crosslinks";
      doc = "cross-tree links and dangling cross-links (NG006-NG007)";
      run = (fun _cfg t -> Passes.crosslinks t);
    };
    {
      id = "cycles";
      doc = "directed cycles through non-dot edges (NG008)";
      run = (fun _cfg t -> Passes.cycles t);
    };
    {
      id = "aliases";
      doc = "entities with several non-dot names (NG009)";
      run = (fun cfg t -> Passes.aliases ~max_depth:cfg.alias_depth t);
    };
    {
      id = "coherence";
      doc = "static coherence prediction over the probe names (NG010-NG011)";
      run = (fun cfg t -> Passes.coherence ~fuel:cfg.fuel t);
    };
  ]

type report = {
  label : string;
  activities : int;
  objects : int;
  context_objects : int;
  probes : int;
  passes_run : string list;
  diagnostics : Diagnostic.t list;
  errors : int;
  warnings : int;
  infos : int;
}

let selected_passes cfg =
  match cfg.passes with
  | None -> all_passes
  | Some ids ->
      List.map
        (fun id ->
          match List.find_opt (fun p -> String.equal p.id id) all_passes with
          | Some p -> p
          | None ->
              invalid_arg (Printf.sprintf "Engine.analyze: unknown pass %S" id))
        ids

let assemble ?(min_severity = Diagnostic.Info) ~label ~activities ~objects
    ~context_objects ~probes ~passes_run diagnostics =
  let diagnostics = List.stable_sort Diagnostic.compare diagnostics in
  (* Cross-pass dedup: two passes reporting the same (code, message,
     pass, loc, name) finding — adjacent after the total-order sort —
     collapse to one, so reports are deterministic sets, not bags. *)
  let diagnostics =
    let rec dedup = function
      | a :: (b :: _ as rest) ->
          if Diagnostic.compare a b = 0 then dedup rest else a :: dedup rest
      | short -> short
    in
    dedup diagnostics
  in
  let count sev =
    List.length
      (List.filter (fun d -> d.Diagnostic.severity = sev) diagnostics)
  in
  let min_rank = Diagnostic.severity_rank min_severity in
  {
    label;
    activities;
    objects;
    context_objects;
    probes;
    passes_run;
    diagnostics =
      List.filter
        (fun d -> Diagnostic.severity_rank d.Diagnostic.severity >= min_rank)
        diagnostics;
    errors = count Diagnostic.Error;
    warnings = count Diagnostic.Warning;
    infos = count Diagnostic.Info;
  }

let analyze ?(config = default_config) ~label (t : Subject.t) =
  let passes = selected_passes config in
  let diagnostics = List.concat_map (fun p -> p.run config t) passes in
  let store = t.Subject.store in
  assemble ~min_severity:config.min_severity ~label
    ~activities:(List.length t.Subject.activities)
    ~objects:(List.length (Naming.Store.objects store))
    ~context_objects:(List.length (Naming.Store.context_objects store))
    ~probes:(List.length t.Subject.probes)
    ~passes_run:(List.map (fun p -> p.id) passes)
    diagnostics

let analyze_many ?config ?jobs subjects =
  (* Validate pass selection once, up front: an unknown pass id should
     raise on the caller's stack, not inside a worker domain. *)
  (match config with Some cfg -> ignore (selected_passes cfg) | None -> ());
  match Naming.Pool.get ?jobs () with
  | None -> List.map (fun (label, t) -> analyze ?config ~label t) subjects
  | Some pool ->
      Naming.Pool.map pool
        (fun (label, t) ->
          Naming.Store.read_only t.Subject.store (fun () ->
              analyze ?config ~label t))
        subjects

let has_errors r = r.errors > 0
let exit_code reports = if List.exists has_errors reports then 1 else 0

let pp store ppf r =
  Format.fprintf ppf
    "analyze %s: %d activities, %d objects (%d contexts), %d probes@\n"
    r.label r.activities r.objects r.context_objects r.probes;
  Format.fprintf ppf "passes: %s@\n" (String.concat " " r.passes_run);
  List.iter
    (fun d -> Format.fprintf ppf "  %a@\n" (Diagnostic.pp store) d)
    r.diagnostics;
  Format.fprintf ppf "summary: %d error(s), %d warning(s), %d info(s)"
    r.errors r.warnings r.infos

let to_json store r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("activities", Json.Int r.activities);
      ("objects", Json.Int r.objects);
      ("context_objects", Json.Int r.context_objects);
      ("probes", Json.Int r.probes);
      ("passes", Json.List (List.map (fun p -> Json.String p) r.passes_run));
      ( "counts",
        Json.Obj
          [
            ("error", Json.Int r.errors);
            ("warning", Json.Int r.warnings);
            ("info", Json.Int r.infos);
          ] );
      ( "diagnostics",
        Json.List (List.map (Diagnostic.to_json store) r.diagnostics) );
    ]

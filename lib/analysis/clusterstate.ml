(* Abstract interpretation of the replicated name service: per-write
   acceptance verdicts with time bounds, Lamport-stamp intervals, and a
   may-propagation (happens-before) relation widened across anti-entropy
   rounds. Everything here mirrors the concrete protocol in
   [Dsim.Nameserver] / [Dsim.Chaos] / [Dsim.Rpc]; each Must/Never fact
   is a claim about EVERY execution of the schedule, so the replay
   cross-validation in the test suite holds by construction. *)

module Ns = Dsim.Nameserver
module Ch = Dsim.Chaos
module N = Naming.Name

type tri = Must | May | Never

let tri_to_string = function Must -> "must" | May -> "may" | Never -> "never"

let eps = Bounds.eps

type write = {
  index : int;  (** position in the workload *)
  time : float;  (** client issue time *)
  origin : int;  (** client = home replica id *)
  path : N.t;  (** absolute (root-prepended) directory path *)
  atom : N.atom;
  target : string option;
  nacked : bool;  (** statically Nack'd: unknown directory or leaf key *)
  applies : tri;  (** does the home replica accept and apply the op? *)
  accept : float * float;
      (** acceptance-instant bounds: for [Must] the op is provably
          applied at the origin inside this interval; for [May] the
          latest instant it could still be applied *)
  stamp : int * int;  (** Lamport-stamp bounds at acceptance *)
  lost_in_crash : bool;
      (** provably lost: every retransmission lands inside the home
          replica's crash window and the retry budget exhausts in-run *)
}

type t = {
  config : Ch.config;
  spec : Ns.spec;
  writes : write array;
  sides : (int list * int list) option;
  partition : (float * float) option;
  crash : (int * float * float) option;  (** victim, window *)
  heal_at : float;
  samples : float array;
  lat : float * float;  (** one-way latency bounds between distinct nodes *)
  sends : (float * float) array;  (** client attempt send offsets *)
  exhaust : float * float;  (** client retry-budget exhaustion offsets *)
  duration : float;
}

let path_key path = N.to_string (N.prepend_root path)
let key w = (path_key w.path, N.atom_to_string w.atom)

let crash_of t i =
  match t.crash with Some (v, s, e) when v = i -> Some (s, e) | _ -> None

let same_side t a b =
  match t.sides with
  | None -> true
  | Some (g1, _) -> List.mem a g1 = List.mem b g1

(* ------------------------------------------------------------------ *)
(* Acceptance: when (if ever) does the home replica apply the write?   *)

(* A client attempt is a request client -> home over one network hop:
   lost when the home is down at send or delivery time ([Network]'s
   crash semantics), never cut (the client is partitioned with its home
   side), delivered with probability 1 only when the drop probability
   is zero. Deliveries scheduled past [duration] never execute. *)
let acceptance t ~origin ~time =
  let lat_lo, lat_hi = t.lat in
  let crash = crash_of t origin in
  let span k =
    let slo, shi = t.sends.(k) in
    (time +. slo, time +. shi)
  in
  let arrival_hi k = snd (span k) +. lat_hi in
  let arrival_lo k = fst (span k) +. lat_lo in
  (* guaranteed: the whole [send; delivery] span avoids the crash
     window and the delivery provably executes in-run *)
  let guaranteed k =
    t.config.Ch.drop = 0.0
    && arrival_hi k <= t.duration -. eps
    &&
    match crash with
    | Some (s, e) -> arrival_hi k < s -. eps || fst (span k) >= e +. eps
    | None -> true
  in
  (* doomed: every possible send instant of the attempt lies inside the
     crash window (lost at send time), or even the earliest delivery
     falls past the end of the run *)
  let doomed k =
    (match crash with
    | Some (s, e) -> fst (span k) >= s && snd (span k) < e
    | None -> false)
    || arrival_lo k > t.duration
  in
  let ks = List.init (Array.length t.sends) (fun k -> k) in
  let must = List.exists guaranteed ks in
  let never = List.for_all doomed ks in
  let feasible = List.filter (fun k -> not (doomed k)) ks in
  let lo =
    List.fold_left
      (fun acc k -> Float.min acc (arrival_lo k))
      infinity feasible
  in
  let hi =
    if must then
      List.fold_left
        (fun acc k -> if guaranteed k then Float.min acc (arrival_hi k) else acc)
        infinity ks
    else
      List.fold_left
        (fun acc k -> Float.max acc (arrival_hi k))
        neg_infinity feasible
  in
  let applies = if never then Never else if must then Must else May in
  let lost_in_crash =
    (match crash with
    | Some (s, e) ->
        List.for_all (fun k -> fst (span k) >= s && snd (span k) < e) ks
    | None -> false)
    && time +. snd t.exhaust <= t.duration -. eps
  in
  (applies, (lo, hi), lost_in_crash)

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let of_chaos ?workload (cfg : Ch.config) (spec : Ns.spec) =
  let workload =
    match workload with Some w -> w | None -> Ch.planned_writes cfg spec
  in
  let sides = Ch.partition_sides cfg in
  let partition =
    match sides with
    | Some _ -> Some (cfg.Ch.partition_at, cfg.Ch.partition_at +. cfg.Ch.partition_for)
    | None -> None
  in
  let crash =
    match Ch.crash_victim cfg with
    | Some v -> Some (v, cfg.Ch.crash_at, cfg.Ch.crash_at +. cfg.Ch.crash_for)
    | None -> None
  in
  let lat = Bounds.latency () in
  let sends, exhaust = Bounds.client_sends cfg in
  let dir_keys = Hashtbl.create 16 in
  Hashtbl.replace dir_keys (path_key (N.singleton N.root_atom)) ();
  List.iter (fun d -> Hashtbl.replace dir_keys (path_key d) ()) spec.Ns.dirs;
  let leaf_keys = Hashtbl.create 16 in
  List.iter (fun (k, _) -> Hashtbl.replace leaf_keys k ()) spec.Ns.leaves;
  let t =
    {
      config = cfg;
      spec;
      writes = [||];
      sides;
      partition;
      crash;
      heal_at = Ch.heal_time cfg;
      samples = Array.of_list (Ch.sample_times cfg);
      lat;
      sends;
      exhaust;
      duration = cfg.Ch.duration;
    }
  in
  let writes =
    List.filter_map
      (fun (time, client, req) ->
        match req with
        | Ns.Write { path; atom; target } -> Some (time, client, path, atom, target)
        | _ -> None)
      workload
  in
  let writes =
    List.mapi
      (fun index (time, origin, path, atom, target) ->
        let nacked =
          (not (Hashtbl.mem dir_keys (path_key path)))
          ||
          match target with
          | Some k -> not (Hashtbl.mem leaf_keys k)
          | None -> false
        in
        let applies, accept, lost_in_crash = acceptance t ~origin ~time in
        let applies = if nacked then Never else applies in
        {
          index;
          time;
          origin;
          path = N.prepend_root path;
          atom;
          target;
          nacked;
          applies;
          accept;
          stamp = (0, 0);
          lost_in_crash = lost_in_crash && not nacked;
        })
      writes
    |> Array.of_list
  in
  (* Lamport-stamp intervals, from the acceptance bounds: the stamp is
     clock+1 at acceptance, the clock at least the origin's provably
     earlier local accepts and at most every op that could possibly be
     known by then (Lamport stamps never exceed the number of accepts). *)
  let applied w = w.applies <> Never && not w.nacked in
  let writes =
    Array.map
      (fun w ->
        if not (applied w) then w
        else
          let lo =
            1
            + Array.fold_left
                (fun acc o ->
                  if
                    o.index <> w.index && o.origin = w.origin
                    && o.applies = Must
                    && (not o.nacked)
                    && snd o.accept < fst w.accept -. eps
                  then acc + 1
                  else acc)
                0 writes
          in
          let hi =
            1
            + Array.fold_left
                (fun acc o ->
                  if
                    o.index <> w.index && applied o
                    && fst o.accept < snd w.accept
                  then acc + 1
                  else acc)
                0 writes
          in
          { w with stamp = (lo, hi) })
      writes
  in
  { t with writes }

let writes t = Array.to_list t.writes
let applied w = w.applies <> Never && not w.nacked

(* ------------------------------------------------------------------ *)
(* May-propagation: the happens-before relation, widened across
   anti-entropy rounds.                                                *)

(* Earliest instant a pull response from [p] (holding the op since
   [hp]) could possibly be applied at [d]: the response must be served
   while [p] and [d] are both up and not cut from each other (loss is
   decided at send time), and delivered while [d] is up. The pull
   REQUEST leg and the random peer choice are ignored — that only
   enlarges the set of possible executions, which keeps every
   impossibility claim (and hence every error diagnostic) sound. *)
let transfer t p d hp =
  if hp = infinity then infinity
  else begin
    let lat_lo = fst t.lat in
    let serve = ref hp in
    let changed = ref true in
    let guard = ref 0 in
    while !changed && !guard < 16 do
      changed := false;
      incr guard;
      (match crash_of t p with
      | Some (s, e) when !serve >= s && !serve < e ->
          serve := e;
          changed := true
      | _ -> ());
      (match crash_of t d with
      | Some (s, e) ->
          if !serve >= s && !serve < e then begin
            serve := e;
            changed := true
          end
          else if !serve +. lat_lo >= s && !serve +. lat_lo < e then begin
            serve := e -. lat_lo;
            changed := true
          end
      | _ -> ());
      match t.partition with
      | Some (s, e)
        when (not (same_side t p d)) && !serve >= s && !serve < e ->
          serve := e;
          changed := true
      | _ -> ()
    done;
    !serve +. lat_lo
  end

let earliest_at t ~origin ~from_ d =
  let n = t.config.Ch.replicas in
  let have = Array.make n infinity in
  have.(origin) <- from_;
  for _hop = 1 to n do
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        if q <> p then begin
          let a = transfer t p q have.(p) in
          if a < have.(q) then have.(q) <- a
        end
      done
    done
  done;
  if have.(d) <= t.duration then Some have.(d) else None

let must_concurrent t w1 w2 =
  let unordered a b =
    match earliest_at t ~origin:a.origin ~from_:(fst a.accept) b.origin with
    | None -> true
    | Some arr -> arr > snd b.accept +. eps
  in
  w1.origin <> w2.origin && unordered w1 w2 && unordered w2 w1

let stamps_may_tie w1 w2 =
  let l1, h1 = w1.stamp and l2, h2 = w2.stamp in
  w1.origin <> w2.origin && l1 <= h2 && l2 <= h1

(* ------------------------------------------------------------------ *)
(* Convergence verdicts.                                               *)

(* The round budget only matters for proving convergence: with two
   replicas the peer choice is deterministic, so after the last fault
   heals and the last write lands, [rounds] fault-free pull cycles
   provably exchange every op. With more replicas the random peer
   choice makes no finite round count a proof. *)
let reconverge_provable ?(rounds = 2) t =
  let cfg = t.config in
  cfg.Ch.drop = 0.0
  && cfg.Ch.replicas = 2
  && t.heal_at <= t.duration
  &&
  let last_accept =
    Array.fold_left
      (fun acc w -> if applied w then Float.max acc (snd w.accept) else acc)
      0.0 t.writes
  in
  let settled = Float.max t.heal_at last_accept in
  (* every replica needs [rounds] ticks after [settled], each with time
     for a full round trip before the run ends *)
  let lat_hi = snd t.lat in
  let ok i =
    let first = Ch.ae_first_tick cfg i in
    let period = cfg.Ch.ae_period in
    let k = Float.max 0.0 (Float.ceil ((settled -. first) /. period)) in
    let last_needed = first +. ((k +. float_of_int rounds) *. period) in
    last_needed +. (2.0 *. lat_hi) <= t.duration -. eps
  in
  ok 0 && ok 1

let divergence_possible t =
  Array.exists applied t.writes
  && (t.config.Ch.drop > 0.0 || t.partition <> None || t.crash <> None)

(* ------------------------------------------------------------------ *)
(* Leader-mode availability: provable no-quorum windows.               *)

let majority t = (t.config.Ch.replicas / 2) + 1

(* The quorum verdict at one instant must hold in EVERY execution, so
   it quantifies over the statically-unknown choices: which replica the
   leader-kill fault takes down (whoever leads then, falling back to
   ns0 — always exactly one node), and which replica a
   [partition_leader] cut isolates. Quorum is denied only when no
   scenario leaves any connected side with a live majority. *)
let no_quorum_at t tau =
  let cfg = t.config in
  let n = cfg.Ch.replicas in
  let maj = majority t in
  let inside (s, e) = tau >= s && tau < e in
  let all = List.init n (fun i -> i) in
  let crashed =
    match t.crash with Some (v, s, e) when inside (s, e) -> Some v | _ -> None
  in
  let killed_choices =
    match Ch.leader_kill_window cfg with
    | Some w when inside w -> List.map (fun i -> Some i) all
    | _ -> [ None ]
  in
  let sides_choices =
    match t.partition with
    | Some w when inside w ->
        if cfg.Ch.partition_leader && cfg.Ch.mode = `Leader_log then
          List.map
            (fun m -> [ [ m ]; List.filter (fun i -> i <> m) all ])
            all
        else (
          match t.sides with
          | Some (g1, g2) -> [ [ g1; g2 ] ]
          | None -> [ [ all ] ])
    | _ -> [ [ all ] ]
  in
  List.for_all
    (fun killed ->
      List.for_all
        (fun sides ->
          let up i = Some i <> crashed && Some i <> killed in
          not
            (List.exists
               (fun side -> List.length (List.filter up side) >= maj)
               sides))
        sides_choices)
    killed_choices

let no_quorum_windows t =
  if t.config.Ch.mode <> `Leader_log then []
  else begin
    let bounds = ref [ 0.0; t.duration ] in
    let add (s, e) = bounds := s :: e :: !bounds in
    Option.iter add t.partition;
    (match t.crash with Some (_, s, e) -> add (s, e) | None -> ());
    Option.iter add (Ch.leader_kill_window t.config);
    let pts =
      List.sort_uniq Float.compare
        (List.filter (fun x -> x >= 0.0 && x <= t.duration) !bounds)
    in
    (* evaluate each elementary interval at its midpoint; the verdict
       is constant there because every fault boundary is a cut point *)
    let rec walk acc = function
      | a :: (b :: _ as rest) ->
          let acc =
            if b -. a > eps && no_quorum_at t ((a +. b) /. 2.0) then
              match acc with
              | (s, e) :: tl when Float.abs (e -. a) <= eps -> (s, b) :: tl
              | _ -> (a, b) :: acc
            else acc
          in
          walk acc rest
      | _ -> List.rev acc
    in
    walk [] pts
  end

let outcome_unknown_horizon t (w : write) =
  if t.config.Ch.mode <> `Leader_log then None
  else
    List.find_opt
      (fun (s, e) ->
        w.time >= s -. eps
        && w.time +. t.config.Ch.txn_deadline <= e +. eps)
      (no_quorum_windows t)

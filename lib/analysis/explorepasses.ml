(* Rendering explorer witnesses as the NG3xx diagnostic series. Every
   message names the minimized schedule (the one serialized for
   [namingctl chaos --schedule]) and quotes the confirming replay, so
   the diagnostic is checkable end to end from its own text. *)

module Ex = Explore
module Cs = Clusterstate
module Ch = Dsim.Chaos
module Ns = Dsim.Nameserver
module N = Naming.Name

type subject = { config : Ex.config; spec : Ns.spec }

let subject ?(config = Ex.default) spec = { config; spec }
let diag = Diagnostic.make
let write_name (w : Cs.write) = N.snoc w.Cs.path w.Cs.atom

let write_str (w : Cs.write) =
  Printf.sprintf "write #%d (ns%d t=%.1f %s%s)" w.Cs.index w.Cs.origin
    w.Cs.time
    (N.to_string (write_name w))
    (match w.Cs.target with
    | Some k -> Printf.sprintf "→%s" k
    | None -> "→unbind")

let sched_str (s : Ch.schedule) =
  let cfg = s.Ch.config in
  Printf.sprintf "%s%d write%s%s%s"
    (match cfg.Ch.mode with `Lww_ae -> "" | `Leader_log -> "leader-mode, ")
    (List.length s.Ch.writes)
    (if List.length s.Ch.writes = 1 then "" else "s")
    (if cfg.Ch.partition_for > 0.0 then
       Printf.sprintf ", partition %s"
         (Bounds.window_str
            (cfg.Ch.partition_at, cfg.Ch.partition_at +. cfg.Ch.partition_for))
     else "")
    (if cfg.Ch.crash_for > 0.0 then
       Printf.sprintf ", crash %s"
         (Bounds.window_str
            (cfg.Ch.crash_at, cfg.Ch.crash_at +. cfg.Ch.crash_for))
     else "")

let pass_ids =
  [ "explore-loss"; "explore-convergence"; "explore-staleness"; "explore-space" ]

let witness_diag (w : Ex.witness) =
  let r = w.Ex.replay in
  match w.Ex.found with
  | Ex.Race (a, b) ->
      diag ~code:"NG301" ~severity:Diagnostic.Error ~pass:"explore-loss"
        ~name:(write_name b) ~loc:b.Cs.index
        (Printf.sprintf
           "synthesized schedule (%s) provably loses a write: %s and %s are \
            concurrent updates of one name that no execution can order, so \
            last-writer-wins discards one; replay confirms (%d LWW losses, \
            converged: %b; minimized in %d trials)"
           (sched_str w.Ex.schedule) (write_str a) (write_str b)
           r.Ch.ns.Ns.lww_losses r.Ch.converged w.Ex.shrink_trials)
  | Ex.Hole hw ->
      diag ~code:"NG301" ~severity:Diagnostic.Error ~pass:"explore-loss"
        ~name:(write_name hw) ~loc:hw.Cs.index
        (Printf.sprintf
           "synthesized schedule (%s) provably loses a write: every \
            retransmission of %s lands inside the crash window and the \
            retry budget exhausts in-run; replay confirms (%d writes lost; \
            minimized in %d trials)"
           (sched_str w.Ex.schedule) (write_str hw) r.Ch.writes_lost
           w.Ex.shrink_trials)
  | Ex.Cut (cw, d) ->
      diag ~code:"NG302" ~severity:Diagnostic.Error
        ~pass:"explore-convergence" ~name:(write_name cw) ~loc:cw.Cs.index
        (Printf.sprintf
           "synthesized schedule (%s) defeats convergence within the bound: \
            %s can never reach ns%d, so the replicas provably fail to \
            reconverge; replay confirms (converged: %b; minimized in %d \
            trials)"
           (sched_str w.Ex.schedule) (write_str cw) d r.Ch.converged
           w.Ex.shrink_trials)
  | Ex.Stale s ->
      diag ~code:"NG303" ~severity:Diagnostic.Warning
        ~pass:"explore-staleness" ~name:(write_name s.Ex.write)
        ~loc:s.Ex.sample
        (Printf.sprintf
           "staleness-maximizing schedule (%s): ns%d provably serves stale \
            reads for %d consecutive samples — %s cannot reach it before \
            sample #%d at t=%.1f; replay confirms the sample diverged \
            (minimized in %d trials)"
           (sched_str w.Ex.schedule) s.Ex.replica s.Ex.count
           (write_str s.Ex.write) s.Ex.sample s.Ex.time w.Ex.shrink_trials)

let diagnostics ?jobs subject =
  let outcome = Ex.run ?jobs ~config:subject.config subject.spec in
  let st = outcome.Ex.stats in
  let diags = List.map witness_diag outcome.Ex.witnesses in
  let diags =
    if st.Ex.exhausted && outcome.Ex.witnesses = [] then
      diags
      @ [
          diag ~code:"NG304" ~severity:Diagnostic.Info ~pass:"explore-space"
            (Printf.sprintf
               "schedule space exhausted clean up to the bounds (depth %d, \
                ≤%d writes, budget %d): %d schedules enumerated, %d \
                interpreted, %d collapsed by partial-order reduction, %d by \
                symmetry%s"
               subject.config.Ex.depth subject.config.Ex.max_writes
               subject.config.Ex.budget st.Ex.enumerated st.Ex.interpreted
               st.Ex.pruned_por st.Ex.pruned_symmetry
               (match subject.config.Ex.base.Ch.mode with
               | `Leader_log ->
                   "; every statically-racing schedule replayed against \
                    the leader tier without losing an update"
               | `Lww_ae -> ""));
        ]
    else diags
  in
  (outcome, diags)

let report ?min_severity ?jobs ~label subject =
  let outcome, diags = diagnostics ?jobs subject in
  let report =
    Engine.assemble ?min_severity ~label
      ~activities:subject.config.Ex.base.Ch.replicas
      ~objects:(List.length subject.spec.Ns.leaves)
      ~context_objects:(List.length subject.spec.Ns.dirs)
      ~probes:outcome.Ex.stats.Ex.enumerated ~passes_run:pass_ids diags
  in
  (outcome, report)

let report_many ?min_severity ?jobs subjects =
  List.map (fun (label, s) -> report ?min_severity ?jobs ~label s) subjects

module E = Naming.Entity
module N = Naming.Name

type t = {
  store : Naming.Store.t;
  rule : Naming.Rule.t;
  activities : E.t list;
  probes : N.t list;
  engine : Naming.Engine.t;
}

let engine t = t.engine
let cache t = Naming.Engine.cache t.engine

let occurrences t = List.map Naming.Occurrence.generated t.activities

let contexts t =
  List.filter_map
    (fun a ->
      match
        Naming.Rule.select t.rule t.store (Naming.Occurrence.generated a)
      with
      | Some c -> Some (a, c)
      | None -> None)
    t.activities

let default_probes ?(max_depth = 3) t =
  let seen = ref N.Set.empty in
  let out = ref [] in
  let add n =
    if not (N.Set.mem n !seen) then begin
      seen := N.Set.add n !seen;
      out := n :: !out
    end
  in
  List.iter
    (fun (_a, ctx) ->
      let root = Naming.Context.lookup ctx N.root_atom in
      match Naming.Store.context_of t.store root with
      | None -> ()
      | Some root_ctx ->
          add (N.singleton N.root_atom);
          List.iter
            (fun (n, _e) -> add (N.cons N.root_atom n))
            (Naming.Graph.all_names t.store root_ctx ~max_depth ()))
    (contexts t);
  let probes = List.rev !out in
  (* Resolve every discovered probe from every vantage point once, so the
     subject's engine is warm (cache entries filled, compiled tables up
     to date) before any coherence sweep over it runs. *)
  List.iter
    (fun (_a, ctx) ->
      List.iter
        (fun n -> ignore (Naming.Engine.resolve t.engine ctx n))
        probes)
    (contexts t);
  probes

let v ?probes ?engine ~rule ~activities store =
  if activities = [] then invalid_arg "Subject.v: no activities";
  let engine = Naming.Engine.select ?engine ~default:`Cached store in
  let t = { store; rule; activities; probes = []; engine } in
  let probes = match probes with Some p -> p | None -> default_probes t in
  { t with probes }

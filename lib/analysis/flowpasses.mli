(** From flow verdicts to diagnostics.

    Maps a {!Flow.result} onto the NG1xx series, through the same
    {!Diagnostic}/{!Engine} machinery as the world passes:

    - [NG101] (error): an incoherent send — the name resolves to
      different entities for sender and receiver;
    - [NG102] (error): an incoherent read — the embedded name's
      denotation for the reader differs from its source scope;
    - [NG103] (warning): a flow resolving through a binding that an
      earlier op explicitly unbound;
    - [NG104] (warning): a [use] on which a process and its fork parent
      disagree;
    - [NG105] (warning): a silently-skipped op, or a flow referencing a
      process/object that does not exist (typically the result of one);
    - [NG106] (info): a flow the analyzer declined to decide (fuel).

    Coherent and vacuous flows are silent. Every diagnostic's [loc] is
    the plan step index of its witness. *)

val diagnostics : Flow.result -> Diagnostic.t list
(** In emission order (the report sorts). *)

val report :
  ?min_severity:Diagnostic.severity ->
  ?config:Flow.config ->
  label:string ->
  Flow.plan ->
  Flow.result * Engine.report
(** Runs {!Flow.analyze} and assembles an {!Engine.report}: activities
    are the abstract processes, objects the abstract nodes, probes the
    flows. *)

val report_many :
  ?min_severity:Diagnostic.severity ->
  ?config:Flow.config ->
  ?jobs:int ->
  (string * Flow.plan) list ->
  (Flow.result * Engine.report) list
(** [report] over several labelled plans, results in input order. Each
    analysis builds its own abstract store from its plan, so with
    [jobs > 1] the plans fan out one task per plan on the shared domain
    pool; results are structurally identical to the sequential ones. *)

(** From explorer witnesses to diagnostics: the NG3xx series.

    NG301 ({!Explore.Race} / {!Explore.Hole}) and NG302
    ({!Explore.Cut}) are error-severity — each is backed by a Must/Never
    fact of the abstract interpretation {e and} a confirming chaos
    replay of its minimized witness schedule. NG303 (staleness
    maximization) is a warning, NG304 (space exhausted clean up to the
    exploration bounds) an info verdict. *)

type subject = { config : Explore.config; spec : Dsim.Nameserver.spec }

val subject : ?config:Explore.config -> Dsim.Nameserver.spec -> subject
(** [config] defaults to {!Explore.default}. *)

val pass_ids : string list
(** [explore-loss], [explore-convergence], [explore-staleness],
    [explore-space]. *)

val diagnostics :
  ?jobs:int -> subject -> Explore.outcome * Diagnostic.t list
(** Runs {!Explore.run} and renders each witness as a diagnostic; the
    outcome carries the witnesses themselves (for schedule
    serialization) and the search statistics. *)

val report :
  ?min_severity:Diagnostic.severity ->
  ?jobs:int ->
  label:string ->
  subject ->
  Explore.outcome * Engine.report
(** [probes] in the report counts candidate schedules enumerated. *)

val report_many :
  ?min_severity:Diagnostic.severity ->
  ?jobs:int ->
  (string * subject) list ->
  (Explore.outcome * Engine.report) list
(** Reports in input order. Subjects are explored sequentially; [jobs]
    parallelizes candidate evaluation {e within} each exploration (the
    outer loop is dominated by the inner fan-out). *)

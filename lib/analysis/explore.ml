(* Bounded model checking over the fault-schedule space. The search is
   classic explicit-state exploration with two twists borrowed from the
   soundness contract of [Clusterstate]: candidates are evaluated by
   abstract interpretation (cheap, and every Must/Never fact holds in
   EVERY execution of the schedule), so only the few frontier winners
   ever pay for a concrete chaos replay; and the enumeration grid is
   not arbitrary — window starts sit on anti-entropy ticks, window
   lengths on the staleness/retry horizons of [Bounds], write instants
   one latency past a cut. Everything is deterministic: same config,
   same witnesses, at any job count. *)

module Ch = Dsim.Chaos
module Ns = Dsim.Nameserver
module Cs = Clusterstate
module N = Naming.Name

type config = {
  base : Ch.config;
  depth : int;
  max_writes : int;
  budget : int;
  seed : int;
  rounds : int;
}

let default =
  {
    base =
      {
        Ch.default with
        Ch.drop = 0.0;
        duplicate = 0.0;
        partition_at = 0.0;
        partition_for = 0.0;
        crash_at = 0.0;
        crash_for = 0.0;
        (* two attempts, so a retry budget can exhaust inside a crash
           window that still heals within the run *)
        call_attempts = 2;
        writes = 0;
      };
    depth = 3;
    max_writes = 3;
    budget = 2048;
    seed = 42;
    rounds = 2;
  }

type claim = Lost_update | Lost_client_write | Unreachable | Stale_at of int

(* Under [`Lww_ae] the claims read off the gossip protocol's failure
   counters. Under [`Leader_log] the same synthesized schedules replay
   against the leader tier, where a lost or unordered update would be a
   protocol bug: the loss claims demand an ACTUAL observed loss
   ([lww_losses], which leader serialization keeps at zero), not mere
   non-convergence — so the LWW race/hole frontier is discharged by its
   own replay, and only genuine convergence/staleness defeats (e.g. a
   partition that never heals starving a follower) survive as
   witnesses. *)
let claim_holds claim (r : Ch.result) =
  match r.Ch.config.Ch.mode with
  | `Leader_log -> (
      match claim with
      | Lost_update | Lost_client_write -> r.Ch.ns.Ns.lww_losses > 0
      | Unreachable -> not r.Ch.converged
      | Stale_at k -> (
          match List.nth_opt r.Ch.samples k with
          | Some s -> not s.Ch.converged
          | None -> false))
  | `Lww_ae -> (
      match claim with
      | Lost_update -> r.Ch.ns.Ns.lww_losses > 0 || not r.Ch.converged
      | Lost_client_write -> r.Ch.writes_lost > 0
      | Unreachable -> not r.Ch.converged
      | Stale_at k -> (
          match List.nth_opt r.Ch.samples k with
          | Some s -> not s.Ch.converged
          | None -> false))

type stale = {
  replica : int;
  write : Cs.write;
  sample : int;
  time : float;
  count : int;
}

type found =
  | Race of Cs.write * Cs.write
  | Hole of Cs.write
  | Cut of Cs.write * int
  | Stale of stale

type witness = {
  code : string;
  claim : claim;
  found : found;
  schedule : Ch.schedule;
  unminimized : Ch.schedule;
  shrink_trials : int;
  replay : Ch.result;
}

type stats = {
  enumerated : int;
  interpreted : int;
  pruned_por : int;
  pruned_symmetry : int;
  replays : int;
  exhausted : bool;
}

type outcome = { witnesses : witness list; stats : stats }

(* ------------------------------------------------------------------ *)
(* Candidates: a fault layout plus a crafted write workload.           *)

type candidate = {
  partition : (float * float) option;  (** start, length *)
  crash : (float * float) option;  (** start, length *)
  cwrites : (float * int * Ns.request) list;
}

let candidate_config c cand : Ch.config =
  let pa, pf = match cand.partition with Some w -> w | None -> (0.0, 0.0) in
  let ca, cf = match cand.crash with Some w -> w | None -> (0.0, 0.0) in
  {
    c.base with
    Ch.seed = c.seed;
    partition_at = pa;
    partition_for = pf;
    crash_at = ca;
    crash_for = cf;
    writes = List.length cand.cwrites;
  }

(* The write sites the protocol will actually accept: a link's parent
   directory and final atom, kept only when the parent is a known
   directory (otherwise every replica Nacks the write statically). *)
let sites_of (spec : Ns.spec) =
  let key p = N.to_string (N.prepend_root p) in
  let dirs = Hashtbl.create 16 in
  Hashtbl.replace dirs (key (N.singleton N.root_atom)) ();
  List.iter (fun d -> Hashtbl.replace dirs (key d) ()) spec.Ns.dirs;
  let leaves = Hashtbl.create 16 in
  List.iter (fun (k, _) -> Hashtbl.replace leaves k ()) spec.Ns.leaves;
  spec.Ns.links
  |> List.filter_map (fun (path, k) ->
         if not (Hashtbl.mem leaves k) then None
         else
           match List.rev (N.atoms (N.prepend_root path)) with
           | last :: (_ :: _ as rev_parent) ->
               let parent = N.of_atoms (List.rev rev_parent) in
               if Hashtbl.mem dirs (key parent) then Some (parent, last)
               else None
           | _ -> None)

(* Two distinguishable targets are enough to race a site; with a single
   leaf key the adversary races a bind against an unbind. *)
let targets_of (spec : Ns.spec) =
  match List.sort_uniq compare (List.map fst spec.Ns.leaves) with
  | [] -> []
  | [ k ] -> [ Some k; None ]
  | k1 :: k2 :: _ -> [ Some k1; Some k2 ]

(* Replica-symmetry classes for a fault layout: replicas on the same
   partition side with the same crash fate are interchangeable, so only
   the smallest member of each class ever originates a write. *)
let origin_classes (cfg : Ch.config) =
  let sides = Ch.partition_sides cfg in
  let victim = Ch.crash_victim cfg in
  let cls i =
    ( (match sides with Some (g1, _) -> List.mem i g1 | None -> true),
      victim = Some i )
  in
  let tbl = Hashtbl.create 4 in
  for i = cfg.Ch.replicas - 1 downto 0 do
    let k = cls i in
    Hashtbl.replace tbl k
      (i :: (try Hashtbl.find tbl k with Not_found -> []))
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

(* Write instants that interact with a layout: one minimum latency past
   each window start (accepted strictly inside the window) and one
   anti-entropy period later. A fault-free layout anchors at 0. *)
let time_grid c cand =
  let anchors =
    (match cand.partition with Some (s, _) -> [ s ] | None -> [])
    @ (match cand.crash with Some (s, _) -> [ s ] | None -> [])
  in
  let anchors = match anchors with [] -> [ 0.0 ] | a -> a in
  List.concat_map
    (fun a -> List.map (fun o -> a +. o) (Bounds.write_offsets c.base))
    anchors
  |> List.sort_uniq compare

(* Fault layouts: partition windows first (an open window leading, so
   non-convergence witnesses surface earliest), the fault-free layout
   last; crash layouts interleaved per partition choice. *)
let layouts c =
  let windows =
    List.concat_map
      (fun s ->
        Bounds.window_lengths ~rounds:c.rounds ~start:s c.base
        |> List.rev_map (fun l -> (s, l)))
      (Bounds.window_starts ~depth:c.depth c.base)
  in
  let some = List.map (fun w -> Some w) windows in
  let p_opts = some @ [ None ] and c_opts = None :: some in
  List.concat_map (fun p -> List.map (fun cr -> (p, cr)) c_opts) p_opts

let rec pow b e = if e <= 0 then 1 else b * pow b (e - 1)

(* Ordered [k]-tuples over [xs]. *)
let rec tuples k xs =
  if k = 0 then Seq.return []
  else
    Seq.concat_map
      (fun x -> Seq.map (fun rest -> x :: rest) (tuples (k - 1) xs))
      (List.to_seq xs)

(* Non-decreasing [k]-tuples over the sorted list [xs] (multisets). *)
let rec non_decreasing k xs =
  if k = 0 then Seq.return []
  else
    let rec suffixes l () =
      match l with
      | [] -> Seq.Nil
      | x :: rest -> Seq.Cons ((x, l), suffixes rest)
    in
    Seq.concat_map
      (fun (x, l) -> Seq.map (fun r -> x :: r) (non_decreasing (k - 1) l))
      (suffixes xs)

(* The candidate space, lazily: workload size outermost (the smallest
   witnesses come first), then layout, then write instants × origin
   class representatives. Each candidate carries the number of
   schedules it stands for that POR and symmetry pruned away. *)
let candidates c (sites : (N.t * N.atom) list) targets =
  let site_count = List.length sites in
  let path, atom = List.hd sites in
  let ntargets = List.length targets in
  Seq.concat_map
    (fun nw ->
      Seq.concat_map
        (fun (p, cr) ->
          let shell = { partition = p; crash = cr; cwrites = [] } in
          let classes = origin_classes (candidate_config c shell) in
          let reps = List.map List.hd classes in
          let size_of o =
            List.length (List.find (fun cl -> List.hd cl = o) classes)
          in
          let grid = time_grid c shell in
          Seq.concat_map
            (fun times ->
              Seq.map
                (fun origins ->
                  let cwrites =
                    List.mapi
                      (fun i (t, o) ->
                        let target = List.nth targets (i mod ntargets) in
                        (t, o, Ns.Write { path; atom; target }))
                      (List.combine times origins)
                  in
                  let collapsed =
                    List.fold_left (fun acc o -> acc * size_of o) 1 origins
                  in
                  ( { shell with cwrites },
                    pow site_count nw - site_count,
                    site_count - 1 + (collapsed - 1) ))
                (tuples nw reps))
            (non_decreasing nw grid))
        (List.to_seq (layouts c)))
    (Seq.init c.max_writes (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Static evaluation: the NG2xx criteria of [Replpasses], verbatim, so
   every fact inherits the replay-soundness of the abstract
   interpretation.                                                     *)

let eps = Bounds.eps

let interpret c spec cand =
  Cs.of_chaos ~workload:cand.cwrites (candidate_config c cand) spec

let race_of (st : Cs.t) =
  let ws = Array.of_list (Cs.writes st) in
  let n = Array.length ws in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let a = ws.(i) and b = ws.(j) in
         if
           a.Cs.applies = Cs.Must
           && b.Cs.applies = Cs.Must
           && Cs.applied a && Cs.applied b
           && Cs.key a = Cs.key b
           && a.Cs.target <> b.Cs.target
           && Cs.must_concurrent st a b
         then begin
           found := Some (a, b);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let hole_of (st : Cs.t) =
  if st.Cs.crash = None then None
  else List.find_opt (fun w -> w.Cs.lost_in_crash) (Cs.writes st)

let cut_of (st : Cs.t) =
  let must =
    List.filter
      (fun w -> w.Cs.applies = Cs.Must && Cs.applied w)
      (Cs.writes st)
  in
  let rec go d =
    if d >= st.Cs.config.Ch.replicas then None
    else
      match
        List.find_opt
          (fun (w : Cs.write) ->
            w.Cs.origin <> d
            && Cs.earliest_at st ~origin:w.Cs.origin ~from_:(fst w.Cs.accept)
                 d
               = None)
          must
      with
      | Some w -> Some (w, d)
      | None -> go (d + 1)
  in
  go 0

let stale_facts ~rounds (st : Cs.t) =
  let cfg = st.Cs.config in
  let stale_bound = float_of_int rounds *. cfg.Ch.ae_period in
  let must =
    List.filter
      (fun w -> w.Cs.applies = Cs.Must && Cs.applied w)
      (Cs.writes st)
  in
  let replicas = List.init cfg.Ch.replicas (fun i -> i) in
  let windows =
    (match (st.Cs.partition, st.Cs.sides) with
    | Some w, Some (g1, _) ->
        [ (w, fun o d -> List.mem o g1 <> List.mem d g1) ]
    | _ -> [])
    @
    match st.Cs.crash with
    | Some (v, s, e) -> [ ((s, e), fun o d -> o = v <> (d = v)) ]
    | None -> []
  in
  List.filter_map
    (fun ((s, e), isolates) ->
      if e > st.Cs.duration -. eps || e -. s < stale_bound -. eps then None
      else
        List.find_map
          (fun d ->
            List.find_map
              (fun (w : Cs.write) ->
                if not (isolates w.Cs.origin d) then None
                else
                  let arr =
                    Cs.earliest_at st ~origin:w.Cs.origin
                      ~from_:(fst w.Cs.accept) d
                  in
                  let blocked tau =
                    match arr with None -> true | Some a -> a > tau +. eps
                  in
                  let best = ref None and count = ref 0 in
                  Array.iteri
                    (fun k tau ->
                      if
                        tau > snd w.Cs.accept +. eps
                        && tau > s
                        && tau < e -. eps
                        && blocked tau
                      then begin
                        incr count;
                        best := Some (k, tau)
                      end)
                    st.Cs.samples;
                  Option.map
                    (fun (k, tau) ->
                      {
                        replica = d;
                        write = w;
                        sample = k;
                        time = tau;
                        count = !count;
                      })
                    !best)
              must)
          replicas)
    windows

type evaluation = {
  race : (Cs.write * Cs.write) option;
  hole : Cs.write option;
  cut : (Cs.write * int) option;
  stales : stale list;
}

let evaluate c spec cand =
  let st = interpret c spec cand in
  {
    race = race_of st;
    hole = hole_of st;
    cut = cut_of st;
    stales = stale_facts ~rounds:c.rounds st;
  }

(* ------------------------------------------------------------------ *)
(* Witness minimization: greedy delta-debugging against the STATIC
   claim (one abstract interpretation per trial), replaying only the
   final minimized schedule.                                           *)

let claim_static c spec claim cand =
  let st = interpret c spec cand in
  match claim with
  | Lost_update -> race_of st <> None
  | Lost_client_write -> hole_of st <> None
  | Unreachable -> cut_of st <> None
  | Stale_at k ->
      List.exists (fun s -> s.sample = k) (stale_facts ~rounds:c.rounds st)

let minimize c spec claim cand =
  let trials = ref 0 in
  let holds cand =
    incr trials;
    claim_static c spec claim cand
  in
  let rec drop_writes cand =
    let n = List.length cand.cwrites in
    let rec try_at i =
      if i >= n || n <= 1 then cand
      else
        let cand' =
          { cand with cwrites = List.filteri (fun j _ -> j <> i) cand.cwrites }
        in
        if holds cand' then drop_writes cand' else try_at (i + 1)
    in
    try_at 0
  in
  let cand = drop_writes cand in
  let drop_window get set cand =
    match get cand with
    | None -> cand
    | Some _ ->
        let cand' = set cand in
        if holds cand' then cand' else cand
  in
  let cand =
    drop_window (fun c -> c.crash) (fun c -> { c with crash = None }) cand
  in
  let cand =
    drop_window
      (fun c -> c.partition)
      (fun c -> { c with partition = None })
      cand
  in
  (cand, !trials)

(* ------------------------------------------------------------------ *)
(* The run: enumerate → interpret (pooled) → pick frontier → shrink →
   confirm by replay.                                                  *)

let take_with_more n seq =
  let rec go n acc seq =
    if n <= 0 then (List.rev acc, Seq.uncons seq <> None)
    else
      match Seq.uncons seq with
      | None -> (List.rev acc, false)
      | Some (x, rest) -> go (n - 1) (x :: acc) rest
  in
  go n [] seq

let chunks n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let batched ?jobs f xs =
  match Naming.Pool.get ?jobs () with
  | None -> List.map f xs
  | Some pool ->
      Naming.Pool.map pool (List.map f) (chunks 32 xs) |> List.concat

let code_of_claim = function
  | Lost_update | Lost_client_write -> "NG301"
  | Unreachable -> "NG302"
  | Stale_at _ -> "NG303"

let run ?jobs ?(config = default) (spec : Ns.spec) =
  let c = config in
  let sites = sites_of spec and targets = targets_of spec in
  if sites = [] || targets = [] then
    (* no write the protocol would accept: the space is a single empty
       schedule, trivially clean *)
    {
      witnesses = [];
      stats =
        {
          enumerated = 0;
          interpreted = 0;
          pruned_por = 0;
          pruned_symmetry = 0;
          replays = 0;
          exhausted = true;
        };
    }
  else begin
    let drawn, more = take_with_more c.budget (candidates c sites targets) in
    let pruned_por =
      List.fold_left (fun acc (_, p, _) -> acc + p) 0 drawn
    and pruned_symmetry =
      List.fold_left (fun acc (_, _, s) -> acc + s) 0 drawn
    in
    let cands = List.map (fun (cand, _, _) -> cand) drawn in
    let evaluated = batched ?jobs (fun cand -> (cand, evaluate c spec cand)) cands in
    (* Frontier: the first candidate exhibiting each claim kind; for
       staleness the blocked-sample maximizing one (earliest on ties). *)
    let first pick =
      List.find_map
        (fun (cand, ev) -> Option.map (fun x -> (cand, x)) (pick ev))
        evaluated
    in
    let best_stale =
      List.fold_left
        (fun acc (cand, ev) ->
          List.fold_left
            (fun acc (s : stale) ->
              match acc with
              | Some (_, best) when best.count >= s.count -> acc
              | _ -> Some (cand, s))
            acc ev.stales)
        None evaluated
    in
    let interpreted = ref (List.length cands) in
    let replays = ref 0 in
    (* exactly [namingctl chaos]'s probe derivation, so a witness replay
       stored by the CLI byte-compares against a later CLI replay *)
    let probes = spec.Ns.dirs @ List.map fst spec.Ns.links in
    let witness claim found_of (cand, _) =
      let unminimized =
        { Ch.config = candidate_config c cand; writes = cand.cwrites }
      in
      let mcand, trials = minimize c spec claim cand in
      let st = interpret c spec mcand in
      interpreted := !interpreted + trials + 1;
      match found_of st with
      | None -> None
      | Some found ->
          let schedule =
            { Ch.config = candidate_config c mcand; writes = mcand.cwrites }
          in
          incr replays;
          let replay = Ch.run_schedule ?jobs ~spec ~probes schedule in
          if claim_holds claim replay then
            Some
              {
                code = code_of_claim claim;
                claim;
                found;
                schedule;
                unminimized;
                shrink_trials = trials;
                replay;
              }
          else None
    in
    let witnesses =
      List.filter_map
        (fun w -> w)
        [
          Option.bind (first (fun ev -> ev.race)) (fun hit ->
              witness Lost_update
                (fun st -> Option.map (fun (a, b) -> Race (a, b)) (race_of st))
                hit);
          Option.bind (first (fun ev -> ev.hole)) (fun hit ->
              witness Lost_client_write
                (fun st -> Option.map (fun w -> Hole w) (hole_of st))
                hit);
          Option.bind (first (fun ev -> ev.cut)) (fun hit ->
              witness Unreachable
                (fun st -> Option.map (fun (w, d) -> Cut (w, d)) (cut_of st))
                hit);
          Option.bind best_stale (fun (cand, s) ->
              witness (Stale_at s.sample)
                (fun st ->
                  stale_facts ~rounds:c.rounds st
                  |> List.filter (fun (x : stale) -> x.sample = s.sample)
                  |> function
                  | [] -> None
                  | x :: rest ->
                      Some
                        (Stale
                           (List.fold_left
                              (fun best (y : stale) ->
                                if y.count > best.count then y else best)
                              x rest)))
                (cand, s));
        ]
    in
    {
      witnesses;
      stats =
        {
          enumerated = List.length cands;
          interpreted = !interpreted;
          pruned_por;
          pruned_symmetry;
          replays = !replays;
          exhausted = not more;
        };
    }
  end

(** From cluster-schedule verdicts to diagnostics: the NG2xx series.

    The replication coherence analyzer: consumes a cluster spec, a
    fault schedule and a replicated write workload (a {!subject}) and
    maps the {!Clusterstate} verdicts onto diagnostics, through the
    same {!Diagnostic}/{!Engine} machinery as the world and flow
    passes:

    - [NG201] (error): an LWW lost-update race — two provably
      concurrent writes to one name, one silently overwritten;
    - [NG202] (error): a write that can never reach some replica — the
      anti-entropy pull graph is not strongly connected over the run;
    - [NG203] (error): a replica provably stale beyond the staleness
      bound for a whole partition or crash window, with the witness
      sample index in [loc];
    - [NG204] (error): a durability hole — every retransmission of a
      write lands inside its home replica's crash window;
    - [NG205] (warning): a possible Lamport-stamp tie, the LWW winner
      decided only by origin id;
    - [NG206] (warning): the dedup window is smaller than the
      overlapping retry traffic, so exactly-once can break;
    - [NG207] (warning): a replica group that can never satisfy the
      paper's §5 equivalence (orphaned or dangling spec entry);
    - [NG208] (info): the replication verdict is undecided within the
      round budget;
    - [NG209] (warning): a leader-mode no-quorum window — the fault
      schedule provably denies a write quorum for an interval, so no
      transaction can commit and no election can complete inside it;
    - [NG210] (warning): a transaction-outcome-unknown horizon — a
      write whose client deadline expires inside a no-quorum window,
      so the client can learn neither commit nor abort in time.

    Every error-severity diagnostic rests on Must/Never facts of the
    abstract interpretation, so it is reproducible by a chaos replay of
    the same schedule: NG201 implies [lww_losses > 0] or a
    non-converged replay, NG202 a non-converged replay, NG203 a
    non-converged sample at the witness index, NG204 [writes_lost > 0].
    The test suite checks this over seeded schedules.

    The passes run depend on the schedule's consistency mode. An
    [`Lww_ae] subject runs the five LWW passes. A [`Leader_log] subject
    runs [cluster-spec] plus [cluster-availability] (NG209/NG210): the
    leader tier serializes every update through one quorum-committed
    log, which discharges the race, topology and durability passes by
    construction — what remains to analyze is the availability cost of
    that coherence. *)

type subject = {
  config : Dsim.Chaos.config;
  spec : Dsim.Nameserver.spec;
  workload : (float * int * Dsim.Nameserver.request) list;
}

val subject :
  ?workload:(float * int * Dsim.Nameserver.request) list ->
  Dsim.Chaos.config ->
  Dsim.Nameserver.spec ->
  subject
(** [workload] defaults to {!Dsim.Chaos.planned_writes} — exactly what
    a chaos run of this config and spec would issue. *)

val pass_ids : string list
(** The pass names of the [`Lww_ae] family, in execution order. *)

val leader_pass_ids : string list
(** The pass names run for a [`Leader_log] subject, in execution
    order: [cluster-spec] then [cluster-availability]. *)

val diagnostics :
  ?rounds:int -> subject -> Clusterstate.t * Diagnostic.t list
(** Runs all passes; [rounds] (default 2) is the round budget: the
    staleness bound of NG203 in anti-entropy periods, and the number of
    post-heal rounds within which convergence must be provable before
    NG208 reports an undecided verdict. *)

val report :
  ?min_severity:Diagnostic.severity ->
  ?rounds:int ->
  label:string ->
  subject ->
  Clusterstate.t * Engine.report
(** {!diagnostics} assembled into an {!Engine.report}: activities are
    the replicas, objects the spec leaves, context objects the spec
    dirs, probes the workload writes. *)

val report_many :
  ?min_severity:Diagnostic.severity ->
  ?rounds:int ->
  ?jobs:int ->
  (string * subject) list ->
  (Clusterstate.t * Engine.report) list
(** [report] over several labelled subjects, results in input order.
    Subjects are independent pure values, so with [jobs > 1] they fan
    out one task per subject on the shared domain pool; results are
    structurally identical to the sequential ones. *)

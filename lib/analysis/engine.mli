(** The multi-pass analyzer driver.

    Runs a configurable set of {!Passes} over a {!Subject}, collects the
    diagnostics into a deterministic report (severity descending, then
    code, then message), and renders it as text or JSON. Exit-code
    policy for CI: {!has_errors} reflects the {e unfiltered} error
    count, so gating is independent of the display filter. *)

type config = {
  min_severity : Diagnostic.severity;
      (** Diagnostics below this are dropped from the report (the
          severity counters still see them). *)
  passes : string list option;  (** pass ids to run; [None] = all *)
  fuel : int;  (** budget of the coherence predictor *)
  alias_depth : int;  (** name-enumeration depth of the alias pass *)
}

val default_config : config
(** [min_severity = Info], all passes, [fuel = Predict.default_fuel],
    [alias_depth = 4]. *)

type pass = {
  id : string;
  doc : string;
  run : config -> Subject.t -> Diagnostic.t list;
}

val all_passes : pass list
(** In execution order: structure, reachability, crosslinks, cycles,
    aliases, coherence. *)

type report = {
  label : string;  (** what was analyzed, e.g. the scheme name *)
  activities : int;
  objects : int;
  context_objects : int;
  probes : int;
  passes_run : string list;
  diagnostics : Diagnostic.t list;  (** sorted, filtered by severity *)
  errors : int;  (** unfiltered count *)
  warnings : int;  (** unfiltered count *)
  infos : int;  (** unfiltered count *)
}

val analyze : ?config:config -> label:string -> Subject.t -> report
(** @raise Invalid_argument when [config.passes] names an unknown
    pass. *)

val analyze_many :
  ?config:config -> ?jobs:int -> (string * Subject.t) list -> report list
(** Analyze several labelled subjects, reports in input order. Subjects
    are independent (each has its own store), so with [jobs > 1] the
    analyses fan out one task per subject on the shared domain pool,
    each subject's store frozen for the duration. Reports are
    structurally identical to the sequential ones.
    @raise Invalid_argument when [config.passes] names an unknown pass
    (raised on the caller's stack before any task is scheduled). *)

val assemble :
  ?min_severity:Diagnostic.severity ->
  label:string ->
  activities:int ->
  objects:int ->
  context_objects:int ->
  probes:int ->
  passes_run:string list ->
  Diagnostic.t list ->
  report
(** Builds a report from raw counts and diagnostics, applying the same
    sorting, counting and display-filter policy as {!analyze} — the
    entry point for analyses that are not world passes (e.g.
    {!Flowpasses}). *)

val has_errors : report -> bool
val exit_code : report list -> int
(** 1 when any report has errors, 0 otherwise. *)

val pp : Naming.Store.t -> Format.formatter -> report -> unit
val to_json : Naming.Store.t -> report -> Json.t

(** The analyzer's passes.

    Each pass inspects one aspect of the naming world and emits
    diagnostics ({!Diagnostic.catalogue} lists the codes). Passes are
    pure with respect to the store — they only read it — and
    independent, so the engine can run any subset.

    - [structure] (NG001–NG004): the four well-formedness conventions of
      {!Naming.Lint} — dot bindings and foreign bindings.
    - [reachability] (NG005): objects no activity can reach — orphans
      relative to the rule-selected activity contexts.
    - [crosslinks] (NG006–NG007): edges into a directory from outside
      its parent tree (paper §1, §6: links across autonomous systems);
      a cross-link is {e dangling} when the target subtree's own parent
      chain is broken — the home tree has lost it and only the
      cross-link keeps it alive.
    - [cycles] (NG008): directed cycles through non-dot edges, which
      break the tree-shape assumption and make name enumeration
      diverge.
    - [aliases] (NG009): entities denoted by several non-dot names from
      one activity's root — shared subgraphs and hard links (§6).
    - [coherence] (NG010–NG011): the static coherence predictor
      ({!Predict}) over the subject's probe names. *)

val structure : Subject.t -> Diagnostic.t list
val reachability : Subject.t -> Diagnostic.t list
val crosslinks : Subject.t -> Diagnostic.t list
val cycles : Subject.t -> Diagnostic.t list

val aliases : ?max_depth:int -> Subject.t -> Diagnostic.t list
(** [max_depth] bounds the name enumeration (default 4). *)

val coherence : ?fuel:int -> Subject.t -> Diagnostic.t list
(** [fuel] is the predictor's budget (default {!Predict.default_fuel}). *)

(** Diagnostics: the analyzer's unit of output.

    Every finding carries a stable code ([NG001]…), a severity, the pass
    that produced it, a rendered message and structured witnesses: the
    entities involved, the probe name (if any) and the resolution trace
    that exhibits the problem. Codes are append-only — tools and CI
    configurations key on them, so a code's meaning never changes. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val pp_severity : Format.formatter -> severity -> unit

type t = {
  code : string;  (** stable diagnostic code, e.g. ["NG003"] *)
  severity : severity;
  pass : string;  (** id of the pass that produced it *)
  message : string;  (** human-readable, labels already rendered *)
  entities : Naming.Entity.t list;  (** witness entities, most specific first *)
  name : Naming.Name.t option;  (** the name under analysis, if any *)
  trace : Naming.Resolver.trace;  (** witness resolution path (may be empty) *)
  loc : int option;
      (** position of the witness in the analyzed input — for flow
          analysis, the plan step index (and, via the CLI, the script
          line) *)
}

val make :
  code:string ->
  severity:severity ->
  pass:string ->
  ?entities:Naming.Entity.t list ->
  ?name:Naming.Name.t ->
  ?trace:Naming.Resolver.trace ->
  ?loc:int ->
  string ->
  t
(** [make ~code ~severity ~pass msg] builds a diagnostic. *)

val compare : t -> t -> int
(** Severity descending, then code, then message — the report order —
    with pass, loc and rendered name as final tiebreaks so the order is
    total over distinct findings and reports are deterministic at any
    job count. *)

val catalogue : (string * severity * string) list
(** Every code the analyzer can emit: (code, default severity, summary).
    Kept in sync with the passes by a unit test. *)

val pp : Naming.Store.t -> Format.formatter -> t -> unit
(** One line: code, severity, message; plus indented witness lines for
    the name and trace when present. *)

val to_json : Naming.Store.t -> t -> Json.t

(** Adversarial schedule explorer: seeded bounded model checking over
    the cluster protocol's fault-schedule space.

    Where {!Replpasses} verifies one {e given} schedule, this module
    asks the paper's §6 question in reverse: what schedules {e can} a
    naming configuration produce? It enumerates fault schedules
    (partition/crash windows quantized to the protocol-relevant
    boundaries of {!Bounds} — anti-entropy ticks, retry horizons) and
    write interleavings up to configurable bounds, prunes the space with
    partial-order reduction (writes to independent names commute, so
    only same-site write groups are enumerated) and replica-symmetry
    reduction (replicas on the same partition side with the same crash
    fate are interchangeable), and evaluates every candidate through the
    {!Clusterstate} abstract interpreter — cheap Must/Never facts whose
    soundness contract makes each finding replayable by construction.
    Only frontier candidates are confirmed by an actual chaos replay.

    Each finding is shrunk by greedy delta-debugging (drop writes, then
    the crash window, then the partition window, while the claim
    persists) into a minimized {!Dsim.Chaos.schedule} witness that
    [namingctl chaos --schedule] replays verbatim. *)

type config = {
  base : Dsim.Chaos.config;
      (** protocol parameters of the explored cluster; the fault window
          and workload fields are overridden per candidate *)
  depth : int;  (** candidate fault-window start boundaries *)
  max_writes : int;  (** writes per candidate schedule *)
  budget : int;  (** candidate schedules enumerated at most *)
  seed : int;  (** seed stamped into every candidate schedule *)
  rounds : int;  (** staleness bound, in anti-entropy rounds *)
}

val default : config
(** {!Dsim.Chaos.default} made deterministic and adversary-friendly
    (no random drop/duplication, no baked-in fault windows, 2 client
    attempts so retry budgets exhaust in-run), [depth = 3],
    [max_writes = 3], [budget = 2048], [seed = 42], [rounds = 2]. *)

(** What a witness schedule claims about {e every} execution of
    itself — the replay-checkable counterpart of a Must/Never fact. *)
type claim =
  | Lost_update  (** LWW silently discards a concurrent write *)
  | Lost_client_write  (** a client write provably never survives *)
  | Unreachable  (** some replica provably never reconverges *)
  | Stale_at of int
      (** sample [k] provably observes diverged replicas *)

val claim_holds : claim -> Dsim.Chaos.result -> bool
(** Does a chaos replay exhibit the claimed failure? Under [`Lww_ae] —
    [Lost_update]: LWW losses observed or the run did not converge;
    [Lost_client_write]: a retry budget exhausted; [Unreachable]: the
    run did not converge; [Stale_at k]: sample [k] saw unequal version
    vectors. Under [`Leader_log] (the replay config's mode) the loss
    claims demand an actually observed lost update — leader
    serialization keeps that counter at zero, so the LWW race/hole
    frontier is discharged by its own replay and only convergence/
    staleness defeats survive. *)

type stale = {
  replica : int;  (** the provably stale replica *)
  write : Clusterstate.write;  (** the update it cannot have seen *)
  sample : int;  (** index of the latest blocked sample *)
  time : float;  (** its sample instant *)
  count : int;  (** blocked samples inside the window *)
}

(** The static fact backing a witness, in terms of the minimized
    schedule's writes. *)
type found =
  | Race of Clusterstate.write * Clusterstate.write
      (** provably concurrent updates of one name *)
  | Hole of Clusterstate.write
      (** every retransmission lands in the crash window *)
  | Cut of Clusterstate.write * int
      (** the write can never reach the replica *)
  | Stale of stale

type witness = {
  code : string;  (** NG301, NG302 or NG303 *)
  claim : claim;
  found : found;
  schedule : Dsim.Chaos.schedule;  (** minimized, replayable *)
  unminimized : Dsim.Chaos.schedule;  (** as first synthesized *)
  shrink_trials : int;  (** delta-debugging evaluations spent *)
  replay : Dsim.Chaos.result;
      (** the confirming chaos replay of the minimized schedule *)
}

type stats = {
  enumerated : int;  (** candidate schedules drawn from the space *)
  interpreted : int;  (** abstract-interpreter evaluations *)
  pruned_por : int;
      (** schedules collapsed by partial-order reduction *)
  pruned_symmetry : int;
      (** schedules collapsed by site and replica symmetry *)
  replays : int;  (** concrete chaos replays *)
  exhausted : bool;  (** the whole bounded space was enumerated *)
}

type outcome = { witnesses : witness list; stats : stats }

val run : ?jobs:int -> ?config:config -> Dsim.Nameserver.spec -> outcome
(** Explores the schedule space of a cluster serving [spec]. At most
    one witness per claim kind is returned (the first found in
    enumeration order; for staleness, the blocked-sample maximizing
    one), each confirmed by replay — a witness whose minimized schedule
    fails to reproduce its claim is dropped. Under [`Lww_ae] the
    soundness contract makes dropping unreachable (the replay is
    defense in depth); with [base.mode = `Leader_log] dropping is the
    point — the statically-found LWW race/hole frontier replays against
    the leader tier and is discharged unless a commit is actually lost,
    so a leader-mode exploration reporting no loss witnesses is a
    replay-confirmed coherence claim. [jobs] fans candidate evaluation
    over the {!Naming.Pool} in enumeration order, so the outcome is
    identical at any job count. Probes for the confirming replays are
    the spec's directories and link paths, exactly as [namingctl chaos]
    derives them. *)

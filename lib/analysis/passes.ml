module E = Naming.Entity
module N = Naming.Name
module C = Naming.Context
module S = Naming.Store
module L = Naming.Lint

let es store e = Format.asprintf "%a" (S.pp_entity store) e

(* ------------------------------------------------------------------ *)
(* structure: NG001..NG004, the Lint conventions                       *)

let structure (t : Subject.t) =
  let store = t.Subject.store in
  let of_violation = function
    | L.Self_not_self d ->
        Diagnostic.make ~code:"NG001" ~severity:Diagnostic.Error
          ~pass:"structure" ~entities:[ d ]
          (Printf.sprintf "%s: '.' does not denote itself" (es store d))
    | L.Parent_not_directory (d, p) ->
        Diagnostic.make ~code:"NG002" ~severity:Diagnostic.Error
          ~pass:"structure" ~entities:[ d; p ]
          (Printf.sprintf "%s: '..' denotes non-directory %s" (es store d)
             (es store p))
    | L.Parent_not_linked (d, p) ->
        Diagnostic.make ~code:"NG003" ~severity:Diagnostic.Error
          ~pass:"structure" ~entities:[ d; p ]
          (Printf.sprintf "%s: parent %s does not link back" (es store d)
             (es store p))
    | L.Binding_to_foreign (d, a, e) ->
        Diagnostic.make ~code:"NG004" ~severity:Diagnostic.Error
          ~pass:"structure" ~entities:[ d; e ]
          (Printf.sprintf "%s: binding %s -> unknown entity %s" (es store d)
             (N.atom_to_string a) (E.to_string e))
  in
  List.map of_violation (L.check store).L.violations

(* ------------------------------------------------------------------ *)
(* reachability: NG005, orphan objects                                 *)

(* Anchored entities: everything reachable from some activity's selected
   context, plus the context objects whose state IS such a context (the
   per-activity context objects themselves, which nothing binds). *)
let anchored (t : Subject.t) =
  let store = t.Subject.store in
  let ctxs = List.map snd (Subject.contexts t) in
  let reach =
    List.fold_left
      (fun acc c -> E.Set.union acc (Naming.Graph.reachable_from_context store c))
      E.Set.empty ctxs
  in
  List.fold_left
    (fun acc o ->
      match S.context_of store o with
      | Some c when List.exists (C.equal c) ctxs -> E.Set.add o acc
      | _ -> acc)
    reach (S.context_objects store)

let reachability (t : Subject.t) =
  let store = t.Subject.store in
  let anchored = anchored t in
  List.filter_map
    (fun o ->
      if E.Set.mem o anchored then None
      else
        Some
          (Diagnostic.make ~code:"NG005" ~severity:Diagnostic.Warning
             ~pass:"reachability" ~entities:[ o ]
             (Printf.sprintf "%s is unreachable from every activity root"
                (es store o))))
    (S.objects store)

(* ------------------------------------------------------------------ *)
(* crosslinks: NG006 (cross-link), NG007 (dangling cross-link)         *)

(* An edge src -[a]-> dst is a cross-link when it enters directory [dst]
   from outside its parent tree: [a] is neither a dot nor "/", [dst]'s
   ".." denotes a directory, and that parent is not [src]. (A ".." to a
   non-directory is NG002's business, not a cross-link.) *)
let crosslink_edges store =
  List.filter
    (fun { Naming.Graph.src; label; dst } ->
      (not (L.is_dot label))
      && (not (N.atom_equal label N.root_atom))
      &&
      match S.context_of store dst with
      | None -> false
      | Some c ->
          let parent = C.lookup c N.parent_atom in
          E.is_defined parent
          && S.is_context_object store parent
          && not (E.equal parent src))
    (Naming.Graph.edges store)

(* Is [dst]'s home tree intact? Walk the ".." chain: every child must be
   linked back by its parent; a self-parent (a root) or a missing ".."
   ends the walk. *)
let parent_chain_intact store dst =
  let rec walk seen child =
    if E.Set.mem child seen then true (* ".." cycle: give up, not dangling *)
    else
      match S.context_of store child with
      | None -> false (* an ancestor is not a directory *)
      | Some c ->
          let parent = C.lookup c N.parent_atom in
          if E.is_undefined parent || E.equal parent child then true
          else if not (L.links_back store ~parent ~child) then false
          else walk (E.Set.add child seen) parent
  in
  walk E.Set.empty dst

let crosslinks (t : Subject.t) =
  let store = t.Subject.store in
  List.map
    (fun ({ Naming.Graph.src; label; dst } as _e) ->
      let where =
        Printf.sprintf "%s -[%s]-> %s" (es store src)
          (N.atom_to_string label) (es store dst)
      in
      if parent_chain_intact store dst then
        Diagnostic.make ~code:"NG006" ~severity:Diagnostic.Info
          ~pass:"crosslinks" ~entities:[ src; dst ]
          (Printf.sprintf "cross-link %s (enters a tree from outside)" where)
      else
        Diagnostic.make ~code:"NG007" ~severity:Diagnostic.Error
          ~pass:"crosslinks" ~entities:[ src; dst ]
          (Printf.sprintf
             "dangling cross-link %s: the target's own tree has lost it"
             where))
    (crosslink_edges store)

(* ------------------------------------------------------------------ *)
(* cycles: NG008, directed cycles through non-dot edges                *)

let cycles (t : Subject.t) =
  let store = t.Subject.store in
  let module T = E.Tbl in
  let colour = T.create 64 in
  let get e = match T.find_opt colour e with None -> `White | Some c -> c in
  let reported = T.create 8 in
  let diags = ref [] in
  let non_dot_succs e =
    List.filter_map
      (fun (a, dst) -> if L.is_dot a then None else Some dst)
      (Naming.Graph.out_edges store e)
  in
  let report cycle =
    (* One diagnostic per cycle; skip cycles sharing a node with one
       already reported. *)
    if not (List.exists (T.mem reported) cycle) then begin
      List.iter (fun e -> T.replace reported e ()) cycle;
      let path = String.concat " -> " (List.map (es store) cycle) in
      diags :=
        Diagnostic.make ~code:"NG008" ~severity:Diagnostic.Warning
          ~pass:"cycles" ~entities:cycle
          (Printf.sprintf "non-dot cycle: %s -> %s" path
             (es store (List.hd cycle)))
        :: !diags
    end
  in
  let rec visit path e =
    match get e with
    | `Grey ->
        (* [path] holds the grey stack, most recent first. *)
        let rec cycle_of acc = function
          | [] -> acc
          | x :: rest ->
              if E.equal x e then x :: acc else cycle_of (x :: acc) rest
        in
        report (cycle_of [] path)
    | `Black -> ()
    | `White ->
        T.replace colour e `Grey;
        List.iter (visit (e :: path)) (non_dot_succs e);
        T.replace colour e `Black
  in
  List.iter (visit []) (S.context_objects store);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* aliases: NG009, entities with several non-dot names                 *)

let aliases ?(max_depth = 4) (t : Subject.t) =
  let store = t.Subject.store in
  let seen = ref E.Set.empty in
  let diags = ref [] in
  List.iter
    (fun (a, ctx) ->
      let root = C.lookup ctx N.root_atom in
      match S.context_of store root with
      | None -> ()
      | Some root_ctx ->
          let by_entity =
            List.fold_left
              (fun acc (n, e) ->
                E.Map.update e
                  (function None -> Some [ n ] | Some ns -> Some (n :: ns))
                  acc)
              E.Map.empty
              (Naming.Graph.all_names store root_ctx ~max_depth ())
          in
          E.Map.iter
            (fun e names ->
              if List.length names > 1 && not (E.Set.mem e !seen) then begin
                seen := E.Set.add e !seen;
                let names = List.rev_map N.to_string names in
                diags :=
                  Diagnostic.make ~code:"NG009" ~severity:Diagnostic.Info
                    ~pass:"aliases" ~entities:[ e; a ]
                    (Printf.sprintf
                       "%s has %d non-dot names from %s's root: %s"
                       (es store e) (List.length names) (es store a)
                       (String.concat ", " names))
                  :: !diags
              end)
            by_entity)
    (Subject.contexts t);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* coherence: NG010 (provably incoherent), NG011 (undecided)           *)

let coherence ?fuel (t : Subject.t) =
  let store = t.Subject.store in
  let occs = Subject.occurrences t in
  List.filter_map
    (fun probe ->
      let p =
        Predict.predict ?fuel ~engine:t.Subject.engine store t.Subject.rule
          occs probe
      in
      match p.Predict.outcome with
      | Predict.Coherent _ | Predict.Vacuous -> None
      | Predict.Incoherent ((o1, e1), (o2, e2)) ->
          let trace =
            match
              List.find_opt
                (fun (o, _, tr) -> tr <> [] && Naming.Occurrence.equal o o2)
                p.Predict.results
            with
            | Some (_, _, tr) -> tr
            | None -> (
                match p.Predict.results with (_, _, tr) :: _ -> tr | [] -> [])
          in
          Some
            (Diagnostic.make ~code:"NG010" ~severity:Diagnostic.Warning
               ~pass:"coherence"
               ~entities:(List.filter E.is_defined [ e1; e2 ])
               ~name:probe ~trace
               (Format.asprintf "probe %s is provably incoherent: %a -> %s, %a -> %s"
                  (N.to_string probe) Naming.Occurrence.pp o1 (es store e1)
                  Naming.Occurrence.pp o2 (es store e2)))
      | Predict.Unknown why ->
          Some
            (Diagnostic.make ~code:"NG011" ~severity:Diagnostic.Info
               ~pass:"coherence" ~name:probe
               (Printf.sprintf "probe %s undecided: %s" (N.to_string probe)
                  why)))
    t.Subject.probes

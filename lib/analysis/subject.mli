(** The subject of an analysis: a naming world and the vantage points
    from which it is judged.

    A naming graph is not broken or incoherent in a vacuum — the paper's
    properties are all relative to a resolution rule and to the
    activities doing the resolving. A subject packages the store with
    that frame: the rule, the activities whose occurrences matter, and
    the probe names over which coherence is predicted. *)

type t = private {
  store : Naming.Store.t;
  rule : Naming.Rule.t;
  activities : Naming.Entity.t list;
  probes : Naming.Name.t list;
  engine : Naming.Engine.t;
      (** The resolution engine over [store], shared by analyses of this
          subject; {!default_probes} warms it. *)
}

val v :
  ?probes:Naming.Name.t list ->
  ?engine:Naming.Engine.t ->
  rule:Naming.Rule.t ->
  activities:Naming.Entity.t list ->
  Naming.Store.t ->
  t
(** When [probes] is omitted, {!default_probes} is used. The engine is
    chosen by {!Naming.Engine.select}: [?engine], then [NAMING_ENGINE],
    then a fresh cached engine — the historical default.
    @raise Invalid_argument on an empty activity list. *)

val engine : t -> Naming.Engine.t
(** The subject's shared engine (same as the [engine] field). *)

val cache : t -> Naming.Cache.t option
(** Its cache, when the engine is the cached one. *)

val occurrences : t -> Naming.Occurrence.t list
(** One [Generated] occurrence per activity, in order. *)

val contexts : t -> (Naming.Entity.t * Naming.Context.t) list
(** Each activity with the context the rule selects for its generated
    occurrence; activities for which the rule selects no context are
    omitted. *)

val default_probes : ?max_depth:int -> t -> Naming.Name.t list
(** The union, over the activities, of the absolute names of length ≤
    [max_depth] (default 3) resolvable from the activity's ["/"] binding,
    de-duplicated in first-seen order — the same generic probe set the
    CLI and the experiments use. *)

(* Shared schedule arithmetic: the protocol-derived constants and
   quantization grids every static cluster analyzer needs. Keeping them
   in one place means the retry/latency arithmetic of the abstract
   interpreter and the boundary grid of the schedule explorer cannot
   drift apart. *)

module Ch = Dsim.Chaos

let eps = 1e-6

let latency () =
  let net = Dsim.Network.default_config in
  ( net.Dsim.Network.latency,
    net.Dsim.Network.latency +. net.Dsim.Network.jitter )

let client_sends (cfg : Ch.config) =
  Dsim.Rpc.retry_schedule ~timeout:cfg.Ch.call_timeout
    ~attempts:cfg.Ch.call_attempts ()

let window_str (s, e) = Printf.sprintf "[%.1f; %.1f)" s e

(* Rounds [x] up to the next multiple of [step]. *)
let ceil_to step x = step *. Float.ceil (x /. step)

(* Rounds [x] down to the previous multiple of [step]. *)
let floor_to step x = step *. Float.floor (x /. step)

let window_starts ~depth (cfg : Ch.config) =
  List.init (max 0 depth) (fun j ->
      cfg.Ch.ae_period *. float_of_int (j + 1))

let window_lengths ~rounds ~start (cfg : Ch.config) =
  let p = cfg.Ch.ae_period in
  let _, (_, exhaust_hi) = client_sends cfg in
  let _, lat_hi = latency () in
  let stale = ceil_to p (2.0 *. float_of_int rounds *. p) in
  let retry = ceil_to p (exhaust_hi +. lat_hi +. p) in
  let closed =
    floor_to p (cfg.Ch.duration -. start -. (2.0 *. cfg.Ch.sample_every))
  in
  let open_ = cfg.Ch.duration -. start +. p in
  List.filter (fun l -> l > eps) [ stale; retry; closed; open_ ]
  |> List.sort_uniq compare

let write_offsets (cfg : Ch.config) =
  let lat_lo, _ = latency () in
  [ lat_lo; lat_lo +. cfg.Ch.ae_period ]

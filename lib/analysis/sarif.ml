type source = {
  report : Engine.report;
  uri : string option;
  line_of : int -> int option;
}

let of_report ?uri ?(line_of = fun _ -> None) report = { report; uri; line_of }

let level_of = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let rule (code, severity, summary) =
  Json.Obj
    [
      ("id", Json.String code);
      ("shortDescription", Json.Obj [ ("text", Json.String summary) ]);
      ( "defaultConfiguration",
        Json.Obj [ ("level", Json.String (level_of severity)) ] );
    ]

let location src (d : Diagnostic.t) =
  match src.uri with
  | Some uri ->
      let region =
        match Option.bind d.loc src.line_of with
        | Some line -> [ ("region", Json.Obj [ ("startLine", Json.Int line) ]) ]
        | None -> []
      in
      [
        ( "locations",
          Json.List
            [
              Json.Obj
                [
                  ( "physicalLocation",
                    Json.Obj
                      (("artifactLocation",
                        Json.Obj [ ("uri", Json.String uri) ])
                      :: region) );
                ];
            ] );
      ]
  | None ->
      [
        ( "locations",
          Json.List
            [
              Json.Obj
                [
                  ( "logicalLocations",
                    Json.List
                      [
                        Json.Obj
                          [
                            ( "name",
                              Json.String src.report.Engine.label );
                          ];
                      ] );
                ];
            ] );
      ]

let result src (d : Diagnostic.t) =
  Json.Obj
    ([
       ("ruleId", Json.String d.code);
       ("level", Json.String (level_of d.severity));
       ("message", Json.Obj [ ("text", Json.String d.message) ]);
       ( "properties",
         Json.Obj
           [
             ("pass", Json.String d.pass);
             ("label", Json.String src.report.Engine.label);
           ] );
     ]
    @ location src d)

let render sources =
  let results =
    List.concat_map
      (fun src -> List.map (result src) src.report.Engine.diagnostics)
      sources
  in
  let driver =
    Json.Obj
      [
        ("name", Json.String "namingctl");
        ("rules", Json.List (List.map rule Diagnostic.catalogue));
      ]
  in
  let run =
    Json.Obj
      [
        ("tool", Json.Obj [ ("driver", driver) ]);
        ("results", Json.List results);
      ]
  in
  Json.Obj
    [
      ( "$schema",
        Json.String
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Json.String "2.1.0");
      ("runs", Json.List [ run ]);
    ]

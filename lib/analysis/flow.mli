(** Name-flow analysis: static coherence checking of scripts.

    A {e plan} interleaves {!Workload.Script} operations with {e flows}
    — the three ways an activity obtains a name (paper, section 3):
    generating it ([use]), receiving it in a message ([send]), or
    reading it from an object it is embedded in ([read]). The analyzer
    shadow-interprets the operations over an {!Absstate} world and
    classifies every flow as provably coherent, provably incoherent,
    vacuous, or unknown — {e without} running the simulator. Each
    verdict carries a witness: the plan step, the per-side abstract
    resolutions and traces, and any stale-binding or fork-divergence
    evidence.

    {!replay} runs the same plan for real — ops through
    [Workload.Script.apply_checked], send flows through
    [Naming.Coherence.check] where the paper machinery applies directly
    — and {!agrees} states the soundness relation the qcheck suite
    enforces: a definite static verdict is never contradicted by the
    dynamic one. *)

type flow =
  | Use of { proc : int; name : Naming.Name.t }
      (** [proc] generates [name] internally and resolves it. *)
  | Send of { sender : int; receiver : int; name : Naming.Name.t }
      (** [name] travels in a message; coherence compares the sender's
          resolution with the resolution at the receiving end. *)
  | Read of { reader : int; path : string; name : Naming.Name.t }
      (** [reader] reads [name] embedded in the object at [path];
          coherence compares the denotation in the object's own scope
          (its containing directory; the host tree for absolute names)
          with the reader's resolution. *)

type step = Op of Workload.Script.op | Flow of flow
type plan = step list

type config = {
  received_rule : [ `Receiver | `Sender ];
      (** Context for the [Received] side of a send: [`Receiver] is the
          common OS closure R(receiver) — the paper's problematic
          default; [`Sender] models remapping/forwarding the sender's
          context with the message. *)
  embedded_rule : [ `Reader | `Source ];
      (** Context for the [Embedded] side of a read: [`Reader] resolves
          in the reading activity's context; [`Source] keeps the
          object's own scope (the coherent-by-construction remedy). *)
  fuel : int;  (** Names longer than this are not analyzed. *)
}

val default_config : config
(** [`Receiver], [`Reader], {!Predict.default_fuel}. *)

type reason =
  | Missing_ref of string
      (** The flow references a process or object that does not exist —
          typically the result of a silently-skipped op. *)
  | Fuel  (** The name exceeded [config.fuel]. *)

type outcome = Coherent | Incoherent | Vacuous | Unknown of reason

type side = {
  role : string;  (** e.g. ["proc 1 (receiver)"] or ["scope of /a/b"] *)
  value : Absstate.value;
  rendered : string;  (** the value, printed *)
  trace : string;  (** the abstract resolution trace, printed *)
  stale : Absstate.stale option;
      (** Set when the name's head was explicitly unbound earlier —
          the unbind-then-use witness. *)
}

type divergence = {
  parent : int;  (** fork parent of the resolving process *)
  parent_rendered : string;
  own_rendered : string;
}

type verdict = {
  index : int;  (** plan step index *)
  flow : flow;
  outcome : outcome;
  sides : side list;  (** empty on [Unknown] short-circuits *)
  divergence : divergence option;
      (** For [Use] flows: set when the process and its fork parent
          resolve the name to different entities. *)
}

type result = {
  config : config;
  verdicts : verdict list;  (** one per flow, in plan order *)
  skips : (int * Workload.Script.skip) list;
      (** Predicted silently-skipped ops, keyed by plan step index. *)
  ops : int;
  flows : int;
  procs : int;
  nodes : int;
  dirs : int;
}

val analyze : ?config:config -> plan -> result

val analyze_many : ?config:config -> ?jobs:int -> plan list -> result list
(** [analyze] over several plans, results in input order. Each analysis
    builds its own abstract state from its plan, so with [jobs > 1] the
    plans fan out one task per plan on the shared domain pool; results
    are structurally identical to the sequential ones. *)

(** {1 Dynamic cross-validation} *)

type dyn = { dyn_index : int; dyn_outcome : outcome; dyn_diverged : bool }

type replay_result = {
  dyn_verdicts : dyn list;
  dyn_skips : (int * Workload.Script.skip) list;
}

val replay :
  ?config:config -> ?engine:Naming.Engine.kind -> plan -> replay_result
(** Actually runs the plan over a fresh world and judges every flow
    from the concrete resolutions — absolute-name sends through
    [Naming.Coherence.check] under the configured rule, the rest
    through the per-activity resolutions of [Schemes.Process_env]. All
    resolutions share one {!Naming.Engine} of the given kind for the
    replayed world (cached by default; [NAMING_ENGINE] or [?engine]
    overrides) —
    exercising incremental recompilation when compiled, since script
    ops mutate the store between flows. *)

val agrees : outcome -> outcome -> bool
(** [agrees static dynamic] — the soundness relation: a static
    [Unknown] agrees with anything; any other static outcome must
    match the dynamic one exactly. *)

(** {1 Parsing and printing} *)

val parse : string -> (plan * int array, string) Stdlib.result
(** Parses the script-file syntax: one step per line — any
    [Workload.Script.op_of_string] line, or [use <proc> <name>],
    [send <sender> <receiver> <name>], [read <reader> <path> <name>].
    Blank lines and [#] comments are skipped. Returns the plan and the
    1-based source line of each step. *)

val flow_to_string : flow -> string
val step_to_string : step -> string
val pp_plan : Format.formatter -> plan -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_verdict : Format.formatter -> verdict -> unit

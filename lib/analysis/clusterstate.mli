(** Abstract interpretation of the replicated name service.

    Consumes a {!Dsim.Nameserver.spec}, a {!Dsim.Chaos.config} fault
    schedule and a replicated write workload, and computes — without
    executing the simulator — three-valued verdicts about every
    execution of that schedule: per-write acceptance ([Must]/[May]/
    [Never]) with time bounds, Lamport-stamp intervals, and a
    may-propagation (happens-before) relation over writes widened
    across anti-entropy rounds.

    The soundness contract every {!Replpasses} error diagnostic rests
    on: a [Must] fact holds in {e every} execution of the schedule, a
    [Never]/impossibility fact rules a behaviour out of every
    execution. The propagation relation deliberately over-approximates
    (it ignores the pull-request leg and the random peer choice), so
    impossibility claims — and hence the error diagnostics — stay
    conservative. *)

type tri = Must | May | Never

val tri_to_string : tri -> string

type write = {
  index : int;  (** position in the workload *)
  time : float;  (** client issue time *)
  origin : int;  (** client = home replica id *)
  path : Naming.Name.t;  (** absolute (root-prepended) directory path *)
  atom : Naming.Name.atom;
  target : string option;
  nacked : bool;  (** statically Nack'd: unknown directory or leaf key *)
  applies : tri;  (** does the home replica accept and apply the op? *)
  accept : float * float;
      (** acceptance-instant bounds: for [Must] writes acceptance
          provably happens inside this interval; for [May] writes the
          upper bound is the latest possible acceptance *)
  stamp : int * int;  (** Lamport-stamp bounds at acceptance *)
  lost_in_crash : bool;
      (** provably lost: every retransmission lands inside the home
          replica's crash window and the retry budget exhausts in-run *)
}

type t = {
  config : Dsim.Chaos.config;
  spec : Dsim.Nameserver.spec;
  writes : write array;
  sides : (int list * int list) option;  (** partition sides *)
  partition : (float * float) option;  (** partition window *)
  crash : (int * float * float) option;  (** victim, crash window *)
  heal_at : float;
  samples : float array;  (** coherence sampling instants *)
  lat : float * float;  (** one-way latency bounds between distinct nodes *)
  sends : (float * float) array;  (** client attempt send offsets *)
  exhaust : float * float;  (** client retry-budget exhaustion offsets *)
  duration : float;
}

val of_chaos :
  ?workload:(float * int * Dsim.Nameserver.request) list ->
  Dsim.Chaos.config ->
  Dsim.Nameserver.spec ->
  t
(** Interprets the schedule. [workload] defaults to
    {!Dsim.Chaos.planned_writes} — the exact workload a chaos run of
    this config and spec would issue; non-write requests are ignored. *)

val writes : t -> write list
val applied : write -> bool
(** The op possibly exists: [applies <> Never] and not [nacked]. *)

val key : write -> string * string
(** The LWW key the write targets: (directory path, atom). *)

val same_side : t -> int -> int -> bool
(** Whether two replicas are on the same partition side (always true
    without a partition). *)

val earliest_at : t -> origin:int -> from_:float -> int -> float option
(** [earliest_at t ~origin ~from_ d]: the earliest instant an op
    applied at [origin] at time [from_] could possibly be applied at
    replica [d] in any execution, via any chain of anti-entropy pulls;
    [None] when no execution delivers it within the run. [Some] answers
    are lower bounds (over-approximated possibility); [None] is an
    impossibility proof. *)

val must_concurrent : t -> write -> write -> bool
(** Provably concurrent: in no execution can either write's op have
    reached the other's origin before the other was accepted. *)

val stamps_may_tie : write -> write -> bool
(** The two stamp intervals overlap across distinct origins, so the
    LWW winner may be decided only by the origin-id tiebreak. *)

val reconverge_provable : ?rounds:int -> t -> bool
(** Whether reconvergence is provable within [rounds] (default 2)
    anti-entropy rounds after the last fault heals and the last write
    lands: only with two replicas (deterministic peer choice) and a
    loss-free network does any finite round budget constitute a
    proof. *)

val divergence_possible : t -> bool
(** Some execution could leave replicas diverged at least transiently:
    an op possibly exists and the schedule has faults. *)

val majority : t -> int
(** The write-quorum size under [`Leader_log]: [replicas/2 + 1]. *)

val no_quorum_windows : t -> (float * float) list
(** Maximal intervals of the run during which the fault schedule
    provably denies a write quorum under [`Leader_log] — in every
    execution, no connected side of the cluster has [majority] live
    replicas, so no transaction can commit and no leader election can
    complete. Quantifies over the statically-unknown fault targets
    (which replica the leader-kill takes down, which replica a
    [partition_leader] cut isolates): an interval is reported only when
    every choice denies quorum. Empty for [`Lww_ae] schedules. Windows
    are disjoint, sorted, and clipped to [0, duration]. *)

val outcome_unknown_horizon : t -> write -> (float * float) option
(** The no-quorum window that swallows the write's whole transaction
    budget, when one does: the write is issued inside the window and
    its [txn_deadline] expires before the window ends, so in every
    execution the client can observe neither [Committed] nor [Aborted]
    by its deadline and must report the outcome unknown. [None] for
    [`Lww_ae] schedules. *)

(** Static coherence prediction.

    [Coherence.check] observes incoherence dynamically: it performs the
    resolutions and compares the results. This module predicts the same
    verdict from the naming graph alone, the way a static analyzer
    would: it extracts the context each occurrence's rule selects,
    walks the resolution {e traces} through the graph, and classifies
    the probe by comparing the paths — without consulting the dynamic
    checker. The classification is three-valued: a probe is
    {e provably} coherent or incoherent when the traces decide it
    within the analysis budget, and [Unknown] otherwise. Soundness —
    a provable verdict never contradicts [Coherence.check] on the same
    snapshot — is the analyzer's central invariant, enforced by
    {!agrees} and a property test.

    Two honest limitations produce [Unknown]: the step budget ([fuel],
    the analyzer's analogue of a widening threshold), and the absence
    of a replica-equivalence model — a probe we prove incoherent may
    still be {e weakly} coherent under an equivalence the analyzer does
    not know (so {!agrees} accepts [Weakly_coherent] there). *)

type outcome =
  | Coherent of Naming.Entity.t
      (** Every occurrence's trace reaches this defined entity. *)
  | Incoherent of
      (Naming.Occurrence.t * Naming.Entity.t)
      * (Naming.Occurrence.t * Naming.Entity.t)
      (** Two witnessing occurrences whose traces end differently
          (mirrors [Coherence.Incoherent]). *)
  | Vacuous  (** Every trace fails: the probe denotes ⊥ everywhere. *)
  | Unknown of string  (** Undecided; the string says why. *)

type evidence =
  | Same_context
      (** All occurrences resolve in equal context values, so the
          traces are necessarily identical — one walk decides. *)
  | Traces_compared of { converge_at : int option }
      (** Full trace comparison. [converge_at = Some k]: the traces
          join at step [k] (0-based) and share the rest of the path —
          the paper's shared-subgraph argument (§6). [None]: they never
          join. *)
  | Budget_exceeded  (** The probe was longer than the fuel. *)

type t = {
  outcome : outcome;
  evidence : evidence;
  results :
    (Naming.Occurrence.t * Naming.Entity.t * Naming.Resolver.trace) list;
      (** Per-occurrence endpoint and path ([[]] under [Budget_exceeded]
          or when the rule selects no context). *)
}

val default_fuel : int
(** 64 resolution steps. *)

val predict :
  ?fuel:int ->
  ?engine:Naming.Engine.t ->
  Naming.Store.t ->
  Naming.Rule.t ->
  Naming.Occurrence.t list ->
  Naming.Name.t ->
  t
(** Traces go through [engine] (default {!Naming.Engine.of_env}: the
    interpreter unless [NAMING_ENGINE] says otherwise); every engine
    produces the same steps, so predictions are engine-independent.
    @raise Invalid_argument on an empty occurrence list. *)

val agrees : t -> Naming.Coherence.verdict -> bool
(** Soundness relation: [Unknown] agrees with everything; [Coherent e]
    with [Coherent e] and with [Weakly_coherent]; [Incoherent] with
    [Incoherent] and with [Weakly_coherent] (see above); [Vacuous] with
    [Vacuous]. *)

val outcome_to_string : outcome -> string
val pp : Naming.Store.t -> Format.formatter -> t -> unit

(** Abstract naming worlds: the static mirror of [Workload.Script].

    The script op language is deterministic over a fresh world, so its
    effect can be shadow-interpreted exactly: abstract nodes stand for
    the directories and files a replay would create, abstract processes
    for the activities, and string maps for their contexts. Two facts
    make the mirror sound: the correspondence between abstract node ids
    and concrete entities is a bijection maintained op by op, and every
    skip condition of {!Workload.Script.apply_checked} is reproduced
    here, so [Bot] means "a replay would resolve this to ⊥" — not "the
    analysis gave up". The flow analyzer ({!Flow}) builds its coherence
    verdicts on top of this state; the qcheck suite cross-validates the
    mirror against actual replays. *)

type t

type value = Bot | Node of int
(** An abstract denotation: ⊥, or the id of an abstract entity. Equal
    ids denote the same concrete entity in any replay; distinct ids
    denote distinct entities. *)

type step = { at : value; atom : string; target : value }
(** One step of an abstract resolution trace, mirroring
    [Naming.Resolver.step]: the object resolved at ([Bot] on the first
    step, where the activity's own context is used), the atom looked
    up, and its denotation. *)

type stale = { binding : string; unbound_at : int }
(** A name head that is no longer bound in the resolving process but
    was explicitly [Unbind]-ed at op index [unbound_at] — the witness
    for the unbind-then-use diagnostic. *)

val create : unit -> t
(** A fresh world: one root directory (with ["."] and [".."] dot
    entries, as [Workload.Script.new_world] builds its file system) and
    no processes. *)

val apply : t -> index:int -> Workload.Script.op -> (unit, string) result
(** Interprets one op at position [index] of the script. [Error reason]
    predicts that [Workload.Script.apply_checked] would skip this op;
    the skip is also recorded (see {!skips}) and the state is
    unchanged. *)

val skips : t -> Workload.Script.skip list
(** Predicted skips so far, in op order. *)

val root : t -> int
val n_nodes : t -> int
val n_dirs : t -> int
val n_procs : t -> int
val mem_proc : t -> int -> bool
val proc_label : t -> int -> string

val proc_parent : t -> int -> int option
(** The fork parent, for divergence checks. *)

val parse_path : string -> (string list, string) result
(** Mirror of [Naming.Name.of_string]: atoms of a path, a leading ["/"]
    atom marking an absolute name. *)

val resolve_proc : t -> int -> string list -> value * step list * stale option
(** Resolves a name (as atoms) for a process, mirroring the
    [Schemes.Process_env.resolve] dispatch: absolute names through the
    context, relative names with a directly-bound head likewise, any
    other relative name prefixed with ["."] (cwd-relative). The process
    must exist ({!mem_proc}). *)

val resolve_at : t -> dir:int -> string list -> value * step list
(** Resolves a relative name in the scope of a directory node,
    mirroring [Vfs.Fs.resolve_from] — in particular a leading ["/"]
    atom finds nothing unless the directory explicitly binds one. *)

val lookup_path : t -> string -> value * step list
(** Mirror of [Vfs.Fs.lookup]: resolution from the root; [Bot] on an
    unparseable path. *)

val parent_dir_of : t -> string -> value
(** The directory containing the object a path names — the scope in
    which a name embedded in that object is read. The root for
    single-atom paths; [Bot] when the parent does not resolve to a
    directory or the path is unparseable. *)

val equal_value : value -> value -> bool
val pp_value : t -> Format.formatter -> value -> unit
val pp_trace : t -> Format.formatter -> step list -> unit

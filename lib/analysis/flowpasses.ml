module D = Diagnostic
module F = Flow

let flow_pass = "name-flow"
let skip_pass = "skips"

let flow_name = function
  | F.Use { name; _ } | F.Send { name; _ } | F.Read { name; _ } -> name

let side_str (s : F.side) =
  if String.equal s.trace "" then Printf.sprintf "%s → %s" s.role s.rendered
  else Printf.sprintf "%s → %s via [%s]" s.role s.rendered s.trace

let of_verdict (v : F.verdict) =
  let fl_s = F.flow_to_string v.flow in
  let name = flow_name v.flow in
  let mk ~code ~severity msg =
    D.make ~code ~severity ~pass:flow_pass ~name ~loc:v.index msg
  in
  let sides_str () = String.concat "; " (List.map side_str v.sides) in
  let base =
    match (v.outcome, v.flow) with
    | F.Incoherent, F.Send _ ->
        [
          mk ~code:"NG101" ~severity:D.Error
            (Printf.sprintf "%s: %s" fl_s (sides_str ()));
        ]
    | F.Incoherent, F.Read _ ->
        [
          mk ~code:"NG102" ~severity:D.Error
            (Printf.sprintf "%s: %s" fl_s (sides_str ()));
        ]
    | F.Incoherent, F.Use _ -> []
    | F.Unknown F.Fuel, _ ->
        [
          mk ~code:"NG106" ~severity:D.Info
            (Printf.sprintf "%s: not decided within the fuel budget" fl_s);
        ]
    | F.Unknown (F.Missing_ref reason), _ ->
        [
          mk ~code:"NG105" ~severity:D.Warning
            (Printf.sprintf "%s: %s" fl_s reason);
        ]
    | (F.Coherent | F.Vacuous), _ -> []
  in
  let stales =
    List.filter_map
      (fun (s : F.side) ->
        Option.map (fun st -> (st, s.F.role)) s.F.stale)
      v.sides
    |> List.sort_uniq (fun ((a : Absstate.stale), _) (b, _) ->
           compare (a.Absstate.binding, a.Absstate.unbound_at)
             (b.Absstate.binding, b.Absstate.unbound_at))
    |> List.map (fun ((st : Absstate.stale), role) ->
           mk ~code:"NG103" ~severity:D.Warning
             (Printf.sprintf "%s: %s resolves through %S, unbound at op %d"
                fl_s role st.Absstate.binding st.Absstate.unbound_at))
  in
  let divs =
    match v.divergence with
    | Some { F.parent; parent_rendered; own_rendered } ->
        [
          mk ~code:"NG104" ~severity:D.Warning
            (Printf.sprintf "%s: resolves %s but fork parent %d resolves %s"
               fl_s own_rendered parent parent_rendered);
        ]
    | None -> []
  in
  base @ stales @ divs

let of_skip (plan_idx, (sk : Workload.Script.skip)) =
  D.make ~code:"NG105" ~severity:D.Warning ~pass:skip_pass ~loc:plan_idx
    (Format.asprintf "%a" Workload.Script.pp_skip sk)

let diagnostics (r : F.result) =
  List.concat_map of_verdict r.F.verdicts @ List.map of_skip r.F.skips

let report ?min_severity ?config ~label plan =
  let r = F.analyze ?config plan in
  let rep =
    Engine.assemble ?min_severity ~label ~activities:r.F.procs
      ~objects:r.F.nodes ~context_objects:r.F.dirs ~probes:r.F.flows
      ~passes_run:[ flow_pass; skip_pass ]
      (diagnostics r)
  in
  (r, rep)

(* Each Flow.analyze builds its own store from the plan, so labelled
   plans are fully independent: one pool task per plan. *)
let report_many ?min_severity ?config ?jobs plans =
  match Naming.Pool.get ?jobs () with
  | None ->
      List.map (fun (label, plan) -> report ?min_severity ?config ~label plan)
        plans
  | Some pool ->
      Naming.Pool.map pool
        (fun (label, plan) -> report ?min_severity ?config ~label plan)
        plans

(** A minimal JSON tree and printer.

    The analyzer emits machine-readable reports (for CI and tooling)
    without pulling in a JSON dependency: this module covers exactly the
    subset we produce — objects, arrays, strings, numbers, booleans and
    null — with RFC 8259 string escaping. There is deliberately no
    parser; consumers are external tools. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, deterministic (fields print in the
    order given), suitable for golden tests. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering onto a formatter. *)

module Sc = Workload.Script
module Smap = Map.Make (String)

type value = Bot | Node of int
type step = { at : value; atom : string; target : value }
type stale = { binding : string; unbound_at : int }
type kind = Dir | File

type node = { kind : kind; label : string; mutable entries : int Smap.t }

type proc = {
  plabel : string;
  parent : int option;
  mutable bindings : int Smap.t;
  mutable retired : int Smap.t;  (* binding -> op index of the unbind *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable next_node : int;
  root : int;
  procs : (int, proc) Hashtbl.t;
  mutable n_procs : int;
  mutable rev_skips : Sc.skip list;
}

let node t id = Hashtbl.find t.nodes id

let new_node t kind label =
  let id = t.next_node in
  t.next_node <- id + 1;
  Hashtbl.replace t.nodes id { kind; label; entries = Smap.empty };
  id

(* Mirror of [Fs.add_dots]: every directory carries "." and ".." as
   ordinary entries (script worlds are created with dots). *)
let new_dir t label ~parent =
  let id = new_node t Dir label in
  let n = node t id in
  n.entries <- Smap.add "." id (Smap.add ".." parent n.entries);
  id

let create () =
  let t =
    {
      nodes = Hashtbl.create 64;
      next_node = 0;
      root = 0;
      procs = Hashtbl.create 16;
      n_procs = 0;
      rev_skips = [];
    }
  in
  ignore (new_dir t "/" ~parent:0 : int);
  t

let root t = t.root
let n_nodes t = Hashtbl.length t.nodes

let n_dirs t =
  Hashtbl.fold (fun _ n acc -> if n.kind = Dir then acc + 1 else acc) t.nodes 0
let n_procs t = t.n_procs
let mem_proc t i = Hashtbl.mem t.procs i
let proc t i = Hashtbl.find t.procs i
let proc_label t i = (proc t i).plabel
let proc_parent t i = (proc t i).parent
let skips t = List.rev t.rev_skips
let equal_value a b = match (a, b) with
  | Bot, Bot -> true
  | Node i, Node j -> i = j
  | Bot, Node _ | Node _, Bot -> false

(* ------------------------------------------------------------------ *)
(* Path parsing: mirror of [Naming.Name.of_string].                    *)

let parse_path s =
  if String.equal s "" then Error "empty name"
  else
    let parts = String.split_on_char '/' s in
    let absolute = Char.equal s.[0] '/' in
    let comps = List.filter (fun c -> not (String.equal c "")) parts in
    match (absolute, comps) with
    | true, l -> Ok ("/" :: l)
    | false, [] -> Error (Printf.sprintf "name %S has no components" s)
    | false, l -> Ok l

let path_to_string = function
  | [ "/" ] -> "/"
  | "/" :: rest -> "/" ^ String.concat "/" rest
  | atoms -> String.concat "/" atoms

(* Mirror of [Fs.relative_atoms]: atoms resolved from the root. *)
let relative_atoms atoms =
  match atoms with "/" :: rest -> rest | l -> l

let valid_atom s =
  String.equal s "/" || ((not (String.equal s "")) && not (String.contains s '/'))

(* ------------------------------------------------------------------ *)
(* Resolution: mirror of [Naming.Resolver.resolve_trace].              *)

let resolve_in t bindings atoms =
  let look b a = match Smap.find_opt a b with Some id -> Node id | None -> Bot in
  let rec go at bindings atoms rev_trace =
    match atoms with
    | [] -> (Bot, List.rev rev_trace)
    | [ a ] ->
        let e = look bindings a in
        (e, List.rev ({ at; atom = a; target = e } :: rev_trace))
    | a :: rest -> (
        let e = look bindings a in
        let rev_trace = { at; atom = a; target = e } :: rev_trace in
        match e with
        | Node id when (node t id).kind = Dir ->
            go e (node t id).entries rest rev_trace
        | Node _ | Bot -> (Bot, List.rev rev_trace))
  in
  go Bot bindings atoms []

let resolve_at t ~dir atoms =
  match node t dir with
  | { kind = Dir; entries; _ } -> resolve_in t entries atoms
  | { kind = File; _ } -> (Bot, [])
  | exception Not_found -> (Bot, [])

let lookup_path t path =
  match parse_path path with
  | Error _ -> (Bot, [])
  | Ok atoms -> (
      match relative_atoms atoms with
      | [] -> (Node t.root, [])
      | l -> resolve_at t ~dir:t.root l)

let parent_dir_of t path =
  match parse_path path with
  | Error _ -> Bot
  | Ok atoms -> (
      match List.rev (relative_atoms atoms) with
      | [] | [ _ ] -> Node t.root
      | _ :: rev_parent -> (
          match resolve_at t ~dir:t.root (List.rev rev_parent) with
          | Node id, _ when (node t id).kind = Dir -> Node id
          | _ -> Bot))

let resolve_proc t i atoms =
  let p = proc t i in
  let head = List.hd atoms in
  let dispatched =
    if String.equal head "/" then atoms
    else if Smap.mem head p.bindings then atoms
    else "." :: atoms
  in
  let stale =
    if (not (Smap.mem head p.bindings)) && Smap.mem head p.retired then
      Some { binding = head; unbound_at = Smap.find head p.retired }
    else None
  in
  let v, trace = resolve_in t p.bindings dispatched in
  (v, trace, stale)

(* ------------------------------------------------------------------ *)
(* Op interpretation: mirror of [Workload.Script.apply_checked].       *)

let no_proc idx = Error (Printf.sprintf "no process %d" idx)
let no_dir path = Error (Printf.sprintf "%s is not a directory" path)

let mkdir t ~under name =
  let u = node t under in
  match Smap.find_opt name u.entries with
  | Some id when (node t id).kind = Dir -> Ok id
  | Some _ ->
      Error (Printf.sprintf "Fs.mkdir: %s exists and is a file" name)
  | None ->
      let id = new_dir t name ~parent:under in
      u.entries <- Smap.add name id u.entries;
      Ok id

let mkdir_atoms t atoms =
  List.fold_left
    (fun acc a -> Result.bind acc (fun dir -> mkdir t ~under:dir a))
    (Ok t.root) atoms

let mkdir_path t path =
  Result.bind (parse_path path) (fun atoms ->
      mkdir_atoms t (relative_atoms atoms))

let add_file t path =
  Result.bind (parse_path path) (fun atoms ->
      match List.rev (relative_atoms atoms) with
      | [] -> Error "Fs.add_file: path names the root"
      | base :: rev_dirs ->
          Result.bind (mkdir_atoms t (List.rev rev_dirs)) (fun dir ->
              let d = node t dir in
              match Smap.find_opt base d.entries with
              | Some id when (node t id).kind = Dir ->
                  Error
                    (Printf.sprintf "Fs.add_file: %s is an existing directory"
                       path)
              | Some id -> Ok id
              | None ->
                  let id = new_node t File base in
                  d.entries <- Smap.add base id d.entries;
                  Ok id))

let dir_of_path t path =
  (* Mirror of [Script.dir_at_checked]: resolve and require a directory. *)
  match parse_path path with
  | Error msg -> Error msg
  | Ok _ -> (
      match lookup_path t path with
      | Node id, _ when (node t id).kind = Dir -> Ok id
      | _ -> no_dir path)

let new_proc t ?parent ~label bindings retired =
  let i = t.n_procs in
  t.n_procs <- i + 1;
  Hashtbl.replace t.procs i { plabel = label; parent; bindings; retired }

let apply_op t ~index op =
  match op with
  | Sc.Mkdir path -> Result.map ignore (mkdir_path t path)
  | Sc.Add_file (path, _content) -> Result.map ignore (add_file t path)
  | Sc.Write (path, _content) -> (
      match lookup_path t path with
      | Node id, _ when (node t id).kind = File -> Ok ()
      | _ -> (
          match parse_path path with
          | Error msg -> Error msg
          | Ok _ -> Error (Printf.sprintf "%s is not a file" path)))
  | Sc.Unlink path -> (
      match parse_path path with
      | Error msg -> Error msg
      | Ok atoms -> (
          match List.rev atoms with
          | [] | [ _ ] -> Error (Printf.sprintf "%s has no parent" path)
          | last :: rev_parent -> (
              let parent_atoms = List.rev rev_parent in
              let parent =
                match parent_atoms with
                | [ "/" ] -> Ok t.root
                | _ -> (
                    match
                      resolve_at t ~dir:t.root (relative_atoms parent_atoms)
                    with
                    | Node id, _ when (node t id).kind = Dir -> Ok id
                    | _ -> no_dir (path_to_string parent_atoms))
              in
              match parent with
              | Error _ as e -> e
              | Ok dir ->
                  let d = node t dir in
                  d.entries <- Smap.remove last d.entries;
                  Ok ())))
  | Sc.Spawn label ->
      let bindings = Smap.add "/" t.root (Smap.add "." t.root Smap.empty) in
      new_proc t ~label bindings Smap.empty;
      Ok ()
  | Sc.Fork idx ->
      if mem_proc t idx then begin
        let p = proc t idx in
        new_proc t ~parent:idx ~label:(p.plabel ^ "'") p.bindings p.retired;
        Ok ()
      end
      else no_proc idx
  | Sc.Chdir (idx, path) ->
      if not (mem_proc t idx) then no_proc idx
      else
        Result.map
          (fun dir ->
            let p = proc t idx in
            p.bindings <- Smap.add "." dir p.bindings)
          (dir_of_path t path)
  | Sc.Chroot (idx, path) ->
      if not (mem_proc t idx) then no_proc idx
      else
        Result.map
          (fun dir ->
            let p = proc t idx in
            p.bindings <- Smap.add "/" dir p.bindings)
          (dir_of_path t path)
  | Sc.Bind (idx, name, path) ->
      if not (mem_proc t idx) then no_proc idx
      else
        Result.bind (dir_of_path t path) (fun dir ->
            if not (valid_atom name) then
              Error
                (if String.equal name "" then "empty atom"
                 else Printf.sprintf "atom %S contains '/'" name)
            else begin
              let p = proc t idx in
              p.bindings <- Smap.add name dir p.bindings;
              p.retired <- Smap.remove name p.retired;
              Ok ()
            end)
  | Sc.Unbind (idx, name) ->
      if not (mem_proc t idx) then no_proc idx
      else if not (valid_atom name) then
        Error
          (if String.equal name "" then "empty atom"
           else Printf.sprintf "atom %S contains '/'" name)
      else begin
        let p = proc t idx in
        if Smap.mem name p.bindings then begin
          p.bindings <- Smap.remove name p.bindings;
          p.retired <- Smap.add name index p.retired
        end;
        Ok ()
      end

let apply t ~index op =
  match apply_op t ~index op with
  | Ok () -> Ok ()
  | Error reason ->
      t.rev_skips <- { Sc.index; op; reason } :: t.rev_skips;
      Error reason

(* ------------------------------------------------------------------ *)

let pp_value t ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Node id -> (
      match node t id with
      | { label; _ } -> Format.fprintf ppf "n%d:%s" id label
      | exception Not_found -> Format.fprintf ppf "n%d" id)

let pp_trace t ppf trace =
  let pp_step ppf { at; atom; target } =
    match at with
    | Bot -> Format.fprintf ppf "%s → %a" atom (pp_value t) target
    | Node _ ->
        Format.fprintf ppf "%a.%s → %a" (pp_value t) at atom (pp_value t)
          target
  in
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_step)
    trace

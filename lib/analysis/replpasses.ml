(* From cluster-schedule verdicts to diagnostics: the NG2xx series.

   Error-severity codes (NG201-NG204) are backed by Must/Never facts of
   the abstract interpretation in [Clusterstate], so every one of them
   is reproducible by a chaos replay of the same schedule — the
   cross-validation property the test suite checks over seeded
   schedules. Warnings (NG205-NG207) and the undecided verdict (NG208)
   are may-facts. *)

module Cs = Clusterstate
module Ch = Dsim.Chaos
module Ns = Dsim.Nameserver
module N = Naming.Name

type subject = {
  config : Ch.config;
  spec : Ns.spec;
  workload : (float * int * Ns.request) list;
}

let subject ?workload config spec =
  let workload =
    match workload with Some w -> w | None -> Ch.planned_writes config spec
  in
  { config; spec; workload }

let diag = Diagnostic.make

let write_name (w : Cs.write) = N.snoc w.Cs.path w.Cs.atom

let write_str (w : Cs.write) =
  Printf.sprintf "write #%d (ns%d t=%.1f %s%s)" w.Cs.index w.Cs.origin
    w.Cs.time
    (N.to_string (write_name w))
    (match w.Cs.target with
    | Some k -> Printf.sprintf "→%s" k
    | None -> "→unbind")

let window_str = Bounds.window_str

(* ------------------------------------------------------------------ *)
(* cluster-spec: NG207 — groups that can never satisfy §5 equivalence. *)

let path_key p = N.to_string (N.prepend_root p)

let parent_key p =
  match List.rev (N.atoms (N.prepend_root p)) with
  | _ :: (_ :: _ as rev_parent) -> path_key (N.of_atoms (List.rev rev_parent))
  | _ -> path_key (N.singleton N.root_atom)

let spec_pass (spec : Ns.spec) =
  let pass = "cluster-spec" in
  let dirs = Hashtbl.create 16 in
  Hashtbl.replace dirs (path_key (N.singleton N.root_atom)) ();
  List.iter (fun d -> Hashtbl.replace dirs (path_key d) ()) spec.Ns.dirs;
  let leaves = Hashtbl.create 16 in
  List.iter (fun (k, _) -> Hashtbl.replace leaves k ()) spec.Ns.leaves;
  let orphan what p =
    diag ~code:"NG207" ~severity:Diagnostic.Warning ~pass ~name:p
      (Printf.sprintf
         "%s %s is orphaned: parent %s is not in the spec, so the binding \
          is silently dropped on every replica and the mirror group can \
          never satisfy §5 equivalence"
         what (path_key p) (parent_key p))
  in
  List.concat
    [
      List.filter_map
        (fun d ->
          if Hashtbl.mem dirs (parent_key d) then None
          else Some (orphan "directory" d))
        spec.Ns.dirs;
      List.filter_map
        (fun (p, k) ->
          if not (Hashtbl.mem dirs (parent_key p)) then
            Some (orphan "link" p)
          else if not (Hashtbl.mem leaves k) then
            Some
              (diag ~code:"NG207" ~severity:Diagnostic.Warning ~pass ~name:p
                 (Printf.sprintf
                    "link %s refers to unknown leaf key %S: the binding is \
                     silently dropped on every replica"
                    (path_key p) k))
          else if Hashtbl.mem dirs (path_key p) then
            Some
              (diag ~code:"NG207" ~severity:Diagnostic.Warning ~pass ~name:p
                 (Printf.sprintf
                    "link %s shadows the mirror directory of the same path: \
                     the replica group can never satisfy §5 equivalence"
                    (path_key p)))
          else None)
        spec.Ns.links;
    ]

(* ------------------------------------------------------------------ *)
(* cluster-races: NG201 (must-concurrent LWW losses), NG205 (ties).    *)

let races_pass (st : Cs.t) =
  let pass = "cluster-races" in
  let ws = Array.of_list (Cs.writes st) in
  let n = Array.length ws in
  let ng201 = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = ws.(i) and b = ws.(j) in
      if
        a.Cs.applies = Cs.Must && b.Cs.applies = Cs.Must
        && Cs.applied a && Cs.applied b
        && Cs.key a = Cs.key b
        && a.Cs.target <> b.Cs.target
        && Cs.must_concurrent st a b
      then
        ng201 :=
          diag ~code:"NG201" ~severity:Diagnostic.Error ~pass
            ~name:(write_name b) ~loc:b.Cs.index
            (Printf.sprintf
               "%s and %s are provably concurrent updates of one name: \
                neither op can reach the other's replica before both are \
                accepted, so last-writer-wins silently discards one of \
                them"
               (write_str a) (write_str b))
          :: !ng201
    done
  done;
  (* One NG205 per site with a possible stamp tie: the pair's witness
     intervals show the winner hangs on the origin-id tiebreak. *)
  let sites = Hashtbl.create 16 in
  Array.iter
    (fun w ->
      if Cs.applied w then
        Hashtbl.replace sites (Cs.key w)
          (w :: (try Hashtbl.find sites (Cs.key w) with Not_found -> [])))
    ws;
  let ng205 =
    Hashtbl.fold (fun k ws acc -> (k, List.rev ws) :: acc) sites []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
    |> List.filter_map (fun ((path, atom), ws) ->
           let rec first_tie = function
             | a :: rest -> (
                 match List.find_opt (Cs.stamps_may_tie a) rest with
                 | Some b -> Some (a, b)
                 | None -> first_tie rest)
             | [] -> None
           in
           match first_tie ws with
           | None -> None
           | Some (a, b) ->
               Some
                 (diag ~code:"NG205" ~severity:Diagnostic.Warning ~pass
                    ~name:(write_name a) ~loc:b.Cs.index
                    (Printf.sprintf
                       "site %s·%s: %s (stamp in [%d; %d]) and %s (stamp \
                        in [%d; %d]) may tie on Lamport stamp, leaving \
                        the LWW winner decided only by origin id"
                       path atom (write_str a) (fst a.Cs.stamp)
                       (snd a.Cs.stamp) (write_str b) (fst b.Cs.stamp)
                       (snd b.Cs.stamp))))
  in
  List.rev !ng201 @ ng205

(* ------------------------------------------------------------------ *)
(* cluster-topology: NG202 (provable non-convergence), NG203           *)
(* (staleness bound exceeded over a whole fault window).               *)

let eps = Bounds.eps

let topology_pass ~rounds (st : Cs.t) =
  let pass = "cluster-topology" in
  let cfg = st.Cs.config in
  let must_writes =
    List.filter (fun w -> w.Cs.applies = Cs.Must && Cs.applied w)
      (Cs.writes st)
  in
  let ng202 = ref [] in
  for d = 0 to cfg.Ch.replicas - 1 do
    match
      List.find_opt
        (fun (w : Cs.write) ->
          w.Cs.origin <> d
          && Cs.earliest_at st ~origin:w.Cs.origin ~from_:(fst w.Cs.accept) d
             = None)
        must_writes
    with
    | Some w ->
        ng202 :=
          diag ~code:"NG202" ~severity:Diagnostic.Error ~pass
            ~name:(write_name w) ~loc:w.Cs.index
            (Printf.sprintf
               "%s can never reach ns%d within the run: the anti-entropy \
                pull graph is not strongly connected over the schedule, \
                so the replicas provably fail to reconverge"
               (write_str w) d)
          :: !ng202
    | None -> ()
  done;
  let stale_bound = float_of_int rounds *. cfg.Ch.ae_period in
  let replicas = List.init cfg.Ch.replicas (fun i -> i) in
  let windows =
    (match (st.Cs.partition, st.Cs.sides) with
    | Some w, Some (g1, _) ->
        [ ("partition", w, fun o d -> List.mem o g1 <> List.mem d g1) ]
    | _ -> [])
    @
    match st.Cs.crash with
    | Some (v, s, e) -> [ ("crash", (s, e), fun o d -> o = v <> (d = v)) ]
    | None -> []
  in
  let ng203 =
    List.filter_map
      (fun (label, (s, e), isolates) ->
        if e > st.Cs.duration -. eps || e -. s < stale_bound -. eps then None
        else
          let witness =
            List.find_map
              (fun d ->
                List.find_map
                  (fun (w : Cs.write) ->
                    if not (isolates w.Cs.origin d) then None
                    else
                      let arr =
                        Cs.earliest_at st ~origin:w.Cs.origin
                          ~from_:(fst w.Cs.accept) d
                      in
                      let blocked tau =
                        match arr with
                        | None -> true
                        | Some a -> a > tau +. eps
                      in
                      (* the latest sample inside the window that the
                         op provably cannot have reached [d] by *)
                      let best = ref None in
                      Array.iteri
                        (fun k tau ->
                          if
                            tau > snd w.Cs.accept +. eps
                            && tau > s && tau < e -. eps
                            && blocked tau
                          then best := Some (k, tau))
                        st.Cs.samples;
                      Option.map (fun (k, tau) -> (d, w, k, tau)) !best)
                  must_writes)
              replicas
          in
          Option.map
            (fun (d, w, k, tau) ->
              diag ~code:"NG203" ~severity:Diagnostic.Error ~pass
                ~name:(write_name w) ~loc:k
                (Printf.sprintf
                   "ns%d is provably stale beyond the staleness bound (%d \
                    anti-entropy rounds) for the whole %s window %s: %s \
                    cannot reach it before sample #%d at t=%.1f"
                   d rounds label
                   (window_str (s, e))
                   (write_str w) k tau))
            witness)
      windows
  in
  List.rev !ng202 @ ng203

(* ------------------------------------------------------------------ *)
(* cluster-durability: NG204 (crash-window holes), NG206 (dedup).      *)

let durability_pass (st : Cs.t) =
  let pass = "cluster-durability" in
  let cfg = st.Cs.config in
  let ng204 =
    List.filter_map
      (fun (w : Cs.write) ->
        if not w.Cs.lost_in_crash then None
        else
          match st.Cs.crash with
          | None -> None
          | Some (v, s, e) ->
              Some
                (diag ~code:"NG204" ~severity:Diagnostic.Error ~pass
                   ~name:(write_name w) ~loc:w.Cs.index
                   (Printf.sprintf
                      "%s is a durability hole: every retransmission lands \
                       inside ns%d's crash window %s, no surviving replica \
                       ever holds the update and the client's retry budget \
                       provably exhausts"
                      (write_str w) v
                      (window_str (s, e)))))
      (Cs.writes st)
  in
  let ng206 =
    match cfg.Ch.dedup_window with
    | Some window when cfg.Ch.call_attempts > 1 || cfg.Ch.duplicate > 0.0 ->
        let last_send_hi =
          snd st.Cs.sends.(Array.length st.Cs.sends - 1) +. snd st.Cs.lat
        in
        let per_client = Hashtbl.create 8 in
        List.iter
          (fun (w : Cs.write) ->
            Hashtbl.replace per_client w.Cs.origin
              (w
              ::
              (try Hashtbl.find per_client w.Cs.origin with Not_found -> [])))
          (Cs.writes st);
        Hashtbl.fold (fun c ws acc -> (c, List.rev ws) :: acc) per_client []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.filter_map (fun (c, ws) ->
               List.find_map
                 (fun (w : Cs.write) ->
                   let overlapping =
                     List.length
                       (List.filter
                          (fun (o : Cs.write) ->
                            o.Cs.index <> w.Cs.index
                            && o.Cs.time > w.Cs.time
                            && o.Cs.time <= w.Cs.time +. last_send_hi)
                          ws)
                   in
                   if overlapping >= window then
                     Some
                       (diag ~code:"NG206" ~severity:Diagnostic.Warning ~pass
                          ~name:(write_name w) ~loc:w.Cs.index
                          (Printf.sprintf
                             "dedup window %d is smaller than client c%d's \
                              overlapping retry traffic: %d later calls can \
                              evict %s from the dedup memory while its \
                              duplicates are still in flight, so the write \
                              may be applied twice"
                             window c overlapping (write_str w)))
                   else None)
                 ws)
    | _ -> []
  in
  ng204 @ ng206

(* ------------------------------------------------------------------ *)
(* cluster-verdict: NG208 — undecided within the round budget.         *)

let verdict_pass ~rounds ~errors (st : Cs.t) =
  let pass = "cluster-verdict" in
  let cfg = st.Cs.config in
  let ws = Cs.writes st in
  let may = List.filter (fun w -> w.Cs.applies = Cs.May) ws in
  if may <> [] then
    [
      diag ~code:"NG208" ~severity:Diagnostic.Info ~pass
        (Printf.sprintf
           "%d of %d writes may or may not be applied (loss p=%.2f over \
            the client path): the convergence verdict is undecided within \
            the round budget (%d)"
           (List.length may) (List.length ws) cfg.Ch.drop rounds);
    ]
  else if
    (not errors) && Cs.divergence_possible st
    && not (Cs.reconverge_provable ~rounds st)
  then
    [
      diag ~code:"NG208" ~severity:Diagnostic.Info ~pass
        (Printf.sprintf
           "replicas may diverge (faults overlap the workload) and \
            reconvergence of %d replicas over randomly chosen peers is \
            not provable within the round budget (%d)"
           cfg.Ch.replicas rounds);
    ]
  else []

(* ------------------------------------------------------------------ *)
(* cluster-availability: NG209 (provable no-quorum windows), NG210     *)
(* (transaction-outcome-unknown horizons) — [`Leader_log] only.        *)

let availability_pass (st : Cs.t) =
  let pass = "cluster-availability" in
  let cfg = st.Cs.config in
  let windows = Cs.no_quorum_windows st in
  let maj = Cs.majority st in
  let ng209 =
    List.map
      (fun (s, e) ->
        diag ~code:"NG209" ~severity:Diagnostic.Warning ~pass
          (Printf.sprintf
             "the fault schedule provably denies a write quorum (%d of %d \
              replicas) for the whole window %s: no transaction can commit \
              and no leader election can complete until it ends"
             maj cfg.Ch.replicas (window_str (s, e))))
      windows
  in
  let ng210 =
    List.filter_map
      (fun (w : Cs.write) ->
        Option.map
          (fun (s, e) ->
            diag ~code:"NG210" ~severity:Diagnostic.Warning ~pass
              ~name:(write_name w) ~loc:w.Cs.index
              (Printf.sprintf
                 "%s expires its transaction deadline (%.1fs) inside the \
                  no-quorum window %s: the client can observe neither \
                  commit nor abort in time and must report the outcome \
                  unknown"
                 (write_str w) cfg.Ch.txn_deadline (window_str (s, e))))
          (Cs.outcome_unknown_horizon st w))
      (Cs.writes st)
  in
  ng209 @ ng210

(* ------------------------------------------------------------------ *)
(* Assembly.                                                           *)

let pass_ids =
  [
    "cluster-spec";
    "cluster-races";
    "cluster-topology";
    "cluster-durability";
    "cluster-verdict";
  ]

let leader_pass_ids = [ "cluster-spec"; "cluster-availability" ]

let passes_for (cfg : Ch.config) =
  match cfg.Ch.mode with
  | `Lww_ae -> pass_ids
  | `Leader_log -> leader_pass_ids

let diagnostics ?(rounds = 2) subject =
  let st = Cs.of_chaos ~workload:subject.workload subject.config subject.spec in
  let spec_diags = spec_pass subject.spec in
  match subject.config.Ch.mode with
  | `Leader_log ->
      (* The leader tier serializes every update through one elected
         log, so the LWW race/topology/durability passes are discharged
         by construction: no NG201 (a quorum commit totally orders
         conflicting writes), no NG202/NG203 (followers replay the
         leader's log, not a gossip graph), no NG204 (a committed op is
         on a majority before the ack). What remains is the
         availability cost of that coherence — the NG209/NG210 pass. *)
      (st, spec_diags @ availability_pass st)
  | `Lww_ae ->
      let races = races_pass st in
      let topo = topology_pass ~rounds st in
      let dura = durability_pass st in
      let errors =
        List.exists
          (fun d -> d.Diagnostic.severity = Diagnostic.Error)
          (races @ topo @ dura)
      in
      let verdict = verdict_pass ~rounds ~errors st in
      (st, spec_diags @ races @ topo @ dura @ verdict)

let report ?min_severity ?rounds ~label subject =
  let st, diags = diagnostics ?rounds subject in
  let report =
    Engine.assemble ?min_severity ~label
      ~activities:subject.config.Ch.replicas
      ~objects:(List.length subject.spec.Ns.leaves)
      ~context_objects:(List.length subject.spec.Ns.dirs)
      ~probes:(List.length (Cs.writes st))
      ~passes_run:(passes_for subject.config) diags
  in
  (st, report)

let report_many ?min_severity ?rounds ?jobs subjects =
  match Naming.Pool.get ?jobs () with
  | None ->
      List.map
        (fun (label, s) -> report ?min_severity ?rounds ~label s)
        subjects
  | Some pool ->
      Naming.Pool.map pool
        (fun (label, s) -> report ?min_severity ?rounds ~label s)
        subjects

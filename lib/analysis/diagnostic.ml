type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)

type t = {
  code : string;
  severity : severity;
  pass : string;
  message : string;
  entities : Naming.Entity.t list;
  name : Naming.Name.t option;
  trace : Naming.Resolver.trace;
  loc : int option;
}

let make ~code ~severity ~pass ?(entities = []) ?name ?(trace = []) ?loc
    message =
  { code; severity; pass; message; entities; name; trace; loc }

let compare d1 d2 =
  let c = Int.compare (severity_rank d2.severity) (severity_rank d1.severity) in
  if c <> 0 then c
  else
    let c = String.compare d1.code d2.code in
    if c <> 0 then c
    else
      let c = String.compare d1.message d2.message in
      if c <> 0 then c
      else
        let c = String.compare d1.pass d2.pass in
        if c <> 0 then c
        else
          let c = Option.compare Int.compare d1.loc d2.loc in
          if c <> 0 then c
          else
            Option.compare String.compare
              (Option.map Naming.Name.to_string d1.name)
              (Option.map Naming.Name.to_string d2.name)

let catalogue =
  [
    ("NG001", Error, "a directory whose '.' binding is not itself");
    ("NG002", Error, "a '..' binding to a non-directory");
    ("NG003", Error, "a '..' naming a directory that does not link back");
    ("NG004", Error, "a binding to an entity the store does not know");
    ("NG005", Warning, "an object unreachable from every activity root");
    ("NG006", Info, "a cross-link: an edge into a directory from outside \
                     its parent tree");
    ("NG007", Error, "a dangling cross-link: its target's own tree has \
                      lost it");
    ("NG008", Warning, "a directed cycle through non-dot edges");
    ("NG009", Info, "an entity denoted by several non-dot names (alias)");
    ("NG010", Warning, "a probe name that is provably incoherent across \
                        the activities");
    ("NG011", Info, "a probe name the static predictor could not decide \
                     within its budget");
    ("NG101", Error, "a sent name resolved under R(receiver) to a \
                      different entity than the sender's");
    ("NG102", Error, "an embedded name whose denotation for the reader \
                      differs from its source scope");
    ("NG103", Warning, "a name resolved through a binding that was \
                        explicitly unbound earlier");
    ("NG104", Warning, "a fork divergence: parent and child resolve the \
                        same name to different entities");
    ("NG105", Warning, "a silently-skipped op, or a flow using the result \
                        of one");
    ("NG106", Info, "a flow the analyzer could not decide within its \
                     budget");
    ("NG201", Error, "an LWW lost-update race: provably concurrent writes \
                      to one name, one of them silently overwritten");
    ("NG202", Error, "a write that can never reach some replica: the \
                      anti-entropy pull graph is not strongly connected \
                      over the run");
    ("NG203", Error, "a replica provably stale beyond the staleness bound \
                      for a whole fault window");
    ("NG204", Error, "a durability hole: every retransmission of a write \
                      lands inside its home replica's crash window");
    ("NG205", Warning, "a possible Lamport-stamp tie: the LWW winner \
                        decided only by origin id");
    ("NG206", Warning, "a dedup window smaller than the overlapping retry \
                        traffic, so exactly-once can break");
    ("NG207", Warning, "a replica group that can never satisfy the \
                        paper's §5 equivalence (orphaned or dangling \
                        spec entry)");
    ("NG208", Info, "a replication verdict undecided within the round \
                     budget");
    ("NG209", Warning, "a leader-mode unavailable window: the fault \
                        schedule provably denies a write quorum for an \
                        interval, so writes inside it cannot commit");
    ("NG210", Warning, "a transaction-outcome-unknown horizon: a write \
                        whose client deadline expires inside a no-quorum \
                        window, so the client can learn neither commit \
                        nor abort in time");
    ("NG301", Error, "a synthesized schedule that provably loses a write \
                      (minimized, replayable witness attached)");
    ("NG302", Error, "a synthesized schedule that defeats convergence \
                      within the exploration bound (minimized, replayable \
                      witness attached)");
    ("NG303", Warning, "a staleness-maximizing schedule: the longest \
                        provably-stale read the explorer could construct \
                        within bounds");
    ("NG304", Info, "the schedule space exhausted clean up to the \
                     exploration bounds");
  ]

let entity_str store e =
  match Naming.Store.label store e with
  | Some l -> Printf.sprintf "%s(%s)" (Naming.Entity.to_string e) l
  | None -> Naming.Entity.to_string e

let pp store ppf d =
  Format.fprintf ppf "%s %-7s %s" d.code (severity_to_string d.severity)
    d.message;
  (match d.loc with
  | Some i -> Format.fprintf ppf "@\n    step: %d" i
  | None -> ());
  (match d.name with
  | Some n -> Format.fprintf ppf "@\n    name: %s" (Naming.Name.to_string n)
  | None -> ());
  if d.trace <> [] then
    Format.fprintf ppf "@\n    trace: %a" (Naming.Resolver.pp_trace store)
      d.trace

let entity_json store e =
  let fields =
    [ ("entity", Json.String (Naming.Entity.to_string e)) ]
    @
    match Naming.Store.label store e with
    | Some l -> [ ("label", Json.String l) ]
    | None -> []
  in
  Json.Obj fields

let step_json store (s : Naming.Resolver.step) =
  Json.Obj
    [
      ("at", Json.String (entity_str store s.Naming.Resolver.at));
      ("atom", Json.String (Naming.Name.atom_to_string s.Naming.Resolver.atom));
      ("target", Json.String (entity_str store s.Naming.Resolver.target));
    ]

let to_json store d =
  Json.Obj
    ([
       ("code", Json.String d.code);
       ("severity", Json.String (severity_to_string d.severity));
       ("pass", Json.String d.pass);
       ("message", Json.String d.message);
       ("entities", Json.List (List.map (entity_json store) d.entities));
     ]
    @ (match d.loc with
      | Some i -> [ ("step", Json.Int i) ]
      | None -> [])
    @ (match d.name with
      | Some n -> [ ("name", Json.String (Naming.Name.to_string n)) ]
      | None -> [])
    @
    if d.trace = [] then []
    else [ ("trace", Json.List (List.map (step_json store) d.trace)) ])

(** Shared schedule arithmetic for the cluster analyzers.

    Every module that reasons statically about a {!Dsim.Chaos} schedule
    — the {!Clusterstate} abstract interpreter, the {!Replpasses}
    diagnostics and the {!Explore} schedule explorer — needs the same
    few protocol-derived quantities: the one-way latency bounds of the
    simulated network, the client retry send/exhaustion offsets, and
    the protocol-relevant time boundaries (anti-entropy ticks, retry
    horizons) that quantize the fault-schedule space. They live here
    once, so the retry/latency arithmetic cannot drift between the
    interpreter and the explorer. *)

val eps : float
(** Comparison slack for the time arithmetic (1e-6). *)

val latency : unit -> float * float
(** One-way message latency bounds between distinct nodes, from
    {!Dsim.Network.default_config}: [(latency, latency + jitter)]. *)

val client_sends :
  Dsim.Chaos.config -> (float * float) array * (float * float)
(** The client retry plan for a config's [call_timeout]/[call_attempts]:
    {!Dsim.Rpc.retry_schedule}'s per-attempt send-offset spans and the
    retry-budget exhaustion span, relative to the call instant. *)

val window_str : float * float -> string
(** Renders a fault window as ["[s; e)"] with one decimal. *)

val window_starts : depth:int -> Dsim.Chaos.config -> float list
(** Candidate fault-window start instants for the schedule explorer:
    the first [depth] anti-entropy period boundaries ([ae_period * j]
    for [j = 1..depth]) — cutting the network just as a pull cycle
    begins is where a window does the most damage. *)

val window_lengths :
  rounds:int -> start:float -> Dsim.Chaos.config -> float list
(** Candidate fault-window lengths for a window opening at [start],
    quantized to anti-entropy periods, shortest first:
    - the staleness horizon: twice the [rounds] staleness bound, so
      samples beyond the bound fall inside the window;
    - the retry horizon: the client exhaustion offset plus one delivery
      and a period of slack, so a whole retry budget fits inside;
    - the longest window that still heals in-run with two sample
      instants to spare;
    - an open window ([start + length > duration]) that never heals
      within the run.
    Deduplicated; lengths are positive and deterministic. *)

val write_offsets : Dsim.Chaos.config -> float list
(** Write-issue offsets relative to a fault-window start at which a
    write interacts with the window: one minimum latency after the cut
    (accepted strictly inside the window) and one anti-entropy period
    later (a second op the first cannot be ordered against). *)
